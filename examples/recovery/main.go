// Recovery with deduplication (the paper's Table 3 scenario): because dedup
// metadata and chunks are self-contained objects, the substrate's recovery
// engine restores them like any other data — and moves roughly half the
// bytes, because the dataset is deduplicated.
package main

import (
	"bytes"
	"fmt"
	"log"

	"dedupstore"
	"dedupstore/internal/workload"
)

func main() {
	world := dedupstore.NewWorld(3)
	cfg := dedupstore.DefaultConfig()
	cfg.Rate.Enabled = false
	cfg.HitSet.HitCount = 1000
	cfg.DedupThreads = 8
	s, err := dedupstore.OpenStore(world.Cluster, cfg)
	if err != nil {
		log.Fatal(err)
	}
	cl := s.Client("app")
	dev, err := dedupstore.NewBlockDevice("vol", 32<<20, 1<<20, cl)
	if err != nil {
		log.Fatal(err)
	}

	// A 32MB volume whose content is 50% dedupable (fio-style).
	world.Run(func(p *dedupstore.Proc) {
		res := workload.RunFIO(p, dev, workload.FIOConfig{
			BlockSize: 64 << 10, Span: 32 << 20, Pattern: workload.SeqWrite,
			DedupPct: 50, Threads: 8, IODepth: 4, Seed: 5,
		})
		if res.Errors > 0 {
			log.Fatalf("write errors: %d", res.Errors)
		}
		s.Engine().DrainAndWait(p)
	})
	fmt.Printf("dataset stored and deduplicated at virtual time %v\n", world.Engine.Now())

	var before []byte
	world.Run(func(p *dedupstore.Proc) {
		var err error
		before, err = dev.ReadAt(p, 5<<20, 256<<10)
		if err != nil {
			log.Fatal(err)
		}
	})

	// Pull two drives on different hosts and put in fresh replacements.
	for _, osd := range []int{2, 9} {
		if err := world.Cluster.FailOSD(osd); err != nil {
			log.Fatal(err)
		}
		if _, err := world.Cluster.ReplaceOSD(osd); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("replaced osd.2 (host0) and osd.9 (host2) with empty devices")

	world.Run(func(p *dedupstore.Proc) {
		stats := world.Cluster.Recover(p)
		fmt.Printf("recovery: %d objects copied, %.2f MB moved in %v (virtual)\n",
			stats.ObjectsCopied, float64(stats.BytesMoved)/1e6, stats.Duration())
	})

	// Full redundancy and data integrity restored.
	world.Run(func(p *dedupstore.Proc) {
		after, err := dev.ReadAt(p, 5<<20, 256<<10)
		if err != nil || !bytes.Equal(before, after) {
			log.Fatalf("data mismatch after recovery: %v", err)
		}
		fmt.Println("post-recovery read verified: volume content intact")
	})
}
