// Quickstart: bring up a simulated 4-node cluster, store objects through
// the global dedup layer, and watch identical content collapse to a single
// chunk-pool copy regardless of which node it lands on.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"dedupstore"
)

func main() {
	world := dedupstore.NewWorld(42) // 4 hosts x 4 OSDs, SSDs, 10GbE

	cfg := dedupstore.DefaultConfig() // 32KiB chunks, rep x2 pools, post-processing
	store, err := dedupstore.OpenStore(world.Cluster, cfg)
	if err != nil {
		log.Fatal(err)
	}
	store.StartEngine() // background dedup workers

	client := store.Client("quickstart")

	// Ten "golden image" objects with identical content plus one unique one.
	golden := make([]byte, 256<<10)
	rand.New(rand.NewSource(7)).Read(golden)
	unique := make([]byte, 256<<10)
	rand.New(rand.NewSource(8)).Read(unique)

	world.Run(func(p *dedupstore.Proc) {
		for i := 0; i < 10; i++ {
			if err := client.Write(p, fmt.Sprintf("image-%d", i), 0, golden); err != nil {
				log.Fatal(err)
			}
		}
		if err := client.Write(p, "one-off", 0, unique); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote 11 objects (%.1f MB logical) at virtual time %v\n",
			11*float64(len(golden))/1e6, p.Now())
	})

	// Let the post-processing engine deduplicate everything.
	world.Run(func(p *dedupstore.Proc) { store.Engine().DrainAndWait(p) })

	meta := world.Cluster.PoolStats(store.MetaPool())
	chunk := world.Cluster.PoolStats(store.ChunkPool())
	logical := int64(11 * len(golden))
	fmt.Printf("chunk pool: %d unique chunks, %.2f MB data\n", chunk.Objects, float64(chunk.LogicalBytes)/1e6)
	fmt.Printf("stored (incl. 2x replication + metadata): %.2f MB for %.2f MB logical -> %.1f%% saved vs raw 2x\n",
		float64(meta.StoredTotal()+chunk.StoredTotal())/1e6, float64(logical)/1e6,
		100*(1-float64(meta.StoredTotal()+chunk.StoredTotal())/float64(2*logical)))

	// Reads reassemble transparently from the chunk pool.
	world.Run(func(p *dedupstore.Proc) {
		got, err := client.Read(p, "image-3", 0, -1)
		if err != nil || !bytes.Equal(got, golden) {
			log.Fatalf("read back failed: %v", err)
		}
		fmt.Println("read-after-dedup verified: image-3 content intact")
	})

	st := store.Engine().Stats()
	fmt.Printf("engine: %d chunks flushed, %d were duplicates\n", st.ChunksFlushed, st.DupChunks)
}
