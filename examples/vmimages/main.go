// VM image consolidation (the paper's Fig. 13 scenario): a private cloud
// stores many VM images that share the same OS bits. Global dedup plus
// node-local compression collapses them; each extra VM costs only its
// unique home data.
package main

import (
	"fmt"
	"log"

	"dedupstore"
	"dedupstore/internal/client"
	"dedupstore/internal/compressfs"
	"dedupstore/internal/rados"
	"dedupstore/internal/sim"
	"dedupstore/internal/simcost"
	"dedupstore/internal/store"
	"dedupstore/internal/workload"
)

func main() {
	imgCfg := workload.VMImageConfig{
		ImageSize: 8 << 20, // "8GB" at the repo's 1000:1 scale
		BlockSize: 32 << 10,
		Thick:     true,
		Seed:      11,
	}
	const images = 6

	run := func(label string, dedup, compress bool) {
		eng := sim.New(1)
		var opts []rados.Option
		if compress {
			opts = append(opts, rados.WithStoreOptions(store.WithSizeFn(compressfs.Default())))
		}
		c := rados.NewTestbed(eng, simcost.Default(), 4, 4, opts...)

		var usage func() int64
		var mkdev func(vm int) *dedupstore.BlockDevice
		if dedup {
			cfg := dedupstore.DefaultConfig()
			cfg.Rate.Enabled = false
			cfg.HitSet.HitCount = 1000
			cfg.DedupThreads = 8
			s, err := dedupstore.OpenStore(c, cfg)
			if err != nil {
				log.Fatal(err)
			}
			mkdev = func(vm int) *dedupstore.BlockDevice {
				dev, err := dedupstore.NewBlockDevice(fmt.Sprintf("vm%d", vm), imgCfg.ImageSize, 1<<20, s.Client("loader"))
				if err != nil {
					log.Fatal(err)
				}
				return dev
			}
			usage = func() int64 {
				eng.Go("drain", func(p *sim.Proc) { s.Engine().DrainAndWait(p) })
				eng.Run()
				return c.PoolStats(s.MetaPool()).StoredTotal() + c.PoolStats(s.ChunkPool()).StoredTotal()
			}
		} else {
			pool, err := c.CreatePool(rados.PoolConfig{Name: "vm", PGNum: 64, Redundancy: rados.ReplicatedN(2)})
			if err != nil {
				log.Fatal(err)
			}
			gw := c.NewGateway("loader")
			mkdev = func(vm int) *dedupstore.BlockDevice {
				dev, err := client.NewBlockDevice(fmt.Sprintf("vm%d", vm), imgCfg.ImageSize, 1<<20,
					&client.RawBackend{GW: gw, Pool: pool})
				if err != nil {
					log.Fatal(err)
				}
				return dev
			}
			usage = func() int64 { return c.PoolStats(pool).StoredTotal() }
		}

		fmt.Printf("%-28s", label)
		for vm := 0; vm < images; vm++ {
			dev := mkdev(vm)
			eng.Go("write", func(p *sim.Proc) {
				if err := workload.WriteVMImage(p, dev, imgCfg, vm); err != nil {
					log.Fatal(err)
				}
			})
			eng.Run()
			fmt.Printf("  %7.2fMB", float64(usage())/1e6)
		}
		fmt.Println()
	}

	fmt.Printf("cumulative footprint after each of %d thick \"8GB\" images (2x replication):\n", images)
	run("replication only", false, false)
	run("replication + dedup", true, false)
	run("replication + dedup + comp", true, true)
}
