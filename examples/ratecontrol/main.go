// Rate control (the paper's Fig. 14): background deduplication competes
// with foreground I/O for disks and NICs. The watermark rate controller
// throttles dedup I/O when foreground load is high, keeping foreground
// throughput near the no-dedup ideal.
package main

import (
	"fmt"
	"log"
	"time"

	"dedupstore"
	"dedupstore/internal/metrics"
	"dedupstore/internal/sim"
	"dedupstore/internal/workload"
)

func run(label string, startEngine bool, configure func(*dedupstore.Config)) {
	world := dedupstore.NewWorld(9)
	cfg := dedupstore.DefaultConfig()
	cfg.DedupThreads = 16
	cfg.FlushParallel = 16
	cfg.HitSet.HitCount = 1000
	configure(&cfg)
	s, err := dedupstore.OpenStore(world.Cluster, cfg)
	if err != nil {
		log.Fatal(err)
	}
	dev, err := dedupstore.NewBlockDevice("vol", 16<<20, 1<<20, s.Client("fg"))
	if err != nil {
		log.Fatal(err)
	}

	const total = 18 * time.Second
	rec := metrics.NewRecorder()
	gen := workload.NewFIOGen(workload.FIOConfig{BlockSize: 512 << 10, Span: 16 << 20, DedupPct: 50, Seed: 2})

	world.Engine.Go("main", func(p *dedupstore.Proc) {
		if startEngine {
			world.Engine.After(6*time.Second, func() { s.StartEngine() })
		}
		next := int64(0)
		for w := 0; w < 4; w++ {
			p.Go("fg", func(q *sim.Proc) {
				for q.Now() < sim.Time(total) {
					off := (next % 32) * (512 << 10)
					next++
					t0 := q.Now()
					if err := dev.WriteAt(q, off, gen.NextBlock()); err != nil {
						log.Fatal(err)
					}
					rec.Record(q.Now(), (q.Now() - t0).Duration(), 512<<10)
				}
			})
		}
	})
	world.Engine.RunUntil(sim.Time(total))

	fmt.Printf("%-24s", label)
	for sec, pt := range rec.Series.Points() {
		if sec%3 == 0 {
			fmt.Printf("  t=%02ds %4.0fMB/s", sec, pt.MBps(time.Second))
		}
	}
	fmt.Println()
}

func main() {
	fmt.Println("foreground 512K sequential writes; background dedup starts at t=6s:")
	run("no dedup (ideal)", false, func(cfg *dedupstore.Config) { cfg.Rate.Enabled = false })
	run("dedup, no rate control", true, func(cfg *dedupstore.Config) { cfg.Rate.Enabled = false })
	run("dedup + rate control", true, func(cfg *dedupstore.Config) {})
}
