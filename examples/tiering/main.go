// Tiering and snapshots: §4.2 lets each pool pick its own redundancy AND
// storage location. This example runs the metadata pool (hot data, cached
// chunks) on SSDs and the chunk pool (deduplicated cold chunks) on HDDs,
// then takes zero-copy snapshots — clones that share every chunk until
// they diverge.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dedupstore"
	"dedupstore/internal/rados"
	"dedupstore/internal/sim"
	"dedupstore/internal/simcost"
)

func main() {
	eng := sim.New(17)
	cluster := rados.New(eng, simcost.Default())
	// 4 hosts, each with 2 SSDs and 2 HDDs (8x slower).
	id := 0
	for h := 0; h < 4; h++ {
		host := fmt.Sprintf("host%d", h)
		cluster.AddHost(host, 12)
		for d := 0; d < 2; d++ {
			must(cluster.AddOSDClass(id, host, 1.0, "ssd", 1.0))
			id++
			must(cluster.AddOSDClass(id, host, 1.0, "hdd", 8.0))
			id++
		}
	}

	cfg := dedupstore.DefaultConfig()
	cfg.Rate.Enabled = false
	cfg.HitSet.HitCount = 1000
	cfg.DedupThreads = 8
	cfg.MetaDeviceClass = "ssd"  // hot writes + cached chunks on flash
	cfg.ChunkDeviceClass = "hdd" // deduplicated cold chunks on spinning disks
	s, err := dedupstore.OpenStore(cluster, cfg)
	if err != nil {
		log.Fatal(err)
	}
	cl := s.Client("app")

	base := make([]byte, 2<<20)
	rand.New(rand.NewSource(5)).Read(base)
	run(eng, func(p *dedupstore.Proc) {
		if err := cl.Write(p, "golden-image", 0, base); err != nil {
			log.Fatal(err)
		}
		s.Engine().DrainAndWait(p)
	})

	// Verify tier placement.
	ssdObjs, hddObjs := 0, 0
	for _, osdID := range cluster.OSDs() {
		info, _ := cluster.Map().Lookup(osdID)
		st, _ := cluster.OSDStore(osdID)
		switch info.Class {
		case "ssd":
			ssdObjs += st.Usage().Objects
		case "hdd":
			hddObjs += st.Usage().Objects
		}
	}
	fmt.Printf("placement: %d object copies on SSDs (metadata pool), %d on HDDs (chunk pool)\n", ssdObjs, hddObjs)

	// Zero-copy snapshots: 5 clones, no data copied.
	before := cluster.PoolStats(s.ChunkPool())
	run(eng, func(p *dedupstore.Proc) {
		for i := 1; i <= 5; i++ {
			if err := cl.Snapshot(p, "golden-image", fmt.Sprintf("clone-%d", i)); err != nil {
				log.Fatal(err)
			}
		}
	})
	after := cluster.PoolStats(s.ChunkPool())
	fmt.Printf("snapshots: 5 clones of a %.1f MB image added %.3f MB of chunk data\n",
		float64(len(base))/1e6, float64(after.StoredPhysical-before.StoredPhysical)/1e6)

	// Clones diverge on write without touching each other.
	run(eng, func(p *dedupstore.Proc) {
		patch := make([]byte, 64<<10)
		rand.New(rand.NewSource(6)).Read(patch)
		if err := cl.Write(p, "clone-1", 0, patch); err != nil {
			log.Fatal(err)
		}
		s.Engine().DrainAndWait(p)
		orig, err := cl.Read(p, "golden-image", 0, 64<<10)
		if err != nil {
			log.Fatal(err)
		}
		if string(orig[:8]) == string(patch[:8]) {
			log.Fatal("write to clone leaked into the golden image")
		}
		fmt.Println("clone-1 diverged; golden image unchanged")
	})
}

func run(eng *sim.Engine, fn func(p *dedupstore.Proc)) {
	eng.Go("main", fn)
	eng.Run()
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
