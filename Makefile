# Tier-1 verification: everything a PR must keep green.
.PHONY: verify build test vet lint race check-tests bench kernel-bench profile golden golden-write bench-json bench-compare fuzz-smoke fmt-check

verify: vet build test check-tests

vet:
	go vet ./...

# Static analysis: go vet plus staticcheck. CI installs staticcheck pinned
# (see .github/workflows/ci.yml); locally the staticcheck half is skipped
# with a note when the binary isn't on PATH, so `make lint` never requires
# a network fetch.
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed; ran go vet only (CI pins staticcheck 2024.1.1)"; \
	fi

build:
	go build ./...

test:
	go test ./...

# Concurrency-sensitive packages under the race detector (includes the
# experiment harness's worker pool and the chaos kill-schedule scenarios).
race:
	go test -race ./internal/metrics ./internal/sim ./internal/qos ./internal/gateway ./internal/fpindex ./internal/hitset ./internal/tiering ./internal/rados ./internal/core ./internal/chaos ./internal/harness ./internal/experiments

# Every internal package must ship tests.
check-tests:
	sh scripts/check-tests.sh

bench:
	go test -bench=. -benchmem

# Kernel hot-path microbenchmarks: the DES engine and the metrics/trace
# primitives every simulated I/O passes through. CI runs these so dispatch
# cost and allocs/op regressions show up in review.
kernel-bench:
	go test -run NONE -bench=. -benchmem ./internal/sim ./internal/metrics

# CPU + heap profile of the golden sweep — the kernel's real workload.
# Inspect with `go tool pprof profiles/sweep.cpu.pprof`.
profile:
	mkdir -p profiles
	go run ./cmd/dedupbench -scale 0.25 -results '' -cpuprofile profiles/sweep.cpu.pprof -memprofile profiles/sweep.mem.pprof all

# Fail if any file needs gofmt (same check CI runs).
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# Golden regression gate: re-run the sweep at the snapshot scale and fail
# with a per-cell diff on any drift. CI runs exactly this target.
golden:
	go run ./cmd/dedupbench -scale 0.25 -results '' -golden check all

# Regenerate the snapshots after an intentional, reviewed number shift.
golden-write:
	go run ./cmd/dedupbench -scale 0.25 -results '' -golden write all

# Machine-readable sweep: canonical JSON per experiment plus a wall-clock
# summary; CI uploads results/ as an artifact.
bench-json:
	go run ./cmd/dedupbench -scale 0.25 -results results -timing results/BENCH_pr.json all

# Wall-clock regression gate: PR sweep total vs the checked-in baseline
# (results/BENCH_baseline.json — committed with `git add -f`, results/ is
# otherwise gitignored). >25% slower fails, 10-25% warns. The script's
# --selftest exercises the thresholds themselves.
bench-compare:
	sh scripts/bench-compare.sh --selftest
	sh scripts/bench-compare.sh results/BENCH_baseline.json results/BENCH_pr.json

# Fuzz smoke: 30s per fuzz target over the parsers that guard on-disk and
# operator input (ref keys, SLO specs). Regression corpora run in `make
# test`; this step searches for new inputs.
fuzz-smoke:
	go test -run NONE -fuzz FuzzRefKeyRoundTrip -fuzztime 30s ./internal/core
	go test -run NONE -fuzz FuzzParseSLO -fuzztime 30s ./internal/gateway
