# Tier-1 verification: everything a PR must keep green.
.PHONY: verify build test vet race check-tests bench

verify: vet build test check-tests

vet:
	go vet ./...

build:
	go build ./...

test:
	go test ./...

# Concurrency-sensitive packages under the race detector.
race:
	go test -race ./internal/metrics ./internal/sim ./internal/rados ./internal/core ./internal/chaos

# Every internal package must ship tests.
check-tests:
	sh scripts/check-tests.sh

bench:
	go test -bench=. -benchmem
