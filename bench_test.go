package dedupstore_test

// Benchmark harness: one benchmark per table and figure in the paper's
// evaluation (ICDCS'18 §2.2 and §6). Each benchmark regenerates its
// experiment on the simulated testbed at a reduced scale and reports the
// shape-defining quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. For full-scale tables with paper-vs-
// measured columns, run `go run ./cmd/dedupbench all`.

import (
	"testing"

	"dedupstore/internal/experiments"
)

var benchScale = experiments.QuickScale()

func BenchmarkFig3DedupRatios(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig3(benchScale)
		if i == 0 {
			for _, r := range rows {
				if r.Workload == "FIO dedup 50%" {
					b.ReportMetric(r.Local, "fio50-local-%")
					b.ReportMetric(r.Global, "fio50-global-%")
				}
			}
		}
	}
}

func BenchmarkTable1LocalRatioCollapse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1(benchScale)
		if i == 0 && len(rows) == 4 {
			b.ReportMetric(rows[0].Local, "local-4osd-%")
			b.ReportMetric(rows[3].Local, "local-16osd-%")
			b.ReportMetric(rows[3].Global, "global-16osd-%")
		}
	}
}

func BenchmarkFig5aPartialWrite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig5a(benchScale)
		if i == 0 && len(rows) == 3 {
			b.ReportMetric(rows[0].Throughput, "original-MBps")
			b.ReportMetric(rows[1].Throughput, "inline16k-MBps")
			b.ReportMetric(rows[0].Throughput/rows[1].Throughput, "slowdown-x")
		}
	}
}

func BenchmarkFig5bInterference(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig5b(benchScale)
		if i == 0 {
			b.ReportMetric(r.SteadyBefore, "before-MBps")
			b.ReportMetric(r.SteadyAfter, "after-MBps")
		}
	}
}

func BenchmarkFig10SmallRandom(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig10(benchScale)
		if i == 0 {
			for _, r := range rows {
				if r.Op == "randwrite" {
					switch r.Config {
					case "Original":
						b.ReportMetric(float64(r.Latency.Microseconds()), "orig-write-us")
					case "Proposed":
						b.ReportMetric(float64(r.Latency.Microseconds()), "prop-write-us")
					case "Proposed-flush":
						b.ReportMetric(float64(r.Latency.Microseconds()), "flush-write-us")
					}
				}
			}
		}
	}
}

func BenchmarkFig11Sequential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig11(benchScale)
		if i == 0 {
			for _, r := range rows {
				if r.Op == "read" && r.BlockSize == 32<<10 {
					switch r.Config {
					case "Original":
						b.ReportMetric(r.Throughput, "orig-read32k-MBps")
					case "Proposed":
						b.ReportMetric(r.Throughput, "prop-read32k-MBps")
					}
				}
			}
		}
	}
}

func BenchmarkTable2ChunkSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table2(benchScale)
		if i == 0 && len(rows) == 3 {
			b.ReportMetric(rows[0].ActualRatio, "actual16k-%")
			b.ReportMetric(rows[2].ActualRatio, "actual64k-%")
			b.ReportMetric(float64(rows[0].StoredMetadata)/float64(rows[2].StoredMetadata), "meta16k/64k-x")
		}
	}
}

func BenchmarkFig12SFS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig12(benchScale)
		if i == 0 && len(rows) == 4 {
			b.ReportMetric(float64(rows[0].MeanLatency.Microseconds()), "rep-lat-us")
			b.ReportMetric(float64(rows[1].MeanLatency.Microseconds()), "prop-lat-us")
			b.ReportMetric(float64(rows[2].MeanLatency.Microseconds()), "ec-lat-us")
			b.ReportMetric(float64(rows[0].StorageUsed)/float64(rows[1].StorageUsed), "storage-saving-x")
		}
	}
}

func BenchmarkTable3Recovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table3(benchScale)
		if i == 0 && len(rows) == 3 {
			b.ReportMetric(rows[0].ProposedSecs/rows[0].OriginalSecs, "prop/orig-1osd")
			b.ReportMetric(rows[2].ProposedSecs/rows[2].OriginalSecs, "prop/orig-4osd")
		}
	}
}

func BenchmarkFig13VMImages(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series := experiments.Fig13(benchScale)
		if i == 0 {
			for _, s := range series {
				last := s.UsedBytes[len(s.UsedBytes)-1]
				switch s.Label {
				case "rep":
					b.ReportMetric(float64(last)/1e6, "rep-MB")
				case "rep+dedup":
					b.ReportMetric(float64(last)/1e6, "rep+dedup-MB")
				case "ec+dedup+comp":
					b.ReportMetric(float64(last)/1e6, "ec+dedup+comp-MB")
				}
			}
		}
	}
}

func BenchmarkFig14RateControl(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs := experiments.Fig14(benchScale)
		if i == 0 && len(rs) == 3 {
			b.ReportMetric(rs[0].SteadyAfter, "ideal-MBps")
			b.ReportMetric(rs[1].SteadyAfter, "nocontrol-MBps")
			b.ReportMetric(rs[2].SteadyAfter, "control-MBps")
		}
	}
}

func BenchmarkAblationChunking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.AblationChunking(benchScale)
		if i == 0 && len(rows) == 2 {
			b.ReportMetric(rows[0].DedupRatio, "fixed-ratio-%")
			b.ReportMetric(rows[1].DedupRatio, "cdc-ratio-%")
		}
	}
}

func BenchmarkAblationRefcount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.AblationRefcount(benchScale)
		if i == 0 && len(rows) == 2 {
			b.ReportMetric(float64(rows[1].ChunksLeaked), "fp-chunks-pre-gc")
		}
	}
}

func BenchmarkAblationCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.AblationCache(benchScale)
		if i == 0 && len(rows) == 2 {
			b.ReportMetric(float64(rows[0].FlushedBytes)/1e6, "cacheon-flushed-MB")
			b.ReportMetric(float64(rows[1].FlushedBytes)/1e6, "cacheoff-flushed-MB")
		}
	}
}
