// Package dedupstore is a from-scratch reproduction of "Design of Global
// Data Deduplication for a Scale-out Distributed Storage System" (Oh et al.,
// ICDCS 2018): a Ceph-like decentralized object store with the paper's
// global deduplication layered on top — double hashing (the chunk
// fingerprint IS the chunk-pool object ID, so placement replaces the
// fingerprint index), self-contained objects (all dedup metadata rides
// inside ordinary objects, so replication/EC/recovery cover it for free),
// and post-processing deduplication with watermark rate control and
// HitSet-based hot-object caching.
//
// Everything runs on a deterministic discrete-event simulation calibrated
// to the paper's testbed, so experiments are exactly reproducible. The
// typical flow:
//
//	world := dedupstore.NewWorld(42)                  // 4 hosts × 4 OSDs
//	store, _ := dedupstore.OpenStore(world.Cluster, dedupstore.DefaultConfig())
//	store.StartEngine()
//	client := store.Client("app")
//	world.Run(func(p *dedupstore.Proc) {
//	    client.Write(p, "my-object", 0, data)
//	    got, _ := client.Read(p, "my-object", 0, -1)
//	    _ = got
//	})
package dedupstore

import (
	"dedupstore/internal/chaos"
	"dedupstore/internal/client"
	"dedupstore/internal/core"
	"dedupstore/internal/gateway"
	"dedupstore/internal/metrics"
	"dedupstore/internal/rados"
	"dedupstore/internal/sim"
	"dedupstore/internal/simcost"
)

// Re-exported core types: the public API surface.
type (
	// Proc is a simulated process; all blocking calls take one.
	Proc = sim.Proc
	// Engine is the discrete-event simulation engine.
	Engine = sim.Engine
	// SimTime is a point on the virtual clock.
	SimTime = sim.Time
	// Cluster is the scale-out object-store substrate.
	Cluster = rados.Cluster
	// Pool is an object pool with its own redundancy scheme.
	Pool = rados.Pool
	// Gateway is a raw (non-dedup) client session.
	Gateway = rados.Gateway
	// Store is the deduplicating object store (the paper's design).
	Store = core.Store
	// Client is a dedup store session.
	Client = core.Client
	// Config configures the dedup store.
	Config = core.Config
	// TieringConfig tunes adaptive redundancy (Config.Tiering).
	TieringConfig = core.TieringConfig
	// TierStats counts the tiering subsystem's work (Store.TierStats).
	TierStats = core.TierStats
	// TierCensus is the per-temperature population snapshot of the last
	// policy pass (Store.TierCensus).
	TierCensus = core.TierCensus
	// BlockDevice is an RBD-like virtual disk striped over objects.
	BlockDevice = client.BlockDevice
	// CostParams is the simulated-hardware cost model.
	CostParams = simcost.Params
	// Registry is the cluster-wide metric registry (Cluster.Metrics).
	Registry = metrics.Registry
	// TraceSink collects per-op trace spans (Cluster.Trace).
	TraceSink = metrics.TraceSink
	// Span is one traced operation with its queue-wait/service breakdown.
	Span = metrics.Span
	// Monitor is the heartbeat failure detector (Cluster.StartMonitor).
	Monitor = rados.Monitor
	// MonitorConfig tunes heartbeat detection and auto-recovery.
	MonitorConfig = rados.MonitorConfig
	// MonEvent is one availability-timeline entry from the monitor.
	MonEvent = rados.MonEvent
	// FaultInjector executes deterministic fault schedules (chaos.NewInjector).
	FaultInjector = chaos.Injector
	// Fault is one scheduled fault (crash, restart, slow disk/NIC).
	Fault = chaos.Fault
	// FaultSchedule is an ordered set of faults.
	FaultSchedule = chaos.Schedule
	// RetryBackend wraps an object backend with timeout/backoff retries.
	RetryBackend = client.RetryBackend
	// RetryPolicy bounds a RetryBackend's retry loop.
	RetryPolicy = client.RetryPolicy
	// TenantCoordinator is the multi-tenant serving front end
	// (NewTenantCoordinator): tenants share one cluster through per-tenant
	// token-bucket admission.
	TenantCoordinator = gateway.Coordinator
	// Tenant is one registered tenant identity with its SLO and accounting.
	Tenant = gateway.Tenant
	// SLO is a tenant's service contract (rate, burst, inflight, weight).
	SLO = gateway.SLO
	// TenantStats is one tenant's aggregated admission accounting.
	TenantStats = gateway.TenantStats
)

// FormatUsage renders resource utilization rows (Cluster.Resources().Snapshot)
// as an aligned table.
var FormatUsage = metrics.FormatUsage

// Redundancy helpers.
var (
	// ReplicatedN returns an n-way replication scheme.
	ReplicatedN = rados.ReplicatedN
	// ErasureKM returns a k+m erasure-coding scheme.
	ErasureKM = rados.ErasureKM
)

// Chaos helpers.
var (
	// NewFaultInjector binds a fault injector to a cluster.
	NewFaultInjector = chaos.NewInjector
	// GenerateFaults draws a reproducible random fault schedule from a seed.
	GenerateFaults = chaos.Generate
	// DefaultMonitorConfig returns the failure detector defaults.
	DefaultMonitorConfig = rados.DefaultMonitorConfig
	// DefaultRetryPolicy returns the client retry defaults.
	DefaultRetryPolicy = client.DefaultRetryPolicy
	// IsUnavailable reports whether an error is transient unavailability a
	// client should retry (dead primary not yet remapped, PG below quorum).
	IsUnavailable = rados.IsUnavailable
)

// Multi-tenant gateway helpers.
var (
	// NewTenantCoordinator creates a tenant admission front end publishing
	// per-tenant instruments into a registry (usually Cluster.Metrics()).
	NewTenantCoordinator = gateway.New
	// ParseSLO parses an SLO spec: "gold", "silver", "bronze",
	// "unthrottled", or "weight=500,rate=32M,burst=4M,inflight=16".
	ParseSLO = gateway.ParseSLO
	// GoldSLO, SilverSLO and BronzeSLO are the built-in service classes.
	GoldSLO   = gateway.Gold
	SilverSLO = gateway.Silver
	BronzeSLO = gateway.Bronze
)

// NewTenantBlockDevice creates a virtual disk whose every op clears the
// tenant's admission (token bucket, inflight cap, coordinator slots) before
// reaching the dedup store, with the tenant identity attributed on every
// trace span along the way.
func NewTenantBlockDevice(name string, size, objectSize int64, cl *Client, tn *Tenant) (*BlockDevice, error) {
	cl.SetTenant(tn.Name())
	d, err := client.NewBlockDevice(name, size, objectSize, tn.Backend(&client.DedupBackend{Client: cl}))
	if err != nil {
		return nil, err
	}
	d.SetTrace(cl.Trace())
	d.SetTenant(tn.Name())
	return d, nil
}

// DefaultConfig returns the paper's evaluation configuration (32 KiB static
// chunks, replicated ×2 pools, post-processing with rate control).
func DefaultConfig() Config { return core.DefaultConfig() }

// DefaultTiering returns an enabled adaptive-redundancy configuration
// (assign to Config.Tiering before OpenStore).
var DefaultTiering = core.DefaultTiering

// OpenStore creates the metadata/chunk pools on a cluster and returns the
// dedup store.
func OpenStore(c *Cluster, cfg Config) (*Store, error) { return core.Open(c, cfg) }

// NewBlockDevice creates a virtual disk backed by a dedup store client.
// Device-level trace spans record into the cluster's trace sink.
func NewBlockDevice(name string, size, objectSize int64, cl *Client) (*BlockDevice, error) {
	d, err := client.NewBlockDevice(name, size, objectSize, &client.DedupBackend{Client: cl})
	if err != nil {
		return nil, err
	}
	d.SetTrace(cl.Trace())
	return d, nil
}

// World bundles a simulation engine with a ready-made cluster shaped like
// the paper's testbed (4 hosts × 4 OSDs, SSDs, 10GbE).
type World struct {
	Engine  *Engine
	Cluster *Cluster
}

// NewWorld creates a deterministic simulated testbed.
func NewWorld(seed int64) *World {
	eng := sim.New(seed)
	return &World{Engine: eng, Cluster: rados.NewTestbed(eng, simcost.Default(), 4, 4)}
}

// NewWorldSized creates a testbed with a custom shape.
func NewWorldSized(seed int64, hosts, osdsPerHost int) *World {
	eng := sim.New(seed)
	return &World{Engine: eng, Cluster: rados.NewTestbed(eng, simcost.Default(), hosts, osdsPerHost)}
}

// Run executes fn as a simulated process and drives the virtual clock until
// all foreground work completes. It may be called repeatedly; background
// daemons (the dedup engine) persist across calls.
func (w *World) Run(fn func(p *Proc)) {
	w.Engine.Go("main", fn)
	w.Engine.Run()
}
