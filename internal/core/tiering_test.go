package core

import (
	"bytes"
	"testing"
	"time"

	"dedupstore/internal/rados"
	"dedupstore/internal/sim"
)

// mkData returns size bytes of a repeating one-byte pattern.
func mkData(b byte, size int) []byte { return bytes.Repeat([]byte{b}, size) }

// newTierEnv builds a store with adaptive tiering on and a fast hitset
// clock: one access in the open slice grades warm, accesses in two
// consecutive slices grade hot, and ~600ms of silence grades cold.
func newTierEnv(t *testing.T, mutate func(*Config)) *env {
	t.Helper()
	return newDedupEnv(t, func(cfg *Config) {
		cfg.Tiering = DefaultTiering()
		cfg.HitSet.Period = 100 * time.Millisecond
		cfg.HitSet.Retain = 4
		if mutate != nil {
			mutate(cfg)
		}
	})
}

// coolDown sleeps long enough that every retained hitset slice rolls away.
func coolDown(p *sim.Proc) { p.Sleep(700 * time.Millisecond) }

// heat records accesses in two consecutive slices, grading oid hot.
func heat(p *sim.Proc, e *env, oid string) {
	e.s.cache.RecordAccess(p.Now(), oid)
	p.Sleep(110 * time.Millisecond)
	e.s.cache.RecordAccess(p.Now(), oid)
}

// entries reads oid's chunk map.
func entries(t *testing.T, p *sim.Proc, e *env, oid string) []Entry {
	t.Helper()
	gw := e.s.hostGW(anyHost(e.s))
	raw, err := gw.GetXattr(p, e.s.meta, oid, XattrChunkMap)
	if err != nil {
		t.Fatalf("chunk map of %s: %v", oid, err)
	}
	cm, err := UnmarshalChunkMap(raw)
	if err != nil {
		t.Fatal(err)
	}
	return cm.Entries
}

// checkClean runs the full reconciliation battery and requires a spotless
// result: a clean audit, zero stale references on a repeat GC, and a clean
// scrub across both chunk pools.
func checkClean(t *testing.T, p *sim.Proc, e *env) {
	t.Helper()
	if rep, err := e.s.Scrub(p); err != nil || !rep.Clean() {
		t.Fatalf("scrub: err=%v issues=%v", err, rep.Issues)
	}
	if st, err := e.s.Audit(p); err != nil || !st.Clean() {
		t.Fatalf("audit not clean: err=%v %+v", err, st)
	}
	if st, err := e.s.GC(p); err != nil || st.StaleRefs != 0 {
		t.Fatalf("gc found stale refs: err=%v %+v", err, st)
	}
}

func TestTieringOpenValidation(t *testing.T) {
	c := newTestCluster(sim.New(3))
	cfg := DefaultConfig()
	cfg.Tiering = DefaultTiering()
	cfg.Mode = ModeInline
	if _, err := Open(c, cfg); err == nil {
		t.Fatal("tiering with inline mode should be rejected")
	}

	c2 := newTestCluster(sim.New(3))
	cfg = DefaultConfig()
	cfg.Tiering = DefaultTiering()
	s, err := Open(c2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.ColdChunkPool() == nil {
		t.Fatal("tiering enabled but no cold pool")
	}
	if got := s.Config().Tiering.ColdPoolName; got != "chunkcold" {
		t.Fatalf("default cold pool name = %q", got)
	}
	if got := s.Config().Tiering.ColdRedundancy; got != rados.ErasureKM(2, 1) {
		t.Fatalf("default cold redundancy = %+v", got)
	}
	if !s.Cache().Adaptive() {
		t.Fatal("tiering should put the policy in adaptive mode")
	}
}

// TestFlushLandsByTemperature: the flush engine places chunks in the pool
// the object's temperature selects — cold objects erasure-code, warm ones
// replicate.
func TestFlushLandsByTemperature(t *testing.T) {
	e := newTierEnv(t, nil)
	coldData := mkData(0xC0, 8192)
	warmData := mkData(0xAA, 8192)
	e.run(t, func(p *sim.Proc) {
		if err := e.cl.Write(p, "coldobj", 0, coldData); err != nil {
			t.Fatal(err)
		}
		coolDown(p) // coldobj's write-time access rolls out of every slice
		if err := e.cl.Write(p, "warmobj", 0, warmData); err != nil {
			t.Fatal(err)
		}
		e.s.Engine().DrainAndWait(p)
		for _, en := range entries(t, p, e, "coldobj") {
			if !en.Cold {
				t.Errorf("coldobj slot %d: flushed warm, want cold", en.Start)
			}
		}
		for _, en := range entries(t, p, e, "warmobj") {
			if en.Cold {
				t.Errorf("warmobj slot %d: flushed cold, want warm", en.Start)
			}
		}
		if n := len(e.c.ListObjects(e.s.ColdChunkPool())); n == 0 {
			t.Error("no chunk objects in the cold pool")
		}
		for _, oid := range []string{"coldobj", "warmobj"} {
			want := coldData
			if oid == "warmobj" {
				want = warmData
			}
			got, err := e.cl.Read(p, oid, 0, -1)
			if err != nil || !bytes.Equal(got, want) {
				t.Errorf("%s: read mismatch after flush (err=%v)", oid, err)
			}
		}
		checkClean(t, p, e)
	})
}

// TestTierPassLifecycle drives one object through the full temperature
// cycle — warm placement, demotion to EC, promotion back to the replicated
// pool, recache to the hot form, and re-dedup — verifying pool residency,
// data integrity, and reconciler cleanliness at every step.
func TestTierPassLifecycle(t *testing.T) {
	e := newTierEnv(t, nil)
	data := mkData(0x5A, 8192) // two 4 KiB chunks
	e.run(t, func(p *sim.Proc) {
		if err := e.cl.Write(p, "obj", 0, data); err != nil {
			t.Fatal(err)
		}
		e.s.Engine().DrainAndWait(p) // warm at flush time → warm pool
		for _, en := range entries(t, p, e, "obj") {
			if en.Cold || en.ChunkID == "" {
				t.Fatalf("expected warm bound slot, got %+v", en)
			}
		}

		// Cool → demote: chunks move into the EC pool, the warm copies die.
		coolDown(p)
		ps, err := e.s.TierPass(p)
		if err != nil {
			t.Fatal(err)
		}
		if ps.DemotedChunks != 2 {
			t.Fatalf("DemotedChunks = %d, want 2", ps.DemotedChunks)
		}
		for _, en := range entries(t, p, e, "obj") {
			if !en.Cold {
				t.Fatalf("slot %d not demoted", en.Start)
			}
		}
		if n := len(e.c.ListObjects(e.s.chunk)); n != 0 {
			t.Fatalf("%d chunk objects left in the warm pool after demote", n)
		}
		if got, _ := e.cl.Read(p, "obj", 0, -1); !bytes.Equal(got, data) {
			t.Fatal("read mismatch after demote")
		}
		checkClean(t, p, e)

		// One access → warm → promote back into the replicated pool.
		coolDown(p)
		e.s.cache.RecordAccess(p.Now(), "obj")
		ps, err = e.s.TierPass(p)
		if err != nil {
			t.Fatal(err)
		}
		if ps.PromotedChunks != 2 {
			t.Fatalf("PromotedChunks = %d, want 2", ps.PromotedChunks)
		}
		for _, en := range entries(t, p, e, "obj") {
			if en.Cold {
				t.Fatalf("slot %d not promoted", en.Start)
			}
		}
		if n := len(e.c.ListObjects(e.s.coldChunk)); n != 0 {
			t.Fatalf("%d chunk objects left in the cold pool after promote", n)
		}
		checkClean(t, p, e)

		// Heat → recache: bindings drop, bytes come home, chunks are freed.
		heat(p, e, "obj")
		ps, err = e.s.TierPass(p)
		if err != nil {
			t.Fatal(err)
		}
		if ps.Recaches != 1 {
			t.Fatalf("Recaches = %d, want 1", ps.Recaches)
		}
		for _, en := range entries(t, p, e, "obj") {
			if en.ChunkID != "" || !en.Cached {
				t.Fatalf("slot %d not recached: %+v", en.Start, en)
			}
		}
		if n := len(e.c.ListObjects(e.s.chunk)) + len(e.c.ListObjects(e.s.coldChunk)); n != 0 {
			t.Fatalf("%d chunk objects survive a full recache", n)
		}
		if got, _ := e.cl.Read(p, "obj", 0, -1); !bytes.Equal(got, data) {
			t.Fatal("read mismatch after recache")
		}
		checkClean(t, p, e)

		// Cool again → rededup: slots go back to the dedup engine, which
		// lands them straight in the EC pool (the object is cold by then).
		coolDown(p)
		ps, err = e.s.TierPass(p)
		if err != nil {
			t.Fatal(err)
		}
		if ps.Rededups != 1 {
			t.Fatalf("Rededups = %d, want 1", ps.Rededups)
		}
		e.s.Engine().DrainAndWait(p)
		for _, en := range entries(t, p, e, "obj") {
			if en.ChunkID == "" || !en.Cold {
				t.Fatalf("slot %d not re-deduplicated cold: %+v", en.Start, en)
			}
		}
		if got, _ := e.cl.Read(p, "obj", 0, -1); !bytes.Equal(got, data) {
			t.Fatal("read mismatch after rededup")
		}
		checkClean(t, p, e)

		// Totals accumulated across the whole lifecycle.
		tot := e.s.TierStats()
		if tot.Passes != 4 || tot.DemotedChunks != 2 || tot.PromotedChunks != 2 || tot.Recaches != 1 || tot.Rededups != 1 {
			t.Fatalf("unexpected totals: %+v", tot)
		}
		census, _ := e.s.TierCensus()
		var objs int64
		for _, n := range census.Objects {
			objs += n
		}
		if objs != 1 {
			t.Fatalf("census counted %d objects, want 1", objs)
		}
	})
}

// TestTierSharedChunkAcrossPools: two objects share a fingerprint; one goes
// cold and is demoted while the other stays warm. The same fingerprint must
// then live in both pools, each copy carrying only its own references.
func TestTierSharedChunkAcrossPools(t *testing.T) {
	e := newTierEnv(t, nil)
	shared := mkData(0x77, 4096)
	e.run(t, func(p *sim.Proc) {
		if err := e.cl.Write(p, "sleeper", 0, shared); err != nil {
			t.Fatal(err)
		}
		if err := e.cl.Write(p, "worker", 0, shared); err != nil {
			t.Fatal(err)
		}
		e.s.Engine().DrainAndWait(p) // both warm: one shared chunk, 2 refs
		if n := len(e.c.ListObjects(e.s.chunk)); n != 1 {
			t.Fatalf("%d warm chunks, want 1 (shared)", n)
		}
		coolDown(p)
		e.s.cache.RecordAccess(p.Now(), "worker") // keep one side warm
		ps, err := e.s.TierPass(p)
		if err != nil {
			t.Fatal(err)
		}
		if ps.DemotedChunks != 1 {
			t.Fatalf("DemotedChunks = %d, want 1", ps.DemotedChunks)
		}
		if n := len(e.c.ListObjects(e.s.chunk)); n != 1 {
			t.Fatalf("warm copy vanished though worker still references it (%d chunks)", n)
		}
		if n := len(e.c.ListObjects(e.s.coldChunk)); n != 1 {
			t.Fatalf("%d cold chunks, want 1", n)
		}
		for _, oid := range []string{"sleeper", "worker"} {
			got, err := e.cl.Read(p, oid, 0, -1)
			if err != nil || !bytes.Equal(got, shared) {
				t.Fatalf("%s: read mismatch (err=%v)", oid, err)
			}
		}
		checkClean(t, p, e)
	})
}

// TestTierMigrationBudget: MaxMigrationsPerPass caps chunk moves per pass,
// and successive passes finish the job.
func TestTierMigrationBudget(t *testing.T) {
	e := newTierEnv(t, func(cfg *Config) { cfg.Tiering.MaxMigrationsPerPass = 1 })
	e.run(t, func(p *sim.Proc) {
		if err := e.cl.Write(p, "obj", 0, mkData(0x31, 12288)); err != nil { // 3 chunks
			t.Fatal(err)
		}
		e.s.Engine().DrainAndWait(p)
		coolDown(p)
		for pass := 1; pass <= 3; pass++ {
			ps, err := e.s.TierPass(p)
			if err != nil {
				t.Fatal(err)
			}
			if ps.DemotedChunks != 1 {
				t.Fatalf("pass %d demoted %d chunks, want 1", pass, ps.DemotedChunks)
			}
		}
		for _, en := range entries(t, p, e, "obj") {
			if !en.Cold {
				t.Fatalf("slot %d still warm after 3 budgeted passes", en.Start)
			}
		}
		checkClean(t, p, e)
	})
}

// TestTierMigrateCrashAfterIntent: a migration dying between phase 1 and
// the binding flip leaves an orphan intent on the destination pool. The
// lease expires, GC aborts it, and a later pass completes the move.
func TestTierMigrateCrashAfterIntent(t *testing.T) {
	e := newTierEnv(t, nil)
	data := mkData(0x11, 4096)
	e.run(t, func(p *sim.Proc) {
		if err := e.cl.Write(p, "obj", 0, data); err != nil {
			t.Fatal(err)
		}
		e.s.Engine().DrainAndWait(p)
		coolDown(p)
		e.s.tier.hookAfterIntent = func(string, Entry) bool { return true }
		ps, err := e.s.TierPass(p)
		if err != nil {
			t.Fatal(err)
		}
		if ps.Errors != 1 || ps.DemotedChunks != 0 {
			t.Fatalf("crashed pass: %+v", ps)
		}
		e.s.tier.hookAfterIntent = nil
		for _, en := range entries(t, p, e, "obj") {
			if en.Cold {
				t.Fatal("binding moved despite the crash")
			}
		}
		// Post-mortem: lease expiry, then the reconcilers.
		p.Sleep(e.s.cfg.IntentLease + time.Second)
		gcStats, err := e.s.GC(p)
		if err != nil {
			t.Fatal(err)
		}
		if gcStats.IntentsAborted == 0 {
			t.Fatalf("expected an aborted orphan intent: %+v", gcStats)
		}
		checkClean(t, p, e)
		// The object is still cold; the next pass finishes the demotion.
		if ps, err = e.s.TierPass(p); err != nil || ps.DemotedChunks != 1 {
			t.Fatalf("retry pass: err=%v %+v", err, ps)
		}
		if got, _ := e.cl.Read(p, "obj", 0, -1); !bytes.Equal(got, data) {
			t.Fatal("read mismatch after recovery")
		}
		checkClean(t, p, e)
	})
}

// TestTierMigrateCrashAfterBind: a migration dying between the binding flip
// and commit/de-reference leaves (a) an uncommitted intent on the
// destination that the audit promotes, and (b) a stale committed reference
// on the source that GC sweeps. No data is lost and no issue survives.
func TestTierMigrateCrashAfterBind(t *testing.T) {
	e := newTierEnv(t, nil)
	data := mkData(0x22, 4096)
	e.run(t, func(p *sim.Proc) {
		if err := e.cl.Write(p, "obj", 0, data); err != nil {
			t.Fatal(err)
		}
		e.s.Engine().DrainAndWait(p)
		coolDown(p)
		e.s.tier.hookAfterBind = func(string, Entry) bool { return true }
		ps, err := e.s.TierPass(p)
		if err != nil {
			t.Fatal(err)
		}
		if ps.Errors != 1 {
			t.Fatalf("crashed pass: %+v", ps)
		}
		e.s.tier.hookAfterBind = nil
		for _, en := range entries(t, p, e, "obj") {
			if !en.Cold {
				t.Fatal("binding should have flipped before the crash")
			}
		}
		p.Sleep(e.s.cfg.IntentLease + time.Second)
		auditStats, err := e.s.Audit(p)
		if err != nil {
			t.Fatal(err)
		}
		if auditStats.IntentsPromoted == 0 {
			t.Fatalf("expected the audit to promote the orphan intent: %+v", auditStats)
		}
		gcStats, err := e.s.GC(p)
		if err != nil {
			t.Fatal(err)
		}
		if gcStats.StaleRefs == 0 {
			t.Fatalf("expected GC to sweep the stale source reference: %+v", gcStats)
		}
		if got, _ := e.cl.Read(p, "obj", 0, -1); !bytes.Equal(got, data) {
			t.Fatal("read mismatch after recovery")
		}
		checkClean(t, p, e)
	})
}

// TestTierRecacheCrashAfterBind: a recache dying after the binding swap but
// before the de-references leaves stale references on the chunks. GC's mark
// pass sees no binding and sweeps them; the recached bytes are intact.
func TestTierRecacheCrashAfterBind(t *testing.T) {
	e := newTierEnv(t, nil)
	data := mkData(0x33, 8192)
	e.run(t, func(p *sim.Proc) {
		if err := e.cl.Write(p, "obj", 0, data); err != nil {
			t.Fatal(err)
		}
		e.s.Engine().DrainAndWait(p)
		heat(p, e, "obj")
		e.s.tier.hookAfterBind = func(string, Entry) bool { return true }
		ps, err := e.s.TierPass(p)
		if err != nil {
			t.Fatal(err)
		}
		if ps.Errors != 1 || ps.Recaches != 1 {
			t.Fatalf("crashed pass: %+v", ps)
		}
		e.s.tier.hookAfterBind = nil
		if got, _ := e.cl.Read(p, "obj", 0, -1); !bytes.Equal(got, data) {
			t.Fatal("read mismatch after crashed recache")
		}
		p.Sleep(e.s.cfg.IntentLease + time.Second)
		gcStats, err := e.s.GC(p)
		if err != nil {
			t.Fatal(err)
		}
		if gcStats.StaleRefs != 2 {
			t.Fatalf("StaleRefs = %d, want 2: %+v", gcStats.StaleRefs, gcStats)
		}
		if n := len(e.c.ListObjects(e.s.chunk)); n != 0 {
			t.Fatalf("%d unreferenced chunks survive GC", n)
		}
		checkClean(t, p, e)
	})
}

// TestTierRacedByClientWrite: a client write between a pass's map read and
// the migration's phase 2 invalidates the move — the binding is untouched
// and the destination intent is aborted inline.
func TestTierRacedByClientWrite(t *testing.T) {
	e := newTierEnv(t, nil)
	e.run(t, func(p *sim.Proc) {
		if err := e.cl.Write(p, "obj", 0, mkData(0x44, 4096)); err != nil {
			t.Fatal(err)
		}
		e.s.Engine().DrainAndWait(p)
		coolDown(p)
		// The hook fires after phase 1, exactly inside the race window.
		e.s.tier.hookAfterIntent = func(oid string, en Entry) bool {
			done := p.Go("racer", func(q *sim.Proc) {
				if err := e.cl.Write(q, "obj", 0, mkData(0x55, 4096)); err != nil {
					t.Error(err)
				}
			})
			sim.WaitAll(p, done)
			return false // no crash — let phase 2 observe the raced slot
		}
		ps, err := e.s.TierPass(p)
		e.s.tier.hookAfterIntent = nil
		if err != nil {
			t.Fatal(err)
		}
		if ps.RacedSkips != 1 || ps.DemotedChunks != 0 || ps.Errors != 0 {
			t.Fatalf("raced pass: %+v", ps)
		}
		e.s.Engine().DrainAndWait(p)
		if got, _ := e.cl.Read(p, "obj", 0, -1); !bytes.Equal(got, mkData(0x55, 4096)) {
			t.Fatal("racing write lost")
		}
		checkClean(t, p, e)
	})
}

// TestTieringDaemon: the policy daemon runs passes on its own clock and
// stops on request.
func TestTieringDaemon(t *testing.T) {
	e := newTierEnv(t, func(cfg *Config) { cfg.Tiering.Interval = 200 * time.Millisecond })
	e.run(t, func(p *sim.Proc) {
		if err := e.cl.Write(p, "obj", 0, mkData(0x66, 4096)); err != nil {
			t.Fatal(err)
		}
		e.s.Engine().DrainAndWait(p)
		e.s.StartTieringDaemon()
		if !e.s.TieringDaemonRunning() {
			t.Fatal("daemon did not start")
		}
		p.Sleep(1500 * time.Millisecond) // object cools; daemon demotes it
		e.s.StopTieringDaemon()
		p.Sleep(300 * time.Millisecond)
		if e.s.TieringDaemonRunning() {
			t.Fatal("daemon did not stop")
		}
		if st := e.s.TierStats(); st.Passes == 0 || st.DemotedChunks != 1 {
			t.Fatalf("daemon stats: %+v", st)
		}
		for _, en := range entries(t, p, e, "obj") {
			if !en.Cold {
				t.Fatal("daemon never demoted the cold object")
			}
		}
		checkClean(t, p, e)
	})
}

// TestTieringDisabledUnchanged: with the zero-value config the subsystem is
// inert — no cold pool, boolean hotness, TierPass refuses to run.
func TestTieringDisabledUnchanged(t *testing.T) {
	e := newDedupEnv(t, nil)
	e.run(t, func(p *sim.Proc) {
		if e.s.ColdChunkPool() != nil {
			t.Fatal("cold pool exists with tiering off")
		}
		if e.s.Cache().Adaptive() {
			t.Fatal("adaptive mode on with tiering off")
		}
		if _, err := e.s.TierPass(p); err == nil {
			t.Fatal("TierPass should refuse to run with tiering off")
		}
		e.s.StartTieringDaemon()
		if e.s.TieringDaemonRunning() {
			t.Fatal("daemon started with tiering off")
		}
	})
}
