package core

import (
	"errors"

	"dedupstore/internal/qos"
	"dedupstore/internal/rados"
	"dedupstore/internal/sim"
	"dedupstore/internal/tiering"
)

// The tiering policy daemon: the background half of adaptive redundancy.
// The flush engine already lands new chunks by temperature; this daemon
// handles objects whose temperature drifted *after* placement — it walks the
// metadata pool, grades each object (hitset temperature → target form),
// diffs the target against what the chunk map actually says, and executes
// the one action tiering.Decide picks (tiermigrate.go). All I/O it issues
// rides the qos.Tiering class so foreground traffic keeps priority, and
// every action opens a trace span carrying the owning tenant's identity.

// TierStats counts the tiering subsystem's work. TierPass returns the delta
// of one pass; Store.TierStats returns the running totals.
type TierStats struct {
	Passes         int64
	ObjectsScanned int64
	Recaches       int64 // objects promoted to hot (bindings dropped, bytes recached)
	RecachedBytes  int64 // bytes read back into metadata objects
	Rededups       int64 // hot-form objects handed back to the dedup engine
	Evicts         int64 // objects whose stale hot-time cache was dropped
	EvictedChunks  int64 // cached copies dropped by those evicts
	PromotedChunks int64 // chunk moves cold (EC) → warm (replicated)
	DemotedChunks  int64 // chunk moves warm (replicated) → cold (EC)
	MigratedBytes  int64 // bytes moved between chunk pools
	RacedSkips     int64 // actions abandoned because a client write raced
	Errors         int64 // actions that failed (retried on a later pass)
}

func (t *TierStats) add(d TierStats) {
	t.Passes += d.Passes
	t.ObjectsScanned += d.ObjectsScanned
	t.Recaches += d.Recaches
	t.RecachedBytes += d.RecachedBytes
	t.Rededups += d.Rededups
	t.Evicts += d.Evicts
	t.EvictedChunks += d.EvictedChunks
	t.PromotedChunks += d.PromotedChunks
	t.DemotedChunks += d.DemotedChunks
	t.MigratedBytes += d.MigratedBytes
	t.RacedSkips += d.RacedSkips
	t.Errors += d.Errors
}

// TierCensus is the per-temperature population snapshot taken by the last
// policy pass, indexed by hitset.Temperature (Cold=0, Warm=1, Hot=2).
type TierCensus struct {
	Objects [3]int64
	Bytes   [3]int64
}

// tierState is the daemon's mutable state, embedded in Store.
type tierState struct {
	daemonOn bool
	stopReq  bool
	inFlight int // object actions currently executing

	stats    TierStats
	census   TierCensus
	censusAt sim.Time

	// Test hooks: simulated crash points inside a chunk migration. A hook
	// returning true abandons the migration at that point, as a crash would.
	hookAfterIntent func(oid string, e Entry) bool // after phase 1, before bind
	hookAfterBind   func(oid string, e Entry) bool // after phase 2, before commit/deref
}

// TierStats returns the running totals of all tiering passes.
func (s *Store) TierStats() TierStats { return s.tier.stats }

// TierCensus returns the per-temperature census of the last pass and the
// sim-time it was taken.
func (s *Store) TierCensus() (TierCensus, sim.Time) { return s.tier.census, s.tier.censusAt }

// TierInFlight returns the number of object migrations currently executing.
func (s *Store) TierInFlight() int { return s.tier.inFlight }

// TieringDaemonRunning reports whether the policy daemon is live.
func (s *Store) TieringDaemonRunning() bool { return s.tier.daemonOn }

// StartTieringDaemon spawns the policy daemon (no-op unless tiering is
// enabled): every Tiering.Interval it runs one TierPass. Modeled on the
// rate-policy controller — a single long-lived process, stopped via
// StopTieringDaemon.
func (s *Store) StartTieringDaemon() {
	if !s.cfg.Tiering.Enabled || s.tier.daemonOn {
		return
	}
	s.tier.daemonOn = true
	s.tier.stopReq = false
	s.cluster.Engine().GoDaemon("dedup.tier-policy", func(p *sim.Proc) {
		defer func() { s.tier.daemonOn = false }()
		for !s.tier.stopReq {
			p.Sleep(s.cfg.Tiering.Interval)
			if s.tier.stopReq {
				return
			}
			_, _ = s.TierPass(p)
		}
	})
}

// StopTieringDaemon asks the policy daemon to exit after its current pass.
func (s *Store) StopTieringDaemon() { s.tier.stopReq = true }

// TierPass runs one policy pass: census every object's temperature, and for
// each object whose placement disagrees with its target form, execute the
// next migration step. Returns this pass's work as a TierStats delta.
// Callable directly (tests, dedupctl) as well as from the daemon.
func (s *Store) TierPass(p *sim.Proc) (TierStats, error) {
	var ps TierStats
	if !s.cfg.Tiering.Enabled {
		return ps, errors.New("core: tiering is not enabled")
	}
	ps.Passes = 1
	var census TierCensus
	gw := s.hostGWClass(anyHost(s), qos.Tiering)
	budget := s.cfg.Tiering.MaxMigrationsPerPass
	if budget <= 0 {
		budget = int(^uint(0) >> 1) // unlimited
	}
	for _, oid := range s.cluster.ListObjects(s.meta) {
		if IsSystemObject(oid) {
			continue
		}
		ps.ObjectsScanned++
		var raw []byte
		err := retryUnavailable(p, func() error {
			var e error
			raw, e = gw.GetXattr(p, s.meta, oid, XattrChunkMap)
			return e
		})
		if err != nil {
			continue // deleted meanwhile, or unreachable: next pass
		}
		cm, err := UnmarshalChunkMap(raw)
		if err != nil {
			continue // scrub's finding, not ours
		}
		st, bytes := tierObjectState(cm)
		temp := s.cache.Temp(p.Now(), oid)
		census.Objects[temp]++
		census.Bytes[temp] += bytes
		act := tiering.Decide(tiering.FormFor(temp), st)
		if act == tiering.ActNone {
			continue
		}
		moved, err := s.applyTierAction(p, gw, oid, cm, act, budget, &ps)
		budget -= moved
		if err != nil {
			ps.Errors++
		}
		if budget <= 0 {
			break
		}
	}
	s.tier.census = census
	s.tier.censusAt = p.Now()
	s.tier.stats.add(ps)
	reg := s.cluster.Metrics()
	reg.Counter("tier_passes_total").Inc()
	reg.Counter("tier_recaches_total").Add(ps.Recaches)
	reg.Counter("tier_recached_bytes_total").Add(ps.RecachedBytes)
	reg.Counter("tier_rededups_total").Add(ps.Rededups)
	reg.Counter("tier_evicted_chunks_total").Add(ps.EvictedChunks)
	reg.Counter("tier_promoted_chunks_total").Add(ps.PromotedChunks)
	reg.Counter("tier_demoted_chunks_total").Add(ps.DemotedChunks)
	reg.Counter("tier_migrated_bytes_total").Add(ps.MigratedBytes)
	reg.Counter("tier_raced_skips_total").Add(ps.RacedSkips)
	reg.Counter("tier_errors_total").Add(ps.Errors)
	return ps, nil
}

// tierObjectState folds a chunk map into the slot-population summary the
// decision layer consumes, plus the object's logical byte size.
func tierObjectState(cm *ChunkMap) (tiering.ObjectState, int64) {
	var st tiering.ObjectState
	var bytes int64
	for _, e := range cm.Entries {
		bytes += e.Len()
		switch {
		case e.Dirty:
			st.DirtySlots++
		case e.ChunkID == "":
			if e.Cached {
				st.CachedOnly++
			}
		case e.Cached:
			st.CachedBound++
		case e.Cold:
			st.ColdChunks++
		default:
			st.WarmChunks++
		}
	}
	return st, bytes
}

// applyTierAction executes one migration step under a trace span carrying
// the owning tenant and the tiering QoS class. Returns how many chunk moves
// it consumed from the pass's migration budget.
func (s *Store) applyTierAction(p *sim.Proc, gw *rados.Gateway, oid string, cm *ChunkMap, act tiering.Action, budget int, ps *TierStats) (moved int, err error) {
	sp := s.cluster.Trace().Start(p, "tier."+act.String()).
		SetOp(s.cfg.MetaPoolName, "", 0).
		SetTenant(s.cache.TenantOf(oid)).
		SetClass(qos.Tiering.String())
	s.tier.inFlight++
	defer func() {
		s.tier.inFlight--
		if sp != nil {
			sp.Err = err != nil
			sp.Finish(p)
		}
	}()
	switch act {
	case tiering.ActRecache:
		err = s.recacheObject(p, gw, oid, cm, ps)
	case tiering.ActRededup:
		err = s.rededupObject(p, gw, oid, ps)
	case tiering.ActEvict:
		err = s.evictObject(p, gw, oid, ps)
	case tiering.ActPromoteWarm:
		moved, err = s.migrateObjectChunks(p, gw, oid, cm, false, budget, ps)
	case tiering.ActDemoteCold:
		moved, err = s.migrateObjectChunks(p, gw, oid, cm, true, budget, ps)
	}
	if errors.Is(err, rados.ErrNotFound) {
		err = nil // object deleted mid-action: nothing to migrate
	}
	return moved, err
}
