package core

import (
	"errors"
	"fmt"

	"dedupstore/internal/qos"
	"dedupstore/internal/rados"
	"dedupstore/internal/sim"
	"dedupstore/internal/store"
)

// Migration executors: the I/O half of adaptive redundancy. Each executor
// advances one object a single step toward its target form; the policy
// daemon re-walks objects every pass, so multi-step transitions converge
// across passes. Chunk moves between pools ride the same two-phase
// intent-logged reference protocol as the flush (refcount.go), so a crash
// anywhere mid-migration leaves only state GC and the audit pass already
// know how to reconcile — no new crash windows, no stale references.

// recacheObject promotes an object to its hot form: every clean bound
// slot's bytes are read back into the metadata object, the binding is
// dropped (ChunkID="") and the chunk de-referenced. Slots that still hold a
// cached copy (flushed while hot) skip the read — only the binding changes.
//
// Crash windows: the binding swap is one metadata-pool transaction, and a
// slot without a binding holds no reference, so a crash after the swap but
// before the de-reference leaves a stale reference on the chunk — exactly
// the state GC's mark pass detects (binding gone → reference dead) and
// sweeps.
func (s *Store) recacheObject(p *sim.Proc, gw *rados.Gateway, oid string, cm *ChunkMap, ps *TierStats) error {
	// Read the chunk bytes of every uncached bound slot first, outside the
	// metadata object's PG lock.
	type fill struct {
		e    Entry
		data []byte
	}
	var fills []fill
	for _, e := range cm.Entries {
		if e.Dirty || e.ChunkID == "" || e.Cached {
			continue
		}
		s.cluster.QoS().WaitTurn(p, qos.Tiering)
		data, err := gw.Read(p, s.chunkPoolFor(e.Cold), e.ChunkID, 0, e.Len())
		if err != nil {
			return fmt.Errorf("core: recache read chunk %s: %w", e.ChunkID, err)
		}
		if int64(len(data)) < e.Len() {
			data = append(data, make([]byte, e.Len()-int64(len(data)))...)
		}
		fills = append(fills, fill{e: e, data: data})
	}
	payload := 0
	for _, f := range fills {
		payload += len(f.data)
	}

	// Swap every binding in one transaction, re-checking each slot under the
	// PG lock: a raced slot (newer write, new binding, or gone) is skipped
	// and left to the engine. Collect the old bindings actually swapped so
	// only their references are dropped.
	var swapped []Entry
	err := gw.MutateWithPayload(p, s.meta, oid, payload, func(v rados.View) (*store.Txn, error) {
		swapped = swapped[:0]
		cur, err := loadChunkMap(v)
		if err != nil {
			return nil, err
		}
		txn := store.NewTxn()
		changed := false
		recheck := func(e Entry) (Entry, int, bool) {
			i := cur.Find(e.Start)
			if i < 0 {
				return Entry{}, -1, false
			}
			cs := cur.Entries[i]
			if cs.Gen != e.Gen || cs.ChunkID != e.ChunkID || cs.Cold != e.Cold || cs.Dirty {
				return Entry{}, -1, false
			}
			return cs, i, true
		}
		for _, f := range fills {
			cs, i, ok := recheck(f.e)
			if !ok {
				ps.RacedSkips++
				continue
			}
			txn.Write(cs.Start, f.data)
			swapped = append(swapped, cs)
			cs.Cached = true
			cs.ChunkID = ""
			cs.Cold = false
			cs.Gen++
			cur.Entries[i] = cs
			changed = true
			ps.RecachedBytes += int64(len(f.data))
		}
		// Cached-bound slots: the bytes are already in place; just unbind.
		for _, e := range cm.Entries {
			if e.Dirty || e.ChunkID == "" || !e.Cached {
				continue
			}
			cs, i, ok := recheck(e)
			if !ok {
				ps.RacedSkips++
				continue
			}
			swapped = append(swapped, cs)
			cs.ChunkID = ""
			cs.Cold = false
			cs.Gen++
			cur.Entries[i] = cs
			changed = true
		}
		if !changed {
			return nil, nil
		}
		txn.SetXattr(XattrChunkMap, cur.Marshal())
		return txn, nil
	})
	if err != nil {
		return err
	}
	if len(swapped) == 0 {
		return nil
	}
	ps.Recaches++
	if s.tier.hookAfterBind != nil && s.tier.hookAfterBind(oid, swapped[0]) {
		return errCrash // stale refs on the chunks; GC sweeps them
	}
	// De-reference the old bindings — after the swap, so no window exists
	// where a binding points at a chunk whose reference is already gone.
	for _, old := range swapped {
		ref := Ref{Pool: s.meta.ID, OID: oid, Offset: old.Start}
		fn := decRefFn(ref)
		if s.cfg.FalsePositiveRefs {
			fn = dropRefFn(ref)
		}
		if derr := gw.Mutate(p, s.chunkPoolFor(old.Cold), old.ChunkID, fn); derr != nil && !errors.Is(derr, ErrNotFound) {
			return derr
		}
	}
	return nil
}

// rededupObject demotes a hot-form object: clean cached-only slots are
// marked dirty again (keeping the cached bytes — they are the data) and the
// object goes back on the dirty list, so the ordinary flush engine
// re-deduplicates it, landing chunks in the pool its current temperature
// selects. No references move here, so there is nothing to crash.
func (s *Store) rededupObject(p *sim.Proc, gw *rados.Gateway, oid string, ps *TierStats) error {
	marked := false
	err := gw.Mutate(p, s.meta, oid, func(v rados.View) (*store.Txn, error) {
		marked = false
		cur, err := loadChunkMap(v)
		if err != nil {
			return nil, err
		}
		for i, e := range cur.Entries {
			if e.Dirty || !e.Cached || e.ChunkID != "" {
				continue
			}
			e.Dirty = true
			e.Gen++
			cur.Entries[i] = e
			marked = true
		}
		if !marked {
			return nil, nil
		}
		return store.NewTxn().SetXattr(XattrChunkMap, cur.Marshal()), nil
	})
	if err != nil || !marked {
		return err
	}
	ps.Rededups++
	return retryUnavailable(p, func() error {
		return gw.Mutate(p, s.meta, s.dirtyListOID(oid), func(rados.View) (*store.Txn, error) {
			return store.NewTxn().Create().OmapSet(oid, nil), nil
		})
	})
}

// evictObject drops the hot-time cached copies of an already-deduplicated
// object (clean, bound, cached slots), reclaiming metadata-pool space — the
// per-object form of the cache agent's EvictCold pass.
func (s *Store) evictObject(p *sim.Proc, gw *rados.Gateway, oid string, ps *TierStats) error {
	evicted := 0
	err := gw.Mutate(p, s.meta, oid, func(v rados.View) (*store.Txn, error) {
		evicted = 0
		cur, err := loadChunkMap(v)
		if err != nil {
			return nil, err
		}
		txn := store.NewTxn()
		for i, e := range cur.Entries {
			if e.Dirty || !e.Cached || e.ChunkID == "" {
				continue
			}
			cur.Entries[i].Cached = false
			txn.Zero(e.Start, e.Len())
			evicted++
		}
		if evicted == 0 {
			return nil, nil
		}
		txn.SetXattr(XattrChunkMap, cur.Marshal())
		return txn, nil
	})
	if err != nil || evicted == 0 {
		return err
	}
	ps.Evicts++
	ps.EvictedChunks += int64(evicted)
	return nil
}

// migrateObjectChunks moves an object's clean, uncached chunk bindings into
// the toCold pool, one chunk at a time, up to budget moves. Returns how
// many chunks it moved (counted against the pass's migration budget even
// when the move later raced).
func (s *Store) migrateObjectChunks(p *sim.Proc, gw *rados.Gateway, oid string, cm *ChunkMap, toCold bool, budget int, ps *TierStats) (int, error) {
	moved := 0
	for _, e := range cm.Entries {
		if e.Dirty || e.Cached || e.ChunkID == "" || e.Cold == toCold {
			continue
		}
		if moved >= budget {
			break
		}
		s.cluster.QoS().WaitTurn(p, qos.Tiering)
		moved++
		raced, err := s.migrateChunk(p, gw, oid, e, toCold)
		if err != nil {
			return moved, err
		}
		if raced {
			ps.RacedSkips++
			continue
		}
		if toCold {
			ps.DemotedChunks++
		} else {
			ps.PromotedChunks++
		}
		ps.MigratedBytes += e.Len()
	}
	return moved, nil
}

// migrateChunk moves one binding between chunk pools with the same
// two-phase, intent-logged reference update as the flush:
//
//	phase 1  record a reference intent on the destination pool's chunk
//	         (creating it from the source copy if absent) with a lease;
//	phase 2  flip the binding's Cold bit in the chunk map — unless a client
//	         write raced — making the destination authoritative;
//	phase 3  commit the intent, then de-reference the source pool's chunk.
//
// Crash after 1: no binding points at the destination; the intent expires
// and GC/audit abort it. Crash after 2: the binding exists, the reference
// is an expired intent; audit promotes it, and the source chunk's now-dead
// reference (its binding points at the other pool) is swept by GC. Crash
// mid-3: commit is idempotent; the stale source reference is GC'd. The same
// fingerprint may transiently exist in both pools — each pool's copy has
// its own reference table, and refLiveness judges each against the Cold bit.
func (s *Store) migrateChunk(p *sim.Proc, gw *rados.Gateway, oid string, entry Entry, toCold bool) (raced bool, err error) {
	src := s.chunkPoolFor(entry.Cold)
	dst := s.chunkPoolFor(toCold)
	data, err := gw.Read(p, src, entry.ChunkID, 0, entry.Len())
	if err != nil {
		return false, err
	}
	if int64(len(data)) < entry.Len() {
		data = append(data, make([]byte, entry.Len()-int64(len(data)))...)
	}
	ref := Ref{Pool: s.meta.ID, OID: oid, Offset: entry.Start}

	// Phase 1: intent + chunk write on the destination pool.
	var intent intentOutcome
	if err := gw.MutateWithPayload(p, dst, entry.ChunkID, len(data), putIntentFn(data, ref, s.engine.leaseExpiry(p), &intent)); err != nil {
		return false, err
	}
	if s.tier.hookAfterIntent != nil && s.tier.hookAfterIntent(oid, entry) {
		return false, errCrash // intent expires; GC/audit abort it
	}

	// Phase 2: flip the Cold bit — only if the slot is exactly as observed.
	raced = false
	err = gw.Mutate(p, s.meta, oid, func(v rados.View) (*store.Txn, error) {
		cur, err := loadChunkMap(v)
		if err != nil {
			return nil, err
		}
		i := cur.Find(entry.Start)
		if i < 0 {
			raced = true
			return nil, nil
		}
		cs := cur.Entries[i]
		if cs.Gen != entry.Gen || cs.ChunkID != entry.ChunkID || cs.Cold != entry.Cold || cs.Dirty {
			raced = true // newer write or concurrent re-flush; leave it be
			return nil, nil
		}
		cs.Cold = toCold
		cur.Entries[i] = cs
		return store.NewTxn().SetXattr(XattrChunkMap, cur.Marshal()), nil
	})
	if err != nil || raced {
		// Roll phase 1 back: the binding still names the source pool, so the
		// destination intent must not become a reference. Best-effort — a
		// lost abort is reconciled at lease expiry.
		if !intent.committed {
			if aerr := gw.Mutate(p, dst, entry.ChunkID, abortIntentFn(ref, !s.cfg.FalsePositiveRefs)); aerr != nil && !errors.Is(aerr, ErrNotFound) && err == nil {
				return raced, aerr
			}
		}
		return raced, err
	}
	if s.tier.hookAfterBind != nil && s.tier.hookAfterBind(oid, entry) {
		return false, errCrash // audit promotes the intent; GC sweeps the source ref
	}

	// Phase 3: commit the destination reference, then drop the source one.
	if !intent.committed {
		if cerr := retryUnavailable(p, func() error {
			return gw.Mutate(p, dst, entry.ChunkID, commitIntentFn(ref))
		}); cerr != nil && !errors.Is(cerr, ErrNotFound) {
			return false, cerr
		}
	}
	fn := decRefFn(ref)
	if s.cfg.FalsePositiveRefs {
		fn = dropRefFn(ref)
	}
	if derr := gw.Mutate(p, src, entry.ChunkID, fn); derr != nil && !errors.Is(derr, ErrNotFound) {
		return false, derr
	}
	return false, nil
}
