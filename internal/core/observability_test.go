package core

import (
	"testing"
	"time"

	"dedupstore/internal/qos"
	"dedupstore/internal/sim"
)

// TestRatePolicyEarlyRunThrottles is the regression test for the
// first-second measurement bug: with foreground load far above the high
// watermark only 200ms into the run, the rate controller must drop the dedup
// class weight into the above-high band (base/OpsPerDedupAboveHigh). The old
// full-window average divided those ops by a second that had not elapsed,
// under-reported the rate, and left the controller in the mid (or
// unthrottled) band.
func TestRatePolicyEarlyRunThrottles(t *testing.T) {
	e := newDedupEnv(t, func(cfg *Config) { cfg.Rate = DefaultRate() })
	e.run(t, func(p *sim.Proc) {
		p.Sleep(200 * time.Millisecond)
		fg := e.c.ForegroundOps()
		for i := 0; i < 2000; i++ {
			fg.Note(4096)
		}
		// 2000 ops in 0.2s = 10000 IOPS, far above HighIOPS (4000). The
		// buggy estimate was 2000/1s = 2000, the mid band.
		if iops := fg.RecentIOPS(); iops <= e.s.cfg.Rate.HighIOPS {
			t.Fatalf("RecentIOPS = %v, want > high watermark %v", iops, e.s.cfg.Rate.HighIOPS)
		}
		eng := e.s.Engine()
		eng.rateBase = e.c.QoS().Weight(qos.Dedup)
		eng.rateTick()
		want := eng.rateBase / e.s.cfg.Rate.OpsPerDedupAboveHigh
		if got := e.c.QoS().Weight(qos.Dedup); got != want {
			t.Errorf("dedup weight after tick = %d, want %d (above-high band)", got, want)
		}
		if eng.Stats().RateAdjusts != 1 {
			t.Errorf("RateAdjusts = %d, want 1", eng.Stats().RateAdjusts)
		}
	})
}

// TestNoopFlushAccounting verifies that re-flushing a slot whose content
// still matches its chunk performs no chunk-pool I/O and is counted as a
// noop, not a flush.
func TestNoopFlushAccounting(t *testing.T) {
	e := newDedupEnv(t, nil)
	data := make([]byte, 2*4096)
	for i := range data {
		data[i] = byte(i/256 + i)
	}
	e.run(t, func(p *sim.Proc) {
		if err := e.cl.Write(p, "obj", 0, data); err != nil {
			t.Fatal(err)
		}
	})
	e.drain(t)
	st := e.s.Engine().Stats()
	if st.ChunksFlushed != 2 || st.NoopFlushes != 0 {
		t.Fatalf("first drain: flushed=%d noop=%d, want 2/0", st.ChunksFlushed, st.NoopFlushes)
	}

	// Rewrite identical content: the slots go dirty again but fingerprint to
	// the chunks they already reference.
	e.run(t, func(p *sim.Proc) {
		if err := e.cl.Write(p, "obj", 0, data); err != nil {
			t.Fatal(err)
		}
	})
	e.drain(t)
	st = e.s.Engine().Stats()
	if st.ChunksFlushed != 2 {
		t.Errorf("identical rewrite counted as flush: flushed=%d, want still 2", st.ChunksFlushed)
	}
	if st.NoopFlushes != 2 {
		t.Errorf("noop flushes = %d, want 2", st.NoopFlushes)
	}
	if reg := e.c.Metrics(); reg.Counter("dedup_noop_flushes_total").Value() != st.NoopFlushes {
		t.Error("registry noop counter disagrees with engine stats")
	}
	e.checkIntegrity(t)
}
