package core

import (
	"errors"
	"fmt"
	"time"

	"dedupstore/internal/hitset"
	"dedupstore/internal/metrics"
	"dedupstore/internal/qos"
	"dedupstore/internal/rados"
	"dedupstore/internal/sim"
	"dedupstore/internal/store"
)

// EngineStats counts the background engine's work.
type EngineStats struct {
	ObjectsScanned int64
	ChunksFlushed  int64 // chunks that caused real chunk-pool I/O
	BytesFlushed   int64 // bytes shipped to the chunk pool
	DupChunks      int64 // flushed chunks that already existed in the chunk pool
	NoopFlushes    int64 // dirty slots whose content already matched their chunk (no chunk-pool I/O)
	SkippedHot     int64
	Requeued       int64 // flushes retried because a write raced
	RateAdjusts    int64 // dedup-class weight changes made by rate control
}

// Engine is the background post-processing deduplicator (§4.4.1): worker
// processes scan the per-PG dirty object ID lists, read dirty cached chunks
// from metadata objects, fingerprint them, move them to the chunk pool with
// reference counting, and update the chunk maps — all throttled by the
// watermark rate controller (§4.4.2), which retunes the dedup QoS class
// weight from the foreground load.
type Engine struct {
	s     *Store
	stats EngineStats

	started  bool
	stopReq  bool
	draining bool
	done     []*sim.Signal

	claimed map[string]bool // objects a worker is currently flushing
	pending []string        // dirty OIDs discovered by the last sweep
	inQueue map[string]bool // membership set for pending

	// Watermark rate-control state (ratepolicy.go).
	ratePolicyOn bool  // controller daemon is live
	rateBase     int64 // dedup-class weight to restore when unthrottled

	// Test hooks: simulated crash points in the flush protocol (§4.6). A
	// hook returning true aborts the flush at that point, as a crash would.
	hookAfterDeref     func(oid string, e Entry) bool
	hookAfterChunkPut  func(oid string, e Entry) bool
	hookBeforeMapWrite func(oid string, e Entry) bool
}

func newEngine(s *Store) *Engine {
	return &Engine{s: s, claimed: make(map[string]bool), inQueue: make(map[string]bool)}
}

// Stats returns a copy of the engine counters.
func (e *Engine) Stats() EngineStats { return e.stats }

// reg returns the cluster-wide metric registry; engine counters mirror into
// it so `dedupctl metrics` shows flush/GC/cache-agent activity.
func (e *Engine) reg() *metrics.Registry { return e.s.cluster.Metrics() }

// Start spawns the worker processes.
func (e *Engine) Start() {
	if e.started {
		return
	}
	e.started = true
	eng := e.s.cluster.Engine()
	for i := 0; i < e.s.cfg.DedupThreads; i++ {
		e.done = append(e.done, eng.GoDaemon(fmt.Sprintf("dedup.worker%d", i), e.workerLoop))
	}
	e.startRatePolicy()
}

// RequestStop asks workers to exit after their current object.
func (e *Engine) RequestStop() { e.stopReq = true }

// Drain switches workers into drain mode: they keep flushing until every
// dirty list is empty, then exit. Wait on the returned signals completing
// via WaitIdle.
func (e *Engine) Drain() { e.draining = true }

// WaitIdle blocks p until all workers have exited (use after Drain or
// RequestStop).
func (e *Engine) WaitIdle(p *sim.Proc) { sim.WaitAll(p, e.done...) }

// DrainAndWait flushes all outstanding dirty objects and stops the workers.
func (e *Engine) DrainAndWait(p *sim.Proc) {
	if !e.started {
		e.Start()
	}
	e.Drain()
	e.WaitIdle(p)
	e.started = false
	e.draining = false
	e.stopReq = false
	e.done = nil
}

func (e *Engine) workerLoop(p *sim.Proc) {
	s := e.s
	for !e.stopReq {
		oid, ok := e.nextDirty(p)
		if !ok {
			if e.draining && len(e.claimed) == 0 {
				return
			}
			p.Sleep(s.cfg.ScanInterval)
			continue
		}
		gw, hostName, err := s.metaPrimaryGW(oid, qos.Dedup)
		if err != nil {
			continue
		}
		e.claimed[oid] = true
		_ = e.flushObject(p, gw, hostName, oid, false)
		delete(e.claimed, oid)
	}
}

// nextDirty returns the next unclaimed dirty object ID (§4.4.1 step 1).
// Workers share a pending queue refilled by sweeping every per-PG dirty
// list, so list scans amortize across many claims.
func (e *Engine) nextDirty(p *sim.Proc) (string, bool) {
	s := e.s
	for attempt := 0; attempt < 2; attempt++ {
		for len(e.pending) > 0 {
			oid := e.pending[0]
			e.pending = e.pending[1:]
			delete(e.inQueue, oid)
			if e.claimed[oid] {
				continue
			}
			// Hot objects stay on the dirty list for a later cycle (§3.2),
			// except during a drain, which force-flushes everything.
			if !e.draining && s.cache.SkipFlush(p.Now(), oid) {
				e.stats.SkippedHot++
				e.reg().Counter("dedup_skipped_hot_total").Inc()
				continue
			}
			return oid, true
		}
		if attempt > 0 {
			break
		}
		// Sweep all dirty lists to refill the queue.
		gw := s.hostGW(anyHost(s))
		for _, listOID := range s.dirtyListAll() {
			oids, err := gw.OmapList(p, s.meta, listOID, 64)
			if err != nil {
				continue
			}
			for _, oid := range oids {
				if !e.claimed[oid] && !e.inQueue[oid] {
					e.pending = append(e.pending, oid)
					e.inQueue[oid] = true
				}
			}
		}
	}
	return "", false
}

func anyHost(s *Store) string {
	hostName, err := s.cluster.PrimaryHost(s.meta, "sys.scan")
	if err != nil {
		panic("core: cluster has no OSDs")
	}
	return hostName
}

// flushObject deduplicates every dirty chunk of one metadata object
// (§4.4.1 steps 2–6). force bypasses the hot-object exemption and rate
// control (used by ModeFlushThrough and final drains); rate control claims
// one dedup-class admission slot per chunk via the QoS group's WaitTurn.
func (e *Engine) flushObject(p *sim.Proc, gw *rados.Gateway, hostName, oid string, force bool) error {
	s := e.s
	e.stats.ObjectsScanned++
	e.reg().Counter("dedup_objects_scanned_total").Inc()
	sp := s.cluster.Trace().Start(p, "dedup.flush").SetOp(s.meta.Name, "", 0)
	defer sp.Finish(p)

	// Claim: remove from the dirty list first; any racing client write
	// re-adds the object (its OmapSet is idempotent), so nothing is lost.
	if err := gw.Mutate(p, s.meta, s.dirtyListOID(oid), func(rados.View) (*store.Txn, error) {
		return store.NewTxn().Create().OmapRm(oid), nil
	}); err != nil {
		return err
	}

	if s.cfg.CDC != nil {
		// A CDC flush rewrites the whole object in one transaction and can't
		// pause between chunks, so it prepays one admission slot and bills
		// the rest of its cost postpaid once the chunk count is known.
		if !force {
			s.cluster.QoS().WaitTurn(p, qos.Dedup)
		}
		n, err := e.flushObjectCDC(p, gw, hostName, oid)
		if !force {
			s.cluster.QoS().Charge(p, qos.Dedup, int64(n))
		}
		if err != nil {
			e.stats.Requeued++
			return e.requeueDirty(p, gw, oid)
		}
		return nil
	}

	var raw []byte
	err := retryUnavailable(p, func() error {
		var e2 error
		raw, e2 = gw.GetXattr(p, s.meta, oid, XattrChunkMap)
		return e2
	})
	if rados.IsUnavailable(err) {
		// Claimed but unreachable: put it back rather than mistake a crash
		// window for deletion and lose the dirty entry.
		e.stats.Requeued++
		e.reg().Counter("dedup_requeued_total").Inc()
		return e.requeueDirty(p, gw, oid)
	}
	if err != nil {
		return nil // deleted meanwhile
	}
	cm, err := UnmarshalChunkMap(raw)
	if err != nil {
		return err
	}
	// Flush dirty chunks with bounded intra-object parallelism: each chunk
	// is an independent slot, so their chunk-pool I/Os pipeline. Rate
	// control (§4.4.2) admits one chunk per slot via WaitTurn — the slot
	// spacing is set by the watermark policy, so the trickle tracks the
	// measured foreground rate. Forced flushes (flush-through mode,
	// explicit drains) are client-visible and never held back.
	requeue := false
	queue := sim.NewQueue[Entry]()
	for _, i := range cm.DirtyEntries() {
		if entry := cm.Entries[i]; entry.Cached {
			queue.PushFrom(s.cluster.Engine(), entry)
		}
	}
	workers := s.cfg.FlushParallel
	if n := queue.Len(); workers > n {
		workers = n
	}
	var sigs []*sim.Signal
	for w := 0; w < workers; w++ {
		sigs = append(sigs, p.Go("flush", func(q *sim.Proc) {
			for {
				entry, ok := queue.TryPop()
				if !ok {
					return
				}
				if !force {
					s.cluster.QoS().WaitTurn(q, qos.Dedup)
				}
				if e.stopReq && !e.draining && !force {
					requeue = true
					return
				}
				raced, err := e.flushChunk(q, gw, hostName, oid, entry)
				if err != nil || raced {
					requeue = true
				}
			}
		}))
	}
	sim.WaitAll(p, sigs...)
	if requeue {
		e.stats.Requeued++
		e.reg().Counter("dedup_requeued_total").Inc()
		return e.requeueDirty(p, gw, oid)
	}
	return nil
}

// requeueDirty puts a claimed object back on its PG's dirty list. The write
// is retried through transient unavailability: losing it would strand dirty
// cached chunks that no future sweep ever revisits.
func (e *Engine) requeueDirty(p *sim.Proc, gw *rados.Gateway, oid string) error {
	s := e.s
	return retryUnavailable(p, func() error {
		return gw.Mutate(p, s.meta, s.dirtyListOID(oid), func(rados.View) (*store.Txn, error) {
			return store.NewTxn().Create().OmapSet(oid, nil), nil
		})
	})
}

// EvictStats reports one cold-eviction pass.
type EvictStats struct {
	ObjectsScanned int64
	ChunksEvicted  int64
	BytesEvicted   int64
	SkippedHot     int64
}

// EvictCold is the cache agent's demotion pass (§4.3): clean, flushed
// chunks still cached in metadata objects are evicted when their object has
// gone cold, reclaiming metadata-pool space. (Flush handles dirty chunks;
// this handles chunks kept cached because the object was hot at flush
// time.)
func (e *Engine) EvictCold(p *sim.Proc) EvictStats {
	s := e.s
	var stats EvictStats
	gw := s.hostGW(anyHost(s))
	for _, oid := range s.cluster.ListObjects(s.meta) {
		if IsSystemObject(oid) {
			continue
		}
		stats.ObjectsScanned++
		if s.cache.Hot(p.Now(), oid) {
			stats.SkippedHot++
			continue
		}
		err := gw.Mutate(p, s.meta, oid, func(v rados.View) (*store.Txn, error) {
			cm, err := loadChunkMap(v)
			if err != nil {
				return nil, err
			}
			txn := store.NewTxn()
			changed := false
			for i, entry := range cm.Entries {
				if !entry.Cached || entry.Dirty || entry.ChunkID == "" {
					continue
				}
				cm.Entries[i].Cached = false
				txn.Zero(entry.Start, entry.Len())
				stats.ChunksEvicted++
				stats.BytesEvicted += entry.Len()
				changed = true
			}
			if !changed {
				return nil, nil
			}
			txn.SetXattr(XattrChunkMap, cm.Marshal())
			return txn, nil
		})
		if err != nil && !errors.Is(err, ErrNotFound) {
			continue
		}
	}
	reg := e.reg()
	reg.Counter("cache_agent_passes_total").Inc()
	reg.Counter("cache_agent_chunks_evicted_total").Add(stats.ChunksEvicted)
	reg.Counter("cache_agent_bytes_evicted_total").Add(stats.BytesEvicted)
	reg.Counter("cache_agent_skipped_hot_total").Add(stats.SkippedHot)
	return stats
}

// StartCacheAgent spawns a background demotion daemon that periodically
// evicts cold cached chunks (the flush/evict agent role of Ceph's cache
// tiering). It runs until RequestStop.
func (e *Engine) StartCacheAgent(interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	e.s.cluster.Engine().GoDaemon("dedup.cache-agent", func(p *sim.Proc) {
		for !e.stopReq {
			p.Sleep(interval)
			if e.stopReq {
				return
			}
			e.EvictCold(p)
		}
	})
}

// errCrash simulates a failure injected by a test hook.
var errCrash = errors.New("core: injected crash")

// leaseExpiry returns the sim-time lease for a reference intent recorded
// now: GC and the audit pass leave the intent alone until it expires.
func (e *Engine) leaseExpiry(p *sim.Proc) sim.Time {
	return p.Now() + sim.Time(e.s.cfg.IntentLease)
}

// flushChunk deduplicates one dirty chunk slot with a two-phase,
// intent-logged reference update, so a crash at any point leaves state the
// reconcilers (GC, audit) can roll forward or back:
//
//	phase 1  record a reference intent on the chunk object (creating the
//	         chunk if absent) with a lease expiry — the chunk is pinned
//	         but the reference is not yet counted;
//	phase 2  bind the chunk in the source object's chunk map (the
//	         authoritative statement that the reference exists), unless a
//	         client write raced;
//	phase 3  commit the intent into a counted reference, then de-reference
//	         the chunk the slot previously pointed at.
//
// Crash after 1: the intent expires, GC/audit abort it (no binding exists).
// Crash after 2: the binding exists but the reference is an expired intent;
// GC/audit promote it to a committed reference. Crash mid-3: commit is
// idempotent and the old chunk's stale reference is collected by GC. A
// raced phase 2 aborts the intent inline. Returns raced=true when a
// concurrent client write invalidated the flush (the slot stays dirty).
func (e *Engine) flushChunk(p *sim.Proc, gw *rados.Gateway, hostName string, oid string, entry Entry) (raced bool, err error) {
	s := e.s
	data, err := gw.Read(p, s.meta, oid, entry.Start, entry.Len())
	if err != nil {
		return false, err
	}
	if int64(len(data)) < entry.Len() {
		data = append(data, make([]byte, entry.Len()-int64(len(data)))...)
	}
	// Fingerprint: the content hash that doubles as the chunk-pool object ID.
	if err := s.cluster.UseHostCPU(p, hostName, s.cluster.Cost().Hash(len(data))); err != nil {
		return false, err
	}
	newID := FingerprintID(data)
	ref := Ref{Pool: s.meta.ID, OID: oid, Offset: entry.Start}

	// Adaptive tiering: the flush lands the chunk in the pool the object's
	// temperature selects — cold objects erasure-code, everything else
	// replicates. With tiering off, cold is always false and newPool is the
	// single chunk pool, preserving the static design exactly.
	cold := s.cfg.Tiering.Enabled && s.cache.Temp(p.Now(), oid) == hitset.TempCold
	newPool := s.chunkPoolFor(cold)

	// Phase 1: intent + chunk write at the content-addressed location. When
	// the slot already points at the right chunk in the right pool (same
	// content rewritten) no chunk-pool I/O happens, so it must not count as
	// a flush. A same-ID, different-pool slot is a real move: both pools may
	// hold a chunk under the same fingerprint while objects migrate.
	samePlace := entry.ChunkID == newID && entry.Cold == cold
	var intent intentOutcome
	if !samePlace {
		existedBefore, _ := gw.Exists(p, newPool, newID)
		if err := gw.MutateWithPayload(p, newPool, newID, len(data), putIntentFn(data, ref, e.leaseExpiry(p), &intent)); err != nil {
			return false, err
		}
		if existedBefore {
			e.stats.DupChunks++
			e.reg().Counter("dedup_dup_chunks_total").Inc()
		}
		e.stats.ChunksFlushed++
		e.stats.BytesFlushed += int64(len(data))
		e.reg().Counter("dedup_chunks_flushed_total").Inc()
		e.reg().Counter("dedup_bytes_flushed_total").Add(int64(len(data)))
	} else {
		e.stats.NoopFlushes++
		e.reg().Counter("dedup_noop_flushes_total").Inc()
	}
	if e.hookAfterChunkPut != nil && e.hookAfterChunkPut(oid, entry) {
		return false, errCrash
	}

	// Phase 2: bind the chunk in the map — only if no client write raced.
	keepCached := s.cache.KeepCachedAfterFlush(p.Now(), oid)
	if e.hookBeforeMapWrite != nil && e.hookBeforeMapWrite(oid, entry) {
		return false, errCrash
	}
	raced = false
	err = gw.Mutate(p, s.meta, oid, func(v rados.View) (*store.Txn, error) {
		cur, err := loadChunkMap(v)
		if err != nil {
			return nil, err
		}
		i := cur.Find(entry.Start)
		if i < 0 {
			raced = true // slot disappeared (delete raced)
			return nil, nil
		}
		cs := cur.Entries[i]
		if cs.Gen != entry.Gen {
			raced = true // newer write; leave dirty for the next cycle
			return nil, nil
		}
		cs.ChunkID = newID
		cs.Dirty = false
		cs.Cached = keepCached
		cs.Cold = cold
		cur.Entries[i] = cs
		txn := store.NewTxn().SetXattr(XattrChunkMap, cur.Marshal())
		if !keepCached {
			// Evict the flushed bytes from the metadata object (the object
			// may end with "no data but only metadata", Fig. 8 object 2).
			txn.Zero(cs.Start, cs.Len())
		}
		return txn, nil
	})
	if err != nil || raced {
		// Roll phase 1 back: the binding never landed, so the intent must
		// not become a reference. Best-effort — if this mutation is lost to
		// a crash, the lease expiry lets GC/audit abort it instead.
		if !samePlace && !intent.committed {
			if aerr := gw.Mutate(p, newPool, newID, abortIntentFn(ref, !s.cfg.FalsePositiveRefs)); aerr != nil && !errors.Is(aerr, ErrNotFound) && err == nil {
				return raced, aerr
			}
		}
		return raced, err
	}

	// Phase 3: commit the intent into a counted reference. On persistent
	// failure the binding already exists, so GC/audit will promote the
	// expired intent — the protocol converges either way.
	if !samePlace && !intent.committed {
		if cerr := retryUnavailable(p, func() error {
			return gw.Mutate(p, newPool, newID, commitIntentFn(ref))
		}); cerr != nil && !errors.Is(cerr, ErrNotFound) {
			return false, cerr
		}
	}

	// De-reference the chunk the slot previously pointed at — after the
	// binding swap, so no window exists where the chunk map points at a
	// chunk whose reference was already dropped. The old binding's pool may
	// differ from the new one (a cross-pool move via re-flush).
	if entry.ChunkID != "" && !samePlace {
		fn := decRefFn(ref)
		if s.cfg.FalsePositiveRefs {
			fn = dropRefFn(ref)
		}
		if derr := gw.Mutate(p, s.chunkPoolFor(entry.Cold), entry.ChunkID, fn); derr != nil && !errors.Is(derr, ErrNotFound) {
			return false, derr
		}
	}
	if e.hookAfterDeref != nil && e.hookAfterDeref(oid, entry) {
		return false, errCrash
	}
	return false, nil
}
