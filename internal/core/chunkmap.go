// Package core implements the paper's global deduplication design:
//
//   - Double hashing (§3.2): a chunk's fingerprint IS its object ID in the
//     chunk pool, so the underlying store's placement hash doubles as the
//     fingerprint index — there is no separate index to build, shard, or
//     keep in memory.
//   - Self-contained objects (§4.1): metadata objects carry their chunk map
//     in an xattr and cached chunks in their data part; chunk objects carry
//     reference information in xattr/omap. Replication, erasure coding,
//     recovery and rebalancing therefore apply to dedup state for free.
//   - Post-processing dedup engine (§4.4) with watermark rate control
//     (§4.4.2) and a HitSet-based cache manager (§4.3, §5) that exempts hot
//     objects.
//
// The package also contains the baselines the paper compares against:
// inline deduplication, immediate-flush ("Proposed-flush"), and per-OSD
// local deduplication accounting.
package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// Entry is one chunk-map row (Fig. 8): an offset range of the metadata
// object, the chunk object it maps to, and the cached/dirty state bits.
type Entry struct {
	Start, End int64
	ChunkID    string // content fingerprint; "" until first flush
	Cached     bool   // chunk bytes live in the metadata object's data part
	Dirty      bool   // chunk must be (re-)deduplicated
	// Cold marks the binding as living in the erasure-coded (cold) chunk
	// pool rather than the replicated one. Only the adaptive tiering policy
	// sets it; with tiering off every binding is warm and the bit stays 0,
	// so serialized maps are byte-identical to the pre-tiering format.
	Cold bool
	// Gen increments on every client write to the slot. The background
	// engine clears the dirty bit only if Gen is unchanged since it read the
	// chunk, so a write that races with a flush keeps the slot dirty.
	Gen uint32
}

// Len returns the entry's byte length.
func (e Entry) Len() int64 { return e.End - e.Start }

// ChunkMap is the per-object mapping from offset ranges to chunk objects,
// stored in the metadata object's xattr. Entries are sorted by Start and
// non-overlapping; with fixed-size chunking every entry spans at most one
// chunk slot.
type ChunkMap struct {
	Entries []Entry
}

// XattrChunkMap is the xattr key holding the serialized chunk map.
const XattrChunkMap = "dedup.chunkmap"

// ErrCorruptMap reports a malformed serialized chunk map.
var ErrCorruptMap = errors.New("core: corrupt chunk map")

// Size returns the object's logical size: the end of the last entry.
func (m *ChunkMap) Size() int64 {
	if len(m.Entries) == 0 {
		return 0
	}
	return m.Entries[len(m.Entries)-1].End
}

// Find returns the index of the entry containing offset off, or -1.
func (m *ChunkMap) Find(off int64) int {
	i := sort.Search(len(m.Entries), func(i int) bool { return m.Entries[i].End > off })
	if i < len(m.Entries) && m.Entries[i].Start <= off {
		return i
	}
	return -1
}

// FindRange returns the indices of entries overlapping [off, off+length).
func (m *ChunkMap) FindRange(off, length int64) []int {
	var out []int
	end := off + length
	for i, e := range m.Entries {
		if e.End <= off {
			continue
		}
		if e.Start >= end {
			break
		}
		out = append(out, i)
	}
	return out
}

// Upsert inserts or replaces the entry for [start, end). With fixed-size
// chunking, ranges are chunk-slot aligned so an existing entry either
// matches exactly or is absent; a shorter existing tail entry is grown when
// the object extends.
func (m *ChunkMap) Upsert(e Entry) {
	for i := range m.Entries {
		if m.Entries[i].Start == e.Start {
			if e.End < m.Entries[i].End {
				e.End = m.Entries[i].End // never shrink a slot
			}
			m.Entries[i] = e
			return
		}
	}
	m.Entries = append(m.Entries, e)
	sort.Slice(m.Entries, func(i, j int) bool { return m.Entries[i].Start < m.Entries[j].Start })
}

// DirtyEntries returns indices of dirty entries.
func (m *ChunkMap) DirtyEntries() []int {
	var out []int
	for i, e := range m.Entries {
		if e.Dirty {
			out = append(out, i)
		}
	}
	return out
}

// AllCached reports whether any entry still caches data in the metadata
// object (false means the object holds "no data but only metadata", Fig. 8
// object 2).
func (m *ChunkMap) AnyCached() bool {
	for _, e := range m.Entries {
		if e.Cached {
			return true
		}
	}
	return false
}

// EntryOverhead is the serialized footprint the paper attributes to one
// chunk-map entry (§5: "Each chunk entry in chunk map uses 150 bytes").
// Marshal pads entries to this size so that the space-overhead results
// (Table 2) reflect the paper's metadata costs.
const EntryOverhead = 150

// Marshal serializes the map.
func (m *ChunkMap) Marshal() []byte {
	var buf []byte
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], uint64(len(m.Entries)))
	buf = append(buf, tmp[:]...)
	for _, e := range m.Entries {
		rec := make([]byte, 0, EntryOverhead)
		binary.LittleEndian.PutUint64(tmp[:], uint64(e.Start))
		rec = append(rec, tmp[:]...)
		binary.LittleEndian.PutUint64(tmp[:], uint64(e.End))
		rec = append(rec, tmp[:]...)
		var g [4]byte
		binary.LittleEndian.PutUint32(g[:], e.Gen)
		rec = append(rec, g[:]...)
		var flags byte
		if e.Cached {
			flags |= 1
		}
		if e.Dirty {
			flags |= 2
		}
		if e.Cold {
			flags |= 4
		}
		rec = append(rec, flags)
		if len(e.ChunkID) > 255 {
			panic("core: chunk id too long")
		}
		rec = append(rec, byte(len(e.ChunkID)))
		rec = append(rec, e.ChunkID...)
		for len(rec) < EntryOverhead {
			rec = append(rec, 0)
		}
		buf = append(buf, rec...)
	}
	return buf
}

// UnmarshalChunkMap deserializes a map produced by Marshal. A nil input
// yields an empty map.
func UnmarshalChunkMap(b []byte) (*ChunkMap, error) {
	m := &ChunkMap{}
	if len(b) == 0 {
		return m, nil
	}
	if len(b) < 8 {
		return nil, ErrCorruptMap
	}
	n := binary.LittleEndian.Uint64(b)
	b = b[8:]
	if uint64(len(b)) != n*EntryOverhead {
		return nil, fmt.Errorf("%w: %d entries, %d payload bytes", ErrCorruptMap, n, len(b))
	}
	for i := uint64(0); i < n; i++ {
		rec := b[i*EntryOverhead : (i+1)*EntryOverhead]
		e := Entry{
			Start: int64(binary.LittleEndian.Uint64(rec[0:])),
			End:   int64(binary.LittleEndian.Uint64(rec[8:])),
			Gen:   binary.LittleEndian.Uint32(rec[16:]),
		}
		flags := rec[20]
		e.Cached = flags&1 != 0
		e.Dirty = flags&2 != 0
		e.Cold = flags&4 != 0
		idLen := int(rec[21])
		if 22+idLen > EntryOverhead {
			return nil, ErrCorruptMap
		}
		e.ChunkID = string(rec[22 : 22+idLen])
		if e.End < e.Start {
			return nil, ErrCorruptMap
		}
		m.Entries = append(m.Entries, e)
	}
	return m, nil
}
