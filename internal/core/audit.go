package core

import (
	"errors"

	"dedupstore/internal/qos"
	"dedupstore/internal/rados"
	"dedupstore/internal/sim"
	"dedupstore/internal/store"
)

// Cross-pool audit: the forward direction of reference reconciliation. GC
// walks chunk → chunkmap (a recorded reference whose binding is gone is
// stale); the audit walks chunkmap → chunk (a binding whose reference was
// never committed — a crash between phase 2 and phase 3 of the flush
// protocol — is repaired by promoting the surviving intent, or re-adding
// the committed reference outright). A binding whose chunk object does not
// exist at all is unrecoverable data loss and is reported, not repaired.
//
// Together the two passes make the invariant count ↔ omap ↔ chunkmap hold
// in both directions after any crash the chaos harness can produce.

// AuditStats reports one audit pass.
type AuditStats struct {
	MetadataObjects int64
	BindingsChecked int64
	IntentsPromoted int64 // binding present, chunk held an intent → committed
	RefsRepaired    int64 // binding present, chunk had no trace → ref re-added
	CountsFixed     int64 // refcount xattr rewritten to match the omap
	LostChunks      int64 // binding points at a missing chunk (data loss)
}

// Clean reports whether the audit found nothing to repair or report.
func (a AuditStats) Clean() bool {
	return a.IntentsPromoted == 0 && a.RefsRepaired == 0 &&
		a.CountsFixed == 0 && a.LostChunks == 0
}

// auditBindingFn repairs one chunkmap→chunk binding under the chunk's PG
// lock: promote the intent (or re-add the reference) and reconcile the
// committed count with the omap.
func auditBindingFn(ref Ref, promoted, repaired, fixed *bool) rados.MutateFn {
	return func(v rados.View) (*store.Txn, error) {
		*promoted, *repaired, *fixed = false, false, false
		if !v.Exists() {
			return nil, rados.ErrNotFound
		}
		_, refErr := v.OmapGet(ref.Key())
		_, intErr := v.OmapGet(ref.IntentKey())
		hasRef, hasIntent := refErr == nil, intErr == nil
		keys, err := v.OmapList(0)
		if err != nil {
			return nil, err
		}
		committed := 0
		for _, k := range keys {
			if isRefKey(k) {
				committed++
			}
		}
		count, gen, _ := readRCLenient(v)
		txn := store.NewTxn()
		want := committed
		switch {
		case hasRef && !hasIntent:
			// Healthy binding; only rewrite the xattr if the count drifted.
			if uint64(want) == count {
				return nil, nil
			}
			*fixed = true
		case hasIntent:
			// Crash between bind and commit: finish phase 3 on the flush's
			// behalf (idempotent with a late commitIntentFn).
			txn.OmapRm(ref.IntentKey())
			if !hasRef {
				txn.OmapSet(ref.Key(), nil)
				want++
			}
			*promoted = true
		default:
			// Neither reference nor intent survived, yet the binding is
			// authoritative: re-add the committed reference.
			txn.OmapSet(ref.Key(), nil)
			want++
			*repaired = true
		}
		if uint64(want) != count && !*promoted && !*repaired {
			*fixed = true
		}
		txn.SetXattr(XattrRefCount, encodeRC(uint64(want), gen+1))
		return txn, nil
	}
}

// readRCLenient decodes the refcount xattr, treating missing or corrupt
// state as zero — used only by repair paths that rewrite the xattr anyway.
func readRCLenient(v rados.View) (count, gen uint64, ok bool) {
	raw, err := v.GetXattr(XattrRefCount)
	if err != nil {
		return 0, 0, false
	}
	return decodeRC(raw)
}

// Audit runs one chunkmap→chunk reconciliation pass over the metadata pool.
// Safe to run concurrently with foreground I/O: repairs happen under the
// chunk's PG lock and are idempotent against the flush protocol.
func (s *Store) Audit(p *sim.Proc) (AuditStats, error) {
	var stats AuditStats
	reg := s.cluster.Metrics()
	defer func() {
		reg.Counter("dedup_audit_passes_total").Inc()
		reg.Counter("dedup_audit_bindings_checked_total").Add(stats.BindingsChecked)
		reg.Counter("dedup_audit_intents_promoted_total").Add(stats.IntentsPromoted)
		reg.Counter("dedup_audit_refs_repaired_total").Add(stats.RefsRepaired)
		reg.Counter("dedup_audit_counts_fixed_total").Add(stats.CountsFixed)
		reg.Counter("dedup_audit_lost_chunks_total").Add(stats.LostChunks)
	}()
	sp := s.cluster.Trace().Start(p, "dedup.audit").SetClass(qos.Scrub.String())
	defer sp.Finish(p)
	gw := s.hostGWClass(anyHost(s), qos.Scrub)
	for _, oid := range s.cluster.ListObjects(s.meta) {
		if IsSystemObject(oid) {
			continue
		}
		stats.MetadataObjects++
		var raw []byte
		err := retryUnavailable(p, func() error {
			var e error
			raw, e = gw.GetXattr(p, s.meta, oid, XattrChunkMap)
			return e
		})
		if rados.IsUnavailable(err) {
			return stats, err
		}
		if err != nil {
			continue // deleted concurrently, or no map yet
		}
		cm, err := UnmarshalChunkMap(raw)
		if err != nil {
			continue // scrub reports corrupt maps; nothing to reconcile here
		}
		for _, e := range cm.Entries {
			if e.ChunkID == "" || e.Dirty {
				// Dirty slots are in flux — the next flush cycle re-binds
				// them; auditing mid-flight would race the engine.
				continue
			}
			stats.BindingsChecked++
			ref := Ref{Pool: s.meta.ID, OID: oid, Offset: e.Start}
			var promoted, repaired, fixed bool
			err := retryUnavailable(p, func() error {
				return gw.Mutate(p, s.chunkPoolFor(e.Cold), e.ChunkID, auditBindingFn(ref, &promoted, &repaired, &fixed))
			})
			if errors.Is(err, ErrNotFound) {
				if !e.Cached {
					// The data exists nowhere: binding names a chunk that is
					// gone and the metadata object holds no cached copy.
					stats.LostChunks++
				}
				continue
			}
			if err != nil {
				return stats, err
			}
			switch {
			case promoted:
				stats.IntentsPromoted++
			case repaired:
				stats.RefsRepaired++
			case fixed:
				stats.CountsFixed++
			}
		}
	}
	return stats, nil
}
