package core

import (
	"time"

	"dedupstore/internal/rados"
	"dedupstore/internal/sim"
)

// retryUnavailable retries fn with exponential backoff while the cluster
// reports transient unavailability — a crashed acting primary the heartbeat
// monitor has not yet marked down, or a PG below write quorum. Background
// maintenance (flush requeues, GC, scrub) must ride out the detection
// window rather than abort a pass or, worse, mistake "temporarily
// unreachable" for "gone". Permanent errors return immediately.
func retryUnavailable(p *sim.Proc, fn func() error) error {
	const attempts = 40
	delay := 5 * time.Millisecond
	var err error
	for i := 0; i < attempts; i++ {
		if err = fn(); err == nil || !rados.IsUnavailable(err) {
			return err
		}
		if i == attempts-1 {
			break
		}
		p.Sleep(delay)
		if delay < 320*time.Millisecond {
			delay *= 2
		}
	}
	return err
}
