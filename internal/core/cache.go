package core

import (
	"dedupstore/internal/hitset"
	"dedupstore/internal/metrics"
	"dedupstore/internal/sim"
)

// CacheManager decides which objects keep their chunks cached in the
// metadata pool (§4.3). It follows the paper's Ceph implementation (§5):
// per-interval HitSets backed by bloom filters track recent accesses, and an
// object whose access count reaches the HitCount threshold is hot — the
// dedup engine leaves hot objects alone ("the hot object is not deduplicated
// until its state is changed", §3.2), and flushed hot objects keep a cached
// copy in the metadata object.
type CacheManager struct {
	tracker     *hitset.Tracker
	keepHot     bool
	reg         *metrics.Registry
	skippedHot  int64
	keptCached  int64
	evictedCold int64
}

// NewCacheManager creates a cache manager.
func NewCacheManager(cfg hitset.Config, keepHot bool) *CacheManager {
	return &CacheManager{tracker: hitset.New(cfg), keepHot: keepHot}
}

// AttachRegistry mirrors the manager's decision counters into a metric
// registry (nil detaches).
func (cm *CacheManager) AttachRegistry(reg *metrics.Registry) { cm.reg = reg }

// RecordAccess notes a client read or write of oid.
func (cm *CacheManager) RecordAccess(now sim.Time, oid string) {
	cm.tracker.Record(now, oid)
}

// Hot reports whether oid is currently hot.
func (cm *CacheManager) Hot(now sim.Time, oid string) bool {
	return cm.tracker.Hot(now, oid)
}

// SkipFlush reports whether the dedup engine should defer deduplicating oid
// this cycle. Hot objects are skipped; they remain on the dirty list.
func (cm *CacheManager) SkipFlush(now sim.Time, oid string) bool {
	if cm.tracker.Hot(now, oid) {
		cm.skippedHot++
		cm.reg.Counter("cache_skip_flush_hot_total").Inc()
		return true
	}
	return false
}

// KeepCachedAfterFlush reports whether a just-flushed chunk should stay
// cached in the metadata object (hot) or be evicted (cold).
func (cm *CacheManager) KeepCachedAfterFlush(now sim.Time, oid string) bool {
	if cm.keepHot && cm.tracker.Hot(now, oid) {
		cm.keptCached++
		cm.reg.Counter("cache_keep_cached_total").Inc()
		return true
	}
	cm.evictedCold++
	cm.reg.Counter("cache_evict_cold_total").Inc()
	return false
}

// Stats reports cache-manager decision counters.
func (cm *CacheManager) Stats() (skippedHot, keptCached, evictedCold int64) {
	return cm.skippedHot, cm.keptCached, cm.evictedCold
}
