package core

import (
	"dedupstore/internal/hitset"
	"dedupstore/internal/metrics"
	"dedupstore/internal/sim"
	"dedupstore/internal/tiering"
)

// TieringPolicy decides where each object's bytes should live. It
// generalizes the paper's cache manager (§4.3): per-interval HitSets backed
// by bloom filters track recent accesses, and an object whose access count
// reaches the HitCount threshold is hot — the dedup engine leaves hot
// objects alone ("the hot object is not deduplicated until its state is
// changed", §3.2), and flushed hot objects keep a cached copy in the
// metadata object.
//
// With adaptive redundancy enabled the policy additionally grades objects
// into hot/warm/cold from decayed hit counts and assigns each a target form
// (tiering.FormFor): hot objects stay replicated and undeduplicated, warm
// objects deduplicate into the replicated chunk pool, cold objects into the
// erasure-coded one. Hotness then derives from the temperature bands so the
// flush-skip/keep-cached decisions and the migration targets can never
// disagree.
type TieringPolicy struct {
	tracker  *hitset.Tracker
	keepHot  bool
	adaptive bool // multi-level temperature + target forms (off: boolean §4.3 behavior)
	reg      *metrics.Registry

	skippedHot  int64
	keptCached  int64
	evictedCold int64

	// tenants attributes objects to the tenant that last touched them, so
	// migrations the policy daemon issues on an object's behalf carry the
	// right identity in their trace spans. Populated only when adaptive
	// tiering is on.
	tenants map[string]string
}

// CacheManager is the historical name of the policy, kept as an alias: with
// adaptive tiering off the type behaves exactly as the paper's cache
// manager.
type CacheManager = TieringPolicy

// NewCacheManager creates the policy in boolean (§4.3 cache manager) mode.
func NewCacheManager(cfg hitset.Config, keepHot bool) *CacheManager {
	return NewTieringPolicy(cfg, keepHot, false)
}

// NewTieringPolicy creates the placement policy; adaptive enables
// multi-level temperatures and per-object target forms.
func NewTieringPolicy(cfg hitset.Config, keepHot, adaptive bool) *TieringPolicy {
	tp := &TieringPolicy{tracker: hitset.New(cfg), keepHot: keepHot, adaptive: adaptive}
	if adaptive {
		tp.tenants = make(map[string]string)
	}
	return tp
}

// Adaptive reports whether multi-level tiering is enabled.
func (cm *TieringPolicy) Adaptive() bool { return cm.adaptive }

// AttachRegistry mirrors the policy's decision counters into a metric
// registry (nil detaches).
func (cm *TieringPolicy) AttachRegistry(reg *metrics.Registry) { cm.reg = reg }

// RecordAccess notes a client read or write of oid.
func (cm *TieringPolicy) RecordAccess(now sim.Time, oid string) {
	cm.tracker.Record(now, oid)
}

// RecordAccessTenant notes an access and attributes the object to tenant
// (adaptive mode only; the boolean cache manager has no migration spans to
// attribute).
func (cm *TieringPolicy) RecordAccessTenant(now sim.Time, oid, tenant string) {
	cm.tracker.Record(now, oid)
	if cm.adaptive && tenant != "" {
		cm.tenants[oid] = tenant
	}
}

// TenantOf returns the tenant last seen touching oid ("" if unknown).
func (cm *TieringPolicy) TenantOf(oid string) string { return cm.tenants[oid] }

// Hot reports whether oid is currently hot. In adaptive mode hotness is the
// top temperature band, so it always agrees with TargetForm.
func (cm *TieringPolicy) Hot(now sim.Time, oid string) bool {
	if cm.adaptive {
		return cm.tracker.Temp(now, oid) == hitset.TempHot
	}
	return cm.tracker.Hot(now, oid)
}

// Temp returns oid's temperature band (adaptive mode; in boolean mode hot
// maps to TempHot and everything else to TempCold).
func (cm *TieringPolicy) Temp(now sim.Time, oid string) hitset.Temperature {
	if cm.adaptive {
		return cm.tracker.Temp(now, oid)
	}
	if cm.tracker.Hot(now, oid) {
		return hitset.TempHot
	}
	return hitset.TempCold
}

// TargetForm returns the redundancy form oid's temperature earns it.
func (cm *TieringPolicy) TargetForm(now sim.Time, oid string) tiering.Form {
	return tiering.FormFor(cm.Temp(now, oid))
}

// SkipFlush reports whether the dedup engine should defer deduplicating oid
// this cycle. Hot objects are skipped; they remain on the dirty list.
func (cm *TieringPolicy) SkipFlush(now sim.Time, oid string) bool {
	if cm.Hot(now, oid) {
		cm.skippedHot++
		if cm.reg != nil {
			cm.reg.Counter("cache_skip_flush_hot_total").Inc()
		}
		return true
	}
	return false
}

// KeepCachedAfterFlush reports whether a just-flushed chunk should stay
// cached in the metadata object (hot) or be evicted (cold).
func (cm *TieringPolicy) KeepCachedAfterFlush(now sim.Time, oid string) bool {
	if cm.keepHot && cm.Hot(now, oid) {
		cm.keptCached++
		if cm.reg != nil {
			cm.reg.Counter("cache_keep_cached_total").Inc()
		}
		return true
	}
	cm.evictedCold++
	if cm.reg != nil {
		cm.reg.Counter("cache_evict_cold_total").Inc()
	}
	return false
}

// Stats reports the policy's decision counters.
func (cm *TieringPolicy) Stats() (skippedHot, keptCached, evictedCold int64) {
	return cm.skippedHot, cm.keptCached, cm.evictedCold
}
