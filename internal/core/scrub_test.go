package core

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"dedupstore/internal/sim"
	"dedupstore/internal/store"
)

func TestDedupScrubClean(t *testing.T) {
	e := newDedupEnv(t, nil)
	shared := bytes.Repeat([]byte{3}, 4096)
	e.run(t, func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			e.cl.Write(p, fmt.Sprintf("o%d", i), 0, shared)
		}
	})
	e.drain(t)
	e.run(t, func(p *sim.Proc) {
		rep, err := e.s.Scrub(p)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Clean() {
			t.Fatalf("clean store scrub found: %v", rep.Issues)
		}
		if rep.ChunkObjects != 1 || rep.MetadataObjects != 5 {
			t.Fatalf("report = %+v", rep)
		}
		if rep.BytesVerified == 0 {
			t.Fatal("no bytes verified")
		}
	})
}

func TestDedupScrubDetectsChunkBitRot(t *testing.T) {
	e := newDedupEnv(t, nil)
	content := bytes.Repeat([]byte{9}, 4096)
	e.run(t, func(p *sim.Proc) { e.cl.Write(p, "obj", 0, content) })
	e.drain(t)
	chunkOID := FingerprintID(content)
	// Flip a byte in every replica of the chunk (both copies rot).
	key := store.Key{Pool: e.s.chunk.ID, OID: chunkOID}
	for _, id := range e.c.OSDs() {
		st, _ := e.c.OSDStore(id)
		if st.Exists(key) {
			if err := e.c.CorruptForTest(id, key, 5); err != nil {
				t.Fatal(err)
			}
		}
	}
	e.run(t, func(p *sim.Proc) {
		rep, err := e.s.Scrub(p)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Clean() {
			t.Fatal("scrub missed chunk bit rot")
		}
		found := false
		for _, is := range rep.Issues {
			if is.OID == chunkOID {
				found = true
			}
		}
		if !found {
			t.Fatalf("wrong issue set: %v", rep.Issues)
		}
	})
}

func TestDedupScrubDetectsDanglingChunkRef(t *testing.T) {
	e := newDedupEnv(t, nil)
	content := bytes.Repeat([]byte{4}, 4096)
	e.run(t, func(p *sim.Proc) { e.cl.Write(p, "obj", 0, content) })
	e.drain(t)
	// Delete the chunk object behind the map's back (on every replica).
	key := store.Key{Pool: e.s.chunk.ID, OID: FingerprintID(content)}
	for _, id := range e.c.OSDs() {
		st, _ := e.c.OSDStore(id)
		st.Apply(key, store.NewTxn().Delete())
	}
	e.run(t, func(p *sim.Proc) {
		rep, err := e.s.Scrub(p)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Clean() {
			t.Fatal("scrub missed dangling chunk reference")
		}
	})
}

func TestCacheAgentEvictsCold(t *testing.T) {
	e := newDedupEnv(t, func(cfg *Config) {
		cfg.HitSet.HitCount = 2
		cfg.HitSet.Period = time.Second
		cfg.HitSet.Retain = 2
	})
	data := bytes.Repeat([]byte{1}, 8192)
	// Make the object hot, flush (it stays cached), then let the agent
	// evict it after it cools.
	e.run(t, func(p *sim.Proc) {
		e.cl.Write(p, "obj", 0, data)
		p.Sleep(1100 * time.Millisecond)
		e.cl.Write(p, "obj", 0, data)
	})
	e.drain(t) // force-flush; object is hot so chunks stay cached
	metaBefore := e.c.PoolStats(e.s.meta).StoredPhysical
	if metaBefore == 0 {
		t.Fatal("expected hot object to stay cached after flush")
	}
	e.s.Engine().StartCacheAgent(500 * time.Millisecond)
	e.run(t, func(p *sim.Proc) {
		p.Sleep(8 * time.Second) // object cools; agent sweeps
	})
	metaAfter := e.c.PoolStats(e.s.meta).StoredPhysical
	if metaAfter >= metaBefore {
		t.Fatalf("cache agent did not evict: %d -> %d", metaBefore, metaAfter)
	}
	// Data still readable via the chunk pool.
	e.run(t, func(p *sim.Proc) {
		got, err := e.cl.Read(p, "obj", 0, -1)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("read after eviction: %v", err)
		}
	})
	e.s.Engine().RequestStop()
}

func TestEvictColdSkipsHotAndDirty(t *testing.T) {
	e := newDedupEnv(t, func(cfg *Config) {
		cfg.HitSet.HitCount = 1 // a single access makes it hot
	})
	data := bytes.Repeat([]byte{2}, 4096)
	e.run(t, func(p *sim.Proc) {
		e.cl.Write(p, "hot", 0, data) // dirty + hot
		stats := e.s.Engine().EvictCold(p)
		if stats.ChunksEvicted != 0 {
			t.Fatalf("evicted %d chunks from a hot, dirty object", stats.ChunksEvicted)
		}
		if stats.SkippedHot == 0 {
			t.Fatal("hot object not counted as skipped")
		}
	})
}
