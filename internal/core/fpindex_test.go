package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"dedupstore/internal/fpindex"
	"dedupstore/internal/rados"
	"dedupstore/internal/sim"
)

// fpTestConfig flushes and compacts aggressively so a modest working set
// exercises WAL, SSTables, bloom filters and merges at test scale.
func fpTestConfig() fpindex.Config {
	return fpindex.Config{
		Enabled:       true,
		MemtableBytes: 512, // ~6 entries per OSD forces flushes at test scale
		BlockBytes:    256,
		CacheBytes:    4 << 10,
		BloomFP:       0.01,
		LevelFanout:   3,
	}
}

// TestFPIndexThroughDedupPath runs the full post-process dedup pipeline with
// the fingerprint index enabled on the chunk pool: foreground writes, the
// background flush creating chunk objects (index inserts), duplicate chunks
// (index hits on the existence probe), GC deletes (index tombstones). The
// index must agree with every OSD's store afterwards and the probe
// cross-check counter must be zero.
func TestFPIndexThroughDedupPath(t *testing.T) {
	e := newDedupEnv(t, func(cfg *Config) {
		cfg.FPIndex = fpTestConfig()
	})
	if !e.c.FPIndexEnabled() {
		t.Fatal("Open did not enable the fingerprint index")
	}
	e.s.StartEngine()

	const objects = 30
	const objSize = 16 << 10 // 4 chunks each
	shadow := make([][]byte, objects)
	rng := rand.New(rand.NewSource(21))
	dup := bytes.Repeat([]byte{0xAB}, 4096)
	e.run(t, func(p *sim.Proc) {
		for i := 0; i < objects; i++ {
			data := make([]byte, objSize)
			rng.Read(data)
			// Half the chunks are the shared duplicate: the flush path's
			// existence probe exercises index hits.
			for c := 0; c < objSize/4096; c += 2 {
				copy(data[c*4096:], dup)
			}
			shadow[i] = data
			if err := e.cl.Write(p, fmt.Sprintf("o%d", i), 0, data); err != nil {
				t.Errorf("write o%d: %v", i, err)
			}
		}
		e.s.Engine().DrainAndWait(p)
		// Rewrite a third of the objects with fresh data, flush, GC: the old
		// chunks lose their references and are deleted — index tombstones.
		for i := 0; i < objects; i += 3 {
			data := make([]byte, objSize)
			rng.Read(data)
			shadow[i] = data
			if err := e.cl.Write(p, fmt.Sprintf("o%d", i), 0, data); err != nil {
				t.Errorf("rewrite o%d: %v", i, err)
			}
		}
		e.s.Engine().DrainAndWait(p)
		if _, err := e.s.GC(p); err != nil {
			t.Fatalf("gc: %v", err)
		}
		for i := 0; i < objects; i++ {
			got, err := e.cl.Read(p, fmt.Sprintf("o%d", i), 0, int64(objSize))
			if err != nil {
				t.Errorf("read o%d: %v", i, err)
				continue
			}
			if !bytes.Equal(got, shadow[i]) {
				t.Errorf("object o%d corrupt", i)
			}
		}
	})
	if err := e.c.FPIndexVerify(); err != nil {
		t.Fatal(err)
	}
	st := e.c.FPIndexStats()
	if st.Inserts == 0 || st.Deletes == 0 {
		t.Fatalf("dedup pipeline never drove the index: %+v", st)
	}
	if st.Lookups == 0 {
		t.Fatal("no index lookups charged on the chunk-pool metadata path")
	}
	if st.Flushes == 0 {
		t.Fatalf("memtables never flushed to SSTables: %+v", st)
	}
	e.checkIntegrity(t)
}

// TestFPIndexSurvivesCrashDuringFlush is the chaos variant: a chunk-pool OSD
// crashes mid-flush (losing its memtable and block cache, keeping WAL +
// SSTables) and restarts while writers and the dedup engine keep going.
// After recovery settles, every OSD's index must again match its store
// exactly — WAL replay plus restart peering reconciliation leave no lost or
// phantom fingerprints.
func TestFPIndexSurvivesCrashDuringFlush(t *testing.T) {
	e := newDedupEnv(t, func(cfg *Config) {
		cfg.FalsePositiveRefs = true // crash-safe refcount mode (§4.6)
		cfg.FPIndex = fpTestConfig()
	})
	m := e.c.StartMonitor(rados.MonitorConfig{
		Interval:    50 * time.Millisecond,
		Grace:       200 * time.Millisecond,
		OutAfter:    500 * time.Millisecond,
		AutoRecover: true,
	})
	e.s.StartEngine()

	const (
		objects  = 24
		objSize  = 16 << 10
		crashed  = 9
		crashAt  = 2 * time.Millisecond
		reviveAt = 800 * time.Millisecond
	)
	e.eng.After(crashAt, func() {
		if err := e.c.CrashOSD(crashed); err != nil {
			t.Error(err)
		}
	})
	e.eng.After(reviveAt, func() {
		if err := e.c.RestartOSD(crashed); err != nil {
			t.Error(err)
		}
	})

	shadow := make([][]byte, objects)
	rng := rand.New(rand.NewSource(8))
	dup := bytes.Repeat([]byte{0xDD}, 4096)
	e.run(t, func(p *sim.Proc) {
		for i := 0; i < objects; i++ {
			data := make([]byte, objSize)
			rng.Read(data)
			for c := 0; c < objSize/4096; c += 2 {
				copy(data[c*4096:], dup)
			}
			shadow[i] = data
			var err error
			for try := 0; try < 100; try++ {
				if err = e.cl.Write(p, fmt.Sprintf("o%d", i), 0, data); err == nil || !rados.IsUnavailable(err) {
					break
				}
				p.Sleep(20 * time.Millisecond)
			}
			if err != nil {
				t.Errorf("write o%d: %v", i, err)
			}
			p.Sleep(30 * time.Millisecond) // spread writes across the crash window
		}
		m.WaitSettled(p)
		e.s.Engine().DrainAndWait(p)
	})
	if !e.c.OSDAlive(crashed) {
		t.Fatal("crashed OSD not alive after restart")
	}
	if err := e.c.FPIndexVerify(); err != nil {
		t.Fatal(err)
	}
	e.run(t, func(p *sim.Proc) {
		for i := 0; i < objects; i++ {
			got, err := e.cl.Read(p, fmt.Sprintf("o%d", i), 0, int64(objSize))
			if err != nil {
				t.Errorf("read o%d: %v", i, err)
				continue
			}
			if !bytes.Equal(got, shadow[i]) {
				t.Errorf("object o%d corrupt after crash/recovery", i)
			}
		}
	})
	e.checkIntegrity(t)
}
