package core

import (
	"bytes"
	"math/rand"
	"testing"

	"dedupstore/internal/sim"
)

func TestSnapshotSharesChunks(t *testing.T) {
	e := newDedupEnv(t, nil)
	data := make([]byte, 20000)
	rand.New(rand.NewSource(1)).Read(data)
	e.run(t, func(p *sim.Proc) { e.cl.Write(p, "vol", 0, data) })
	e.drain(t)
	before := e.c.PoolStats(e.s.chunk)

	e.run(t, func(p *sim.Proc) {
		if err := e.cl.Snapshot(p, "vol", "vol@snap1"); err != nil {
			t.Fatal(err)
		}
	})
	after := e.c.PoolStats(e.s.chunk)
	if after.LogicalBytes != before.LogicalBytes || after.Objects != before.Objects {
		t.Fatalf("snapshot copied data: %+v -> %+v", before, after)
	}
	e.run(t, func(p *sim.Proc) {
		got, err := e.cl.Read(p, "vol@snap1", 0, -1)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("snapshot read: %v", err)
		}
	})
	e.checkIntegrity(t)
}

func TestSnapshotDivergesOnWrite(t *testing.T) {
	e := newDedupEnv(t, nil)
	data := make([]byte, 12288)
	rand.New(rand.NewSource(2)).Read(data)
	e.run(t, func(p *sim.Proc) { e.cl.Write(p, "vol", 0, data) })
	e.drain(t)
	e.run(t, func(p *sim.Proc) {
		if err := e.cl.Snapshot(p, "vol", "vol@s"); err != nil {
			t.Fatal(err)
		}
	})
	// Overwrite part of the source: the snapshot must keep the old bytes.
	patch := bytes.Repeat([]byte{0xCD}, 4096)
	e.run(t, func(p *sim.Proc) {
		if err := e.cl.Write(p, "vol", 4096, patch); err != nil {
			t.Fatal(err)
		}
	})
	e.drain(t)
	e.run(t, func(p *sim.Proc) {
		snapGot, err := e.cl.Read(p, "vol@s", 0, -1)
		if err != nil || !bytes.Equal(snapGot, data) {
			t.Fatalf("snapshot changed after source write: %v", err)
		}
		want := append([]byte(nil), data...)
		copy(want[4096:], patch)
		srcGot, err := e.cl.Read(p, "vol", 0, -1)
		if err != nil || !bytes.Equal(srcGot, want) {
			t.Fatalf("source wrong after write: %v", err)
		}
	})
	e.checkIntegrity(t)
}

func TestSnapshotDeleteOrderIndependent(t *testing.T) {
	e := newDedupEnv(t, nil)
	data := make([]byte, 8192)
	rand.New(rand.NewSource(3)).Read(data)
	e.run(t, func(p *sim.Proc) { e.cl.Write(p, "vol", 0, data) })
	e.drain(t)
	e.run(t, func(p *sim.Proc) {
		if err := e.cl.Snapshot(p, "vol", "vol@s"); err != nil {
			t.Fatal(err)
		}
		// Delete the ORIGINAL first: chunks must survive for the snapshot.
		if err := e.cl.Delete(p, "vol"); err != nil {
			t.Fatal(err)
		}
		got, err := e.cl.Read(p, "vol@s", 0, -1)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("snapshot lost data after source delete: %v", err)
		}
		if err := e.cl.Delete(p, "vol@s"); err != nil {
			t.Fatal(err)
		}
	})
	if n := len(e.c.ListObjects(e.s.chunk)); n != 0 {
		t.Fatalf("%d chunks leaked after deleting both", n)
	}
}

func TestSnapshotRequiresFlushed(t *testing.T) {
	e := newDedupEnv(t, nil)
	e.run(t, func(p *sim.Proc) {
		e.cl.Write(p, "vol", 0, bytes.Repeat([]byte{1}, 4096))
		if err := e.cl.Snapshot(p, "vol", "vol@s"); err != ErrSnapshotDirty {
			t.Fatalf("err = %v, want ErrSnapshotDirty", err)
		}
	})
}

func TestSnapshotValidation(t *testing.T) {
	e := newDedupEnv(t, nil)
	data := bytes.Repeat([]byte{2}, 4096)
	e.run(t, func(p *sim.Proc) { e.cl.Write(p, "vol", 0, data) })
	e.drain(t)
	e.run(t, func(p *sim.Proc) {
		if err := e.cl.Snapshot(p, "vol", "vol"); err == nil {
			t.Error("self-snapshot accepted")
		}
		if err := e.cl.Snapshot(p, "ghost", "x"); err == nil {
			t.Error("snapshot of missing object accepted")
		}
		if err := e.cl.Snapshot(p, "vol", "vol@s"); err != nil {
			t.Fatal(err)
		}
		if err := e.cl.Snapshot(p, "vol", "vol@s"); err == nil {
			t.Error("overwrite of existing snapshot accepted")
		}
	})
}

func TestManySnapshotsRefcount(t *testing.T) {
	e := newDedupEnv(t, nil)
	data := bytes.Repeat([]byte{9}, 4096)
	e.run(t, func(p *sim.Proc) { e.cl.Write(p, "vol", 0, data) })
	e.drain(t)
	e.run(t, func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			if err := e.cl.Snapshot(p, "vol", string(rune('a'+i))+"@snap"); err != nil {
				t.Fatal(err)
			}
		}
		gw := e.s.hostGW(anyHost(e.s))
		rc, err := gw.GetXattr(p, e.s.chunk, FingerprintID(data), XattrRefCount)
		if err != nil || mustCount(t, rc) != 6 { // vol + 5 snapshots
			t.Fatalf("refcount = %d, %v", mustCount(t, rc), err)
		}
	})
	e.checkIntegrity(t)
}
