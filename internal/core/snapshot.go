package core

import (
	"errors"
	"fmt"

	"dedupstore/internal/rados"
	"dedupstore/internal/sim"
	"dedupstore/internal/store"
)

// Snapshots: a natural extension the self-contained-object design makes
// almost free. Because a flushed metadata object is just a chunk map whose
// chunks are reference-counted, cloning an object is copying its map and
// taking one extra reference per chunk — no data moves. Writes to either
// the source or the clone then diverge naturally: the write path marks the
// touched slot dirty, the flush fingerprints the new content, and the §4.4.1
// de-reference step drops only that object's claim on the old chunk.

// ErrSnapshotDirty is returned when the source object still has dirty
// (unflushed) chunks; flush first (Engine.DrainAndWait or wait for the
// background engine).
var ErrSnapshotDirty = errors.New("core: source object has unflushed chunks; flush before snapshotting")

// Snapshot clones srcOID into dstOID without copying data: dst gets a copy
// of src's chunk map and one additional reference on every chunk. The
// source must be fully flushed (every slot clean and chunk-backed).
func (cl *Client) Snapshot(p *sim.Proc, srcOID, dstOID string) error {
	s := cl.s
	if srcOID == dstOID {
		return fmt.Errorf("core: snapshot onto itself (%q)", srcOID)
	}
	raw, err := cl.gw.GetXattr(p, s.meta, srcOID, XattrChunkMap)
	if err != nil {
		return err
	}
	cm, err := UnmarshalChunkMap(raw)
	if err != nil {
		return err
	}
	for _, entry := range cm.Entries {
		if entry.Dirty || entry.ChunkID == "" {
			return ErrSnapshotDirty
		}
	}
	if ok, err := cl.gw.Exists(p, s.meta, dstOID); err != nil {
		return err
	} else if ok {
		return fmt.Errorf("core: snapshot target %q already exists", dstOID)
	}

	// Reference every chunk on behalf of the clone. putRefFn is idempotent
	// per (object, offset) key, so a crashed, re-run snapshot converges.
	taken := make([]Ref, 0, len(cm.Entries))
	for _, entry := range cm.Entries {
		ref := Ref{Pool: s.meta.ID, OID: dstOID, Offset: entry.Start}
		err := cl.gw.Mutate(p, s.chunkPoolFor(entry.Cold), entry.ChunkID, func(v rados.View) (*store.Txn, error) {
			if !v.Exists() {
				return nil, fmt.Errorf("core: chunk %s vanished during snapshot", entry.ChunkID)
			}
			if _, err := v.OmapGet(ref.Key()); err == nil {
				return nil, nil // already referenced (idempotent retry)
			}
			count, gen, err := readRC(v)
			if err != nil {
				return nil, err
			}
			return store.NewTxn().
				SetXattr(XattrRefCount, encodeRC(count+1, gen+1)).
				OmapSet(ref.Key(), nil), nil
		})
		if err != nil {
			// Roll back the references taken so far.
			for _, r := range taken {
				if i := cm.Find(r.Offset); i >= 0 {
					src := cm.Entries[i]
					_ = cl.gw.Mutate(p, s.chunkPoolFor(src.Cold), src.ChunkID, decRefFn(r))
				}
			}
			return err
		}
		taken = append(taken, ref)
	}

	// Write the clone's metadata object: same map, nothing cached, clean.
	clone := &ChunkMap{}
	for _, entry := range cm.Entries {
		entry.Cached = false
		entry.Dirty = false
		entry.Gen = 0
		clone.Entries = append(clone.Entries, entry)
	}
	return cl.gw.Mutate(p, s.meta, dstOID, func(rados.View) (*store.Txn, error) {
		return store.NewTxn().Create().SetXattr(XattrChunkMap, clone.Marshal()), nil
	})
}
