package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"dedupstore/internal/rados"
	"dedupstore/internal/store"
)

// Double hashing (§3.2): the chunk object's ID is the fingerprint of its
// contents, so the cluster's placement hash maps equal chunks to the same
// location and duplicates collapse with no fingerprint index at all.

// FingerprintID returns the chunk-pool object ID for chunk contents.
func FingerprintID(data []byte) string {
	sum := sha256.Sum256(data)
	return "chk." + hex.EncodeToString(sum[:])
}

// Chunk object metadata keys. The reference information the paper stores
// with each chunk (§4.1: "pool id, source object ID, offset") lives in the
// chunk object's own omap; the count is an xattr. RefEntryOverhead models
// the paper's per-reference cost (§5: "the object in chunk pool uses
// additional 64 bytes for reference").
const (
	XattrRefCount    = "dedup.rc"
	refKeyPrefix     = "ref."
	RefEntryOverhead = 64
)

// Ref identifies one reference from a metadata-object chunk slot to a chunk.
type Ref struct {
	Pool   uint64
	OID    string
	Offset int64
}

// Key returns the omap key for this reference, padded to the paper's
// per-reference footprint.
func (r Ref) Key() string {
	k := fmt.Sprintf("%s%d|%s|%d", refKeyPrefix, r.Pool, r.OID, r.Offset)
	for len(k) < RefEntryOverhead {
		k += "."
	}
	return k
}

func encodeCount(n uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, n)
	return b
}

func decodeCount(b []byte) uint64 {
	if len(b) < 8 {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// putRefFn builds the Mutate closure for §4.4.1 steps (4)–(5): "If there is
// no object at the location ... store the object with reference count = 1.
// If there is an object already stored at the location, add reference count
// information." Executed under the chunk-pool PG lock, so create-vs-incref
// races between concurrent dedup workers are serialized by the substrate.
func putRefFn(data []byte, ref Ref) rados.MutateFn {
	return putRefFnTracked(data, ref, nil)
}

// putRefFnTracked is putRefFn that additionally reports (via added) whether
// the reference was newly recorded — false when this exact reference key
// already existed (idempotent re-flush). Undo logic must only remove
// references it actually added.
func putRefFnTracked(data []byte, ref Ref, added *bool) rados.MutateFn {
	return func(v rados.View) (*store.Txn, error) {
		if added != nil {
			*added = false
		}
		txn := store.NewTxn()
		if !v.Exists() {
			if added != nil {
				*added = true
			}
			txn.WriteFull(data).
				SetXattr(XattrRefCount, encodeCount(1)).
				OmapSet(ref.Key(), nil)
			return txn, nil
		}
		// Duplicate chunk: only reference info is added; the data write is
		// avoided entirely — the core space saving.
		if _, err := v.OmapGet(ref.Key()); err == nil {
			return nil, nil // this exact reference already recorded (idempotent re-flush)
		}
		cur, err := v.GetXattr(XattrRefCount)
		if err != nil {
			return nil, err
		}
		if added != nil {
			*added = true
		}
		txn.SetXattr(XattrRefCount, encodeCount(decodeCount(cur)+1)).
			OmapSet(ref.Key(), nil)
		return txn, nil
	}
}

// decRefFn builds the Mutate closure for strict de-referencing: remove the
// reference and delete the chunk object when the count reaches zero.
func decRefFn(ref Ref) rados.MutateFn {
	return func(v rados.View) (*store.Txn, error) {
		if !v.Exists() {
			return nil, nil // already gone (idempotent)
		}
		if _, err := v.OmapGet(ref.Key()); err != nil {
			return nil, nil // reference not present (idempotent retry)
		}
		cur, err := v.GetXattr(XattrRefCount)
		if err != nil {
			return nil, err
		}
		n := decodeCount(cur)
		txn := store.NewTxn()
		if n <= 1 {
			txn.Delete()
			return txn, nil
		}
		txn.SetXattr(XattrRefCount, encodeCount(n-1)).OmapRm(ref.Key())
		return txn, nil
	}
}

// dropRefFn is the false-positive-refcount variant (§4.6 last paragraph:
// "strictly locks on increment but no locking on decrement"): the reference
// entry is removed but the chunk is never deleted inline — a garbage
// collector reclaims zero-reference chunks later.
func dropRefFn(ref Ref) rados.MutateFn {
	return func(v rados.View) (*store.Txn, error) {
		if !v.Exists() {
			return nil, nil
		}
		if _, err := v.OmapGet(ref.Key()); err != nil {
			return nil, nil
		}
		cur, _ := v.GetXattr(XattrRefCount)
		n := decodeCount(cur)
		if n > 0 {
			n--
		}
		return store.NewTxn().SetXattr(XattrRefCount, encodeCount(n)).OmapRm(ref.Key()), nil
	}
}
