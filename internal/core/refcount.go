package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"dedupstore/internal/rados"
	"dedupstore/internal/sim"
	"dedupstore/internal/store"
)

// Double hashing (§3.2): the chunk object's ID is the fingerprint of its
// contents, so the cluster's placement hash maps equal chunks to the same
// location and duplicates collapse with no fingerprint index at all.

// FingerprintID returns the chunk-pool object ID for chunk contents.
func FingerprintID(data []byte) string {
	sum := sha256.Sum256(data)
	return "chk." + hex.EncodeToString(sum[:])
}

// Chunk object metadata keys. The reference information the paper stores
// with each chunk (§4.1: "pool id, source object ID, offset") lives in the
// chunk object's own omap; the count is an xattr. RefEntryOverhead models
// the paper's per-reference cost (§5: "the object in chunk pool uses
// additional 64 bytes for reference").
//
// Two kinds of omap entries live on a chunk object:
//
//   - "ref."-prefixed keys are committed references: the chunk map of the
//     source object binds that offset to this chunk, and the reference
//     count includes them.
//   - "int."-prefixed keys are reference *intents*: phase 1 of the
//     two-phase reference update (see engine.go flushChunk). The value is
//     a sim-time lease expiry. An intent does not count toward the
//     reference count; it only keeps GC from reclaiming the chunk while a
//     flush is between "chunk written" and "reference committed". Expired
//     intents are reconciled by GC and the audit pass: promoted to
//     committed references when the source chunk map binds this chunk,
//     aborted (removed) otherwise.
const (
	XattrRefCount    = "dedup.rc"
	refKeyPrefix     = "ref."
	intentKeyPrefix  = "int."
	RefEntryOverhead = 64
)

// Ref identifies one reference from a metadata-object chunk slot to a chunk.
type Ref struct {
	Pool   uint64
	OID    string
	Offset int64
}

// refBody serializes the reference fields with a length-prefixed OID, so
// any OID — including ones containing '|' or trailing '.' — round-trips
// through parseRefBody. (The previous "pool|oid|offset" form mis-parsed
// such OIDs, leaving their references invisible to GC forever.)
func (r Ref) refBody() string {
	return fmt.Sprintf("%d|%d:%s|%d", r.Pool, len(r.OID), r.OID, r.Offset)
}

// Key returns the omap key for this committed reference, padded to the
// paper's per-reference footprint.
func (r Ref) Key() string { return padRefKey(refKeyPrefix + r.refBody()) }

// IntentKey returns the omap key recording a phase-1 intent for this
// reference.
func (r Ref) IntentKey() string { return padRefKey(intentKeyPrefix + r.refBody()) }

func padRefKey(k string) string {
	for len(k) < RefEntryOverhead {
		k += "."
	}
	return k
}

// parseRefBody inverts refBody. The padding dots appended by padRefKey are
// unambiguous because the body is self-delimiting: the OID's length is
// explicit and the trailing offset is all digits.
func parseRefBody(body string) (Ref, bool) {
	bar := strings.IndexByte(body, '|')
	if bar < 0 {
		return Ref{}, false
	}
	pool, err := strconv.ParseUint(body[:bar], 10, 64)
	if err != nil {
		return Ref{}, false
	}
	rest := body[bar+1:]
	colon := strings.IndexByte(rest, ':')
	if colon < 0 {
		return Ref{}, false
	}
	oidLen, err := strconv.Atoi(rest[:colon])
	if err != nil || oidLen < 0 || colon+1+oidLen > len(rest) {
		return Ref{}, false
	}
	oid := rest[colon+1 : colon+1+oidLen]
	rest = rest[colon+1+oidLen:]
	if len(rest) == 0 || rest[0] != '|' {
		return Ref{}, false
	}
	rest = rest[1:]
	// Offset digits end where the '.' padding begins.
	numEnd := 0
	for numEnd < len(rest) && (rest[numEnd] == '-' && numEnd == 0 || rest[numEnd] >= '0' && rest[numEnd] <= '9') {
		numEnd++
	}
	if numEnd == 0 || strings.TrimRight(rest[numEnd:], ".") != "" {
		return Ref{}, false
	}
	off, err := strconv.ParseInt(rest[:numEnd], 10, 64)
	if err != nil {
		return Ref{}, false
	}
	return Ref{Pool: pool, OID: oid, Offset: off}, true
}

// parseRefKey inverts Ref.Key.
func parseRefKey(key string) (Ref, bool) {
	if !strings.HasPrefix(key, refKeyPrefix) {
		return Ref{}, false
	}
	return parseRefBody(key[len(refKeyPrefix):])
}

// parseIntentKey inverts Ref.IntentKey.
func parseIntentKey(key string) (Ref, bool) {
	if !strings.HasPrefix(key, intentKeyPrefix) {
		return Ref{}, false
	}
	return parseRefBody(key[len(intentKeyPrefix):])
}

// isRefKey / isIntentKey classify a chunk-object omap key.
func isRefKey(k string) bool    { return strings.HasPrefix(k, refKeyPrefix) }
func isIntentKey(k string) bool { return strings.HasPrefix(k, intentKeyPrefix) }

// The reference-count xattr packs the committed-reference count with a
// generation number bumped by every reference mutation on the chunk. GC
// snapshots the generation before its (unlocked, cross-pool) liveness
// checks and re-reads it under the sweep lock: a changed generation means
// a reference mutation raced the verification, so the sweep's decisions
// are stale and must not be replayed.
const rcLen = 16

// ErrCorruptRefCount reports a malformed dedup.rc xattr.
var ErrCorruptRefCount = errors.New("core: corrupt refcount xattr")

func encodeRC(count, gen uint64) []byte {
	b := make([]byte, rcLen)
	binary.LittleEndian.PutUint64(b, count)
	binary.LittleEndian.PutUint64(b[8:], gen)
	return b
}

func decodeRC(b []byte) (count, gen uint64, ok bool) {
	if len(b) != rcLen {
		return 0, 0, false
	}
	return binary.LittleEndian.Uint64(b), binary.LittleEndian.Uint64(b[8:]), true
}

// readRC reads and decodes the refcount xattr from a mutate view. Errors —
// including a transient unavailable read on an EC pool — propagate to the
// caller instead of decoding as count 0 and clobbering the real count.
func readRC(v rados.View) (count, gen uint64, err error) {
	raw, err := v.GetXattr(XattrRefCount)
	if err != nil {
		return 0, 0, err
	}
	count, gen, ok := decodeRC(raw)
	if !ok {
		return 0, 0, ErrCorruptRefCount
	}
	return count, gen, nil
}

func encodeExpiry(t sim.Time) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, uint64(t))
	return b
}

func decodeExpiry(b []byte) (sim.Time, bool) {
	if len(b) != 8 {
		return 0, false
	}
	return sim.Time(binary.LittleEndian.Uint64(b)), true
}

// countOtherRefs tallies the committed references and intents recorded on
// the chunk besides the excluded key.
func countOtherRefs(v rados.View, exclude string) (refs, intents int, err error) {
	keys, err := v.OmapList(0)
	if err != nil {
		return 0, 0, err
	}
	for _, k := range keys {
		if k == exclude {
			continue
		}
		switch {
		case isRefKey(k):
			refs++
		case isIntentKey(k):
			intents++
		}
	}
	return refs, intents, nil
}

// putRefFn builds the Mutate closure for §4.4.1 steps (4)–(5): "If there is
// no object at the location ... store the object with reference count = 1.
// If there is an object already stored at the location, add reference count
// information." Executed under the chunk-pool PG lock, so create-vs-incref
// races between concurrent dedup workers are serialized by the substrate.
// This is the single-phase (directly committed) form used by the inline
// baseline, whose reference is bound before the client ack; the background
// flush protocol uses putIntentFn/commitIntentFn instead.
func putRefFn(data []byte, ref Ref) rados.MutateFn {
	return func(v rados.View) (*store.Txn, error) {
		txn := store.NewTxn()
		if !v.Exists() {
			txn.WriteFull(data).
				SetXattr(XattrRefCount, encodeRC(1, 1)).
				OmapSet(ref.Key(), nil)
			return txn, nil
		}
		count, gen, err := readRC(v)
		if err != nil {
			return nil, err
		}
		// Duplicate chunk: only reference info is added; the data write is
		// avoided entirely — the core space saving.
		if _, err := v.OmapGet(ref.Key()); err == nil {
			// Already recorded (idempotent re-reference) — but still bump the
			// generation: this reference is being bound again, and a GC pass
			// that judged it stale before the re-bind must not replay that
			// decision.
			return txn.SetXattr(XattrRefCount, encodeRC(count, gen+1)), nil
		}
		txn.SetXattr(XattrRefCount, encodeRC(count+1, gen+1)).
			OmapSet(ref.Key(), nil)
		return txn, nil
	}
}

// intentOutcome reports what putIntentFn found under the PG lock.
type intentOutcome struct {
	// committed: this exact reference is already a committed ref (idempotent
	// re-flush after a crash between commit and map update) — no intent was
	// recorded, and neither commit nor abort must run.
	committed bool
}

// putIntentFn is phase 1 of the two-phase reference update: store the chunk
// contents if absent and record a reference intent with a lease expiry. The
// committed reference count is NOT incremented — the intent only pins the
// chunk against GC until commitIntentFn (phase 3) lands or the lease runs
// out. Re-running phase 1 for the same reference refreshes the lease.
func putIntentFn(data []byte, ref Ref, expiry sim.Time, out *intentOutcome) rados.MutateFn {
	return func(v rados.View) (*store.Txn, error) {
		if out != nil {
			*out = intentOutcome{}
		}
		txn := store.NewTxn()
		if !v.Exists() {
			txn.WriteFull(data).
				SetXattr(XattrRefCount, encodeRC(0, 1)).
				OmapSet(ref.IntentKey(), encodeExpiry(expiry))
			return txn, nil
		}
		count, gen, err := readRC(v)
		if err != nil {
			return nil, err
		}
		if _, err := v.OmapGet(ref.Key()); err == nil {
			if out != nil {
				out.committed = true
			}
			// Already committed (idempotent re-flush) — bump the generation
			// anyway so a GC pass that judged this reference stale before the
			// re-bind cannot replay its decision against it.
			return txn.SetXattr(XattrRefCount, encodeRC(count, gen+1)), nil
		}
		txn.SetXattr(XattrRefCount, encodeRC(count, gen+1)).
			OmapSet(ref.IntentKey(), encodeExpiry(expiry))
		return txn, nil
	}
}

// commitIntentFn is phase 3: the chunk-map binding is durable, so convert
// the intent into a committed reference and count it. Safe to run after GC
// aborted an expired intent (the reference is still recorded — the binding
// exists, which is exactly what GC verifies) and idempotent when the audit
// pass promoted the intent first.
func commitIntentFn(ref Ref) rados.MutateFn {
	return func(v rados.View) (*store.Txn, error) {
		if !v.Exists() {
			// The chunk vanished between binding and commit: only possible if
			// the lease expired mid-flush AND the binding was already gone
			// (racing write), so the flush result is obsolete anyway.
			return nil, nil
		}
		count, gen, err := readRC(v)
		if err != nil {
			return nil, err
		}
		txn := store.NewTxn().OmapRm(ref.IntentKey())
		if _, err := v.OmapGet(ref.Key()); err != nil {
			txn.OmapSet(ref.Key(), nil)
			count++
		}
		txn.SetXattr(XattrRefCount, encodeRC(count, gen+1))
		return txn, nil
	}
}

// abortIntentFn rolls back phase 1 after the map swap raced or failed. In
// strict mode a chunk left with no references and no other intents is
// deleted inline (there is no GC to reclaim it); in false-positive mode it
// is left for the collector. A crash before the abort lands is covered by
// the lease: GC/audit abort the expired intent.
func abortIntentFn(ref Ref, strict bool) rados.MutateFn {
	return func(v rados.View) (*store.Txn, error) {
		if !v.Exists() {
			return nil, nil
		}
		if _, err := v.OmapGet(ref.IntentKey()); err != nil {
			return nil, nil // no intent recorded (already reconciled)
		}
		count, gen, err := readRC(v)
		if err != nil {
			return nil, err
		}
		refs, intents, err := countOtherRefs(v, ref.IntentKey())
		if err != nil {
			return nil, err
		}
		if strict && count == 0 && refs == 0 && intents == 0 {
			return store.NewTxn().Delete(), nil
		}
		return store.NewTxn().
			OmapRm(ref.IntentKey()).
			SetXattr(XattrRefCount, encodeRC(count, gen+1)), nil
	}
}

// decRefFn builds the Mutate closure for strict de-referencing: remove the
// reference and delete the chunk object when no committed references — and
// no in-flight intents — remain.
func decRefFn(ref Ref) rados.MutateFn {
	return func(v rados.View) (*store.Txn, error) {
		if !v.Exists() {
			return nil, nil // already gone (idempotent)
		}
		if _, err := v.OmapGet(ref.Key()); err != nil {
			return nil, nil // reference not present (idempotent retry)
		}
		count, gen, err := readRC(v)
		if err != nil {
			return nil, err
		}
		refs, intents, err := countOtherRefs(v, ref.Key())
		if err != nil {
			return nil, err
		}
		if refs == 0 && intents == 0 {
			return store.NewTxn().Delete(), nil
		}
		if count > 0 {
			count--
		}
		return store.NewTxn().
			SetXattr(XattrRefCount, encodeRC(count, gen+1)).
			OmapRm(ref.Key()), nil
	}
}

// dropRefFn is the false-positive-refcount variant (§4.6 last paragraph:
// "strictly locks on increment but no locking on decrement"): the reference
// entry is removed but the chunk is never deleted inline — a garbage
// collector reclaims zero-reference chunks later. A failed refcount read
// propagates (so retryUnavailable can retry) instead of decoding as zero
// and clobbering the count.
func dropRefFn(ref Ref) rados.MutateFn {
	return func(v rados.View) (*store.Txn, error) {
		if !v.Exists() {
			return nil, nil
		}
		if _, err := v.OmapGet(ref.Key()); err != nil {
			return nil, nil
		}
		count, gen, err := readRC(v)
		if err != nil {
			return nil, err
		}
		if count > 0 {
			count--
		}
		return store.NewTxn().
			SetXattr(XattrRefCount, encodeRC(count, gen+1)).
			OmapRm(ref.Key()), nil
	}
}
