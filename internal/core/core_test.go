package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"dedupstore/internal/rados"
	"dedupstore/internal/sim"
	"dedupstore/internal/simcost"
)

type env struct {
	eng *sim.Engine
	c   *rados.Cluster
	s   *Store
	cl  *Client
}

func newDedupEnv(t *testing.T, mutate func(*Config)) *env {
	t.Helper()
	eng := sim.New(11)
	c := rados.NewTestbed(eng, simcost.Default(), 4, 4)
	cfg := DefaultConfig()
	cfg.ChunkSize = 4096 // small chunks keep tests fast
	cfg.Rate.Enabled = false
	cfg.HitSet.HitCount = 100 // effectively nothing is hot unless a test wants it
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := Open(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &env{eng: eng, c: c, s: s, cl: s.Client("client0")}
}

func (e *env) run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	var panicked error
	e.eng.Go("test", func(p *sim.Proc) {
		defer func() {
			if r := recover(); r != nil {
				panicked = fmt.Errorf("panic: %v", r)
			}
		}()
		fn(p)
	})
	e.eng.Run()
	if panicked != nil {
		t.Fatal(panicked)
	}
}

// drain flushes all dirty objects and stops the engine.
func (e *env) drain(t *testing.T) {
	t.Helper()
	e.run(t, func(p *sim.Proc) { e.s.Engine().DrainAndWait(p) })
}

// checkIntegrity verifies the global invariants of the design: every
// non-cached chunk-map entry points at an existing chunk object whose
// content round-trips, and every chunk object's reference count equals its
// recorded back references, each of which is live.
func (e *env) checkIntegrity(t *testing.T) {
	t.Helper()
	e.run(t, func(p *sim.Proc) {
		gw := e.s.hostGW(anyHost(e.s))
		refCount := map[string]int{}
		for _, oid := range e.c.ListObjects(e.s.meta) {
			if IsSystemObject(oid) {
				continue
			}
			raw, err := gw.GetXattr(p, e.s.meta, oid, XattrChunkMap)
			if err != nil {
				t.Errorf("object %s: no chunk map", oid)
				continue
			}
			cm, err := UnmarshalChunkMap(raw)
			if err != nil {
				t.Errorf("object %s: %v", oid, err)
				continue
			}
			for _, entry := range cm.Entries {
				if entry.ChunkID == "" {
					if !entry.Cached {
						t.Errorf("object %s slot %d: no chunk and not cached (data lost)", oid, entry.Start)
					}
					continue
				}
				ok, err := gw.Exists(p, e.s.chunk, entry.ChunkID)
				if err != nil || !ok {
					if !entry.Cached && !entry.Dirty {
						t.Errorf("object %s slot %d: chunk %s missing", oid, entry.Start, entry.ChunkID)
					}
					continue
				}
				if !entry.Dirty {
					refCount[entry.ChunkID]++
				}
			}
		}
		for _, chunkOID := range e.c.ListObjects(e.s.chunk) {
			refs, err := gw.OmapList(p, e.s.chunk, chunkOID, 0)
			if err != nil {
				t.Errorf("chunk %s: %v", chunkOID, err)
				continue
			}
			rcRaw, err := gw.GetXattr(p, e.s.chunk, chunkOID, XattrRefCount)
			if err != nil {
				t.Errorf("chunk %s: missing refcount", chunkOID)
				continue
			}
			committed, intents := 0, 0
			for _, k := range refs {
				switch {
				case isRefKey(k):
					committed++
				case isIntentKey(k):
					intents++
				default:
					t.Errorf("chunk %s: unknown omap key %q", chunkOID, k)
				}
			}
			if intents > 0 {
				t.Errorf("chunk %s: %d uncommitted intents after drain", chunkOID, intents)
			}
			rc, _, ok := decodeRC(rcRaw)
			if !ok {
				t.Errorf("chunk %s: corrupt refcount xattr (%d bytes)", chunkOID, len(rcRaw))
				continue
			}
			if int(rc) != committed {
				t.Errorf("chunk %s: refcount %d != %d recorded refs", chunkOID, rc, committed)
			}
			if !e.s.cfg.FalsePositiveRefs && committed == 0 {
				t.Errorf("chunk %s: zero references but not deleted (strict mode)", chunkOID)
			}
		}
		_ = refCount
	})
}

// mustCount decodes the committed-reference count from a dedup.rc xattr.
func mustCount(t *testing.T, raw []byte) uint64 {
	t.Helper()
	count, _, ok := decodeRC(raw)
	if !ok {
		t.Fatalf("corrupt refcount xattr (%d bytes)", len(raw))
	}
	return count
}

func TestWriteReadCachedRoundTrip(t *testing.T) {
	e := newDedupEnv(t, nil)
	data := make([]byte, 10000)
	rand.New(rand.NewSource(1)).Read(data)
	e.run(t, func(p *sim.Proc) {
		if err := e.cl.Write(p, "obj", 0, data); err != nil {
			t.Error(err)
		}
		got, err := e.cl.Read(p, "obj", 0, -1)
		if err != nil || !bytes.Equal(got, data) {
			t.Errorf("round trip failed: %v", err)
		}
		n, err := e.cl.Stat(p, "obj")
		if err != nil || n != int64(len(data)) {
			t.Errorf("stat = %d, %v", n, err)
		}
	})
}

func TestFlushMovesDataToChunkPool(t *testing.T) {
	e := newDedupEnv(t, nil)
	data := make([]byte, 12288) // 3 chunks
	rand.New(rand.NewSource(2)).Read(data)
	e.run(t, func(p *sim.Proc) {
		if err := e.cl.Write(p, "obj", 0, data); err != nil {
			t.Error(err)
		}
	})
	e.drain(t)
	// Chunk pool must now hold 3 chunks; metadata object holds none cached.
	cp := e.c.PoolStats(e.s.chunk)
	if cp.Objects != 3 {
		t.Fatalf("chunk pool has %d objects, want 3", cp.Objects)
	}
	e.run(t, func(p *sim.Proc) {
		got, err := e.cl.Read(p, "obj", 0, -1)
		if err != nil || !bytes.Equal(got, data) {
			t.Errorf("read after flush failed: %v", err)
		}
		// Sub-range read crossing a chunk boundary (redirection path).
		part, err := e.cl.Read(p, "obj", 4000, 300)
		if err != nil || !bytes.Equal(part, data[4000:4300]) {
			t.Errorf("range read after flush failed: %v", err)
		}
	})
	e.checkIntegrity(t)
}

func TestGlobalDedupAcrossObjects(t *testing.T) {
	e := newDedupEnv(t, nil)
	shared := make([]byte, 4096)
	rand.New(rand.NewSource(3)).Read(shared)
	e.run(t, func(p *sim.Proc) {
		// 10 objects with identical content: double hashing must collapse
		// them into one chunk regardless of which PG/OSD each object maps to.
		for i := 0; i < 10; i++ {
			if err := e.cl.Write(p, fmt.Sprintf("vm-%d", i), 0, shared); err != nil {
				t.Error(err)
			}
		}
	})
	e.drain(t)
	cp := e.c.PoolStats(e.s.chunk)
	if cp.Objects != 1 {
		t.Fatalf("chunk pool has %d objects, want 1 (global dedup)", cp.Objects)
	}
	if cp.LogicalBytes != 4096 {
		t.Fatalf("chunk pool logical = %d", cp.LogicalBytes)
	}
	// Refcount must be 10.
	e.run(t, func(p *sim.Proc) {
		gw := e.s.hostGW(anyHost(e.s))
		rc, err := gw.GetXattr(p, e.s.chunk, FingerprintID(shared), XattrRefCount)
		if err != nil || mustCount(t, rc) != 10 {
			t.Errorf("refcount = %d, %v", mustCount(t, rc), err)
		}
	})
	e.checkIntegrity(t)
}

func TestOverwriteAfterFlushRededups(t *testing.T) {
	e := newDedupEnv(t, nil)
	first := bytes.Repeat([]byte{1}, 4096)
	second := bytes.Repeat([]byte{2}, 4096)
	e.run(t, func(p *sim.Proc) { e.cl.Write(p, "obj", 0, first) })
	e.drain(t)
	e.run(t, func(p *sim.Proc) { e.cl.Write(p, "obj", 0, second) })
	e.drain(t)
	// Old chunk must be deleted (its only reference was dropped), new chunk
	// present.
	e.run(t, func(p *sim.Proc) {
		gw := e.s.hostGW(anyHost(e.s))
		if ok, _ := gw.Exists(p, e.s.chunk, FingerprintID(first)); ok {
			t.Error("old chunk not reclaimed after overwrite")
		}
		if ok, _ := gw.Exists(p, e.s.chunk, FingerprintID(second)); !ok {
			t.Error("new chunk missing")
		}
		got, err := e.cl.Read(p, "obj", 0, -1)
		if err != nil || !bytes.Equal(got, second) {
			t.Errorf("read = %v", err)
		}
	})
	e.checkIntegrity(t)
}

func TestSubChunkWritePreRead(t *testing.T) {
	e := newDedupEnv(t, nil)
	base := make([]byte, 8192)
	rand.New(rand.NewSource(4)).Read(base)
	e.run(t, func(p *sim.Proc) { e.cl.Write(p, "obj", 0, base) })
	e.drain(t) // data now only in chunk pool
	patch := []byte("PARTIAL")
	e.run(t, func(p *sim.Proc) {
		// 7-byte write into a 4K chunk: primary must pre-read the chunk.
		if err := e.cl.Write(p, "obj", 1000, patch); err != nil {
			t.Error(err)
		}
		want := append([]byte(nil), base...)
		copy(want[1000:], patch)
		got, err := e.cl.Read(p, "obj", 0, -1)
		if err != nil || !bytes.Equal(got, want) {
			t.Errorf("pre-read merge failed: %v", err)
		}
	})
	e.drain(t)
	e.checkIntegrity(t)
}

func TestDeleteDereferencesChunks(t *testing.T) {
	e := newDedupEnv(t, nil)
	shared := bytes.Repeat([]byte{7}, 4096)
	e.run(t, func(p *sim.Proc) {
		e.cl.Write(p, "a", 0, shared)
		e.cl.Write(p, "b", 0, shared)
	})
	e.drain(t)
	e.run(t, func(p *sim.Proc) {
		if err := e.cl.Delete(p, "a"); err != nil {
			t.Error(err)
		}
	})
	// Chunk survives (b still references it).
	e.run(t, func(p *sim.Proc) {
		gw := e.s.hostGW(anyHost(e.s))
		if ok, _ := gw.Exists(p, e.s.chunk, FingerprintID(shared)); !ok {
			t.Error("chunk deleted while still referenced")
		}
		if _, err := e.cl.Read(p, "a", 0, -1); err != ErrNotFound {
			t.Errorf("read deleted object: %v", err)
		}
		got, err := e.cl.Read(p, "b", 0, -1)
		if err != nil || !bytes.Equal(got, shared) {
			t.Errorf("b unreadable after deleting a: %v", err)
		}
	})
	e.run(t, func(p *sim.Proc) {
		if err := e.cl.Delete(p, "b"); err != nil {
			t.Error(err)
		}
	})
	e.run(t, func(p *sim.Proc) {
		gw := e.s.hostGW(anyHost(e.s))
		if ok, _ := gw.Exists(p, e.s.chunk, FingerprintID(shared)); ok {
			t.Error("chunk not reclaimed after last reference")
		}
	})
}

func TestSpaceSaving(t *testing.T) {
	e := newDedupEnv(t, nil)
	shared := make([]byte, 64<<10)
	rand.New(rand.NewSource(5)).Read(shared)
	e.run(t, func(p *sim.Proc) {
		for i := 0; i < 8; i++ {
			e.cl.Write(p, fmt.Sprintf("img%d", i), 0, shared)
		}
	})
	e.drain(t)
	meta := e.c.PoolStats(e.s.meta)
	chunk := e.c.PoolStats(e.s.chunk)
	logical := int64(8 * len(shared))
	stored := meta.StoredTotal() + chunk.StoredTotal()
	// 8 identical 64K objects, 2x replication: logical raw = 1MB stored
	// would be 2x; dedup should store ~64K*2 + metadata.
	if stored > logical/2 {
		t.Fatalf("stored %d bytes for %d logical (no dedup effect?)", stored, logical)
	}
}

func TestHotObjectSkipped(t *testing.T) {
	e := newDedupEnv(t, func(cfg *Config) {
		cfg.HitSet.HitCount = 2
		cfg.HitSet.Period = time.Second
		cfg.HitSet.Retain = 4
	})
	data := bytes.Repeat([]byte{9}, 4096)
	// Warm up hotness (two accesses in different hitset periods) before the
	// engine starts, so the object is already hot when first scanned.
	e.run(t, func(p *sim.Proc) {
		e.cl.Write(p, "hot", 0, data)
		p.Sleep(1100 * time.Millisecond)
		e.cl.Write(p, "hot", 0, data)
	})
	e.s.StartEngine()
	e.run(t, func(p *sim.Proc) {
		// Keep touching the object every period: it stays hot.
		for i := 0; i < 5; i++ {
			p.Sleep(time.Second)
			if err := e.cl.Write(p, "hot", 0, data); err != nil {
				t.Error(err)
			}
		}
		// Engine had plenty of cycles; the hot object must not be flushed.
		if st := e.s.Engine().Stats(); st.ChunksFlushed > 0 {
			t.Errorf("hot object flushed %d chunks", st.ChunksFlushed)
		}
		if sk := e.s.Engine().Stats().SkippedHot; sk == 0 {
			t.Error("engine never skipped the hot object")
		}
	})
	// After the object cools down, drain flushes it.
	e.drain(t)
	if st := e.s.Engine().Stats(); st.ChunksFlushed == 0 {
		t.Fatal("object never flushed after cooling")
	}
	e.checkIntegrity(t)
}

func TestFlushThroughMode(t *testing.T) {
	e := newDedupEnv(t, func(cfg *Config) { cfg.Mode = ModeFlushThrough })
	data := make([]byte, 8192)
	rand.New(rand.NewSource(6)).Read(data)
	e.run(t, func(p *sim.Proc) {
		if err := e.cl.Write(p, "obj", 0, data); err != nil {
			t.Error(err)
		}
		// No drain needed: data must already be in the chunk pool.
		got, err := e.cl.Read(p, "obj", 0, -1)
		if err != nil || !bytes.Equal(got, data) {
			t.Errorf("read = %v", err)
		}
	})
	if cp := e.c.PoolStats(e.s.chunk); cp.Objects != 2 {
		t.Fatalf("chunk pool objects = %d, want 2", cp.Objects)
	}
	e.checkIntegrity(t)
}

func TestInlineMode(t *testing.T) {
	e := newDedupEnv(t, func(cfg *Config) { cfg.Mode = ModeInline })
	data := make([]byte, 8192)
	rand.New(rand.NewSource(7)).Read(data)
	e.run(t, func(p *sim.Proc) {
		if err := e.cl.Write(p, "obj", 0, data); err != nil {
			t.Error(err)
		}
		got, err := e.cl.Read(p, "obj", 0, -1)
		if err != nil || !bytes.Equal(got, data) {
			t.Errorf("inline round trip: %v", err)
		}
		// Partial write: read-modify-write of the chunk (Fig. 5a).
		if err := e.cl.Write(p, "obj", 100, []byte("XYZ")); err != nil {
			t.Error(err)
		}
		want := append([]byte(nil), data...)
		copy(want[100:], "XYZ")
		got, err = e.cl.Read(p, "obj", 0, -1)
		if err != nil || !bytes.Equal(got, want) {
			t.Errorf("inline partial write: %v", err)
		}
	})
	e.checkIntegrity(t)
}

func TestInlineDedupsAcrossObjects(t *testing.T) {
	e := newDedupEnv(t, func(cfg *Config) { cfg.Mode = ModeInline })
	shared := bytes.Repeat([]byte{3}, 4096)
	e.run(t, func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			e.cl.Write(p, fmt.Sprintf("o%d", i), 0, shared)
		}
	})
	if cp := e.c.PoolStats(e.s.chunk); cp.Objects != 1 {
		t.Fatalf("chunk pool objects = %d, want 1", cp.Objects)
	}
	e.checkIntegrity(t)
}

func TestConcurrentWritersDistinctObjects(t *testing.T) {
	e := newDedupEnv(t, nil)
	e.s.StartEngine()
	contents := map[string][]byte{}
	rng := rand.New(rand.NewSource(8))
	e.run(t, func(p *sim.Proc) {
		var sigs []*sim.Signal
		for w := 0; w < 8; w++ {
			w := w
			cl := e.s.Client(fmt.Sprintf("client%d", w))
			sigs = append(sigs, p.Go("writer", func(q *sim.Proc) {
				for i := 0; i < 10; i++ {
					oid := fmt.Sprintf("w%d-o%d", w, i)
					data := make([]byte, 4096+rng.Intn(4096))
					rng.Read(data)
					contents[oid] = data
					if err := cl.Write(q, oid, 0, data); err != nil {
						t.Error(err)
					}
				}
			}))
		}
		sim.WaitAll(p, sigs...)
	})
	e.drain(t)
	e.run(t, func(p *sim.Proc) {
		for oid, want := range contents {
			got, err := e.cl.Read(p, oid, 0, -1)
			if err != nil || !bytes.Equal(got, want) {
				t.Errorf("object %s corrupt: %v", oid, err)
			}
		}
	})
	e.checkIntegrity(t)
}

func TestWriteRacingFlush(t *testing.T) {
	e := newDedupEnv(t, nil)
	e.s.StartEngine()
	final := bytes.Repeat([]byte{0xAB}, 4096)
	e.run(t, func(p *sim.Proc) {
		// Interleave writes to the same slot with engine cycles: the gen
		// guard must keep the final content authoritative.
		for i := 0; i < 20; i++ {
			data := bytes.Repeat([]byte{byte(i)}, 4096)
			if i == 19 {
				data = final
			}
			if err := e.cl.Write(p, "contended", 0, data); err != nil {
				t.Error(err)
			}
			p.Sleep(20 * time.Millisecond) // let the engine race
		}
	})
	e.drain(t)
	e.run(t, func(p *sim.Proc) {
		got, err := e.cl.Read(p, "contended", 0, -1)
		if err != nil || !bytes.Equal(got, final) {
			t.Errorf("lost final write: %v", err)
		}
	})
	e.checkIntegrity(t)
}

func TestDedupOnECChunkPool(t *testing.T) {
	e := newDedupEnv(t, func(cfg *Config) {
		cfg.ChunkRedundancy = rados.ErasureKM(2, 1)
	})
	data := make([]byte, 16384)
	rand.New(rand.NewSource(9)).Read(data)
	e.run(t, func(p *sim.Proc) { e.cl.Write(p, "obj", 0, data) })
	e.drain(t)
	e.run(t, func(p *sim.Proc) {
		got, err := e.cl.Read(p, "obj", 0, -1)
		if err != nil || !bytes.Equal(got, data) {
			t.Errorf("read from EC chunk pool: %v", err)
		}
	})
	// EC 2+1 overhead on the chunk pool: stored ~1.5x chunk bytes.
	cp := e.c.PoolStats(e.s.chunk)
	if cp.Objects != 4 {
		t.Fatalf("chunk pool objects = %d", cp.Objects)
	}
	e.checkIntegrity(t)
}

func TestRecoveryPreservesDedupState(t *testing.T) {
	e := newDedupEnv(t, nil)
	shared := make([]byte, 32768)
	rand.New(rand.NewSource(10)).Read(shared)
	e.run(t, func(p *sim.Proc) {
		for i := 0; i < 6; i++ {
			e.cl.Write(p, fmt.Sprintf("o%d", i), 0, shared)
		}
	})
	e.drain(t)
	// Fail and replace two OSDs; the substrate's recovery must restore both
	// metadata objects (with chunk maps) and chunk objects (with refcounts)
	// — the "self-contained object" claim.
	e.c.FailOSD(2)
	e.c.FailOSD(9)
	if _, err := e.c.ReplaceOSD(2); err != nil {
		t.Fatal(err)
	}
	if _, err := e.c.ReplaceOSD(9); err != nil {
		t.Fatal(err)
	}
	e.run(t, func(p *sim.Proc) { e.c.Recover(p) })
	e.run(t, func(p *sim.Proc) {
		for i := 0; i < 6; i++ {
			got, err := e.cl.Read(p, fmt.Sprintf("o%d", i), 0, -1)
			if err != nil || !bytes.Equal(got, shared) {
				t.Errorf("object o%d corrupt after recovery: %v", i, err)
			}
		}
	})
	e.checkIntegrity(t)
}

func TestStatAfterEviction(t *testing.T) {
	e := newDedupEnv(t, nil)
	data := make([]byte, 10000)
	e.run(t, func(p *sim.Proc) { e.cl.Write(p, "obj", 0, data) })
	e.drain(t)
	e.run(t, func(p *sim.Proc) {
		n, err := e.cl.Stat(p, "obj")
		if err != nil || n != 10000 {
			t.Errorf("stat after flush = %d, %v", n, err)
		}
	})
}

func TestReadMissingObject(t *testing.T) {
	e := newDedupEnv(t, nil)
	e.run(t, func(p *sim.Proc) {
		if _, err := e.cl.Read(p, "ghost", 0, -1); err != ErrNotFound {
			t.Errorf("err = %v, want ErrNotFound", err)
		}
		if _, err := e.cl.Stat(p, "ghost"); err != ErrNotFound {
			t.Errorf("stat err = %v", err)
		}
	})
}

func TestZeroLengthWrite(t *testing.T) {
	e := newDedupEnv(t, nil)
	e.run(t, func(p *sim.Proc) {
		if err := e.cl.Write(p, "obj", 0, nil); err != nil {
			t.Errorf("zero-length write: %v", err)
		}
		if ok, _ := e.cl.gw.Exists(p, e.s.meta, "obj"); ok {
			t.Error("zero-length write created object")
		}
	})
}

func TestMetadataEvictionReclaimsSpace(t *testing.T) {
	e := newDedupEnv(t, nil)
	data := make([]byte, 64<<10)
	rand.New(rand.NewSource(12)).Read(data)
	e.run(t, func(p *sim.Proc) { e.cl.Write(p, "obj", 0, data) })
	before := e.c.PoolStats(e.s.meta).StoredPhysical
	e.drain(t)
	after := e.c.PoolStats(e.s.meta).StoredPhysical
	if after >= before {
		t.Fatalf("metadata pool did not shrink after flush: %d -> %d", before, after)
	}
	if after > int64(len(data)) {
		t.Fatalf("metadata pool still holds %d bytes of data after eviction", after)
	}
}

// newTestCluster builds a bare 4x4 testbed for config-validation tests.
func newTestCluster(eng *sim.Engine) *rados.Cluster {
	return rados.NewTestbed(eng, simcost.Default(), 4, 4)
}

func TestTieredPools(t *testing.T) {
	// §4.2: metadata pool on fast media, chunk pool on cheap media. Build a
	// hybrid cluster and verify data lands class-correctly end to end.
	eng := sim.New(31)
	c := rados.New(eng, simcost.Default())
	id := 0
	for h := 0; h < 4; h++ {
		host := fmt.Sprintf("host%d", h)
		c.AddHost(host, 12)
		for d := 0; d < 2; d++ {
			if err := c.AddOSDClass(id, host, 1.0, "ssd", 1.0); err != nil {
				t.Fatal(err)
			}
			id++
			if err := c.AddOSDClass(id, host, 1.0, "hdd", 8.0); err != nil {
				t.Fatal(err)
			}
			id++
		}
	}
	cfg := DefaultConfig()
	cfg.ChunkSize = 4096
	cfg.Rate.Enabled = false
	cfg.HitSet.HitCount = 1000
	cfg.MetaDeviceClass = "ssd"
	cfg.ChunkDeviceClass = "hdd"
	s, err := Open(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl := s.Client("tiered")
	data := make([]byte, 16384)
	rand.New(rand.NewSource(32)).Read(data)
	eng.Go("w", func(p *sim.Proc) {
		if err := cl.Write(p, "obj", 0, data); err != nil {
			t.Error(err)
		}
		s.Engine().DrainAndWait(p)
		got, err := cl.Read(p, "obj", 0, -1)
		if err != nil || !bytes.Equal(got, data) {
			t.Errorf("tiered round trip: %v", err)
		}
	})
	eng.Run()
	for _, osdID := range c.OSDs() {
		info, _ := c.Map().Lookup(osdID)
		st, _ := c.OSDStore(osdID)
		if n := st.PoolUsage(s.MetaPool().ID).Objects; n > 0 && info.Class != "ssd" {
			t.Fatalf("metadata objects on %s osd.%d", info.Class, osdID)
		}
		if n := st.PoolUsage(s.ChunkPool().ID).Objects; n > 0 && info.Class != "hdd" {
			t.Fatalf("chunk objects on %s osd.%d", info.Class, osdID)
		}
	}
}
