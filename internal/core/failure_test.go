package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"dedupstore/internal/sim"
)

// The §4.6 consistency argument: a crash at any point of the flush protocol
// leaves the dirty bit set (or the chunk already durable), so re-running
// deduplication converges with no lost data and correct reference counts.
// These tests crash the flush at each numbered failure point and verify
// exactly that.

func crashEnv(t *testing.T) *env {
	return newDedupEnv(t, nil)
}

// writeTwo writes two objects sharing one chunk's content.
func writeTwo(t *testing.T, e *env, content []byte) {
	e.run(t, func(p *sim.Proc) {
		if err := e.cl.Write(p, "src-a", 0, content); err != nil {
			t.Error(err)
		}
		if err := e.cl.Write(p, "src-b", 0, content); err != nil {
			t.Error(err)
		}
	})
}

func verifyBoth(t *testing.T, e *env, content []byte) {
	t.Helper()
	e.run(t, func(p *sim.Proc) {
		for _, oid := range []string{"src-a", "src-b"} {
			got, err := e.cl.Read(p, oid, 0, -1)
			if err != nil || !bytes.Equal(got, content) {
				t.Errorf("object %s corrupt after crash recovery: %v", oid, err)
			}
		}
	})
	e.checkIntegrity(t)
}

func TestCrashAfterDeref(t *testing.T) {
	e := crashEnv(t)
	v1 := bytes.Repeat([]byte{1}, 4096)
	v2 := bytes.Repeat([]byte{2}, 4096)
	writeTwo(t, e, v1)
	e.drain(t)
	// Overwrite both so the next flush must de-reference the old chunk.
	writeTwo(t, e, v2)
	crashes := 0
	e.s.engine.hookAfterDeref = func(oid string, entry Entry) bool {
		if crashes < 2 {
			crashes++
			return true // crash right after step 3's de-reference
		}
		return false
	}
	e.drain(t) // crashes twice, requeues, then succeeds
	if crashes != 2 {
		t.Fatalf("hook fired %d times", crashes)
	}
	verifyBoth(t, e, v2)
}

func TestCrashAfterChunkPut(t *testing.T) {
	e := crashEnv(t)
	content := bytes.Repeat([]byte{5}, 4096)
	writeTwo(t, e, content)
	crashes := 0
	e.s.engine.hookAfterChunkPut = func(oid string, entry Entry) bool {
		if crashes < 2 {
			crashes++
			return true // crash between chunk-pool write and map update
		}
		return false
	}
	e.drain(t)
	// §4.6: "If failure occurs at (3), (4), chunk's state is not cleaned.
	// Therefore, next deduplication process handles this dirty chunk ...
	// Since reference data is already stored in the chunk pool, if reference
	// data already exists, the ack is sent without storing chunk."
	verifyBoth(t, e, content)
	cp := e.c.PoolStats(e.s.chunk)
	if cp.Objects != 1 {
		t.Fatalf("chunk pool objects = %d, want 1 (idempotent re-flush)", cp.Objects)
	}
}

func TestCrashBeforeMapUpdate(t *testing.T) {
	e := crashEnv(t)
	content := bytes.Repeat([]byte{6}, 4096)
	writeTwo(t, e, content)
	crashes := 0
	e.s.engine.hookBeforeMapWrite = func(oid string, entry Entry) bool {
		if crashes < 3 {
			crashes++
			return true // crash before the ack/map update (§4.6 failure at (5))
		}
		return false
	}
	e.drain(t)
	verifyBoth(t, e, content)
}

func TestCrashStormConverges(t *testing.T) {
	// Random crashes at every hook point across many objects; repeated
	// drains must converge to a consistent, fully deduplicated state.
	e := crashEnv(t)
	rng := rand.New(rand.NewSource(99))
	contents := map[string][]byte{}
	e.run(t, func(p *sim.Proc) {
		for i := 0; i < 12; i++ {
			oid := fmt.Sprintf("obj-%d", i)
			data := make([]byte, 8192)
			if i%3 == 0 {
				copy(data, bytes.Repeat([]byte{0x42}, 8192)) // shared content
			} else {
				rng.Read(data)
			}
			contents[oid] = data
			if err := e.cl.Write(p, oid, 0, data); err != nil {
				t.Error(err)
			}
		}
	})
	crash := func(string, Entry) bool { return rng.Intn(3) == 0 }
	e.s.engine.hookAfterDeref = crash
	e.s.engine.hookAfterChunkPut = crash
	e.s.engine.hookBeforeMapWrite = crash
	e.drain(t) // crashy drain: some flushes abort and requeue

	// Disable crashes and drain again — protocol must converge.
	e.s.engine.hookAfterDeref = nil
	e.s.engine.hookAfterChunkPut = nil
	e.s.engine.hookBeforeMapWrite = nil
	e.drain(t)

	e.run(t, func(p *sim.Proc) {
		for oid, want := range contents {
			got, err := e.cl.Read(p, oid, 0, -1)
			if err != nil || !bytes.Equal(got, want) {
				t.Errorf("object %s corrupt after crash storm: %v", oid, err)
			}
		}
	})
	e.checkIntegrity(t)
}

func TestFalsePositiveRefcountAndGC(t *testing.T) {
	e := newDedupEnv(t, func(cfg *Config) { cfg.FalsePositiveRefs = true })
	shared := bytes.Repeat([]byte{8}, 4096)
	writeTwo(t, e, shared)
	e.drain(t)
	chunkOID := FingerprintID(shared)
	e.run(t, func(p *sim.Proc) {
		// Delete both referents: in FP mode the chunk is NOT deleted inline.
		if err := e.cl.Delete(p, "src-a"); err != nil {
			t.Error(err)
		}
		if err := e.cl.Delete(p, "src-b"); err != nil {
			t.Error(err)
		}
		gw := e.s.hostGW(anyHost(e.s))
		if ok, _ := gw.Exists(p, e.s.chunk, chunkOID); !ok {
			t.Fatal("FP mode deleted the chunk inline")
		}
		// GC reclaims it.
		stats, err := e.s.GC(p)
		if err != nil {
			t.Fatal(err)
		}
		if stats.ChunksDeleted != 1 {
			t.Errorf("GC deleted %d chunks, want 1 (stats: %+v)", stats.ChunksDeleted, stats)
		}
		if ok, _ := gw.Exists(p, e.s.chunk, chunkOID); ok {
			t.Error("chunk survived GC with zero live references")
		}
	})
}

func TestGCKeepsLiveChunks(t *testing.T) {
	e := newDedupEnv(t, func(cfg *Config) { cfg.FalsePositiveRefs = true })
	shared := bytes.Repeat([]byte{4}, 4096)
	writeTwo(t, e, shared)
	e.drain(t)
	e.run(t, func(p *sim.Proc) {
		if err := e.cl.Delete(p, "src-a"); err != nil {
			t.Error(err)
		}
		stats, err := e.s.GC(p)
		if err != nil {
			t.Fatal(err)
		}
		if stats.ChunksDeleted != 0 {
			t.Errorf("GC deleted a chunk still referenced by src-b")
		}
		got, err := e.cl.Read(p, "src-b", 0, -1)
		if err != nil || !bytes.Equal(got, shared) {
			t.Errorf("src-b corrupt after GC: %v", err)
		}
	})
}

func TestGCReclaimsLeakedRefs(t *testing.T) {
	// Simulate the FP-mode leak the paper's GC exists for: a chunk whose
	// back reference points at an object slot that moved on.
	e := newDedupEnv(t, func(cfg *Config) { cfg.FalsePositiveRefs = true })
	v1 := bytes.Repeat([]byte{1}, 4096)
	v2 := bytes.Repeat([]byte{2}, 4096)
	e.run(t, func(p *sim.Proc) { e.cl.Write(p, "obj", 0, v1) })
	e.drain(t)
	e.run(t, func(p *sim.Proc) { e.cl.Write(p, "obj", 0, v2) })
	e.drain(t)
	// In FP mode the old chunk (v1) was only de-referenced lock-free — it
	// still exists until GC runs.
	e.run(t, func(p *sim.Proc) {
		gw := e.s.hostGW(anyHost(e.s))
		if ok, _ := gw.Exists(p, e.s.chunk, FingerprintID(v1)); !ok {
			t.Skip("old chunk already reclaimed (drop-ref removed last key)")
		}
		if _, err := e.s.GC(p); err != nil {
			t.Fatal(err)
		}
		if ok, _ := gw.Exists(p, e.s.chunk, FingerprintID(v1)); ok {
			t.Error("GC left an unreferenced chunk")
		}
		if ok, _ := gw.Exists(p, e.s.chunk, FingerprintID(v2)); !ok {
			t.Error("GC deleted the live chunk")
		}
	})
}
