package core

import (
	"errors"
	"fmt"
	"time"

	"dedupstore/internal/chunker"
	"dedupstore/internal/fpindex"
	"dedupstore/internal/hitset"
	"dedupstore/internal/metrics"
	"dedupstore/internal/qos"
	"dedupstore/internal/rados"
	"dedupstore/internal/sim"
	"dedupstore/internal/store"
)

// Mode selects when deduplication happens.
type Mode int

// Dedup timing modes (§3.1 "Minimizing performance degradation").
const (
	// ModePostProcess is the paper's proposed design: writes land in the
	// metadata pool; background threads deduplicate later.
	ModePostProcess Mode = iota + 1
	// ModeInline deduplicates on the write path (the baseline whose
	// partial-write penalty Fig. 5a shows).
	ModeInline
	// ModeFlushThrough writes then immediately flushes to the chunk pool
	// synchronously ("Proposed-flush" in Fig. 10).
	ModeFlushThrough
)

// RateConfig is the watermark-based dedup rate control (§4.4.2).
type RateConfig struct {
	// Enabled turns throttling on. Disabled reproduces the Fig. 5b / Fig. 14
	// interference baseline.
	Enabled bool
	// LowIOPS / HighIOPS are the foreground-load watermarks.
	LowIOPS, HighIOPS float64
	// OpsPerDedupAboveHigh: one dedup I/O per this many foreground I/Os when
	// load exceeds HighIOPS (paper: 500).
	OpsPerDedupAboveHigh int64
	// OpsPerDedupMid: one dedup I/O per this many foreground I/Os between
	// the watermarks (paper: 100).
	OpsPerDedupMid int64
}

// DefaultRate returns the paper's rate-control settings.
func DefaultRate() RateConfig {
	return RateConfig{Enabled: true, LowIOPS: 1000, HighIOPS: 4000, OpsPerDedupAboveHigh: 500, OpsPerDedupMid: 100}
}

// TieringConfig configures adaptive redundancy: hotness-driven per-object
// placement across replication, EC, and dedup. Off by default — the zero
// value leaves the store exactly as the paper's static two-pool design.
type TieringConfig struct {
	// Enabled turns the subsystem on: a third (cold, erasure-coded) chunk
	// pool is created, the flush engine lands chunks by temperature, and the
	// policy daemon migrates objects whose temperature drifted from their
	// placement. Requires ModePostProcess and static chunking.
	Enabled bool
	// ColdPoolName names the EC chunk pool (default "chunkcold").
	ColdPoolName string
	// ColdRedundancy is the cold pool's protection (default EC 2+1).
	ColdRedundancy rados.Redundancy
	// ColdDeviceClass pins the cold pool to a device class ("" = any).
	ColdDeviceClass string
	// Interval is the policy daemon's pass period (default 1s).
	Interval time.Duration
	// MaxMigrationsPerPass caps chunk moves (promote+demote) per daemon
	// pass, bounding the background load one pass may create; 0 = unlimited.
	MaxMigrationsPerPass int
}

// DefaultTiering returns an enabled tiering config with the defaults
// documented on TieringConfig.
func DefaultTiering() TieringConfig {
	return TieringConfig{Enabled: true}
}

// Config configures a dedup Store.
type Config struct {
	// ChunkSize is the static chunking size (paper default 32 KiB, §6.1).
	ChunkSize int64
	// MetaPoolName / ChunkPoolName name the two pools (§4.2).
	MetaPoolName, ChunkPoolName string
	// MetaRedundancy / ChunkRedundancy are each pool's protection scheme
	// ("each pool can separately select redundancy scheme", §4.2).
	MetaRedundancy, ChunkRedundancy rados.Redundancy
	// MetaDeviceClass / ChunkDeviceClass pin each pool to a device class
	// ("" = any) — §4.2's "each pool can be placed to different storage
	// location depending on the required performance": hot metadata (and
	// cached chunks) on fast media, deduplicated chunks on cheap media.
	MetaDeviceClass, ChunkDeviceClass string
	// PGNum for both pools.
	PGNum uint32
	// Mode selects dedup timing (default post-processing).
	Mode Mode
	// Rate is the background dedup rate control.
	Rate RateConfig
	// HitSet configures the cache manager's hotness tracking (§4.3, §5).
	HitSet hitset.Config
	// KeepCachedWhenHot leaves a flushed chunk cached in the metadata object
	// when the object is hot (cache manager policy). When false, every flush
	// evicts.
	KeepCachedWhenHot bool
	// DedupThreads is the number of background dedup workers (§4.4.1).
	DedupThreads int
	// FlushParallel bounds concurrent chunk flushes within one object's
	// flush (each worker pipelines this many chunk I/Os).
	FlushParallel int
	// ScanInterval is the idle poll period of the background workers.
	ScanInterval time.Duration
	// FalsePositiveRefs enables the §4.6 variant: no locking on decrement;
	// zero-reference chunks are reclaimed by the garbage collector instead.
	FalsePositiveRefs bool
	// IntentLease is the lifetime of a phase-1 reference intent (see
	// refcount.go): GC and the audit pass leave an intent alone until this
	// much sim-time has passed since the flush recorded it, then reconcile
	// it (promote if the chunk map binds the chunk, abort otherwise). Must
	// comfortably exceed the flush's worst-case bind-to-commit latency.
	IntentLease time.Duration
	// CDC switches the background flush to content-defined chunking (an
	// extension of the paper's design; the paper uses static chunking for
	// its lower CPU cost, §5). Only valid with ModePostProcess. ChunkSize
	// still governs the write path's caching granularity.
	CDC *chunker.CDC
	// FPIndex enables the per-OSD log-structured fingerprint index on the
	// chunk pool (§4.5's dedup metadata as objects, realized as an LSM index
	// over chunk fingerprints). Zero value (Enabled=false) keeps the flat
	// in-memory map, so existing behavior and goldens are unchanged.
	FPIndex fpindex.Config
	// Tiering enables adaptive redundancy (hot → replicated+undeduplicated,
	// warm → replicated+dedup, cold → EC+dedup). Zero value (Enabled=false)
	// keeps the static two-pool design, so existing behavior and goldens
	// are unchanged.
	Tiering TieringConfig
}

// DefaultConfig mirrors the paper's evaluation setup: 32 KiB static chunks,
// replicated ×2 pools, post-processing with rate control.
func DefaultConfig() Config {
	return Config{
		ChunkSize:         32 << 10,
		MetaPoolName:      "meta",
		ChunkPoolName:     "chunk",
		MetaRedundancy:    rados.ReplicatedN(2),
		ChunkRedundancy:   rados.ReplicatedN(2),
		PGNum:             64,
		Mode:              ModePostProcess,
		Rate:              DefaultRate(),
		HitSet:            hitset.DefaultConfig(),
		KeepCachedWhenHot: true,
		DedupThreads:      2,
		FlushParallel:     8,
		ScanInterval:      50 * time.Millisecond,
		IntentLease:       2 * time.Second,
	}
}

// ErrNotFound is returned for absent objects.
var ErrNotFound = rados.ErrNotFound

// Store is the deduplicating object store: the paper's design layered on an
// unmodified scale-out substrate.
type Store struct {
	cluster   *rados.Cluster
	cfg       Config
	meta      *rados.Pool
	chunk     *rados.Pool // replicated (warm) chunk pool
	coldChunk *rados.Pool // erasure-coded (cold) chunk pool; nil unless tiering
	chk       chunker.Fixed
	cache     *TieringPolicy
	engine    *Engine
	tier      tierState

	hostGWs  map[string]*rados.Gateway // keyed class|host: one internal gateway per QoS class per host
	objLocks map[string]*sim.Resource  // inline-mode per-object write locks

	// gcHookBeforeSweep (tests only) runs between GC's out-of-lock
	// verification and the under-lock sweep of each chunk, so tests can
	// inject a racing reference mutation into exactly that window.
	gcHookBeforeSweep func(p *sim.Proc, chunkOID string)
}

// Open creates (or errors on existing) the metadata and chunk pools and
// returns the dedup store. The background engine is created but not started;
// call StartEngine.
func Open(cluster *rados.Cluster, cfg Config) (*Store, error) {
	if cfg.ChunkSize <= 0 {
		return nil, errors.New("core: ChunkSize must be positive")
	}
	if cfg.Mode == 0 {
		cfg.Mode = ModePostProcess
	}
	if cfg.DedupThreads < 1 {
		cfg.DedupThreads = 1
	}
	if cfg.FlushParallel < 1 {
		cfg.FlushParallel = 1
	}
	if cfg.CDC != nil && cfg.Mode != ModePostProcess {
		return nil, errors.New("core: CDC requires post-processing mode")
	}
	if cfg.Tiering.Enabled {
		if cfg.Mode != ModePostProcess {
			return nil, errors.New("core: tiering requires post-processing mode")
		}
		if cfg.CDC != nil {
			return nil, errors.New("core: tiering requires static chunking (no CDC)")
		}
		if cfg.Tiering.ColdPoolName == "" {
			cfg.Tiering.ColdPoolName = "chunkcold"
		}
		if cfg.Tiering.ColdRedundancy == (rados.Redundancy{}) {
			cfg.Tiering.ColdRedundancy = rados.ErasureKM(2, 1)
		}
		if cfg.Tiering.Interval <= 0 {
			cfg.Tiering.Interval = time.Second
		}
	}
	if cfg.ScanInterval <= 0 {
		cfg.ScanInterval = 50 * time.Millisecond
	}
	if cfg.IntentLease <= 0 {
		cfg.IntentLease = 2 * time.Second
	}
	meta, err := cluster.CreatePool(rados.PoolConfig{
		Name: cfg.MetaPoolName, PGNum: cfg.PGNum, Redundancy: cfg.MetaRedundancy,
		DeviceClass: cfg.MetaDeviceClass,
	})
	if err != nil {
		return nil, fmt.Errorf("core: create metadata pool: %w", err)
	}
	chunk, err := cluster.CreatePool(rados.PoolConfig{
		Name: cfg.ChunkPoolName, PGNum: cfg.PGNum, Redundancy: cfg.ChunkRedundancy,
		DeviceClass: cfg.ChunkDeviceClass,
	})
	if err != nil {
		return nil, fmt.Errorf("core: create chunk pool: %w", err)
	}
	if cfg.FPIndex.Enabled {
		if err := cluster.EnableFPIndex(chunk, cfg.FPIndex); err != nil {
			return nil, fmt.Errorf("core: enable fingerprint index: %w", err)
		}
	}
	s := &Store{
		cluster:  cluster,
		cfg:      cfg,
		meta:     meta,
		chunk:    chunk,
		chk:      chunker.NewFixed(cfg.ChunkSize),
		cache:    NewTieringPolicy(cfg.HitSet, cfg.KeepCachedWhenHot, cfg.Tiering.Enabled),
		hostGWs:  make(map[string]*rados.Gateway),
		objLocks: make(map[string]*sim.Resource),
	}
	if cfg.Tiering.Enabled {
		s.coldChunk, err = cluster.CreatePool(rados.PoolConfig{
			Name: cfg.Tiering.ColdPoolName, PGNum: cfg.PGNum, Redundancy: cfg.Tiering.ColdRedundancy,
			DeviceClass: cfg.Tiering.ColdDeviceClass,
		})
		if err != nil {
			return nil, fmt.Errorf("core: create cold chunk pool: %w", err)
		}
	}
	s.cache.AttachRegistry(cluster.Metrics())
	s.engine = newEngine(s)
	return s, nil
}

// Cluster returns the underlying substrate.
func (s *Store) Cluster() *rados.Cluster { return s.cluster }

// Config returns the store configuration.
func (s *Store) Config() Config { return s.cfg }

// MetaPool returns the metadata pool.
func (s *Store) MetaPool() *rados.Pool { return s.meta }

// ChunkPool returns the replicated (warm) chunk pool.
func (s *Store) ChunkPool() *rados.Pool { return s.chunk }

// ColdChunkPool returns the erasure-coded chunk pool (nil unless tiering is
// enabled).
func (s *Store) ColdChunkPool() *rados.Pool { return s.coldChunk }

// chunkPoolFor maps a binding's Cold bit to the pool holding the chunk.
func (s *Store) chunkPoolFor(cold bool) *rados.Pool {
	if cold && s.coldChunk != nil {
		return s.coldChunk
	}
	return s.chunk
}

// chunkPools lists the chunk pools in deterministic order (warm, then cold
// when tiering is on) for passes that walk every chunk object (GC, scrub).
func (s *Store) chunkPools() []*rados.Pool {
	if s.coldChunk != nil {
		return []*rados.Pool{s.chunk, s.coldChunk}
	}
	return []*rados.Pool{s.chunk}
}

// Engine returns the background dedup engine.
func (s *Store) Engine() *Engine { return s.engine }

// Cache returns the cache manager.
func (s *Store) Cache() *CacheManager { return s.cache }

// StartEngine spawns the background dedup workers (post-processing mode).
func (s *Store) StartEngine() { s.engine.Start() }

// hostGW returns the dedup-class internal gateway for a storage host (the
// background engine's default; created lazily).
func (s *Store) hostGW(hostName string) *rados.Gateway {
	return s.hostGWClass(hostName, qos.Dedup)
}

// hostGWClass returns the internal gateway for a storage host submitting in
// the given QoS class. Gateways are cached per (class, host): each class
// keeps its own gateway so the I/O it proxies is scheduled — and traced —
// under the class doing the work, not a shared catch-all.
func (s *Store) hostGWClass(hostName string, cls qos.Class) *rados.Gateway {
	key := cls.String() + "|" + hostName
	gw, ok := s.hostGWs[key]
	if !ok {
		var err error
		gw, err = s.cluster.HostGatewayClass(hostName, cls)
		if err != nil {
			panic(err)
		}
		s.hostGWs[key] = gw
	}
	return gw
}

// metaPrimaryGW returns the internal gateway co-located with the metadata
// object's primary OSD — where server-side dedup work for that object runs —
// submitting in the given QoS class (client-serving proxy work rides the
// client class; background flush rides the dedup class).
func (s *Store) metaPrimaryGW(oid string, cls qos.Class) (*rados.Gateway, string, error) {
	hostName, err := s.cluster.PrimaryHost(s.meta, oid)
	if err != nil {
		return nil, "", err
	}
	return s.hostGWClass(hostName, cls), hostName, nil
}

// dirtyListOID returns the per-PG dirty object ID list's object name
// (Fig. 8 "Dirty Obj ID List"). Kept in the metadata pool so it is
// replicated and recovered like everything else.
func (s *Store) dirtyListOID(oid string) string {
	pg := s.cluster.PGOf(s.meta, oid)
	return fmt.Sprintf("sys.dirty.%d", pg.Seq)
}

// dirtyListAll enumerates every dirty-list object name.
func (s *Store) dirtyListAll() []string {
	out := make([]string, 0, s.meta.PGNum)
	for seq := uint32(0); seq < s.meta.PGNum; seq++ {
		out = append(out, fmt.Sprintf("sys.dirty.%d", seq))
	}
	return out
}

// IsSystemObject reports whether a metadata-pool object name is internal
// dedup state rather than a user object.
func IsSystemObject(oid string) bool {
	return len(oid) >= 4 && oid[:4] == "sys."
}

// clientOpStats caches one dedup op kind's registry handles so per-op
// completion avoids string-keyed registry lookups.
type clientOpStats struct {
	total *metrics.Counter
	lat   *metrics.Histogram
}

func newClientOpStats(reg *metrics.Registry, kind string) clientOpStats {
	return clientOpStats{
		total: reg.Counter("dedup_op_total:" + kind),
		lat:   reg.Histogram("dedup_op_latency:" + kind),
	}
}

// clientOpCtx carries one in-flight client op: its trace span (nil when
// sampling dropped it), stat handles, and start time.
type clientOpCtx struct {
	sp    *metrics.Span
	st    *clientOpStats
	start sim.Time
}

// Client opens a user session with its own network link.
type Client struct {
	s      *Store
	gw     *rados.Gateway
	tenant string

	// Pre-resolved per-kind op handles (write/read/delete).
	opWrite, opRead, opDelete clientOpStats
}

// Client returns a client session named name.
func (s *Store) Client(name string) *Client {
	reg := s.cluster.Metrics()
	return &Client{
		s:        s,
		gw:       s.cluster.NewGateway(name),
		opWrite:  newClientOpStats(reg, "dedup.write"),
		opRead:   newClientOpStats(reg, "dedup.read"),
		opDelete: newClientOpStats(reg, "dedup.delete"),
	}
}

// Trace returns the cluster trace sink this client's operations record into.
func (cl *Client) Trace() *metrics.TraceSink { return cl.s.cluster.Trace() }

// SetTenant attributes this session to a tenant: the dedup-level spans it
// opens and the rados ops its gateway issues all carry the identity.
func (cl *Client) SetTenant(tenant string) {
	cl.tenant = tenant
	cl.gw.SetTenant(tenant)
}

// startOp opens a dedup-level trace span (the outermost span of a client
// op; the rados ops it issues nest under it).
func (cl *Client) startOp(p *sim.Proc, kind string, st *clientOpStats, bytes int) clientOpCtx {
	sp := cl.s.cluster.Trace().Start(p, kind)
	if sp != nil {
		sp.SetOp(cl.s.cfg.MetaPoolName, "", int64(bytes)).SetTenant(cl.tenant)
	}
	return clientOpCtx{sp: sp, st: st, start: p.Now()}
}

// finishOp closes the span (recycling it — it must not be touched after)
// and records the op latency in the registry.
func (cl *Client) finishOp(p *sim.Proc, oc clientOpCtx, err error) {
	if oc.sp != nil {
		oc.sp.Err = err != nil
		oc.sp.Finish(p)
	}
	oc.st.total.Inc()
	oc.st.lat.Add((p.Now() - oc.start).Duration())
}

// --- Write path (§4.5) -------------------------------------------------------

// Write stores data at offset off in object oid. In post-processing mode
// this is steps (1)-(4) of §4.5: place data in the metadata object, mark
// chunk-map entries cached+dirty, and log the object in the dirty list; no
// fingerprinting happens on this path.
func (cl *Client) Write(p *sim.Proc, oid string, off int64, data []byte) error {
	oc := cl.startOp(p, "dedup.write", &cl.opWrite, len(data))
	err := cl.write(p, oid, off, data)
	cl.finishOp(p, oc, err)
	return err
}

func (cl *Client) write(p *sim.Proc, oid string, off int64, data []byte) error {
	s := cl.s
	if len(data) == 0 {
		return nil
	}
	s.cache.RecordAccessTenant(p.Now(), oid, cl.tenant)

	if s.cfg.Mode == ModeInline {
		return cl.inlineWrite(p, oid, off, data)
	}
	if s.cfg.CDC != nil {
		return cl.cdcWrite(p, oid, off, data)
	}

	proxyGW, _, err := s.metaPrimaryGW(oid, qos.Client)
	if err != nil {
		return err
	}
	err = cl.gw.MutateWithPayload(p, s.meta, oid, len(data), func(v rados.View) (*store.Txn, error) {
		cm, err := loadChunkMap(v)
		if err != nil {
			return nil, err
		}
		txn := store.NewTxn()
		// Pre-read (§4.5 write step 2): when a sub-chunk write lands on a
		// slot whose bytes live only in the chunk pool, the primary fetches
		// the missing part so the slot becomes a complete cached chunk.
		end := off + int64(len(data))
		for _, i := range cm.FindRange(s.chk.AlignDown(off), s.chk.AlignUp(end)-s.chk.AlignDown(off)) {
			e := cm.Entries[i]
			if e.Cached || e.ChunkID == "" || (off <= e.Start && end >= e.End) {
				continue
			}
			chunkData, err := proxyGW.Read(p, s.chunkPoolFor(e.Cold), e.ChunkID, 0, e.Len())
			if err != nil {
				return nil, fmt.Errorf("core: pre-read chunk %s: %w", e.ChunkID, err)
			}
			txn.Write(e.Start, chunkData)
		}
		txn.Write(off, data)
		for _, c := range s.chk.Split(off, data) {
			slotStart := s.chk.AlignDown(c.Offset)
			var cur Entry
			if i := cm.Find(slotStart); i >= 0 {
				cur = cm.Entries[i]
			} else {
				cur = Entry{Start: slotStart, End: slotStart}
			}
			if c.End() > cur.End {
				cur.End = c.End()
			}
			cur.Cached = true
			cur.Dirty = true
			cur.Gen++
			cm.Upsert(cur)
		}
		txn.SetXattr(XattrChunkMap, cm.Marshal())
		return txn, nil
	})
	if err != nil {
		return err
	}
	// Step (4): log the object ID for the background dedup engine. The log
	// append does not gate the client's ack — the authoritative dirty state
	// is the chunk map's dirty bits, written transactionally above (§4.6).
	p.Go("dirty-log", func(q *sim.Proc) {
		_ = cl.gw.Mutate(q, s.meta, s.dirtyListOID(oid), func(rados.View) (*store.Txn, error) {
			return store.NewTxn().Create().OmapSet(oid, nil), nil
		})
	})
	if s.cfg.Mode == ModeFlushThrough {
		// "Proposed-flush": deduplicate immediately (Fig. 10 worst case). The
		// flush gates the client's ack, so it submits in the client class.
		gw, hostName, err := s.metaPrimaryGW(oid, qos.Client)
		if err != nil {
			return err
		}
		return s.engine.flushObject(p, gw, hostName, oid, true)
	}
	return nil
}

// --- Read path (§4.5) --------------------------------------------------------

// Read returns length bytes at off (length < 0 reads to the object end).
// Cached chunks are served from the metadata object (step 4a); non-cached
// chunks are proxied through the metadata primary to the chunk pool
// (step 4b — the redirection whose cost Fig. 10/11 quantify).
func (cl *Client) Read(p *sim.Proc, oid string, off, length int64) ([]byte, error) {
	oc := cl.startOp(p, "dedup.read", &cl.opRead, 0)
	out, err := cl.read(p, oid, off, length)
	if oc.sp != nil {
		oc.sp.Bytes = int64(len(out))
	}
	cl.finishOp(p, oc, err)
	return out, err
}

func (cl *Client) read(p *sim.Proc, oid string, off, length int64) ([]byte, error) {
	s := cl.s
	s.cache.RecordAccessTenant(p.Now(), oid, cl.tenant)
	// The chunk-map lookup happens at the metadata primary as part of
	// serving the read (§4.5 read steps 2-3); the request hop is charged
	// here, the map lookup rides the data ops below.
	p.Sleep(s.cluster.Cost().NetLatency)
	raw, err := cl.gw.PeekXattr(s.meta, oid, XattrChunkMap)
	if err != nil {
		return nil, err
	}
	cm, err := UnmarshalChunkMap(raw)
	if err != nil {
		return nil, err
	}
	size := cm.Size()
	if off >= size {
		return nil, nil
	}
	if length < 0 || off+length > size {
		length = size - off
	}
	if length <= 0 {
		return nil, nil
	}
	out := make([]byte, length)
	idxs := cm.FindRange(off, length)
	proxyGW, _, err := s.metaPrimaryGW(oid, qos.Client)
	if err != nil {
		return nil, err
	}
	var sigs []*sim.Signal
	var firstErr error
	proxied := 0
	for _, i := range idxs {
		e := cm.Entries[i]
		rStart := max64(off, e.Start)
		rEnd := min64(off+length, e.End)
		if rStart >= rEnd {
			continue
		}
		if e.Cached {
			sigs = append(sigs, p.Go("read-cached", func(q *sim.Proc) {
				data, err := cl.gw.Read(q, s.meta, oid, rStart, rEnd-rStart)
				if err != nil {
					firstErr = err
					return
				}
				copy(out[rStart-off:], data)
			}))
			continue
		}
		// Redirection: metadata primary fetches from the chunk pool, then
		// forwards to the client.
		proxied += int(rEnd - rStart)
		sigs = append(sigs, p.Go("read-redirect", func(q *sim.Proc) {
			data, err := proxyGW.Read(q, s.chunkPoolFor(e.Cold), e.ChunkID, rStart-e.Start, rEnd-rStart)
			if err != nil {
				firstErr = fmt.Errorf("core: chunk %s: %w", e.ChunkID, err)
				return
			}
			copy(out[rStart-off:], data)
		}))
	}
	sim.WaitAll(p, sigs...)
	if firstErr != nil {
		return nil, firstErr
	}
	if proxied > 0 {
		cl.gw.ClientXfer(p, proxied) // final hop: metadata primary -> client
	}
	return out, nil
}

// Stat returns the object's logical size from its chunk map.
func (cl *Client) Stat(p *sim.Proc, oid string) (int64, error) {
	raw, err := cl.gw.GetXattr(p, cl.s.meta, oid, XattrChunkMap)
	if err != nil {
		return 0, err
	}
	cm, err := UnmarshalChunkMap(raw)
	if err != nil {
		return 0, err
	}
	return cm.Size(), nil
}

// Delete removes the object, de-referencing every chunk it points to.
func (cl *Client) Delete(p *sim.Proc, oid string) error {
	oc := cl.startOp(p, "dedup.delete", &cl.opDelete, 0)
	err := cl.delete(p, oid)
	cl.finishOp(p, oc, err)
	return err
}

func (cl *Client) delete(p *sim.Proc, oid string) error {
	s := cl.s
	raw, err := cl.gw.GetXattr(p, s.meta, oid, XattrChunkMap)
	if err != nil {
		return err
	}
	cm, err := UnmarshalChunkMap(raw)
	if err != nil {
		return err
	}
	for _, e := range cm.Entries {
		if e.ChunkID == "" {
			continue
		}
		ref := Ref{Pool: s.meta.ID, OID: oid, Offset: e.Start}
		fn := decRefFn(ref)
		if s.cfg.FalsePositiveRefs {
			fn = dropRefFn(ref)
		}
		if err := cl.gw.Mutate(p, s.chunkPoolFor(e.Cold), e.ChunkID, fn); err != nil && !errors.Is(err, ErrNotFound) {
			return err
		}
	}
	if err := cl.gw.Delete(p, s.meta, oid); err != nil {
		return err
	}
	return cl.gw.Mutate(p, s.meta, s.dirtyListOID(oid), func(rados.View) (*store.Txn, error) {
		return store.NewTxn().Create().OmapRm(oid), nil
	})
}

// --- Inline baseline (§3.1, Fig. 5a) -----------------------------------------

// inlineWrite deduplicates synchronously on the write path: every chunk is
// fingerprinted and sent to the chunk pool before the ack; sub-chunk writes
// force a read-modify-write of the whole chunk. Inline writes to one object
// are serialized (librbd-style client stripe locking) because the chunk-map
// read-modify-write spans several cluster operations.
func (cl *Client) inlineWrite(p *sim.Proc, oid string, off int64, data []byte) error {
	s := cl.s
	lock, ok := s.objLocks[oid]
	if !ok {
		lock = sim.NewResource("inline."+oid, 1)
		s.objLocks[oid] = lock
	}
	lock.Acquire(p)
	defer lock.Release(p)
	hostName, err := s.cluster.PrimaryHost(s.meta, oid)
	if err != nil {
		return err
	}
	raw, _ := cl.gw.GetXattr(p, s.meta, oid, XattrChunkMap)
	cm, err := UnmarshalChunkMap(raw)
	if err != nil {
		return err
	}
	for _, c := range s.chk.Split(off, data) {
		slotStart := s.chk.AlignDown(c.Offset)
		var cur Entry
		if i := cm.Find(slotStart); i >= 0 {
			cur = cm.Entries[i]
		} else {
			cur = Entry{Start: slotStart, End: slotStart}
		}
		full := c.Data
		// Partial-write problem: read-modify-write of the full chunk.
		if c.Offset > cur.Start || (c.End() < cur.End && cur.ChunkID != "") {
			var base []byte
			if cur.ChunkID != "" {
				base, err = cl.gw.Read(p, s.chunk, cur.ChunkID, 0, cur.Len())
				if err != nil {
					return err
				}
			}
			merged := make([]byte, max64(cur.End, c.End())-cur.Start)
			copy(merged, base)
			copy(merged[c.Offset-cur.Start:], c.Data)
			full = merged
		}
		if c.End() > cur.End {
			cur.End = c.End()
		}
		// Fingerprint on the write path (inline's latency cost).
		if err := s.cluster.UseHostCPU(p, hostName, s.cluster.Cost().Hash(len(full))); err != nil {
			return err
		}
		newID := FingerprintID(full)
		ref := Ref{Pool: s.meta.ID, OID: oid, Offset: cur.Start}
		if cur.ChunkID != "" && cur.ChunkID != newID {
			if err := cl.gw.Mutate(p, s.chunk, cur.ChunkID, decRefFn(ref)); err != nil {
				return err
			}
		}
		if cur.ChunkID != newID {
			if err := cl.gw.MutateWithPayload(p, s.chunk, newID, len(full), putRefFn(full, ref)); err != nil {
				return err
			}
		}
		cur.ChunkID = newID
		cur.Cached = false
		cur.Dirty = false
		cm.Upsert(cur)
	}
	return cl.gw.Mutate(p, s.meta, oid, func(rados.View) (*store.Txn, error) {
		return store.NewTxn().Create().SetXattr(XattrChunkMap, cm.Marshal()), nil
	})
}

// loadChunkMap reads the chunk map from a mutate view.
func loadChunkMap(v rados.View) (*ChunkMap, error) {
	raw, err := v.GetXattr(XattrChunkMap)
	if err != nil {
		return &ChunkMap{}, nil // absent: new object
	}
	return UnmarshalChunkMap(raw)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
