package core

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"dedupstore/internal/rados"
	"dedupstore/internal/sim"
	"dedupstore/internal/store"
)

// fabricateBinding writes a minimal metadata object whose chunk map binds
// [0,4096) to chunkOID — the state a crashed flush leaves after phase 2.
func fabricateBinding(t *testing.T, e *env, p *sim.Proc, oid, chunkOID string) {
	t.Helper()
	cm := &ChunkMap{Entries: []Entry{{Start: 0, End: 4096, ChunkID: chunkOID}}}
	gw := e.s.hostGW(anyHost(e.s))
	err := gw.Mutate(p, e.s.meta, oid, func(rados.View) (*store.Txn, error) {
		return store.NewTxn().Create().SetXattr(XattrChunkMap, cm.Marshal()), nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAuditPromotesCrashedIntent: a crash between the chunk-map binding
// (phase 2) and the commit (phase 3) leaves an intent whose reference the
// audit pass must finish committing.
func TestAuditPromotesCrashedIntent(t *testing.T) {
	e := newDedupEnv(t, func(cfg *Config) { cfg.FalsePositiveRefs = true })
	data := bytes.Repeat([]byte{3}, 4096)
	chunkOID := FingerprintID(data)
	ref := Ref{Pool: e.s.meta.ID, OID: "victim", Offset: 0}

	e.run(t, func(p *sim.Proc) {
		gw := e.s.hostGW(anyHost(e.s))
		// Phase 1 landed (chunk + intent), phase 2 landed (binding), then
		// the flush died before phase 3.
		if err := gw.Mutate(p, e.s.chunk, chunkOID, putIntentFn(data, ref, p.Now(), nil)); err != nil {
			t.Fatal(err)
		}
		fabricateBinding(t, e, p, "victim", chunkOID)

		au, err := e.s.Audit(p)
		if err != nil {
			t.Fatal(err)
		}
		if au.IntentsPromoted != 1 {
			t.Errorf("IntentsPromoted = %d, want 1", au.IntentsPromoted)
		}
		if au.LostChunks != 0 {
			t.Errorf("LostChunks = %d, want 0", au.LostChunks)
		}
		// The reference must now be committed and counted.
		keys, err := gw.OmapList(p, e.s.chunk, chunkOID, 0)
		if err != nil || len(keys) != 1 || keys[0] != ref.Key() {
			t.Fatalf("post-audit omap = %v, %v (want just the committed ref)", keys, err)
		}
		rc, err := gw.GetXattr(p, e.s.chunk, chunkOID, XattrRefCount)
		if err != nil || mustCount(t, rc) != 1 {
			t.Fatalf("post-audit count = %d, %v (want 1)", mustCount(t, rc), err)
		}
		// A second pass finds nothing left to do.
		if au, err := e.s.Audit(p); err != nil || !au.Clean() {
			t.Errorf("second audit not clean: %+v, %v", au, err)
		}
	})
	e.checkIntegrity(t)
}

// TestAuditRepairsMissingRef: a binding whose chunk lost both the reference
// and the intent is repaired by re-adding the committed reference — the
// binding is authoritative.
func TestAuditRepairsMissingRef(t *testing.T) {
	e := newDedupEnv(t, func(cfg *Config) { cfg.FalsePositiveRefs = true })
	data := bytes.Repeat([]byte{4}, 4096)
	chunkOID := FingerprintID(data)

	e.run(t, func(p *sim.Proc) {
		gw := e.s.hostGW(anyHost(e.s))
		// Chunk exists with no trace of the reference the binding implies.
		err := gw.Mutate(p, e.s.chunk, chunkOID, func(rados.View) (*store.Txn, error) {
			return store.NewTxn().WriteFull(data).SetXattr(XattrRefCount, encodeRC(0, 1)), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		fabricateBinding(t, e, p, "orphan", chunkOID)

		au, err := e.s.Audit(p)
		if err != nil {
			t.Fatal(err)
		}
		if au.RefsRepaired != 1 {
			t.Errorf("RefsRepaired = %d, want 1", au.RefsRepaired)
		}
		// GC must now agree the chunk is live.
		st, err := e.s.GC(p)
		if err != nil || st.ChunksDeleted != 0 || st.StaleRefs != 0 {
			t.Errorf("GC after repair: deleted=%d stale=%d, %v", st.ChunksDeleted, st.StaleRefs, err)
		}
	})
	e.checkIntegrity(t)
}

// TestAuditReportsLostChunk: a binding pointing at a chunk that does not
// exist, with no cached copy, is unrecoverable — the audit reports it and
// repairs nothing.
func TestAuditReportsLostChunk(t *testing.T) {
	e := newDedupEnv(t, func(cfg *Config) { cfg.FalsePositiveRefs = true })
	e.run(t, func(p *sim.Proc) {
		fabricateBinding(t, e, p, "lost", "chk.deadbeef")
		au, err := e.s.Audit(p)
		if err != nil {
			t.Fatal(err)
		}
		if au.LostChunks != 1 {
			t.Errorf("LostChunks = %d, want 1", au.LostChunks)
		}
		if au.IntentsPromoted != 0 || au.RefsRepaired != 0 {
			t.Errorf("unexpected repairs: %+v", au)
		}
	})
}

// TestGCAbortsExpiredIntent: an intent whose lease ran out with no binding
// (crash after phase 1) is aborted and the now-unreferenced chunk deleted.
func TestGCAbortsExpiredIntent(t *testing.T) {
	e := newDedupEnv(t, func(cfg *Config) { cfg.FalsePositiveRefs = true })
	data := bytes.Repeat([]byte{5}, 4096)
	chunkOID := FingerprintID(data)
	ref := Ref{Pool: e.s.meta.ID, OID: "gone", Offset: 0}

	e.run(t, func(p *sim.Proc) {
		gw := e.s.hostGW(anyHost(e.s))
		if err := gw.Mutate(p, e.s.chunk, chunkOID, putIntentFn(data, ref, p.Now()+sim.Time(time.Second), nil)); err != nil {
			t.Fatal(err)
		}
		// Before the lease expires the chunk is pinned.
		st, err := e.s.GC(p)
		if err != nil || st.ChunksDeleted != 0 || st.IntentsAborted != 0 {
			t.Fatalf("GC inside lease: deleted=%d aborted=%d, %v", st.ChunksDeleted, st.IntentsAborted, err)
		}
		p.Sleep(2 * time.Second)
		st, err = e.s.GC(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.IntentsAborted != 1 || st.ChunksDeleted != 1 {
			t.Errorf("GC after lease: aborted=%d deleted=%d, want 1/1", st.IntentsAborted, st.ChunksDeleted)
		}
		if st.BytesReclaimed != 4096 {
			t.Errorf("BytesReclaimed = %d, want 4096", st.BytesReclaimed)
		}
		ok, err := gw.Exists(p, e.s.chunk, chunkOID)
		if err != nil || ok {
			t.Fatalf("chunk still exists after abort (ok=%v err=%v)", ok, err)
		}
	})
}

// TestGCPromotesExpiredIntentWithBinding: an expired intent whose binding
// does exist (commit lost in a crash) is promoted by GC, not aborted.
func TestGCPromotesExpiredIntentWithBinding(t *testing.T) {
	e := newDedupEnv(t, func(cfg *Config) { cfg.FalsePositiveRefs = true })
	data := bytes.Repeat([]byte{6}, 4096)
	chunkOID := FingerprintID(data)
	ref := Ref{Pool: e.s.meta.ID, OID: "bound", Offset: 0}

	e.run(t, func(p *sim.Proc) {
		gw := e.s.hostGW(anyHost(e.s))
		if err := gw.Mutate(p, e.s.chunk, chunkOID, putIntentFn(data, ref, p.Now(), nil)); err != nil {
			t.Fatal(err)
		}
		fabricateBinding(t, e, p, "bound", chunkOID)
		p.Sleep(time.Second)
		st, err := e.s.GC(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.IntentsPromoted != 1 || st.ChunksDeleted != 0 {
			t.Errorf("promoted=%d deleted=%d, want 1/0", st.IntentsPromoted, st.ChunksDeleted)
		}
		rc, err := gw.GetXattr(p, e.s.chunk, chunkOID, XattrRefCount)
		if err != nil || mustCount(t, rc) != 1 {
			t.Fatalf("count = %d, %v (want 1)", mustCount(t, rc), err)
		}
	})
	e.checkIntegrity(t)
}

// TestScrubReportsCorruptRefcount: a short/garbled dedup.rc xattr used to
// silently decode as count 0; it must surface as a scrub issue, and GC must
// rebuild the count from the reference table.
func TestScrubReportsCorruptRefcount(t *testing.T) {
	e := newDedupEnv(t, func(cfg *Config) { cfg.FalsePositiveRefs = true })
	data := bytes.Repeat([]byte{7}, 4096)
	writeTwo(t, e, data)
	e.drain(t)
	chunkOID := FingerprintID(data)

	e.run(t, func(p *sim.Proc) {
		gw := e.s.hostGW(anyHost(e.s))
		err := gw.Mutate(p, e.s.chunk, chunkOID, func(rados.View) (*store.Txn, error) {
			return store.NewTxn().SetXattr(XattrRefCount, []byte{1, 2, 3}), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := e.s.Scrub(p)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, is := range rep.Issues {
			if is.OID == chunkOID && strings.Contains(is.Detail, "corrupt refcount") {
				found = true
			}
		}
		if !found {
			t.Fatalf("scrub issues %v missing corrupt-refcount finding", rep.Issues)
		}
		// GC rebuilds the count from the omap...
		st, err := e.s.GC(p)
		if err != nil || st.CountsFixed != 1 {
			t.Fatalf("GC CountsFixed = %d, %v (want 1)", st.CountsFixed, err)
		}
		// ...after which scrub is clean again.
		rep, err = e.s.Scrub(p)
		if err != nil || !rep.Clean() {
			t.Fatalf("scrub after repair not clean: %v, %v", rep.Issues, err)
		}
	})
	e.checkIntegrity(t)
}
