package core

import (
	"dedupstore/internal/chunker"
	"dedupstore/internal/rados"
	"dedupstore/internal/store"
)

// Local-vs-global deduplication accounting (§2.2, Fig. 3, Table 1). Local
// deduplication runs independently per OSD (a per-node block-dedup solution
// such as VDO/Permabit): it can only collapse duplicates that happen to land
// on the same device, so its ratio collapses as the cluster grows. Global
// deduplication deduplicates across the whole cluster. These functions
// analyze an undeduplicated pool's contents under both schemes.

// RatioReport is the outcome of a dedup-ratio analysis.
type RatioReport struct {
	TotalBytes  int64
	UniqueBytes int64
}

// Ratio returns the fraction of bytes removed by deduplication (the paper's
// "deduplication ratio"), in percent.
func (r RatioReport) Ratio() float64 {
	if r.TotalBytes == 0 {
		return 0
	}
	return 100 * float64(r.TotalBytes-r.UniqueBytes) / float64(r.TotalBytes)
}

// GlobalDedupAnalysis computes the cluster-wide dedup ratio of a replicated
// pool's logical contents (each object counted once, replication excluded,
// as the paper's Table 2 does).
func GlobalDedupAnalysis(c *rados.Cluster, pool *rados.Pool, chunkSize int64) RatioReport {
	chk := chunker.NewFixed(chunkSize)
	seen := make(map[string]bool)
	var rep RatioReport
	for _, oid := range c.ListObjects(pool) {
		data, ok := readFromAnyHolder(c, pool, oid)
		if !ok {
			continue
		}
		for _, ch := range chk.Split(0, data) {
			rep.TotalBytes += int64(len(ch.Data))
			id := FingerprintID(ch.Data)
			if !seen[id] {
				seen[id] = true
				rep.UniqueBytes += int64(len(ch.Data))
			}
		}
	}
	return rep
}

// LocalDedupAnalysis computes the aggregate ratio achievable when each OSD
// deduplicates only its own contents. It scans every OSD's physical objects
// for the pool: replicas of one object live on different OSDs (by CRUSH
// failure-domain separation), so they are never co-located duplicates.
func LocalDedupAnalysis(c *rados.Cluster, pool *rados.Pool, chunkSize int64) RatioReport {
	chk := chunker.NewFixed(chunkSize)
	var rep RatioReport
	for _, id := range c.OSDs() {
		st, ok := c.OSDStore(id)
		if !ok {
			continue
		}
		seen := make(map[string]bool) // per-OSD fingerprint scope
		for _, key := range st.Keys() {
			if key.Pool != pool.ID {
				continue
			}
			data, err := st.Read(key, 0, -1)
			if err != nil {
				continue
			}
			for _, ch := range chk.Split(0, data) {
				rep.TotalBytes += int64(len(ch.Data))
				fid := FingerprintID(ch.Data)
				if !seen[fid] {
					seen[fid] = true
					rep.UniqueBytes += int64(len(ch.Data))
				}
			}
		}
	}
	return rep
}

func readFromAnyHolder(c *rados.Cluster, pool *rados.Pool, oid string) ([]byte, bool) {
	for _, id := range c.OSDs() {
		st, ok := c.OSDStore(id)
		if !ok {
			continue
		}
		data, err := st.Read(storeKey(pool, oid), 0, -1)
		if err == nil {
			return data, true
		}
	}
	return nil, false
}

func storeKey(pool *rados.Pool, oid string) store.Key {
	return store.Key{Pool: pool.ID, OID: oid}
}
