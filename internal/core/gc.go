package core

import (
	"errors"
	"sort"

	"dedupstore/internal/qos"
	"dedupstore/internal/rados"
	"dedupstore/internal/sim"
	"dedupstore/internal/store"
)

// Garbage collection for the false-positive reference-count mode (§4.6):
// when decrements are lock-free the count may read high, so chunks are never
// deleted inline; the collector periodically verifies each chunk's back
// references against the owning chunk maps and deletes chunks with none
// left. This is the "additional garbage collection process" the paper notes
// the technique requires.
//
// The pass also reconciles the two-phase reference protocol (refcount.go):
// expired intents are promoted to committed references when the source chunk
// map still binds the chunk, aborted otherwise; the committed count is
// rewritten to match the omap whenever they drift apart.
//
// Every verification happens outside the chunk's PG lock (liveness checks
// read a different pool), so the sweep re-reads the refcount generation
// under the lock and skips the chunk if any reference mutation raced the
// verification — replaying a stale decision could otherwise remove a key a
// racing incref just re-added.

// GCStats reports one collection pass.
type GCStats struct {
	ChunksScanned   int64
	RefsChecked     int64
	StaleRefs       int64
	ChunksDeleted   int64
	BytesReclaimed  int64
	IntentsPromoted int64 // expired intents with a live binding → committed
	IntentsAborted  int64 // expired intents with no binding → removed
	CountsFixed     int64 // refcount xattrs that disagreed with the omap
	RacedSkips      int64 // chunks skipped: a ref mutation raced verification
	BadRefKeys      int64 // unparseable ref/intent keys removed
}

// chunkSnapshot is what one under-lock read of a chunk object observed.
type chunkSnapshot struct {
	exists  bool
	count   uint64
	gen     uint64
	rcOK    bool // refcount xattr present and well-formed
	refs    []string
	intents map[string]sim.Time // intent key → lease expiry (0 if garbled)
}

// snapshotChunk reads a chunk's reference state atomically under its PG
// lock via a nil-txn mutate.
func snapshotChunk(p *sim.Proc, gw *rados.Gateway, pool *rados.Pool, oid string, snap *chunkSnapshot) error {
	return retryUnavailable(p, func() error {
		*snap = chunkSnapshot{}
		return gw.Mutate(p, pool, oid, func(v rados.View) (*store.Txn, error) {
			if !v.Exists() {
				return nil, nil
			}
			snap.exists = true
			if raw, err := v.GetXattr(XattrRefCount); err == nil {
				snap.count, snap.gen, snap.rcOK = decodeRC(raw)
			}
			keys, err := v.OmapList(0)
			if err != nil {
				return nil, err
			}
			snap.intents = make(map[string]sim.Time)
			for _, k := range keys {
				switch {
				case isRefKey(k):
					snap.refs = append(snap.refs, k)
				case isIntentKey(k):
					var exp sim.Time
					if raw, err := v.OmapGet(k); err == nil {
						exp, _ = decodeExpiry(raw)
					}
					snap.intents[k] = exp
				}
			}
			return nil, nil
		})
	})
}

// genUnchanged reports whether a sweep-time view of the refcount xattr
// matches the snapshot — i.e. no reference mutation landed in between (every
// mutation bumps the generation, and corruption can only heal into a valid
// xattr through such a mutation).
func (snap *chunkSnapshot) genUnchanged(v rados.View) bool {
	raw, err := v.GetXattr(XattrRefCount)
	if err != nil {
		return !snap.rcOK
	}
	_, gen, ok := decodeRC(raw)
	if !ok {
		return !snap.rcOK
	}
	return snap.rcOK && gen == snap.gen
}

// gcDecision is the plan computed outside the PG lock for one chunk.
type gcDecision struct {
	staleRefs  []string // committed ref keys whose binding is gone
	badKeys    []string // unparseable ref/intent keys (no flush produces them)
	promote    []string // expired intent keys whose binding is live
	abort      []string // expired intent keys whose binding is gone
	liveRefs   int
	keepintent int // intents left alone (unexpired, or source unreachable)
}

func (d *gcDecision) empty() bool {
	return len(d.staleRefs) == 0 && len(d.badKeys) == 0 &&
		len(d.promote) == 0 && len(d.abort) == 0
}

// sortedKeys returns the map's keys in sorted order — intent handling must
// not depend on Go's randomized map iteration (determinism gate).
func sortedKeys(m map[string]sim.Time) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// GC runs one mark-and-sweep pass over the chunk pool. It is safe to run
// concurrently with foreground I/O: the sweep compares the refcount
// generation under the chunk's PG lock and skips the chunk when a racing
// reference mutation invalidated the verification.
func (s *Store) GC(p *sim.Proc) (GCStats, error) {
	var stats GCStats
	reg := s.cluster.Metrics()
	defer func() {
		reg.Counter("dedup_gc_passes_total").Inc()
		reg.Counter("dedup_gc_chunks_scanned_total").Add(stats.ChunksScanned)
		reg.Counter("dedup_gc_refs_checked_total").Add(stats.RefsChecked)
		reg.Counter("dedup_gc_stale_refs_total").Add(stats.StaleRefs)
		reg.Counter("dedup_gc_chunks_deleted_total").Add(stats.ChunksDeleted)
		reg.Counter("dedup_gc_bytes_reclaimed_total").Add(stats.BytesReclaimed)
		reg.Counter("dedup_gc_intents_promoted_total").Add(stats.IntentsPromoted)
		reg.Counter("dedup_gc_intents_aborted_total").Add(stats.IntentsAborted)
		reg.Counter("dedup_gc_counts_fixed_total").Add(stats.CountsFixed)
		reg.Counter("dedup_gc_raced_skips_total").Add(stats.RacedSkips)
	}()
	sp := s.cluster.Trace().Start(p, "dedup.gc").SetClass(qos.GC.String())
	defer sp.Finish(p)
	gw := s.hostGWClass(anyHost(s), qos.GC)
	for _, cpool := range s.chunkPools() {
		if err := s.gcPool(p, gw, cpool, &stats); err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// gcPool runs the mark-and-sweep over one chunk pool. With tiering on, the
// same fingerprint may exist in both the warm and the cold pool while
// objects migrate; liveness is therefore judged per (chunk, pool) — a
// binding keeps a chunk alive only in the pool its Cold bit selects.
func (s *Store) gcPool(p *sim.Proc, gw *rados.Gateway, cpool *rados.Pool, stats *GCStats) error {
	for _, chunkOID := range s.cluster.ListObjects(cpool) {
		stats.ChunksScanned++

		// Mark: snapshot the reference state under the PG lock, then verify
		// each reference/intent against the (other-pool) chunk maps outside
		// the lock.
		var snap chunkSnapshot
		if err := snapshotChunk(p, gw, cpool, chunkOID, &snap); err != nil {
			if errors.Is(err, ErrNotFound) {
				continue
			}
			return err
		}
		if !snap.exists {
			continue
		}
		var dec gcDecision
		for _, key := range snap.refs {
			ref, ok := parseRefKey(key)
			if !ok {
				dec.badKeys = append(dec.badKeys, key)
				continue
			}
			stats.RefsChecked++
			if s.refIsLive(p, gw, ref, cpool, chunkOID) {
				dec.liveRefs++
			} else {
				dec.staleRefs = append(dec.staleRefs, key)
			}
		}
		for _, key := range sortedKeys(snap.intents) {
			ref, ok := parseIntentKey(key)
			if !ok {
				dec.badKeys = append(dec.badKeys, key)
				continue
			}
			if snap.intents[key] > p.Now() {
				dec.keepintent++ // lease still running: the flush owns it
				continue
			}
			live, reachable := s.refLiveness(p, gw, ref, cpool, chunkOID)
			switch {
			case !reachable:
				dec.keepintent++ // verify next pass, never reconcile blind
			case live:
				dec.promote = append(dec.promote, key)
			default:
				dec.abort = append(dec.abort, key)
			}
		}
		// A corrupt or drifted refcount xattr is repaired even when every
		// reference is live — count ↔ omap reconciliation is part of the
		// pass, not just a side effect of key removal.
		fixCount := !snap.rcOK || snap.count != uint64(len(snap.refs))
		canDelete := dec.liveRefs == 0 && dec.keepintent == 0 && len(dec.promote) == 0
		if dec.empty() && !fixCount && !canDelete {
			continue
		}

		if s.gcHookBeforeSweep != nil {
			s.gcHookBeforeSweep(p, chunkOID)
		}

		// Sweep: replay the decision under the PG lock, but only if no
		// reference mutation raced the verification (generation compare).
		raced := false
		deleted := false
		countFixed := false
		var reclaimed int64
		err := retryUnavailable(p, func() error {
			raced, deleted, countFixed, reclaimed = false, false, false, 0
			return gw.Mutate(p, cpool, chunkOID, func(v rados.View) (*store.Txn, error) {
				if !v.Exists() {
					return nil, nil
				}
				if !snap.genUnchanged(v) {
					raced = true
					return nil, nil
				}
				drop := make(map[string]bool, len(dec.staleRefs)+len(dec.badKeys)+len(dec.abort))
				for _, k := range dec.staleRefs {
					drop[k] = true
				}
				for _, k := range dec.badKeys {
					drop[k] = true
				}
				for _, k := range dec.abort {
					drop[k] = true
				}
				promote := make(map[string]bool, len(dec.promote))
				for _, k := range dec.promote {
					promote[k] = true
				}
				txn := store.NewTxn()
				keys, err := v.OmapList(0)
				if err != nil {
					return nil, err
				}
				remainRefs, remainIntents := 0, 0
				for _, k := range keys {
					switch {
					case drop[k]:
						txn.OmapRm(k)
					case promote[k]:
						txn.OmapRm(k)
						if ref, ok := parseIntentKey(k); ok {
							txn.OmapSet(ref.Key(), nil)
							remainRefs++
						}
					case isRefKey(k):
						remainRefs++
					case isIntentKey(k):
						remainIntents++
					}
				}
				if remainRefs == 0 && remainIntents == 0 {
					deleted = true
					reclaimed = v.Size()
					return store.NewTxn().Delete(), nil
				}
				// Reconcile count ← omap: the committed count must equal the
				// committed reference keys that survive the sweep.
				if !snap.rcOK || snap.count != uint64(remainRefs) {
					countFixed = true
				}
				txn.SetXattr(XattrRefCount, encodeRC(uint64(remainRefs), snap.gen+1))
				return txn, nil
			})
		})
		if err != nil && !errors.Is(err, ErrNotFound) {
			return err
		}
		if raced {
			stats.RacedSkips++
			continue
		}
		stats.StaleRefs += int64(len(dec.staleRefs))
		stats.BadRefKeys += int64(len(dec.badKeys))
		stats.IntentsPromoted += int64(len(dec.promote))
		stats.IntentsAborted += int64(len(dec.abort))
		if countFixed && !deleted {
			stats.CountsFixed++
		}
		if deleted {
			stats.ChunksDeleted++
			stats.BytesReclaimed += reclaimed
		}
	}
	return nil
}

// refIsLive verifies a back reference: the source metadata object's chunk
// map must still bind that offset to this chunk in this pool. Unreachable
// sources count as live (conservative).
func (s *Store) refIsLive(p *sim.Proc, gw *rados.Gateway, ref Ref, cpool *rados.Pool, chunkOID string) bool {
	live, reachable := s.refLiveness(p, gw, ref, cpool, chunkOID)
	return live || !reachable
}

// refLiveness checks whether the source chunk map binds ref.Offset to this
// chunk in this pool. reachable=false means the source PG could not be
// consulted (e.g. a crash window longer than the retry budget): the caller
// must keep the reference — treating "unreachable" as "gone" would delete a
// chunk live data points at.
func (s *Store) refLiveness(p *sim.Proc, gw *rados.Gateway, ref Ref, cpool *rados.Pool, chunkOID string) (live, reachable bool) {
	if ref.Pool != s.meta.ID {
		return false, true
	}
	var raw []byte
	err := retryUnavailable(p, func() error {
		var e error
		raw, e = gw.GetXattr(p, s.meta, ref.OID, XattrChunkMap)
		return e
	})
	if rados.IsUnavailable(err) {
		return false, false
	}
	if err != nil {
		return false, true // source object gone
	}
	cm, err := UnmarshalChunkMap(raw)
	if err != nil {
		return false, true
	}
	i := cm.Find(ref.Offset)
	if i < 0 {
		return false, true
	}
	e := cm.Entries[i]
	// A dirty slot may still be mid-flush toward this chunk — in either
	// pool, since the flush's pool choice depends on the object's current
	// temperature; keep the ref conservatively (false positives delay
	// reclamation, never corrupt). A clean binding keeps the chunk alive
	// only in the pool its Cold bit selects: during a migration the same
	// fingerprint exists in both pools, and the copy the binding moved away
	// from must be collectable.
	if e.Dirty {
		return true, true
	}
	return e.ChunkID == chunkOID && s.chunkPoolFor(e.Cold) == cpool, true
}
