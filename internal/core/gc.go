package core

import (
	"errors"
	"strconv"
	"strings"

	"dedupstore/internal/qos"
	"dedupstore/internal/rados"
	"dedupstore/internal/sim"
	"dedupstore/internal/store"
)

// Garbage collection for the false-positive reference-count mode (§4.6):
// when decrements are lock-free the count may read high, so chunks are never
// deleted inline; the collector periodically verifies each chunk's back
// references against the owning chunk maps and deletes chunks with none
// left. This is the "additional garbage collection process" the paper notes
// the technique requires.

// GCStats reports one collection pass.
type GCStats struct {
	ChunksScanned  int64
	RefsChecked    int64
	StaleRefs      int64
	ChunksDeleted  int64
	BytesReclaimed int64
}

// parseRefKey inverts Ref.Key.
func parseRefKey(key string) (Ref, bool) {
	if !strings.HasPrefix(key, refKeyPrefix) {
		return Ref{}, false
	}
	body := strings.TrimRight(key[len(refKeyPrefix):], ".")
	parts := strings.SplitN(body, "|", 3)
	if len(parts) != 3 {
		return Ref{}, false
	}
	pool, err1 := strconv.ParseUint(parts[0], 10, 64)
	off, err2 := strconv.ParseInt(parts[2], 10, 64)
	if err1 != nil || err2 != nil {
		return Ref{}, false
	}
	return Ref{Pool: pool, OID: parts[1], Offset: off}, true
}

// GC runs one mark-and-sweep pass over the chunk pool. It is safe to run
// concurrently with foreground I/O: reference verification re-checks under
// the chunk's PG lock before deleting.
func (s *Store) GC(p *sim.Proc) (GCStats, error) {
	var stats GCStats
	reg := s.cluster.Metrics()
	defer func() {
		reg.Counter("dedup_gc_passes_total").Inc()
		reg.Counter("dedup_gc_chunks_scanned_total").Add(stats.ChunksScanned)
		reg.Counter("dedup_gc_refs_checked_total").Add(stats.RefsChecked)
		reg.Counter("dedup_gc_stale_refs_total").Add(stats.StaleRefs)
		reg.Counter("dedup_gc_chunks_deleted_total").Add(stats.ChunksDeleted)
		reg.Counter("dedup_gc_bytes_reclaimed_total").Add(stats.BytesReclaimed)
	}()
	sp := s.cluster.Trace().Start(p, "dedup.gc").SetClass(qos.GC.String())
	defer sp.Finish(p)
	gw := s.hostGWClass(anyHost(s), qos.GC)
	for _, chunkOID := range s.cluster.ListObjects(s.chunk) {
		stats.ChunksScanned++
		var refs []string
		err := retryUnavailable(p, func() error {
			var e error
			refs, e = gw.OmapList(p, s.chunk, chunkOID, 0)
			return e
		})
		if err != nil {
			if errors.Is(err, ErrNotFound) {
				continue
			}
			return stats, err
		}
		live := 0
		var stale []string
		for _, key := range refs {
			ref, ok := parseRefKey(key)
			if !ok {
				continue
			}
			stats.RefsChecked++
			if s.refIsLive(p, gw, ref, chunkOID) {
				live++
			} else {
				stale = append(stale, key)
			}
		}
		if len(stale) == 0 && live > 0 {
			continue
		}
		stats.StaleRefs += int64(len(stale))
		// Remove stale refs and delete the chunk if none remain — verified
		// again under the PG lock so a racing incref wins.
		size, _ := gw.Stat(p, s.chunk, chunkOID)
		deleted := false
		err = retryUnavailable(p, func() error {
			deleted = false
			return gw.Mutate(p, s.chunk, chunkOID, func(v rados.View) (*store.Txn, error) {
				txn := store.NewTxn()
				keys, err := v.OmapList(0)
				if err != nil {
					return nil, err
				}
				remaining := 0
				staleSet := make(map[string]bool, len(stale))
				for _, k := range stale {
					staleSet[k] = true
				}
				for _, k := range keys {
					if staleSet[k] {
						txn.OmapRm(k)
					} else {
						remaining++
					}
				}
				if remaining == 0 {
					deleted = true
					return store.NewTxn().Delete(), nil
				}
				txn.SetXattr(XattrRefCount, encodeCount(uint64(remaining)))
				return txn, nil
			})
		})
		if err != nil && !errors.Is(err, ErrNotFound) {
			return stats, err
		}
		if deleted {
			stats.ChunksDeleted++
			stats.BytesReclaimed += size
		}
	}
	return stats, nil
}

// refIsLive verifies a back reference: the source metadata object's chunk
// map must still bind that offset to this chunk.
func (s *Store) refIsLive(p *sim.Proc, gw *rados.Gateway, ref Ref, chunkOID string) bool {
	if ref.Pool != s.meta.ID {
		return false
	}
	var raw []byte
	err := retryUnavailable(p, func() error {
		var e error
		raw, e = gw.GetXattr(p, s.meta, ref.OID, XattrChunkMap)
		return e
	})
	if rados.IsUnavailable(err) {
		// Could not reach the source object's PG even after backoff (e.g. a
		// crash window longer than the retry budget). Keep the ref: treating
		// "unreachable" as "gone" would delete a chunk live data points at.
		return true
	}
	if err != nil {
		return false // source object gone
	}
	cm, err := UnmarshalChunkMap(raw)
	if err != nil {
		return false
	}
	i := cm.Find(ref.Offset)
	if i < 0 {
		return false
	}
	e := cm.Entries[i]
	// A dirty slot may still be mid-flush toward this chunk; keep the ref
	// conservatively (false positives delay reclamation, never corrupt).
	return e.ChunkID == chunkOID || e.Dirty
}
