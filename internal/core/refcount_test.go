package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"dedupstore/internal/rados"
	"dedupstore/internal/sim"
	"dedupstore/internal/store"
)

// TestRefKeyRoundTrip: every Ref must survive Key()/parseRefKey and
// IntentKey()/parseIntentKey unchanged — including the OIDs the old
// "pool|oid|offset" format mis-parsed (embedded '|', trailing '.', digits,
// colons), which left their references invisible to GC forever.
func TestRefKeyRoundTrip(t *testing.T) {
	cases := []Ref{
		{Pool: 0, OID: "", Offset: 0},
		{Pool: 1, OID: "o", Offset: 4096},
		{Pool: 7, OID: "vol|snap", Offset: 32768},                    // '|' inside the OID
		{Pool: 7, OID: "trailing...", Offset: 0},                     // eaten by TrimRight before
		{Pool: 2, OID: "a|b|c|", Offset: 128},                        // multiple separators
		{Pool: 3, OID: "123", Offset: 5},                             // all-digit OID
		{Pool: 4, OID: "x:y:z", Offset: 9},                           // colons (the new length delimiter)
		{Pool: 5, OID: "12:34|56.", Offset: 77},                      // everything at once
		{Pool: 6, OID: "chaos-o001", Offset: 1 << 40},                // large offset
		{Pool: 18446744073709551615, OID: "max", Offset: 0},          // max pool id
		{Pool: 9, OID: string([]byte{0, 1, 2, '|', '.'}), Offset: 3}, // binary junk
	}
	for _, want := range cases {
		if len(want.Key()) < RefEntryOverhead {
			t.Errorf("ref key %d bytes, want >= %d (paper's per-ref footprint)", len(want.Key()), RefEntryOverhead)
		}
		got, ok := parseRefKey(want.Key())
		if !ok || got != want {
			t.Errorf("ref key round trip: %+v -> %q -> %+v (ok=%v)", want, want.Key(), got, ok)
		}
		got, ok = parseIntentKey(want.IntentKey())
		if !ok || got != want {
			t.Errorf("intent key round trip: %+v -> %q -> %+v (ok=%v)", want, want.IntentKey(), got, ok)
		}
		if isIntentKey(want.Key()) || isRefKey(want.IntentKey()) {
			t.Errorf("key kinds confused for %+v", want)
		}
	}
	// Property check over random OIDs drawn from a hostile alphabet.
	rng := rand.New(rand.NewSource(42))
	alphabet := []byte("ab|.:0123456789-")
	for i := 0; i < 2000; i++ {
		oid := make([]byte, rng.Intn(40))
		for j := range oid {
			oid[j] = alphabet[rng.Intn(len(alphabet))]
		}
		want := Ref{Pool: rng.Uint64() % 1000, OID: string(oid), Offset: rng.Int63n(1 << 30)}
		got, ok := parseRefKey(want.Key())
		if !ok || got != want {
			t.Fatalf("random round trip failed: %+v -> %q -> %+v (ok=%v)", want, want.Key(), got, ok)
		}
	}
	// Keys the store never wrote must not parse.
	for _, k := range []string{"", "ref.", "ref.x|1:y|2", "ref.1|9:short|2", "ref.1|-1:a|2", "ref.1|1:a|", "ref.1|1:a|2x", "bogus"} {
		if ref, ok := parseRefKey(k); ok {
			t.Errorf("parseRefKey(%q) = %+v, want reject", k, ref)
		}
	}
}

// FuzzRefKeyRoundTrip drives parseRefKey with arbitrary OIDs.
func FuzzRefKeyRoundTrip(f *testing.F) {
	f.Add(uint64(1), "plain", int64(0))
	f.Add(uint64(7), "with|pipe", int64(4096))
	f.Add(uint64(0), "dots...", int64(1<<40))
	f.Fuzz(func(t *testing.T, pool uint64, oid string, offset int64) {
		want := Ref{Pool: pool, OID: oid, Offset: offset}
		got, ok := parseRefKey(want.Key())
		if !ok || got != want {
			t.Fatalf("round trip: %+v -> %q -> %+v (ok=%v)", want, want.Key(), got, ok)
		}
	})
}

// TestDecodeRC: only a well-formed 16-byte xattr decodes; short, long and
// legacy 8-byte values are rejected (and surface as scrub issues / readRC
// errors instead of silently reading as count 0).
func TestDecodeRC(t *testing.T) {
	count, gen, ok := decodeRC(encodeRC(42, 7))
	if !ok || count != 42 || gen != 7 {
		t.Fatalf("decodeRC(encodeRC(42,7)) = %d,%d,%v", count, gen, ok)
	}
	for _, raw := range [][]byte{nil, {}, {1, 2, 3}, make([]byte, 8), make([]byte, 15), make([]byte, 17)} {
		if _, _, ok := decodeRC(raw); ok {
			t.Errorf("decodeRC accepted %d bytes", len(raw))
		}
	}
}

// TestGCIncrefRaceSkipsSweep: the GC verifies references outside the chunk's
// PG lock, so a reference taken between verification and sweep must
// invalidate the sweep (generation compare) — the old code replayed the
// stale decision and could delete a chunk a racing incref had just made
// live again.
func TestGCIncrefRaceSkipsSweep(t *testing.T) {
	e := newDedupEnv(t, func(cfg *Config) { cfg.FalsePositiveRefs = true })
	data := bytes.Repeat([]byte{9}, 4096)
	chunkOID := FingerprintID(data)

	// Fabricate the aftermath of a crashed flush: the chunk exists with no
	// references at all (an aborted intent), so GC's mark phase decides to
	// delete it.
	e.run(t, func(p *sim.Proc) {
		gw := e.s.hostGW(anyHost(e.s))
		err := gw.Mutate(p, e.s.chunk, chunkOID, func(v rados.View) (*store.Txn, error) {
			return store.NewTxn().WriteFull(data).SetXattr(XattrRefCount, encodeRC(0, 3)), nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})

	// Between mark and sweep, a racing flush references the chunk: intent,
	// binding, commit — exactly what a concurrent write of the same content
	// would do.
	ref := Ref{Pool: e.s.meta.ID, OID: "racer", Offset: 0}
	raced := 0
	e.s.gcHookBeforeSweep = func(p *sim.Proc, oid string) {
		if oid != chunkOID {
			return
		}
		raced++
		gw := e.s.hostGW(anyHost(e.s))
		if err := gw.Mutate(p, e.s.chunk, chunkOID, putIntentFn(data, ref, p.Now()+sim.Time(e.s.cfg.IntentLease), nil)); err != nil {
			t.Errorf("racing intent: %v", err)
		}
		cm := &ChunkMap{Entries: []Entry{{Start: 0, End: 4096, ChunkID: chunkOID}}}
		err := gw.Mutate(p, e.s.meta, "racer", func(rados.View) (*store.Txn, error) {
			return store.NewTxn().Create().SetXattr(XattrChunkMap, cm.Marshal()), nil
		})
		if err != nil {
			t.Errorf("racing bind: %v", err)
		}
		if err := gw.Mutate(p, e.s.chunk, chunkOID, commitIntentFn(ref)); err != nil {
			t.Errorf("racing commit: %v", err)
		}
	}

	e.run(t, func(p *sim.Proc) {
		stats, err := e.s.GC(p)
		if err != nil {
			t.Fatal(err)
		}
		if raced != 1 {
			t.Fatalf("hook fired %d times, want 1", raced)
		}
		if stats.RacedSkips != 1 {
			t.Errorf("RacedSkips = %d, want 1", stats.RacedSkips)
		}
		if stats.ChunksDeleted != 0 {
			t.Errorf("ChunksDeleted = %d, want 0 (racing incref must win)", stats.ChunksDeleted)
		}
		ok, err := e.s.hostGW(anyHost(e.s)).Exists(p, e.s.chunk, chunkOID)
		if err != nil || !ok {
			t.Fatalf("chunk deleted despite racing incref (ok=%v err=%v)", ok, err)
		}
	})

	// A later pass with no race sees the live binding and keeps the chunk.
	e.s.gcHookBeforeSweep = nil
	e.run(t, func(p *sim.Proc) {
		stats, err := e.s.GC(p)
		if err != nil {
			t.Fatal(err)
		}
		if stats.ChunksDeleted != 0 || stats.StaleRefs != 0 {
			t.Errorf("second pass deleted=%d stale=%d, want 0/0", stats.ChunksDeleted, stats.StaleRefs)
		}
	})
	e.checkIntegrity(t)
}

// TestRefcountModes: the same seeded workload must keep refcounts exact in
// both decrement disciplines — strict (inline delete at zero) and
// false-positive (§4.6, GC reclaims) — and end with identical surviving
// data.
func TestRefcountModes(t *testing.T) {
	for _, tc := range []struct {
		name   string
		fpRefs bool
	}{
		{name: "strict", fpRefs: false},
		{name: "false-positive", fpRefs: true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e := newDedupEnv(t, func(cfg *Config) { cfg.FalsePositiveRefs = tc.fpRefs })
			rng := rand.New(rand.NewSource(99))
			shared := bytes.Repeat([]byte{7}, 4096)
			const objects = 8

			// Every object: one shared chunk + one unique chunk.
			e.run(t, func(p *sim.Proc) {
				for i := 0; i < objects; i++ {
					unique := make([]byte, 4096)
					rng.Read(unique)
					if err := e.cl.Write(p, oidFor(i), 0, shared); err != nil {
						t.Fatal(err)
					}
					if err := e.cl.Write(p, oidFor(i), 4096, unique); err != nil {
						t.Fatal(err)
					}
				}
			})
			e.drain(t)

			e.run(t, func(p *sim.Proc) {
				gw := e.s.hostGW(anyHost(e.s))
				rc, err := gw.GetXattr(p, e.s.chunk, FingerprintID(shared), XattrRefCount)
				if err != nil || mustCount(t, rc) != objects {
					t.Fatalf("shared refcount = %d, %v (want %d)", mustCount(t, rc), err, objects)
				}
			})

			// Delete half the namespace; strict mode reclaims unique chunks
			// inline, false-positive mode needs the collector.
			e.run(t, func(p *sim.Proc) {
				for i := 0; i < objects/2; i++ {
					if err := e.cl.Delete(p, oidFor(i)); err != nil {
						t.Fatal(err)
					}
				}
			})
			if tc.fpRefs {
				e.run(t, func(p *sim.Proc) {
					if _, err := e.s.GC(p); err != nil {
						t.Fatal(err)
					}
				})
			}

			e.run(t, func(p *sim.Proc) {
				gw := e.s.hostGW(anyHost(e.s))
				rc, err := gw.GetXattr(p, e.s.chunk, FingerprintID(shared), XattrRefCount)
				if err != nil || mustCount(t, rc) != objects/2 {
					t.Fatalf("shared refcount after deletes = %d, %v (want %d)", mustCount(t, rc), err, objects/2)
				}
				// objects/2 unique chunks + 1 shared chunk must remain.
				if got := len(e.c.ListObjects(e.s.chunk)); got != objects/2+1 {
					t.Errorf("%d chunk objects remain, want %d", got, objects/2+1)
				}
			})
			e.checkIntegrity(t)
		})
	}
}

func oidFor(i int) string { return fmt.Sprintf("obj%02d", i) }
