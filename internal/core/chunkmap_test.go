package core

import (
	"testing"
	"testing/quick"
)

func TestChunkMapMarshalRoundTrip(t *testing.T) {
	m := &ChunkMap{Entries: []Entry{
		{Start: 0, End: 32768, ChunkID: "chk.aabb", Cached: true, Dirty: true, Gen: 3},
		{Start: 32768, End: 65536, ChunkID: "", Cached: false, Dirty: false, Gen: 0},
		{Start: 65536, End: 70000, ChunkID: "chk.ccdd", Cached: false, Dirty: true, Gen: 9},
	}}
	got, err := UnmarshalChunkMap(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Entries) != 3 {
		t.Fatalf("entries = %d", len(got.Entries))
	}
	for i := range m.Entries {
		if got.Entries[i] != m.Entries[i] {
			t.Fatalf("entry %d: %+v != %+v", i, got.Entries[i], m.Entries[i])
		}
	}
}

func TestChunkMapEmpty(t *testing.T) {
	m, err := UnmarshalChunkMap(nil)
	if err != nil || len(m.Entries) != 0 || m.Size() != 0 {
		t.Fatalf("empty: %v %v", m, err)
	}
}

func TestChunkMapCorrupt(t *testing.T) {
	if _, err := UnmarshalChunkMap([]byte{1, 2, 3}); err == nil {
		t.Fatal("short input accepted")
	}
	m := &ChunkMap{Entries: []Entry{{Start: 0, End: 10}}}
	b := m.Marshal()
	if _, err := UnmarshalChunkMap(b[:len(b)-1]); err == nil {
		t.Fatal("truncated input accepted")
	}
}

func TestChunkMapEntrySizeMatchesPaper(t *testing.T) {
	// §5: "Each chunk entry in chunk map uses 150 bytes."
	m := &ChunkMap{Entries: []Entry{{Start: 0, End: 32768, ChunkID: FingerprintID([]byte("x"))}}}
	if got := len(m.Marshal()); got != 8+EntryOverhead {
		t.Fatalf("serialized entry footprint %d, want %d", got, 8+EntryOverhead)
	}
}

func TestChunkMapFind(t *testing.T) {
	m := &ChunkMap{Entries: []Entry{
		{Start: 0, End: 100},
		{Start: 100, End: 200},
		{Start: 300, End: 400}, // gap 200..300
	}}
	cases := []struct {
		off  int64
		want int
	}{{0, 0}, {99, 0}, {100, 1}, {199, 1}, {200, -1}, {250, -1}, {300, 2}, {399, 2}, {400, -1}}
	for _, c := range cases {
		if got := m.Find(c.off); got != c.want {
			t.Fatalf("Find(%d) = %d, want %d", c.off, got, c.want)
		}
	}
}

func TestChunkMapFindRange(t *testing.T) {
	m := &ChunkMap{Entries: []Entry{
		{Start: 0, End: 100}, {Start: 100, End: 200}, {Start: 200, End: 300},
	}}
	if got := m.FindRange(50, 200); len(got) != 3 {
		t.Fatalf("FindRange(50,200) = %v", got)
	}
	if got := m.FindRange(100, 100); len(got) != 1 || got[0] != 1 {
		t.Fatalf("FindRange(100,100) = %v", got)
	}
	if got := m.FindRange(300, 10); got != nil {
		t.Fatalf("FindRange past end = %v", got)
	}
}

func TestChunkMapUpsert(t *testing.T) {
	m := &ChunkMap{}
	m.Upsert(Entry{Start: 100, End: 200, ChunkID: "b"})
	m.Upsert(Entry{Start: 0, End: 100, ChunkID: "a"})
	if m.Entries[0].ChunkID != "a" || m.Entries[1].ChunkID != "b" {
		t.Fatal("entries not sorted after upsert")
	}
	// Replace keeps the longer end.
	m.Upsert(Entry{Start: 0, End: 50, ChunkID: "a2"})
	if m.Entries[0].End != 100 || m.Entries[0].ChunkID != "a2" {
		t.Fatalf("upsert shrank slot: %+v", m.Entries[0])
	}
	if m.Size() != 200 {
		t.Fatalf("size = %d", m.Size())
	}
}

func TestChunkMapDirtyAndCached(t *testing.T) {
	m := &ChunkMap{Entries: []Entry{
		{Start: 0, End: 10, Dirty: true, Cached: true},
		{Start: 10, End: 20},
		{Start: 20, End: 30, Dirty: true},
	}}
	d := m.DirtyEntries()
	if len(d) != 2 || d[0] != 0 || d[1] != 2 {
		t.Fatalf("dirty = %v", d)
	}
	if !m.AnyCached() {
		t.Fatal("AnyCached false")
	}
	m.Entries[0].Cached = false
	if m.AnyCached() {
		t.Fatal("AnyCached true with no cached entries")
	}
}

func TestQuickChunkMapRoundTrip(t *testing.T) {
	prop := func(starts []uint16, dirty []bool) bool {
		m := &ChunkMap{}
		for i, s := range starts {
			e := Entry{Start: int64(s) * 100, End: int64(s)*100 + 100, Gen: uint32(i)}
			if i < len(dirty) {
				e.Dirty = dirty[i]
			}
			m.Upsert(e)
		}
		got, err := UnmarshalChunkMap(m.Marshal())
		if err != nil || len(got.Entries) != len(m.Entries) {
			return false
		}
		for i := range m.Entries {
			if got.Entries[i] != m.Entries[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFingerprintIDDeterministic(t *testing.T) {
	a := FingerprintID([]byte("same content"))
	b := FingerprintID([]byte("same content"))
	c := FingerprintID([]byte("other content"))
	if a != b {
		t.Fatal("fingerprint not deterministic")
	}
	if a == c {
		t.Fatal("fingerprint collision on different content")
	}
	if len(a) != 4+64 {
		t.Fatalf("fingerprint ID %q has unexpected length", a)
	}
}
