package core

import (
	"fmt"
	"math/rand"
	"testing"

	"dedupstore/internal/rados"
	"dedupstore/internal/sim"
	"dedupstore/internal/simcost"
)

func BenchmarkFingerprintID32K(b *testing.B) {
	data := make([]byte, 32<<10)
	rand.New(rand.NewSource(1)).Read(data)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FingerprintID(data)
	}
}

func BenchmarkChunkMapMarshal(b *testing.B) {
	cm := &ChunkMap{}
	for i := 0; i < 128; i++ { // a 4MB object at 32K chunks
		cm.Upsert(Entry{Start: int64(i) * 32768, End: int64(i+1) * 32768, ChunkID: FingerprintID([]byte{byte(i)})})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw := cm.Marshal()
		if _, err := UnmarshalChunkMap(raw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWritePathSimulated measures host-side cost of simulating one
// dedup write (client op through the DES), i.e. how much real CPU one
// virtual I/O costs the experiment harness.
func BenchmarkWritePathSimulated(b *testing.B) {
	eng := sim.New(1)
	c := rados.NewTestbed(eng, simcost.Default(), 4, 4)
	cfg := DefaultConfig()
	cfg.Rate.Enabled = false
	cfg.HitSet.HitCount = 1000
	s, err := Open(c, cfg)
	if err != nil {
		b.Fatal(err)
	}
	cl := s.Client("bench")
	data := make([]byte, 8<<10)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	eng.Go("writer", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			if err := cl.Write(p, fmt.Sprintf("o%d", i%512), int64(i%128)*8192, data); err != nil {
				b.Fatal(err)
			}
		}
	})
	eng.Run()
}
