package core

import (
	"time"

	"dedupstore/internal/qos"
	"dedupstore/internal/sim"
)

// The §4.4.2 watermark rate controller, re-expressed for the QoS op
// scheduler. The paper gates dedup I/O by foreground-op counts (one dedup
// I/O per N client I/Os); with every I/O flowing through the per-OSD fair
// queues, the controller watches the trailing foreground IOPS and retunes
// two dedup-class knobs per watermark band:
//
//   - the class weight, so that under contention the scheduler itself
//     dispenses roughly one dedup dispatch per N client dispatches, and
//   - the class rate limit (admission spacing, claimed once per chunk
//     flushed via Group.WaitTurn), which holds the 1:N ratio against the
//     *measured* foreground rate even on idle devices — the fair queue is
//     work-conserving, and without the limit a mostly-idle cluster would
//     let background dedup collide with sparse client I/O far above the
//     paper's trickle.

// ratePolicyTick is how often the controller re-evaluates foreground load.
const ratePolicyTick = 50 * time.Millisecond

// rateWeight maps foreground IOPS to a dedup-class weight: above the high
// watermark the dedup class gets one share per OpsPerDedupAboveHigh client
// shares (paper: 1:500); between the watermarks one per OpsPerDedupMid
// (paper: 1:100); below the low watermark the full base weight — no
// limitation.
func rateWeight(rc RateConfig, base int64, iops float64) int64 {
	var gap int64
	switch {
	case iops > rc.HighIOPS:
		gap = rc.OpsPerDedupAboveHigh
	case iops > rc.LowIOPS:
		gap = rc.OpsPerDedupMid
	default:
		return base
	}
	if gap < 1 {
		gap = 1
	}
	if w := base / gap; w > 1 {
		return w
	}
	return 1
}

// rateLimitInterval maps foreground IOPS to a dedup admission spacing: one
// dedup operation (chunk flush) per gap foreground I/Os at the measured
// rate. Zero (no limit) below the low watermark, and when there is no
// measurable foreground rate to couple to.
func rateLimitInterval(rc RateConfig, iops float64) time.Duration {
	var gap int64
	switch {
	case iops > rc.HighIOPS:
		gap = rc.OpsPerDedupAboveHigh
	case iops > rc.LowIOPS:
		gap = rc.OpsPerDedupMid
	default:
		return 0
	}
	if gap < 1 {
		gap = 1
	}
	return time.Duration(float64(gap) / iops * float64(time.Second))
}

// rateTick performs one controller evaluation, retuning the dedup class
// weight and rate limit if the watermark band changed.
func (e *Engine) rateTick() {
	q := e.s.cluster.QoS()
	iops := e.s.cluster.ForegroundOps().RecentIOPS()
	w := rateWeight(e.s.cfg.Rate, e.rateBase, iops)
	iv := rateLimitInterval(e.s.cfg.Rate, iops)
	changed := false
	if q.Weight(qos.Dedup) != w {
		q.SetWeight(qos.Dedup, w)
		changed = true
	}
	if q.Limit(qos.Dedup) != iv {
		q.SetLimit(qos.Dedup, iv)
		changed = true
	}
	if changed {
		e.stats.RateAdjusts++
		e.reg().Counter("dedup_rate_adjusts_total").Inc()
	}
}

// startRatePolicy spawns the controller daemon alongside the dedup workers.
// It runs until the engine stops or drains, then restores the base weight so
// a stopped engine leaves the scheduler untouched.
func (e *Engine) startRatePolicy() {
	if !e.s.cfg.Rate.Enabled || e.ratePolicyOn {
		return
	}
	e.ratePolicyOn = true
	q := e.s.cluster.QoS()
	e.rateBase = q.Weight(qos.Dedup)
	e.s.cluster.Engine().GoDaemon("dedup.rate-policy", func(p *sim.Proc) {
		defer func() {
			q.SetWeight(qos.Dedup, e.rateBase)
			q.SetLimit(qos.Dedup, 0)
			e.ratePolicyOn = false
		}()
		for e.started && !e.stopReq {
			e.rateTick()
			p.Sleep(ratePolicyTick)
		}
	})
}
