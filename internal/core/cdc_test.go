package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"dedupstore/internal/chunker"
	"dedupstore/internal/sim"
)

func newCDCEnv(t *testing.T, mutate func(*Config)) *env {
	return newDedupEnv(t, func(cfg *Config) {
		cdc := chunker.NewCDC(1<<10, 4<<10, 16<<10)
		cfg.CDC = &cdc
		cfg.ChunkSize = 4096
		if mutate != nil {
			mutate(cfg)
		}
	})
}

func TestCDCRequiresPostProcess(t *testing.T) {
	eng := sim.New(1)
	c := newTestCluster(eng)
	cfg := DefaultConfig()
	cdc := chunker.NewCDC(1<<10, 4<<10, 16<<10)
	cfg.CDC = &cdc
	cfg.Mode = ModeInline
	if _, err := Open(c, cfg); err == nil {
		t.Fatal("CDC with inline mode accepted")
	}
}

func TestCDCWriteReadRoundTrip(t *testing.T) {
	e := newCDCEnv(t, nil)
	data := make([]byte, 50000)
	rand.New(rand.NewSource(1)).Read(data)
	e.run(t, func(p *sim.Proc) {
		if err := e.cl.Write(p, "obj", 0, data); err != nil {
			t.Fatal(err)
		}
		got, err := e.cl.Read(p, "obj", 0, -1)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("pre-flush round trip: %v", err)
		}
	})
	e.drain(t)
	e.run(t, func(p *sim.Proc) {
		got, err := e.cl.Read(p, "obj", 0, -1)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("post-flush round trip: %v", err)
		}
		// Range read across CDC boundaries.
		part, err := e.cl.Read(p, "obj", 12345, 6789)
		if err != nil || !bytes.Equal(part, data[12345:12345+6789]) {
			t.Fatalf("range read: %v", err)
		}
	})
	e.checkIntegrity(t)
}

func TestCDCDedupsShiftedContent(t *testing.T) {
	// The property fixed chunking cannot have: object B = prefix + object A
	// still shares most chunks with A.
	e := newCDCEnv(t, nil)
	base := make([]byte, 40000)
	rand.New(rand.NewSource(2)).Read(base)
	shifted := append([]byte("a-short-unaligned-prefix!"), base...)
	e.run(t, func(p *sim.Proc) {
		if err := e.cl.Write(p, "a", 0, base); err != nil {
			t.Fatal(err)
		}
		if err := e.cl.Write(p, "b", 0, shifted); err != nil {
			t.Fatal(err)
		}
	})
	e.drain(t)
	cp := e.c.PoolStats(e.s.chunk)
	logical := int64(len(base) + len(shifted))
	saved := logical - cp.LogicalBytes
	if saved < int64(len(base))/2 {
		t.Fatalf("CDC saved only %d of %d shared bytes", saved, len(base))
	}
	e.run(t, func(p *sim.Proc) {
		got, err := e.cl.Read(p, "b", 0, -1)
		if err != nil || !bytes.Equal(got, shifted) {
			t.Fatalf("shifted object corrupt: %v", err)
		}
	})
	e.checkIntegrity(t)
}

func TestCDCOverwriteAfterFlush(t *testing.T) {
	e := newCDCEnv(t, nil)
	data := make([]byte, 30000)
	rand.New(rand.NewSource(3)).Read(data)
	e.run(t, func(p *sim.Proc) { e.cl.Write(p, "obj", 0, data) })
	e.drain(t)
	patch := []byte("OVERWRITE-ACROSS-CDC-CHUNKS")
	e.run(t, func(p *sim.Proc) {
		// Sub-range overwrite on flushed CDC entries: pre-read + span merge.
		if err := e.cl.Write(p, "obj", 9999, patch); err != nil {
			t.Fatal(err)
		}
		copy(data[9999:], patch)
		got, err := e.cl.Read(p, "obj", 0, -1)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("post-overwrite read: %v", err)
		}
	})
	e.drain(t) // re-chunk
	e.run(t, func(p *sim.Proc) {
		got, err := e.cl.Read(p, "obj", 0, -1)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("post-reflush read: %v", err)
		}
	})
	e.checkIntegrity(t)
}

func TestCDCDeleteReleasesChunks(t *testing.T) {
	e := newCDCEnv(t, nil)
	data := make([]byte, 20000)
	rand.New(rand.NewSource(4)).Read(data)
	e.run(t, func(p *sim.Proc) { e.cl.Write(p, "obj", 0, data) })
	e.drain(t)
	e.run(t, func(p *sim.Proc) {
		if err := e.cl.Delete(p, "obj"); err != nil {
			t.Fatal(err)
		}
	})
	if n := len(e.c.ListObjects(e.s.chunk)); n != 0 {
		t.Fatalf("%d chunks leaked after delete", n)
	}
}

func TestCDCConcurrentWritersConverge(t *testing.T) {
	e := newCDCEnv(t, nil)
	e.s.StartEngine()
	contents := map[string][]byte{}
	rng := rand.New(rand.NewSource(5))
	e.run(t, func(p *sim.Proc) {
		var sigs []*sim.Signal
		for w := 0; w < 4; w++ {
			w := w
			cl := e.s.Client(fmt.Sprintf("c%d", w))
			sigs = append(sigs, p.Go("w", func(q *sim.Proc) {
				for i := 0; i < 5; i++ {
					oid := fmt.Sprintf("w%d-o%d", w, i)
					data := make([]byte, 8000+rng.Intn(8000))
					rng.Read(data)
					contents[oid] = data
					if err := cl.Write(q, oid, 0, data); err != nil {
						t.Error(err)
					}
				}
			}))
		}
		sim.WaitAll(p, sigs...)
	})
	e.drain(t)
	e.run(t, func(p *sim.Proc) {
		for oid, want := range contents {
			got, err := e.cl.Read(p, oid, 0, -1)
			if err != nil || !bytes.Equal(got, want) {
				t.Errorf("object %s corrupt: %v", oid, err)
			}
		}
	})
	e.checkIntegrity(t)
}

func TestCDCWriteRacingFlushKeepsFinal(t *testing.T) {
	e := newCDCEnv(t, nil)
	e.s.StartEngine()
	final := bytes.Repeat([]byte{0xEE}, 12000)
	e.run(t, func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			data := bytes.Repeat([]byte{byte(i)}, 12000)
			if i == 9 {
				data = final
			}
			if err := e.cl.Write(p, "contended", 0, data); err != nil {
				t.Error(err)
			}
			p.Sleep(30 * 1e6) // 30ms: let the engine race
		}
	})
	e.drain(t)
	e.run(t, func(p *sim.Proc) {
		got, err := e.cl.Read(p, "contended", 0, -1)
		if err != nil || !bytes.Equal(got, final) {
			t.Errorf("lost final write under CDC: %v", err)
		}
	})
	e.checkIntegrity(t)
}
