package core

import (
	"errors"
	"fmt"

	"dedupstore/internal/qos"
	"dedupstore/internal/rados"
	"dedupstore/internal/sim"
	"dedupstore/internal/store"
)

// Content-defined chunking mode. The paper evaluates static chunking and
// notes CDC as the CPU-heavy alternative (§5); this mode implements it end
// to end as an extension: writes land in the metadata object as usual (the
// write path stays fixed-slot for caching and dirty tracking), but the
// background flush re-chunks the WHOLE object with a rolling-hash CDC
// splitter, so byte-shifted duplicates across objects still collapse.
//
// Mechanics: CDC boundaries depend on the full object content, so a CDC
// flush must (1) materialize the complete object — cached ranges from the
// metadata object, flushed ranges from their chunks — (2) split it, (3)
// reference the new chunks, (4) replace the entire chunk map, and (5)
// de-reference every previously referenced chunk. A racing client write
// (any slot's Gen changed) aborts the map swap and undoes the new
// references, leaving the object dirty for the next cycle — the same
// convergence argument as §4.6.

// flushObjectCDC deduplicates one object with content-defined chunking. It
// returns the number of chunks the flush processed (for QoS cost billing)
// along with any error.
func (e *Engine) flushObjectCDC(p *sim.Proc, gw *rados.Gateway, hostName, oid string) (int, error) {
	s := e.s
	cdc := s.cfg.CDC
	if cdc == nil {
		return 0, errors.New("core: CDC flush without CDC config")
	}

	raw, err := gw.GetXattr(p, s.meta, oid, XattrChunkMap)
	if err != nil {
		return 0, nil // deleted meanwhile
	}
	cm, err := UnmarshalChunkMap(raw)
	if err != nil {
		return 0, err
	}
	if len(cm.DirtyEntries()) == 0 {
		return 0, nil
	}
	size := cm.Size()

	// (1) Materialize the full object content and remember each slot's Gen.
	gens := make(map[int64]uint32, len(cm.Entries))
	data := make([]byte, size)
	for _, entry := range cm.Entries {
		gens[entry.Start] = entry.Gen
		var seg []byte
		if entry.Cached {
			seg, err = gw.Read(p, s.meta, oid, entry.Start, entry.Len())
		} else if entry.ChunkID != "" {
			seg, err = gw.Read(p, s.chunk, entry.ChunkID, 0, entry.Len())
		} else {
			continue
		}
		if err != nil {
			return 0, fmt.Errorf("core: cdc materialize %s@%d: %w", oid, entry.Start, err)
		}
		copy(data[entry.Start:], seg)
	}

	// (2) Split with the rolling hash; charge its CPU cost on top of the
	// fingerprinting (the expense the paper avoids, §5).
	cost := s.cluster.Cost()
	if err := s.cluster.UseHostCPU(p, hostName, cost.Hash(len(data))+cost.Hash(len(data))/2); err != nil {
		return 0, err
	}
	chunks := cdc.Split(0, data)

	// (3) Phase 1 of the two-phase reference update: record an intent (and
	// the chunk contents, if absent) for every new chunk. Nothing is counted
	// yet — the intents only pin the chunks until the map swap lands (rate
	// control acts through the dedup class weight on gw's scheduler).
	var refs []takenRef
	for _, c := range chunks {
		id := FingerprintID(c.Data)
		ref := Ref{Pool: s.meta.ID, OID: oid, Offset: c.Offset}
		var out intentOutcome
		if err := gw.MutateWithPayload(p, s.chunk, id, len(c.Data), putIntentFn(c.Data, ref, e.leaseExpiry(p), &out)); err != nil {
			e.abortIntents(p, gw, refs)
			return len(chunks), err
		}
		e.stats.ChunksFlushed++
		e.stats.BytesFlushed += int64(len(c.Data))
		refs = append(refs, takenRef{
			entry:     Entry{Start: c.Offset, End: c.End(), ChunkID: id},
			ref:       ref,
			committed: out.committed,
		})
	}

	// (4) Swap the chunk map if no write raced; collect the old references.
	var oldRefs []takenRef
	raced := false
	keepCached := s.cache.KeepCachedAfterFlush(p.Now(), oid)
	err = gw.Mutate(p, s.meta, oid, func(v rados.View) (*store.Txn, error) {
		cur, err := loadChunkMap(v)
		if err != nil {
			return nil, err
		}
		for _, entry := range cur.Entries {
			g, ok := gens[entry.Start]
			if !ok || g != entry.Gen {
				raced = true
				return nil, nil
			}
			if entry.ChunkID != "" {
				oldRefs = append(oldRefs, takenRef{
					entry: entry,
					ref:   Ref{Pool: s.meta.ID, OID: oid, Offset: entry.Start},
				})
			}
		}
		next := &ChunkMap{}
		for _, nr := range refs {
			en := nr.entry
			en.Cached = keepCached
			next.Entries = append(next.Entries, en)
		}
		txn := store.NewTxn().SetXattr(XattrChunkMap, next.Marshal())
		if keepCached {
			txn.Write(0, data) // keep the full object cached
		} else {
			txn.Zero(0, size)
		}
		return txn, nil
	})
	if err != nil {
		e.abortIntents(p, gw, refs)
		return len(chunks), err
	}
	if raced {
		e.stats.Requeued++
		e.abortIntents(p, gw, refs)
		return len(chunks), gw.Mutate(p, s.meta, s.dirtyListOID(oid), func(rados.View) (*store.Txn, error) {
			return store.NewTxn().Create().OmapSet(oid, nil), nil
		})
	}

	// Phase 3: the map swap is durable, so commit the intents into counted
	// references. On persistent failure GC/audit promote the expired intents
	// (the bindings exist), so commit errors other than pool loss are
	// tolerable — but retry while OSDs are merely unavailable.
	for _, nr := range refs {
		if nr.committed {
			continue
		}
		nr := nr
		if cerr := retryUnavailable(p, func() error {
			return gw.Mutate(p, s.chunk, nr.entry.ChunkID, commitIntentFn(nr.ref))
		}); cerr != nil && !errors.Is(cerr, ErrNotFound) {
			return len(chunks), cerr
		}
	}

	// (5) De-reference the replaced chunks. A new reference with the same
	// (oid, offset) key may now live on a different chunk object; the old
	// chunk's copy of the key is removed here. Chunks whose identity did
	// not change were never re-referenced (putIntentFn is idempotent per
	// committed key), so skip those.
	newByOffset := make(map[int64]string, len(refs))
	for _, nr := range refs {
		newByOffset[nr.entry.Start] = nr.entry.ChunkID
	}
	for _, or := range oldRefs {
		if newByOffset[or.entry.Start] == or.entry.ChunkID {
			continue
		}
		fn := decRefFn(or.ref)
		if s.cfg.FalsePositiveRefs {
			fn = dropRefFn(or.ref)
		}
		if err := gw.Mutate(p, s.chunk, or.entry.ChunkID, fn); err != nil && !errors.Is(err, ErrNotFound) {
			return len(chunks), err
		}
	}
	return len(chunks), nil
}

// takenRef pairs a prospective chunk-map entry with its reference key.
// committed records that the reference was already a committed ref before
// this flush (idempotent re-flush) — no intent exists for it, so neither
// commit nor abort must touch it.
type takenRef struct {
	entry     Entry
	ref       Ref
	committed bool
}

// abortIntents rolls back phase-1 intents taken by an aborted CDC flush.
// Best-effort: an intent whose abort is lost to a crash expires and is
// reconciled by GC/audit.
func (e *Engine) abortIntents(p *sim.Proc, gw *rados.Gateway, refs []takenRef) {
	s := e.s
	for _, nr := range refs {
		if nr.committed {
			continue
		}
		_ = gw.Mutate(p, s.chunk, nr.entry.ChunkID, abortIntentFn(nr.ref, !s.cfg.FalsePositiveRefs))
	}
}

// cdcWrite is the CDC-mode client write path: because existing entries may
// have arbitrary (content-defined) boundaries, a write first materializes
// every overlapped entry into the cached data region, then replaces the
// overlapped entries with one cached, dirty span. The replaced chunks are
// de-referenced after the map update.
func (cl *Client) cdcWrite(p *sim.Proc, oid string, off int64, data []byte) error {
	s := cl.s
	proxyGW, _, err := s.metaPrimaryGW(oid, qos.Client)
	if err != nil {
		return err
	}
	type oldChunk struct {
		id  string
		ref Ref
	}
	var replaced []oldChunk
	err = cl.gw.MutateWithPayload(p, s.meta, oid, len(data), func(v rados.View) (*store.Txn, error) {
		cm, err := loadChunkMap(v)
		if err != nil {
			return nil, err
		}
		end := off + int64(len(data))
		spanStart, spanEnd := off, end
		txn := store.NewTxn()
		var kept []Entry
		var maxGen uint32
		for _, entry := range cm.Entries {
			if entry.End <= off || entry.Start >= end {
				kept = append(kept, entry)
				continue
			}
			// Overlap: pull the entry's bytes into the object if needed,
			// then fold it into the new dirty span.
			if entry.Start < spanStart {
				spanStart = entry.Start
			}
			if entry.End > spanEnd {
				spanEnd = entry.End
			}
			if entry.Gen > maxGen {
				maxGen = entry.Gen
			}
			if !entry.Cached && entry.ChunkID != "" {
				chunkData, err := proxyGW.Read(p, s.chunk, entry.ChunkID, 0, entry.Len())
				if err != nil {
					return nil, fmt.Errorf("core: cdc pre-read %s: %w", entry.ChunkID, err)
				}
				txn.Write(entry.Start, chunkData)
			}
			if entry.ChunkID != "" {
				replaced = append(replaced, oldChunk{
					id:  entry.ChunkID,
					ref: Ref{Pool: s.meta.ID, OID: oid, Offset: entry.Start},
				})
			}
		}
		txn.Write(off, data)
		next := &ChunkMap{Entries: kept}
		next.Upsert(Entry{Start: spanStart, End: spanEnd, Cached: true, Dirty: true, Gen: maxGen + 1})
		txn.SetXattr(XattrChunkMap, next.Marshal())
		return txn, nil
	})
	if err != nil {
		return err
	}
	// De-reference chunks the span swallowed (their data now lives in the
	// metadata object).
	for _, oc := range replaced {
		fn := decRefFn(oc.ref)
		if s.cfg.FalsePositiveRefs {
			fn = dropRefFn(oc.ref)
		}
		if err := cl.gw.Mutate(p, s.chunk, oc.id, fn); err != nil && !errors.Is(err, ErrNotFound) {
			return err
		}
	}
	// Log the object for the background engine.
	return cl.gw.Mutate(p, s.meta, s.dirtyListOID(oid), func(rados.View) (*store.Txn, error) {
		return store.NewTxn().Create().OmapSet(oid, nil), nil
	})
}

// UseCDC reports whether the store runs in content-defined chunking mode.
func (s *Store) UseCDC() bool { return s.cfg.CDC != nil }
