package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"dedupstore/internal/rados"
	"dedupstore/internal/sim"
)

// TestCrashDuringFlushKeepsInvariants crashes a chunk-pool OSD while the
// flush engine is deduplicating a dirty working set and foreground writers
// keep going, then restarts it. With heartbeat detection, degraded I/O and
// retries in place, nothing is lost: every write is durable and readable,
// scrub finds no inconsistencies, and GC finds the reference tables sane.
func TestCrashDuringFlushKeepsInvariants(t *testing.T) {
	e := newDedupEnv(t, func(cfg *Config) {
		cfg.FalsePositiveRefs = true // crash-safe refcount mode (§4.6)
	})
	m := e.c.StartMonitor(rados.MonitorConfig{
		Interval:    50 * time.Millisecond,
		Grace:       200 * time.Millisecond,
		OutAfter:    500 * time.Millisecond,
		AutoRecover: true,
	})
	e.s.StartEngine()

	const (
		objects  = 24
		objSize  = 16 << 10 // 4 chunks each
		crashed  = 9
		crashAt  = 2 * time.Millisecond
		reviveAt = 800 * time.Millisecond
	)
	e.eng.After(crashAt, func() {
		if err := e.c.CrashOSD(crashed); err != nil {
			t.Error(err)
		}
	})
	e.eng.After(reviveAt, func() {
		if err := e.c.RestartOSD(crashed); err != nil {
			t.Error(err)
		}
	})

	// Foreground writers with a client-style retry loop; 50% duplicate
	// chunks exercise refcounting across the crash window.
	shadow := make([][]byte, objects)
	rng := rand.New(rand.NewSource(4))
	dup := bytes.Repeat([]byte{0xDD}, 4096)
	var fgErrors int
	e.run(t, func(p *sim.Proc) {
		for i := 0; i < objects; i++ {
			data := make([]byte, objSize)
			rng.Read(data)
			for c := 0; c < objSize/4096; c += 2 {
				copy(data[c*4096:], dup)
			}
			shadow[i] = data
			var err error
			for try := 0; try < 100; try++ {
				if err = e.cl.Write(p, fmt.Sprintf("o%d", i), 0, data); err == nil || !rados.IsUnavailable(err) {
					break
				}
				p.Sleep(20 * time.Millisecond)
			}
			if err != nil {
				fgErrors++
				t.Errorf("write o%d: %v", i, err)
			}
			p.Sleep(30 * time.Millisecond) // spread writes across the crash window
		}
		m.WaitSettled(p)
		e.s.Engine().DrainAndWait(p)
	})
	if fgErrors != 0 {
		t.Fatalf("%d foreground writes failed despite retries", fgErrors)
	}

	// The restarted OSD must be fully back in service.
	if !e.c.OSDAlive(crashed) {
		t.Fatal("crashed OSD not alive after restart")
	}

	// All contents intact, refcounts consistent, scrub clean.
	e.run(t, func(p *sim.Proc) {
		for i := 0; i < objects; i++ {
			got, err := e.cl.Read(p, fmt.Sprintf("o%d", i), 0, int64(objSize))
			if err != nil {
				t.Errorf("read o%d: %v", i, err)
				continue
			}
			if !bytes.Equal(got, shadow[i]) {
				t.Errorf("object o%d corrupt after crash/recovery", i)
			}
		}
		rep, err := e.s.Scrub(p)
		if err != nil {
			t.Fatalf("scrub: %v", err)
		}
		for _, iss := range rep.Issues {
			t.Errorf("scrub issue: %s: %s", iss.OID, iss.Detail)
		}
		if _, err := e.s.GC(p); err != nil {
			t.Fatalf("gc: %v", err)
		}
		// A second GC pass after the first removed any refs orphaned by the
		// crash must find nothing left to do.
		st, err := e.s.GC(p)
		if err != nil {
			t.Fatalf("gc: %v", err)
		}
		if st.StaleRefs != 0 || st.ChunksDeleted != 0 {
			t.Errorf("second GC pass still found work: %+v", st)
		}
	})
	e.checkIntegrity(t)
}
