package core

import (
	"errors"

	"dedupstore/internal/qos"
	"dedupstore/internal/rados"
	"dedupstore/internal/sim"
)

// Dedup-aware scrub: on top of the substrate's replica/parity scrub, the
// dedup layer can verify its own invariants — a chunk object's content must
// hash to its own ID (double hashing makes bit-rot self-evident), every
// chunk-map entry must point at an existing chunk, and reference counts
// must agree with the recorded back references.

// ScrubIssue describes one dedup-level inconsistency.
type ScrubIssue struct {
	OID    string // object (metadata or chunk) involved
	Detail string
}

// ScrubReport summarizes a dedup scrub pass.
type ScrubReport struct {
	MetadataObjects int
	ChunkObjects    int
	BytesVerified   int64
	Issues          []ScrubIssue
}

// Clean reports whether the scrub found no inconsistencies.
func (r ScrubReport) Clean() bool { return len(r.Issues) == 0 }

// Scrub verifies the dedup layer's invariants. It is read-only; use the
// substrate's Cluster.Scrub(repair=true) to fix replica divergence, and GC
// to reclaim stale references.
func (s *Store) Scrub(p *sim.Proc) (ScrubReport, error) {
	var rep ScrubReport
	reg := s.cluster.Metrics()
	defer func() {
		reg.Counter("dedup_scrub_passes_total").Inc()
		reg.Counter("dedup_scrub_chunks_total").Add(int64(rep.ChunkObjects))
		reg.Counter("dedup_scrub_bytes_verified_total").Add(rep.BytesVerified)
		reg.Counter("dedup_scrub_issues_total").Add(int64(len(rep.Issues)))
	}()
	sp := s.cluster.Trace().Start(p, "dedup.scrub").SetClass(qos.Scrub.String())
	defer sp.Finish(p)
	gw := s.hostGWClass(anyHost(s), qos.Scrub)

	// 1. Chunk objects: content must hash to the object ID (the double-
	// hashing invariant) and the refcount must equal the back-ref count.
	// With tiering on, both the warm and the cold pool hold chunk objects
	// and each is verified against the same invariants.
	for _, cpool := range s.chunkPools() {
		if err := s.scrubChunkPool(p, gw, cpool, &rep); err != nil {
			return rep, err
		}
	}

	// 2. Metadata objects: every flushed entry must point at a live chunk in
	// the pool its Cold bit selects.
	for _, oid := range s.cluster.ListObjects(s.meta) {
		if IsSystemObject(oid) {
			continue
		}
		rep.MetadataObjects++
		var raw []byte
		err := retryUnavailable(p, func() error {
			var e error
			raw, e = gw.GetXattr(p, s.meta, oid, XattrChunkMap)
			return e
		})
		if rados.IsUnavailable(err) {
			return rep, err
		}
		if err != nil {
			rep.Issues = append(rep.Issues, ScrubIssue{OID: oid, Detail: "missing chunk map"})
			continue
		}
		cm, err := UnmarshalChunkMap(raw)
		if err != nil {
			rep.Issues = append(rep.Issues, ScrubIssue{OID: oid, Detail: "corrupt chunk map"})
			continue
		}
		for _, e := range cm.Entries {
			if e.ChunkID == "" {
				if !e.Cached {
					rep.Issues = append(rep.Issues, ScrubIssue{OID: oid, Detail: "slot has neither chunk nor cached data"})
				}
				continue
			}
			if e.Cached || e.Dirty {
				continue // data still (also) in the metadata object
			}
			var ok bool
			err := retryUnavailable(p, func() error {
				var e2 error
				ok, e2 = gw.Exists(p, s.chunkPoolFor(e.Cold), e.ChunkID)
				return e2
			})
			if err != nil {
				return rep, err
			}
			if !ok {
				rep.Issues = append(rep.Issues, ScrubIssue{OID: oid, Detail: "chunk map points at missing chunk " + e.ChunkID})
			}
		}
	}
	return rep, nil
}

// scrubChunkPool verifies the chunk objects of one chunk pool.
func (s *Store) scrubChunkPool(p *sim.Proc, gw *rados.Gateway, cpool *rados.Pool, rep *ScrubReport) error {
	for _, chunkOID := range s.cluster.ListObjects(cpool) {
		rep.ChunkObjects++
		var data []byte
		err := retryUnavailable(p, func() error {
			var e error
			data, e = gw.Read(p, cpool, chunkOID, 0, -1)
			return e
		})
		if err != nil {
			if errors.Is(err, ErrNotFound) {
				continue // deleted concurrently
			}
			return err
		}
		host, herr := s.cluster.PrimaryHost(cpool, chunkOID)
		if herr == nil {
			if err := s.cluster.UseHostCPU(p, host, s.cluster.Cost().Hash(len(data))); err != nil {
				return err
			}
		}
		rep.BytesVerified += int64(len(data))
		if got := FingerprintID(data); got != chunkOID {
			rep.Issues = append(rep.Issues, ScrubIssue{OID: chunkOID, Detail: "content does not match fingerprint (bit rot)"})
		}
		var refs []string
		err = retryUnavailable(p, func() error {
			var e error
			refs, e = gw.OmapList(p, cpool, chunkOID, 0)
			return e
		})
		if err != nil && !errors.Is(err, ErrNotFound) {
			return err
		}
		// Partition the omap into committed references and in-flight intents:
		// only committed references are counted, and every key must parse
		// back to the Ref that wrote it (an unparseable key is invisible to
		// GC and would pin the chunk forever).
		committed := 0
		for _, k := range refs {
			switch {
			case isRefKey(k):
				committed++
				if _, ok := parseRefKey(k); !ok {
					rep.Issues = append(rep.Issues, ScrubIssue{OID: chunkOID, Detail: "unparseable reference key " + k})
				}
			case isIntentKey(k):
				if _, ok := parseIntentKey(k); !ok {
					rep.Issues = append(rep.Issues, ScrubIssue{OID: chunkOID, Detail: "unparseable intent key " + k})
				}
			default:
				rep.Issues = append(rep.Issues, ScrubIssue{OID: chunkOID, Detail: "unknown omap key " + k})
			}
		}
		var rcRaw []byte
		err = retryUnavailable(p, func() error {
			var e error
			rcRaw, e = gw.GetXattr(p, cpool, chunkOID, XattrRefCount)
			return e
		})
		if rados.IsUnavailable(err) {
			// Unreachable is not the same as missing: report the pass as
			// failed rather than log a phantom inconsistency.
			return err
		}
		if err != nil {
			rep.Issues = append(rep.Issues, ScrubIssue{OID: chunkOID, Detail: "missing refcount xattr"})
			continue
		}
		rc, _, ok := decodeRC(rcRaw)
		if !ok {
			// A short or garbled dedup.rc used to silently read as count 0;
			// now it is a first-class finding (GC rebuilds it from the omap).
			rep.Issues = append(rep.Issues, ScrubIssue{OID: chunkOID, Detail: "corrupt refcount xattr"})
			continue
		}
		if int(rc) != committed {
			rep.Issues = append(rep.Issues, ScrubIssue{OID: chunkOID, Detail: "refcount disagrees with reference table"})
		}
	}
	return nil
}
