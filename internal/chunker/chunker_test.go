package chunker

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFixedSplitAligned(t *testing.T) {
	f := NewFixed(32)
	data := make([]byte, 100)
	chunks := f.Split(0, data)
	if len(chunks) != 4 {
		t.Fatalf("got %d chunks, want 4", len(chunks))
	}
	wantLens := []int{32, 32, 32, 4}
	for i, c := range chunks {
		if len(c.Data) != wantLens[i] {
			t.Fatalf("chunk %d len=%d want %d", i, len(c.Data), wantLens[i])
		}
		if c.Offset != int64(i*32) {
			t.Fatalf("chunk %d offset=%d", i, c.Offset)
		}
	}
}

func TestFixedSplitUnalignedOffset(t *testing.T) {
	f := NewFixed(32)
	// Write of 48 bytes at offset 16 must produce [16:32) and [32:64).
	chunks := f.Split(16, make([]byte, 48))
	if len(chunks) != 2 {
		t.Fatalf("got %d chunks, want 2", len(chunks))
	}
	if chunks[0].Offset != 16 || len(chunks[0].Data) != 16 {
		t.Fatalf("chunk0 = %d+%d", chunks[0].Offset, len(chunks[0].Data))
	}
	if chunks[1].Offset != 32 || len(chunks[1].Data) != 32 {
		t.Fatalf("chunk1 = %d+%d", chunks[1].Offset, len(chunks[1].Data))
	}
}

func TestFixedSplitEmpty(t *testing.T) {
	if got := NewFixed(32).Split(0, nil); got != nil {
		t.Fatalf("empty split = %v", got)
	}
}

func TestFixedAlign(t *testing.T) {
	f := NewFixed(32)
	if f.AlignDown(33) != 32 || f.AlignDown(32) != 32 || f.AlignDown(31) != 0 {
		t.Fatal("AlignDown wrong")
	}
	if f.AlignUp(33) != 64 || f.AlignUp(32) != 32 || f.AlignUp(1) != 32 {
		t.Fatal("AlignUp wrong")
	}
}

func TestFixedCoversInput(t *testing.T) {
	f := NewFixed(31) // odd size
	prop := func(off uint16, n uint16) bool {
		data := make([]byte, int(n)%5000)
		for i := range data {
			data[i] = byte(i)
		}
		chunks := f.Split(int64(off), data)
		// Reassemble and compare.
		var re []byte
		expect := int64(off)
		for _, c := range chunks {
			if c.Offset != expect {
				return false
			}
			re = append(re, c.Data...)
			expect = c.End()
		}
		return bytes.Equal(re, data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFixedDeterministicBoundaries(t *testing.T) {
	f := NewFixed(64)
	data := make([]byte, 1000)
	a := f.Split(128, data)
	b := f.Split(128, data)
	if len(a) != len(b) {
		t.Fatal("nondeterministic chunk count")
	}
	for i := range a {
		if a[i].Offset != b[i].Offset || len(a[i].Data) != len(b[i].Data) {
			t.Fatal("nondeterministic boundaries")
		}
	}
}

func TestFixedPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for size 0")
		}
	}()
	NewFixed(0)
}

func TestCDCCoversInput(t *testing.T) {
	c := NewCDC(512, 2048, 8192)
	rng := rand.New(rand.NewSource(42))
	data := make([]byte, 100000)
	rng.Read(data)
	chunks := c.Split(0, data)
	var re []byte
	for _, ch := range chunks {
		re = append(re, ch.Data...)
	}
	if !bytes.Equal(re, data) {
		t.Fatal("CDC chunks do not reassemble input")
	}
}

func TestCDCSizeBounds(t *testing.T) {
	c := NewCDC(512, 2048, 8192)
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, 200000)
	rng.Read(data)
	chunks := c.Split(0, data)
	for i, ch := range chunks {
		if i < len(chunks)-1 && int64(len(ch.Data)) < c.Min {
			t.Fatalf("chunk %d below min: %d", i, len(ch.Data))
		}
		if int64(len(ch.Data)) > c.Max {
			t.Fatalf("chunk %d above max: %d", i, len(ch.Data))
		}
	}
	avg := len(data) / len(chunks)
	if avg < 1024 || avg > 8192 {
		t.Fatalf("average chunk %d far from target 2048", avg)
	}
}

func TestCDCShiftInvariance(t *testing.T) {
	// The signature CDC property: inserting a prefix shifts boundaries but
	// most chunk contents stay identical, unlike fixed-size chunking.
	c := NewCDC(256, 1024, 4096)
	rng := rand.New(rand.NewSource(7))
	base := make([]byte, 50000)
	rng.Read(base)
	shifted := append([]byte("PREFIX-INSERTED"), base...)

	set := map[string]bool{}
	for _, ch := range c.Split(0, base) {
		set[string(ch.Data)] = true
	}
	shared := 0
	chunks := c.Split(0, shifted)
	for _, ch := range chunks {
		if set[string(ch.Data)] {
			shared++
		}
	}
	if shared < len(chunks)/2 {
		t.Fatalf("only %d/%d chunks survive a prefix shift", shared, len(chunks))
	}
}

func TestCDCPanicsOnPartialSplit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for offset != 0")
		}
	}()
	NewCDC(256, 1024, 4096).Split(512, make([]byte, 10))
}

func TestNames(t *testing.T) {
	if NewFixed(32768).Name() != "fixed-32768" {
		t.Fatal("fixed name")
	}
	if NewCDC(256, 1024, 4096).Name() != "cdc-1024" {
		t.Fatal("cdc name")
	}
}
