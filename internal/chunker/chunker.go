// Package chunker splits object data into chunks for deduplication. The
// paper uses static (fixed-size) chunking for its low CPU cost (§5,
// "Chunking algorithm"); content-defined chunking (CDC) with a rolling hash
// is provided as the ablation alternative the paper discusses and rejects.
package chunker

import "fmt"

// Chunk is one piece of an object: its offset range within the source data
// and the data itself. Data aliases the input slice; callers must copy if
// they mutate the source.
type Chunk struct {
	Offset int64
	Data   []byte
}

// End returns the exclusive end offset of the chunk.
func (c Chunk) End() int64 { return c.Offset + int64(len(c.Data)) }

// Chunker splits a byte stream into chunks.
type Chunker interface {
	// Split divides data (which starts at the given object offset) into
	// chunks. Chunk boundaries must be deterministic functions of offset and
	// content so repeated splits of identical data agree.
	Split(offset int64, data []byte) []Chunk
	// Name identifies the algorithm for reports.
	Name() string
}

// Fixed is the paper's static chunking algorithm: boundaries every Size
// bytes, aligned to absolute object offsets so that a partial write maps to
// a deterministic set of chunk slots.
type Fixed struct {
	Size int64
}

// NewFixed returns a fixed-size chunker; the paper's default is 32 KiB.
func NewFixed(size int64) Fixed {
	if size <= 0 {
		panic(fmt.Sprintf("chunker: invalid chunk size %d", size))
	}
	return Fixed{Size: size}
}

// Name implements Chunker.
func (f Fixed) Name() string { return fmt.Sprintf("fixed-%d", f.Size) }

// Split implements Chunker. Chunks are aligned to multiples of Size in the
// object's offset space; the first and last chunks may be partial.
func (f Fixed) Split(offset int64, data []byte) []Chunk {
	if len(data) == 0 {
		return nil
	}
	var out []Chunk
	pos := int64(0)
	for pos < int64(len(data)) {
		abs := offset + pos
		boundary := (abs/f.Size + 1) * f.Size
		n := boundary - abs
		if rem := int64(len(data)) - pos; n > rem {
			n = rem
		}
		out = append(out, Chunk{Offset: abs, Data: data[pos : pos+n]})
		pos += n
	}
	return out
}

// AlignDown returns the chunk-aligned start for an offset.
func (f Fixed) AlignDown(off int64) int64 { return off / f.Size * f.Size }

// AlignUp returns the chunk-aligned end for an offset.
func (f Fixed) AlignUp(off int64) int64 { return (off + f.Size - 1) / f.Size * f.Size }

// CDC is a content-defined chunker using a Rabin-style rolling hash over a
// 48-byte window. Boundaries are declared where the hash matches a mask,
// giving an average chunk size of roughly Avg bytes, clamped to [Min, Max].
//
// Note: CDC boundaries depend on content that precedes the write, so CDC is
// only valid for whole-object splits (offset 0). The dedup engine uses it
// only in whole-object flush mode; the ablation bench quantifies its CPU
// cost versus ratio gain.
type CDC struct {
	Min, Avg, Max int64
	mask          uint64
}

// NewCDC returns a content-defined chunker with the given average size
// (rounded down to a power of two for the boundary mask).
func NewCDC(minSize, avgSize, maxSize int64) CDC {
	if minSize <= 0 || avgSize < minSize || maxSize < avgSize {
		panic(fmt.Sprintf("chunker: invalid CDC sizes min=%d avg=%d max=%d", minSize, avgSize, maxSize))
	}
	bits := 0
	for s := avgSize; s > 1; s >>= 1 {
		bits++
	}
	return CDC{Min: minSize, Avg: avgSize, Max: maxSize, mask: (1 << bits) - 1}
}

// Name implements Chunker.
func (c CDC) Name() string { return fmt.Sprintf("cdc-%d", c.Avg) }

// gear table for the rolling hash, generated deterministically.
var gear = func() [256]uint64 {
	var t [256]uint64
	x := uint64(0x9e3779b97f4a7c15)
	for i := range t {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		t[i] = x
	}
	return t
}()

// Split implements Chunker using the gear rolling hash (FastCDC-style).
func (c CDC) Split(offset int64, data []byte) []Chunk {
	if offset != 0 {
		panic("chunker: CDC requires whole-object splits (offset 0)")
	}
	if len(data) == 0 {
		return nil
	}
	var out []Chunk
	start := int64(0)
	var h uint64
	for i := int64(0); i < int64(len(data)); i++ {
		h = h<<1 + gear[data[i]]
		if i-start+1 >= c.Min && (h&c.mask) == 0 || i-start+1 >= c.Max {
			out = append(out, Chunk{Offset: start, Data: data[start : i+1]})
			start = i + 1
			h = 0
		}
	}
	if start < int64(len(data)) {
		out = append(out, Chunk{Offset: start, Data: data[start:]})
	}
	return out
}
