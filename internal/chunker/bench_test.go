package chunker

import (
	"math/rand"
	"testing"
)

func benchData(n int) []byte {
	data := make([]byte, n)
	rand.New(rand.NewSource(1)).Read(data)
	return data
}

func BenchmarkFixedSplit4MB(b *testing.B) {
	data := benchData(4 << 20)
	f := NewFixed(32 << 10)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := f.Split(0, data); len(got) == 0 {
			b.Fatal("no chunks")
		}
	}
}

func BenchmarkCDCSplit4MB(b *testing.B) {
	data := benchData(4 << 20)
	c := NewCDC(8<<10, 32<<10, 128<<10)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := c.Split(0, data); len(got) == 0 {
			b.Fatal("no chunks")
		}
	}
}
