package bloom

import "testing"

func BenchmarkAdd(b *testing.B) {
	f := NewWithEstimates(1<<20, 0.01)
	key := []byte("chk.aabbccddeeff00112233445566778899aabbccddeeff001122334455667788")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Add(key)
	}
}

func BenchmarkContains(b *testing.B) {
	f := NewWithEstimates(1<<20, 0.01)
	key := []byte("chk.aabbccddeeff00112233445566778899aabbccddeeff001122334455667788")
	f.Add(key)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !f.Contains(key) {
			b.Fatal("lost key")
		}
	}
}
