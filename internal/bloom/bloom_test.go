package bloom

import (
	"encoding/binary"
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	f := NewWithEstimates(1000, 0.01)
	for i := 0; i < 1000; i++ {
		f.AddString(fmt.Sprintf("key-%d", i))
	}
	for i := 0; i < 1000; i++ {
		if !f.ContainsString(fmt.Sprintf("key-%d", i)) {
			t.Fatalf("false negative for key-%d", i)
		}
	}
}

func TestFalsePositiveRate(t *testing.T) {
	f := NewWithEstimates(1000, 0.01)
	for i := 0; i < 1000; i++ {
		f.AddString(fmt.Sprintf("key-%d", i))
	}
	fp := 0
	const probes = 10000
	for i := 0; i < probes; i++ {
		if f.ContainsString(fmt.Sprintf("other-%d", i)) {
			fp++
		}
	}
	if rate := float64(fp) / probes; rate > 0.03 {
		t.Fatalf("false positive rate %.4f too high", rate)
	}
}

func TestEmptyContainsNothing(t *testing.T) {
	f := New(1024, 4)
	if f.ContainsString("anything") {
		t.Fatal("empty filter claims membership")
	}
}

func TestReset(t *testing.T) {
	f := New(1024, 4)
	f.AddString("a")
	f.Reset()
	if f.ContainsString("a") || f.Count() != 0 {
		t.Fatal("reset did not clear filter")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	f := NewWithEstimates(100, 0.01)
	for i := 0; i < 100; i++ {
		f.AddString(fmt.Sprintf("k%d", i))
	}
	g, err := Unmarshal(f.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if g.Count() != f.Count() {
		t.Fatalf("count %d != %d", g.Count(), f.Count())
	}
	for i := 0; i < 100; i++ {
		if !g.ContainsString(fmt.Sprintf("k%d", i)) {
			t.Fatalf("lost key k%d after round trip", i)
		}
	}
}

func TestUnmarshalCorrupt(t *testing.T) {
	if _, err := Unmarshal([]byte("short")); err != ErrCorrupt {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	f := New(128, 3)
	b := f.Marshal()
	if _, err := Unmarshal(b[:len(b)-1]); err != ErrCorrupt {
		t.Fatalf("truncated: err = %v, want ErrCorrupt", err)
	}
}

func TestUnmarshalOverflowHeader(t *testing.T) {
	// m ≥ 2^64−63 used to wrap the words computation to 0, so a 24-byte
	// payload passed the length check and the first Contains panicked with an
	// out-of-range index.
	buf := make([]byte, 24)
	binary.LittleEndian.PutUint64(buf[0:], math.MaxUint64) // m
	binary.LittleEndian.PutUint64(buf[8:], 3)              // k
	binary.LittleEndian.PutUint64(buf[16:], 1)             // n
	f, err := Unmarshal(buf)
	if err != ErrCorrupt {
		t.Fatalf("overflowing m: err = %v, want ErrCorrupt", err)
	}
	if f != nil {
		f.ContainsString("boom") // would panic before the fix
	}

	// An absurd hash-function count is equally bogus even with a sane m.
	g := New(128, 3)
	b := g.Marshal()
	binary.LittleEndian.PutUint64(b[8:], 100000)
	if _, err := Unmarshal(b); err != ErrCorrupt {
		t.Fatalf("absurd k: err = %v, want ErrCorrupt", err)
	}
}

func TestDegenerateSizes(t *testing.T) {
	f := New(0, 0) // clamped internally
	f.AddString("x")
	if !f.ContainsString("x") {
		t.Fatal("clamped filter lost key")
	}
	g := NewWithEstimates(0, -1)
	g.AddString("y")
	if !g.ContainsString("y") {
		t.Fatal("clamped estimate filter lost key")
	}
}

func TestQuickAddedAlwaysContained(t *testing.T) {
	f := NewWithEstimates(4096, 0.01)
	prop := func(key []byte) bool {
		f.Add(key)
		return f.Contains(key)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestEstimatedFPGrows(t *testing.T) {
	f := NewWithEstimates(100, 0.01)
	before := f.EstimatedFP()
	for i := 0; i < 100; i++ {
		f.AddString(fmt.Sprintf("k%d", i))
	}
	if after := f.EstimatedFP(); after <= before {
		t.Fatalf("EstimatedFP did not grow: %v -> %v", before, after)
	}
}
