// Package bloom implements a classic Bloom filter with double hashing
// (Kirsch–Mitzenmacher). The dedup cache manager keeps one in memory per
// persisted HitSet, mirroring Ceph's bloom-backed HitSet existence check
// (paper §5, "Cache management").
package bloom

import (
	"encoding/binary"
	"errors"
	"math"

	"dedupstore/internal/xxh"
)

// Filter is a fixed-size Bloom filter. The zero value is not usable; create
// one with New or NewWithEstimates.
type Filter struct {
	bits []uint64
	m    uint64 // number of bits
	k    uint64 // hash functions
	n    uint64 // inserted elements
}

// New creates a filter with m bits and k hash functions.
func New(m, k uint64) *Filter {
	if m == 0 {
		m = 64
	}
	if k == 0 {
		k = 1
	}
	return &Filter{bits: make([]uint64, (m+63)/64), m: m, k: k}
}

// NewWithEstimates sizes a filter for n expected insertions at false-positive
// probability fp.
func NewWithEstimates(n uint64, fp float64) *Filter {
	if n == 0 {
		n = 1
	}
	if fp <= 0 || fp >= 1 {
		fp = 0.01
	}
	m := uint64(math.Ceil(-float64(n) * math.Log(fp) / (math.Ln2 * math.Ln2)))
	k := uint64(math.Round(float64(m) / float64(n) * math.Ln2))
	if k == 0 {
		k = 1
	}
	return New(m, k)
}

// Add inserts key.
func (f *Filter) Add(key []byte) {
	h1 := xxh.HashBytes(0x5bd1e995, key)
	h2 := xxh.HashBytes(0xc2b2ae35, key) | 1
	for i := uint64(0); i < f.k; i++ {
		bit := (h1 + i*h2) % f.m
		f.bits[bit/64] |= 1 << (bit % 64)
	}
	f.n++
}

// AddString inserts a string key.
func (f *Filter) AddString(key string) { f.Add([]byte(key)) }

// Contains reports whether key may have been inserted (false positives
// possible, false negatives impossible).
func (f *Filter) Contains(key []byte) bool {
	h1 := xxh.HashBytes(0x5bd1e995, key)
	h2 := xxh.HashBytes(0xc2b2ae35, key) | 1
	for i := uint64(0); i < f.k; i++ {
		bit := (h1 + i*h2) % f.m
		if f.bits[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// ContainsString reports membership of a string key.
func (f *Filter) ContainsString(key string) bool { return f.Contains([]byte(key)) }

// Count returns the number of Add calls.
func (f *Filter) Count() uint64 { return f.n }

// EstimatedFP returns the current expected false-positive probability given
// the number of insertions so far.
func (f *Filter) EstimatedFP() float64 {
	return math.Pow(1-math.Exp(-float64(f.k)*float64(f.n)/float64(f.m)), float64(f.k))
}

// Reset clears the filter.
func (f *Filter) Reset() {
	for i := range f.bits {
		f.bits[i] = 0
	}
	f.n = 0
}

// Marshal serializes the filter (persisted alongside HitSets).
func (f *Filter) Marshal() []byte {
	out := make([]byte, 24+8*len(f.bits))
	binary.LittleEndian.PutUint64(out[0:], f.m)
	binary.LittleEndian.PutUint64(out[8:], f.k)
	binary.LittleEndian.PutUint64(out[16:], f.n)
	for i, w := range f.bits {
		binary.LittleEndian.PutUint64(out[24+8*i:], w)
	}
	return out
}

// ErrCorrupt reports a malformed serialized filter.
var ErrCorrupt = errors.New("bloom: corrupt serialized filter")

// Unmarshal deserializes a filter produced by Marshal.
func Unmarshal(b []byte) (*Filter, error) {
	if len(b) < 24 {
		return nil, ErrCorrupt
	}
	m := binary.LittleEndian.Uint64(b[0:])
	k := binary.LittleEndian.Uint64(b[8:])
	n := binary.LittleEndian.Uint64(b[16:])
	// m ≥ 2^64−63 would wrap m+63 below, letting a tiny bits slice pass the
	// length check and the first Contains index out of range. No legitimate
	// filter is remotely that large (or uses hundreds of hash functions), so
	// reject absurd headers outright.
	if m == 0 || m > math.MaxUint64-63 || k == 0 || k > 256 {
		return nil, ErrCorrupt
	}
	words := int((m + 63) / 64)
	if len(b) != 24+8*words {
		return nil, ErrCorrupt
	}
	f := New(m, k)
	f.n = n
	for i := 0; i < words; i++ {
		f.bits[i] = binary.LittleEndian.Uint64(b[24+8*i:])
	}
	return f, nil
}
