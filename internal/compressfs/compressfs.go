// Package compressfs models node-local filesystem compression (the Btrfs
// transparent-compression role in the paper's Fig. 13 experiment): it
// reports how many bytes an object's data actually occupies on disk when
// the local filesystem compresses it.
package compressfs

import (
	"bytes"
	"compress/flate"
)

// SizeFn maps object data to its on-disk footprint in bytes.
type SizeFn func(data []byte) int

// Identity reports the uncompressed size (no filesystem compression).
func Identity(data []byte) int { return len(data) }

// Flate returns a SizeFn that measures the DEFLATE-compressed footprint at
// the given level (flate.BestSpeed mirrors Btrfs's fast-path behaviour).
// Data that does not compress (footprint would exceed input) is stored raw,
// as real filesystems do.
func Flate(level int) SizeFn {
	return func(data []byte) int {
		if len(data) == 0 {
			return 0
		}
		var buf bytes.Buffer
		w, err := flate.NewWriter(&buf, level)
		if err != nil {
			return len(data)
		}
		if _, err := w.Write(data); err != nil {
			return len(data)
		}
		if err := w.Close(); err != nil {
			return len(data)
		}
		if buf.Len() >= len(data) {
			return len(data)
		}
		return buf.Len()
	}
}

// Default is the fast compression used by the Fig. 13 experiment.
func Default() SizeFn { return Flate(flate.BestSpeed) }
