package compressfs

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestIdentity(t *testing.T) {
	if Identity(make([]byte, 100)) != 100 {
		t.Fatal("identity size wrong")
	}
}

func TestFlateCompressesZeros(t *testing.T) {
	fn := Default()
	if got := fn(make([]byte, 1<<20)); got > 8<<10 {
		t.Fatalf("1MB of zeros stored as %d bytes", got)
	}
}

func TestFlateIncompressibleStoredRaw(t *testing.T) {
	fn := Default()
	data := make([]byte, 64<<10)
	rand.New(rand.NewSource(1)).Read(data)
	if got := fn(data); got > len(data) {
		t.Fatalf("incompressible data stored as %d > %d raw bytes", got, len(data))
	}
}

func TestFlateTextLikeContent(t *testing.T) {
	fn := Default()
	data := bytes.Repeat([]byte("configuration=/usr/share/package/default;"), 2000)
	got := fn(data)
	if got >= len(data)/4 {
		t.Fatalf("repetitive text compressed only to %d/%d", got, len(data))
	}
}

func TestEmpty(t *testing.T) {
	if Default()(nil) != 0 {
		t.Fatal("empty data has nonzero footprint")
	}
}

func TestDeterministic(t *testing.T) {
	fn := Default()
	data := bytes.Repeat([]byte("abc123"), 5000)
	if fn(data) != fn(data) {
		t.Fatal("footprint not deterministic")
	}
}
