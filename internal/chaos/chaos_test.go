package chaos

import (
	"fmt"
	"testing"
	"time"

	"dedupstore/internal/rados"
	"dedupstore/internal/sim"
	"dedupstore/internal/simcost"
)

func newCluster(seed int64) (*sim.Engine, *rados.Cluster) {
	eng := sim.New(seed)
	return eng, rados.NewTestbed(eng, simcost.Default(), 4, 4)
}

func TestInjectorAppliesAndReverts(t *testing.T) {
	eng, c := newCluster(1)
	in := NewInjector(c)
	in.Apply(Schedule{
		{At: 10 * time.Millisecond, Kind: KindCrashOSD, OSD: 3, Duration: 50 * time.Millisecond},
		{At: 20 * time.Millisecond, Kind: KindSlowDisk, OSD: 7, Factor: 4, Duration: 30 * time.Millisecond},
		{At: 30 * time.Millisecond, Kind: KindCrashHost, Host: "host2", Duration: 40 * time.Millisecond},
		{At: 40 * time.Millisecond, Kind: KindSlowNIC, Host: "host1", Factor: 3, Duration: 10 * time.Millisecond},
	})

	// Probe liveness at points between the fault edges.
	type probe struct {
		at    time.Duration
		check func()
	}
	probes := []probe{
		{15 * time.Millisecond, func() {
			if c.OSDAlive(3) {
				t.Error("osd.3 alive at t=15ms, crashed at 10ms")
			}
		}},
		{45 * time.Millisecond, func() {
			for _, id := range c.HostOSDs("host2") {
				if c.OSDAlive(id) {
					t.Errorf("host2 osd.%d alive at t=45ms, host crashed at 30ms", id)
				}
			}
		}},
		{65 * time.Millisecond, func() {
			if !c.OSDAlive(3) {
				t.Error("osd.3 dead at t=65ms, revert was due at 60ms")
			}
		}},
		{80 * time.Millisecond, func() {
			for _, id := range c.HostOSDs("host2") {
				if !c.OSDAlive(id) {
					t.Errorf("host2 osd.%d dead at t=80ms, revert was due at 70ms", id)
				}
			}
		}},
	}
	for _, pr := range probes {
		pr := pr
		eng.After(pr.at, pr.check)
	}
	if left := eng.Run(); left != 0 {
		t.Fatalf("%d processes left blocked", left)
	}

	evs := in.Events()
	// 4 faults + 4 reverts, all error-free.
	if len(evs) != 8 {
		t.Fatalf("got %d events, want 8: %v", len(evs), evs)
	}
	for _, ev := range evs {
		if ev.Err != "" {
			t.Errorf("event %v failed: %s", ev, ev.Err)
		}
	}
	if got := c.Metrics().Counter("chaos_faults_total").Value(); got != 4 {
		t.Errorf("chaos_faults_total = %d, want 4", got)
	}
	if got := c.Metrics().Counter("chaos_faults_total:crash-osd").Value(); got != 1 {
		t.Errorf("chaos_faults_total:crash-osd = %d, want 1", got)
	}
}

func TestInjectorRecordsErrors(t *testing.T) {
	eng, c := newCluster(1)
	in := NewInjector(c)
	in.Apply(Schedule{
		{At: time.Millisecond, Kind: KindCrashOSD, OSD: 99},
		{At: 2 * time.Millisecond, Kind: KindCrashHost, Host: "nope"},
	})
	eng.Run()
	evs := in.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	for _, ev := range evs {
		if ev.Err == "" {
			t.Errorf("event %v should have failed", ev)
		}
	}
	if got := c.Metrics().Counter("chaos_faults_total").Value(); got != 0 {
		t.Errorf("failed faults counted: chaos_faults_total = %d", got)
	}
}

// timeline runs a generated schedule against a fresh cluster and returns a
// canonical string of everything observable: injector events and fault
// counters.
func timeline(seed int64) string {
	eng, c := newCluster(seed)
	cfg := GenConfig{
		Faults:     6,
		Horizon:    2 * time.Second,
		OSDs:       c.OSDs(),
		Hosts:      []string{"host0", "host1", "host2", "host3"},
		MaxCrashed: 1,
	}
	in := NewInjector(c)
	in.Apply(Generate(seed, cfg))
	eng.Run()
	out := ""
	for _, ev := range in.Events() {
		out += ev.String() + "\n"
	}
	out += fmt.Sprintf("faults=%d\n", c.Metrics().Counter("chaos_faults_total").Value())
	return out
}

func TestGenerateDeterministic(t *testing.T) {
	a, b := timeline(7), timeline(7)
	if a != b {
		t.Fatalf("same seed diverged:\n--- run 1 ---\n%s--- run 2 ---\n%s", a, b)
	}
	if a == timeline(8) {
		t.Fatal("different seeds produced identical timelines")
	}
}

func TestGenerateRespectsMaxCrashed(t *testing.T) {
	_, c := newCluster(1)
	s := Generate(3, GenConfig{
		Faults:     12,
		Horizon:    5 * time.Second,
		OSDs:       c.OSDs(),
		Hosts:      []string{"host0", "host1", "host2", "host3"},
		MaxCrashed: 1,
		Kinds:      []Kind{KindCrashOSD},
	})
	if len(s) == 0 {
		t.Fatal("empty schedule")
	}
	// With MaxCrashed=1 no two crash windows may overlap.
	for i := range s {
		for j := i + 1; j < len(s); j++ {
			a, b := s[i], s[j]
			if a.At < b.At+b.Duration && b.At < a.At+a.Duration {
				t.Fatalf("crash windows overlap: %v and %v", a, b)
			}
		}
	}
}

func TestCrashBurst(t *testing.T) {
	osds := []int{3, 5, 7}
	s := CrashBurst(osds, 5, time.Second, 6*time.Second, 900*time.Millisecond)
	if len(s) != 5 {
		t.Fatalf("got %d faults, want 5", len(s))
	}
	for i, f := range s {
		if f.Kind != KindCrashOSD {
			t.Errorf("fault %d kind = %s", i, f.Kind)
		}
		if f.OSD != osds[i%len(osds)] {
			t.Errorf("fault %d targets osd.%d, want osd.%d", i, f.OSD, osds[i%len(osds)])
		}
		want := time.Second + 6*time.Second*time.Duration(i)/5
		if f.At != want {
			t.Errorf("fault %d at %v, want %v", i, f.At, want)
		}
	}
	// Spacing (1.2s) exceeds the down time (0.9s): windows must not overlap.
	for i := 1; i < len(s); i++ {
		if s[i-1].At+s[i-1].Duration > s[i].At {
			t.Fatalf("crash windows overlap: %v then %v", s[i-1], s[i])
		}
	}
	if CrashBurst(nil, 5, 0, time.Second, time.Second) != nil {
		t.Error("expected nil schedule without targets")
	}
	if CrashBurst(osds, 0, 0, time.Second, time.Second) != nil {
		t.Error("expected nil schedule for n=0")
	}
}
