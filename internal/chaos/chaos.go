// Package chaos injects deterministic faults into a simulated cluster.
//
// A Schedule is a list of timed faults — OSD/host crashes and restarts,
// transient slow disks, NIC degradation — executed on the simulation's
// virtual clock via Engine.After, so a given (schedule, seed) pair replays
// bit-for-bit: the same faults land between the same I/O events on every
// run. Schedules are either written by hand or drawn deterministically from
// a seed with Generate.
//
// The injector only flips fault state; detection and reaction live
// elsewhere (the rados heartbeat Monitor marks crashed OSDs down/out and
// triggers recovery, clients ride out the window with retries). That split
// mirrors the real system: a dying disk does not announce itself.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"dedupstore/internal/rados"
	"dedupstore/internal/sim"
)

// Kind names a fault type.
type Kind string

const (
	// KindCrashOSD kills one OSD process. Its on-disk state survives; any
	// writes it misses while dead are wiped on restart (crash-consistency:
	// the journal replay that would reconcile them is not modeled).
	KindCrashOSD Kind = "crash-osd"
	// KindRestartOSD brings a crashed OSD process back.
	KindRestartOSD Kind = "restart-osd"
	// KindCrashHost kills every OSD process on one host.
	KindCrashHost Kind = "crash-host"
	// KindRestartHost restarts every OSD process on one host.
	KindRestartHost Kind = "restart-host"
	// KindSlowDisk multiplies one OSD's disk service time by Factor
	// (a failing drive retrying sectors).
	KindSlowDisk Kind = "slow-disk"
	// KindSlowNIC multiplies one host's NIC serialization time by Factor
	// (link renegotiated down, duplex mismatch).
	KindSlowNIC Kind = "slow-nic"
)

// Fault is one scheduled fault.
type Fault struct {
	// At is the virtual-time offset from Injector.Apply at which the fault
	// fires.
	At time.Duration
	// Kind selects the fault type.
	Kind Kind
	// OSD targets crash-osd, restart-osd and slow-disk.
	OSD int
	// Host targets crash-host, restart-host and slow-nic.
	Host string
	// Factor is the slowdown multiplier for slow-disk / slow-nic (> 1).
	Factor float64
	// Duration, when > 0, auto-reverts the fault after this long: crashed
	// OSDs/hosts restart, slow disks/NICs return to nominal speed.
	// Ignored for restart faults.
	Duration time.Duration
}

func (f Fault) String() string {
	switch f.Kind {
	case KindCrashHost, KindRestartHost, KindSlowNIC:
		return fmt.Sprintf("%s(%s)", f.Kind, f.Host)
	default:
		return fmt.Sprintf("%s(osd.%d)", f.Kind, f.OSD)
	}
}

// Schedule is an ordered set of faults. Apply sorts it by At (stable, so
// equal-time faults keep their written order).
type Schedule []Fault

// Event records one injector action on the availability timeline.
type Event struct {
	At     sim.Time
	Fault  Fault
	Revert bool   // true when this is the auto-revert of a timed fault
	Err    string // non-empty when the action failed (e.g. unknown OSD)
}

func (e Event) String() string {
	tag := ""
	if e.Revert {
		tag = " revert"
	}
	if e.Err != "" {
		tag += " err=" + e.Err
	}
	return fmt.Sprintf("%v %v%s", e.At, e.Fault, tag)
}

// Injector executes fault schedules against one cluster.
type Injector struct {
	c      *rados.Cluster
	events []Event
}

// NewInjector returns an injector bound to c.
func NewInjector(c *rados.Cluster) *Injector {
	return &Injector{c: c}
}

// Apply schedules every fault in s relative to the current virtual time.
// Call it before Engine.Run (or from a running process); the timers count
// as foreground work, so the simulation does not end with faults pending.
func (in *Injector) Apply(s Schedule) {
	sched := make(Schedule, len(s))
	copy(sched, s)
	sort.SliceStable(sched, func(i, j int) bool { return sched[i].At < sched[j].At })
	eng := in.c.Engine()
	for _, f := range sched {
		f := f
		eng.After(f.At, func() { in.fire(f, false) })
		if f.Duration > 0 && f.Kind != KindRestartOSD && f.Kind != KindRestartHost {
			eng.After(f.At+f.Duration, func() { in.fire(f, true) })
		}
	}
}

// Events returns the actions taken so far, in firing order.
func (in *Injector) Events() []Event {
	out := make([]Event, len(in.events))
	copy(out, in.events)
	return out
}

// fire applies one fault (or its revert). Runs as an Engine.After callback:
// it must not park, and none of the cluster fault hooks do.
func (in *Injector) fire(f Fault, revert bool) {
	var err error
	switch f.Kind {
	case KindCrashOSD:
		if revert {
			err = in.c.RestartOSD(f.OSD)
		} else {
			err = in.c.CrashOSD(f.OSD)
		}
	case KindRestartOSD:
		err = in.c.RestartOSD(f.OSD)
	case KindCrashHost, KindRestartHost:
		restart := f.Kind == KindRestartHost || revert
		ids := in.c.HostOSDs(f.Host)
		if len(ids) == 0 {
			err = fmt.Errorf("chaos: no OSDs on host %q", f.Host)
		}
		for _, id := range ids {
			var e error
			if restart {
				e = in.c.RestartOSD(id)
			} else {
				e = in.c.CrashOSD(id)
			}
			if e != nil && err == nil {
				err = e
			}
		}
	case KindSlowDisk:
		if revert {
			err = in.c.SetOSDSlow(f.OSD, 1)
		} else {
			err = in.c.SetOSDSlow(f.OSD, f.Factor)
		}
	case KindSlowNIC:
		if revert {
			err = in.c.SetNICSlow(f.Host, 1)
		} else {
			err = in.c.SetNICSlow(f.Host, f.Factor)
		}
	default:
		err = fmt.Errorf("chaos: unknown fault kind %q", f.Kind)
	}
	ev := Event{At: in.c.Engine().Now(), Fault: f, Revert: revert}
	if err != nil {
		ev.Err = err.Error()
	} else if !revert {
		in.c.Metrics().Counter("chaos_faults_total").Inc()
		in.c.Metrics().Counter("chaos_faults_total:" + string(f.Kind)).Inc()
	}
	in.events = append(in.events, ev)
}

// CrashBurst builds a deterministic high-rate kill schedule: n OSD crashes
// spread evenly over [start, start+span), each lasting down, cycling through
// the target OSDs in order. Unlike Generate it uses no randomness at all, so
// the burst is identical for every seed — the point is to hammer a specific
// window (a flush cycle, a GC pass) with kills at a rate Generate's overlap
// cap would reject. Keep down below the inter-crash spacing (span/n) if the
// pools only tolerate one dead OSD at a time.
func CrashBurst(osds []int, n int, start, span, down time.Duration) Schedule {
	if n <= 0 || len(osds) == 0 {
		return nil
	}
	s := make(Schedule, 0, n)
	for i := 0; i < n; i++ {
		s = append(s, Fault{
			At:       start + span*time.Duration(i)/time.Duration(n),
			Kind:     KindCrashOSD,
			OSD:      osds[i%len(osds)],
			Duration: down,
		})
	}
	return s
}

// GenConfig bounds a generated schedule.
type GenConfig struct {
	// Faults is how many faults to draw.
	Faults int
	// Horizon is the window faults are spread over (At drawn uniformly).
	Horizon time.Duration
	// OSDs and Hosts are the candidate targets (typically Cluster.OSDs()
	// and the host name list).
	OSDs  []int
	Hosts []string
	// MaxCrashed caps how many OSD processes may be dead at once, so a
	// generated schedule cannot exceed the pools' failure tolerance.
	// Zero means 1.
	MaxCrashed int
	// Kinds is the fault mix to draw from; nil means all kinds except
	// explicit restarts (crashes are timed, so restarts are implicit).
	Kinds []Kind
}

// Generate draws a reproducible random schedule: same seed and config,
// same schedule. Crash faults get a bounded Duration so the cluster always
// returns to full strength, and the MaxCrashed cap is enforced against the
// overlap of crash windows (host crashes counting every OSD on the host).
func Generate(seed int64, cfg GenConfig) Schedule {
	rng := rand.New(rand.NewSource(seed))
	if cfg.Faults <= 0 || cfg.Horizon <= 0 {
		return nil
	}
	if cfg.MaxCrashed < 1 {
		cfg.MaxCrashed = 1
	}
	kinds := cfg.Kinds
	if kinds == nil {
		kinds = []Kind{KindCrashOSD, KindCrashHost, KindSlowDisk, KindSlowNIC}
	}
	// crashed tracks [start, end) windows of dead-OSD counts for the
	// MaxCrashed overlap check.
	type window struct {
		start, end time.Duration
		n          int
	}
	var windows []window
	overlap := func(start, end time.Duration, n int) bool {
		peak := n
		for _, w := range windows {
			if start < w.end && w.start < end {
				peak += w.n
			}
		}
		return peak > cfg.MaxCrashed
	}
	var s Schedule
	for tries := 0; len(s) < cfg.Faults && tries < cfg.Faults*20; tries++ {
		k := kinds[rng.Intn(len(kinds))]
		at := time.Duration(rng.Int63n(int64(cfg.Horizon)))
		switch k {
		case KindCrashOSD:
			if len(cfg.OSDs) == 0 {
				continue
			}
			d := cfg.Horizon/4 + time.Duration(rng.Int63n(int64(cfg.Horizon/4)))
			if overlap(at, at+d, 1) {
				continue
			}
			windows = append(windows, window{at, at + d, 1})
			s = append(s, Fault{At: at, Kind: k, OSD: cfg.OSDs[rng.Intn(len(cfg.OSDs))], Duration: d})
		case KindCrashHost:
			if len(cfg.Hosts) == 0 {
				continue
			}
			h := cfg.Hosts[rng.Intn(len(cfg.Hosts))]
			n := len(cfg.OSDs) / len(cfg.Hosts)
			if n < 1 {
				n = 1
			}
			d := cfg.Horizon/4 + time.Duration(rng.Int63n(int64(cfg.Horizon/4)))
			if overlap(at, at+d, n) {
				continue
			}
			windows = append(windows, window{at, at + d, n})
			s = append(s, Fault{At: at, Kind: k, Host: h, Duration: d})
		case KindSlowDisk:
			if len(cfg.OSDs) == 0 {
				continue
			}
			s = append(s, Fault{
				At: at, Kind: k,
				OSD:      cfg.OSDs[rng.Intn(len(cfg.OSDs))],
				Factor:   2 + rng.Float64()*8,
				Duration: time.Duration(rng.Int63n(int64(cfg.Horizon / 4))),
			})
		case KindSlowNIC:
			if len(cfg.Hosts) == 0 {
				continue
			}
			s = append(s, Fault{
				At: at, Kind: k,
				Host:     cfg.Hosts[rng.Intn(len(cfg.Hosts))],
				Factor:   2 + rng.Float64()*6,
				Duration: time.Duration(rng.Int63n(int64(cfg.Horizon / 4))),
			})
		case KindRestartOSD:
			if len(cfg.OSDs) == 0 {
				continue
			}
			s = append(s, Fault{At: at, Kind: k, OSD: cfg.OSDs[rng.Intn(len(cfg.OSDs))]})
		case KindRestartHost:
			if len(cfg.Hosts) == 0 {
				continue
			}
			s = append(s, Fault{At: at, Kind: k, Host: cfg.Hosts[rng.Intn(len(cfg.Hosts))]})
		}
	}
	sort.SliceStable(s, func(i, j int) bool { return s[i].At < s[j].At })
	return s
}
