package workload

import (
	"fmt"
	"math/rand"
	"time"

	"dedupstore/internal/client"
	"dedupstore/internal/metrics"
	"dedupstore/internal/sim"
)

// SPEC SFS 2014 database-workload model (§6.4.1). Three properties of the
// real benchmark matter for reproducing the paper's results:
//
//  1. It issues a FIXED number of requests per second per load unit,
//     open-loop ("the database workload in SPEC SFS 2014 issues fixed
//     number of requests per second"): a configuration that cannot sustain
//     the rate builds queues and its latency explodes — exactly the EC
//     behaviour in Fig. 12 (latencies of seconds).
//  2. Its dataset redundancy grows with the load level (Fig. 3: 36%/81%/93%
//     dedupable at LD1/LD3/LD10): load units are consolidated database
//     instances sharing page extents.
//  3. Redundancy lives in DB extents (32K), so it survives the paper's 32K
//     chunking.
//
// The model drives DB-page traffic (random 8K reads/writes over TABLE
// regions plus sequential 64K LOG writes) at a fixed request rate per load
// unit over a dataset built from shared 32K extents.
type SFSConfig struct {
	// Loads is the benchmark's load metric (LD1/LD3/LD10).
	Loads int
	// BytesPerLoad is each load unit's dataset size.
	BytesPerLoad int64
	// OpsPerSecPerLoad is the fixed request rate each load unit issues.
	OpsPerSecPerLoad float64
	// WorkersPerLoad is each load unit's service concurrency; requests
	// beyond it queue (open-loop latency includes queueing).
	WorkersPerLoad int
	// Duration bounds the measured phase.
	Duration time.Duration
	// PageSize is the DB page size (8K).
	PageSize int64
	Seed     int64
}

func (c *SFSConfig) defaults() {
	if c.Loads <= 0 {
		c.Loads = 1
	}
	if c.BytesPerLoad <= 0 {
		c.BytesPerLoad = 2 << 20
	}
	if c.OpsPerSecPerLoad <= 0 {
		c.OpsPerSecPerLoad = 200
	}
	if c.WorkersPerLoad <= 0 {
		c.WorkersPerLoad = 2
	}
	if c.Duration <= 0 {
		c.Duration = 30 * time.Second
	}
	if c.PageSize <= 0 {
		c.PageSize = 8 << 10
	}
}

// extentSize is the DB extent granularity redundancy lives at.
const extentSize = 32 << 10

// Shared-pool calibration (see package docs): ~1% of extents are unique to
// a load unit; the shared pool holds ~63% of a unit's extent count,
// matching Fig. 3's LD1/LD3/LD10 global dedup ratios.
const (
	sfsUniqueFrac = 0.01
	sfsPoolFrac   = 0.63
)

// SFSGen produces extent/page contents for one cluster-wide SFS dataset.
type SFSGen struct {
	cfg  SFSConfig
	pool *BlockPool // 32K shared extents
	n    int64      // pool size in extents
	rng  *rand.Rand
	uniq int64
}

// NewSFSGen creates the generator.
func NewSFSGen(cfg SFSConfig) *SFSGen {
	cfg.defaults()
	extentsPerLoad := cfg.BytesPerLoad / extentSize
	n := int64(float64(extentsPerLoad) * sfsPoolFrac)
	if n < 1 {
		n = 1
	}
	return &SFSGen{
		cfg:  cfg,
		pool: NewBlockPool(extentSize, cfg.Seed+13, false),
		n:    n,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Extent returns the next 32K extent content for dataset builds.
func (g *SFSGen) Extent() []byte {
	buf := make([]byte, extentSize)
	if g.rng.Float64() < sfsUniqueFrac {
		g.uniq++
		fillRandom(buf, g.cfg.Seed*104729+g.uniq)
	} else {
		g.pool.Block(g.rng.Int63n(g.n), buf)
	}
	return buf
}

// Page returns an 8K page for random overwrites: one quarter of a pool
// extent, so most overwrites keep the dataset dedupable.
func (g *SFSGen) Page() []byte {
	if g.rng.Float64() < sfsUniqueFrac {
		g.uniq++
		buf := make([]byte, g.cfg.PageSize)
		fillRandom(buf, g.cfg.Seed*104729+g.uniq)
		return buf
	}
	ext := make([]byte, extentSize)
	g.pool.Block(g.rng.Int63n(g.n), ext)
	q := g.rng.Int63n(extentSize / g.cfg.PageSize)
	return ext[q*g.cfg.PageSize : (q+1)*g.cfg.PageSize]
}

// SFSOpMix is the database workload's operation mix: predominantly random
// page reads, a significant random-write stream, and sequential log writes.
var SFSOpMix = struct {
	RandReadPct, RandWritePct, LogWritePct float64
}{50, 38, 12}

// SFSResult aggregates one SFS run with per-op-class recorders.
type SFSResult struct {
	Config    SFSConfig
	Read      *metrics.Recorder
	Write     *metrics.Recorder
	LogWrite  *metrics.Recorder
	Elapsed   sim.Time
	Errors    int
	OpsWanted int64
	OpsDone   int64
}

// TotalThroughput returns MB/s across all op classes.
func (r SFSResult) TotalThroughput() float64 {
	return r.Read.Throughput(r.Elapsed) + r.Write.Throughput(r.Elapsed) + r.LogWrite.Throughput(r.Elapsed)
}

// TotalIOPS returns ops/s across all op classes.
func (r SFSResult) TotalIOPS() float64 {
	return r.Read.IOPS(r.Elapsed) + r.Write.IOPS(r.Elapsed) + r.LogWrite.IOPS(r.Elapsed)
}

// MeanLatency returns the op-weighted mean latency.
func (r SFSResult) MeanLatency() time.Duration {
	tot := r.Read.Lat.Count() + r.Write.Lat.Count() + r.LogWrite.Lat.Count()
	if tot == 0 {
		return 0
	}
	sum := time.Duration(r.Read.Lat.Count())*r.Read.Lat.Mean() +
		time.Duration(r.Write.Lat.Count())*r.Write.Lat.Mean() +
		time.Duration(r.LogWrite.Lat.Count())*r.LogWrite.Lat.Mean()
	return sum / time.Duration(tot)
}

// BuildSFSDataset populates each load unit's device region with 32K extents
// (run once before the measured phase).
func BuildSFSDataset(p *sim.Proc, dev *client.BlockDevice, cfg SFSConfig) error {
	cfg.defaults()
	gen := NewSFSGen(cfg)
	var sigs []*sim.Signal
	errs := 0
	for u := 0; u < cfg.Loads; u++ {
		base := int64(u) * cfg.BytesPerLoad
		sigs = append(sigs, p.Go(fmt.Sprintf("sfs.build.%d", u), func(q *sim.Proc) {
			for off := int64(0); off+extentSize <= cfg.BytesPerLoad; off += extentSize {
				if err := dev.WriteAt(q, base+off, gen.Extent()); err != nil {
					errs++
					return
				}
			}
		}))
	}
	sim.WaitAll(p, sigs...)
	if errs > 0 {
		return fmt.Errorf("workload: sfs build failed on %d units", errs)
	}
	return nil
}

// sfsOp is one scheduled request.
type sfsOp struct {
	at   sim.Time // scheduled issue time (open-loop)
	kind int      // 0 read, 1 write, 2 log write
	off  int64
}

// RunSFS drives the measured phase open-loop: each load unit schedules
// requests at its fixed rate; WorkersPerLoad workers serve them. Latency is
// measured from the scheduled time, so an overloaded configuration shows
// queue growth as rising latency (the paper's EC curves).
func RunSFS(p *sim.Proc, dev *client.BlockDevice, cfg SFSConfig) SFSResult {
	cfg.defaults()
	gen := NewSFSGen(cfg)
	res := SFSResult{
		Config: cfg,
		Read:   metrics.NewRecorder(), Write: metrics.NewRecorder(), LogWrite: metrics.NewRecorder(),
	}
	start := p.Now()
	interval := time.Duration(float64(time.Second) / cfg.OpsPerSecPerLoad)
	var sigs []*sim.Signal
	for u := 0; u < cfg.Loads; u++ {
		u := u
		base := int64(u) * cfg.BytesPerLoad
		rng := rand.New(rand.NewSource(cfg.Seed + int64(u)*31))
		pages := cfg.BytesPerLoad / cfg.PageSize
		logCursor := int64(0)
		queue := sim.NewQueue[sfsOp]()

		// Scheduler: enqueue requests at the fixed rate.
		sigs = append(sigs, p.Go(fmt.Sprintf("sfs.sched%d", u), func(q *sim.Proc) {
			deadline := start + sim.Time(cfg.Duration)
			for q.Now() < deadline {
				res.OpsWanted++
				op := sfsOp{at: q.Now()}
				dice := rng.Float64() * 100
				switch {
				case dice < SFSOpMix.RandReadPct:
					op.kind = 0
					op.off = base + rng.Int63n(pages)*cfg.PageSize
				case dice < SFSOpMix.RandReadPct+SFSOpMix.RandWritePct:
					op.kind = 1
					op.off = base + rng.Int63n(pages)*cfg.PageSize
				default:
					op.kind = 2
					logSize := int64(64 << 10)
					logRegion := cfg.BytesPerLoad / 8 / logSize * logSize
					if logRegion < logSize {
						logRegion = logSize
					}
					op.off = base + (logCursor%logRegion/logSize)*logSize
					logCursor += logSize
				}
				queue.Push(q, op)
				q.Sleep(interval)
			}
			queue.Close(q)
		}))

		// Workers: serve queued requests.
		for w := 0; w < cfg.WorkersPerLoad; w++ {
			sigs = append(sigs, p.Go(fmt.Sprintf("sfs.load%d.w%d", u, w), func(q *sim.Proc) {
				for {
					op, ok := queue.Pop(q)
					if !ok {
						return
					}
					switch op.kind {
					case 0:
						if data, err := dev.ReadAt(q, op.off, cfg.PageSize); err != nil {
							res.Errors++
						} else {
							res.Read.Record(q.Now(), (q.Now() - op.at).Duration(), len(data))
						}
					case 1:
						if err := dev.WriteAt(q, op.off, gen.Page()); err != nil {
							res.Errors++
						} else {
							res.Write.Record(q.Now(), (q.Now() - op.at).Duration(), int(cfg.PageSize))
						}
					default:
						logSize := 64 << 10
						buf := make([]byte, logSize)
						fillRandom(buf, cfg.Seed+op.at.Duration().Nanoseconds()+int64(u))
						if err := dev.WriteAt(q, op.off, buf); err != nil {
							res.Errors++
						} else {
							res.LogWrite.Record(q.Now(), (q.Now() - op.at).Duration(), logSize)
						}
					}
					res.OpsDone++
				}
			}))
		}
	}
	sim.WaitAll(p, sigs...)
	res.Elapsed = p.Now() - start
	return res
}
