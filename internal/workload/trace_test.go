package workload

import (
	"bytes"
	"strings"
	"testing"

	"dedupstore/internal/client"
	"dedupstore/internal/rados"
	"dedupstore/internal/sim"
	"dedupstore/internal/simcost"
)

func TestParseTrace(t *testing.T) {
	in := `# comment
100 W 0 4096 42
250 R 0 4096

300 w 8192 4096
`
	ops, err := ParseTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 3 {
		t.Fatalf("ops = %d", len(ops))
	}
	if !ops[0].Write || ops[0].Seed != 42 || ops[0].Length != 4096 {
		t.Fatalf("op0 = %+v", ops[0])
	}
	if ops[1].Write {
		t.Fatal("op1 should be a read")
	}
	if !ops[2].Write || ops[2].Seed == 0 {
		t.Fatalf("op2 = %+v (lowercase op, default seed)", ops[2])
	}
}

func TestParseTraceErrors(t *testing.T) {
	for _, bad := range []string{
		"100 X 0 4096",   // unknown op
		"abc W 0 4096",   // bad ts
		"100 W -1 4096",  // negative offset
		"100 W 0 0",      // zero length
		"100 W",          // too few fields
		"100 W 0 4096 x", // bad seed
	} {
		if _, err := ParseTrace(strings.NewReader(bad)); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	ops := SynthesizeTrace(1<<20, 8<<10, 50, 50, 7)
	var buf bytes.Buffer
	if err := FormatTrace(&buf, ops); err != nil {
		t.Fatal(err)
	}
	got, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ops) {
		t.Fatalf("%d != %d ops", len(got), len(ops))
	}
	for i := range ops {
		// Reads don't round-trip their seed (it is write-only).
		want := ops[i]
		if !want.Write {
			want.Seed = 0
		}
		if got[i] != want {
			t.Fatalf("op %d: %+v != %+v", i, got[i], want)
		}
	}
}

func TestReplayTrace(t *testing.T) {
	eng := sim.New(5)
	c := rados.NewTestbed(eng, simcost.Default(), 4, 4)
	pool, _ := c.CreatePool(rados.PoolConfig{Name: "p", PGNum: 64, Redundancy: rados.ReplicatedN(2)})
	dev, _ := client.NewBlockDevice("img", 1<<20, 256<<10, &client.RawBackend{GW: c.NewGateway("cl"), Pool: pool})
	ops := SynthesizeTrace(1<<20, 8<<10, 200, 50, 9)
	var res TraceResult
	run(t, eng, func(p *sim.Proc) { res = ReplayTrace(p, dev, ops, 1.0, 8) })
	if res.Errors > 0 {
		t.Fatalf("%d errors", res.Errors)
	}
	if res.Reads.Lat.Count()+res.Writes.Lat.Count() != 200 {
		t.Fatalf("replayed %d+%d ops", res.Reads.Lat.Count(), res.Writes.Lat.Count())
	}
	// Open-loop pacing: elapsed must cover the trace span.
	if res.Elapsed < sim.Time(ops[len(ops)-1].At) {
		t.Fatalf("elapsed %v shorter than trace span %v", res.Elapsed, ops[len(ops)-1].At)
	}
}

func TestReplayTraceContentDeterminism(t *testing.T) {
	// Two writes with the same seed produce identical content: replaying a
	// trace preserves its duplication structure.
	eng := sim.New(6)
	c := rados.NewTestbed(eng, simcost.Default(), 4, 4)
	pool, _ := c.CreatePool(rados.PoolConfig{Name: "p", PGNum: 64, Redundancy: rados.ReplicatedN(2)})
	dev, _ := client.NewBlockDevice("img", 1<<20, 256<<10, &client.RawBackend{GW: c.NewGateway("cl"), Pool: pool})
	ops := []TraceOp{
		{At: 0, Write: true, Offset: 0, Length: 8192, Seed: 123},
		{At: 100, Write: true, Offset: 8192, Length: 8192, Seed: 123},
	}
	run(t, eng, func(p *sim.Proc) { ReplayTrace(p, dev, ops, 0, 2) })
	run(t, eng, func(p *sim.Proc) {
		a, err1 := dev.ReadAt(p, 0, 8192)
		b, err2 := dev.ReadAt(p, 8192, 8192)
		if err1 != nil || err2 != nil || !bytes.Equal(a, b) {
			t.Error("same-seed writes differ")
		}
	})
}
