package workload

import (
	"math/rand"
)

// Backup-stream workload: successive generations of the same dataset with
// byte-level insertions, deletions and modifications. This is the workload
// class where content-defined chunking beats static chunking — a single
// inserted byte shifts every later fixed-chunk boundary, but CDC boundaries
// move with the content (the HYDRAstor/backup-system setting of the paper's
// related work, §7).
type BackupConfig struct {
	// BaseSize is generation 0's size.
	BaseSize int64
	// Generations is how many backups to produce (including generation 0).
	Generations int
	// ChurnPerGen is the fraction of the previous generation mutated per
	// backup (splits across insertions, deletions and overwrites).
	ChurnPerGen float64
	Seed        int64
}

func (c *BackupConfig) defaults() {
	if c.BaseSize <= 0 {
		c.BaseSize = 1 << 20
	}
	if c.Generations <= 0 {
		c.Generations = 4
	}
	if c.ChurnPerGen <= 0 {
		c.ChurnPerGen = 0.03
	}
}

// BackupGen produces the generations deterministically.
type BackupGen struct {
	cfg  BackupConfig
	gens [][]byte
}

// NewBackupGen materializes all generations up front (sizes are scaled, so
// this stays small).
func NewBackupGen(cfg BackupConfig) *BackupGen {
	cfg.defaults()
	g := &BackupGen{cfg: cfg}
	rng := rand.New(rand.NewSource(cfg.Seed))
	base := make([]byte, cfg.BaseSize)
	rng.Read(base)
	g.gens = append(g.gens, base)
	for i := 1; i < cfg.Generations; i++ {
		g.gens = append(g.gens, mutate(g.gens[i-1], cfg.ChurnPerGen, rng))
	}
	return g
}

// Generations returns the number of generations.
func (g *BackupGen) Generations() int { return len(g.gens) }

// Generation returns generation i's content (shared slice; do not mutate).
func (g *BackupGen) Generation(i int) []byte { return g.gens[i] }

// TotalBytes is the logical size across all generations.
func (g *BackupGen) TotalBytes() int64 {
	var n int64
	for _, gen := range g.gens {
		n += int64(len(gen))
	}
	return n
}

// mutate applies churn edits: small inserts, deletes and overwrites at
// random byte offsets (deliberately unaligned).
func mutate(prev []byte, churn float64, rng *rand.Rand) []byte {
	out := append([]byte(nil), prev...)
	budget := int(float64(len(prev)) * churn)
	for budget > 0 {
		editLen := 16 + rng.Intn(2048)
		if editLen > budget {
			editLen = budget
		}
		budget -= editLen
		pos := rng.Intn(len(out) + 1)
		switch rng.Intn(3) {
		case 0: // insert
			ins := make([]byte, editLen)
			rng.Read(ins)
			out = append(out[:pos], append(ins, out[pos:]...)...)
		case 1: // delete
			end := pos + editLen
			if end > len(out) {
				end = len(out)
			}
			out = append(out[:pos], out[end:]...)
		default: // overwrite
			end := pos + editLen
			if end > len(out) {
				end = len(out)
			}
			rng.Read(out[pos:end])
		}
		if len(out) == 0 {
			out = []byte{0}
		}
	}
	return out
}
