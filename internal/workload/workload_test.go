package workload

import (
	"bytes"
	"fmt"
	"testing"

	"dedupstore/internal/chunker"
	"dedupstore/internal/client"
	"dedupstore/internal/core"
	"dedupstore/internal/rados"
	"dedupstore/internal/sim"
	"dedupstore/internal/simcost"
)

// ratioOf measures the dedup ratio (%) of a content stream at a chunk size.
func ratioOf(t *testing.T, blocks [][]byte, chunkSize int64) float64 {
	t.Helper()
	chk := chunker.NewFixed(chunkSize)
	seen := map[string]bool{}
	var total, unique int64
	for _, b := range blocks {
		for _, c := range chk.Split(0, b) {
			total += int64(len(c.Data))
			id := core.FingerprintID(c.Data)
			if !seen[id] {
				seen[id] = true
				unique += int64(len(c.Data))
			}
		}
	}
	return 100 * float64(total-unique) / float64(total)
}

func TestFIOGenDedupPercentage(t *testing.T) {
	for _, pct := range []float64{0, 50, 80} {
		gen := NewFIOGen(FIOConfig{BlockSize: 8 << 10, DedupPct: pct, Seed: 1})
		var blocks [][]byte
		for i := 0; i < 2000; i++ {
			blocks = append(blocks, gen.NextBlock())
		}
		got := ratioOf(t, blocks, 8<<10)
		if got < pct-4 || got > pct+4 {
			t.Errorf("DedupPct=%v: measured ratio %.1f%%", pct, got)
		}
	}
}

func TestFIOGenDeterministic(t *testing.T) {
	a := NewFIOGen(FIOConfig{BlockSize: 4096, DedupPct: 50, Seed: 9})
	b := NewFIOGen(FIOConfig{BlockSize: 4096, DedupPct: 50, Seed: 9})
	for i := 0; i < 50; i++ {
		if !bytes.Equal(a.NextBlock(), b.NextBlock()) {
			t.Fatal("generator not deterministic")
		}
	}
}

func TestSFSGenRatiosScaleWithLoad(t *testing.T) {
	// Fig. 3's property: higher load levels have higher global dedup ratios
	// (LD1 ~36%, LD3 ~81%, LD10 ~93%).
	measure := func(loads int) float64 {
		cfg := SFSConfig{Loads: loads, BytesPerLoad: 1 << 20, PageSize: 8 << 10, Seed: 5}
		gen := NewSFSGen(cfg)
		var blocks [][]byte
		extents := int(cfg.BytesPerLoad/(32<<10)) * loads
		for i := 0; i < extents; i++ {
			blocks = append(blocks, gen.Extent())
		}
		return ratioOf(t, blocks, 32<<10)
	}
	ld1, ld3, ld10 := measure(1), measure(3), measure(10)
	if !(ld1 < ld3 && ld3 < ld10) {
		t.Fatalf("ratios not increasing: LD1=%.1f LD3=%.1f LD10=%.1f", ld1, ld3, ld10)
	}
	if ld1 < 25 || ld1 > 50 {
		t.Errorf("LD1 ratio %.1f far from paper's ~36%%", ld1)
	}
	if ld10 < 85 {
		t.Errorf("LD10 ratio %.1f far from paper's ~93%%", ld10)
	}
}

func TestCloudGenRatios(t *testing.T) {
	gen := NewCloudGen(CloudConfig{Objects: 12, ObjectSize: 2 << 20, Seed: 3})
	var blocks [][]byte
	for i := 0; i < gen.Config().Objects; i++ {
		blocks = append(blocks, gen.ObjectContent(i))
	}
	r16 := ratioOf(t, blocks, 16<<10)
	r32 := ratioOf(t, blocks, 32<<10)
	r64 := ratioOf(t, blocks, 64<<10)
	// Table 2 shape: mild decline with chunk size, around 43-47%.
	if !(r16 > r32 && r32 > r64) {
		t.Fatalf("ratios not declining: %.1f / %.1f / %.1f", r16, r32, r64)
	}
	if r32 < 35 || r32 > 55 {
		t.Errorf("32K ratio %.1f far from paper's ~44.8%%", r32)
	}
	if r16-r64 > 10 {
		t.Errorf("decline %.1f too steep (paper: 46.4 -> 43.7)", r16-r64)
	}
}

func TestCloudGenDeterministic(t *testing.T) {
	a := NewCloudGen(CloudConfig{Objects: 2, ObjectSize: 1 << 20, Seed: 8})
	b := NewCloudGen(CloudConfig{Objects: 2, ObjectSize: 1 << 20, Seed: 8})
	if !bytes.Equal(a.ObjectContent(1), b.ObjectContent(1)) {
		t.Fatal("cloud generator not deterministic")
	}
}

func TestVMImagesShareOSBlocks(t *testing.T) {
	eng := sim.New(6)
	c := rados.NewTestbed(eng, simcost.Default(), 4, 4)
	pool, _ := c.CreatePool(rados.PoolConfig{Name: "rbd", PGNum: 64, Redundancy: rados.ReplicatedN(2)})
	cfg := VMImageConfig{ImageSize: 1 << 20, BlockSize: 16 << 10, Seed: 2}
	var vols [][]byte
	run(t, eng, func(p *sim.Proc) {
		for vm := 0; vm < 3; vm++ {
			dev, err := client.NewBlockDevice(fmt.Sprintf("vm%d", vm), cfg.ImageSize, 256<<10,
				&client.RawBackend{GW: c.NewGateway(fmt.Sprintf("c%d", vm)), Pool: pool})
			if err != nil {
				t.Fatal(err)
			}
			if err := WriteVMImage(p, dev, cfg, vm); err != nil {
				t.Fatal(err)
			}
			data, err := dev.ReadAt(p, 0, cfg.ImageSize)
			if err != nil {
				t.Fatal(err)
			}
			vols = append(vols, data)
		}
	})
	// OS region identical across VMs; home region differs.
	osBytes := int64(float64(cfg.ImageSize)*0.12) / cfg.BlockSize * cfg.BlockSize
	if !bytes.Equal(vols[0][:osBytes], vols[1][:osBytes]) {
		t.Fatal("OS regions differ between VMs")
	}
	if bytes.Equal(vols[0][osBytes:osBytes+cfg.BlockSize], vols[1][osBytes:osBytes+cfg.BlockSize]) {
		t.Fatal("home regions identical between VMs")
	}
}

func run(t *testing.T, eng *sim.Engine, fn func(p *sim.Proc)) {
	t.Helper()
	var panicked error
	eng.Go("test", func(p *sim.Proc) {
		defer func() {
			if r := recover(); r != nil {
				panicked = fmt.Errorf("panic: %v", r)
			}
		}()
		fn(p)
	})
	eng.Run()
	if panicked != nil {
		t.Fatal(panicked)
	}
}

func TestRunFIOAgainstRawPool(t *testing.T) {
	eng := sim.New(7)
	c := rados.NewTestbed(eng, simcost.Default(), 4, 4)
	pool, _ := c.CreatePool(rados.PoolConfig{Name: "rbd", PGNum: 64, Redundancy: rados.ReplicatedN(2)})
	dev, _ := client.NewBlockDevice("img", 1<<20, 256<<10, &client.RawBackend{GW: c.NewGateway("cl"), Pool: pool})
	cfg := FIOConfig{BlockSize: 8 << 10, Span: 1 << 20, Pattern: RandWrite, DedupPct: 50, Threads: 4, IODepth: 4, Ops: 200, Seed: 1}
	var res FIOResult
	run(t, eng, func(p *sim.Proc) { res = RunFIO(p, dev, cfg) })
	if res.Errors > 0 {
		t.Fatalf("%d errors", res.Errors)
	}
	if res.Recorder.Lat.Count() != 200 {
		t.Fatalf("recorded %d ops, want 200", res.Recorder.Lat.Count())
	}
	if res.Throughput() <= 0 || res.MeanLatency() <= 0 {
		t.Fatalf("degenerate metrics: %v MB/s, %v", res.Throughput(), res.MeanLatency())
	}
}

func TestRunFIOReadAfterPrefill(t *testing.T) {
	eng := sim.New(8)
	c := rados.NewTestbed(eng, simcost.Default(), 4, 4)
	pool, _ := c.CreatePool(rados.PoolConfig{Name: "rbd", PGNum: 64, Redundancy: rados.ReplicatedN(2)})
	dev, _ := client.NewBlockDevice("img", 512<<10, 256<<10, &client.RawBackend{GW: c.NewGateway("cl"), Pool: pool})
	cfg := FIOConfig{BlockSize: 8 << 10, Span: 512 << 10, Pattern: RandRead, Threads: 2, IODepth: 2, Ops: 100, Seed: 2}
	run(t, eng, func(p *sim.Proc) {
		if err := Prefill(p, dev, cfg); err != nil {
			t.Fatal(err)
		}
		res := RunFIO(p, dev, cfg)
		if res.Errors > 0 || res.Recorder.Lat.Count() != 100 {
			t.Fatalf("read run: %d errors, %d ops", res.Errors, res.Recorder.Lat.Count())
		}
	})
}

func TestRunSFSFixedRate(t *testing.T) {
	eng := sim.New(9)
	c := rados.NewTestbed(eng, simcost.Default(), 4, 4)
	pool, _ := c.CreatePool(rados.PoolConfig{Name: "rbd", PGNum: 64, Redundancy: rados.ReplicatedN(2)})
	dev, _ := client.NewBlockDevice("img", 8<<20, 1<<20, &client.RawBackend{GW: c.NewGateway("cl"), Pool: pool})
	cfg := SFSConfig{Loads: 2, BytesPerLoad: 1 << 20, OpsPerSecPerLoad: 100, Duration: 2e9, PageSize: 8 << 10, Seed: 4}
	var res SFSResult
	run(t, eng, func(p *sim.Proc) {
		if err := BuildSFSDataset(p, dev, cfg); err != nil {
			t.Fatal(err)
		}
		res = RunSFS(p, dev, cfg)
	})
	if res.Errors > 0 {
		t.Fatalf("%d errors", res.Errors)
	}
	// Fixed rate: ~100 ops/s × 2 loads × 2 s = ~400 ops.
	if res.OpsDone < 300 || res.OpsDone > 500 {
		t.Fatalf("ops done = %d, want ~400 (fixed rate)", res.OpsDone)
	}
	if res.TotalIOPS() < 150 || res.TotalIOPS() > 250 {
		t.Fatalf("IOPS = %.0f, want ~200", res.TotalIOPS())
	}
}
