package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"dedupstore/internal/client"
	"dedupstore/internal/metrics"
	"dedupstore/internal/sim"
)

// Trace replay: the paper's most convincing dataset is a production trace
// (the SK Telecom private cloud). This file provides a block-trace format
// and replayer so real traces — or synthesized ones — can be driven through
// any configuration of the store.
//
// The format is one operation per line:
//
//	<ts_us> <op> <offset> <length> [content-seed]
//
// where op is R or W, ts_us is the issue time in microseconds relative to
// trace start, and content-seed (writes only) deterministically selects the
// written content — equal seeds produce equal bytes, so a trace encodes its
// own duplication structure. Lines starting with '#' are comments.

// TraceOp is one operation of a block trace.
type TraceOp struct {
	At     time.Duration
	Write  bool
	Offset int64
	Length int64
	Seed   int64 // content seed (writes)
}

// ParseTrace reads the trace format.
func ParseTrace(r io.Reader) ([]TraceOp, error) {
	var ops []TraceOp
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 4 {
			return nil, fmt.Errorf("workload: trace line %d: want >=4 fields, got %d", line, len(fields))
		}
		ts, err1 := strconv.ParseInt(fields[0], 10, 64)
		off, err2 := strconv.ParseInt(fields[2], 10, 64)
		length, err3 := strconv.ParseInt(fields[3], 10, 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("workload: trace line %d: bad number", line)
		}
		op := TraceOp{At: time.Duration(ts) * time.Microsecond, Offset: off, Length: length}
		switch strings.ToUpper(fields[1]) {
		case "W":
			op.Write = true
			if len(fields) >= 5 {
				seed, err := strconv.ParseInt(fields[4], 10, 64)
				if err != nil {
					return nil, fmt.Errorf("workload: trace line %d: bad seed", line)
				}
				op.Seed = seed
			} else {
				op.Seed = int64(line) * 2654435761
			}
		case "R":
		default:
			return nil, fmt.Errorf("workload: trace line %d: unknown op %q", line, fields[1])
		}
		if op.Offset < 0 || op.Length <= 0 {
			return nil, fmt.Errorf("workload: trace line %d: bad extent [%d,+%d)", line, op.Offset, op.Length)
		}
		ops = append(ops, op)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return ops, nil
}

// FormatTrace writes ops in the trace format.
func FormatTrace(w io.Writer, ops []TraceOp) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# ts_us op offset length [seed]")
	for _, op := range ops {
		kind := "R"
		if op.Write {
			kind = "W"
		}
		if op.Write {
			fmt.Fprintf(bw, "%d %s %d %d %d\n", op.At.Microseconds(), kind, op.Offset, op.Length, op.Seed)
		} else {
			fmt.Fprintf(bw, "%d %s %d %d\n", op.At.Microseconds(), kind, op.Offset, op.Length)
		}
	}
	return bw.Flush()
}

// TraceResult aggregates a replay.
type TraceResult struct {
	Reads, Writes *metrics.Recorder
	Errors        int
	Elapsed       sim.Time
}

// ReplayTrace drives a trace against a block device with open-loop timing:
// each op issues at its recorded timestamp (scaled by timeScale; 1.0 =
// as-recorded, 0 = as fast as the workers allow), and `workers` bounds
// concurrent in-flight operations. Latency includes queueing behind slow
// configurations, as with the SFS runner.
func ReplayTrace(p *sim.Proc, dev *client.BlockDevice, ops []TraceOp, timeScale float64, workers int) TraceResult {
	if workers < 1 {
		workers = 1
	}
	res := TraceResult{Reads: metrics.NewRecorder(), Writes: metrics.NewRecorder()}
	start := p.Now()
	queue := sim.NewQueue[TraceOp]()

	sched := p.Go("trace.sched", func(q *sim.Proc) {
		for _, op := range ops {
			issueAt := start + sim.Time(float64(op.At)*timeScale)
			if q.Now() < issueAt {
				q.SleepUntil(issueAt)
			}
			queue.Push(q, op)
		}
		queue.Close(q)
	})

	var sigs []*sim.Signal
	for w := 0; w < workers; w++ {
		sigs = append(sigs, p.Go(fmt.Sprintf("trace.w%d", w), func(q *sim.Proc) {
			for {
				op, ok := queue.Pop(q)
				if !ok {
					return
				}
				opStart := q.Now()
				if op.Write {
					buf := make([]byte, op.Length)
					fillRandom(buf, op.Seed)
					if err := dev.WriteAt(q, op.Offset, buf); err != nil {
						res.Errors++
						continue
					}
					res.Writes.Record(q.Now(), (q.Now() - opStart).Duration(), int(op.Length))
				} else {
					data, err := dev.ReadAt(q, op.Offset, op.Length)
					if err != nil {
						res.Errors++
						continue
					}
					res.Reads.Record(q.Now(), (q.Now() - opStart).Duration(), len(data))
				}
			}
		}))
	}
	sim.WaitAll(p, append(sigs, sched)...)
	res.Elapsed = p.Now() - start
	return res
}

// SynthesizeTrace builds a trace with the cloud generator's redundancy
// profile: a write-mostly burst populating the device followed by a mixed
// read/overwrite phase. Useful for demos and as a template for converting
// real traces.
func SynthesizeTrace(devSize int64, blockSize int64, ops int, dedupPct float64, seed int64) []TraceOp {
	gen := NewFIOGen(FIOConfig{BlockSize: blockSize, Span: devSize, DedupPct: dedupPct, Ops: ops, Seed: seed})
	_ = gen
	blocks := devSize / blockSize
	if blocks < 1 {
		blocks = 1
	}
	rng := newSplitMix(seed)
	var out []TraceOp
	t := time.Duration(0)
	for i := 0; i < ops; i++ {
		t += time.Duration(100+rng.next()%400) * time.Microsecond
		op := TraceOp{At: t, Offset: int64(rng.next()%uint64(blocks)) * blockSize, Length: blockSize}
		if i < ops/2 || rng.next()%100 < 40 {
			op.Write = true
			// Duplicate content with probability dedupPct.
			if float64(rng.next()%100) < dedupPct {
				op.Seed = seed + int64(rng.next()%64) // shared pool
			} else {
				op.Seed = seed + 1000 + int64(i)
			}
		}
		out = append(out, op)
	}
	return out
}

// splitMix is a tiny deterministic generator for trace synthesis.
type splitMix struct{ x uint64 }

func newSplitMix(seed int64) *splitMix { return &splitMix{x: uint64(seed)*0x9e3779b97f4a7c15 + 1} }

func (s *splitMix) next() uint64 {
	s.x += 0x9e3779b97f4a7c15
	z := s.x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
