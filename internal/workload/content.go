// Package workload generates the paper's evaluation workloads: FIO-style
// micro-benchmarks with controlled dedup ratios (§2.2, §6.2), the SPEC SFS
// 2014 database workload (§6.4.1), VM-image populations (§6.4.3), and a
// synthetic stand-in for the SK Telecom private-cloud dataset (§2.2, §6.3),
// plus drivers that replay them against a block device under the DES.
package workload

import (
	"encoding/binary"
	"math/rand"
)

// fillRandom fills buf with seeded pseudo-random (incompressible) bytes.
func fillRandom(buf []byte, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	// rand.Read never errors.
	rng.Read(buf)
}

// fillCompressible fills buf with text-like content that DEFLATE compresses
// to roughly half: a pattern of repeated words keyed by the seed.
func fillCompressible(buf []byte, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	words := []string{"config", "kernel", "libexec", "update", "package", "service", "systemd", "default"}
	pos := 0
	for pos < len(buf) {
		if rng.Intn(3) == 0 {
			var raw [8]byte
			binary.LittleEndian.PutUint64(raw[:], rng.Uint64())
			pos += copy(buf[pos:], raw[:])
			continue
		}
		w := words[rng.Intn(len(words))]
		pos += copy(buf[pos:], w)
		if pos < len(buf) {
			buf[pos] = '/'
			pos++
		}
	}
}

// BlockPool is a pool of distinct, reusable block contents. Drawing the same
// index always yields the same bytes, so draws deduplicate.
type BlockPool struct {
	blockSize int
	seed      int64
	comp      bool
}

// NewBlockPool creates a pool of blockSize-byte blocks under a seed.
func NewBlockPool(blockSize int, seed int64, compressible bool) *BlockPool {
	return &BlockPool{blockSize: blockSize, seed: seed, comp: compressible}
}

// Block materializes pool block idx into buf (len must equal blockSize).
func (bp *BlockPool) Block(idx int64, buf []byte) {
	s := bp.seed*1000003 + idx
	if bp.comp {
		fillCompressible(buf, s)
	} else {
		fillRandom(buf, s)
	}
}
