package workload

import (
	"fmt"

	"dedupstore/internal/client"
	"dedupstore/internal/sim"
)

// VM-image population for the Fig. 13 experiment: "ten 8GB of Ubuntu VM
// images ... The OS images are the same but user home data are different."
// Real images are mostly identical OS blocks plus a modest unique home
// directory and large unallocated (zero) regions — which is why ten 8GB
// images deduplicate to ~2.2GB (with 2× replication) and each additional
// image adds only ~200MB.
type VMImageConfig struct {
	// ImageSize is the virtual disk size (paper: 8GB; scaled here).
	ImageSize int64
	// OSFrac is the fraction of the image holding the shared OS install.
	OSFrac float64
	// HomeFrac is the fraction holding per-VM unique home data.
	HomeFrac float64
	// The remainder of the image is zeros (unallocated).
	// BlockSize is the write granularity (chunk-aligned content).
	BlockSize int64
	// Thick writes the zero regions too (the paper's 8GB images occupy
	// their full size under plain replication — Fig. 13's "rep" line is
	// ImageSize × images × 2); thin images skip unallocated space.
	Thick bool
	Seed  int64
}

func (c *VMImageConfig) defaults() {
	if c.ImageSize <= 0 {
		c.ImageSize = 8 << 20 // 8GB scaled 1000:1
	}
	if c.OSFrac <= 0 {
		c.OSFrac = 0.12
	}
	if c.HomeFrac <= 0 {
		c.HomeFrac = 0.025
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 32 << 10
	}
}

// WriteVMImage writes VM image number vm onto a block device. OS blocks are
// identical across VMs (and compressible, like real binaries/config trees);
// home blocks are unique per VM; zero regions are skipped (thin images).
func WriteVMImage(p *sim.Proc, dev *client.BlockDevice, cfg VMImageConfig, vm int) error {
	cfg.defaults()
	osBytes := int64(float64(cfg.ImageSize)*cfg.OSFrac) / cfg.BlockSize * cfg.BlockSize
	homeBytes := int64(float64(cfg.ImageSize)*cfg.HomeFrac) / cfg.BlockSize * cfg.BlockSize
	osPool := NewBlockPool(int(cfg.BlockSize), cfg.Seed+1009, true)

	// OS region: shared blocks, identical layout in every image.
	for off := int64(0); off < osBytes; off += cfg.BlockSize {
		buf := make([]byte, cfg.BlockSize)
		osPool.Block(off/cfg.BlockSize, buf)
		if err := dev.WriteAt(p, off, buf); err != nil {
			return fmt.Errorf("workload: vm %d os block: %w", vm, err)
		}
	}
	// Home region: unique, compressible user data.
	for off := int64(0); off < homeBytes; off += cfg.BlockSize {
		buf := make([]byte, cfg.BlockSize)
		fillCompressible(buf, cfg.Seed+int64(vm)*999983+off)
		if err := dev.WriteAt(p, osBytes+off, buf); err != nil {
			return fmt.Errorf("workload: vm %d home block: %w", vm, err)
		}
	}
	// The rest of the image: zeros. Thick images write them (and global
	// dedup later collapses them all into a single zero chunk); thin images
	// skip them.
	if cfg.Thick {
		zero := make([]byte, cfg.BlockSize)
		for off := osBytes + homeBytes; off+cfg.BlockSize <= cfg.ImageSize; off += cfg.BlockSize {
			if err := dev.WriteAt(p, off, zero); err != nil {
				return fmt.Errorf("workload: vm %d zero block: %w", vm, err)
			}
		}
	}
	return nil
}
