package workload

import (
	"fmt"
	"math/rand"
	"time"

	"dedupstore/internal/client"
	"dedupstore/internal/metrics"
	"dedupstore/internal/sim"
)

// Pattern is a FIO I/O pattern.
type Pattern int

// Supported patterns.
const (
	SeqWrite Pattern = iota + 1
	RandWrite
	SeqRead
	RandRead
)

func (p Pattern) String() string {
	switch p {
	case SeqWrite:
		return "seqwrite"
	case RandWrite:
		return "randwrite"
	case SeqRead:
		return "seqread"
	case RandRead:
		return "randread"
	default:
		return fmt.Sprintf("pattern(%d)", int(p))
	}
}

// IsWrite reports whether the pattern issues writes.
func (p Pattern) IsWrite() bool { return p == SeqWrite || p == RandWrite }

// FIOConfig mirrors the fio knobs the paper uses: block size, pattern,
// dedupe_percentage, threads and iodepth (§6.2: "FIO (4 threads, 4
// iodepth)").
type FIOConfig struct {
	Name      string
	BlockSize int64
	Span      int64 // device region the job covers
	Pattern   Pattern
	// DedupPct is fio's dedupe_percentage: the fraction (0..100) of written
	// blocks whose content is drawn from a small pool of repeating blocks.
	DedupPct float64
	Threads  int
	IODepth  int
	// Ops bounds the total operation count (0 = cover the span once).
	Ops  int
	Seed int64
}

func (c *FIOConfig) defaults() {
	if c.BlockSize <= 0 {
		c.BlockSize = 8 << 10
	}
	if c.Threads <= 0 {
		c.Threads = 1
	}
	if c.IODepth <= 0 {
		c.IODepth = 1
	}
	if c.Span <= 0 {
		c.Span = 1 << 20
	}
}

// FIOGen generates block contents with the configured dedup percentage,
// matching fio's dedupe_percentage semantics: exactly DedupPct percent of
// the blocks in each plan batch repeat another block's content, and the
// copies are scattered uniformly across the batch. Duplicate multiplicity is
// 1/(1-p) (2 at 50%, 5 at 80%) with no temporal locality — so copies land on
// unrelated objects and per-OSD local dedup finds almost none of them, the
// Fig. 3 effect.
type FIOGen struct {
	cfg     FIOConfig
	rng     *rand.Rand
	counter int64
	batch   int
	plan    []int64 // content seed per stream position
}

// NewFIOGen creates a generator.
func NewFIOGen(cfg FIOConfig) *FIOGen {
	cfg.defaults()
	// Plan batches sized to the expected stream length so duplicate partners
	// fall inside the written data.
	batch := int(cfg.Span / cfg.BlockSize)
	if cfg.Ops > 0 {
		batch = cfg.Ops
	}
	if batch < 64 {
		batch = 64
	}
	if batch > 1<<17 {
		batch = 1 << 17
	}
	return &FIOGen{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)), batch: batch}
}

// extendPlan appends one batch of seeds: a shuffled mix of unique seeds and
// duplicate references spread evenly over the batch.
func (g *FIOGen) extendPlan() {
	base := int64(len(g.plan))
	n := g.batch
	uniques := int(float64(n) * (1 - g.cfg.DedupPct/100))
	if uniques < 1 {
		uniques = 1
	}
	seeds := make([]int64, 0, n)
	for u := 0; u < uniques; u++ {
		seeds = append(seeds, g.cfg.Seed*7919+base+int64(u))
	}
	for d := uniques; d < n; d++ {
		seeds = append(seeds, seeds[(d-uniques)%uniques]) // round-robin partners
	}
	g.rng.Shuffle(len(seeds), func(i, j int) { seeds[i], seeds[j] = seeds[j], seeds[i] })
	g.plan = append(g.plan, seeds...)
}

// NextBlock returns the content for the next written block.
func (g *FIOGen) NextBlock() []byte {
	for int64(len(g.plan)) <= g.counter {
		g.extendPlan()
	}
	buf := make([]byte, g.cfg.BlockSize)
	fillRandom(buf, g.plan[g.counter])
	g.counter++
	return buf
}

// FIOResult aggregates one FIO run.
type FIOResult struct {
	Config   FIOConfig
	Recorder *metrics.Recorder
	Errors   int
	Elapsed  sim.Time
}

// Throughput returns MB/s over the run.
func (r FIOResult) Throughput() float64 { return r.Recorder.Throughput(r.Elapsed) }

// MeanLatency returns the average op latency.
func (r FIOResult) MeanLatency() time.Duration { return r.Recorder.Lat.Mean() }

// RunFIO replays the workload against a block device from within proc p,
// spawning Threads×IODepth concurrent issuers, and returns aggregate
// metrics. Offsets are 0-based within [0, Span).
func RunFIO(p *sim.Proc, dev *client.BlockDevice, cfg FIOConfig) FIOResult {
	cfg.defaults()
	gen := NewFIOGen(cfg)
	rec := metrics.NewRecorder()
	res := FIOResult{Config: cfg, Recorder: rec}

	blocks := cfg.Span / cfg.BlockSize
	if blocks < 1 {
		blocks = 1
	}
	totalOps := cfg.Ops
	if totalOps <= 0 {
		totalOps = int(blocks)
	}
	issued := 0
	seqCursor := int64(0)
	offRng := rand.New(rand.NewSource(cfg.Seed + 1))
	start := p.Now()

	nextOff := func() (int64, bool) {
		if issued >= totalOps {
			return 0, false
		}
		issued++
		switch cfg.Pattern {
		case SeqWrite, SeqRead:
			off := (seqCursor % blocks) * cfg.BlockSize
			seqCursor++
			return off, true
		default:
			return offRng.Int63n(blocks) * cfg.BlockSize, true
		}
	}

	var sigs []*sim.Signal
	for w := 0; w < cfg.Threads*cfg.IODepth; w++ {
		sigs = append(sigs, p.Go(fmt.Sprintf("fio.%s.%d", cfg.Pattern, w), func(q *sim.Proc) {
			for {
				off, ok := nextOff()
				if !ok {
					return
				}
				opStart := q.Now()
				var err error
				var n int
				if cfg.Pattern.IsWrite() {
					data := gen.NextBlock()
					n = len(data)
					err = dev.WriteAt(q, off, data)
				} else {
					var data []byte
					data, err = dev.ReadAt(q, off, cfg.BlockSize)
					n = len(data)
				}
				if err != nil {
					res.Errors++
					continue
				}
				rec.Record(q.Now(), (q.Now() - opStart).Duration(), n)
			}
		}))
	}
	sim.WaitAll(p, sigs...)
	res.Elapsed = p.Now() - start
	return res
}

// Prefill writes the whole span sequentially (large blocks) so that read
// patterns have data to read. Content uses the same dedup percentage.
func Prefill(p *sim.Proc, dev *client.BlockDevice, cfg FIOConfig) error {
	cfg.defaults()
	fill := cfg
	fill.Pattern = SeqWrite
	fill.Ops = 0
	res := RunFIO(p, dev, fill)
	if res.Errors > 0 {
		return fmt.Errorf("workload: prefill had %d errors", res.Errors)
	}
	return nil
}
