package workload

import (
	"math/rand"
)

// Cloud synthesizes the SK Telecom private-cloud dataset's redundancy
// structure (§2.2: 3.3TB of enterprise VM volumes; Fig. 3: ~21.5% local /
// ~44.8% global dedup at 32K chunks; Table 2: 46.4/44.8/43.7% ideal ratio at
// 16/32/64K chunks). Three redundancy components reproduce those numbers:
//
//   - Intra-object duplication (~20% of slots copy an earlier slot of the
//     same volume — empty FS regions, repeated binaries). These dedupe even
//     under per-OSD local dedup, which is why the cloud's local ratio is
//     ~half its global ratio rather than ~1/16 of it.
//   - Cross-object duplication (~27% of slots come from a shared pool — OS
//     images, common packages). Only global dedup catches these.
//   - Fine-grained duplication (~2% of bytes dedupable only at 16K
//     granularity), giving Table 2's mild ratio decline as chunks grow.
type CloudConfig struct {
	Objects    int
	ObjectSize int64 // per-object bytes (RBD stripe: 4MB)
	SlotSize   int64 // duplication granularity (64K slots, 16K fine units)
	IntraFrac  float64
	CrossFrac  float64
	FineFrac   float64
	Seed       int64
}

func (c *CloudConfig) defaults() {
	if c.Objects <= 0 {
		c.Objects = 12
	}
	if c.ObjectSize <= 0 {
		c.ObjectSize = 4 << 20
	}
	if c.SlotSize <= 0 {
		c.SlotSize = 64 << 10
	}
	if c.IntraFrac <= 0 {
		c.IntraFrac = 0.16
	}
	if c.CrossFrac <= 0 {
		c.CrossFrac = 0.46
	}
	if c.FineFrac <= 0 {
		c.FineFrac = 0.015
	}
}

// CloudGen deterministically materializes the dataset object by object.
type CloudGen struct {
	cfg      CloudConfig
	slotPool *BlockPool // shared 64K slots (cross-object duplication)
	midPool  *BlockPool // shared 32K units (dedupable at <=32K chunks)
	finePool *BlockPool // shared 16K units (dedupable only at 16K chunks)
}

// NewCloudGen creates a generator.
func NewCloudGen(cfg CloudConfig) *CloudGen {
	cfg.defaults()
	return &CloudGen{
		cfg:      cfg,
		slotPool: NewBlockPool(int(cfg.SlotSize), cfg.Seed+17, false),
		midPool:  NewBlockPool(32<<10, cfg.Seed+19, false),
		finePool: NewBlockPool(16<<10, cfg.Seed+23, false),
	}
}

// Config returns the effective configuration.
func (g *CloudGen) Config() CloudConfig { return g.cfg }

// ObjectName returns the dataset's object naming.
func (g *CloudGen) ObjectName(idx int) string {
	return "cloud.vol." + itoa(idx)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	pos := len(b)
	for i > 0 {
		pos--
		b[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(b[pos:])
}

// ObjectContent materializes object idx's bytes.
func (g *CloudGen) ObjectContent(idx int) []byte {
	cfg := g.cfg
	rng := rand.New(rand.NewSource(cfg.Seed + int64(idx)*7907))
	slots := cfg.ObjectSize / cfg.SlotSize
	out := make([]byte, cfg.ObjectSize)
	// Cross-object pool sized for ~2.2 copies per pool slot across the whole
	// dataset: most duplicates have one or two far-away twins (enterprise
	// volumes sharing OS/package blocks), so per-OSD local dedup rarely sees
	// both copies.
	totalSlots := float64(cfg.Objects) * float64(slots)
	poolSlots := int64(cfg.CrossFrac * totalSlots / 2.2)
	if poolSlots < 1 {
		poolSlots = 1
	}
	for s := int64(0); s < slots; s++ {
		dst := out[s*cfg.SlotSize : (s+1)*cfg.SlotSize]
		dice := rng.Float64()
		switch {
		case s > 0 && dice < cfg.IntraFrac:
			// Copy an earlier slot of the same object (slot-aligned, so it
			// dedupes at every chunk size and under local dedup).
			src := rng.Int63n(s)
			copy(dst, out[src*cfg.SlotSize:(src+1)*cfg.SlotSize])
		case dice < cfg.IntraFrac+cfg.CrossFrac:
			g.slotPool.Block(rng.Int63n(poolSlots), dst)
		case dice < cfg.IntraFrac+cfg.CrossFrac+cfg.FineFrac:
			// Fine-grained: each 16K unit repeats globally, but the 4-unit
			// combination is unique — dedupable only at 16K chunks.
			for u := int64(0); u*16384 < cfg.SlotSize; u++ {
				g.finePool.Block(rng.Int63n(64), dst[u*16384:(u+1)*16384])
			}
		case dice < cfg.IntraFrac+cfg.CrossFrac+2*cfg.FineFrac:
			// Mid-grained: 32K units repeat globally but 64K pairs are
			// unique — dedupable at 16K and 32K chunks, lost at 64K.
			for u := int64(0); u*32768 < cfg.SlotSize; u++ {
				g.midPool.Block(rng.Int63n(64), dst[u*32768:(u+1)*32768])
			}
		default:
			fillRandom(dst, cfg.Seed+int64(idx)*131071+s)
		}
	}
	return out
}

// TotalBytes returns the dataset's logical size.
func (g *CloudGen) TotalBytes() int64 {
	return int64(g.cfg.Objects) * g.cfg.ObjectSize
}
