// Package tiering holds the pure decision logic of the adaptive-redundancy
// subsystem: the per-object target forms (which redundancy an object's
// temperature earns it) and the migration state machine that turns an
// observed chunk-map state plus a target form into the next action. The
// package is deliberately I/O-free — core executes the actions through the
// two-phase reference protocol; this layer only decides, so the state
// machine is exhaustively table-testable.
//
// The placement policy follows FASTEN (PAPERS.md, arXiv 2312.08309) — pick
// replication vs. deduplication per object by popularity — combined with the
// online-EC observation (arXiv 1709.05365) that cold data belongs on erasure
// coding while hot data must not:
//
//	hot  → replicated, undeduplicated (bytes live in the metadata pool)
//	warm → replicated + deduplicated  (chunks in the replicated chunk pool)
//	cold → erasure-coded + deduplicated (chunks in the EC chunk pool)
package tiering

import "dedupstore/internal/hitset"

// Form is the target redundancy/dedup shape of one object.
type Form int

const (
	// FormCached: replicated and undeduplicated — the object's bytes live in
	// the (replicated) metadata pool; chunk-map slots hold no chunk binding.
	FormCached Form = iota
	// FormDedup: replicated and deduplicated — slots bind chunks in the
	// replicated (warm) chunk pool, no cached copy.
	FormDedup
	// FormDedupEC: erasure-coded and deduplicated — slots bind chunks in the
	// EC (cold) chunk pool, no cached copy.
	FormDedupEC
)

var formNames = [...]string{"cached", "dedup", "dedup-ec"}

func (f Form) String() string {
	if f >= FormCached && f <= FormDedupEC {
		return formNames[f]
	}
	return "invalid"
}

// FormFor maps an object temperature to its target form.
func FormFor(t hitset.Temperature) Form {
	switch t {
	case hitset.TempHot:
		return FormCached
	case hitset.TempWarm:
		return FormDedup
	default:
		return FormDedupEC
	}
}

// ObjectState summarizes what one chunk map currently looks like, as far as
// tiering cares: which storage each slot's bytes occupy.
type ObjectState struct {
	// DirtySlots counts slots awaiting a flush (data cached, not yet
	// deduplicated, or re-written since). Migration never touches them —
	// the dedup engine owns dirty slots.
	DirtySlots int
	// CachedOnly counts clean slots whose bytes live solely in the metadata
	// pool (no chunk binding) — the hot, undeduplicated form.
	CachedOnly int
	// CachedBound counts clean slots that bind a chunk and keep a cached
	// copy too (flushed while hot, KeepCachedAfterFlush).
	CachedBound int
	// WarmChunks counts clean, uncached slots bound to the replicated chunk
	// pool.
	WarmChunks int
	// ColdChunks counts clean, uncached slots bound to the EC chunk pool.
	ColdChunks int
}

// Action is the next migration step for one object.
type Action int

const (
	// ActNone: the object already matches its target form, or is in a state
	// (dirty, empty) the policy must leave to the dedup engine.
	ActNone Action = iota
	// ActRecache promotes to hot: chunk bytes are read back into the
	// metadata object, the bindings are released, and the chunks
	// de-referenced. The object ends replicated and undeduplicated.
	ActRecache
	// ActPromoteWarm moves cold (EC) chunks into the replicated chunk pool
	// via the two-phase reference protocol.
	ActPromoteWarm
	// ActDemoteCold moves warm (replicated) chunks into the EC chunk pool
	// via the two-phase reference protocol.
	ActDemoteCold
	// ActRededup demotes a hot object: its cached-only slots are marked
	// dirty so the dedup engine re-deduplicates them (landing them in the
	// pool its temperature then selects), and cached-bound slots drop their
	// cached copy.
	ActRededup
	// ActEvict drops the cached copies of cached-bound slots (the object is
	// already deduplicated; only the hot-time cache remains).
	ActEvict
)

var actionNames = [...]string{"none", "recache", "promote-warm", "demote-cold", "rededup", "evict"}

func (a Action) String() string {
	if a >= ActNone && a <= ActEvict {
		return actionNames[a]
	}
	return "invalid"
}

// Decide returns the next action that moves an object with state st toward
// target. One action at a time: the policy daemon re-walks objects every
// pass, so multi-step transitions (e.g. hot → cold: rededup, then the flush
// lands the chunks cold) converge across passes without the decision layer
// ever needing to sequence I/O.
func Decide(target Form, st ObjectState) Action {
	if st.DirtySlots > 0 {
		// The dedup engine owns dirty slots; migrating around an in-flight
		// flush would race its phase-2 bind. The engine's pool selection is
		// temperature-aware, so the flush itself advances toward the target.
		return ActNone
	}
	switch target {
	case FormCached:
		if st.WarmChunks > 0 || st.ColdChunks > 0 || st.CachedBound > 0 {
			return ActRecache
		}
	case FormDedup:
		if st.CachedOnly > 0 {
			return ActRededup
		}
		if st.ColdChunks > 0 {
			return ActPromoteWarm
		}
		if st.CachedBound > 0 {
			return ActEvict
		}
	case FormDedupEC:
		if st.CachedOnly > 0 {
			return ActRededup
		}
		if st.WarmChunks > 0 {
			return ActDemoteCold
		}
		if st.CachedBound > 0 {
			return ActEvict
		}
	}
	return ActNone
}
