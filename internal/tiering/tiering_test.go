package tiering

import (
	"testing"

	"dedupstore/internal/hitset"
)

func TestFormFor(t *testing.T) {
	cases := map[hitset.Temperature]Form{
		hitset.TempHot:  FormCached,
		hitset.TempWarm: FormDedup,
		hitset.TempCold: FormDedupEC,
	}
	for temp, want := range cases {
		if got := FormFor(temp); got != want {
			t.Errorf("FormFor(%v) = %v, want %v", temp, got, want)
		}
	}
}

func TestStrings(t *testing.T) {
	if FormCached.String() != "cached" || FormDedup.String() != "dedup" || FormDedupEC.String() != "dedup-ec" {
		t.Fatal("form names wrong")
	}
	if Form(99).String() != "invalid" {
		t.Fatal("out-of-range form should stringify as invalid")
	}
	names := map[Action]string{
		ActNone: "none", ActRecache: "recache", ActPromoteWarm: "promote-warm",
		ActDemoteCold: "demote-cold", ActRededup: "rededup", ActEvict: "evict",
	}
	for a, want := range names {
		if a.String() != want {
			t.Errorf("Action(%d).String()=%q want %q", a, a.String(), want)
		}
	}
	if Action(99).String() != "invalid" {
		t.Fatal("out-of-range action should stringify as invalid")
	}
}

func TestDecide(t *testing.T) {
	cases := []struct {
		name   string
		target Form
		st     ObjectState
		want   Action
	}{
		// Dirty slots always defer to the dedup engine, whatever the target.
		{"dirty-hot", FormCached, ObjectState{DirtySlots: 1, ColdChunks: 3}, ActNone},
		{"dirty-warm", FormDedup, ObjectState{DirtySlots: 2, CachedOnly: 1}, ActNone},
		{"dirty-cold", FormDedupEC, ObjectState{DirtySlots: 1, WarmChunks: 4}, ActNone},

		// Hot target: anything deduplicated comes back into the cache.
		{"hot-already", FormCached, ObjectState{CachedOnly: 4}, ActNone},
		{"hot-from-warm", FormCached, ObjectState{WarmChunks: 4}, ActRecache},
		{"hot-from-cold", FormCached, ObjectState{ColdChunks: 4}, ActRecache},
		{"hot-from-mixed", FormCached, ObjectState{WarmChunks: 2, ColdChunks: 2}, ActRecache},
		{"hot-cached-bound", FormCached, ObjectState{CachedBound: 4}, ActRecache},
		{"hot-empty", FormCached, ObjectState{}, ActNone},

		// Warm target: undedup'd slots re-dedup first; then pool moves; then
		// cache eviction.
		{"warm-already", FormDedup, ObjectState{WarmChunks: 4}, ActNone},
		{"warm-from-hot", FormDedup, ObjectState{CachedOnly: 4}, ActRededup},
		{"warm-from-cold", FormDedup, ObjectState{ColdChunks: 4}, ActPromoteWarm},
		{"warm-cached-bound", FormDedup, ObjectState{CachedBound: 2, WarmChunks: 2}, ActEvict},
		{"warm-rededup-first", FormDedup, ObjectState{CachedOnly: 1, ColdChunks: 3}, ActRededup},

		// Cold target mirrors warm with the pools swapped.
		{"cold-already", FormDedupEC, ObjectState{ColdChunks: 4}, ActNone},
		{"cold-from-hot", FormDedupEC, ObjectState{CachedOnly: 4}, ActRededup},
		{"cold-from-warm", FormDedupEC, ObjectState{WarmChunks: 4}, ActDemoteCold},
		{"cold-cached-bound", FormDedupEC, ObjectState{CachedBound: 2, ColdChunks: 2}, ActEvict},
		{"cold-empty", FormDedupEC, ObjectState{}, ActNone},
	}
	for _, tc := range cases {
		if got := Decide(tc.target, tc.st); got != tc.want {
			t.Errorf("%s: Decide(%v, %+v) = %v, want %v", tc.name, tc.target, tc.st, got, tc.want)
		}
	}
}

// TestDecideConverges: from any reachable state, repeatedly applying the
// decided action's *intended effect* reaches ActNone within a bounded number
// of steps — the state machine has no cycles.
func TestDecideConverges(t *testing.T) {
	apply := func(st ObjectState, a Action, target Form) ObjectState {
		switch a {
		case ActRecache:
			st.CachedOnly += st.WarmChunks + st.ColdChunks + st.CachedBound
			st.WarmChunks, st.ColdChunks, st.CachedBound = 0, 0, 0
		case ActPromoteWarm:
			st.WarmChunks += st.ColdChunks
			st.ColdChunks = 0
		case ActDemoteCold:
			st.ColdChunks += st.WarmChunks
			st.WarmChunks = 0
		case ActRededup:
			// Slots become dirty; the engine then flushes them into the pool
			// the target selects. Model both steps.
			n := st.CachedOnly
			st.CachedOnly = 0
			if target == FormDedupEC {
				st.ColdChunks += n
			} else {
				st.WarmChunks += n
			}
			st.CachedBound = 0
		case ActEvict:
			// Cached-bound slots keep their binding, drop the cache.
			// The binding pool is whichever it already was; assume warm.
			st.WarmChunks += st.CachedBound
			st.CachedBound = 0
		}
		return st
	}
	for _, target := range []Form{FormCached, FormDedup, FormDedupEC} {
		for _, start := range []ObjectState{
			{CachedOnly: 3}, {WarmChunks: 3}, {ColdChunks: 3}, {CachedBound: 3},
			{CachedOnly: 1, WarmChunks: 1, ColdChunks: 1, CachedBound: 1},
		} {
			st := start
			steps := 0
			for {
				a := Decide(target, st)
				if a == ActNone {
					break
				}
				st = apply(st, a, target)
				steps++
				if steps > 5 {
					t.Fatalf("target %v from %+v: no convergence after %d steps (state %+v)", target, start, steps, st)
				}
			}
		}
	}
}
