package sim

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// dispatchRec is one observed (or predicted) dispatch: the virtual time the
// callback ran and the order in which it was scheduled. Schedule order is the
// engine's seq tiebreak, so sorting records by (at, id) with a stable sort
// reproduces the kernel's contract: time order first, scheduling order among
// equal timestamps.
type dispatchRec struct {
	at Time
	id int
}

// runQueueWorkload schedules an initial batch of callbacks at pseudo-random
// delays; each callback may recursively schedule more, mixing zero delays
// (which must take the same-time FIFO) with future delays (heap). It returns
// the observed dispatch sequence and the model's prediction.
func runQueueWorkload(seed int64, initial, depth int) (got, want []dispatchRec) {
	e := New(seed)
	rng := rand.New(rand.NewSource(seed)) // workload generator, not engine rng
	nextID := 0
	var schedule func(d time.Duration, depth int)
	schedule = func(d time.Duration, depth int) {
		id := nextID
		nextID++
		want = append(want, dispatchRec{at: e.Now() + Time(d), id: id})
		e.After(d, func() {
			got = append(got, dispatchRec{at: e.Now(), id: id})
			if depth <= 0 {
				return
			}
			for n := rng.Intn(3); n > 0; n-- {
				var nd time.Duration
				if rng.Intn(2) == 0 {
					nd = 0 // same virtual instant: exercises the FIFO fast path
				} else {
					nd = time.Duration(1+rng.Intn(100)) * time.Microsecond
				}
				schedule(nd, depth-1)
			}
		})
	}
	for i := 0; i < initial; i++ {
		schedule(time.Duration(rng.Intn(50))*time.Microsecond, depth)
	}
	e.Run()
	sort.SliceStable(want, func(i, j int) bool { return want[i].at < want[j].at })
	return got, want
}

// TestEventQueueProperty drives random interleavings of future and same-time
// events through the kernel and checks the dispatch contract against a
// reference model: events run in (time, seq) order — nondecreasing virtual
// time, scheduling order among equal timestamps — and the whole sequence is
// reproducible from the seed.
func TestEventQueueProperty(t *testing.T) {
	cases := []struct {
		name           string
		seed           int64
		initial, depth int
	}{
		{"small", 1, 8, 2},
		{"wide", 2, 64, 1},
		{"deep", 3, 4, 6},
		{"mixed", 4, 32, 3},
		{"mixed2", 5, 32, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, want := runQueueWorkload(tc.seed, tc.initial, tc.depth)
			if len(got) != len(want) {
				t.Fatalf("dispatched %d events, scheduled %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("dispatch %d: got (t=%d id=%d), want (t=%d id=%d)",
						i, got[i].at, got[i].id, want[i].at, want[i].id)
				}
				if i > 0 && got[i].at < got[i-1].at {
					t.Fatalf("dispatch %d: time went backwards (%d after %d)", i, got[i].at, got[i-1].at)
				}
			}
			// Same seed, fresh engine: the full sequence must be identical.
			again, _ := runQueueWorkload(tc.seed, tc.initial, tc.depth)
			for i := range got {
				if again[i] != got[i] {
					t.Fatalf("rerun dispatch %d diverged: got (t=%d id=%d), first run (t=%d id=%d)",
						i, again[i].at, again[i].id, got[i].at, got[i].id)
				}
			}
		})
	}
}

// TestEngineRandPanicsInsideProc: while a process is running, all randomness
// must flow through Proc.Rand; Engine.Rand panics so misuse cannot silently
// perturb the schedule.
func TestEngineRandPanicsInsideProc(t *testing.T) {
	e := New(7)
	_ = e.Rand() // setup time: allowed
	var recovered any
	e.Go("p", func(p *Proc) {
		defer func() { recovered = recover() }()
		e.Rand()
	})
	e.Run()
	if recovered == nil {
		t.Fatal("Engine.Rand inside a running process did not panic")
	}
}

// TestEngineRandAllowedInCallback: After callbacks run on the engine
// goroutine with no current process, so Engine.Rand is their only source and
// must not panic.
func TestEngineRandAllowedInCallback(t *testing.T) {
	e := New(7)
	drew := false
	e.After(time.Millisecond, func() {
		e.Rand().Int63()
		drew = true
	})
	e.Run()
	if !drew {
		t.Fatal("callback did not run")
	}
}

// TestProcRandPanicsWhenNotCurrent: drawing from a parked process's Rand
// would consume engine randomness off-schedule, so it panics.
func TestProcRandPanicsWhenNotCurrent(t *testing.T) {
	e := New(7)
	var parked *Proc
	var recovered any
	e.Go("sleeper", func(p *Proc) {
		p.Rand().Int63() // current process: allowed
		parked = p
		p.Sleep(time.Millisecond)
	})
	e.Go("thief", func(p *Proc) {
		defer func() { recovered = recover() }()
		parked.Rand()
	})
	e.Run()
	if recovered == nil {
		t.Fatal("Proc.Rand from a non-current process did not panic")
	}
}
