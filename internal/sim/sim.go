// Package sim provides a deterministic discrete-event simulation (DES)
// kernel. Every timing-sensitive component in this repository — OSD disks,
// network links, client think time, background deduplication threads — runs
// as a sim.Proc on a shared virtual clock, so experiments are exactly
// reproducible across runs and machines.
//
// The kernel uses goroutine-based processes: each Proc is a goroutine that
// runs exclusively (one at a time), parking itself whenever it waits on the
// virtual clock or a synchronization primitive. The engine resumes processes
// in (time, sequence) order, which makes every run deterministic for a fixed
// seed and program.
//
// The event queue is split in two: a concrete-typed 4-ary min-heap for
// future events and a FIFO for events scheduled at the current timestamp.
// Because the sequence number is globally monotonic and the clock never goes
// backwards, the FIFO is always sorted by (time, seq), so dispatching the
// smaller of the heap top and the FIFO front preserves the exact global
// (time, seq) order while letting the common same-time wakeups (signal
// fires, resource handoffs, zero sleeps) skip the heap entirely. Finished
// process goroutines park on a free list and are reused by later spawns, so
// steady-state spawning allocates nothing.
package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// Time is a virtual timestamp: nanoseconds since the start of the simulation.
type Time int64

// Duration converts a virtual timestamp to a time.Duration since sim start.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds reports the timestamp in seconds since sim start.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

func (t Time) String() string { return time.Duration(t).String() }

// event is a scheduled wakeup. Events with fn != nil are callback events;
// otherwise proc is resumed.
type event struct {
	at     Time
	seq    uint64
	proc   *Proc
	fn     func()
	daemon bool
}

func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// eventHeap is a 4-ary min-heap of events ordered by (at, seq). Events are
// stored by value in one slice: pushing never boxes and steady-state
// operation never allocates. The 4-ary shape halves the tree depth of a
// binary heap, trading slightly more comparisons per level for fewer cache
// misses on the long sift-downs a deep queue produces.
type eventHeap struct {
	a []event
}

func (h *eventHeap) len() int { return len(h.a) }

func (h *eventHeap) push(ev event) {
	h.a = append(h.a, ev)
	i := len(h.a) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !eventLess(&h.a[i], &h.a[parent]) {
			break
		}
		h.a[i], h.a[parent] = h.a[parent], h.a[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	a := h.a
	top := a[0]
	last := len(a) - 1
	a[0] = a[last]
	a[last] = event{} // release fn/proc references
	h.a = a[:last]
	if last > 0 {
		h.siftDown(0)
	}
	return top
}

func (h *eventHeap) siftDown(i int) {
	a := h.a
	n := len(a)
	for {
		first := i<<2 + 1
		if first >= n {
			return
		}
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if eventLess(&a[c], &a[best]) {
				best = c
			}
		}
		if !eventLess(&a[best], &a[i]) {
			return
		}
		a[i], a[best] = a[best], a[i]
		i = best
	}
}

// eventFIFO holds events scheduled at the current timestamp. Appends happen
// at nondecreasing clock values with globally increasing sequence numbers,
// so the FIFO is sorted by (at, seq) by construction and the front is always
// its minimum.
type eventFIFO struct {
	a    []event
	head int
}

func (f *eventFIFO) len() int { return len(f.a) - f.head }

func (f *eventFIFO) push(ev event) { f.a = append(f.a, ev) }

func (f *eventFIFO) front() *event { return &f.a[f.head] }

func (f *eventFIFO) pop() event {
	ev := f.a[f.head]
	f.a[f.head] = event{} // release fn/proc references
	f.head++
	if f.head == len(f.a) {
		f.a = f.a[:0]
		f.head = 0
	}
	return ev
}

// Stats is a snapshot of the engine's execution counters. All values are
// deterministic for a fixed seed and program, so they can appear in golden
// outputs as a kernel-cost measure.
type Stats struct {
	EventsScheduled  int64 // total events ever scheduled
	EventsDispatched int64 // events dispatched (callbacks run or procs resumed)
	FastPath         int64 // dispatches served from the same-time FIFO, no heap round-trip
	PeakHeap         int   // high-water mark of the future-event heap
	PeakFIFO         int   // high-water mark of the same-time FIFO
	ProcsSpawned     int64 // process starts that created a new goroutine
	ProcsReused      int64 // process starts served from the free pool
	ProcsLive        int   // processes spawned and not yet finished
	ProcsPooled      int   // finished goroutines parked for reuse
}

// procPoolCap bounds the free list of finished process goroutines kept for
// reuse. Beyond the cap a finishing goroutine exits instead of parking.
const procPoolCap = 256

// Engine owns the virtual clock and the event queue. Create one with New,
// spawn processes with Go, then call Run.
//
// Engine is not safe for concurrent use from arbitrary goroutines: only the
// engine goroutine and the single currently-running Proc may touch it, which
// is exactly the DES execution model.
type Engine struct {
	now        Time
	seq        uint64
	heap       eventHeap
	fifo       eventFIFO
	yield      chan struct{}
	rng        *rand.Rand
	cur        *Proc // currently executing process (nil in engine/callback context)
	live       int   // processes spawned and not yet finished
	running    bool
	inCallback bool // an engine callback (After/FireAt) is executing

	freeProcs []*Proc
	stats     Stats

	// Daemon bookkeeping: daemon processes (background pollers) do not keep
	// the simulation alive. Run returns once no non-daemon work remains.
	nonDaemonLive   int
	nonDaemonEvents int
}

// New returns an empty engine whose randomness is derived from seed.
func New(seed int64) *Engine {
	return &Engine{
		yield: make(chan struct{}),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source. It may be used
// during setup (before Run) and from engine callbacks; while the simulation
// is running, processes must draw through Proc.Rand so every consumption is
// attributable to the deterministic schedule. Calling it from a running
// process panics — silent misuse is how nondeterminism sneaks in.
func (e *Engine) Rand() *rand.Rand {
	if e.running && !e.inCallback {
		panic("sim: Engine.Rand called while the simulation is running; use Proc.Rand from process context")
	}
	return e.rng
}

// Stats returns a snapshot of the engine's execution counters.
func (e *Engine) Stats() Stats {
	s := e.stats
	s.ProcsLive = e.live
	s.ProcsPooled = len(e.freeProcs)
	return s
}

func (e *Engine) schedule(at Time, p *Proc, fn func()) {
	if at < e.now {
		at = e.now
	}
	daemon := false
	switch {
	case p != nil:
		daemon = p.daemon
	case e.cur != nil:
		daemon = e.cur.daemon
	}
	if !daemon {
		e.nonDaemonEvents++
	}
	e.seq++
	e.stats.EventsScheduled++
	ev := event{at: at, seq: e.seq, proc: p, fn: fn, daemon: daemon}
	if at == e.now {
		e.fifo.push(ev)
		if n := e.fifo.len(); n > e.stats.PeakFIFO {
			e.stats.PeakFIFO = n
		}
		return
	}
	e.heap.push(ev)
	if n := e.heap.len(); n > e.stats.PeakHeap {
		e.stats.PeakHeap = n
	}
}

// After schedules fn to run as a callback at now+d. The callback runs on the
// engine goroutine and must not park; use Go for anything that waits.
func (e *Engine) After(d time.Duration, fn func()) {
	e.schedule(e.now+Time(d), nil, fn)
}

// Tracer receives queue-wait and service-time reports from the FIFO
// resources a process passes through. A tracer attached to a process is
// inherited by child processes spawned with Go/GoAt, so a fan-out operation
// (replicated write, parallel chunk flush) accumulates onto one trace span
// unless a child installs its own.
type Tracer interface {
	// ResourceWait reports time spent queued for a resource slot.
	ResourceWait(resource string, start, end Time)
	// ResourceHold reports time spent holding a resource slot in Use (the
	// station's service time).
	ResourceHold(resource string, start, end Time)
}

// Proc is a simulated process. All waiting primitives take the Proc so that
// the kernel can park and resume the right goroutine.
type Proc struct {
	e      *Engine
	name   string
	resume chan struct{}
	done   *Signal
	fn     func(p *Proc)
	daemon bool
	tracer Tracer
}

// SetTracer installs (or with nil, removes) the process's tracer and returns
// the previous one, so callers can scope a span and restore the parent.
func (p *Proc) SetTracer(t Tracer) Tracer {
	prev := p.tracer
	p.tracer = t
	return prev
}

// Tracer returns the process's current tracer (nil if none).
func (p *Proc) Tracer() Tracer { return p.tracer }

// Daemon reports whether this is a daemon process.
func (p *Proc) Daemon() bool { return p.daemon }

// Name returns the process name given at spawn time.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.e }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.e.now }

// Rand returns the engine's deterministic random source. Only the currently
// running process may draw from it; calling Rand on a parked or finished
// process panics, because an off-schedule draw would silently perturb every
// later random decision in the run.
func (p *Proc) Rand() *rand.Rand {
	if p.e.cur != p {
		panic("sim: Proc.Rand called outside the running process")
	}
	return p.e.rng
}

// Go spawns fn as a new process starting at the current virtual time and
// returns a Signal fired when it finishes. A process spawned from within a
// daemon inherits daemon status (a daemon's helper work should not keep the
// simulation alive either).
func (e *Engine) Go(name string, fn func(p *Proc)) *Signal {
	return e.goAt(e.now, name, fn, e.cur != nil && e.cur.daemon)
}

// GoDaemon spawns a daemon process: a background service (poller, scrubber,
// dedup worker) that runs while foreground work exists but does not prevent
// Run from returning once all non-daemon processes and events are done.
func (e *Engine) GoDaemon(name string, fn func(p *Proc)) *Signal {
	return e.goAt(e.now, name, fn, true)
}

// GoAt spawns fn as a new process that starts at virtual time at.
func (e *Engine) GoAt(at Time, name string, fn func(p *Proc)) *Signal {
	return e.goAt(at, name, fn, e.cur != nil && e.cur.daemon)
}

// GoForeground spawns fn as a non-daemon process even when the spawner is a
// daemon. A background service (heartbeat monitor, fault injector) uses it
// for work that must complete before Run returns — e.g. the recovery a
// failure detector triggers — without the service itself keeping the
// simulation alive between ticks.
func (e *Engine) GoForeground(name string, fn func(p *Proc)) *Signal {
	return e.goAt(e.now, name, fn, false)
}

func (e *Engine) goAt(at Time, name string, fn func(p *Proc), daemon bool) *Signal {
	var p *Proc
	if n := len(e.freeProcs); n > 0 {
		p = e.freeProcs[n-1]
		e.freeProcs[n-1] = nil
		e.freeProcs = e.freeProcs[:n-1]
		p.name = name
		p.daemon = daemon
		p.tracer = nil
		p.done = NewSignal() // callers may still hold the previous run's signal
		p.fn = fn
		e.stats.ProcsReused++
	} else {
		p = &Proc{e: e, name: name, resume: make(chan struct{}), done: NewSignal(), daemon: daemon, fn: fn}
		e.stats.ProcsSpawned++
		go p.loop()
	}
	if e.cur != nil {
		p.tracer = e.cur.tracer // children report into the spawner's span
	}
	e.live++
	if !daemon {
		e.nonDaemonLive++
	}
	e.schedule(at, p, nil)
	return p.done
}

// loop is the body of a process goroutine: run the current fn, do the
// finish bookkeeping, park on the free list (if there is room) and wait to
// be reincarnated as a later spawn. The engine is blocked on yield for the
// whole bookkeeping section, and a reused Proc's fields are rewritten
// strictly before the resume send that wakes the goroutine again, so the
// handoff is race-free.
func (p *Proc) loop() {
	e := p.e
	for {
		<-p.resume // wait for first resume of this incarnation
		fn := p.fn
		p.fn = nil
		fn(p)
		e.live--
		if !p.daemon {
			e.nonDaemonLive--
		}
		p.done.fire(e)
		recycle := len(e.freeProcs) < procPoolCap
		if recycle {
			e.freeProcs = append(e.freeProcs, p)
		}
		e.yield <- struct{}{} // return control to engine
		if !recycle {
			return
		}
	}
}

// Go spawns a child process at the current time (convenience for procs).
func (p *Proc) Go(name string, fn func(p *Proc)) *Signal {
	return p.e.Go(name, fn)
}

// park transfers control back to the engine and blocks until resumed.
func (p *Proc) park() {
	p.e.yield <- struct{}{}
	<-p.resume
}

// Sleep advances the process by d of virtual time.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.e.schedule(p.e.now+Time(d), p, nil)
	p.park()
}

// SleepUntil parks the process until virtual time t (no-op if t <= now).
func (p *Proc) SleepUntil(t Time) {
	p.e.schedule(t, p, nil)
	p.park()
}

// Run processes events until no non-daemon work remains (all non-daemon
// processes finished and their events drained) or the queue empties. It
// returns the number of processes still live (daemons waiting for the next
// Run, or non-daemons blocked on primitives — the latter usually indicates
// a deadlock).
func (e *Engine) Run() int { return e.RunUntil(Time(1<<62 - 1)) }

// RunUntil processes events with at <= limit. Events beyond the limit stay
// queued, so RunUntil may be called repeatedly with growing limits.
func (e *Engine) RunUntil(limit Time) int {
	if e.running {
		panic("sim: nested Run")
	}
	e.running = true
	defer func() { e.running = false }()
	for {
		hasF := e.fifo.len() > 0
		hasH := e.heap.len() > 0
		if !hasF && !hasH {
			break
		}
		if e.nonDaemonLive == 0 && e.nonDaemonEvents == 0 {
			break // only daemon work remains; it parks until the next Run
		}
		// Dispatch the global (at, seq) minimum of the two queues.
		fromFIFO := hasF && (!hasH || eventLess(e.fifo.front(), &e.heap.a[0]))
		var at Time
		if fromFIFO {
			at = e.fifo.front().at
		} else {
			at = e.heap.a[0].at
		}
		if at > limit {
			break
		}
		var ev event
		if fromFIFO {
			ev = e.fifo.pop()
			e.stats.FastPath++
		} else {
			ev = e.heap.pop()
		}
		e.stats.EventsDispatched++
		if !ev.daemon {
			e.nonDaemonEvents--
		}
		if ev.at > e.now {
			e.now = ev.at
		}
		if ev.fn != nil {
			e.inCallback = true
			ev.fn()
			e.inCallback = false
			continue
		}
		e.cur = ev.proc
		ev.proc.resume <- struct{}{}
		<-e.yield
		e.cur = nil
	}
	if e.now < limit && limit < Time(1<<62-1) {
		e.now = limit
	}
	return e.live
}

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return e.fifo.len() + e.heap.len() }

// Live reports the number of spawned-but-unfinished processes.
func (e *Engine) Live() int { return e.live }

// ---------------------------------------------------------------------------
// Signal: a one-shot broadcast event.

// Signal is a one-shot event: processes Wait on it and are all released when
// it is Fired. Waiting on an already-fired signal returns immediately.
type Signal struct {
	fired   bool
	waiters []*Proc
}

// NewSignal returns an unfired signal.
func NewSignal() *Signal { return &Signal{} }

// Fired reports whether the signal has fired.
func (s *Signal) Fired() bool { return s.fired }

func (s *Signal) fire(e *Engine) {
	if s.fired {
		return
	}
	s.fired = true
	for _, w := range s.waiters {
		e.schedule(e.now, w, nil)
	}
	s.waiters = nil
}

// Fire releases all waiters at the current virtual time. Firing twice is a
// no-op.
func (s *Signal) Fire(p *Proc) { s.fire(p.e) }

// FireAt schedules the signal to fire at virtual time t (engine callback).
func (s *Signal) FireAt(e *Engine, t Time) {
	e.schedule(t, nil, func() { s.fire(e) })
}

// Wait parks p until the signal fires.
func (s *Signal) Wait(p *Proc) {
	if s.fired {
		return
	}
	s.waiters = append(s.waiters, p)
	p.park()
}

// WaitAll parks p until every signal has fired.
func WaitAll(p *Proc, sigs ...*Signal) {
	for _, s := range sigs {
		s.Wait(p)
	}
}

// ---------------------------------------------------------------------------
// Cond: a reusable condition variable.

// Cond is a reusable wait/notify point, the DES analogue of sync.Cond:
// processes park on Wait and are released FIFO by Signal (one) or Broadcast
// (all). Unlike Signal it never latches, so it suits recurring conditions
// ("queue depth dropped below the cap") where waiters must re-check their
// predicate in a loop:
//
//	for !ready() {
//		cond.Wait(p)
//	}
//
// The re-check matters: between a Signal and the woken process actually
// running, another process may consume the condition.
type Cond struct {
	waiters []*Proc
}

// NewCond returns a condition with no waiters.
func NewCond() *Cond { return &Cond{} }

// Waiters reports the number of parked processes.
func (c *Cond) Waiters() int { return len(c.waiters) }

// Wait parks p until a Signal or Broadcast releases it.
func (c *Cond) Wait(p *Proc) {
	c.waiters = append(c.waiters, p)
	p.park()
}

// Signal wakes the longest-waiting process, if any.
func (c *Cond) Signal(p *Proc) {
	if len(c.waiters) == 0 {
		return
	}
	w := c.waiters[0]
	c.waiters = c.waiters[1:]
	p.e.schedule(p.Now(), w, nil)
}

// Broadcast wakes every waiting process.
func (c *Cond) Broadcast(p *Proc) {
	for _, w := range c.waiters {
		p.e.schedule(p.Now(), w, nil)
	}
	c.waiters = nil
}

// ---------------------------------------------------------------------------
// Resource: a FIFO server pool (disk, NIC, CPU core set).

// Resource models a station with fixed concurrency: at most Cap holders at a
// time, FIFO granting order. It is the building block for disk queues, NIC
// serialization and CPU cores.
type Resource struct {
	name    string
	cap     int
	inUse   int
	waiters []*Proc

	// Busy accounting for utilization reporting.
	busy      time.Duration
	lastStamp Time

	observer ResourceObserver
}

// ResourceObserver is called after every occupancy or queue change, with the
// virtual time of the change and the resource's new state. Observers must not
// block; they exist so an observability layer can derive queue-depth and
// utilization timelines without polling.
type ResourceObserver func(now Time, queueLen, inUse int)

// SetObserver installs fn as the resource's state-change observer (nil
// removes it).
func (r *Resource) SetObserver(fn ResourceObserver) { r.observer = fn }

// Cap returns the resource's concurrency capacity.
func (r *Resource) Cap() int { return r.cap }

func (r *Resource) observe(now Time) {
	if r.observer != nil {
		r.observer(now, len(r.waiters), r.inUse)
	}
}

// NewResource returns a resource with the given concurrency cap.
func NewResource(name string, capacity int) *Resource {
	if capacity < 1 {
		panic(fmt.Sprintf("sim: resource %q capacity %d < 1", name, capacity))
	}
	return &Resource{name: name, cap: capacity}
}

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

// InUse reports current holders.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen reports processes waiting for the resource.
func (r *Resource) QueueLen() int { return len(r.waiters) }

func (r *Resource) stamp(now Time) {
	if r.inUse > 0 {
		r.busy += time.Duration(now-r.lastStamp) * time.Duration(min(r.inUse, r.cap)) / time.Duration(r.cap)
	}
	r.lastStamp = now
}

// BusyTime returns the accumulated busy time (capacity-weighted) up to now.
func (r *Resource) BusyTime(now Time) time.Duration {
	r.stamp(now)
	return r.busy
}

// Acquire blocks p until a slot is free, FIFO order. Time spent queued is
// reported to the process's tracer.
func (r *Resource) Acquire(p *Proc) {
	if r.inUse < r.cap && len(r.waiters) == 0 {
		r.stamp(p.Now())
		r.inUse++
		r.observe(p.Now())
		return
	}
	start := p.Now()
	r.waiters = append(r.waiters, p)
	r.observe(start)
	p.park()
	// Slot was transferred to us by Release; accounting already updated.
	if p.tracer != nil {
		p.tracer.ResourceWait(r.name, start, p.Now())
	}
}

// Release frees a slot and hands it to the first waiter, if any.
func (r *Resource) Release(p *Proc) {
	if r.inUse <= 0 {
		panic("sim: release of idle resource " + r.name)
	}
	r.stamp(p.Now())
	if len(r.waiters) > 0 {
		w := r.waiters[0]
		r.waiters = r.waiters[1:]
		// Slot stays in use, transferred to w.
		p.e.schedule(p.Now(), w, nil)
		r.observe(p.Now())
		return
	}
	r.inUse--
	r.observe(p.Now())
}

// Use acquires the resource, holds it for d of virtual time, and releases it.
// This is the common "serve one request at a station" pattern. The hold time
// is reported to the process's tracer as service time.
func (r *Resource) Use(p *Proc, d time.Duration) {
	r.Acquire(p)
	start := p.Now()
	p.Sleep(d)
	if p.tracer != nil {
		p.tracer.ResourceHold(r.name, start, p.Now())
	}
	r.Release(p)
}

// ---------------------------------------------------------------------------
// Queue: typed FIFO mailbox between processes.

// Queue is an unbounded FIFO channel between processes. Pop parks when empty;
// Push wakes the longest-waiting consumer.
type Queue[T any] struct {
	items   []T
	waiters []*Proc
	closed  bool
}

// NewQueue returns an empty queue.
func NewQueue[T any]() *Queue[T] { return &Queue[T]{} }

// Len reports queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Push enqueues v and wakes one waiting consumer.
func (q *Queue[T]) Push(p *Proc, v T) {
	if q.closed {
		panic("sim: push to closed queue")
	}
	q.items = append(q.items, v)
	q.wakeOne(p.e)
}

// PushFrom enqueues v from an engine callback context.
func (q *Queue[T]) PushFrom(e *Engine, v T) {
	if q.closed {
		panic("sim: push to closed queue")
	}
	q.items = append(q.items, v)
	q.wakeOne(e)
}

func (q *Queue[T]) wakeOne(e *Engine) {
	if len(q.waiters) > 0 {
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		e.schedule(e.now, w, nil)
	}
}

// Close marks the queue closed; blocked and future Pops return ok=false once
// drained.
func (q *Queue[T]) Close(p *Proc) {
	q.closed = true
	for _, w := range q.waiters {
		p.e.schedule(p.Now(), w, nil)
	}
	q.waiters = nil
}

// Pop dequeues the next item, parking until one is available. ok is false if
// the queue was closed and drained.
func (q *Queue[T]) Pop(p *Proc) (v T, ok bool) {
	for len(q.items) == 0 {
		if q.closed {
			var zero T
			return zero, false
		}
		q.waiters = append(q.waiters, p)
		p.park()
	}
	v = q.items[0]
	q.items = q.items[1:]
	return v, true
}

// TryPop dequeues without blocking.
func (q *Queue[T]) TryPop() (v T, ok bool) {
	if len(q.items) == 0 {
		var zero T
		return zero, false
	}
	v = q.items[0]
	q.items = q.items[1:]
	return v, true
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
