package sim

import (
	"testing"
	"time"
)

// recTracer accumulates per-resource wait and hold durations.
type recTracer struct {
	waits map[string]time.Duration
	holds map[string]time.Duration
}

func newRecTracer() *recTracer {
	return &recTracer{waits: map[string]time.Duration{}, holds: map[string]time.Duration{}}
}

func (t *recTracer) ResourceWait(r string, s, e Time) { t.waits[r] += (e - s).Duration() }
func (t *recTracer) ResourceHold(r string, s, e Time) { t.holds[r] += (e - s).Duration() }

func TestTracerWaitAndHold(t *testing.T) {
	e := New(1)
	disk := NewResource("disk", 1)
	tr := newRecTracer()
	e.Go("first", func(p *Proc) {
		disk.Use(p, 50*time.Millisecond)
	})
	e.Go("second", func(p *Proc) {
		p.SetTracer(tr)
		disk.Use(p, 30*time.Millisecond)
	})
	if left := e.Run(); left != 0 {
		t.Fatalf("leftover procs: %d", left)
	}
	if got := tr.waits["disk"]; got != 50*time.Millisecond {
		t.Errorf("second proc queue wait = %v, want 50ms", got)
	}
	if got := tr.holds["disk"]; got != 30*time.Millisecond {
		t.Errorf("second proc hold = %v, want 30ms", got)
	}
}

func TestTracerInheritedByChildren(t *testing.T) {
	e := New(1)
	disk := NewResource("disk", 1)
	tr := newRecTracer()
	e.Go("parent", func(p *Proc) {
		p.SetTracer(tr)
		sig := p.Go("child", func(q *Proc) {
			disk.Use(q, 20*time.Millisecond)
		})
		sig.Wait(p)
	})
	if left := e.Run(); left != 0 {
		t.Fatalf("leftover procs: %d", left)
	}
	if got := tr.holds["disk"]; got != 20*time.Millisecond {
		t.Errorf("child hold not attributed to parent tracer: got %v, want 20ms", got)
	}
}

func TestResourceObserver(t *testing.T) {
	e := New(1)
	disk := NewResource("disk", 1)
	type ev struct {
		at    Time
		queue int
		inUse int
	}
	var events []ev
	disk.SetObserver(func(now Time, queueLen, inUse int) {
		events = append(events, ev{now, queueLen, inUse})
	})
	for i := 0; i < 3; i++ {
		e.Go("user", func(p *Proc) {
			disk.Use(p, 10*time.Millisecond)
		})
	}
	if left := e.Run(); left != 0 {
		t.Fatalf("leftover procs: %d", left)
	}
	if len(events) == 0 {
		t.Fatal("observer saw no state changes")
	}
	maxQ := 0
	for _, v := range events {
		if v.queue > maxQ {
			maxQ = v.queue
		}
		if v.inUse < 0 || v.inUse > 1 {
			t.Errorf("inUse %d out of range for capacity 1", v.inUse)
		}
	}
	if maxQ != 2 {
		t.Errorf("max queue = %d, want 2 (three users, one slot)", maxQ)
	}
	last := events[len(events)-1]
	if last.queue != 0 || last.inUse != 0 {
		t.Errorf("final state queue=%d inUse=%d, want idle", last.queue, last.inUse)
	}
	if last.at != Time(30*time.Millisecond) {
		t.Errorf("final event at %v, want 30ms", last.at)
	}
}
