package sim

import (
	"testing"
	"time"
)

func TestSleepAdvancesClock(t *testing.T) {
	e := New(1)
	var at Time
	e.Go("sleeper", func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		at = p.Now()
	})
	if left := e.Run(); left != 0 {
		t.Fatalf("leftover procs: %d", left)
	}
	if at != Time(10*time.Millisecond) {
		t.Fatalf("woke at %v, want 10ms", at)
	}
}

func TestZeroAndNegativeSleep(t *testing.T) {
	e := New(1)
	ran := 0
	e.Go("z", func(p *Proc) {
		p.Sleep(0)
		ran++
		p.Sleep(-time.Second)
		ran++
	})
	e.Run()
	if ran != 2 {
		t.Fatalf("ran=%d want 2", ran)
	}
	if e.Now() != 0 {
		t.Fatalf("clock moved: %v", e.Now())
	}
}

func TestEventOrderDeterministic(t *testing.T) {
	e := New(1)
	var order []string
	spawn := func(name string, d time.Duration) {
		e.Go(name, func(p *Proc) {
			p.Sleep(d)
			order = append(order, name)
		})
	}
	spawn("c", 3*time.Millisecond)
	spawn("a", 1*time.Millisecond)
	spawn("b", 2*time.Millisecond)
	spawn("a2", 1*time.Millisecond) // same time as a: FIFO by spawn order
	e.Run()
	want := []string{"a", "a2", "b", "c"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestSignalBroadcast(t *testing.T) {
	e := New(1)
	s := NewSignal()
	woke := 0
	for i := 0; i < 3; i++ {
		e.Go("w", func(p *Proc) {
			s.Wait(p)
			woke++
			if p.Now() != Time(5*time.Millisecond) {
				t.Errorf("woke at %v", p.Now())
			}
		})
	}
	e.Go("firer", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		s.Fire(p)
	})
	e.Run()
	if woke != 3 {
		t.Fatalf("woke=%d want 3", woke)
	}
}

func TestSignalWaitAfterFire(t *testing.T) {
	e := New(1)
	s := NewSignal()
	done := false
	e.Go("a", func(p *Proc) {
		s.Fire(p)
		s.Wait(p) // must not block
		done = true
	})
	e.Run()
	if !done {
		t.Fatal("wait on fired signal blocked")
	}
}

func TestGoDoneSignal(t *testing.T) {
	e := New(1)
	var finished Time
	done := e.Go("worker", func(p *Proc) { p.Sleep(7 * time.Millisecond) })
	e.Go("waiter", func(p *Proc) {
		done.Wait(p)
		finished = p.Now()
	})
	e.Run()
	if finished != Time(7*time.Millisecond) {
		t.Fatalf("join at %v, want 7ms", finished)
	}
}

func TestWaitAll(t *testing.T) {
	e := New(1)
	var at Time
	s1 := e.Go("w1", func(p *Proc) { p.Sleep(time.Millisecond) })
	s2 := e.Go("w2", func(p *Proc) { p.Sleep(3 * time.Millisecond) })
	s3 := e.Go("w3", func(p *Proc) { p.Sleep(2 * time.Millisecond) })
	e.Go("joiner", func(p *Proc) {
		WaitAll(p, s1, s2, s3)
		at = p.Now()
	})
	e.Run()
	if at != Time(3*time.Millisecond) {
		t.Fatalf("joined at %v, want 3ms", at)
	}
}

func TestResourceSerializes(t *testing.T) {
	e := New(1)
	r := NewResource("disk", 1)
	var ends []Time
	for i := 0; i < 3; i++ {
		e.Go("job", func(p *Proc) {
			r.Use(p, 10*time.Millisecond)
			ends = append(ends, p.Now())
		})
	}
	e.Run()
	want := []Time{Time(10 * time.Millisecond), Time(20 * time.Millisecond), Time(30 * time.Millisecond)}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends %v, want %v", ends, want)
		}
	}
}

func TestResourceParallelism(t *testing.T) {
	e := New(1)
	r := NewResource("disks", 2)
	var ends []Time
	for i := 0; i < 4; i++ {
		e.Go("job", func(p *Proc) {
			r.Use(p, 10*time.Millisecond)
			ends = append(ends, p.Now())
		})
	}
	e.Run()
	// Two at a time: finish at 10,10,20,20 ms.
	want := []Time{Time(10 * time.Millisecond), Time(10 * time.Millisecond), Time(20 * time.Millisecond), Time(20 * time.Millisecond)}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends %v, want %v", ends, want)
		}
	}
}

func TestResourceFIFO(t *testing.T) {
	e := New(1)
	r := NewResource("disk", 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.Go("job", func(p *Proc) {
			p.Sleep(time.Duration(i) * time.Microsecond) // arrive in order
			r.Use(p, time.Millisecond)
			order = append(order, i)
		})
	}
	e.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("order %v not FIFO", order)
		}
	}
}

func TestResourceBusyTime(t *testing.T) {
	e := New(1)
	r := NewResource("disk", 1)
	e.Go("a", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		r.Use(p, 10*time.Millisecond)
	})
	e.Run()
	if got := r.BusyTime(e.Now()); got != 10*time.Millisecond {
		t.Fatalf("busy=%v want 10ms", got)
	}
}

func TestQueueProducerConsumer(t *testing.T) {
	e := New(1)
	q := NewQueue[int]()
	var got []int
	e.Go("cons", func(p *Proc) {
		for {
			v, ok := q.Pop(p)
			if !ok {
				return
			}
			got = append(got, v)
		}
	})
	e.Go("prod", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(time.Millisecond)
			q.Push(p, i)
		}
		q.Close(p)
	})
	if left := e.Run(); left != 0 {
		t.Fatalf("leftover procs: %d", left)
	}
	if len(got) != 5 {
		t.Fatalf("got %v", got)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got %v", got)
		}
	}
}

func TestQueueTryPop(t *testing.T) {
	q := NewQueue[string]()
	if _, ok := q.TryPop(); ok {
		t.Fatal("TryPop on empty queue succeeded")
	}
	e := New(1)
	e.Go("p", func(p *Proc) { q.Push(p, "x") })
	e.Run()
	v, ok := q.TryPop()
	if !ok || v != "x" {
		t.Fatalf("TryPop = %q, %v", v, ok)
	}
}

func TestRunUntil(t *testing.T) {
	e := New(1)
	ticks := 0
	e.Go("ticker", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Sleep(time.Second)
			ticks++
		}
	})
	e.RunUntil(Time(3500 * time.Millisecond))
	if ticks != 3 {
		t.Fatalf("ticks=%d want 3", ticks)
	}
	if e.Now() != Time(3500*time.Millisecond) {
		t.Fatalf("now=%v", e.Now())
	}
	e.Run()
	if ticks != 10 {
		t.Fatalf("ticks=%d want 10 after full run", ticks)
	}
}

func TestAfterCallback(t *testing.T) {
	e := New(1)
	var at Time
	e.After(42*time.Millisecond, func() { at = e.Now() })
	e.Run()
	if at != Time(42*time.Millisecond) {
		t.Fatalf("callback at %v", at)
	}
}

func TestNestedSpawn(t *testing.T) {
	e := New(1)
	total := 0
	e.Go("parent", func(p *Proc) {
		p.Sleep(time.Millisecond)
		for i := 0; i < 3; i++ {
			p.Go("child", func(c *Proc) {
				c.Sleep(time.Millisecond)
				total++
			})
		}
	})
	e.Run()
	if total != 3 {
		t.Fatalf("total=%d", total)
	}
	if e.Now() != Time(2*time.Millisecond) {
		t.Fatalf("now=%v", e.Now())
	}
}

func TestBlockedProcessReported(t *testing.T) {
	e := New(1)
	s := NewSignal()
	e.Go("stuck", func(p *Proc) { s.Wait(p) })
	if left := e.Run(); left != 1 {
		t.Fatalf("left=%d want 1 (process waiting forever)", left)
	}
}

func TestSignalFireAt(t *testing.T) {
	e := New(1)
	s := NewSignal()
	var at Time
	e.Go("w", func(p *Proc) {
		s.Wait(p)
		at = p.Now()
	})
	s.FireAt(e, Time(9*time.Millisecond))
	e.Run()
	if at != Time(9*time.Millisecond) {
		t.Fatalf("at=%v", at)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []Time {
		e := New(7)
		r := NewResource("d", 1)
		var ends []Time
		for i := 0; i < 20; i++ {
			e.Go("j", func(p *Proc) {
				d := time.Duration(p.Rand().Intn(1000)) * time.Microsecond
				p.Sleep(d)
				r.Use(p, time.Duration(p.Rand().Intn(500))*time.Microsecond)
				ends = append(ends, p.Now())
			})
		}
		e.Run()
		return ends
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestDaemonDoesNotKeepRunAlive(t *testing.T) {
	e := New(1)
	ticks := 0
	e.GoDaemon("poller", func(p *Proc) {
		for {
			p.Sleep(10 * time.Millisecond)
			ticks++
		}
	})
	done := false
	e.Go("fg", func(p *Proc) {
		p.Sleep(35 * time.Millisecond)
		done = true
	})
	e.Run()
	if !done {
		t.Fatal("foreground work did not finish")
	}
	// The daemon ran while foreground work existed, then Run returned.
	if ticks < 3 || ticks > 4 {
		t.Fatalf("daemon ticked %d times during 35ms of foreground work", ticks)
	}
	if e.Now() > Time(40*time.Millisecond) {
		t.Fatalf("run continued past foreground completion: %v", e.Now())
	}
}

func TestDaemonChildrenInheritDaemonStatus(t *testing.T) {
	e := New(1)
	e.GoDaemon("parent", func(p *Proc) {
		for {
			p.Go("child", func(c *Proc) {
				if !c.Daemon() {
					t.Error("daemon child not marked daemon")
				}
				c.Sleep(time.Millisecond)
			})
			p.Sleep(5 * time.Millisecond)
		}
	})
	e.Go("fg", func(p *Proc) { p.Sleep(12 * time.Millisecond) })
	e.Run()
	if e.Now() > Time(15*time.Millisecond) {
		t.Fatalf("daemon children kept the run alive: now=%v", e.Now())
	}
}

func TestDaemonCanUnblockForeground(t *testing.T) {
	// A non-daemon process waiting on a signal fired by a daemon must keep
	// the run going until the signal arrives.
	e := New(1)
	s := NewSignal()
	e.GoDaemon("firer", func(p *Proc) {
		p.Sleep(20 * time.Millisecond)
		s.Fire(p)
		for {
			p.Sleep(time.Hour)
		}
	})
	var woke Time
	e.Go("waiter", func(p *Proc) {
		s.Wait(p)
		woke = p.Now()
	})
	e.Run()
	if woke != Time(20*time.Millisecond) {
		t.Fatalf("waiter woke at %v, want 20ms", woke)
	}
}

func TestRunResumesDaemonsAcrossCalls(t *testing.T) {
	e := New(1)
	ticks := 0
	e.GoDaemon("poller", func(p *Proc) {
		for {
			p.Sleep(10 * time.Millisecond)
			ticks++
		}
	})
	e.Go("fg1", func(p *Proc) { p.Sleep(25 * time.Millisecond) })
	e.Run()
	first := ticks
	e.Go("fg2", func(p *Proc) { p.Sleep(25 * time.Millisecond) })
	e.Run()
	if ticks <= first {
		t.Fatalf("daemon did not resume on second Run: %d -> %d", first, ticks)
	}
}

func TestCondSignalWakesFIFO(t *testing.T) {
	e := New(1)
	c := NewCond()
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		e.GoAt(Time(i)*Time(time.Millisecond), "waiter", func(p *Proc) {
			c.Wait(p)
			order = append(order, i)
		})
	}
	e.Go("signaler", func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		for i := 0; i < 3; i++ {
			c.Signal(p)
			p.Sleep(time.Millisecond)
		}
	})
	e.Run()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("cond woke waiters out of FIFO order: %v", order)
	}
}

func TestCondBroadcastWakesAll(t *testing.T) {
	e := New(1)
	c := NewCond()
	woke := 0
	for i := 0; i < 4; i++ {
		e.Go("waiter", func(p *Proc) {
			c.Wait(p)
			woke++
		})
	}
	e.Go("caster", func(p *Proc) {
		p.Sleep(time.Millisecond)
		if c.Waiters() != 4 {
			t.Errorf("Waiters() = %d, want 4", c.Waiters())
		}
		c.Broadcast(p)
	})
	e.Run()
	if woke != 4 {
		t.Fatalf("broadcast woke %d of 4 waiters", woke)
	}
	if c.Waiters() != 0 {
		t.Fatalf("waiters remain after broadcast: %d", c.Waiters())
	}
}

func TestCondSignalNoWaitersIsNoop(t *testing.T) {
	e := New(1)
	c := NewCond()
	e.Go("signaler", func(p *Proc) {
		c.Signal(p) // must not latch: a later Wait still parks
		done := false
		p.Go("waiter", func(q *Proc) {
			c.Wait(q)
			done = true
		})
		p.Sleep(time.Millisecond)
		if done {
			t.Errorf("Wait returned without a Signal; Cond must not latch like Signal")
		}
		c.Signal(p)
		p.Sleep(time.Millisecond)
		if !done {
			t.Errorf("waiter never woke after Signal")
		}
	})
	e.Run()
}
