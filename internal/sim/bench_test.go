package sim

import (
	"testing"
	"time"
)

// BenchmarkEngineEvents measures raw DES event throughput: the budget every
// simulated I/O spends in the kernel.
func BenchmarkEngineEvents(b *testing.B) {
	e := New(1)
	e.Go("ticker", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	b.ResetTimer()
	e.Run()
}

func BenchmarkResourceHandoff(b *testing.B) {
	e := New(1)
	r := NewResource("x", 1)
	for w := 0; w < 4; w++ {
		e.Go("worker", func(p *Proc) {
			for i := 0; i < b.N/4; i++ {
				r.Use(p, time.Microsecond)
			}
		})
	}
	b.ResetTimer()
	e.Run()
}

// BenchmarkProcSpawn measures spawn/finish round trips — dominated by the
// goroutine free pool once it warms up.
func BenchmarkProcSpawn(b *testing.B) {
	e := New(1)
	e.Go("spawner", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Go("child", func(q *Proc) {}).Wait(p)
		}
	})
	b.ResetTimer()
	e.Run()
}

// BenchmarkAfterCallback measures the callback path: no process, just heap
// scheduling and dispatch.
func BenchmarkAfterCallback(b *testing.B) {
	e := New(1)
	n := 0
	var step func()
	step = func() {
		n++
		if n < b.N {
			e.After(time.Microsecond, step)
		}
	}
	e.After(time.Microsecond, step)
	b.ResetTimer()
	e.Run()
}
