package sim

import (
	"testing"
	"time"
)

// BenchmarkEngineEvents measures raw DES event throughput: the budget every
// simulated I/O spends in the kernel.
func BenchmarkEngineEvents(b *testing.B) {
	e := New(1)
	e.Go("ticker", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	b.ResetTimer()
	e.Run()
}

func BenchmarkResourceHandoff(b *testing.B) {
	e := New(1)
	r := NewResource("x", 1)
	for w := 0; w < 4; w++ {
		e.Go("worker", func(p *Proc) {
			for i := 0; i < b.N/4; i++ {
				r.Use(p, time.Microsecond)
			}
		})
	}
	b.ResetTimer()
	e.Run()
}
