// Package qos implements a deterministic per-resource op scheduler with
// priority classes, weighted fair queueing, and per-class queue-depth caps
// with backpressure. It is the single admission point through which every
// disk and NIC operation in the cluster flows, replacing the per-subsystem
// ad-hoc pacing (the dedup engine's watermark sleep loop, recovery's
// streams-per-OSD workers, scrub's one-object-at-a-time serialization) with
// one policy surface.
//
// Every I/O class — client, dedup, recovery, scrub, gc — submits work with
// Scheduler.Use. Under contention the scheduler grants service slots in
// start-time-fair-queueing (SFQ) order: each op is stamped with integer
// virtual start/finish tags derived from its cost divided by its class
// weight, and the op with the smallest finish tag runs next. A class with
// weight w receives w/Σweights of the resource's capacity while backlogged,
// and weights are clamped to at least 1, so no class is ever fully starved
// (the reservation guarantee). Because tags are integer arithmetic on the
// virtual clock, scheduling order is bit-for-bit deterministic across runs
// and platforms.
//
// Per-class MaxDepth caps bound how many ops of a class may be queued or in
// service at one scheduler. A caller over the cap parks on a sim.Cond until
// a slot frees — backpressure by blocking, not spinning — which is how
// "recovery streams" and "scrub concurrency" are now expressed.
//
// The paper's §4.4.2 watermark rate controller becomes a thin policy on top:
// it watches foreground IOPS and adjusts the dedup class weight
// (Group.SetWeight — the work-conserving share on busy devices) and the
// dedup class rate limit (Group.SetLimit — the mClock-style upper bound
// that holds the paper's one-dedup-op-per-N-client-requests trickle even
// when devices are idle). The scheduler does the actual throttling.
package qos

import (
	"time"

	"dedupstore/internal/sim"
)

// Class is an I/O priority class. Every op submitted to a Scheduler belongs
// to exactly one class.
type Class uint8

const (
	// Client is foreground client I/O: reads, writes, metadata ops issued
	// on behalf of an application.
	Client Class = iota
	// Dedup is background deduplication traffic: chunk flushes, cache
	// evictions, dirty-object scans.
	Dedup
	// Recovery is replica/shard copy and rebuild traffic after an OSD
	// failure or replacement.
	Recovery
	// Scrub is consistency verification and repair traffic.
	Scrub
	// GC is chunk-pool garbage collection traffic.
	GC
	// Tiering is adaptive-redundancy migration traffic: promote/demote chunk
	// moves between the replicated and EC chunk pools and hot-object
	// recaches issued by the tiering policy daemon.
	Tiering
	// NumClasses bounds the class enum; not a valid class.
	NumClasses
)

var classNames = [NumClasses]string{"client", "dedup", "recovery", "scrub", "gc", "tiering"}

func (c Class) String() string {
	if c < NumClasses {
		return classNames[c]
	}
	return "invalid"
}

// ClassNames lists the class names in enum order.
func ClassNames() []string {
	return append([]string(nil), classNames[:]...)
}

// ClassConfig is one class's scheduling parameters.
type ClassConfig struct {
	// Weight is the class's share of capacity under contention, relative to
	// the other classes' weights. Values below 1 are treated as 1: every
	// class keeps a minimum reservation and cannot be starved.
	Weight int64
	// MaxDepth caps ops of this class queued or in service at one
	// scheduler; 0 means unlimited. Callers over the cap block until a
	// slot frees.
	MaxDepth int
	// LimitInterval is the minimum virtual-time spacing between *logical
	// operations* of this class across the whole group; 0 means no rate
	// limit. Weights divide a *busy* device; the limit is the
	// non-work-conserving half of the policy surface (mClock's "limit"
	// tag): it bounds a class's rate even when devices are idle, which is
	// how the §4.4.2 watermark controller's "one dedup op per N client
	// requests" trickle is expressed. The spacing is enforced by callers
	// invoking Group.WaitTurn once at the start of each logical operation
	// (e.g. one chunk flush), not per device I/O — throttling an
	// operation mid-flight would stall whatever locks or objects it
	// holds. Operations that batch several cost units without a safe
	// pause point bill the remainder postpaid via Group.Charge.
	LimitInterval time.Duration
}

// Config holds the per-class parameters shared by every scheduler in a
// Group.
type Config struct {
	Classes [NumClasses]ClassConfig
}

// DefaultConfig returns the cluster defaults: client and dedup at equal
// weight (the watermark policy lowers dedup under foreground load — below
// the low watermark the paper applies no limitation), recovery at a quarter
// share, scrub and gc at a tenth. Depth caps express the old ad-hoc bounds:
// recovery's 4 streams per OSD, modest scrub/gc/dedup concurrency.
func DefaultConfig() Config {
	var cfg Config
	cfg.Classes[Client] = ClassConfig{Weight: 1000, MaxDepth: 0}
	cfg.Classes[Dedup] = ClassConfig{Weight: 1000, MaxDepth: 2}
	cfg.Classes[Recovery] = ClassConfig{Weight: 250, MaxDepth: 4}
	cfg.Classes[Scrub] = ClassConfig{Weight: 100, MaxDepth: 2}
	cfg.Classes[GC] = ClassConfig{Weight: 100, MaxDepth: 2}
	cfg.Classes[Tiering] = ClassConfig{Weight: 100, MaxDepth: 2}
	return cfg
}

// AdmitFunc observes every admission decision: the resource the op was
// admitted to, its class, how long it waited in the scheduler queue, and
// whether it had to queue at all. Wired by the cluster to its metrics
// registry.
type AdmitFunc func(resource string, cls Class, wait time.Duration, queued bool)

// Group shares one Config across all of a cluster's schedulers, so a single
// SetWeight call (the watermark policy's knob) retunes every OSD disk and
// host NIC at once.
type Group struct {
	cfg    Config
	scheds []*Scheduler

	// nextEligible is the per-class admission timeline for LimitInterval:
	// each rate-limited submitter reserves the next free slot on it.
	nextEligible [NumClasses]sim.Time

	// OnAdmit, if non-nil, is called on every admission. It must not block.
	OnAdmit AdmitFunc
}

// NewGroup returns a scheduler group with the given shared config.
func NewGroup(cfg Config) *Group { return &Group{cfg: cfg} }

// Weight returns the effective (clamped) weight of a class.
func (g *Group) Weight(cls Class) int64 {
	w := g.cfg.Classes[cls].Weight
	if w < 1 {
		return 1
	}
	return w
}

// SetWeight updates a class's weight across every scheduler in the group.
// Ops already queued keep their tags; newly submitted ops use the new
// weight, so a change takes effect within one queue drain.
func (g *Group) SetWeight(cls Class, w int64) {
	g.cfg.Classes[cls].Weight = w
}

// Limit returns a class's admission spacing (0 = no rate limit).
func (g *Group) Limit(cls Class) time.Duration { return g.cfg.Classes[cls].LimitInterval }

// SetLimit sets the minimum spacing between the class's admissions across
// the whole group (0 = no rate limit). Unlike SetWeight this is
// non-work-conserving: the class is held to the rate even on idle devices.
func (g *Group) SetLimit(cls Class, interval time.Duration) {
	if interval < 0 {
		interval = 0
	}
	if interval == 0 {
		// Drop any reserved-ahead admission slots so a later re-enable
		// starts from the current time, not a stale horizon.
		g.nextEligible[cls] = 0
	}
	g.cfg.Classes[cls].LimitInterval = interval
}

// WaitTurn holds the caller to the class's admission spacing (LimitInterval)
// and returns immediately when no limit is set. Call it once at the start of
// each logical operation of the class. The caller claims the next slot if it
// is due, otherwise sleeps until the slot time and re-checks. Nothing is
// reserved ahead of time, so the admission horizon never runs more than one
// interval past the clock and retuning or clearing the limit takes effect
// within one interval even for callers already asleep.
func (g *Group) WaitTurn(p *sim.Proc, cls Class) {
	for {
		iv := g.cfg.Classes[cls].LimitInterval
		if iv <= 0 {
			return
		}
		now := p.Now()
		if next := g.nextEligible[cls]; next > now {
			p.SleepUntil(next)
			continue
		}
		g.nextEligible[cls] = now + sim.Time(iv)
		return
	}
}

// Charge bills a completed operation that turned out to cover n cost units
// (postpaid cost accounting, as mClock does with delayed cost adjustment):
// WaitTurn prepays one admission slot, Charge pushes the class's next slot
// out by the remaining n-1 intervals once the true cost is known. A no-op
// when no limit is set.
func (g *Group) Charge(p *sim.Proc, cls Class, n int64) {
	iv := g.cfg.Classes[cls].LimitInterval
	if iv <= 0 || n <= 1 {
		return
	}
	next := g.nextEligible[cls]
	if now := p.Now(); next < now {
		next = now
	}
	g.nextEligible[cls] = next + sim.Time(iv)*sim.Time(n-1)
}

// MaxDepth returns a class's queue-depth cap (0 = unlimited).
func (g *Group) MaxDepth(cls Class) int { return g.cfg.Classes[cls].MaxDepth }

// SetMaxDepth updates a class's depth cap across the group (0 = unlimited).
// Submitters already parked on a lowered cap stay parked until in-flight ops
// of the class drain below it; a raised cap admits new submitters
// immediately and parked ones as completions wake them.
func (g *Group) SetMaxDepth(cls Class, depth int) {
	if depth < 0 {
		depth = 0
	}
	g.cfg.Classes[cls].MaxDepth = depth
}

// NewScheduler creates a scheduler fronting res and registers it with the
// group. All access to res must go through the returned scheduler: the SFQ
// grant order relies on the underlying resource never queueing on its own.
func (g *Group) NewScheduler(res *sim.Resource) *Scheduler {
	s := &Scheduler{g: g, res: res}
	for c := range s.depthCond {
		s.depthCond[c] = sim.NewCond()
	}
	g.scheds = append(g.scheds, s)
	return s
}

// Schedulers returns the group's schedulers in creation order.
func (g *Group) Schedulers() []*Scheduler { return g.scheds }

// ClassTotals is one class's aggregated counters, across one scheduler or a
// whole group.
type ClassTotals struct {
	Class     string        // class name
	Weight    int64         // current effective weight
	MaxDepth  int           // configured depth cap (0 = unlimited)
	Limit     time.Duration // admission spacing (0 = no rate limit)
	Admitted  int64         // ops granted service
	Queued    int64         // ops that waited in the fair queue before service
	Throttled int64         // times a submitter blocked on the depth cap
	QueueLen  int           // ops currently waiting in the fair queue
	Inflight  int           // ops currently in service
	MaxQueue  int           // high-water fair-queue length
	QueueWait time.Duration // total time ops spent queued
	Busy      time.Duration // total service time consumed
}

// Totals aggregates counters per class across every scheduler in the group.
func (g *Group) Totals() []ClassTotals {
	out := make([]ClassTotals, NumClasses)
	for c := Class(0); c < NumClasses; c++ {
		out[c].Class = c.String()
		out[c].Weight = g.Weight(c)
		out[c].MaxDepth = g.cfg.Classes[c].MaxDepth
		out[c].Limit = g.cfg.Classes[c].LimitInterval
	}
	for _, s := range g.scheds {
		for c := Class(0); c < NumClasses; c++ {
			st := &s.classes[c]
			t := &out[c]
			t.Admitted += st.admitted
			t.Queued += st.queued
			t.Throttled += st.throttled
			t.QueueLen += len(st.queue)
			t.Inflight += st.pending - len(st.queue)
			if st.maxQueue > t.MaxQueue {
				t.MaxQueue = st.maxQueue
			}
			t.QueueWait += st.waitTime
			t.Busy += st.busy
		}
	}
	return out
}

// weightScale keeps integer finish-tag increments meaningful for
// sub-microsecond costs divided by large weights.
const weightScale = 1000

type waiter struct {
	start  int64 // SFQ virtual start tag
	finish int64 // SFQ virtual finish tag
	sig    *sim.Signal
}

type classState struct {
	queue      []*waiter
	lastFinish int64 // finish tag of this class's most recent submission
	pending    int   // queued + in service (MaxDepth accounting)

	admitted  int64
	queued    int64
	throttled int64
	maxQueue  int
	waitTime  time.Duration
	busy      time.Duration
}

// Scheduler is the admission gate in front of one sim.Resource (an OSD's
// disk, a host's NIC). It grants at most res.Cap() concurrent ops, picking
// the next op by smallest SFQ finish tag whenever a slot frees.
type Scheduler struct {
	g   *Group
	res *sim.Resource

	inflight    int   // ops currently holding a resource slot
	queuedTotal int   // ops across all class queues
	virt        int64 // SFQ virtual clock: max start tag granted so far

	classes   [NumClasses]classState
	depthCond [NumClasses]*sim.Cond
}

// Resource returns the underlying resource (for name/utilization reporting).
func (s *Scheduler) Resource() *sim.Resource { return s.res }

// Use submits an op of the given class and cost: it blocks until the class
// is under its depth cap and the fair queue grants a service slot, holds the
// underlying resource for d of virtual time, then releases the slot to the
// next op in SFQ order. Queue wait and service time are reported to the
// process's tracer under the resource's name, so trace spans keep their
// queue-wait/service breakdown.
func (s *Scheduler) Use(p *sim.Proc, cls Class, d time.Duration) {
	if d < 0 {
		d = 0
	}
	st := &s.classes[cls]

	// Backpressure: park (never spin) while the class is at its depth cap.
	// The loop re-checks because another submitter may take the freed slot
	// between our wakeup being scheduled and running.
	if max := s.g.cfg.Classes[cls].MaxDepth; max > 0 && st.pending >= max {
		st.throttled++
		for st.pending >= max {
			s.depthCond[cls].Wait(p)
		}
	}
	st.pending++

	s.admit(p, cls, d)

	// Service. The scheduler only grants while inflight < cap and it is the
	// sole admission path, so this Acquire never queues.
	s.res.Acquire(p)
	start := p.Now()
	p.Sleep(d)
	if t := p.Tracer(); t != nil {
		t.ResourceHold(s.res.Name(), start, p.Now())
	}
	s.res.Release(p)
	st.busy += d

	s.inflight--
	st.pending--
	s.depthCond[cls].Signal(p)
	s.dispatch(p)
}

// admit blocks p until the fair queue grants it a service slot.
func (s *Scheduler) admit(p *sim.Proc, cls Class, d time.Duration) {
	st := &s.classes[cls]
	if s.inflight < s.res.Cap() && s.queuedTotal == 0 {
		// Free slot and an empty queue: grant immediately.
		startTag, _ := s.tag(cls, d)
		if startTag > s.virt {
			s.virt = startTag
		}
		s.inflight++
		st.admitted++
		if fn := s.g.OnAdmit; fn != nil {
			fn(s.res.Name(), cls, 0, false)
		}
		return
	}
	w := &waiter{sig: sim.NewSignal()}
	w.start, w.finish = s.tag(cls, d)
	st.queue = append(st.queue, w)
	st.queued++
	if len(st.queue) > st.maxQueue {
		st.maxQueue = len(st.queue)
	}
	s.queuedTotal++
	begin := p.Now()
	w.sig.Wait(p) // dispatch fires this when the op wins a slot
	wait := (p.Now() - begin).Duration()
	st.waitTime += wait
	st.admitted++
	if t := p.Tracer(); t != nil {
		t.ResourceWait(s.res.Name(), begin, p.Now())
	}
	if fn := s.g.OnAdmit; fn != nil {
		fn(s.res.Name(), cls, wait, true)
	}
}

// tag stamps a submission with SFQ virtual start/finish tags: start at the
// later of the virtual clock and the class's last finish (so an idle class
// re-enters at the current virtual time instead of burning accumulated
// credit), finish after cost/weight of virtual progress.
func (s *Scheduler) tag(cls Class, d time.Duration) (start, finish int64) {
	st := &s.classes[cls]
	start = s.virt
	if st.lastFinish > start {
		start = st.lastFinish
	}
	inc := int64(d) * weightScale / s.g.Weight(cls)
	if inc < 1 {
		inc = 1
	}
	finish = start + inc
	st.lastFinish = finish
	return start, finish
}

// dispatch fills free service slots with queued ops in SFQ order: smallest
// finish tag first, ties broken by class enum order. Within a class the
// queue is FIFO and tags are monotonic, so the head always has the class's
// smallest finish tag.
func (s *Scheduler) dispatch(p *sim.Proc) {
	for s.inflight < s.res.Cap() && s.queuedTotal > 0 {
		best := -1
		for c := 0; c < int(NumClasses); c++ {
			q := s.classes[c].queue
			if len(q) == 0 {
				continue
			}
			if best < 0 || q[0].finish < s.classes[best].queue[0].finish {
				best = c
			}
		}
		st := &s.classes[best]
		w := st.queue[0]
		st.queue = st.queue[1:]
		s.queuedTotal--
		if w.start > s.virt {
			s.virt = w.start
		}
		s.inflight++
		w.sig.Fire(p)
	}
}

// Snapshot returns this scheduler's per-class counters.
func (s *Scheduler) Snapshot() []ClassTotals {
	out := make([]ClassTotals, NumClasses)
	for c := Class(0); c < NumClasses; c++ {
		st := &s.classes[c]
		out[c] = ClassTotals{
			Class:     c.String(),
			Weight:    s.g.Weight(c),
			MaxDepth:  s.g.cfg.Classes[c].MaxDepth,
			Limit:     s.g.cfg.Classes[c].LimitInterval,
			Admitted:  st.admitted,
			Queued:    st.queued,
			Throttled: st.throttled,
			QueueLen:  len(st.queue),
			Inflight:  st.pending - len(st.queue),
			MaxQueue:  st.maxQueue,
			QueueWait: st.waitTime,
			Busy:      st.busy,
		}
	}
	return out
}
