package qos

import (
	"reflect"
	"testing"
	"time"

	"dedupstore/internal/sim"
)

// saturate spawns workers issuing back-to-back ops of the given class and
// cost until virtual time limit, and returns a counter of completed ops.
func saturate(eng *sim.Engine, s *Scheduler, cls Class, workers int, cost time.Duration, limit sim.Time) *int {
	n := new(int)
	for i := 0; i < workers; i++ {
		eng.Go(cls.String(), func(p *sim.Proc) {
			for p.Now() < limit {
				s.Use(p, cls, cost)
				*n++
			}
		})
	}
	return n
}

func TestImmediateGrantWhenIdle(t *testing.T) {
	eng := sim.New(1)
	g := NewGroup(DefaultConfig())
	s := g.NewScheduler(sim.NewResource("disk", 2))
	var elapsed time.Duration
	eng.Go("op", func(p *sim.Proc) {
		start := p.Now()
		s.Use(p, Client, time.Millisecond)
		elapsed = (p.Now() - start).Duration()
	})
	eng.Run()
	if elapsed != time.Millisecond {
		t.Fatalf("idle op took %v, want exactly the 1ms service time", elapsed)
	}
	tot := s.Snapshot()[Client]
	if tot.Admitted != 1 || tot.Queued != 0 || tot.QueueWait != 0 {
		t.Fatalf("idle op stats = %+v, want admitted=1 queued=0 wait=0", tot)
	}
}

func TestWeightedFairShare(t *testing.T) {
	var cfg Config
	cfg.Classes[Client] = ClassConfig{Weight: 300}
	cfg.Classes[Dedup] = ClassConfig{Weight: 100}
	eng := sim.New(2)
	g := NewGroup(cfg)
	s := g.NewScheduler(sim.NewResource("disk", 1))
	limit := sim.Time(400 * time.Millisecond)
	nc := saturate(eng, s, Client, 4, time.Millisecond, limit)
	nd := saturate(eng, s, Dedup, 4, time.Millisecond, limit)
	eng.Run()
	if *nc == 0 || *nd == 0 {
		t.Fatalf("no progress: client=%d dedup=%d", *nc, *nd)
	}
	ratio := float64(*nc) / float64(*nd)
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("client:dedup = %d:%d (ratio %.2f), want ~3.0 for weights 300:100", *nc, *nd, ratio)
	}
}

// TestStarvationFreedom is the scheduler's reservation guarantee: under a
// saturating client load, every background class — even at the minimum
// weight — keeps making progress.
func TestStarvationFreedom(t *testing.T) {
	var cfg Config
	cfg.Classes[Client] = ClassConfig{Weight: 1000}
	for _, cls := range []Class{Dedup, Recovery, Scrub, GC} {
		cfg.Classes[cls] = ClassConfig{Weight: 0} // clamped to the minimum reservation of 1
	}
	eng := sim.New(3)
	g := NewGroup(cfg)
	s := g.NewScheduler(sim.NewResource("disk", 1))
	limit := sim.Time(2 * time.Second)
	counts := map[Class]*int{
		Client:   saturate(eng, s, Client, 8, 100*time.Microsecond, limit),
		Dedup:    saturate(eng, s, Dedup, 1, 100*time.Microsecond, limit),
		Recovery: saturate(eng, s, Recovery, 1, 100*time.Microsecond, limit),
		Scrub:    saturate(eng, s, Scrub, 1, 100*time.Microsecond, limit),
		GC:       saturate(eng, s, GC, 1, 100*time.Microsecond, limit),
	}
	eng.Run()
	for cls, n := range counts {
		if *n == 0 {
			t.Errorf("class %v starved: 0 ops completed under saturating client load", cls)
		}
	}
	for _, cls := range []Class{Dedup, Recovery, Scrub, GC} {
		if *counts[cls] >= *counts[Client] {
			t.Errorf("class %v (%d ops) should run far less than client (%d ops) at weight 1 vs 1000",
				cls, *counts[cls], *counts[Client])
		}
	}
}

func TestDepthCapBackpressure(t *testing.T) {
	var cfg Config
	cfg.Classes[Dedup] = ClassConfig{Weight: 100, MaxDepth: 2}
	eng := sim.New(4)
	g := NewGroup(cfg)
	s := g.NewScheduler(sim.NewResource("disk", 1))
	const ops = 6
	done := 0
	maxPending := 0
	for i := 0; i < ops; i++ {
		eng.Go("dedup", func(p *sim.Proc) {
			s.Use(p, Dedup, time.Millisecond)
			done++
		})
	}
	eng.GoDaemon("probe", func(p *sim.Proc) {
		for {
			snap := s.Snapshot()[Dedup]
			if pending := snap.QueueLen + snap.Inflight; pending > maxPending {
				maxPending = pending
			}
			p.Sleep(100 * time.Microsecond)
		}
	})
	eng.Run()
	if done != ops {
		t.Fatalf("completed %d/%d ops; depth cap must backpressure, not drop", done, ops)
	}
	if maxPending > 2 {
		t.Fatalf("observed %d pending dedup ops, depth cap is 2", maxPending)
	}
	if th := s.Snapshot()[Dedup].Throttled; th == 0 {
		t.Fatalf("6 concurrent ops against MaxDepth=2 should record throttled submitters")
	}
	if eng.Now() != sim.Time(ops*time.Millisecond) {
		t.Fatalf("cap-1 resource serving 6×1ms ops should finish at 6ms, got %v", eng.Now())
	}
}

func TestSetWeightRetunesLiveTraffic(t *testing.T) {
	var cfg Config
	cfg.Classes[Client] = ClassConfig{Weight: 100}
	cfg.Classes[Dedup] = ClassConfig{Weight: 100}
	eng := sim.New(5)
	g := NewGroup(cfg)
	s := g.NewScheduler(sim.NewResource("disk", 1))

	phase1 := sim.Time(200 * time.Millisecond)
	phase2 := sim.Time(400 * time.Millisecond)
	nc := saturate(eng, s, Client, 4, time.Millisecond, phase2)
	nd := saturate(eng, s, Dedup, 4, time.Millisecond, phase2)
	var c1, d1 int
	eng.GoDaemon("retune", func(p *sim.Proc) {
		p.SleepUntil(phase1)
		c1, d1 = *nc, *nd
		g.SetWeight(Dedup, 5) // watermark-style clampdown
	})
	eng.Run()
	r1 := float64(c1) / float64(d1)
	if r1 < 0.8 || r1 > 1.25 {
		t.Fatalf("equal weights phase: client:dedup ratio %.2f, want ~1", r1)
	}
	c2, d2 := *nc-c1, *nd-d1
	if d2 == 0 {
		t.Fatalf("dedup fully starved after SetWeight; reservation must keep it moving")
	}
	if r2 := float64(c2) / float64(d2); r2 < 10 {
		t.Fatalf("after weight 100->5, client:dedup ratio %.2f, want >= 10", r2)
	}
}

func TestFIFOWithinClass(t *testing.T) {
	eng := sim.New(6)
	g := NewGroup(DefaultConfig())
	s := g.NewScheduler(sim.NewResource("disk", 1))
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		// Stagger submissions by a microsecond so arrival order is defined.
		eng.GoAt(sim.Time(i)*sim.Time(time.Microsecond), "op", func(p *sim.Proc) {
			s.Use(p, Client, time.Millisecond)
			order = append(order, i)
		})
	}
	eng.Run()
	if !reflect.DeepEqual(order, []int{0, 1, 2, 3, 4}) {
		t.Fatalf("same-class ops completed out of order: %v", order)
	}
}

func TestSchedulerNeverOversubscribesResource(t *testing.T) {
	eng := sim.New(7)
	g := NewGroup(DefaultConfig())
	res := sim.NewResource("disk", 3)
	maxInUse := 0
	res.SetObserver(func(_ sim.Time, _, inUse int) {
		if inUse > maxInUse {
			maxInUse = inUse
		}
	})
	s := g.NewScheduler(res)
	limit := sim.Time(50 * time.Millisecond)
	saturate(eng, s, Client, 6, time.Millisecond, limit)
	saturate(eng, s, Recovery, 6, time.Millisecond, limit)
	eng.Run()
	if maxInUse != 3 {
		t.Fatalf("resource max occupancy %d, want exactly the cap 3 under saturation", maxInUse)
	}
}

func TestGroupTotalsAggregate(t *testing.T) {
	eng := sim.New(8)
	g := NewGroup(DefaultConfig())
	s1 := g.NewScheduler(sim.NewResource("disk-0", 1))
	s2 := g.NewScheduler(sim.NewResource("disk-1", 1))
	eng.Go("ops", func(p *sim.Proc) {
		s1.Use(p, Client, time.Millisecond)
		s2.Use(p, Client, time.Millisecond)
		s2.Use(p, Scrub, time.Millisecond)
	})
	eng.Run()
	tot := g.Totals()
	if tot[Client].Admitted != 2 {
		t.Fatalf("client admitted = %d across group, want 2", tot[Client].Admitted)
	}
	if tot[Scrub].Admitted != 1 {
		t.Fatalf("scrub admitted = %d across group, want 1", tot[Scrub].Admitted)
	}
	if tot[Client].Busy != 2*time.Millisecond {
		t.Fatalf("client busy = %v, want 2ms", tot[Client].Busy)
	}
	if tot[Client].Class != "client" || tot[GC].Class != "gc" {
		t.Fatalf("class names wrong in totals: %+v", tot)
	}
}

// TestDeterminism re-runs an identical contended scenario and requires
// bit-identical counters and finish time.
func TestDeterminism(t *testing.T) {
	run := func() ([]ClassTotals, sim.Time) {
		eng := sim.New(9)
		g := NewGroup(DefaultConfig())
		s := g.NewScheduler(sim.NewResource("disk", 2))
		limit := sim.Time(100 * time.Millisecond)
		saturate(eng, s, Client, 5, 700*time.Microsecond, limit)
		saturate(eng, s, Dedup, 3, 1300*time.Microsecond, limit)
		saturate(eng, s, Recovery, 2, 400*time.Microsecond, limit)
		eng.Run()
		return g.Totals(), eng.Now()
	}
	t1, end1 := run()
	t2, end2 := run()
	if end1 != end2 || !reflect.DeepEqual(t1, t2) {
		t.Fatalf("scheduler is nondeterministic:\nrun1 end=%v totals=%+v\nrun2 end=%v totals=%+v", end1, t1, end2, t2)
	}
}

func TestClassString(t *testing.T) {
	want := []string{"client", "dedup", "recovery", "scrub", "gc", "tiering"}
	if got := ClassNames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("ClassNames() = %v, want %v", got, want)
	}
	if Class(200).String() != "invalid" {
		t.Fatalf("out-of-range class should stringify as invalid")
	}
}

func TestRateLimitSpacesAdmissions(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Classes[Dedup].LimitInterval = 10 * time.Millisecond
	eng := sim.New(11)
	g := NewGroup(cfg)
	s := g.NewScheduler(sim.NewResource("disk", 2))
	// Three logical operations back to back on an otherwise idle device:
	// WaitTurn spaces their starts at 0/10/20ms; the device ops themselves
	// run unthrottled once admitted.
	var done []time.Duration
	eng.Go("dedup", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			g.WaitTurn(p, Dedup)
			s.Use(p, Dedup, time.Millisecond)
			done = append(done, p.Now().Duration())
		}
	})
	eng.Run()
	want := []time.Duration{
		1 * time.Millisecond, 11 * time.Millisecond, 21 * time.Millisecond,
	}
	if !reflect.DeepEqual(done, want) {
		t.Fatalf("rate-limited completions at %v, want %v", done, want)
	}
}

func TestWaitTurnNoLimitIsFree(t *testing.T) {
	eng := sim.New(12)
	g := NewGroup(DefaultConfig())
	s := g.NewScheduler(sim.NewResource("disk", 2))
	var clientDone time.Duration
	eng.Go("client", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			g.WaitTurn(p, Client)
			s.Use(p, Client, time.Millisecond)
		}
		clientDone = p.Now().Duration()
	})
	eng.Run()
	if clientDone != 5*time.Millisecond {
		t.Fatalf("unlimited ops took %v, want 5ms", clientDone)
	}
}

func TestSetLimitClearWakesSleepersWithinOneInterval(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Classes[Dedup].LimitInterval = 20 * time.Millisecond
	eng := sim.New(13)
	g := NewGroup(cfg)
	s := g.NewScheduler(sim.NewResource("disk", 2))
	var stamps []time.Duration
	eng.Go("dedup", func(p *sim.Proc) {
		g.WaitTurn(p, Dedup) // claims t=0, horizon 20ms
		s.Use(p, Dedup, time.Millisecond)
		g.WaitTurn(p, Dedup) // sleeps to 20ms, horizon 40ms
		s.Use(p, Dedup, time.Millisecond)
		g.SetLimit(Dedup, 0) // clears the horizon
		g.WaitTurn(p, Dedup) // no limit: returns immediately
		s.Use(p, Dedup, time.Millisecond)
		stamps = append(stamps, p.Now().Duration())
		g.SetLimit(Dedup, 20*time.Millisecond)
		g.WaitTurn(p, Dedup) // fresh horizon: no stale backlog
		s.Use(p, Dedup, time.Millisecond)
		stamps = append(stamps, p.Now().Duration())
	})
	eng.Go("late", func(p *sim.Proc) {
		// A second submitter that starts while the limit is active and is
		// asleep waiting its turn when the limit changes under it: it must
		// wake and re-check, not honor a stale reservation.
		p.Sleep(time.Millisecond)
		g.WaitTurn(p, Dedup)
		stamps = append(stamps, p.Now().Duration())
	})
	eng.Run()
	// The exact interleaving is scheduler-defined; what matters is that
	// every caller proceeds — no one keeps honoring a reservation made
	// under a limit that has since been cleared or retuned.
	if len(stamps) != 3 {
		t.Fatalf("got %d stamps: %v", len(stamps), stamps)
	}
	for _, ts := range stamps {
		if ts > 60*time.Millisecond {
			t.Fatalf("caller stalled until %v after the limit was cleared: %v", ts, stamps)
		}
	}
}

func TestChargeBillsPostpaid(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Classes[Dedup].LimitInterval = 10 * time.Millisecond
	eng := sim.New(14)
	g := NewGroup(cfg)
	s := g.NewScheduler(sim.NewResource("disk", 2))
	var done []time.Duration
	eng.Go("dedup", func(p *sim.Proc) {
		// A batched operation covering 3 cost units: prepay one slot, run,
		// bill the remaining two postpaid. The next operation then waits
		// out the full 3-slot horizon (eligible at 30ms) instead of the
		// single prepaid interval.
		g.WaitTurn(p, Dedup)
		s.Use(p, Dedup, time.Millisecond)
		g.Charge(p, Dedup, 3)
		done = append(done, p.Now().Duration())
		g.WaitTurn(p, Dedup)
		s.Use(p, Dedup, time.Millisecond)
		done = append(done, p.Now().Duration())
	})
	eng.Run()
	want := []time.Duration{1 * time.Millisecond, 31 * time.Millisecond}
	if !reflect.DeepEqual(done, want) {
		t.Fatalf("postpaid-billed completions at %v, want %v", done, want)
	}
}
