package harness

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dedupstore/internal/experiments"
)

func sampleResult() experiments.Result {
	return experiments.Result{
		Name: "figX",
		Tables: []experiments.Table{{
			Title:   "Figure X: sample",
			Columns: []string{"workload", "lat(ms)", "cpu"},
			Rows: [][]string{
				{"randwrite", "9.1", "0.3"},
				{"randread", "2.2", "0.1"},
			},
			Notes: []string{"shape target: flat"},
		}},
	}
}

func TestGoldenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	res := []experiments.Result{sampleResult()}
	if err := WriteGolden(dir, res); err != nil {
		t.Fatal(err)
	}
	diffs, err := CheckGolden(dir, res)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 0 {
		t.Fatalf("clean round-trip produced diffs: %v", diffs)
	}
}

// TestGoldenSingleCellPerturbation is the CI gate's core property: changing
// exactly one cell of a snapshotted result yields exactly one diff carrying
// the precise coordinates and both values.
func TestGoldenSingleCellPerturbation(t *testing.T) {
	dir := t.TempDir()
	if err := WriteGolden(dir, []experiments.Result{sampleResult()}); err != nil {
		t.Fatal(err)
	}
	got := sampleResult()
	got.Tables[0].Rows[0][1] = "7.3" // the fig10 rate-controller shift, in miniature
	diffs, err := CheckGolden(dir, []experiments.Result{got})
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 1 {
		t.Fatalf("got %d diffs, want exactly 1: %v", len(diffs), diffs)
	}
	d := diffs[0]
	if d.Experiment != "figX" || d.Row != 0 || d.Col != 1 ||
		d.RowLabel != "randwrite" || d.ColName != "lat(ms)" ||
		d.Golden != "9.1" || d.Got != "7.3" {
		t.Errorf("diff coordinates wrong: %+v", d)
	}
	s := d.String()
	for _, want := range []string{"figX", "Figure X: sample", "randwrite", "lat(ms)", `"9.1"`, `"7.3"`} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered diff missing %q: %s", want, s)
		}
	}
}

func TestGoldenStructuralDiffs(t *testing.T) {
	dir := t.TempDir()
	if err := WriteGolden(dir, []experiments.Result{sampleResult()}); err != nil {
		t.Fatal(err)
	}

	t.Run("missing snapshot", func(t *testing.T) {
		other := sampleResult()
		other.Name = "figY"
		diffs, err := CheckGolden(dir, []experiments.Result{other})
		if err != nil {
			t.Fatal(err)
		}
		if len(diffs) != 1 || !strings.Contains(diffs[0].String(), "missing") {
			t.Errorf("missing snapshot not reported: %v", diffs)
		}
	})

	t.Run("row count drift", func(t *testing.T) {
		got := sampleResult()
		got.Tables[0].Rows = got.Tables[0].Rows[:1]
		diffs, err := CheckGolden(dir, []experiments.Result{got})
		if err != nil {
			t.Fatal(err)
		}
		if len(diffs) != 1 || diffs[0].Row != -1 || !strings.Contains(diffs[0].String(), "rows") {
			t.Errorf("row-count drift not reported structurally: %v", diffs)
		}
	})

	t.Run("column rename", func(t *testing.T) {
		got := sampleResult()
		got.Tables[0].Columns[1] = "latency(ms)"
		diffs, err := CheckGolden(dir, []experiments.Result{got})
		if err != nil {
			t.Fatal(err)
		}
		if len(diffs) != 1 || !strings.Contains(diffs[0].String(), "columns") {
			t.Errorf("column drift not reported: %v", diffs)
		}
	})

	t.Run("note change", func(t *testing.T) {
		got := sampleResult()
		got.Tables[0].Notes[0] = "shape target: rising"
		diffs, err := CheckGolden(dir, []experiments.Result{got})
		if err != nil {
			t.Fatal(err)
		}
		if len(diffs) != 1 || !strings.Contains(diffs[0].String(), "notes") {
			t.Errorf("note drift not reported: %v", diffs)
		}
	})

	t.Run("table count drift", func(t *testing.T) {
		got := sampleResult()
		got.Tables = append(got.Tables, experiments.Table{Title: "extra"})
		diffs, err := CheckGolden(dir, []experiments.Result{got})
		if err != nil {
			t.Fatal(err)
		}
		if len(diffs) != 1 || !strings.Contains(diffs[0].String(), "tables") {
			t.Errorf("table-count drift not reported: %v", diffs)
		}
	})
}

// TestGoldenNonCanonicalSnapshot: a snapshot that parses to the same value
// but isn't byte-canonical (e.g. hand-edited compact JSON) is flagged, so
// checked-in files always stay regenerable via -golden write.
func TestGoldenNonCanonicalSnapshot(t *testing.T) {
	dir := t.TempDir()
	res := sampleResult()
	compact, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, res.Name+".json"), compact, 0o644); err != nil {
		t.Fatal(err)
	}
	diffs, err := CheckGolden(dir, []experiments.Result{res})
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 1 || !strings.Contains(diffs[0].String(), "canonical") {
		t.Errorf("non-canonical snapshot not flagged: %v", diffs)
	}
}
