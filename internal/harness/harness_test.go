package harness

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dedupstore/internal/experiments"
	"dedupstore/internal/metrics"
)

// fakeExp builds a trivially fast experiment whose table depends only on its
// name, with an optional artificial delay to force out-of-order completion.
func fakeExp(name string, delay time.Duration) experiments.Experiment {
	return experiments.NewExperiment(name, func(sc experiments.Scale) experiments.Result {
		if delay > 0 {
			time.Sleep(delay)
		}
		return experiments.Result{Name: name, Tables: []experiments.Table{{
			Title:   "table " + name,
			Columns: []string{"k", "v"},
			Rows:    [][]string{{name, fmt.Sprintf("%.2f", sc.Data)}},
		}}}
	})
}

// TestRunEmitsInCanonicalOrder: the first experiment is the slowest, so with
// a wide pool later experiments finish first — emit order must still be
// input order, and streaming must deliver every report exactly once.
func TestRunEmitsInCanonicalOrder(t *testing.T) {
	exps := []experiments.Experiment{
		fakeExp("a", 120*time.Millisecond),
		fakeExp("b", 40*time.Millisecond),
		fakeExp("c", 0),
		fakeExp("d", 10*time.Millisecond),
	}
	var emitted []string
	reports := Run(exps, Options{Workers: 4}, func(rep Report) {
		emitted = append(emitted, rep.Name)
	})
	want := []string{"a", "b", "c", "d"}
	if strings.Join(emitted, ",") != strings.Join(want, ",") {
		t.Errorf("emit order = %v, want %v", emitted, want)
	}
	if len(reports) != len(exps) {
		t.Fatalf("got %d reports, want %d", len(reports), len(exps))
	}
	for i, rep := range reports {
		if rep.Name != want[i] {
			t.Errorf("report[%d] = %s, want %s", i, rep.Name, want[i])
		}
		if rep.Err != nil {
			t.Errorf("%s: unexpected error %v", rep.Name, rep.Err)
		}
		if !strings.Contains(rep.Output, "table "+rep.Name) {
			t.Errorf("%s: output missing its table:\n%s", rep.Name, rep.Output)
		}
	}
}

// TestPanicIsolation: a panicking experiment becomes Report.Err without
// taking down the sweep or disturbing its neighbors.
func TestPanicIsolation(t *testing.T) {
	boom := experiments.NewExperiment("boom", func(experiments.Scale) experiments.Result {
		panic("injected failure")
	})
	exps := []experiments.Experiment{fakeExp("a", 0), boom, fakeExp("b", 0)}
	reports := Run(exps, Options{Workers: 2}, nil)
	if reports[0].Err != nil || reports[2].Err != nil {
		t.Errorf("healthy experiments errored: %v / %v", reports[0].Err, reports[2].Err)
	}
	if reports[1].Err == nil || !strings.Contains(reports[1].Err.Error(), "injected failure") {
		t.Errorf("panic not converted to error: %v", reports[1].Err)
	}
}

// TestWorkerPoolBounded: no more than Options.Workers experiments run
// simultaneously.
func TestWorkerPoolBounded(t *testing.T) {
	var inFlight, peak atomic.Int32
	exps := make([]experiments.Experiment, 8)
	for i := range exps {
		exps[i] = experiments.NewExperiment(fmt.Sprintf("e%d", i), func(experiments.Scale) experiments.Result {
			n := inFlight.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(20 * time.Millisecond)
			inFlight.Add(-1)
			return experiments.Result{Name: "x"}
		})
	}
	Run(exps, Options{Workers: 2}, nil)
	if p := peak.Load(); p > 2 {
		t.Errorf("peak concurrency %d exceeds pool size 2", p)
	}
}

// TestParallelMatchesSequentialTwoSeeds is the harness's core guarantee:
// because every experiment owns an isolated sim, a parallel sweep must be
// bit-identical to the sequential reference — rendered output and canonical
// JSON both — across different chaos seeds.
func TestParallelMatchesSequentialTwoSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	sc := experiments.Scale{Data: 0.05}
	chaosAt := func(seed int64) experiments.Experiment {
		name := fmt.Sprintf("chaos-seed%d", seed)
		return experiments.NewExperiment(name, func(sc experiments.Scale) experiments.Result {
			return experiments.Result{Name: name, Tables: experiments.ChaosTables(experiments.ChaosSeeded(sc, seed))}
		})
	}
	exps := []experiments.Experiment{
		chaosAt(811),
		chaosAt(977),
		experiments.NewExperiment("table2", experiments.Table2Result),
		experiments.NewExperiment("fig5a", experiments.Fig5aResult),
	}
	seq := Run(exps, Options{Workers: 1, Scale: sc, TraceN: 5}, nil)
	par := Run(exps, Options{Workers: 4, Scale: sc, TraceN: 5}, nil)
	for i := range seq {
		if seq[i].Err != nil || par[i].Err != nil {
			t.Fatalf("%s errored: seq=%v par=%v", seq[i].Name, seq[i].Err, par[i].Err)
		}
		if seq[i].Output != par[i].Output {
			t.Errorf("%s: rendered output differs between sequential and parallel runs", seq[i].Name)
		}
		sj, err1 := seq[i].Result.CanonicalJSON()
		pj, err2 := par[i].Result.CanonicalJSON()
		if err1 != nil || err2 != nil {
			t.Fatalf("marshal: %v / %v", err1, err2)
		}
		if string(sj) != string(pj) {
			t.Errorf("%s: canonical JSON differs between sequential and parallel runs", seq[i].Name)
		}
		if seq[i].Trace != par[i].Trace {
			t.Errorf("%s: trace report differs between sequential and parallel runs", seq[i].Name)
		}
	}
}

// TestWallClockInstrumentation: the harness records per-experiment and total
// wall-clock in the provided metrics registry.
func TestWallClockInstrumentation(t *testing.T) {
	reg := metrics.NewRegistry()
	exps := []experiments.Experiment{fakeExp("a", 5*time.Millisecond), fakeExp("b", 0)}
	Run(exps, Options{Workers: 2, Metrics: reg}, nil)
	if n := reg.Counter("harness_experiments_run").Value(); n != 2 {
		t.Errorf("harness_experiments_run = %d, want 2", n)
	}
	if reg.Histogram("harness_experiment_wall:a").Count() != 1 {
		t.Error("per-experiment wall histogram not recorded")
	}
	if reg.Histogram("harness_total_wall").Count() != 1 {
		t.Error("total wall histogram not recorded")
	}
	if reg.Gauge("harness_workers").Value() != 2 {
		t.Error("worker gauge not recorded")
	}
}

// TestTimingSummaryAndResults: Summarize/TimingTable/WriteResults and the
// timing JSON round-trip.
func TestTimingSummaryAndResults(t *testing.T) {
	dir := t.TempDir()
	exps := []experiments.Experiment{fakeExp("a", 10*time.Millisecond), fakeExp("b", 10*time.Millisecond)}
	start := time.Now()
	reports := Run(exps, Options{Workers: 2}, nil)
	total := time.Since(start)

	sum := Summarize(reports, 2, total)
	if sum.Workers != 2 || len(sum.Experiments) != 2 || sum.Speedup <= 0 {
		t.Errorf("bad summary: %+v", sum)
	}
	path := filepath.Join(dir, "sub", "BENCH.json")
	if err := WriteTimingJSON(path, sum); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"total_seconds"`) || !strings.HasSuffix(string(data), "\n") {
		t.Errorf("timing JSON malformed:\n%s", data)
	}

	tab := TimingTable(reports, 2, total)
	rendered := tab.String()
	for _, want := range []string{"Harness timing", "a", "b", "TOTAL", "speedup"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("timing table missing %q:\n%s", want, rendered)
		}
	}

	if err := WriteResults(dir, reports); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a.json", "b.json"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("result file %s not written: %v", name, err)
		}
	}
}
