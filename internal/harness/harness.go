// Package harness runs registered experiments across a bounded worker pool.
// Every experiment owns an isolated deterministic sim, so running them
// concurrently must — and verifiably does — produce results bit-identical
// to a sequential sweep; only wall-clock changes. Reports stream back in
// canonical order regardless of completion order, wall-clock per experiment
// is recorded in a metrics.Registry, and results can be persisted as
// canonical JSON for golden-snapshot diffing (golden.go).
package harness

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"dedupstore/internal/experiments"
	"dedupstore/internal/metrics"
)

// Options configure one sweep.
type Options struct {
	// Workers bounds pool concurrency; <=0 uses GOMAXPROCS. Workers == 1 is
	// the sequential reference run.
	Workers int
	// Scale is forwarded to every experiment.
	Scale experiments.Scale
	// TraceN asks each experiment for its N slowest op spans (0 = off).
	TraceN int
	// Metrics, when set, records per-experiment and total wall-clock
	// (harness_experiment_wall:<name>, harness_total_wall histograms and
	// the harness_experiments_run counter).
	Metrics *metrics.Registry
}

// Report is one experiment's complete outcome.
type Report struct {
	Name   string
	Result experiments.Result
	Output string        // rendered tables, exactly what the CLI prints
	Trace  string        // slow-span report ("" when Options.TraceN == 0)
	Wall   time.Duration // host wall-clock for this experiment
	Err    error         // non-nil if the experiment panicked
}

// Run executes the experiments over the worker pool and invokes emit (if
// non-nil) once per experiment in input order — each report is emitted as
// soon as it and all its predecessors have finished, so output streams
// during the sweep but never reorders. The returned slice is in input order.
func Run(exps []experiments.Experiment, opts Options, emit func(Report)) []Report {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(exps) {
		workers = len(exps)
	}
	if workers < 1 {
		workers = 1
	}

	start := time.Now()
	done := make([]*Report, len(exps))
	var mu sync.Mutex
	cond := sync.NewCond(&mu)

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				rep := runOne(exps[i], opts)
				mu.Lock()
				done[i] = &rep
				cond.Broadcast()
				mu.Unlock()
			}
		}()
	}
	go func() {
		for i := range exps {
			jobs <- i
		}
		close(jobs)
	}()

	out := make([]Report, 0, len(exps))
	for i := range exps {
		mu.Lock()
		for done[i] == nil {
			cond.Wait()
		}
		rep := *done[i]
		mu.Unlock()
		if emit != nil {
			emit(rep)
		}
		out = append(out, rep)
	}
	wg.Wait()
	if opts.Metrics != nil {
		opts.Metrics.Histogram("harness_total_wall").Add(time.Since(start))
		opts.Metrics.Gauge("harness_workers").Set(int64(workers))
	}
	return out
}

// runOne executes a single experiment with an isolated trace capture,
// converting a panic into Report.Err so one broken experiment cannot take
// down the sweep.
func runOne(exp experiments.Experiment, opts Options) (rep Report) {
	rep.Name = exp.Name()
	start := time.Now()
	defer func() {
		rep.Wall = time.Since(start)
		if r := recover(); r != nil {
			rep.Err = fmt.Errorf("experiment %s panicked: %v", rep.Name, r)
		}
		if opts.Metrics != nil {
			opts.Metrics.Histogram("harness_experiment_wall:" + rep.Name).Add(rep.Wall)
			opts.Metrics.Counter("harness_experiments_run").Inc()
		}
	}()
	sc, capture := opts.Scale.WithTraceCapture()
	rep.Result = exp.Run(sc)
	rep.Output = rep.Result.Output()
	if opts.TraceN > 0 {
		rep.Trace = capture.Report(opts.TraceN)
	}
	return rep
}

// WriteResults persists each successful report as canonical JSON at
// dir/<name>.json.
func WriteResults(dir string, reports []Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, rep := range reports {
		if rep.Err != nil {
			continue
		}
		data, err := rep.Result.CanonicalJSON()
		if err != nil {
			return fmt.Errorf("marshal %s: %w", rep.Name, err)
		}
		if err := os.WriteFile(filepath.Join(dir, rep.Name+".json"), data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// TimingTable summarizes per-experiment wall-clock and the pool speedup:
// sequential cost is the sum of per-experiment walls, so sum/total is the
// concurrency win on this machine.
func TimingTable(reports []Report, workers int, total time.Duration) experiments.Table {
	t := experiments.Table{
		Title:   fmt.Sprintf("Harness timing (%d workers)", workers),
		Columns: []string{"experiment", "wall", "status"},
	}
	var sum time.Duration
	for _, rep := range reports {
		sum += rep.Wall
		status := "ok"
		if rep.Err != nil {
			status = "ERROR: " + rep.Err.Error()
		}
		t.Rows = append(t.Rows, []string{rep.Name, rep.Wall.Round(time.Millisecond).String(), status})
	}
	t.Rows = append(t.Rows, []string{"TOTAL", total.Round(time.Millisecond).String(), ""})
	if total > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("sum of experiment walls %s, sweep wall %s: %.2fx speedup",
			sum.Round(time.Millisecond), total.Round(time.Millisecond), float64(sum)/float64(total)))
	}
	return t
}

// ExpTiming is one experiment's wall-clock in the JSON timing summary.
type ExpTiming struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
	OK      bool    `json:"ok"`
}

// TimingSummary is the machine-readable wall-clock summary CI uploads
// (BENCH_pr.json). Unlike experiment results it is inherently
// non-deterministic — that is its purpose.
type TimingSummary struct {
	Workers      int         `json:"workers"`
	TotalSeconds float64     `json:"total_seconds"`
	SumSeconds   float64     `json:"sum_seconds"`
	Speedup      float64     `json:"speedup"`
	Experiments  []ExpTiming `json:"experiments"`
}

// WriteTimingJSON persists a timing summary (canonical field order, 2-space
// indent, trailing newline) at path, creating parent directories as needed.
func WriteTimingJSON(path string, s TimingSummary) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	data, err := marshalCanonical(s)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// Summarize builds the timing summary for a finished sweep.
func Summarize(reports []Report, workers int, total time.Duration) TimingSummary {
	s := TimingSummary{Workers: workers, TotalSeconds: total.Seconds()}
	var sum time.Duration
	for _, rep := range reports {
		sum += rep.Wall
		s.Experiments = append(s.Experiments, ExpTiming{Name: rep.Name, Seconds: rep.Wall.Seconds(), OK: rep.Err == nil})
	}
	s.SumSeconds = sum.Seconds()
	if total > 0 {
		s.Speedup = float64(sum) / float64(total)
	}
	return s
}
