package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"dedupstore/internal/experiments"
)

// Golden snapshots: each experiment's canonical JSON result is checked in
// under testdata/golden/<name>.json. `dedupbench -golden check` re-runs the
// sweep and diffs cell by cell, so any PR that shifts a published number
// fails CI with the exact coordinates of the drift; `-golden write`
// regenerates the snapshots when a shift is intentional and reviewed.

// Diff is one divergence between a golden snapshot and a fresh result.
// Row/Col are 0-based indexes into the table body; Row == -1 marks a
// structural difference (missing snapshot, table/column/row-count drift).
type Diff struct {
	Experiment string
	Table      string
	Row, Col   int
	RowLabel   string // first cell of the row, e.g. the workload name
	ColName    string // column header
	Golden     string
	Got        string
}

func (d Diff) String() string {
	if d.Row < 0 {
		return fmt.Sprintf("%s: table %q: golden %s, got %s", d.Experiment, d.Table, d.Golden, d.Got)
	}
	return fmt.Sprintf("%s: table %q: row %d (%s) col %q: golden %q, got %q",
		d.Experiment, d.Table, d.Row, d.RowLabel, d.ColName, d.Golden, d.Got)
}

// WriteGolden persists each result as its golden snapshot at
// dir/<name>.json.
func WriteGolden(dir string, results []experiments.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, r := range results {
		data, err := r.CanonicalJSON()
		if err != nil {
			return fmt.Errorf("marshal %s: %w", r.Name, err)
		}
		if err := os.WriteFile(filepath.Join(dir, r.Name+".json"), data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// CheckGolden diffs fresh results against the snapshots in dir. A clean run
// returns (nil, nil); drift returns one Diff per divergent cell (plus
// structural diffs). Only I/O and JSON errors are returned as error.
func CheckGolden(dir string, results []experiments.Result) ([]Diff, error) {
	var diffs []Diff
	for _, got := range results {
		path := filepath.Join(dir, got.Name+".json")
		data, err := os.ReadFile(path)
		if os.IsNotExist(err) {
			diffs = append(diffs, Diff{
				Experiment: got.Name, Table: "*", Row: -1,
				Golden: fmt.Sprintf("snapshot %s missing (run -golden write)", path),
				Got:    fmt.Sprintf("%d tables", len(got.Tables)),
			})
			continue
		} else if err != nil {
			return nil, err
		}
		var golden experiments.Result
		if err := json.Unmarshal(data, &golden); err != nil {
			return nil, fmt.Errorf("parse %s: %w", path, err)
		}
		// The snapshot must also be byte-canonical: a hand-edited file that
		// parses to the same value still fails, keeping snapshots regenerable.
		if canon, err := golden.CanonicalJSON(); err == nil && !bytes.Equal(canon, data) {
			diffs = append(diffs, Diff{
				Experiment: got.Name, Table: "*", Row: -1,
				Golden: "snapshot not in canonical form", Got: "regenerate with -golden write",
			})
		}
		diffs = append(diffs, diffResult(golden, got)...)
	}
	return diffs, nil
}

func diffResult(golden, got experiments.Result) []Diff {
	var diffs []Diff
	if len(golden.Tables) != len(got.Tables) {
		diffs = append(diffs, Diff{
			Experiment: got.Name, Table: "*", Row: -1,
			Golden: fmt.Sprintf("%d tables", len(golden.Tables)),
			Got:    fmt.Sprintf("%d tables", len(got.Tables)),
		})
	}
	n := min(len(golden.Tables), len(got.Tables))
	for i := 0; i < n; i++ {
		diffs = append(diffs, diffTable(got.Name, golden.Tables[i], got.Tables[i])...)
	}
	return diffs
}

func diffTable(exp string, golden, got experiments.Table) []Diff {
	var diffs []Diff
	if golden.Title != got.Title {
		diffs = append(diffs, Diff{Experiment: exp, Table: golden.Title, Row: -1,
			Golden: fmt.Sprintf("title %q", golden.Title), Got: fmt.Sprintf("title %q", got.Title)})
		return diffs // cells of a renamed table aren't comparable
	}
	if !equalStrings(golden.Columns, got.Columns) {
		diffs = append(diffs, Diff{Experiment: exp, Table: golden.Title, Row: -1,
			Golden: "columns [" + strings.Join(golden.Columns, ", ") + "]",
			Got:    "columns [" + strings.Join(got.Columns, ", ") + "]"})
		return diffs
	}
	if !equalStrings(golden.Notes, got.Notes) {
		diffs = append(diffs, Diff{Experiment: exp, Table: golden.Title, Row: -1,
			Golden: "notes [" + strings.Join(golden.Notes, " | ") + "]",
			Got:    "notes [" + strings.Join(got.Notes, " | ") + "]"})
	}
	if len(golden.Rows) != len(got.Rows) {
		diffs = append(diffs, Diff{Experiment: exp, Table: golden.Title, Row: -1,
			Golden: fmt.Sprintf("%d rows", len(golden.Rows)),
			Got:    fmt.Sprintf("%d rows", len(got.Rows))})
	}
	rows := min(len(golden.Rows), len(got.Rows))
	for r := 0; r < rows; r++ {
		grow, nrow := golden.Rows[r], got.Rows[r]
		if len(grow) != len(nrow) {
			diffs = append(diffs, Diff{Experiment: exp, Table: golden.Title, Row: -1,
				Golden: fmt.Sprintf("row %d has %d cells", r, len(grow)),
				Got:    fmt.Sprintf("row %d has %d cells", r, len(nrow))})
			continue
		}
		for c := range grow {
			if grow[c] == nrow[c] {
				continue
			}
			d := Diff{Experiment: exp, Table: golden.Title, Row: r, Col: c,
				Golden: grow[c], Got: nrow[c]}
			if len(grow) > 0 {
				d.RowLabel = grow[0]
			}
			if c < len(golden.Columns) {
				d.ColName = golden.Columns[c]
			}
			diffs = append(diffs, d)
		}
	}
	return diffs
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// marshalCanonical renders v as indented JSON with a trailing newline and
// HTML escaping off — the shared canonical form for everything the harness
// writes to disk.
func marshalCanonical(v any) ([]byte, error) {
	var b bytes.Buffer
	enc := json.NewEncoder(&b)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}
