package crush

import (
	"fmt"
	"testing"
)

func BenchmarkMapPG(b *testing.B) {
	m := NewMap()
	for h := 0; h < 16; h++ {
		for d := 0; d < 8; d++ {
			m.AddOSD(h*8+d, fmt.Sprintf("host%d", h), 1.0)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if set := m.MapPG(PG{Pool: 1, Seq: uint32(i % 4096)}, 3); len(set) != 3 {
			b.Fatal("bad mapping")
		}
	}
}

func BenchmarkPGForObject(b *testing.B) {
	for i := 0; i < b.N; i++ {
		PGForObject(1, 4096, "rbd_data.1234567890abcdef.000000000000002a")
	}
}
