// Package crush implements CRUSH-style pseudo-random placement: the
// decentralized hash mapping that lets every client compute object locations
// without a metadata server (paper §2.1, Figure 2-(b)). The implementation
// follows Ceph's architecture: objects hash to placement groups (PGs), and
// each PG maps onto an ordered set of OSDs by straw2 selection over a
// two-level hierarchy (host → OSD) with hosts as the failure domain, so no
// two replicas of a PG share a host.
package crush

import (
	"fmt"
	"math"
	"sort"

	"dedupstore/internal/xxh"
)

// OSD describes one object storage device in the cluster map.
type OSD struct {
	ID     int
	Host   string
	Weight float64
	// Class is the device class ("ssd", "hdd", ...); pools may restrict
	// placement to one class ("each pool can be placed to different storage
	// location depending on the required performance", paper §4.2).
	Class string
	// Up means the OSD is reachable; In means it participates in placement.
	// An OSD that fails is first marked down (PGs degrade) and later marked
	// out (PGs remap and recovery begins), mirroring Ceph's two-phase
	// failure handling.
	Up bool
	In bool
}

// Map is a versioned cluster map. Mutations bump Epoch; placements are pure
// functions of (map contents, pool seed, object id), so any client holding
// the same epoch computes identical placements.
type Map struct {
	Epoch int
	osds  map[int]*OSD

	// pgCache memoizes MapPGClass results. Placement is a pure function of
	// (map contents, pg, n, class) and every mutation bumps Epoch, so cached
	// entries stay valid until the epoch moves; callers must treat returned
	// slices as immutable.
	cacheEpoch int
	pgCache    map[pgCacheKey][]int
}

type pgCacheKey struct {
	pg    PG
	n     int
	class string
}

// NewMap returns an empty cluster map at epoch 1.
func NewMap() *Map {
	return &Map{Epoch: 1, osds: make(map[int]*OSD)}
}

// Clone returns a deep copy (same epoch).
func (m *Map) Clone() *Map {
	c := &Map{Epoch: m.Epoch, osds: make(map[int]*OSD, len(m.osds))}
	for id, o := range m.osds {
		co := *o
		c.osds[id] = &co
	}
	return c
}

// AddOSD inserts an OSD (up+in) of the default "ssd" class and bumps the
// epoch.
func (m *Map) AddOSD(id int, host string, weight float64) error {
	return m.AddOSDClass(id, host, weight, "ssd")
}

// AddOSDClass inserts an OSD with an explicit device class.
func (m *Map) AddOSDClass(id int, host string, weight float64, class string) error {
	if _, ok := m.osds[id]; ok {
		return fmt.Errorf("crush: osd.%d already exists", id)
	}
	if weight <= 0 {
		return fmt.Errorf("crush: osd.%d invalid weight %v", id, weight)
	}
	if class == "" {
		class = "ssd"
	}
	m.osds[id] = &OSD{ID: id, Host: host, Weight: weight, Class: class, Up: true, In: true}
	m.Epoch++
	return nil
}

// RemoveOSD deletes an OSD entirely.
func (m *Map) RemoveOSD(id int) {
	if _, ok := m.osds[id]; ok {
		delete(m.osds, id)
		m.Epoch++
	}
}

// SetUp marks an OSD up/down.
func (m *Map) SetUp(id int, up bool) {
	if o, ok := m.osds[id]; ok && o.Up != up {
		o.Up = up
		m.Epoch++
	}
}

// SetIn marks an OSD in/out of the placement set.
func (m *Map) SetIn(id int, in bool) {
	if o, ok := m.osds[id]; ok && o.In != in {
		o.In = in
		m.Epoch++
	}
}

// Lookup returns the OSD record (copy) and whether it exists.
func (m *Map) Lookup(id int) (OSD, bool) {
	o, ok := m.osds[id]
	if !ok {
		return OSD{}, false
	}
	return *o, true
}

// OSDs returns all OSD ids in ascending order.
func (m *Map) OSDs() []int {
	ids := make([]int, 0, len(m.osds))
	for id := range m.osds {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// InOSDs returns ids of OSDs that are in (placement candidates), ascending.
func (m *Map) InOSDs() []int {
	var ids []int
	for id, o := range m.osds {
		if o.In {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids
}

// UpOSDs returns ids of OSDs that are up, ascending.
func (m *Map) UpOSDs() []int {
	var ids []int
	for id, o := range m.osds {
		if o.Up {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids
}

// Hosts returns host names with at least one in-OSD, sorted.
func (m *Map) Hosts() []string {
	set := map[string]bool{}
	for _, o := range m.osds {
		if o.In {
			set[o.Host] = true
		}
	}
	hosts := make([]string, 0, len(set))
	for h := range set {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	return hosts
}

// PG identifies a placement group within a pool.
type PG struct {
	Pool uint64
	Seq  uint32
}

func (pg PG) String() string { return fmt.Sprintf("%d.%x", pg.Pool, pg.Seq) }

// PGForObject computes the PG an object id belongs to.
func PGForObject(pool uint64, pgNum uint32, oid string) PG {
	if pgNum == 0 {
		pgNum = 1
	}
	h := xxh.HashString(pool*0x9e37+0x79b9, oid)
	return PG{Pool: pool, Seq: uint32(h % uint64(pgNum))}
}

// straw2Draw computes the straw2 "length" for an item: ln(u)/w, maximized.
// Items with higher weight win proportionally more often, and removing an
// item only moves the PGs that item held — CRUSH's minimal-movement
// property.
func straw2Draw(pg PG, trial uint64, itemKey uint64, weight float64) float64 {
	if weight <= 0 {
		return math.Inf(-1)
	}
	h := xxh.HashWords(0x5ca1ab1e, pg.Pool, uint64(pg.Seq), trial, itemKey)
	// Map to (0,1]: use the top 53 bits, never zero.
	u := (float64(h>>11) + 1) / float64(1<<53)
	return math.Log(u) / weight
}

// MapPG returns the ordered OSD set (size up to n) for a PG over all
// device classes.
func (m *Map) MapPG(pg PG, n int) []int { return m.MapPGClass(pg, n, "") }

// MapPGClass is MapPG restricted to one device class ("" = any): the CRUSH
// rule mechanism that lets a pool live on, say, SSDs while another lives on
// HDDs. Placement chooses distinct hosts first (failure-domain separation)
// and one OSD within each chosen host. Only in-OSDs of the class are
// candidates; if there are fewer eligible hosts than n, remaining slots
// fall back to distinct OSDs regardless of host.
//
// Results are memoized per epoch: the straw2 draws are pure, so repeated
// resolutions of the same PG (every I/O resolves its placement) hit the
// cache until a map mutation bumps the epoch. The returned slice is shared —
// callers must not modify it.
func (m *Map) MapPGClass(pg PG, n int, class string) []int {
	if m.cacheEpoch != m.Epoch || m.pgCache == nil {
		m.cacheEpoch = m.Epoch
		m.pgCache = make(map[pgCacheKey][]int)
	}
	key := pgCacheKey{pg: pg, n: n, class: class}
	if ids, ok := m.pgCache[key]; ok {
		return ids
	}
	ids := m.mapPGClass(pg, n, class)
	m.pgCache[key] = ids
	return ids
}

func (m *Map) mapPGClass(pg PG, n int, class string) []int {
	type hostInfo struct {
		name   string
		osds   []*OSD
		weight float64
	}
	byHost := map[string]*hostInfo{}
	for _, id := range m.InOSDs() {
		o := m.osds[id]
		if class != "" && o.Class != class {
			continue
		}
		hi := byHost[o.Host]
		if hi == nil {
			hi = &hostInfo{name: o.Host}
			byHost[o.Host] = hi
		}
		hi.osds = append(hi.osds, o)
		hi.weight += o.Weight
	}
	hosts := make([]*hostInfo, 0, len(byHost))
	for _, hi := range byHost {
		hosts = append(hosts, hi)
	}
	sort.Slice(hosts, func(i, j int) bool { return hosts[i].name < hosts[j].name })
	if len(hosts) == 0 {
		return nil
	}

	var result []int
	usedHost := map[string]bool{}
	usedOSD := map[int]bool{}

	pickOSD := func(cands []*OSD, trial uint64) *OSD {
		var best *OSD
		bestDraw := math.Inf(-1)
		for _, o := range cands {
			if usedOSD[o.ID] {
				continue
			}
			d := straw2Draw(pg, trial, uint64(o.ID)+1<<32, o.Weight)
			if d > bestDraw {
				bestDraw, best = d, o
			}
		}
		return best
	}

	for r := 0; len(result) < n; r++ {
		if r > n+len(m.osds) { // all candidates exhausted
			break
		}
		// Choose a host by straw2 among unused hosts.
		var bestHost *hostInfo
		bestDraw := math.Inf(-1)
		for _, hi := range hosts {
			if usedHost[hi.name] {
				continue
			}
			d := straw2Draw(pg, uint64(r), xxh.HashString(7, hi.name), hi.weight)
			if d > bestDraw {
				bestDraw, bestHost = d, hi
			}
		}
		if bestHost == nil {
			// Failure-domain fallback: pick any unused OSD cluster-wide.
			var all []*OSD
			for _, hi := range hosts {
				all = append(all, hi.osds...)
			}
			o := pickOSD(all, uint64(r)+1<<16)
			if o == nil {
				break
			}
			usedOSD[o.ID] = true
			result = append(result, o.ID)
			continue
		}
		usedHost[bestHost.name] = true
		if o := pickOSD(bestHost.osds, uint64(r)); o != nil {
			usedOSD[o.ID] = true
			result = append(result, o.ID)
		}
	}
	return result
}

// ActingSet returns the up members of a PG's mapping, preserving order: the
// replicas that can serve I/O right now. The first element is the primary.
func (m *Map) ActingSet(pg PG, n int) []int { return m.ActingSetClass(pg, n, "") }

// ActingSetClass is ActingSet restricted to one device class.
func (m *Map) ActingSetClass(pg PG, n int, class string) []int {
	var acting []int
	for _, id := range m.MapPGClass(pg, n, class) {
		if o, ok := m.osds[id]; ok && o.Up {
			acting = append(acting, id)
		}
	}
	return acting
}

// MovedPGs compares PG mappings between two maps and returns the PG
// sequence numbers whose OSD sets differ — the PGs that must rebalance.
func MovedPGs(a, b *Map, pool uint64, pgNum uint32, n int) []uint32 {
	var moved []uint32
	for seq := uint32(0); seq < pgNum; seq++ {
		pg := PG{Pool: pool, Seq: seq}
		sa, sb := a.MapPG(pg, n), b.MapPG(pg, n)
		if !equalInts(sa, sb) {
			moved = append(moved, seq)
		}
	}
	return moved
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
