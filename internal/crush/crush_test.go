package crush

import (
	"fmt"
	"testing"
	"testing/quick"
)

// paperCluster builds the paper's testbed topology: 4 hosts × 4 OSDs.
func paperCluster(t testing.TB) *Map {
	m := NewMap()
	for h := 0; h < 4; h++ {
		for d := 0; d < 4; d++ {
			id := h*4 + d
			if err := m.AddOSD(id, fmt.Sprintf("host%d", h), 1.0); err != nil {
				t.Fatal(err)
			}
		}
	}
	return m
}

func TestAddOSDValidation(t *testing.T) {
	m := NewMap()
	if err := m.AddOSD(0, "h0", 1); err != nil {
		t.Fatal(err)
	}
	if err := m.AddOSD(0, "h0", 1); err == nil {
		t.Fatal("duplicate OSD accepted")
	}
	if err := m.AddOSD(1, "h0", 0); err == nil {
		t.Fatal("zero weight accepted")
	}
}

func TestPGForObjectStable(t *testing.T) {
	a := PGForObject(1, 64, "rbd_data.000123")
	b := PGForObject(1, 64, "rbd_data.000123")
	if a != b {
		t.Fatal("PG mapping not deterministic")
	}
	if a.Seq >= 64 {
		t.Fatalf("pg seq %d out of range", a.Seq)
	}
}

func TestPGDistributionUniform(t *testing.T) {
	const pgNum = 64
	counts := make([]int, pgNum)
	for i := 0; i < 64000; i++ {
		pg := PGForObject(1, pgNum, fmt.Sprintf("obj-%d", i))
		counts[pg.Seq]++
	}
	for seq, c := range counts {
		if c < 700 || c > 1300 { // expect ~1000 each
			t.Fatalf("pg %d has %d objects (skewed)", seq, c)
		}
	}
}

func TestMapPGDistinctHosts(t *testing.T) {
	m := paperCluster(t)
	for seq := uint32(0); seq < 128; seq++ {
		set := m.MapPG(PG{Pool: 1, Seq: seq}, 3)
		if len(set) != 3 {
			t.Fatalf("pg %d mapped to %d osds", seq, len(set))
		}
		hosts := map[string]bool{}
		for _, id := range set {
			o, ok := m.Lookup(id)
			if !ok {
				t.Fatalf("mapped to unknown osd %d", id)
			}
			if hosts[o.Host] {
				t.Fatalf("pg %d: two replicas on host %s", seq, o.Host)
			}
			hosts[o.Host] = true
		}
	}
}

func TestMapPGDeterministic(t *testing.T) {
	m := paperCluster(t)
	pg := PG{Pool: 2, Seq: 17}
	a, b := m.MapPG(pg, 2), m.MapPG(pg, 2)
	if !equalInts(a, b) {
		t.Fatal("MapPG not deterministic")
	}
}

func TestOSDLoadBalance(t *testing.T) {
	m := paperCluster(t)
	counts := map[int]int{}
	const pgNum = 512
	for seq := uint32(0); seq < pgNum; seq++ {
		for _, id := range m.MapPG(PG{Pool: 1, Seq: seq}, 2) {
			counts[id]++
		}
	}
	// 512 PGs × 2 replicas over 16 OSDs = 64 average.
	for id, c := range counts {
		if c < 32 || c > 100 {
			t.Fatalf("osd %d has %d PGs (imbalanced)", id, c)
		}
	}
	if len(counts) != 16 {
		t.Fatalf("only %d OSDs used", len(counts))
	}
}

func TestWeightBias(t *testing.T) {
	m := NewMap()
	m.AddOSD(0, "h0", 1)
	m.AddOSD(1, "h1", 3) // 3x weight
	counts := map[int]int{}
	for seq := uint32(0); seq < 4000; seq++ {
		set := m.MapPG(PG{Pool: 1, Seq: seq}, 1)
		counts[set[0]]++
	}
	ratio := float64(counts[1]) / float64(counts[0])
	if ratio < 2.4 || ratio > 3.7 {
		t.Fatalf("weight bias ratio %.2f, want ~3", ratio)
	}
}

func TestMinimalMovementOnOSDOut(t *testing.T) {
	before := paperCluster(t)
	after := before.Clone()
	after.SetIn(5, false) // fail one of 16 OSDs out
	const pgNum = 512
	moved := MovedPGs(before, after, 1, pgNum, 2)
	// Ideal movement = PGs that had osd.5 (~ 2*512/16 = 64). Allow overhead
	// for cascading straw2 choices but far below full reshuffle.
	if len(moved) > pgNum/3 {
		t.Fatalf("%d/%d PGs moved on single-OSD out (not minimal)", len(moved), pgNum)
	}
	// Every PG that previously used osd.5 must have moved off it.
	for seq := uint32(0); seq < pgNum; seq++ {
		set := after.MapPG(PG{Pool: 1, Seq: seq}, 2)
		for _, id := range set {
			if id == 5 {
				t.Fatalf("pg %d still mapped to out osd", seq)
			}
		}
	}
}

func TestActingSetSkipsDownOSDs(t *testing.T) {
	m := paperCluster(t)
	pg := PG{Pool: 1, Seq: 3}
	full := m.MapPG(pg, 2)
	m.SetUp(full[0], false)
	acting := m.ActingSet(pg, 2)
	if len(acting) != 1 || acting[0] != full[1] {
		t.Fatalf("acting=%v full=%v", acting, full)
	}
}

func TestEpochBumps(t *testing.T) {
	m := NewMap()
	e0 := m.Epoch
	m.AddOSD(0, "h", 1)
	if m.Epoch <= e0 {
		t.Fatal("AddOSD did not bump epoch")
	}
	e1 := m.Epoch
	m.SetUp(0, false)
	if m.Epoch <= e1 {
		t.Fatal("SetUp did not bump epoch")
	}
	e2 := m.Epoch
	m.SetUp(0, false) // no-op
	if m.Epoch != e2 {
		t.Fatal("no-op SetUp bumped epoch")
	}
	m.RemoveOSD(0)
	if m.Epoch <= e2 {
		t.Fatal("RemoveOSD did not bump epoch")
	}
}

func TestFallbackWhenFewHosts(t *testing.T) {
	// 1 host, 4 OSDs, 3 replicas: failure-domain separation impossible, must
	// fall back to distinct OSDs.
	m := NewMap()
	for i := 0; i < 4; i++ {
		m.AddOSD(i, "onlyhost", 1)
	}
	set := m.MapPG(PG{Pool: 1, Seq: 0}, 3)
	if len(set) != 3 {
		t.Fatalf("got %d replicas, want 3", len(set))
	}
	seen := map[int]bool{}
	for _, id := range set {
		if seen[id] {
			t.Fatal("duplicate OSD in set")
		}
		seen[id] = true
	}
}

func TestMapPGEmptyCluster(t *testing.T) {
	m := NewMap()
	if set := m.MapPG(PG{Pool: 1, Seq: 0}, 2); set != nil {
		t.Fatalf("empty cluster mapped to %v", set)
	}
}

func TestCloneIndependent(t *testing.T) {
	m := paperCluster(t)
	c := m.Clone()
	c.SetIn(0, false)
	if o, _ := m.Lookup(0); !o.In {
		t.Fatal("clone mutation leaked into original")
	}
}

func TestQuickMapPGAlwaysDistinct(t *testing.T) {
	m := paperCluster(t)
	prop := func(pool uint64, seq uint32, n uint8) bool {
		want := int(n%4) + 1
		set := m.MapPG(PG{Pool: pool, Seq: seq}, want)
		if len(set) != want {
			return false
		}
		seen := map[int]bool{}
		for _, id := range set {
			if seen[id] {
				return false
			}
			seen[id] = true
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
