package gateway

import (
	"testing"
	"time"

	"dedupstore/internal/sim"
)

// runSim executes fn as a sim process and drives the engine to completion.
func runSim(t *testing.T, seed int64, fn func(p *sim.Proc)) {
	t.Helper()
	eng := sim.New(seed)
	eng.Go("test", fn)
	eng.Run()
}

// TestTokenBucketTable drives Take through the contract cases: burst served
// instantly, refill paced on sim time, oversized takes clamped to burst,
// fractional refill never lost.
func TestTokenBucketTable(t *testing.T) {
	cases := []struct {
		name        string
		rate, burst int64
		takes       []int64         // sequential takes from one proc
		wantWaits   []time.Duration // expected blocking time per take
	}{
		{
			name: "burst served instantly",
			rate: 1000, burst: 500,
			takes:     []int64{200, 300},
			wantWaits: []time.Duration{0, 0},
		},
		{
			name: "deficit waits exactly deficit/rate",
			rate: 1000, burst: 100, // 1000 tokens/s = 1 token/ms
			takes:     []int64{100, 50, 50},
			wantWaits: []time.Duration{0, 50 * time.Millisecond, 50 * time.Millisecond},
		},
		{
			name: "oversized take clamps to burst",
			rate: 1 << 20, burst: 1 << 10,
			takes:     []int64{1 << 30, 1 << 30},                    // each costs one full bucket
			wantWaits: []time.Duration{0, 976563 * time.Nanosecond}, // ceil(1024 s / 2^20)
		},
		{
			name: "tiny rate accrues without losing fractions",
			rate: 1, burst: 1, // 1 token per second
			takes:     []int64{1, 1, 1},
			wantWaits: []time.Duration{0, time.Second, time.Second},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			runSim(t, 1, func(p *sim.Proc) {
				b := NewTokenBucket(tc.rate, tc.burst)
				for i, n := range tc.takes {
					got := b.Take(p, n)
					if got != tc.wantWaits[i] {
						t.Errorf("take %d of %d tokens: waited %v, want %v", i, n, got, tc.wantWaits[i])
					}
				}
			})
		})
	}
}

// TestTokenBucketRefillOnSimTime checks that a idle gap refills the bucket
// from virtual time alone, capped at burst.
func TestTokenBucketRefillOnSimTime(t *testing.T) {
	runSim(t, 1, func(p *sim.Proc) {
		b := NewTokenBucket(1000, 400)
		if !b.TryTake(p.Now(), 400) {
			t.Fatal("initial burst not available")
		}
		p.Sleep(100 * time.Millisecond) // +100 tokens
		if got := b.Tokens(p.Now()); got != 100 {
			t.Fatalf("after 100ms at 1000/s: %d tokens, want 100", got)
		}
		p.Sleep(10 * time.Second) // way past burst: cap
		if got := b.Tokens(p.Now()); got != 400 {
			t.Fatalf("refill not capped at burst: %d tokens, want 400", got)
		}
	})
}

// TestTokenBucketZeroRateStarves checks the clean-starvation contract: a
// zero-rate bucket grants its burst, then parks takers without scheduling
// wakeup events, and SetRate revives them.
func TestTokenBucketZeroRateStarves(t *testing.T) {
	eng := sim.New(1)
	b := NewTokenBucket(0, 100)
	admitted := 0
	eng.Go("taker", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			b.Take(p, 50)
			admitted++
		}
	})
	// With no refill and no reviver, the run must terminate on its own —
	// parked takers hold no pending events (clean starvation, not a spin).
	eng.RunUntil(sim.Time(time.Hour))
	if admitted != 2 {
		t.Fatalf("zero-rate bucket admitted %d takes of its 100-token burst, want 2", admitted)
	}
	if n := eng.Pending(); n != 0 {
		t.Fatalf("starved taker left %d events queued — it must park, not poll", n)
	}
	if got := b.starved.Waiters(); got != 1 {
		t.Fatalf("starved taker not parked on the bucket cond (waiters=%d)", got)
	}
	if st := eng.Stats(); st.EventsDispatched > 20 {
		t.Fatalf("starvation dispatched %d events — looks like polling", st.EventsDispatched)
	}

	// SetRate from a second process revives the parked taker.
	eng2 := sim.New(1)
	b2 := NewTokenBucket(0, 100)
	admitted = 0
	eng2.Go("taker", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			b2.Take(p, 100)
			admitted++
		}
	})
	eng2.Go("reviver", func(p *sim.Proc) {
		p.Sleep(time.Second)
		b2.SetRate(p, 1000, 100)
	})
	eng2.RunUntil(sim.Time(time.Hour))
	if admitted != 3 {
		t.Fatalf("revived taker admitted %d takes, want 3", admitted)
	}
}

// TestTokenBucketDeterministic runs the same contended schedule under
// several seeds: admission timing derives from virtual time only, so every
// seed must produce the identical wait sequence.
func TestTokenBucketDeterministic(t *testing.T) {
	run := func(seed int64) []time.Duration {
		var waits []time.Duration
		eng := sim.New(seed)
		b := NewTokenBucket(10_000, 1000)
		for w := 0; w < 4; w++ {
			eng.Go("taker", func(p *sim.Proc) {
				for i := 0; i < 8; i++ {
					waits = append(waits, b.Take(p, 300))
				}
			})
		}
		eng.Run()
		return waits
	}
	want := run(1)
	for _, seed := range []int64{2, 3, 99} {
		got := run(seed)
		if len(got) != len(want) {
			t.Fatalf("seed %d: %d waits, want %d", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d wait %d: %v != %v — bucket timing not seed-independent", seed, i, got[i], want[i])
			}
		}
	}
}

// TestTokenBucketConcurrentTakers checks conservation under contention: the
// total admitted over a window never exceeds burst + rate×time.
func TestTokenBucketConcurrentTakers(t *testing.T) {
	eng := sim.New(7)
	const (
		rate  = 50_000
		burst = 10_000
		horiz = 2 * time.Second
	)
	b := NewTokenBucket(rate, burst)
	var admitted int64
	for w := 0; w < 16; w++ {
		eng.GoDaemon("taker", func(p *sim.Proc) {
			for {
				b.Take(p, 700)
				admitted += 700
			}
		})
	}
	// Daemons alone don't keep the engine alive; a clock proc sets the horizon.
	eng.Go("clock", func(p *sim.Proc) { p.Sleep(horiz) })
	eng.RunUntil(sim.Time(horiz))
	limit := int64(burst) + int64(float64(rate)*horiz.Seconds())
	if admitted > limit {
		t.Fatalf("admitted %d tokens over %v, contract allows at most %d", admitted, horiz, limit)
	}
	if admitted < limit*9/10 {
		t.Fatalf("admitted only %d of ~%d tokens — bucket underserving under contention", admitted, limit)
	}
}

// TestMulDiv covers the 128-bit helper's edge cases.
func TestMulDiv(t *testing.T) {
	cases := []struct{ a, b, c, want int64 }{
		{0, 5, 3, 0},
		{10, 10, 3, 33},
		{1 << 40, 1 << 40, 1 << 20, 1 << 60},
		{1 << 62, 1 << 62, 1, 1<<63 - 1}, // saturates
	}
	for _, tc := range cases {
		if got := mulDiv(tc.a, tc.b, tc.c); got != tc.want {
			t.Errorf("mulDiv(%d,%d,%d) = %d, want %d", tc.a, tc.b, tc.c, got, tc.want)
		}
	}
}
