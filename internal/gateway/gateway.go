package gateway

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"dedupstore/internal/client"
	"dedupstore/internal/metrics"
	"dedupstore/internal/sim"
)

// SLO is a tenant's service contract. The zero value is unthrottled: no
// rate cap, no inflight cap, default weight — "best effort with full
// priority", which is also what disabling isolation means.
type SLO struct {
	// Class is the display name ("gold", "silver", "bronze", "custom").
	Class string
	// Weight is the tenant's share when coordinator service slots are
	// contended (values below 1 are treated as 1, so no tenant starves on
	// slots). It plays the same role tenant-to-tenant that qos class
	// weights play class-to-class inside the cluster.
	Weight int64
	// RateBps is the token-bucket refill in bytes per second; 0 with Burst
	// 0 means no bucket at all. RateBps 0 with Burst > 0 is a hard
	// allowance: the tenant may write Burst bytes ever, then starves.
	RateBps int64
	// Burst is the bucket capacity in bytes (defaults to RateBps/8 when a
	// rate is set but no burst given).
	Burst int64
	// MaxInflight caps the tenant's concurrent ops (0 = unlimited).
	MaxInflight int
}

// Throttled reports whether the SLO carries any admission constraint.
func (s SLO) Throttled() bool { return s.RateBps > 0 || s.Burst > 0 || s.MaxInflight > 0 }

// The built-in SLO classes. Gold is unthrottled and carries the dominant
// slot weight; silver and bronze trade progressively lower rate caps and
// concurrency for a smaller share. Rates are sized for the simulation's
// ~1000:1 scaled datasets.
var (
	Gold   = SLO{Class: "gold", Weight: 1000}
	Silver = SLO{Class: "silver", Weight: 250, RateBps: 128 << 20, Burst: 16 << 20, MaxInflight: 64}
	Bronze = SLO{Class: "bronze", Weight: 100, RateBps: 32 << 20, Burst: 4 << 20, MaxInflight: 16}
)

// ParseSLO parses an SLO spec: a class name ("gold", "silver", "bronze"),
// or a comma-separated custom spec of key=value fields — weight=N,
// rate=SIZE (per second), burst=SIZE, inflight=N, class=NAME — where SIZE
// accepts K/M/G binary suffixes ("rate=32M,burst=4M,inflight=16").
func ParseSLO(spec string) (SLO, error) {
	switch strings.TrimSpace(strings.ToLower(spec)) {
	case "gold":
		return Gold, nil
	case "silver":
		return Silver, nil
	case "bronze":
		return Bronze, nil
	case "unthrottled":
		return SLO{Class: "custom"}, nil
	case "":
		return SLO{}, fmt.Errorf("gateway: empty SLO spec")
	}
	slo := SLO{Class: "custom"}
	for _, field := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(field, "=")
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		if !ok || key == "" || val == "" {
			return SLO{}, fmt.Errorf("gateway: bad SLO field %q (want key=value)", field)
		}
		switch key {
		case "weight":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 1 {
				return SLO{}, fmt.Errorf("gateway: bad weight %q", val)
			}
			slo.Weight = n
		case "rate":
			n, err := parseSize(val)
			if err != nil {
				return SLO{}, fmt.Errorf("gateway: bad rate %q: %v", val, err)
			}
			slo.RateBps = n
		case "burst":
			n, err := parseSize(val)
			if err != nil {
				return SLO{}, fmt.Errorf("gateway: bad burst %q: %v", val, err)
			}
			slo.Burst = n
		case "inflight":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return SLO{}, fmt.Errorf("gateway: bad inflight %q", val)
			}
			slo.MaxInflight = n
		case "class":
			slo.Class = val
		default:
			return SLO{}, fmt.Errorf("gateway: unknown SLO field %q", key)
		}
	}
	if slo.RateBps > 0 && slo.Burst == 0 {
		slo.Burst = slo.RateBps / 8
		if slo.Burst < 1 {
			slo.Burst = 1
		}
	}
	return slo, nil
}

// String renders the SLO as a spec ParseSLO accepts (built-in classes round
// down to their names).
func (s SLO) String() string {
	for _, preset := range []SLO{Gold, Silver, Bronze} {
		if s == preset {
			return s.Class
		}
	}
	parts := []string{}
	if s.Class != "" && s.Class != "custom" {
		parts = append(parts, "class="+s.Class)
	}
	if s.Weight > 0 {
		parts = append(parts, fmt.Sprintf("weight=%d", s.Weight))
	}
	if s.RateBps > 0 {
		parts = append(parts, fmt.Sprintf("rate=%d", s.RateBps))
	}
	if s.Burst > 0 {
		parts = append(parts, fmt.Sprintf("burst=%d", s.Burst))
	}
	if s.MaxInflight > 0 {
		parts = append(parts, fmt.Sprintf("inflight=%d", s.MaxInflight))
	}
	if len(parts) == 0 {
		return "unthrottled"
	}
	return strings.Join(parts, ",")
}

// parseSize parses a non-negative byte count with optional K/M/G binary
// suffix (case-insensitive, optional trailing "B" or "iB").
func parseSize(s string) (int64, error) {
	t := strings.ToUpper(strings.TrimSpace(s))
	t = strings.TrimSuffix(t, "IB")
	t = strings.TrimSuffix(t, "B")
	shift := 0
	switch {
	case strings.HasSuffix(t, "K"):
		shift, t = 10, t[:len(t)-1]
	case strings.HasSuffix(t, "M"):
		shift, t = 20, t[:len(t)-1]
	case strings.HasSuffix(t, "G"):
		shift, t = 30, t[:len(t)-1]
	}
	n, err := strconv.ParseInt(t, 10, 64)
	if err != nil {
		return 0, err
	}
	if n < 0 || n > (1<<62)>>shift {
		return 0, fmt.Errorf("size out of range")
	}
	return n << shift, nil
}

// Coordinator is the serving front end: it owns the tenant registry and the
// (optional) bounded pool of service slots every admitted op occupies.
// Slots model the front end's own capacity — request handler concurrency —
// and are granted in start-time-fair order weighted by tenant SLO weight,
// exactly the discipline qos.Scheduler applies per class at each OSD.
type Coordinator struct {
	reg   *metrics.Registry
	slots int // concurrent admitted ops (0 = unbounded, slot layer inactive)

	inflight    int
	queuedTotal int
	virt        int64 // SFQ virtual clock across tenants

	tenants map[string]*Tenant
	order   []*Tenant // registration order, for stable reporting
}

// New returns a coordinator publishing per-tenant instruments into reg
// (typically the cluster registry, so DumpMetrics carries them). slots
// bounds concurrently admitted ops across all tenants; 0 leaves the slot
// layer inactive and admission is token buckets + inflight caps only.
func New(reg *metrics.Registry, slots int) *Coordinator {
	if slots < 0 {
		slots = 0
	}
	return &Coordinator{reg: reg, slots: slots, tenants: make(map[string]*Tenant)}
}

// weightScale keeps integer SFQ finish-tag increments meaningful for small
// costs divided by large weights (same constant role as in qos).
const weightScale = 1000

// Tenant is one registered identity: its SLO, token bucket, inflight
// accounting and attribution instruments.
type Tenant struct {
	c    *Coordinator
	name string
	slo  SLO

	bucket   *TokenBucket // nil when the SLO sets no rate/burst
	inflight int
	depth    *sim.Cond // parks submitters at the inflight cap

	queue      []*slotWaiter // waiters for coordinator slots, FIFO
	lastFinish int64         // SFQ finish tag of the latest submission

	ops       *metrics.Counter
	bytes     *metrics.Counter
	throttled *metrics.Counter
	queueWait *metrics.Counter // microseconds of admission wait
	lat       *metrics.Histogram

	waitTotal time.Duration
}

// Register adds a tenant under the given SLO. Names must be unique and
// non-empty; the metric family is tenant_<sanitized-name>_*.
func (c *Coordinator) Register(name string, slo SLO) (*Tenant, error) {
	if name == "" {
		return nil, fmt.Errorf("gateway: empty tenant name")
	}
	if _, ok := c.tenants[name]; ok {
		return nil, fmt.Errorf("gateway: tenant %q already registered", name)
	}
	if slo.Class == "" {
		slo.Class = "custom"
	}
	t := &Tenant{c: c, name: name, slo: slo, depth: sim.NewCond()}
	if slo.RateBps > 0 || slo.Burst > 0 {
		t.bucket = NewTokenBucket(slo.RateBps, slo.Burst)
	}
	id := sanitizeMetricName(name)
	t.ops = c.reg.Counter("tenant_" + id + "_ops_total")
	t.bytes = c.reg.Counter("tenant_" + id + "_bytes_total")
	t.throttled = c.reg.Counter("tenant_" + id + "_throttled_total")
	t.queueWait = c.reg.Counter("tenant_" + id + "_queue_wait_us_total")
	t.lat = c.reg.Histogram("tenant_" + id + "_latency")
	c.tenants[name] = t
	c.order = append(c.order, t)
	return t, nil
}

// Tenant returns a registered tenant by name.
func (c *Coordinator) Tenant(name string) (*Tenant, bool) {
	t, ok := c.tenants[name]
	return t, ok
}

// Tenants returns the registered tenants in registration order.
func (c *Coordinator) Tenants() []*Tenant { return append([]*Tenant(nil), c.order...) }

// sanitizeMetricName maps an arbitrary tenant name onto the registry's
// identifier alphabet.
func sanitizeMetricName(name string) string {
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// Name returns the tenant's identity.
func (t *Tenant) Name() string { return t.name }

// SLO returns the tenant's contract.
func (t *Tenant) SLO() SLO { return t.slo }

// Bucket exposes the tenant's token bucket (nil when unthrottled), for
// retuning via SetRate.
func (t *Tenant) Bucket() *TokenBucket { return t.bucket }

// weight returns the tenant's clamped slot weight.
func (t *Tenant) weight() int64 {
	if t.slo.Weight < 1 {
		return 1
	}
	return t.slo.Weight
}

// Do admits one tenant operation carrying nbytes of payload and runs op
// once admission clears: the token bucket is charged nbytes, the tenant's
// inflight cap and the coordinator's slot pool (if bounded) are acquired,
// and the op's full latency — admission wait included, since that is what
// the tenant observes — lands in the tenant's histogram.
func (t *Tenant) Do(p *sim.Proc, nbytes int64, op func(q *sim.Proc)) {
	start := p.Now()
	if t.bucket != nil {
		t.bucket.Take(p, nbytes)
	}
	if max := t.slo.MaxInflight; max > 0 {
		for t.inflight >= max {
			t.depth.Wait(p)
		}
	}
	t.inflight++
	t.c.acquireSlot(p, t, nbytes)
	wait := (p.Now() - start).Duration()
	if wait > 0 {
		t.throttled.Inc()
		t.queueWait.Add(wait.Microseconds())
		t.waitTotal += wait
	}

	op(p)

	t.c.releaseSlot(p)
	t.inflight--
	t.depth.Signal(p)
	t.ops.Inc()
	t.bytes.Add(nbytes)
	t.lat.Add((p.Now() - start).Duration())
}

// slotWaiter is one op queued for a coordinator slot.
type slotWaiter struct {
	finish int64
	sig    *sim.Signal
}

// acquireSlot blocks until a coordinator service slot is free, granting
// contended slots in SFQ order across tenants (smallest finish tag first,
// cost = bytes / tenant weight). A no-op when slots are unbounded.
func (c *Coordinator) acquireSlot(p *sim.Proc, t *Tenant, nbytes int64) {
	if c.slots <= 0 {
		return
	}
	// Tag the submission whether or not it queues, so a busy tenant's next
	// op always starts no earlier than its previous one finished.
	startTag := c.virt
	if t.lastFinish > startTag {
		startTag = t.lastFinish
	}
	inc := nbytes * weightScale / t.weight()
	if inc < 1 {
		inc = 1
	}
	finish := startTag + inc
	t.lastFinish = finish

	if c.inflight < c.slots && c.queuedTotal == 0 {
		if startTag > c.virt {
			c.virt = startTag
		}
		c.inflight++
		return
	}
	w := &slotWaiter{finish: finish, sig: sim.NewSignal()}
	t.queue = append(t.queue, w)
	c.queuedTotal++
	w.sig.Wait(p) // releaseSlot dispatches in SFQ order
}

// releaseSlot frees a slot and grants it to the queued op with the smallest
// finish tag (per-tenant queues are FIFO with monotone tags, so only heads
// need comparing). Ties break by registration order, deterministically.
func (c *Coordinator) releaseSlot(p *sim.Proc) {
	if c.slots <= 0 {
		return
	}
	c.inflight--
	for c.inflight < c.slots && c.queuedTotal > 0 {
		var best *Tenant
		for _, t := range c.order {
			if len(t.queue) == 0 {
				continue
			}
			if best == nil || t.queue[0].finish < best.queue[0].finish {
				best = t
			}
		}
		w := best.queue[0]
		best.queue = best.queue[1:]
		c.queuedTotal--
		if w.finish > c.virt {
			c.virt = w.finish
		}
		c.inflight++
		w.sig.Fire(p)
	}
}

// Backend wraps an ObjectBackend so every op is admitted under the
// tenant's SLO before it reaches the cluster: writes charge the bucket
// their payload, reads their requested length, deletes a single token.
func (t *Tenant) Backend(inner client.ObjectBackend) client.ObjectBackend {
	return &tenantBackend{t: t, inner: inner}
}

type tenantBackend struct {
	t     *Tenant
	inner client.ObjectBackend
}

func (b *tenantBackend) Write(p *sim.Proc, oid string, off int64, data []byte) error {
	var err error
	b.t.Do(p, int64(len(data)), func(q *sim.Proc) { err = b.inner.Write(q, oid, off, data) })
	return err
}

func (b *tenantBackend) Read(p *sim.Proc, oid string, off, length int64) ([]byte, error) {
	charge := length
	if charge < 0 {
		charge = 1 // length unknown until served; charge a minimum token
	}
	var data []byte
	var err error
	b.t.Do(p, charge, func(q *sim.Proc) { data, err = b.inner.Read(q, oid, off, length) })
	return data, err
}

func (b *tenantBackend) Delete(p *sim.Proc, oid string) error {
	var err error
	b.t.Do(p, 1, func(q *sim.Proc) { err = b.inner.Delete(q, oid) })
	return err
}

// TenantStats is one tenant's aggregated accounting, for tables and tests.
type TenantStats struct {
	Name        string
	Class       string
	Weight      int64
	RateBps     int64
	Burst       int64
	MaxInflight int
	Ops         int64
	Bytes       int64
	Throttled   int64
	QueueWait   time.Duration
	MeanLat     time.Duration
	P99Lat      time.Duration
}

// Stats reports every tenant's accounting in registration order.
func (c *Coordinator) Stats() []TenantStats {
	out := make([]TenantStats, 0, len(c.order))
	for _, t := range c.order {
		out = append(out, t.Stats())
	}
	return out
}

// Stats reports this tenant's accounting.
func (t *Tenant) Stats() TenantStats {
	st := TenantStats{
		Name: t.name, Class: t.slo.Class, Weight: t.weight(),
		RateBps: t.slo.RateBps, Burst: t.slo.Burst, MaxInflight: t.slo.MaxInflight,
		Ops: t.ops.Value(), Bytes: t.bytes.Value(), Throttled: t.throttled.Value(),
		QueueWait: t.waitTotal,
	}
	if t.lat.Count() > 0 {
		st.MeanLat = t.lat.Mean()
		st.P99Lat = t.lat.Percentile(99)
	}
	return st
}

// ClassTotals aggregates tenant accounting per SLO class, ordered by class
// name — the view the many-tenant experiment reports.
type ClassTotals struct {
	Class     string
	Tenants   int
	Ops       int64
	Bytes     int64
	Throttled int64
	QueueWait time.Duration
}

// Totals aggregates per-class accounting across all tenants.
func (c *Coordinator) Totals() []ClassTotals {
	byClass := map[string]*ClassTotals{}
	var names []string
	for _, t := range c.order {
		ct, ok := byClass[t.slo.Class]
		if !ok {
			ct = &ClassTotals{Class: t.slo.Class}
			byClass[t.slo.Class] = ct
			names = append(names, t.slo.Class)
		}
		ct.Tenants++
		ct.Ops += t.ops.Value()
		ct.Bytes += t.bytes.Value()
		ct.Throttled += t.throttled.Value()
		ct.QueueWait += t.waitTotal
	}
	sort.Strings(names)
	out := make([]ClassTotals, 0, len(names))
	for _, n := range names {
		out = append(out, *byClass[n])
	}
	return out
}
