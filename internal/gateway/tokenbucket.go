// Package gateway is the multi-tenant serving front end: a coordinator
// through which many simulated tenants — each with an identity, an SLO
// class, and its own workload mix — share one cluster. Admission is
// two-level: every tenant op first clears its tenant's token bucket (rate +
// burst, refilled on simulated time — the non-work-conserving cap that
// holds a noisy neighbor to its contract even when the cluster is idle) and
// the tenant's inflight cap, then optionally competes for the coordinator's
// bounded service slots in weighted start-time-fair order. Whatever is
// admitted flows into the cluster as ordinary client-class I/O, where the
// per-OSD qos.Scheduler arbitrates it against background dedup, recovery,
// scrub and GC traffic. Tenant identity rides along on trace spans and
// per-tenant registry instruments, so every op in the cluster is
// attributable to the tenant that issued it.
package gateway

import (
	"math"
	"math/bits"
	"time"

	"dedupstore/internal/sim"
)

// TokenBucket meters admission in tokens (bytes) per second with a burst
// allowance. Refill is computed lazily from elapsed simulated time with
// 128-bit integer arithmetic — no floats, no wall clock — so admission
// timing is bit-for-bit deterministic across runs and platforms.
//
// A bucket with rate 0 never refills: once its initial burst is spent,
// takers park on an internal condition until SetRate gives the tenant a
// budget again. That is the "starves cleanly" contract — a zero-rate tenant
// blocks without spinning, scheduling events, or perturbing the rest of the
// simulation.
type TokenBucket struct {
	rate   int64 // tokens added per second (0 = never refills)
	burst  int64 // bucket capacity; also the largest single take
	tokens int64
	last   sim.Time // virtual time tokens were last accrued to

	starved *sim.Cond // parks takers while rate is 0 and tokens are short
	takes   int64     // ops admitted
	waits   int64     // ops that had to wait for refill
}

// NewTokenBucket returns a bucket holding burst tokens (minimum 1),
// starting full, refilling at rate tokens per second. rate <= 0 means no
// refill ever: the bucket grants only its initial burst.
func NewTokenBucket(rate, burst int64) *TokenBucket {
	if burst < 1 {
		burst = 1
	}
	if rate < 0 {
		rate = 0
	}
	return &TokenBucket{rate: rate, burst: burst, tokens: burst, starved: sim.NewCond()}
}

// Rate returns the refill rate in tokens per second.
func (b *TokenBucket) Rate() int64 { return b.rate }

// Burst returns the bucket capacity.
func (b *TokenBucket) Burst() int64 { return b.burst }

// Waits reports how many takes had to wait for a refill.
func (b *TokenBucket) Waits() int64 { return b.waits }

// mulDiv returns a*b/c through a 128-bit intermediate, saturating at
// MaxInt64. All arguments must be non-negative and c positive.
func mulDiv(a, b, c int64) int64 {
	hi, lo := bits.Mul64(uint64(a), uint64(b))
	if hi >= uint64(c) {
		return math.MaxInt64
	}
	q, _ := bits.Div64(hi, lo, uint64(c))
	if q > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(q)
}

// mulDivCeil is mulDiv rounding up, so a computed refill wait always covers
// the deficit in one sleep.
func mulDivCeil(a, b, c int64) int64 {
	hi, lo := bits.Mul64(uint64(a), uint64(b))
	if hi >= uint64(c) {
		return math.MaxInt64
	}
	q, r := bits.Div64(hi, lo, uint64(c))
	if r > 0 {
		q++
	}
	if q > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(q)
}

// refill accrues tokens for the time elapsed since the last accrual. The
// accrual point advances only by the time actually converted into whole
// tokens, so fractional refill is never lost to frequent polling.
func (b *TokenBucket) refill(now sim.Time) {
	if now <= b.last {
		return
	}
	if b.rate <= 0 || b.tokens >= b.burst {
		b.last = now
		return
	}
	add := mulDiv(int64(now-b.last), b.rate, int64(time.Second))
	if add <= 0 {
		return
	}
	if b.tokens+add >= b.burst || b.tokens+add < 0 {
		b.tokens = b.burst
		b.last = now
		return
	}
	b.tokens += add
	b.last += sim.Time(mulDiv(add, int64(time.Second), b.rate))
	if b.last > now {
		b.last = now
	}
}

// Tokens returns the balance as of now.
func (b *TokenBucket) Tokens(now sim.Time) int64 {
	b.refill(now)
	return b.tokens
}

// TryTake takes n tokens if the balance as of now covers them, without
// blocking. n is clamped to [1, burst].
func (b *TokenBucket) TryTake(now sim.Time, n int64) bool {
	n = b.clamp(n)
	b.refill(now)
	if b.tokens < n {
		return false
	}
	b.tokens -= n
	b.takes++
	return true
}

// Take blocks until n tokens are available, takes them, and returns how
// long the caller waited. n is clamped to [1, burst] so an oversized
// request costs a full bucket rather than blocking forever. Concurrent
// takers are served in deterministic simulation order; with rate 0 the
// caller parks until SetRate restores a budget.
func (b *TokenBucket) Take(p *sim.Proc, n int64) time.Duration {
	n = b.clamp(n)
	start := p.Now()
	waited := false
	for {
		b.refill(p.Now())
		if b.tokens >= n {
			b.tokens -= n
			b.takes++
			if waited {
				b.waits++
			}
			return (p.Now() - start).Duration()
		}
		waited = true
		if b.rate <= 0 {
			b.starved.Wait(p)
			continue
		}
		wait := mulDivCeil(n-b.tokens, int64(time.Second), b.rate)
		if wait < 1 {
			wait = 1
		}
		p.Sleep(time.Duration(wait))
	}
}

// SetRate retunes the bucket. The balance is accrued at the old rate up to
// now, then clamped to the new burst; parked zero-rate takers are woken to
// re-check. Must be called from within the simulation.
func (b *TokenBucket) SetRate(p *sim.Proc, rate, burst int64) {
	b.refill(p.Now())
	if burst < 1 {
		burst = 1
	}
	if rate < 0 {
		rate = 0
	}
	b.rate, b.burst = rate, burst
	if b.tokens > burst {
		b.tokens = burst
	}
	b.last = p.Now()
	b.starved.Broadcast(p)
}

func (b *TokenBucket) clamp(n int64) int64 {
	if n < 1 {
		return 1
	}
	if n > b.burst {
		return b.burst
	}
	return n
}
