package gateway

import (
	"strings"
	"testing"
	"time"

	"dedupstore/internal/client"
	"dedupstore/internal/metrics"
	"dedupstore/internal/rados"
	"dedupstore/internal/sim"
	"dedupstore/internal/simcost"
)

func TestParseSLO(t *testing.T) {
	cases := []struct {
		spec    string
		want    SLO
		wantErr bool
	}{
		{spec: "gold", want: Gold},
		{spec: " Silver ", want: Silver},
		{spec: "bronze", want: Bronze},
		{spec: "weight=500,rate=32M,burst=4M,inflight=16",
			want: SLO{Class: "custom", Weight: 500, RateBps: 32 << 20, Burst: 4 << 20, MaxInflight: 16}},
		{spec: "rate=1K", want: SLO{Class: "custom", RateBps: 1 << 10, Burst: 128}},
		{spec: "burst=1000", want: SLO{Class: "custom", Burst: 1000}}, // hard allowance: starves after 1000 bytes
		{spec: "class=vip,weight=2000", want: SLO{Class: "vip", Weight: 2000}},
		{spec: "", wantErr: true},
		{spec: "weight=0", wantErr: true},
		{spec: "rate=abc", wantErr: true},
		{spec: "bogus=1", wantErr: true},
		{spec: "weight", wantErr: true},
		{spec: "inflight=-1", wantErr: true},
	}
	for _, tc := range cases {
		got, err := ParseSLO(tc.spec)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseSLO(%q) = %+v, want error", tc.spec, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSLO(%q): %v", tc.spec, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseSLO(%q) = %+v, want %+v", tc.spec, got, tc.want)
		}
	}
}

// FuzzParseSLO checks the SLO spec parser never panics and that every
// accepted spec round-trips: String() renders a spec that parses back to
// the identical SLO.
func FuzzParseSLO(f *testing.F) {
	for _, seed := range []string{
		"gold", "silver", "bronze", "",
		"weight=500,rate=32M,burst=4M,inflight=16",
		"rate=1K", "burst=1000", "class=vip,weight=2000",
		"rate=9223372036854775807", "rate=-1", "weight=,=", "class==",
		"rate=1GiB", "rate=5kb", "inflight=0,weight=1",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		slo, err := ParseSLO(spec)
		if err != nil {
			return
		}
		if slo.Weight < 0 || slo.RateBps < 0 || slo.Burst < 0 || slo.MaxInflight < 0 {
			t.Fatalf("ParseSLO(%q) accepted negative field: %+v", spec, slo)
		}
		again, err := ParseSLO(slo.String())
		if err != nil {
			t.Fatalf("round-trip of %q: String() %q does not parse: %v", spec, slo.String(), err)
		}
		if again != slo {
			t.Fatalf("round-trip of %q: %+v -> %q -> %+v", spec, slo, slo.String(), again)
		}
	})
}

func TestRegisterAndStats(t *testing.T) {
	reg := metrics.NewRegistry()
	c := New(reg, 0)
	gold, err := c.Register("acme", Gold)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register("acme", Bronze); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if _, err := c.Register("", Gold); err == nil {
		t.Fatal("empty tenant name accepted")
	}
	if _, err := c.Register("evil corp!", Bronze); err != nil {
		t.Fatal(err)
	}

	runSim(t, 1, func(p *sim.Proc) {
		gold.Do(p, 4096, func(q *sim.Proc) { q.Sleep(time.Millisecond) })
	})
	st := gold.Stats()
	if st.Ops != 1 || st.Bytes != 4096 || st.Throttled != 0 {
		t.Fatalf("gold stats = %+v, want 1 op / 4096 bytes / 0 throttled", st)
	}
	if st.MeanLat != time.Millisecond {
		t.Fatalf("gold mean latency = %v, want 1ms", st.MeanLat)
	}
	// The instruments live in the shared registry under a sanitized id.
	if got := reg.Counter("tenant_acme_ops_total").Value(); got != 1 {
		t.Fatalf("registry tenant_acme_ops_total = %d, want 1", got)
	}
	dump := reg.Dump()
	if !strings.Contains(dump, "tenant_evil_corp__ops_total") {
		t.Fatalf("sanitized tenant instruments missing from dump:\n%s", dump)
	}
	if got := len(c.Stats()); got != 2 {
		t.Fatalf("Stats() has %d tenants, want 2", got)
	}
}

func TestInflightCap(t *testing.T) {
	reg := metrics.NewRegistry()
	c := New(reg, 0)
	ten, err := c.Register("capped", SLO{Class: "custom", MaxInflight: 2})
	if err != nil {
		t.Fatal(err)
	}
	var cur, peak int
	eng := sim.New(1)
	for i := 0; i < 8; i++ {
		eng.Go("op", func(p *sim.Proc) {
			ten.Do(p, 100, func(q *sim.Proc) {
				cur++
				if cur > peak {
					peak = cur
				}
				q.Sleep(10 * time.Millisecond)
				cur--
			})
		})
	}
	eng.Run()
	if peak != 2 {
		t.Fatalf("peak concurrency %d, want 2 (MaxInflight)", peak)
	}
	if st := ten.Stats(); st.Ops != 8 || st.Throttled != 6 {
		t.Fatalf("stats = %+v, want 8 ops with 6 throttled", st)
	}
}

// TestSlotWeightedSharing bounds the coordinator to one service slot and
// lets a heavy- and a light-weight tenant contend: SFQ must split grants
// roughly by weight, and neither may starve.
func TestSlotWeightedSharing(t *testing.T) {
	reg := metrics.NewRegistry()
	c := New(reg, 1)
	heavy, _ := c.Register("heavy", SLO{Class: "custom", Weight: 900})
	light, _ := c.Register("light", SLO{Class: "custom", Weight: 100})

	eng := sim.New(1)
	for _, tn := range []*Tenant{heavy, light} {
		tn := tn
		// Several issuers per tenant keep both backlogged: weighted sharing
		// only shows when the slot is genuinely contended.
		for w := 0; w < 4; w++ {
			eng.GoDaemon("issuer", func(p *sim.Proc) {
				for {
					tn.Do(p, 1000, func(q *sim.Proc) { q.Sleep(time.Millisecond) })
				}
			})
		}
	}
	// Daemons alone don't keep the engine alive; a clock proc sets the horizon.
	eng.Go("clock", func(p *sim.Proc) { p.Sleep(2 * time.Second) })
	eng.RunUntil(sim.Time(2 * time.Second))

	h, l := heavy.Stats().Ops, light.Stats().Ops
	if l == 0 {
		t.Fatal("light tenant fully starved — SFQ must keep its reservation")
	}
	ratio := float64(h) / float64(l)
	if ratio < 6 || ratio > 12 {
		t.Fatalf("grant ratio heavy:light = %d:%d (%.1fx), want ~9x by weight", h, l, ratio)
	}
}

// TestTenantBackendEndToEnd runs two tenants against a real simulated
// cluster through the full stack — BlockDevice → tenant backend → rados —
// and checks attribution: per-tenant counters land in the cluster registry,
// spans carry the tenant identity, and a rate-capped tenant gets throttled.
func TestTenantBackendEndToEnd(t *testing.T) {
	eng := sim.New(42)
	cl := rados.NewTestbed(eng, simcost.Default(), 2, 2)
	pool, err := cl.CreatePool(rados.PoolConfig{Name: "p", PGNum: 16, Redundancy: rados.ReplicatedN(2)})
	if err != nil {
		t.Fatal(err)
	}
	coord := New(cl.Metrics(), 0)
	quiet, _ := coord.Register("quiet", Gold)
	noisy, _ := coord.Register("noisy", SLO{Class: "custom", RateBps: 1 << 20, Burst: 64 << 10})

	mkdev := func(tn *Tenant) *client.BlockDevice {
		gw := cl.NewGateway("client." + tn.Name())
		gw.SetTenant(tn.Name())
		dev, err := client.NewBlockDevice(tn.Name(), 8<<20, 1<<20, tn.Backend(&client.RawBackend{GW: gw, Pool: pool}))
		if err != nil {
			t.Fatal(err)
		}
		dev.SetTrace(cl.Trace())
		dev.SetTenant(tn.Name())
		return dev
	}
	qdev, ndev := mkdev(quiet), mkdev(noisy)

	buf := make([]byte, 64<<10)
	eng.Go("load", func(p *sim.Proc) {
		for i := int64(0); i < 32; i++ {
			if err := qdev.WriteAt(p, i*int64(len(buf)), buf); err != nil {
				t.Errorf("quiet write: %v", err)
			}
			if err := ndev.WriteAt(p, i*int64(len(buf)), buf); err != nil {
				t.Errorf("noisy write: %v", err)
			}
		}
	})
	eng.Run()

	if got := cl.Metrics().Counter("tenant_quiet_ops_total").Value(); got != 32 {
		t.Fatalf("quiet ops counter = %d, want 32", got)
	}
	if st := noisy.Stats(); st.Throttled == 0 || st.QueueWait == 0 {
		t.Fatalf("rate-capped noisy tenant never throttled: %+v", st)
	}
	if st := quiet.Stats(); st.Throttled != 0 {
		t.Fatalf("unthrottled gold tenant throttled: %+v", st)
	}
	// Spans at every layer carry the tenant tag.
	tenants := map[string]bool{}
	for _, sp := range cl.Trace().Slowest(64) {
		if sp.Tenant != "" {
			tenants[sp.Name+"/"+sp.Tenant] = true
		}
	}
	for _, want := range []string{"rbd.write/quiet", "rados.write/noisy"} {
		if !tenants[want] {
			t.Fatalf("no span %s recorded; tagged spans: %v", want, tenants)
		}
	}
}
