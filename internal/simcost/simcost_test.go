package simcost

import (
	"testing"
	"time"
)

func TestDefaultSane(t *testing.T) {
	p := Default()
	if p.NetBandwidth <= 0 || p.SSDReadBW <= 0 || p.SSDWriteBW <= 0 || p.HashBW <= 0 {
		t.Fatal("default has zero rates")
	}
	if p.DiskShards < 1 {
		t.Fatal("disk shards < 1")
	}
}

func TestTransferScalesWithSize(t *testing.T) {
	p := Default()
	small, big := p.NetXfer(1<<10), p.NetXfer(1<<20)
	if big <= small {
		t.Fatal("network transfer not size-dependent")
	}
	if p.NetXfer(0) != p.NetLatency {
		t.Fatal("zero-byte transfer should cost only latency")
	}
	if p.NetSer(0) != 0 {
		t.Fatal("zero-byte serialization should be free")
	}
	if p.NetSer(1<<20)+p.NetLatency != p.NetXfer(1<<20) {
		t.Fatal("NetXfer != NetSer + latency")
	}
}

func TestDiskCosts(t *testing.T) {
	p := Default()
	if p.DiskRead(0) != p.SSDReadLatency {
		t.Fatal("zero read should cost access latency only")
	}
	if p.DiskWrite(1<<20) <= p.DiskRead(1<<20) {
		t.Fatal("journaled write should cost more than read at large sizes")
	}
	// Journal amplification below 1 clamps to 1.
	q := p
	q.JournalAmp = 0.5
	if q.DiskWrite(1<<20) > p.DiskWrite(1<<20) {
		t.Fatal("amp clamp failed")
	}
}

func TestCPUCosts(t *testing.T) {
	p := Default()
	if p.Hash(1<<20) <= 0 || p.ECEncode(1<<20) <= 0 || p.Compress(1<<20) <= 0 || p.Checksum(1<<20) <= 0 {
		t.Fatal("CPU costs must be positive for 1MB")
	}
	// SHA-256 fingerprinting is slower than CRC checksums.
	if p.Hash(1<<20) <= p.Checksum(1<<20) {
		t.Fatal("hash should cost more than checksum")
	}
	if p.Hash(-5) != 0 {
		t.Fatal("negative size should cost nothing")
	}
}

func TestCostsAreLinear(t *testing.T) {
	p := Default()
	a := p.Hash(1 << 20)
	b := p.Hash(2 << 20)
	if b < a*2-time.Microsecond || b > a*2+time.Microsecond {
		t.Fatalf("hash not linear: %v vs %v", a, b)
	}
}
