// Package simcost defines the hardware cost model used by the discrete-event
// simulation: how long disk, network, and CPU operations take as a function
// of size. Defaults are calibrated to the testbed in the paper (ICDCS'18,
// §6.1): 4 servers, each with an Intel Xeon E5-2690 (12 cores), four SATA
// SSDs, and 10 GbE networking.
package simcost

import "time"

// Params holds the per-device service-time parameters. All bandwidths are in
// bytes per second of service time at the device.
type Params struct {
	// Network (10 GbE): one-way propagation + protocol latency per message,
	// plus serialization at link bandwidth.
	NetLatency   time.Duration
	NetBandwidth float64

	// SSD: fixed access latency plus per-byte transfer. Writes are journaled
	// (data written twice at WriteAmp effective amplification).
	SSDReadLatency  time.Duration
	SSDWriteLatency time.Duration
	SSDReadBW       float64
	SSDWriteBW      float64
	JournalAmp      float64

	// CPU work rates.
	HashBW     float64 // SHA-256 fingerprinting
	RollBW     float64 // content-defined-chunking rolling-hash scan
	ECBW       float64 // Reed-Solomon encode/decode per byte of data
	CompressBW float64 // flate compression
	CRCBW      float64 // per-message checksumming

	// Fixed software overhead per object operation at an OSD (request
	// decode, PG lock, metadata update). Dominates small-IO latency.
	OpOverhead time.Duration

	// DiskShards is the number of internal channels an SSD serves
	// concurrently (queue depth the device sustains without queueing).
	DiskShards int
}

// Default returns parameters calibrated to the paper's testbed.
func Default() Params {
	return Params{
		NetLatency:      25 * time.Microsecond,
		NetBandwidth:    1.15e9, // ~10 GbE payload rate
		SSDReadLatency:  70 * time.Microsecond,
		SSDWriteLatency: 25 * time.Microsecond, // SSD write cache; journal makes it durable
		SSDReadBW:       520e6,
		SSDWriteBW:      450e6,
		JournalAmp:      1.35,
		HashBW:          1.4e9,
		RollBW:          450e6,
		ECBW:            2.8e9,
		CompressBW:      220e6,
		CRCBW:           5e9,
		OpOverhead:      90 * time.Microsecond,
		DiskShards:      4,
	}
}

func xfer(n int, bw float64) time.Duration {
	if n <= 0 || bw <= 0 {
		return 0
	}
	return time.Duration(float64(n) / bw * float64(time.Second))
}

// NetXfer is the end-to-end time to move n bytes across one network hop
// (serialization plus propagation).
func (p Params) NetXfer(n int) time.Duration { return p.NetLatency + xfer(n, p.NetBandwidth) }

// NetSer is only the link-occupancy (serialization) time for n bytes: the
// component that consumes NIC capacity. Propagation (NetLatency) adds
// latency but does not occupy the link.
func (p Params) NetSer(n int) time.Duration { return xfer(n, p.NetBandwidth) }

// DiskRead is the service time for reading n bytes from the SSD.
func (p Params) DiskRead(n int) time.Duration { return p.SSDReadLatency + xfer(n, p.SSDReadBW) }

// DiskWrite is the service time for durably writing n bytes (journal
// amplification included).
func (p Params) DiskWrite(n int) time.Duration {
	amp := p.JournalAmp
	if amp < 1 {
		amp = 1
	}
	return p.SSDWriteLatency + xfer(int(float64(n)*amp), p.SSDWriteBW)
}

// Hash is the CPU time to fingerprint n bytes.
func (p Params) Hash(n int) time.Duration { return xfer(n, p.HashBW) }

// ChunkScan is the CPU time for a content-defined chunker's rolling hash to
// scan n bytes looking for boundaries. Fixed chunking pays none of this.
func (p Params) ChunkScan(n int) time.Duration { return xfer(n, p.RollBW) }

// ECEncode is the CPU time to erasure-code n bytes of data.
func (p Params) ECEncode(n int) time.Duration { return xfer(n, p.ECBW) }

// Compress is the CPU time to compress n bytes.
func (p Params) Compress(n int) time.Duration { return xfer(n, p.CompressBW) }

// Checksum is the CPU time to checksum n bytes.
func (p Params) Checksum(n int) time.Duration { return xfer(n, p.CRCBW) }
