// Package store implements the per-OSD object store: a transactional
// key→object map where each object carries a data payload, extended
// attributes (xattr) and a sorted key/value map (omap) — the RADOS object
// model the paper's "self-contained object" design builds on (§3.2, §4.1).
// All deduplication metadata lives inside these per-object fields, so the
// substrate's replication/recovery machinery covers it with no extra code.
package store

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Key identifies an object within an OSD: pool id plus object name.
type Key struct {
	Pool uint64
	OID  string
}

func (k Key) String() string { return fmt.Sprintf("%d/%s", k.Pool, k.OID) }

// Object is the stored representation. Byte slices are owned by the store;
// accessors copy.
type Object struct {
	Data  []byte
	Xattr map[string][]byte
	Omap  map[string][]byte

	punched       extentSet // hole ranges (read as zeros, not stored)
	compressedLen int       // cached physical footprint of Data
	compressValid bool      // whether compressedLen is current
}

// PerObjectOverhead models the fixed per-object metadata footprint of the
// backing store (the paper cites "at least 512 bytes" for a Ceph object,
// §5 "Object metadata").
const PerObjectOverhead = 512

// ErrNotFound is returned when an object does not exist.
var ErrNotFound = errors.New("store: object not found")

// Store is one OSD's object store. Safe for concurrent use.
type Store struct {
	mu      sync.Mutex
	objects map[Key]*Object
	sizeFn  func([]byte) int // physical footprint model (compression)

	// Fault injection (tests only): the next failApplies Apply calls fail
	// with failErr without mutating the store.
	failApplies int
	failErr     error
}

// Option configures a Store.
type Option func(*Store)

// WithSizeFn installs a physical-footprint model, e.g. compressfs.Default()
// to model Btrfs compression under the OSD.
func WithSizeFn(fn func([]byte) int) Option {
	return func(s *Store) { s.sizeFn = fn }
}

// FailApplies arms fault injection: the next n Apply calls return err
// without mutating the store. Tests use it to model a device that can no
// longer commit transactions its peers applied (torn write, bad sector) —
// the diverged-replica case.
func (s *Store) FailApplies(n int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failApplies = n
	s.failErr = err
}

// New returns an empty store.
func New(opts ...Option) *Store {
	s := &Store{objects: make(map[Key]*Object)}
	for _, o := range opts {
		o(s)
	}
	return s
}

// --- Transactions -----------------------------------------------------------

// OpKind enumerates transaction operations.
type OpKind int

// Transaction operation kinds.
const (
	OpWrite OpKind = iota + 1 // write Data at Off (extends object)
	OpWriteFull
	OpTruncate
	OpDelete
	OpCreate // ensure existence (no-op if present)
	OpSetXattr
	OpRmXattr
	OpOmapSet
	OpOmapRm
	// OpZero punches a hole: the range reads as zeros and stops counting
	// toward the physical footprint (cache eviction of flushed chunks).
	OpZero
)

// Op is one mutation within a transaction.
type Op struct {
	Kind  OpKind
	Off   int64
	Len   int64 // for OpZero
	Data  []byte
	Name  string // xattr/omap key
	Value []byte // xattr/omap value
}

// Txn is an ordered list of mutations applied atomically to ONE object —
// the consistency unit the paper's §4.6 model relies on ("data consistency
// is achieved by the transactional operation of underlying storage system").
type Txn struct {
	Ops []Op
}

// NewTxn returns an empty transaction.
func NewTxn() *Txn { return &Txn{} }

// Write appends a partial write.
func (t *Txn) Write(off int64, data []byte) *Txn {
	t.Ops = append(t.Ops, Op{Kind: OpWrite, Off: off, Data: data})
	return t
}

// WriteFull appends a full-object replace.
func (t *Txn) WriteFull(data []byte) *Txn {
	t.Ops = append(t.Ops, Op{Kind: OpWriteFull, Data: data})
	return t
}

// Truncate appends a truncate to size off.
func (t *Txn) Truncate(off int64) *Txn {
	t.Ops = append(t.Ops, Op{Kind: OpTruncate, Off: off})
	return t
}

// Delete appends an object delete.
func (t *Txn) Delete() *Txn {
	t.Ops = append(t.Ops, Op{Kind: OpDelete})
	return t
}

// Create appends an ensure-exists op.
func (t *Txn) Create() *Txn {
	t.Ops = append(t.Ops, Op{Kind: OpCreate})
	return t
}

// SetXattr appends an xattr set.
func (t *Txn) SetXattr(name string, value []byte) *Txn {
	t.Ops = append(t.Ops, Op{Kind: OpSetXattr, Name: name, Value: value})
	return t
}

// RmXattr appends an xattr removal.
func (t *Txn) RmXattr(name string) *Txn {
	t.Ops = append(t.Ops, Op{Kind: OpRmXattr, Name: name})
	return t
}

// OmapSet appends an omap key set.
func (t *Txn) OmapSet(key string, value []byte) *Txn {
	t.Ops = append(t.Ops, Op{Kind: OpOmapSet, Name: key, Value: value})
	return t
}

// OmapRm appends an omap key removal.
func (t *Txn) OmapRm(key string) *Txn {
	t.Ops = append(t.Ops, Op{Kind: OpOmapRm, Name: key})
	return t
}

// Zero appends a punch-hole over [off, off+length).
func (t *Txn) Zero(off, length int64) *Txn {
	t.Ops = append(t.Ops, Op{Kind: OpZero, Off: off, Len: length})
	return t
}

// Bytes returns the number of payload bytes the transaction writes — the
// quantity the cost model charges to disk.
func (t *Txn) Bytes() int {
	n := 0
	for _, op := range t.Ops {
		n += len(op.Data) + len(op.Value)
	}
	return n
}

// Empty reports whether the transaction has no operations.
func (t *Txn) Empty() bool { return len(t.Ops) == 0 }

// Apply executes the transaction atomically. A transaction on a missing
// object implicitly creates it (like RADOS) unless it is only a Delete.
func (s *Store) Apply(k Key, t *Txn) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failApplies > 0 {
		s.failApplies--
		return s.failErr
	}
	obj := s.objects[k]
	for _, op := range t.Ops {
		switch op.Kind {
		case OpDelete:
			delete(s.objects, k)
			obj = nil
			continue
		case OpCreate, OpWrite, OpWriteFull, OpTruncate, OpSetXattr, OpRmXattr, OpOmapSet, OpOmapRm, OpZero:
			if obj == nil {
				obj = &Object{}
				s.objects[k] = obj
			}
		default:
			return fmt.Errorf("store: unknown op kind %d", op.Kind)
		}
		switch op.Kind {
		case OpWrite:
			end := op.Off + int64(len(op.Data))
			if int64(len(obj.Data)) < end {
				grown := make([]byte, end)
				copy(grown, obj.Data)
				obj.Data = grown
			}
			copy(obj.Data[op.Off:], op.Data)
			obj.punched = obj.punched.sub(op.Off, end)
			obj.compressValid = false
		case OpWriteFull:
			obj.Data = append([]byte(nil), op.Data...)
			obj.punched = nil
			obj.compressValid = false
		case OpTruncate:
			if op.Off < 0 {
				op.Off = 0
			}
			if int64(len(obj.Data)) > op.Off {
				obj.Data = obj.Data[:op.Off]
			} else if int64(len(obj.Data)) < op.Off {
				grown := make([]byte, op.Off)
				copy(grown, obj.Data)
				obj.Data = grown
			}
			obj.punched = obj.punched.clamp(op.Off)
			obj.compressValid = false
		case OpZero:
			end := op.Off + op.Len
			if end > int64(len(obj.Data)) {
				end = int64(len(obj.Data))
			}
			if op.Off < 0 {
				op.Off = 0
			}
			for i := op.Off; i < end; i++ {
				obj.Data[i] = 0
			}
			obj.punched = obj.punched.add(op.Off, end)
			obj.compressValid = false
		case OpSetXattr:
			if obj.Xattr == nil {
				obj.Xattr = make(map[string][]byte)
			}
			obj.Xattr[op.Name] = append([]byte(nil), op.Value...)
		case OpRmXattr:
			delete(obj.Xattr, op.Name)
		case OpOmapSet:
			if obj.Omap == nil {
				obj.Omap = make(map[string][]byte)
			}
			obj.Omap[op.Name] = append([]byte(nil), op.Value...)
		case OpOmapRm:
			delete(obj.Omap, op.Name)
		}
	}
	return nil
}

// --- Reads ------------------------------------------------------------------

// Exists reports whether the object is present.
func (s *Store) Exists(k Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.objects[k]
	return ok
}

// Size returns the object's data length.
func (s *Store) Size(k Key) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	obj, ok := s.objects[k]
	if !ok {
		return 0, ErrNotFound
	}
	return int64(len(obj.Data)), nil
}

// Read returns length bytes at off (short if the object is smaller). A
// length < 0 reads to the end.
func (s *Store) Read(k Key, off, length int64) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	obj, ok := s.objects[k]
	if !ok {
		return nil, ErrNotFound
	}
	if off >= int64(len(obj.Data)) || off < 0 {
		return nil, nil
	}
	end := int64(len(obj.Data))
	if length >= 0 && off+length < end {
		end = off + length
	}
	return append([]byte(nil), obj.Data[off:end]...), nil
}

// GetXattr returns an extended attribute.
func (s *Store) GetXattr(k Key, name string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	obj, ok := s.objects[k]
	if !ok {
		return nil, ErrNotFound
	}
	v, ok := obj.Xattr[name]
	if !ok {
		return nil, ErrNotFound
	}
	return append([]byte(nil), v...), nil
}

// OmapGet returns one omap value.
func (s *Store) OmapGet(k Key, key string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	obj, ok := s.objects[k]
	if !ok {
		return nil, ErrNotFound
	}
	v, ok := obj.Omap[key]
	if !ok {
		return nil, ErrNotFound
	}
	return append([]byte(nil), v...), nil
}

// OmapList returns up to max omap keys (all if max <= 0), sorted.
func (s *Store) OmapList(k Key, max int) ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	obj, ok := s.objects[k]
	if !ok {
		return nil, ErrNotFound
	}
	keys := make([]string, 0, len(obj.Omap))
	for key := range obj.Omap {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	if max > 0 && len(keys) > max {
		keys = keys[:max]
	}
	return keys, nil
}

// Keys returns all object keys, sorted by pool then OID.
func (s *Store) Keys() []Key {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]Key, 0, len(s.objects))
	for k := range s.objects {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Pool != keys[j].Pool {
			return keys[i].Pool < keys[j].Pool
		}
		return keys[i].OID < keys[j].OID
	})
	return keys
}

// PayloadBytes reports the object's transferable payload: data minus
// punched holes, plus metadata. Recovery charges this, mirroring
// sparse-aware object copies.
func (o *Object) PayloadBytes() int {
	n := len(o.Data) - int(o.punched.total())
	for k, v := range o.Xattr {
		n += len(k) + len(v)
	}
	for k, v := range o.Omap {
		n += len(k) + len(v)
	}
	return n
}

// Snapshot returns a deep copy of an object (for recovery copies).
func (s *Store) Snapshot(k Key) (*Object, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	obj, ok := s.objects[k]
	if !ok {
		return nil, ErrNotFound
	}
	cp := &Object{Data: append([]byte(nil), obj.Data...), punched: append(extentSet(nil), obj.punched...)}
	if obj.Xattr != nil {
		cp.Xattr = make(map[string][]byte, len(obj.Xattr))
		for n, v := range obj.Xattr {
			cp.Xattr[n] = append([]byte(nil), v...)
		}
	}
	if obj.Omap != nil {
		cp.Omap = make(map[string][]byte, len(obj.Omap))
		for n, v := range obj.Omap {
			cp.Omap[n] = append([]byte(nil), v...)
		}
	}
	return cp, nil
}

// Install places a snapshot object (recovery path), replacing any existing
// object at k.
func (s *Store) Install(k Key, obj *Object) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := &Object{Data: append([]byte(nil), obj.Data...), punched: append(extentSet(nil), obj.punched...)}
	if obj.Xattr != nil {
		cp.Xattr = make(map[string][]byte, len(obj.Xattr))
		for n, v := range obj.Xattr {
			cp.Xattr[n] = append([]byte(nil), v...)
		}
	}
	if obj.Omap != nil {
		cp.Omap = make(map[string][]byte, len(obj.Omap))
		for n, v := range obj.Omap {
			cp.Omap[n] = append([]byte(nil), v...)
		}
	}
	s.objects[k] = cp
}

// Clear removes every object (simulates device replacement).
func (s *Store) Clear() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.objects = make(map[Key]*Object)
}

// --- Accounting -------------------------------------------------------------

// Usage is a store's space breakdown in bytes.
type Usage struct {
	Objects  int
	Data     int64 // logical data bytes
	Physical int64 // data bytes after the footprint model (compression)
	Metadata int64 // xattr + omap + fixed per-object overhead
}

// Total returns physical data plus metadata: the on-disk footprint.
func (u Usage) Total() int64 { return u.Physical + u.Metadata }

// Usage computes the store's space usage.
func (s *Store) Usage() Usage { return s.usage(func(Key) bool { return true }) }

// PoolUsage computes space usage for one pool's objects only.
func (s *Store) PoolUsage(pool uint64) Usage {
	return s.usage(func(k Key) bool { return k.Pool == pool })
}

func (s *Store) usage(include func(Key) bool) Usage {
	s.mu.Lock()
	defer s.mu.Unlock()
	var u Usage
	for key, obj := range s.objects {
		if !include(key) {
			continue
		}
		u.Objects++
		u.Data += int64(len(obj.Data))
		if s.sizeFn != nil {
			if !obj.compressValid {
				obj.compressedLen = s.sizeFn(obj.Data)
				obj.compressValid = true
			}
			u.Physical += int64(obj.compressedLen)
		} else {
			u.Physical += int64(len(obj.Data)) - obj.punched.total()
		}
		u.Metadata += PerObjectOverhead
		for n, v := range obj.Xattr {
			u.Metadata += int64(len(n) + len(v))
		}
		for n, v := range obj.Omap {
			u.Metadata += int64(len(n) + len(v))
		}
	}
	return u
}
