package store

import "sort"

// extent is a half-open byte range [start, end).
type extent struct{ start, end int64 }

// extentSet is a sorted, non-overlapping set of extents. It tracks punched
// (hole) ranges within an object's data.
type extentSet []extent

// add inserts [start, end), merging overlaps.
func (s extentSet) add(start, end int64) extentSet {
	if start >= end {
		return s
	}
	out := s[:0:0]
	inserted := false
	for _, e := range s {
		switch {
		case e.end < start || e.start > end:
			out = append(out, e)
		default: // overlap or adjacency: merge
			if e.start < start {
				start = e.start
			}
			if e.end > end {
				end = e.end
			}
		}
	}
	out = append(out, extent{start, end})
	_ = inserted
	sort.Slice(out, func(i, j int) bool { return out[i].start < out[j].start })
	return out
}

// sub removes [start, end) from the set.
func (s extentSet) sub(start, end int64) extentSet {
	if start >= end {
		return s
	}
	var out extentSet
	for _, e := range s {
		if e.end <= start || e.start >= end {
			out = append(out, e)
			continue
		}
		if e.start < start {
			out = append(out, extent{e.start, start})
		}
		if e.end > end {
			out = append(out, extent{end, e.end})
		}
	}
	return out
}

// clamp trims the set to [0, limit).
func (s extentSet) clamp(limit int64) extentSet {
	var out extentSet
	for _, e := range s {
		if e.start >= limit {
			continue
		}
		if e.end > limit {
			e.end = limit
		}
		out = append(out, e)
	}
	return out
}

// total returns the covered byte count.
func (s extentSet) total() int64 {
	var n int64
	for _, e := range s {
		n += e.end - e.start
	}
	return n
}
