package store

import (
	"bytes"
	"testing"
	"testing/quick"

	"dedupstore/internal/compressfs"
)

var k = Key{Pool: 1, OID: "obj"}

func TestWriteReadRoundTrip(t *testing.T) {
	s := New()
	if err := s.Apply(k, NewTxn().WriteFull([]byte("hello world"))); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(k, 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello world" {
		t.Fatalf("got %q", got)
	}
	part, err := s.Read(k, 6, 5)
	if err != nil || string(part) != "world" {
		t.Fatalf("partial read %q, %v", part, err)
	}
}

func TestPartialWriteExtends(t *testing.T) {
	s := New()
	s.Apply(k, NewTxn().Write(4, []byte("abcd")))
	got, _ := s.Read(k, 0, -1)
	want := append(make([]byte, 4), []byte("abcd")...)
	if !bytes.Equal(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
	// Overwrite inside.
	s.Apply(k, NewTxn().Write(0, []byte("zz")))
	got, _ = s.Read(k, 0, 2)
	if string(got) != "zz" {
		t.Fatalf("overwrite failed: %q", got)
	}
	if sz, _ := s.Size(k); sz != 8 {
		t.Fatalf("size=%d want 8", sz)
	}
}

func TestReadBeyondEnd(t *testing.T) {
	s := New()
	s.Apply(k, NewTxn().WriteFull([]byte("abc")))
	got, err := s.Read(k, 10, 5)
	if err != nil || got != nil {
		t.Fatalf("read past end = %v, %v", got, err)
	}
	short, err := s.Read(k, 2, 100)
	if err != nil || string(short) != "c" {
		t.Fatalf("short read = %q, %v", short, err)
	}
}

func TestTruncate(t *testing.T) {
	s := New()
	s.Apply(k, NewTxn().WriteFull([]byte("abcdef")).Truncate(3))
	got, _ := s.Read(k, 0, -1)
	if string(got) != "abc" {
		t.Fatalf("truncate down: %q", got)
	}
	s.Apply(k, NewTxn().Truncate(5))
	got, _ = s.Read(k, 0, -1)
	if !bytes.Equal(got, []byte{'a', 'b', 'c', 0, 0}) {
		t.Fatalf("truncate up: %v", got)
	}
}

func TestDeleteAndNotFound(t *testing.T) {
	s := New()
	s.Apply(k, NewTxn().WriteFull([]byte("x")))
	s.Apply(k, NewTxn().Delete())
	if s.Exists(k) {
		t.Fatal("object survives delete")
	}
	if _, err := s.Read(k, 0, -1); err != ErrNotFound {
		t.Fatalf("err=%v want ErrNotFound", err)
	}
	if _, err := s.Size(k); err != ErrNotFound {
		t.Fatalf("err=%v", err)
	}
	if _, err := s.GetXattr(k, "a"); err != ErrNotFound {
		t.Fatalf("err=%v", err)
	}
}

func TestDeleteThenRecreateInOneTxn(t *testing.T) {
	s := New()
	s.Apply(k, NewTxn().WriteFull([]byte("old")).SetXattr("a", []byte("1")))
	s.Apply(k, NewTxn().Delete().WriteFull([]byte("new")))
	got, _ := s.Read(k, 0, -1)
	if string(got) != "new" {
		t.Fatalf("got %q", got)
	}
	if _, err := s.GetXattr(k, "a"); err != ErrNotFound {
		t.Fatal("xattr survived delete+recreate")
	}
}

func TestXattr(t *testing.T) {
	s := New()
	s.Apply(k, NewTxn().Create().SetXattr("chunkmap", []byte{1, 2, 3}))
	v, err := s.GetXattr(k, "chunkmap")
	if err != nil || !bytes.Equal(v, []byte{1, 2, 3}) {
		t.Fatalf("xattr = %v, %v", v, err)
	}
	s.Apply(k, NewTxn().RmXattr("chunkmap"))
	if _, err := s.GetXattr(k, "chunkmap"); err != ErrNotFound {
		t.Fatal("xattr survived removal")
	}
}

func TestOmap(t *testing.T) {
	s := New()
	s.Apply(k, NewTxn().Create().OmapSet("b", []byte("2")).OmapSet("a", []byte("1")))
	v, err := s.OmapGet(k, "a")
	if err != nil || string(v) != "1" {
		t.Fatalf("omap get = %q, %v", v, err)
	}
	keys, err := s.OmapList(k, 0)
	if err != nil || len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("omap list = %v, %v", keys, err)
	}
	keys, _ = s.OmapList(k, 1)
	if len(keys) != 1 {
		t.Fatalf("omap list max=1 returned %v", keys)
	}
	s.Apply(k, NewTxn().OmapRm("a"))
	if _, err := s.OmapGet(k, "a"); err != ErrNotFound {
		t.Fatal("omap key survived removal")
	}
}

func TestTxnAtomicOrder(t *testing.T) {
	s := New()
	// Write then truncate then write: order matters.
	s.Apply(k, NewTxn().WriteFull([]byte("abcdef")).Truncate(2).Write(2, []byte("Z")))
	got, _ := s.Read(k, 0, -1)
	if string(got) != "abZ" {
		t.Fatalf("got %q want abZ", got)
	}
}

func TestTxnBytes(t *testing.T) {
	txn := NewTxn().Write(0, make([]byte, 100)).SetXattr("x", make([]byte, 20)).OmapSet("k", make([]byte, 5))
	if txn.Bytes() != 125 {
		t.Fatalf("Bytes=%d want 125", txn.Bytes())
	}
	if NewTxn().Empty() != true || txn.Empty() {
		t.Fatal("Empty wrong")
	}
}

func TestReturnedSlicesAreCopies(t *testing.T) {
	s := New()
	data := []byte("mutable")
	s.Apply(k, NewTxn().WriteFull(data))
	data[0] = 'X' // caller mutates input after apply
	got, _ := s.Read(k, 0, -1)
	if string(got) != "mutable" {
		t.Fatal("store aliases caller's input slice")
	}
	got[0] = 'Y' // caller mutates output
	again, _ := s.Read(k, 0, -1)
	if string(again) != "mutable" {
		t.Fatal("store returned aliased slice")
	}
}

func TestSnapshotInstall(t *testing.T) {
	s := New()
	s.Apply(k, NewTxn().WriteFull([]byte("data")).SetXattr("a", []byte("v")).OmapSet("o", []byte("w")))
	snap, err := s.Snapshot(k)
	if err != nil {
		t.Fatal(err)
	}
	dst := New()
	k2 := Key{Pool: 1, OID: "copy"}
	dst.Install(k2, snap)
	got, _ := dst.Read(k2, 0, -1)
	if string(got) != "data" {
		t.Fatalf("installed data %q", got)
	}
	if v, _ := dst.GetXattr(k2, "a"); string(v) != "v" {
		t.Fatal("xattr lost in snapshot/install")
	}
	if v, _ := dst.OmapGet(k2, "o"); string(v) != "w" {
		t.Fatal("omap lost in snapshot/install")
	}
	// Mutating the snapshot must not affect either store.
	snap.Data[0] = 'X'
	got, _ = s.Read(k, 0, -1)
	if string(got) != "data" {
		t.Fatal("snapshot aliases source store")
	}
}

func TestUsageAccounting(t *testing.T) {
	s := New()
	s.Apply(k, NewTxn().WriteFull(make([]byte, 1000)).SetXattr("name", make([]byte, 46)))
	u := s.Usage()
	if u.Objects != 1 || u.Data != 1000 {
		t.Fatalf("usage = %+v", u)
	}
	if u.Metadata != PerObjectOverhead+4+46 {
		t.Fatalf("metadata = %d", u.Metadata)
	}
	if u.Physical != 1000 {
		t.Fatalf("physical = %d without compression", u.Physical)
	}
	if u.Total() != u.Physical+u.Metadata {
		t.Fatal("Total mismatch")
	}
}

func TestUsageWithCompression(t *testing.T) {
	s := New(WithSizeFn(compressfs.Default()))
	zeros := make([]byte, 64<<10)
	s.Apply(k, NewTxn().WriteFull(zeros))
	u := s.Usage()
	if u.Physical >= 1024 {
		t.Fatalf("zeros compressed to %d bytes, expected <1KB", u.Physical)
	}
	// Overwrite with incompressible data: cache must invalidate.
	data := make([]byte, 64<<10)
	x := uint32(123456789)
	for i := range data {
		x = x*1664525 + 1013904223
		data[i] = byte(x >> 24)
	}
	s.Apply(k, NewTxn().WriteFull(data))
	u = s.Usage()
	if u.Physical < 60<<10 {
		t.Fatalf("incompressible data reported %d bytes (stale cache?)", u.Physical)
	}
}

func TestKeysSorted(t *testing.T) {
	s := New()
	s.Apply(Key{Pool: 2, OID: "b"}, NewTxn().Create())
	s.Apply(Key{Pool: 1, OID: "z"}, NewTxn().Create())
	s.Apply(Key{Pool: 1, OID: "a"}, NewTxn().Create())
	keys := s.Keys()
	want := []Key{{1, "a"}, {1, "z"}, {2, "b"}}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys = %v", keys)
		}
	}
}

func TestClear(t *testing.T) {
	s := New()
	s.Apply(k, NewTxn().WriteFull([]byte("x")))
	s.Clear()
	if u := s.Usage(); u.Objects != 0 {
		t.Fatalf("usage after clear: %+v", u)
	}
}

func TestQuickWriteReadConsistency(t *testing.T) {
	s := New()
	prop := func(off uint16, data []byte) bool {
		key := Key{Pool: 9, OID: "q"}
		s.Apply(key, NewTxn().Delete())
		if err := s.Apply(key, NewTxn().Write(int64(off), data)); err != nil {
			return false
		}
		got, err := s.Read(key, int64(off), int64(len(data)))
		if err != nil {
			return false
		}
		if len(data) == 0 {
			return true
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
