package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// Model-based test: random transaction sequences applied to the Store must
// agree with a trivial reference model at every step. This is the deepest
// correctness check for the transactional object store — everything above
// it (replication, dedup metadata, EC shards) assumes these semantics.

// modelObject is the reference implementation.
type modelObject struct {
	data    []byte
	xattr   map[string]string
	omap    map[string]string
	punched int64
}

type model struct {
	objects map[Key]*modelObject
}

func newModel() *model { return &model{objects: make(map[Key]*modelObject)} }

func (m *model) apply(k Key, t *Txn) {
	obj := m.objects[k]
	for _, op := range t.Ops {
		if op.Kind == OpDelete {
			delete(m.objects, k)
			obj = nil
			continue
		}
		if obj == nil {
			obj = &modelObject{xattr: map[string]string{}, omap: map[string]string{}}
			m.objects[k] = obj
		}
		switch op.Kind {
		case OpWrite:
			end := op.Off + int64(len(op.Data))
			for int64(len(obj.data)) < end {
				obj.data = append(obj.data, 0)
			}
			copy(obj.data[op.Off:], op.Data)
		case OpWriteFull:
			obj.data = append([]byte(nil), op.Data...)
		case OpTruncate:
			n := op.Off
			if n < 0 {
				n = 0
			}
			for int64(len(obj.data)) < n {
				obj.data = append(obj.data, 0)
			}
			obj.data = obj.data[:n]
		case OpZero:
			end := op.Off + op.Len
			if end > int64(len(obj.data)) {
				end = int64(len(obj.data))
			}
			for i := op.Off; i >= 0 && i < end; i++ {
				obj.data[i] = 0
			}
		case OpSetXattr:
			obj.xattr[op.Name] = string(op.Value)
		case OpRmXattr:
			delete(obj.xattr, op.Name)
		case OpOmapSet:
			obj.omap[op.Name] = string(op.Value)
		case OpOmapRm:
			delete(obj.omap, op.Name)
		case OpCreate:
		}
	}
}

// randomTxn builds a random transaction of 1-4 ops.
func randomTxn(rng *rand.Rand) *Txn {
	t := NewTxn()
	n := 1 + rng.Intn(4)
	for i := 0; i < n; i++ {
		switch rng.Intn(9) {
		case 0:
			buf := make([]byte, rng.Intn(300))
			rng.Read(buf)
			t.Write(int64(rng.Intn(1000)), buf)
		case 1:
			buf := make([]byte, rng.Intn(500))
			rng.Read(buf)
			t.WriteFull(buf)
		case 2:
			t.Truncate(int64(rng.Intn(1200)))
		case 3:
			t.Zero(int64(rng.Intn(1000)), int64(rng.Intn(400)))
		case 4:
			t.SetXattr(fmt.Sprintf("x%d", rng.Intn(4)), []byte{byte(rng.Intn(256))})
		case 5:
			t.RmXattr(fmt.Sprintf("x%d", rng.Intn(4)))
		case 6:
			t.OmapSet(fmt.Sprintf("k%d", rng.Intn(6)), []byte{byte(rng.Intn(256))})
		case 7:
			t.OmapRm(fmt.Sprintf("k%d", rng.Intn(6)))
		case 8:
			if rng.Intn(4) == 0 { // deletes are rarer
				t.Delete()
			} else {
				t.Create()
			}
		}
	}
	return t
}

func compareObject(t *testing.T, step int, st *Store, m *model, k Key) {
	t.Helper()
	want, wantOK := m.objects[k]
	if st.Exists(k) != wantOK {
		t.Fatalf("step %d: existence mismatch for %v (model %v)", step, k, wantOK)
	}
	if !wantOK {
		return
	}
	got, err := st.Read(k, 0, -1)
	if err != nil {
		t.Fatalf("step %d: read: %v", step, err)
	}
	if len(got) == 0 {
		got = nil
	}
	wantData := want.data
	if len(wantData) == 0 {
		wantData = nil
	}
	if !bytes.Equal(got, wantData) {
		t.Fatalf("step %d: data mismatch (%d vs %d bytes)", step, len(got), len(wantData))
	}
	if sz, _ := st.Size(k); sz != int64(len(want.data)) {
		t.Fatalf("step %d: size %d != %d", step, sz, len(want.data))
	}
	for name, v := range want.xattr {
		got, err := st.GetXattr(k, name)
		if err != nil || string(got) != v {
			t.Fatalf("step %d: xattr %s mismatch", step, name)
		}
	}
	for name, v := range want.omap {
		got, err := st.OmapGet(k, name)
		if err != nil || string(got) != v {
			t.Fatalf("step %d: omap %s mismatch", step, name)
		}
	}
	keys, _ := st.OmapList(k, 0)
	if len(keys) != len(want.omap) {
		t.Fatalf("step %d: omap key count %d != %d", step, len(keys), len(want.omap))
	}
}

func TestModelBasedTransactions(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			st := New()
			m := newModel()
			keys := []Key{{1, "a"}, {1, "b"}, {2, "a"}}
			for step := 0; step < 500; step++ {
				k := keys[rng.Intn(len(keys))]
				txn := randomTxn(rng)
				if err := st.Apply(k, txn); err != nil {
					t.Fatalf("step %d: apply: %v", step, err)
				}
				m.apply(k, txn)
				compareObject(t, step, st, m, k)
			}
			// Final sweep over all keys, plus usage sanity.
			for _, k := range keys {
				compareObject(t, 500, st, m, k)
			}
			u := st.Usage()
			if u.Objects != len(m.objects) {
				t.Fatalf("usage objects %d != model %d", u.Objects, len(m.objects))
			}
			if u.Physical > u.Data {
				t.Fatalf("physical %d exceeds logical %d (punch accounting)", u.Physical, u.Data)
			}
		})
	}
}

func TestModelRandomReads(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	st := New()
	m := newModel()
	k := Key{3, "r"}
	for step := 0; step < 200; step++ {
		txn := randomTxn(rng)
		st.Apply(k, txn)
		m.apply(k, txn)
		if obj, ok := m.objects[k]; ok && len(obj.data) > 0 {
			off := int64(rng.Intn(len(obj.data)))
			length := int64(rng.Intn(len(obj.data)))
			got, err := st.Read(k, off, length)
			if err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			end := off + length
			if end > int64(len(obj.data)) {
				end = int64(len(obj.data))
			}
			want := obj.data[off:end]
			if len(want) == 0 {
				want = nil
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("step %d: range read mismatch at [%d,+%d)", step, off, length)
			}
		}
	}
}
