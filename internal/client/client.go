// Package client provides the user-facing access layers the paper evaluates
// through: an object backend abstraction and an RBD-style block device that
// stripes a virtual disk over fixed-size objects (the KRBD block device the
// paper's FIO and SPEC SFS runs use, §6.4.1).
package client

import (
	"fmt"

	"dedupstore/internal/core"
	"dedupstore/internal/metrics"
	"dedupstore/internal/rados"
	"dedupstore/internal/sim"
)

// ObjectBackend is the object API a block device stripes over. Both the
// original (no-dedup) store and the dedup store implement it.
type ObjectBackend interface {
	// Write stores data at an offset within an object.
	Write(p *sim.Proc, oid string, off int64, data []byte) error
	// Read returns length bytes at off (length < 0 reads to object end).
	// Reading a never-written object returns (nil, nil) hole semantics via
	// the block layer; backends may return their not-found error.
	Read(p *sim.Proc, oid string, off, length int64) ([]byte, error)
	// Delete removes an object.
	Delete(p *sim.Proc, oid string) error
}

// RawBackend is the baseline backend: objects go straight to one pool with
// no deduplication ("Original" in the paper's figures).
type RawBackend struct {
	GW   *rados.Gateway
	Pool *rados.Pool
}

// Write implements ObjectBackend.
func (b *RawBackend) Write(p *sim.Proc, oid string, off int64, data []byte) error {
	return b.GW.Write(p, b.Pool, oid, off, data)
}

// Read implements ObjectBackend.
func (b *RawBackend) Read(p *sim.Proc, oid string, off, length int64) ([]byte, error) {
	return b.GW.Read(p, b.Pool, oid, off, length)
}

// Delete implements ObjectBackend.
func (b *RawBackend) Delete(p *sim.Proc, oid string) error {
	return b.GW.Delete(p, b.Pool, oid)
}

// DedupBackend adapts a core.Client (the proposed design) to ObjectBackend.
type DedupBackend struct {
	Client *core.Client
}

// Write implements ObjectBackend.
func (b *DedupBackend) Write(p *sim.Proc, oid string, off int64, data []byte) error {
	return b.Client.Write(p, oid, off, data)
}

// Read implements ObjectBackend.
func (b *DedupBackend) Read(p *sim.Proc, oid string, off, length int64) ([]byte, error) {
	return b.Client.Read(p, oid, off, length)
}

// Delete implements ObjectBackend.
func (b *DedupBackend) Delete(p *sim.Proc, oid string) error {
	return b.Client.Delete(p, oid)
}

// BlockDevice is a virtual disk of Size bytes striped over ObjectSize-byte
// objects named <name>.<index>, like Ceph's RBD image layout.
type BlockDevice struct {
	name       string
	size       int64
	objectSize int64
	backend    ObjectBackend
	sink       *metrics.TraceSink
	tenant     string
}

// NewBlockDevice creates a block device view. objectSize defaults to 4 MiB
// (RBD's default) when zero.
func NewBlockDevice(name string, size, objectSize int64, backend ObjectBackend) (*BlockDevice, error) {
	if size <= 0 {
		return nil, fmt.Errorf("client: invalid device size %d", size)
	}
	if objectSize <= 0 {
		objectSize = 4 << 20
	}
	return &BlockDevice{name: name, size: size, objectSize: objectSize, backend: backend}, nil
}

// Name returns the device name.
func (d *BlockDevice) Name() string { return d.name }

// Size returns the device capacity in bytes.
func (d *BlockDevice) Size() int64 { return d.size }

// ObjectSize returns the stripe object size.
func (d *BlockDevice) ObjectSize() int64 { return d.objectSize }

// SetTrace attaches a span sink; WriteAt and ReadAt then record device-level
// spans ("rbd.write"/"rbd.read") that the per-object backend spans nest
// under. A nil sink disables device-level tracing.
func (d *BlockDevice) SetTrace(sink *metrics.TraceSink) { d.sink = sink }

// SetTenant attributes the device's spans to a tenant identity, so
// device-level I/O joins the per-tenant trace trail the backend layers
// continue.
func (d *BlockDevice) SetTenant(tenant string) { d.tenant = tenant }

// ObjectName returns the backing object name for stripe index idx.
func (d *BlockDevice) ObjectName(idx int64) string {
	return fmt.Sprintf("%s.%016x", d.name, idx)
}

// ObjectCount returns how many stripe objects cover the device.
func (d *BlockDevice) ObjectCount() int64 {
	return (d.size + d.objectSize - 1) / d.objectSize
}

// WriteAt writes data at a device offset, splitting across stripe objects.
func (d *BlockDevice) WriteAt(p *sim.Proc, off int64, data []byte) error {
	if off < 0 || off+int64(len(data)) > d.size {
		return fmt.Errorf("client: write [%d,%d) outside device %q size %d", off, off+int64(len(data)), d.name, d.size)
	}
	sp := d.sink.Start(p, "rbd.write").SetOp(d.name, "", int64(len(data))).SetTenant(d.tenant)
	defer sp.Finish(p)
	for len(data) > 0 {
		idx := off / d.objectSize
		inObj := off % d.objectSize
		n := d.objectSize - inObj
		if n > int64(len(data)) {
			n = int64(len(data))
		}
		if err := d.backend.Write(p, d.ObjectName(idx), inObj, data[:n]); err != nil {
			return err
		}
		off += n
		data = data[n:]
	}
	return nil
}

// ReadAt reads length bytes at a device offset. Unwritten regions read as
// zeros (thin provisioning).
func (d *BlockDevice) ReadAt(p *sim.Proc, off, length int64) ([]byte, error) {
	if off < 0 || off+length > d.size {
		return nil, fmt.Errorf("client: read [%d,%d) outside device %q size %d", off, off+length, d.name, d.size)
	}
	sp := d.sink.Start(p, "rbd.read").SetOp(d.name, "", length).SetTenant(d.tenant)
	defer sp.Finish(p)
	out := make([]byte, length)
	pos := int64(0)
	for pos < length {
		idx := (off + pos) / d.objectSize
		inObj := (off + pos) % d.objectSize
		n := d.objectSize - inObj
		if n > length-pos {
			n = length - pos
		}
		data, err := d.backend.Read(p, d.ObjectName(idx), inObj, n)
		switch {
		case err == nil:
			copy(out[pos:], data)
		case err == rados.ErrNotFound:
			// hole: zeros
		default:
			return nil, err
		}
		pos += n
	}
	return out, nil
}

// Discard deletes whole stripe objects fully covered by [off, off+length).
func (d *BlockDevice) Discard(p *sim.Proc, off, length int64) error {
	first := (off + d.objectSize - 1) / d.objectSize
	last := (off + length) / d.objectSize
	for idx := first; idx < last; idx++ {
		if err := d.backend.Delete(p, d.ObjectName(idx)); err != nil && err != rados.ErrNotFound {
			return err
		}
	}
	return nil
}
