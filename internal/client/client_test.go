package client

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"dedupstore/internal/core"
	"dedupstore/internal/rados"
	"dedupstore/internal/sim"
	"dedupstore/internal/simcost"
)

func rawDevice(t *testing.T, objectSize int64) (*sim.Engine, *BlockDevice) {
	t.Helper()
	eng := sim.New(3)
	c := rados.NewTestbed(eng, simcost.Default(), 4, 4)
	pool, err := c.CreatePool(rados.PoolConfig{Name: "rbd", PGNum: 64, Redundancy: rados.ReplicatedN(2)})
	if err != nil {
		t.Fatal(err)
	}
	dev, err := NewBlockDevice("img", 1<<20, objectSize, &RawBackend{GW: c.NewGateway("cl"), Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	return eng, dev
}

func run(t *testing.T, eng *sim.Engine, fn func(p *sim.Proc)) {
	t.Helper()
	var panicked error
	eng.Go("test", func(p *sim.Proc) {
		defer func() {
			if r := recover(); r != nil {
				panicked = fmt.Errorf("panic: %v", r)
			}
		}()
		fn(p)
	})
	eng.Run()
	if panicked != nil {
		t.Fatal(panicked)
	}
}

func TestBlockDeviceRoundTrip(t *testing.T) {
	eng, dev := rawDevice(t, 64<<10)
	data := make([]byte, 100000) // spans 2 objects
	rand.New(rand.NewSource(1)).Read(data)
	run(t, eng, func(p *sim.Proc) {
		if err := dev.WriteAt(p, 30000, data); err != nil {
			t.Fatal(err)
		}
		got, err := dev.ReadAt(p, 30000, int64(len(data)))
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("round trip: %v", err)
		}
	})
}

func TestBlockDeviceHolesReadZero(t *testing.T) {
	eng, dev := rawDevice(t, 64<<10)
	run(t, eng, func(p *sim.Proc) {
		got, err := dev.ReadAt(p, 500000, 4096)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range got {
			if b != 0 {
				t.Fatal("hole read nonzero")
			}
		}
	})
}

func TestBlockDeviceBounds(t *testing.T) {
	eng, dev := rawDevice(t, 64<<10)
	run(t, eng, func(p *sim.Proc) {
		if err := dev.WriteAt(p, dev.Size()-10, make([]byte, 20)); err == nil {
			t.Fatal("out-of-bounds write accepted")
		}
		if _, err := dev.ReadAt(p, -1, 10); err == nil {
			t.Fatal("negative-offset read accepted")
		}
	})
}

func TestBlockDeviceStriping(t *testing.T) {
	eng, dev := rawDevice(t, 64<<10)
	if dev.ObjectCount() != 16 {
		t.Fatalf("object count = %d, want 16", dev.ObjectCount())
	}
	run(t, eng, func(p *sim.Proc) {
		// A write crossing three stripe objects.
		data := make([]byte, 3*64<<10)
		for i := range data {
			data[i] = byte(i)
		}
		if err := dev.WriteAt(p, 32<<10, data); err != nil {
			t.Fatal(err)
		}
		got, err := dev.ReadAt(p, 32<<10, int64(len(data)))
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("striped round trip: %v", err)
		}
	})
}

func TestBlockDeviceOnDedupStore(t *testing.T) {
	eng := sim.New(4)
	c := rados.NewTestbed(eng, simcost.Default(), 4, 4)
	cfg := core.DefaultConfig()
	cfg.ChunkSize = 8 << 10
	cfg.Rate.Enabled = false
	s, err := core.Open(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := NewBlockDevice("img", 1<<20, 256<<10, &DedupBackend{Client: s.Client("cl")})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 300<<10)
	rand.New(rand.NewSource(2)).Read(data)
	run(t, eng, func(p *sim.Proc) {
		if err := dev.WriteAt(p, 12345, data); err != nil {
			t.Fatal(err)
		}
	})
	run(t, eng, func(p *sim.Proc) { s.Engine().DrainAndWait(p) })
	run(t, eng, func(p *sim.Proc) {
		got, err := dev.ReadAt(p, 12345, int64(len(data)))
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("dedup-backed device round trip: %v", err)
		}
	})
}

func TestDiscard(t *testing.T) {
	eng, dev := rawDevice(t, 64<<10)
	run(t, eng, func(p *sim.Proc) {
		data := bytes.Repeat([]byte{1}, 128<<10)
		if err := dev.WriteAt(p, 0, data); err != nil {
			t.Fatal(err)
		}
		if err := dev.Discard(p, 0, 64<<10); err != nil {
			t.Fatal(err)
		}
		got, err := dev.ReadAt(p, 0, 128<<10)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 64<<10; i++ {
			if got[i] != 0 {
				t.Fatal("discarded region nonzero")
			}
		}
		for i := 64 << 10; i < 128<<10; i++ {
			if got[i] != 1 {
				t.Fatal("undiscarded region corrupted")
			}
		}
	})
}

func TestInvalidDevice(t *testing.T) {
	if _, err := NewBlockDevice("x", 0, 0, nil); err == nil {
		t.Fatal("zero-size device accepted")
	}
}

func TestQuickBlockDeviceConsistency(t *testing.T) {
	eng, dev := rawDevice(t, 32<<10)
	model := make([]byte, dev.Size())
	prop := func(off uint32, size uint16, fill byte) bool {
		o := int64(off) % (dev.Size() - 1)
		n := int64(size)%8192 + 1
		if o+n > dev.Size() {
			n = dev.Size() - o
		}
		ok := true
		run(t, eng, func(p *sim.Proc) {
			data := bytes.Repeat([]byte{fill}, int(n))
			if err := dev.WriteAt(p, o, data); err != nil {
				ok = false
				return
			}
			copy(model[o:], data)
			got, err := dev.ReadAt(p, o, n)
			if err != nil || !bytes.Equal(got, model[o:o+n]) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
