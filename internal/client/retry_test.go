package client

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"dedupstore/internal/rados"
	"dedupstore/internal/sim"
	"dedupstore/internal/simcost"
)

// flakyBackend fails the first n calls with a retryable unavailability
// error, then delegates to an in-memory map.
type flakyBackend struct {
	failures int
	calls    int
	objects  map[string][]byte
}

func (f *flakyBackend) step() error {
	f.calls++
	if f.calls <= f.failures {
		return rados.ErrOSDDown
	}
	return nil
}

func (f *flakyBackend) Write(p *sim.Proc, oid string, off int64, data []byte) error {
	if err := f.step(); err != nil {
		return err
	}
	if f.objects == nil {
		f.objects = map[string][]byte{}
	}
	f.objects[oid] = append([]byte(nil), data...)
	return nil
}

func (f *flakyBackend) Read(p *sim.Proc, oid string, off, length int64) ([]byte, error) {
	if err := f.step(); err != nil {
		return nil, err
	}
	return f.objects[oid], nil
}

func (f *flakyBackend) Delete(p *sim.Proc, oid string) error {
	if err := f.step(); err != nil {
		return err
	}
	delete(f.objects, oid)
	return nil
}

func TestRetryBackendAbsorbsTransientFailures(t *testing.T) {
	eng := sim.New(1)
	inner := &flakyBackend{failures: 5}
	rb := NewRetryBackend(inner, RetryPolicy{MaxAttempts: 10, Base: time.Millisecond, Max: 8 * time.Millisecond}, nil)
	run(t, eng, func(p *sim.Proc) {
		t0 := p.Now()
		if err := rb.Write(p, "o", 0, []byte("hello")); err != nil {
			t.Fatalf("write: %v", err)
		}
		// 5 retries with backoff 1+2+4+8+8 = 23ms of virtual waiting.
		if waited := (p.Now() - t0).Duration(); waited < 23*time.Millisecond {
			t.Errorf("backoff slept only %v, want >= 23ms", waited)
		}
		got, err := rb.Read(p, "o", 0, -1)
		if err != nil || !bytes.Equal(got, []byte("hello")) {
			t.Fatalf("read: %v %q", err, got)
		}
	})
	if s := rb.Stats(); s.Retries != 5 || s.Exhausted != 0 {
		t.Errorf("stats = %+v, want 5 retries, 0 exhausted", s)
	}
}

func TestRetryBackendExhausts(t *testing.T) {
	eng := sim.New(1)
	inner := &flakyBackend{failures: 1 << 30}
	rb := NewRetryBackend(inner, RetryPolicy{MaxAttempts: 3, Base: time.Millisecond, Max: time.Millisecond}, nil)
	run(t, eng, func(p *sim.Proc) {
		err := rb.Write(p, "o", 0, []byte("x"))
		if !rados.IsUnavailable(err) {
			t.Fatalf("err = %v, want unavailability passed through", err)
		}
	})
	if inner.calls != 3 {
		t.Errorf("inner called %d times, want 3", inner.calls)
	}
	if s := rb.Stats(); s.Exhausted != 1 {
		t.Errorf("stats = %+v, want 1 exhausted", s)
	}
}

func TestRetryBackendPermanentErrorsPassThrough(t *testing.T) {
	eng := sim.New(1)
	c := rados.NewTestbed(eng, simcost.Default(), 2, 2)
	pool, err := c.CreatePool(rados.PoolConfig{Name: "p", PGNum: 16, Redundancy: rados.ReplicatedN(2)})
	if err != nil {
		t.Fatal(err)
	}
	rb := NewRetryBackend(&RawBackend{GW: c.NewGateway("cl"), Pool: pool}, DefaultRetryPolicy(), c.Metrics())
	run(t, eng, func(p *sim.Proc) {
		_, err := rb.Read(p, "missing", 0, -1)
		if !errors.Is(err, rados.ErrNotFound) {
			t.Fatalf("err = %v, want not-found untouched by retry", err)
		}
	})
	if got := c.Metrics().Counter("client_retries_total").Value(); got != 0 {
		t.Errorf("retried a permanent error %d times", got)
	}
}
