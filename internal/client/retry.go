package client

import (
	"time"

	"dedupstore/internal/metrics"
	"dedupstore/internal/rados"
	"dedupstore/internal/sim"
)

// RetryPolicy bounds the timeout/backoff loop a client runs when the
// cluster reports transient unavailability (a crashed acting primary that
// the heartbeat monitor has not yet marked down, or a PG below write
// quorum). Exponential backoff from Base, capped at Max, up to MaxAttempts
// tries. The policy only retries errors rados.IsUnavailable recognizes;
// permanent errors (not-found, validation) surface immediately.
type RetryPolicy struct {
	MaxAttempts int
	Base        time.Duration
	Max         time.Duration
}

// DefaultRetryPolicy covers a crash detected after a few seconds of
// heartbeat grace plus mark-out and remap with room to spare.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 64, Base: 5 * time.Millisecond, Max: 250 * time.Millisecond}
}

// RetryStats counts what the retry layer absorbed.
type RetryStats struct {
	Retries   int64 // individual retried attempts
	Exhausted int64 // ops that failed even after MaxAttempts
}

// RetryBackend wraps an ObjectBackend with the retry policy, making
// foreground I/O survive the down-detection window: writes that hit a dead
// primary fail fast inside the cluster and are retried here until the
// failure detector remaps the PG.
type RetryBackend struct {
	inner  ObjectBackend
	policy RetryPolicy
	stats  RetryStats
	reg    *metrics.Registry
}

// NewRetryBackend wraps inner. reg, if non-nil, receives
// client_retries_total / client_retries_exhausted_total counters.
func NewRetryBackend(inner ObjectBackend, policy RetryPolicy, reg *metrics.Registry) *RetryBackend {
	if policy.MaxAttempts < 1 {
		policy.MaxAttempts = 1
	}
	if policy.Base <= 0 {
		policy.Base = time.Millisecond
	}
	if policy.Max < policy.Base {
		policy.Max = policy.Base
	}
	return &RetryBackend{inner: inner, policy: policy, reg: reg}
}

// Stats returns the retries absorbed so far.
func (b *RetryBackend) Stats() RetryStats { return b.stats }

func (b *RetryBackend) do(p *sim.Proc, fn func() error) error {
	delay := b.policy.Base
	var err error
	for attempt := 0; attempt < b.policy.MaxAttempts; attempt++ {
		if err = fn(); err == nil || !rados.IsUnavailable(err) {
			return err
		}
		if attempt == b.policy.MaxAttempts-1 {
			break
		}
		b.stats.Retries++
		if b.reg != nil {
			b.reg.Counter("client_retries_total").Inc()
		}
		p.Sleep(delay)
		delay *= 2
		if delay > b.policy.Max {
			delay = b.policy.Max
		}
	}
	b.stats.Exhausted++
	if b.reg != nil {
		b.reg.Counter("client_retries_exhausted_total").Inc()
	}
	return err
}

// Write implements ObjectBackend.
func (b *RetryBackend) Write(p *sim.Proc, oid string, off int64, data []byte) error {
	return b.do(p, func() error { return b.inner.Write(p, oid, off, data) })
}

// Read implements ObjectBackend.
func (b *RetryBackend) Read(p *sim.Proc, oid string, off, length int64) ([]byte, error) {
	var out []byte
	err := b.do(p, func() error {
		var err error
		out, err = b.inner.Read(p, oid, off, length)
		return err
	})
	return out, err
}

// Delete implements ObjectBackend.
func (b *RetryBackend) Delete(p *sim.Proc, oid string) error {
	return b.do(p, func() error { return b.inner.Delete(p, oid) })
}
