package ec

import (
	"errors"
	"fmt"
)

// Errors returned by the codec.
var (
	ErrShardCount = errors.New("ec: wrong number of shards")
	ErrShardSize  = errors.New("ec: shards have mismatched sizes")
	ErrTooFew     = errors.New("ec: too few shards to reconstruct")
)

// Codec is a systematic Reed–Solomon code with K data shards and M parity
// shards. Shards 0..K-1 carry data verbatim; shards K..K+M-1 carry parity.
type Codec struct {
	K, M   int
	parity matrix // M×K Cauchy rows
}

// New returns a codec for k data and m parity shards. k >= 1, m >= 0, and
// k+m <= 256.
func New(k, m int) (*Codec, error) {
	if k < 1 || m < 0 || k+m > 256 {
		return nil, fmt.Errorf("ec: invalid configuration k=%d m=%d", k, m)
	}
	return &Codec{K: k, M: m, parity: cauchy(m, k)}, nil
}

// ShardSize returns the per-shard size for a payload of n bytes (payload is
// padded up to a multiple of K).
func (c *Codec) ShardSize(n int) int { return (n + c.K - 1) / c.K }

// SplitData slices payload into K equal data shards, padding the last with
// zeros. The returned shards copy the input.
func (c *Codec) SplitData(payload []byte) [][]byte {
	size := c.ShardSize(len(payload))
	shards := make([][]byte, c.K)
	for i := 0; i < c.K; i++ {
		shards[i] = make([]byte, size)
		start := i * size
		if start < len(payload) {
			copy(shards[i], payload[start:])
		}
	}
	return shards
}

// JoinData reassembles the original payload of length n from data shards.
func (c *Codec) JoinData(shards [][]byte, n int) ([]byte, error) {
	if len(shards) < c.K {
		return nil, ErrShardCount
	}
	out := make([]byte, 0, n)
	for i := 0; i < c.K && len(out) < n; i++ {
		if shards[i] == nil {
			return nil, ErrTooFew
		}
		remain := n - len(out)
		if remain > len(shards[i]) {
			remain = len(shards[i])
		}
		out = append(out, shards[i][:remain]...)
	}
	return out, nil
}

// Encode computes parity shards from the K data shards. Input must contain
// exactly K equal-size shards; it returns K+M shards (data aliased, parity
// fresh).
func (c *Codec) Encode(data [][]byte) ([][]byte, error) {
	if len(data) != c.K {
		return nil, ErrShardCount
	}
	size := len(data[0])
	for _, s := range data {
		if len(s) != size {
			return nil, ErrShardSize
		}
	}
	out := make([][]byte, c.K+c.M)
	copy(out, data)
	par := make([][]byte, c.M)
	for i := range par {
		par[i] = make([]byte, size)
	}
	c.parity.apply(data, par)
	copy(out[c.K:], par)
	return out, nil
}

// Verify checks that parity shards match the data shards.
func (c *Codec) Verify(shards [][]byte) (bool, error) {
	if len(shards) != c.K+c.M {
		return false, ErrShardCount
	}
	enc, err := c.Encode(shards[:c.K])
	if err != nil {
		return false, err
	}
	for i := c.K; i < c.K+c.M; i++ {
		a, b := enc[i], shards[i]
		if len(a) != len(b) {
			return false, nil
		}
		for j := range a {
			if a[j] != b[j] {
				return false, nil
			}
		}
	}
	return true, nil
}

// Reconstruct fills in nil shards in place. shards must have length K+M and
// at least K non-nil entries of equal size.
func (c *Codec) Reconstruct(shards [][]byte) error {
	if len(shards) != c.K+c.M {
		return ErrShardCount
	}
	size := -1
	present := 0
	for _, s := range shards {
		if s != nil {
			if size < 0 {
				size = len(s)
			} else if len(s) != size {
				return ErrShardSize
			}
			present++
		}
	}
	if present < c.K {
		return ErrTooFew
	}
	missingData := false
	for i := 0; i < c.K; i++ {
		if shards[i] == nil {
			missingData = true
		}
	}
	if missingData {
		// Select K available rows of the full generator matrix [I; parity].
		sub := newMatrix(c.K, c.K)
		srcs := make([][]byte, c.K)
		row := 0
		for i := 0; i < c.K+c.M && row < c.K; i++ {
			if shards[i] == nil {
				continue
			}
			if i < c.K {
				sub[row][i] = 1
			} else {
				copy(sub[row], c.parity[i-c.K])
			}
			srcs[row] = shards[i]
			row++
		}
		inv, ok := sub.invert()
		if !ok {
			return errors.New("ec: generator submatrix singular")
		}
		// Recover only the missing data shards.
		for i := 0; i < c.K; i++ {
			if shards[i] != nil {
				continue
			}
			rec := make([]byte, size)
			for j := 0; j < c.K; j++ {
				mulRowXor(rec, srcs[j], inv[i][j])
			}
			shards[i] = rec
		}
	}
	// Recompute any missing parity from (now complete) data.
	for i := c.K; i < c.K+c.M; i++ {
		if shards[i] != nil {
			continue
		}
		rec := make([]byte, size)
		for j := 0; j < c.K; j++ {
			mulRowXor(rec, shards[j], c.parity[i-c.K][j])
		}
		shards[i] = rec
	}
	return nil
}
