// Package ec implements systematic Reed–Solomon erasure coding over
// GF(2^8), the redundancy scheme the paper evaluates alongside replication
// (EC k=2, m=1 in §6.4). Any k of the k+m shards reconstruct the data.
package ec

// GF(2^8) arithmetic with the AES field polynomial x^8+x^4+x^3+x^2+1 (0x11d).
var (
	gfExp [512]byte
	gfLog [256]int
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = i
		x <<= 1
		if x&0x100 != 0 {
			x ^= 0x11d
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
}

func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[gfLog[a]+gfLog[b]]
}

func gfDiv(a, b byte) byte {
	if b == 0 {
		panic("ec: divide by zero in GF(256)")
	}
	if a == 0 {
		return 0
	}
	return gfExp[gfLog[a]-gfLog[b]+255]
}

func gfInv(a byte) byte { return gfDiv(1, a) }

// mulRow computes dst ^= c * src for byte slices (dst and src same length).
func mulRowXor(dst, src []byte, c byte) {
	if c == 0 {
		return
	}
	if c == 1 {
		for i := range dst {
			dst[i] ^= src[i]
		}
		return
	}
	logC := gfLog[c]
	for i := range dst {
		if s := src[i]; s != 0 {
			dst[i] ^= gfExp[logC+gfLog[s]]
		}
	}
}

// matrix is a dense GF(256) matrix.
type matrix [][]byte

func newMatrix(rows, cols int) matrix {
	m := make(matrix, rows)
	for i := range m {
		m[i] = make([]byte, cols)
	}
	return m
}

// identity returns the n×n identity matrix.
func identity(n int) matrix {
	m := newMatrix(n, n)
	for i := 0; i < n; i++ {
		m[i][i] = 1
	}
	return m
}

// cauchy builds an m×k Cauchy matrix with x_i = k+i, y_j = j. All x_i+y_j
// are nonzero and distinct pairs give invertible square submatrices, the
// property that makes any-k reconstruction possible.
func cauchy(m, k int) matrix {
	if m+k > 256 {
		panic("ec: k+m must be <= 256 for GF(256) Cauchy coding")
	}
	out := newMatrix(m, k)
	for i := 0; i < m; i++ {
		for j := 0; j < k; j++ {
			out[i][j] = gfInv(byte(k+i) ^ byte(j))
		}
	}
	return out
}

// invert returns the inverse of square matrix a via Gauss–Jordan
// elimination, or ok=false if singular.
func (a matrix) invert() (matrix, bool) {
	n := len(a)
	// Augment [a | I].
	work := newMatrix(n, 2*n)
	for i := 0; i < n; i++ {
		copy(work[i], a[i])
		work[i][n+i] = 1
	}
	for col := 0; col < n; col++ {
		// Find pivot.
		pivot := -1
		for r := col; r < n; r++ {
			if work[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, false
		}
		work[col], work[pivot] = work[pivot], work[col]
		// Normalize pivot row.
		inv := gfInv(work[col][col])
		for j := 0; j < 2*n; j++ {
			work[col][j] = gfMul(work[col][j], inv)
		}
		// Eliminate other rows.
		for r := 0; r < n; r++ {
			if r == col || work[r][col] == 0 {
				continue
			}
			c := work[r][col]
			for j := 0; j < 2*n; j++ {
				work[r][j] ^= gfMul(c, work[col][j])
			}
		}
	}
	out := newMatrix(n, n)
	for i := 0; i < n; i++ {
		copy(out[i], work[i][n:])
	}
	return out, true
}

// mulVec computes out[r] = sum_j a[r][j]*shards[j] over GF(256) rows.
func (a matrix) apply(shards [][]byte, out [][]byte) {
	for r := range a {
		for i := range out[r] {
			out[r][i] = 0
		}
		for j, row := range a[r] {
			mulRowXor(out[r], shards[j], row)
		}
	}
}
