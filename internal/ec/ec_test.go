package ec

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGFFieldProperties(t *testing.T) {
	// a * inv(a) == 1 for all nonzero a.
	for a := 1; a < 256; a++ {
		if got := gfMul(byte(a), gfInv(byte(a))); got != 1 {
			t.Fatalf("a*inv(a) = %d for a=%d", got, a)
		}
	}
	// Distributivity on a sample.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		a, b, c := byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))
		if gfMul(a, b^c) != gfMul(a, b)^gfMul(a, c) {
			t.Fatalf("distributivity failed for %d,%d,%d", a, b, c)
		}
		if gfMul(a, b) != gfMul(b, a) {
			t.Fatalf("commutativity failed for %d,%d", a, b)
		}
	}
}

func TestMatrixInvertIdentity(t *testing.T) {
	id := identity(5)
	inv, ok := id.invert()
	if !ok {
		t.Fatal("identity not invertible")
	}
	for i := range inv {
		for j := range inv[i] {
			want := byte(0)
			if i == j {
				want = 1
			}
			if inv[i][j] != want {
				t.Fatal("inverse of identity is not identity")
			}
		}
	}
}

func TestMatrixInvertSingular(t *testing.T) {
	m := newMatrix(2, 2) // all zeros
	if _, ok := m.invert(); ok {
		t.Fatal("zero matrix claimed invertible")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	c, err := New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	payload := make([]byte, 10000)
	rng.Read(payload)
	shards, err := c.Encode(c.SplitData(payload))
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.JoinData(shards, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("round trip mismatch")
	}
}

func TestReconstructAllErasurePatterns(t *testing.T) {
	c, err := New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	payload := make([]byte, 4099) // odd size exercises padding
	rng.Read(payload)
	orig, err := c.Encode(c.SplitData(payload))
	if err != nil {
		t.Fatal(err)
	}
	n := c.K + c.M
	// Erase every pair of shards (m=2 tolerates any 2 erasures).
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			shards := make([][]byte, n)
			for s := range shards {
				if s == i || s == j {
					continue
				}
				shards[s] = append([]byte(nil), orig[s]...)
			}
			if err := c.Reconstruct(shards); err != nil {
				t.Fatalf("reconstruct erasing %d,%d: %v", i, j, err)
			}
			for s := range shards {
				if !bytes.Equal(shards[s], orig[s]) {
					t.Fatalf("shard %d wrong after erasing %d,%d", s, i, j)
				}
			}
		}
	}
}

func TestReconstructTooFew(t *testing.T) {
	c, _ := New(2, 1)
	shards := make([][]byte, 3)
	shards[0] = []byte{1, 2}
	if err := c.Reconstruct(shards); err != ErrTooFew {
		t.Fatalf("err = %v, want ErrTooFew", err)
	}
}

func TestVerify(t *testing.T) {
	c, _ := New(2, 1)
	shards, err := c.Encode(c.SplitData([]byte("hello world, erasure coding")))
	if err != nil {
		t.Fatal(err)
	}
	ok, err := c.Verify(shards)
	if err != nil || !ok {
		t.Fatalf("verify = %v, %v", ok, err)
	}
	shards[2][0] ^= 0xff
	ok, err = c.Verify(shards)
	if err != nil || ok {
		t.Fatal("verify passed on corrupted parity")
	}
}

func TestPaperConfig21(t *testing.T) {
	// The paper's EC pool is k=2, m=1 (§6.4.1).
	c, err := New(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("the paper's EC 2+1 configuration")
	shards, err := c.Encode(c.SplitData(payload))
	if err != nil {
		t.Fatal(err)
	}
	// Lose any single shard.
	for i := 0; i < 3; i++ {
		work := make([][]byte, 3)
		for s := range work {
			if s != i {
				work[s] = append([]byte(nil), shards[s]...)
			}
		}
		if err := c.Reconstruct(work); err != nil {
			t.Fatalf("reconstruct shard %d: %v", i, err)
		}
		got, err := c.JoinData(work, len(payload))
		if err != nil || !bytes.Equal(got, payload) {
			t.Fatalf("data lost when shard %d erased", i)
		}
	}
}

func TestInvalidConfigs(t *testing.T) {
	for _, kv := range [][2]int{{0, 1}, {-1, 2}, {1, -1}, {200, 100}} {
		if _, err := New(kv[0], kv[1]); err == nil {
			t.Fatalf("New(%d,%d) accepted", kv[0], kv[1])
		}
	}
}

func TestEncodeShardMismatch(t *testing.T) {
	c, _ := New(2, 1)
	if _, err := c.Encode([][]byte{{1}, {2, 3}}); err != ErrShardSize {
		t.Fatalf("err = %v, want ErrShardSize", err)
	}
	if _, err := c.Encode([][]byte{{1}}); err != ErrShardCount {
		t.Fatalf("err = %v, want ErrShardCount", err)
	}
}

func TestQuickRoundTripAnyErasure(t *testing.T) {
	c, err := New(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(payload []byte, e1, e2 uint8) bool {
		if len(payload) == 0 {
			payload = []byte{0}
		}
		shards, err := c.Encode(c.SplitData(payload))
		if err != nil {
			return false
		}
		i, j := int(e1)%5, int(e2)%5
		work := make([][]byte, 5)
		for s := range work {
			if s != i && s != j {
				work[s] = append([]byte(nil), shards[s]...)
			}
		}
		if err := c.Reconstruct(work); err != nil {
			return false
		}
		got, err := c.JoinData(work, len(payload))
		return err == nil && bytes.Equal(got, payload)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestShardSize(t *testing.T) {
	c, _ := New(4, 2)
	if c.ShardSize(0) != 0 || c.ShardSize(1) != 1 || c.ShardSize(4) != 1 || c.ShardSize(5) != 2 {
		t.Fatal("ShardSize wrong")
	}
}

func BenchmarkEncode4x2_32KB(b *testing.B) {
	c, _ := New(4, 2)
	payload := make([]byte, 32<<10)
	rand.New(rand.NewSource(1)).Read(payload)
	data := c.SplitData(payload)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconstruct4x2_32KB(b *testing.B) {
	c, _ := New(4, 2)
	payload := make([]byte, 32<<10)
	rand.New(rand.NewSource(1)).Read(payload)
	shards, _ := c.Encode(c.SplitData(payload))
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		work := make([][]byte, len(shards))
		for s := 2; s < len(shards); s++ {
			work[s] = shards[s]
		}
		if err := c.Reconstruct(work); err != nil {
			b.Fatal(err)
		}
	}
}
