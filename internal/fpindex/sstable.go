package fpindex

import (
	"sort"

	"dedupstore/internal/bloom"
)

// sstable is one immutable sorted run: key-ordered entries cut into
// fixed-size data blocks, a sparse index (first key per block, pinned in
// RAM like a real table's index block), and a bloom filter sized for the
// table's entry count. Only data blocks cost reads; bloom and sparse index
// are charged as CPU.
type sstable struct {
	id     uint64
	keys   []string
	ents   []entry
	minSeq uint64
	maxSeq uint64
	bytes  int // modeled on-disk size of the data blocks

	blockStart []int    // entry index where each block begins
	blockBytes []int    // modeled bytes per block
	firstKey   []string // sparse index: first key of each block
	filter     *bloom.Filter
}

// buildSSTable lays out sorted records into blocks and builds the filter.
func buildSSTable(id uint64, recs []kv, cfg Config) *sstable {
	t := &sstable{
		id:     id,
		keys:   make([]string, len(recs)),
		ents:   make([]entry, len(recs)),
		filter: bloom.NewWithEstimates(uint64(len(recs)), cfg.BloomFP),
	}
	cur := 0 // bytes in the open block
	for i, r := range recs {
		t.keys[i] = r.key
		t.ents[i] = r.ent
		if r.ent.seq < t.minSeq || t.minSeq == 0 {
			t.minSeq = r.ent.seq
		}
		if r.ent.seq > t.maxSeq {
			t.maxSeq = r.ent.seq
		}
		t.filter.AddString(r.key)
		sz := len(r.key) + cfg.EntryBytes
		if cur == 0 || cur+sz > cfg.BlockBytes {
			t.blockStart = append(t.blockStart, i)
			t.blockBytes = append(t.blockBytes, 0)
			t.firstKey = append(t.firstKey, r.key)
			cur = 0
		}
		cur += sz
		t.blockBytes[len(t.blockBytes)-1] += sz
		t.bytes += sz
	}
	return t
}

// blockOf locates the data block that could hold key via the sparse index.
// ok is false when the key sorts before the first block.
func (t *sstable) blockOf(key string) (int, bool) {
	// First block whose firstKey is > key; the candidate is the one before.
	i := sort.Search(len(t.firstKey), func(i int) bool { return t.firstKey[i] > key })
	if i == 0 {
		return 0, false
	}
	return i - 1, true
}

// get binary-searches block b for key.
func (t *sstable) get(key string, b int) (entry, bool) {
	lo := t.blockStart[b]
	hi := len(t.keys)
	if b+1 < len(t.blockStart) {
		hi = t.blockStart[b+1]
	}
	part := t.keys[lo:hi]
	i := sort.SearchStrings(part, key)
	if i < len(part) && part[i] == key {
		return t.ents[lo+i], true
	}
	return entry{}, false
}

// mergeSSTables merges whole tables into one run, newest version of each
// key winning. With dropTombstones (the output becomes the oldest data),
// deletions are discarded instead of carried forward. Returns nil when the
// merge produces no entries.
func mergeSSTables(id uint64, inputs []*sstable, cfg Config, dropTombstones bool) *sstable {
	merged := make(map[string]entry)
	for _, t := range inputs {
		for i, k := range t.keys {
			if cur, ok := merged[k]; !ok || t.ents[i].seq > cur.seq {
				merged[k] = t.ents[i]
			}
		}
	}
	recs := make([]kv, 0, len(merged))
	for k, e := range merged {
		if dropTombstones && e.del {
			continue
		}
		recs = append(recs, kv{key: k, ent: e})
	}
	if len(recs) == 0 {
		return nil
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].key < recs[j].key })
	return buildSSTable(id, recs, cfg)
}
