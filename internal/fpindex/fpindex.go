// Package fpindex implements a per-OSD log-structured fingerprint index:
// the on-disk metadata structure that makes dedup-pool chunk lookups cost
// real I/O instead of a free map probe. The paper's "double hashing" design
// (§4.1) replaces a cluster-wide fingerprint table with content-derived
// placement, but every chunk create/lookup still lands on some OSD that must
// answer "do I hold this fingerprint?" from durable metadata. fpindex models
// that structure the way production stores build it (LevelDB/RocksDB shape):
//
//	writes  → WAL append + memtable insert
//	flush   → memtable sorted into an SSTable appended to level 0
//	levels  → size-tiered: a level over its fanout is merged into the next
//	lookup  → memtable, then tables newest→oldest; per-table bloom filter
//	          (internal/bloom) rejects most absent keys; positives read one
//	          data block through an LRU block cache
//
// The index itself is pure data structure plus cost accounting: every
// operation reports the bytes it would have read/written and the CPU it
// burned through an IO adapter, which the rados layer binds to the OSD's
// QoS scheduler (dedup class) and the simcost model. With a nil adapter the
// index is free, which is what unit tests and benchmarks use.
package fpindex

import (
	"sync"
	"time"

	"dedupstore/internal/sim"
)

// Config sizes one OSD's fingerprint index.
type Config struct {
	// Enabled turns the index on. The zero value leaves the flat in-memory
	// map behavior (no index, no cost) so existing experiments are unchanged.
	Enabled bool
	// MemtableBytes is the flush threshold for the in-memory write buffer.
	MemtableBytes int
	// BlockBytes is the SSTable data-block size, the unit of cached reads.
	BlockBytes int
	// CacheBytes caps the LRU block cache (0 disables caching: every
	// bloom-positive probe reads its block from disk).
	CacheBytes int
	// BloomFP is the per-table bloom filter's design false-positive rate.
	BloomFP float64
	// LevelFanout is the max tables per level before compaction merges the
	// level into the next one.
	LevelFanout int
	// EntryBytes models the on-disk bytes an entry occupies beyond its key
	// (sequence number, size hint, tombstone flag, framing).
	EntryBytes int
	// BloomCheckCost is the CPU time per bloom-filter membership probe.
	BloomCheckCost time.Duration
	// SearchCost is the CPU time to binary-search one data block.
	SearchCost time.Duration
	// CompactEvery is how often the background compactor polls for levels
	// over their fanout.
	CompactEvery time.Duration
}

// DefaultConfig returns an enabled index sized for tens of thousands of
// fingerprints per OSD: small enough that experiments can push the table
// set past the block cache without gigabyte workloads.
func DefaultConfig() Config {
	return Config{
		Enabled:        true,
		MemtableBytes:  64 << 10,
		BlockBytes:     4 << 10,
		CacheBytes:     256 << 10,
		BloomFP:        0.01,
		LevelFanout:    4,
		EntryBytes:     16,
		BloomCheckCost: 200 * time.Nanosecond,
		SearchCost:     500 * time.Nanosecond,
		CompactEvery:   25 * time.Millisecond,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.MemtableBytes <= 0 {
		c.MemtableBytes = d.MemtableBytes
	}
	if c.BlockBytes <= 0 {
		c.BlockBytes = d.BlockBytes
	}
	if c.CacheBytes < 0 {
		c.CacheBytes = 0
	}
	if c.BloomFP <= 0 || c.BloomFP >= 1 {
		c.BloomFP = d.BloomFP
	}
	if c.LevelFanout < 2 {
		c.LevelFanout = d.LevelFanout
	}
	if c.EntryBytes <= 0 {
		c.EntryBytes = d.EntryBytes
	}
	if c.BloomCheckCost <= 0 {
		c.BloomCheckCost = d.BloomCheckCost
	}
	if c.SearchCost <= 0 {
		c.SearchCost = d.SearchCost
	}
	if c.CompactEvery <= 0 {
		c.CompactEvery = d.CompactEvery
	}
	return c
}

// IO is the cost adapter: the index reports modeled disk bytes and CPU time
// through it. Any nil function (or a nil *sim.Proc on the call) makes that
// charge free — unit tests run uncharged; rados binds these to the OSD's
// QoS-scheduled disk and the host CPU.
type IO struct {
	Read  func(p *sim.Proc, n int)
	Write func(p *sim.Proc, n int)
	CPU   func(p *sim.Proc, d time.Duration)
}

// entry is one fingerprint record. Seq orders records globally (newest
// wins); Del marks a tombstone.
type entry struct {
	seq  uint64
	size uint32
	del  bool
}

// walRec is one durable write-ahead-log record.
type walRec struct {
	seq  uint64
	key  string
	size uint32
	del  bool
}

// walRecOverhead models the framing bytes of a WAL record beyond its key.
const walRecOverhead = 24

// charges accumulates the modeled cost of one operation while the index
// lock is held; the cost is paid (parking the proc) only after unlock, so a
// parked proc never blocks other procs on the mutex.
type charges struct {
	read  int
	write int
	cpu   time.Duration
}

// Index is one OSD's fingerprint index. Safe for concurrent use; all
// blocking cost charges happen outside the internal lock.
type Index struct {
	mu  sync.Mutex
	cfg Config
	io  IO

	seq        uint64 // last assigned sequence number
	durableSeq uint64 // max sequence covered by flushed SSTables (manifest)
	tableSeq   uint64 // SSTable id allocator

	mem      *memtable
	wal      []walRec
	walBytes int

	levels [][]*sstable // levels[0] = newest tier; within a level, newest last
	cache  *blockCache

	st stats

	// Test hooks: fired inside a flush, between writing the SSTable and
	// truncating the WAL (and just before installing the table). Returning
	// true simulates an OSD crash at that instant: the flush aborts and the
	// index transitions exactly as Crash() would.
	hookBeforeInstall func() bool
	hookAfterInstall  func() bool
}

// New creates an index with the given configuration and cost adapter.
func New(cfg Config, io IO) *Index {
	cfg = cfg.withDefaults()
	return &Index{
		cfg:    cfg,
		io:     io,
		mem:    newMemtable(cfg.EntryBytes),
		cache:  newBlockCache(cfg.CacheBytes),
		levels: make([][]*sstable, 0, 4),
	}
}

// Config returns the index's effective (defaulted) configuration.
func (x *Index) Config() Config { return x.cfg }

func (x *Index) charge(p *sim.Proc, ch charges) {
	if p == nil {
		return
	}
	if ch.cpu > 0 && x.io.CPU != nil {
		x.io.CPU(p, ch.cpu)
	}
	if ch.read > 0 && x.io.Read != nil {
		x.io.Read(p, ch.read)
	}
	if ch.write > 0 && x.io.Write != nil {
		x.io.Write(p, ch.write)
	}
}

// Insert records fingerprint key (size is the chunk's stored size hint).
func (x *Index) Insert(p *sim.Proc, key string, size uint32) {
	x.apply(p, key, size, false)
}

// Delete records removal of fingerprint key (a tombstone until compaction
// drops it at the deepest level).
func (x *Index) Delete(p *sim.Proc, key string) {
	x.apply(p, key, 0, true)
}

func (x *Index) apply(p *sim.Proc, key string, size uint32, del bool) {
	x.mu.Lock()
	x.seq++
	rec := walRec{seq: x.seq, key: key, size: size, del: del}
	x.wal = append(x.wal, rec)
	rb := len(key) + walRecOverhead
	x.walBytes += rb
	x.mem.put(key, entry{seq: rec.seq, size: size, del: del})
	if del {
		x.st.deletes++
	} else {
		x.st.inserts++
	}
	ch := charges{write: rb}
	if x.mem.bytes >= x.cfg.MemtableBytes {
		x.flushLocked(&ch)
	}
	x.st.readBytes += int64(ch.read)
	x.st.writeBytes += int64(ch.write)
	x.mu.Unlock()
	x.charge(p, ch)
}

// Flush forces the memtable out to a level-0 SSTable (no-op when empty).
func (x *Index) Flush(p *sim.Proc) {
	x.mu.Lock()
	var ch charges
	if x.mem.len() > 0 {
		x.flushLocked(&ch)
	}
	x.st.readBytes += int64(ch.read)
	x.st.writeBytes += int64(ch.write)
	x.mu.Unlock()
	x.charge(p, ch)
}

// flushLocked turns the memtable into an SSTable. Durability order matters
// and is what the crash tests probe:
//
//  1. write the table (charged),
//  2. install it and advance durableSeq (the manifest record),
//  3. truncate the WAL records the table now covers,
//  4. clear the memtable.
//
// A crash before step 2 leaves the full WAL to replay (the half-written
// table is unreferenced garbage); a crash after step 2 replays only records
// past durableSeq, so nothing is lost and nothing is applied twice.
func (x *Index) flushLocked(ch *charges) {
	t := buildSSTable(x.nextTableID(), x.mem.sorted(), x.cfg)
	ch.write += t.bytes
	if x.hookBeforeInstall != nil && x.hookBeforeInstall() {
		x.crashLocked()
		return
	}
	x.levels = ensureLevel(x.levels, 0)
	x.levels[0] = append(x.levels[0], t)
	if t.maxSeq > x.durableSeq {
		x.durableSeq = t.maxSeq
	}
	x.st.flushes++
	x.st.flushBytes += int64(t.bytes)
	if x.hookAfterInstall != nil && x.hookAfterInstall() {
		x.crashLocked()
		return
	}
	x.truncateWALLocked()
	x.mem.clear()
}

// truncateWALLocked drops WAL records already covered by flushed tables.
func (x *Index) truncateWALLocked() {
	keep := x.wal[:0]
	bytes := 0
	for _, r := range x.wal {
		if r.seq > x.durableSeq {
			keep = append(keep, r)
			bytes += len(r.key) + walRecOverhead
		}
	}
	x.wal = keep
	x.walBytes = bytes
}

func (x *Index) nextTableID() uint64 {
	x.tableSeq++
	return x.tableSeq
}

func ensureLevel(levels [][]*sstable, i int) [][]*sstable {
	for len(levels) <= i {
		levels = append(levels, nil)
	}
	return levels
}

// Lookup reports whether the fingerprint is present, charging the modeled
// bloom probes, block-cache reads and searches the walk costs.
func (x *Index) Lookup(p *sim.Proc, key string) bool {
	x.mu.Lock()
	x.st.lookups++
	var ch charges
	found := x.lookupLocked(key, &ch)
	x.st.readBytes += int64(ch.read)
	x.st.writeBytes += int64(ch.write)
	x.mu.Unlock()
	x.charge(p, ch)
	return found
}

func (x *Index) lookupLocked(key string, ch *charges) bool {
	if e, ok := x.mem.get(key); ok {
		x.st.memHits++
		return !e.del
	}
	// Newest data first: level 0 holds the freshest tables (appended at the
	// end), deeper levels hold older merges.
	for li := 0; li < len(x.levels); li++ {
		tables := x.levels[li]
		for ti := len(tables) - 1; ti >= 0; ti-- {
			t := tables[ti]
			ch.cpu += x.cfg.BloomCheckCost
			x.st.bloomChecks++
			if !t.filter.ContainsString(key) {
				x.st.bloomNegatives++
				x.noteAbsentProbe(t)
				continue
			}
			b, ok := t.blockOf(key)
			if !ok {
				// Bloom said maybe, but the key sorts outside every block:
				// a false positive caught by the sparse index alone.
				x.st.bloomFalsePos++
				x.noteAbsentProbe(t)
				continue
			}
			bk := blockKey{table: t.id, block: b}
			if x.cache.get(bk) {
				x.st.cacheHits++
			} else {
				x.st.cacheMisses++
				ch.read += t.blockBytes[b]
				x.cache.add(bk, t.blockBytes[b])
			}
			ch.cpu += x.cfg.SearchCost
			if e, ok := t.get(key, b); ok {
				return !e.del
			}
			x.st.bloomFalsePos++
			x.noteAbsentProbe(t)
		}
	}
	return false
}

// noteAbsentProbe records a probe against a table that did not hold the key,
// feeding the observed-vs-estimated false-positive comparison.
func (x *Index) noteAbsentProbe(t *sstable) {
	x.st.absentProbes++
	x.st.estFPSum += t.filter.EstimatedFP()
}

// CompactOnce merges the shallowest level over its fanout into the next
// level, charging the read of every input table and the write of the merged
// output. It returns false when no level needs compaction. The rados layer
// runs this from a per-OSD background daemon so merges overlap foreground
// lookups instead of stalling inserts.
func (x *Index) CompactOnce(p *sim.Proc) bool {
	x.mu.Lock()
	var ch charges
	done := x.compactLocked(&ch)
	x.st.readBytes += int64(ch.read)
	x.st.writeBytes += int64(ch.write)
	x.mu.Unlock()
	x.charge(p, ch)
	return done
}

func (x *Index) compactLocked(ch *charges) bool {
	for li := 0; li < len(x.levels); li++ {
		if len(x.levels[li]) <= x.cfg.LevelFanout {
			continue
		}
		inputs := append([]*sstable(nil), x.levels[li]...)
		// Tombstones are dropped only when the output becomes the oldest
		// data: no table at the destination level or deeper can still hold
		// an older live version the tombstone must shadow.
		dropTombstones := true
		for lj := li + 1; lj < len(x.levels); lj++ {
			if len(x.levels[lj]) > 0 {
				dropTombstones = false
				break
			}
		}
		out := mergeSSTables(x.nextTableID(), inputs, x.cfg, dropTombstones)
		for _, t := range inputs {
			ch.read += t.bytes
			x.cache.dropTable(t.id)
		}
		x.levels[li] = nil
		if out != nil {
			ch.write += out.bytes
			x.levels = ensureLevel(x.levels, li+1)
			x.levels[li+1] = append(x.levels[li+1], out)
			x.st.compactionBytes += int64(out.bytes)
		}
		x.st.compactions++
		return true
	}
	return false
}

// CompactionDue reports whether any level exceeds its fanout.
func (x *Index) CompactionDue() bool {
	x.mu.Lock()
	defer x.mu.Unlock()
	for _, lvl := range x.levels {
		if len(lvl) > x.cfg.LevelFanout {
			return true
		}
	}
	return false
}

// Crash models the OSD process dying: RAM (memtable, block cache, the seq
// counter) is lost; the WAL, the SSTables and durableSeq survive on disk.
func (x *Index) Crash() {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.crashLocked()
}

func (x *Index) crashLocked() {
	x.mem.clear()
	x.cache.clear()
	x.seq = x.durableSeq
	for _, r := range x.wal {
		if r.seq > x.seq {
			x.seq = r.seq
		}
	}
}

// Recover replays the WAL into a fresh memtable after a Crash, charging the
// sequential log read. Records already covered by a flushed table
// (seq ≤ durableSeq) are skipped, so a crash between an SSTable install and
// the WAL truncation cannot double-apply entries.
func (x *Index) Recover(p *sim.Proc) {
	x.mu.Lock()
	var ch charges
	ch.read = x.walBytes
	replayed := 0
	for _, r := range x.wal {
		if r.seq <= x.durableSeq {
			continue
		}
		x.mem.put(r.key, entry{seq: r.seq, size: r.size, del: r.del})
		if r.seq > x.seq {
			x.seq = r.seq
		}
		replayed++
	}
	x.st.recoveries++
	x.st.replayedRecs += int64(replayed)
	x.st.readBytes += int64(ch.read)
	x.mu.Unlock()
	x.charge(p, ch)
}

// Reset wipes the index completely (the OSD's store was replaced).
func (x *Index) Reset() {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.mem.clear()
	x.cache.clear()
	x.wal = nil
	x.walBytes = 0
	x.levels = x.levels[:0]
	x.seq = 0
	x.durableSeq = 0
}

// Keys returns the live (non-tombstoned) fingerprints, sorted — a full
// merge, used by consistency tests and tooling, never on the data path.
func (x *Index) Keys() []string {
	x.mu.Lock()
	defer x.mu.Unlock()
	merged := make(map[string]entry)
	// Oldest first so newer entries overwrite.
	for li := len(x.levels) - 1; li >= 0; li-- {
		for _, t := range x.levels[li] {
			for i, k := range t.keys {
				if cur, ok := merged[k]; !ok || t.ents[i].seq > cur.seq {
					merged[k] = t.ents[i]
				}
			}
		}
	}
	for k, e := range x.mem.entries {
		if cur, ok := merged[k]; !ok || e.seq > cur.seq {
			merged[k] = e
		}
	}
	out := make([]string, 0, len(merged))
	for k, e := range merged {
		if !e.del {
			out = append(out, k)
		}
	}
	sortStrings(out)
	return out
}
