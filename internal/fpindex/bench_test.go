package fpindex

import (
	"fmt"
	"testing"
)

// BenchmarkFingerprintLookup measures the three lookup regimes the fpindex
// experiment's latency model rests on: a present key served through a warm
// block cache, an absent key rejected by bloom filters alone, and a present
// key whose block is never cached (every probe walks the full read path).
func BenchmarkFingerprintLookup(b *testing.B) {
	const n = 100_000
	build := func(cacheBytes int) *Index {
		cfg := DefaultConfig()
		cfg.CacheBytes = cacheBytes
		x := New(cfg, IO{})
		for i := 0; i < n; i++ {
			x.Insert(nil, key(i), 4096)
		}
		x.Flush(nil)
		for x.CompactOnce(nil) {
		}
		return x
	}

	b.Run("hit", func(b *testing.B) {
		x := build(64 << 20) // cache holds the whole table set
		for i := 0; i < n; i++ {
			x.Lookup(nil, key(i)) // warm every block
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !x.Lookup(nil, key(i%n)) {
				b.Fatal("hit lookup missed")
			}
		}
	})

	b.Run("bloom-filtered-miss", func(b *testing.B) {
		x := build(64 << 20)
		miss := make([]string, 4096)
		for i := range miss {
			miss[i] = fmt.Sprintf("absent.%d", i)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if x.Lookup(nil, miss[i%len(miss)]) {
				b.Fatal("absent key found")
			}
		}
	})

	b.Run("cold-miss", func(b *testing.B) {
		x := build(0) // cache disabled: every positive probe reads its block
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !x.Lookup(nil, key(i%n)) {
				b.Fatal("cold lookup missed")
			}
		}
	})
}
