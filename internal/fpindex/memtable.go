package fpindex

import "sort"

// memtable is the in-RAM write buffer: the newest version of every recently
// written fingerprint, byte-accounted against the flush threshold. It is
// volatile — a crash loses it, which is exactly what the WAL replays.
type memtable struct {
	entries    map[string]entry
	bytes      int
	entryBytes int
}

func newMemtable(entryBytes int) *memtable {
	return &memtable{entries: make(map[string]entry), entryBytes: entryBytes}
}

func (m *memtable) put(key string, e entry) {
	if _, ok := m.entries[key]; !ok {
		m.bytes += len(key) + m.entryBytes
	}
	m.entries[key] = e
}

func (m *memtable) get(key string) (entry, bool) {
	e, ok := m.entries[key]
	return e, ok
}

func (m *memtable) len() int { return len(m.entries) }

func (m *memtable) clear() {
	m.entries = make(map[string]entry)
	m.bytes = 0
}

// kv is one sorted memtable record handed to the SSTable builder.
type kv struct {
	key string
	ent entry
}

// sorted returns the memtable's records in key order (deterministic flush).
func (m *memtable) sorted() []kv {
	out := make([]kv, 0, len(m.entries))
	for k, e := range m.entries {
		out = append(out, kv{key: k, ent: e})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}

func sortStrings(s []string) { sort.Strings(s) }
