package fpindex

import "container/list"

// blockKey identifies one cached SSTable data block.
type blockKey struct {
	table uint64
	block int
}

type cacheItem struct {
	key   blockKey
	bytes int
}

// blockCache is a byte-capped LRU over SSTable data blocks. A capacity of 0
// disables it (every bloom-positive probe pays a disk read).
type blockCache struct {
	cap   int
	bytes int
	ll    *list.List // front = most recently used
	items map[blockKey]*list.Element
}

func newBlockCache(capBytes int) *blockCache {
	return &blockCache{cap: capBytes, ll: list.New(), items: make(map[blockKey]*list.Element)}
}

// get reports a hit and refreshes the block's recency.
func (c *blockCache) get(k blockKey) bool {
	el, ok := c.items[k]
	if !ok {
		return false
	}
	c.ll.MoveToFront(el)
	return true
}

// add inserts a block, evicting least-recently-used blocks over capacity.
func (c *blockCache) add(k blockKey, bytes int) {
	if c.cap <= 0 {
		return
	}
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		return
	}
	c.items[k] = c.ll.PushFront(cacheItem{key: k, bytes: bytes})
	c.bytes += bytes
	for c.bytes > c.cap && c.ll.Len() > 0 {
		c.evict(c.ll.Back())
	}
}

func (c *blockCache) evict(el *list.Element) {
	it := el.Value.(cacheItem)
	c.ll.Remove(el)
	delete(c.items, it.key)
	c.bytes -= it.bytes
}

// dropTable evicts every block of a compacted-away table.
func (c *blockCache) dropTable(table uint64) {
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		if el.Value.(cacheItem).key.table == table {
			c.evict(el)
		}
		el = next
	}
}

// clear empties the cache (crash: cache contents are RAM).
func (c *blockCache) clear() {
	c.ll.Init()
	c.items = make(map[blockKey]*list.Element)
	c.bytes = 0
}
