package fpindex

import (
	"fmt"
	"sync"
	"testing"
)

// expectKeys asserts the index's live key set is exactly want: every key
// present (nothing lost) and nothing else (nothing duplicated/resurrected).
func expectKeys(t *testing.T, x *Index, want map[string]bool) {
	t.Helper()
	got := x.Keys()
	seen := make(map[string]bool, len(got))
	for _, k := range got {
		if seen[k] {
			t.Fatalf("duplicate key %q in merged index view", k)
		}
		seen[k] = true
		if !want[k] {
			t.Fatalf("unexpected key %q after recovery", k)
		}
	}
	for k := range want {
		if !seen[k] {
			t.Fatalf("key %q lost after recovery", k)
		}
		if !x.Lookup(nil, k) {
			t.Fatalf("Lookup(%q) = false after recovery", k)
		}
	}
}

func TestCrashBeforeAnyFlush(t *testing.T) {
	cfg := smallConfig()
	cfg.MemtableBytes = 1 << 20 // never auto-flush
	x := New(cfg, IO{})
	want := make(map[string]bool)
	for i := 0; i < 100; i++ {
		x.Insert(nil, key(i), 0)
		want[key(i)] = true
	}
	x.Crash()
	if x.Lookup(nil, key(0)) {
		t.Fatal("memtable survived crash")
	}
	x.Recover(nil)
	expectKeys(t, x, want)
	if st := x.Stats(); st.ReplayedRecs != 100 {
		t.Fatalf("replayed %d records, want 100", st.ReplayedRecs)
	}
}

// TestCrashMidFlushBeforeInstall kills the index after the new SSTable is
// written but before it is referenced: the table is garbage, the WAL is
// intact, and replay must restore every entry exactly once.
func TestCrashMidFlushBeforeInstall(t *testing.T) {
	x := New(smallConfig(), IO{})
	x.hookBeforeInstall = func() bool { return true } // crash every flush
	want := make(map[string]bool)
	for i := 0; i < 60; i++ { // enough to trip the 1 KiB memtable threshold
		x.Insert(nil, key(i), 0)
		want[key(i)] = true
	}
	x.hookBeforeInstall = nil
	x.Recover(nil)
	expectKeys(t, x, want)
	if st := x.Stats(); st.Tables != 0 {
		t.Fatalf("unreferenced mid-flush table became visible: %d tables", st.Tables)
	}
}

// TestCrashMidFlushAfterInstall kills the index between the SSTable install
// (manifest update) and the WAL truncation — the classic double-apply
// window. Replay must skip records the table already covers: no lost and no
// duplicated fingerprints.
func TestCrashMidFlushAfterInstall(t *testing.T) {
	x := New(smallConfig(), IO{})
	crashed := false
	x.hookAfterInstall = func() bool {
		crashed = true
		return true
	}
	want := make(map[string]bool)
	for i := 0; i < 200 && !crashed; i++ {
		x.Insert(nil, key(i), 0)
		want[key(i)] = true
	}
	if !crashed {
		t.Fatal("flush never triggered")
	}
	x.hookAfterInstall = nil
	preReplay := x.Stats()
	if preReplay.Tables != 1 {
		t.Fatalf("flushed table not installed: %d tables", preReplay.Tables)
	}
	if preReplay.WALBytes == 0 {
		t.Fatal("WAL already truncated; crash window not modeled")
	}
	x.Recover(nil)
	if st := x.Stats(); st.ReplayedRecs != 0 {
		t.Fatalf("replay double-applied %d records already covered by the flushed table", st.ReplayedRecs)
	}
	expectKeys(t, x, want)
}

// TestCrashRecoverUnderMixedWrites interleaves inserts, deletes, crashes at
// both flush windows and recoveries, checking the surviving key set against
// a shadow map the whole way.
func TestCrashRecoverUnderMixedWrites(t *testing.T) {
	x := New(smallConfig(), IO{})
	want := make(map[string]bool)
	crashArm := 0
	x.hookAfterInstall = func() bool { return crashArm == 1 }
	x.hookBeforeInstall = func() bool { return crashArm == 2 }
	for round := 0; round < 6; round++ {
		crashArm = round % 3
		for i := 0; i < 80; i++ {
			k := key(round*37 + i)
			if i%5 == 0 {
				x.Delete(nil, k)
				delete(want, k)
			} else {
				x.Insert(nil, k, 0)
				want[k] = true
			}
		}
		x.Crash()
		x.Recover(nil)
		expectKeys(t, x, want)
	}
}

// TestCompactionLookupRace drives lookups and compactions from real
// concurrent goroutines (uncharged, so nothing parks) to let the race
// detector check the index's internal locking.
func TestCompactionLookupRace(t *testing.T) {
	cfg := smallConfig()
	cfg.LevelFanout = 2
	x := New(cfg, IO{})
	fill(x, 2000)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	compactorDone := make(chan struct{})
	go func() {
		defer close(compactorDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			x.CompactOnce(nil)
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 3000; i++ {
				if i%3 == 0 {
					x.Insert(nil, fmt.Sprintf("new.%d.%d", g, i), 0)
				}
				if !x.Lookup(nil, key(i%2000)) {
					t.Errorf("key %d lost during concurrent compaction", i%2000)
					return
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				_ = x.Stats()
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-compactorDone
}
