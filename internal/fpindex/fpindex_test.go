package fpindex

import (
	"fmt"
	"testing"
	"time"

	"dedupstore/internal/sim"
)

// smallConfig flushes and compacts quickly so tests exercise every layer
// with a few hundred keys.
func smallConfig() Config {
	return Config{
		Enabled:       true,
		MemtableBytes: 1 << 10,
		BlockBytes:    256,
		CacheBytes:    4 << 10,
		BloomFP:       0.01,
		LevelFanout:   3,
	}
}

func key(i int) string { return fmt.Sprintf("chk.%08x", i*2654435761) }

func fill(x *Index, n int) {
	for i := 0; i < n; i++ {
		x.Insert(nil, key(i), 4096)
	}
}

func compactAll(x *Index) {
	for x.CompactOnce(nil) {
	}
}

func TestLookupAcrossLayers(t *testing.T) {
	x := New(smallConfig(), IO{})
	const n = 500
	fill(x, n)
	compactAll(x)
	for i := 0; i < n; i++ {
		if !x.Lookup(nil, key(i)) {
			t.Fatalf("key %d lost (memtable/sstable/compaction)", i)
		}
	}
	for i := n; i < 2*n; i++ {
		if x.Lookup(nil, key(i)) {
			t.Fatalf("absent key %d reported present", i)
		}
	}
	st := x.Stats()
	if st.Flushes == 0 || st.Compactions == 0 {
		t.Fatalf("expected flushes and compactions, got %+v", st)
	}
	if st.Tables == 0 || st.Levels < 2 {
		t.Fatalf("expected a leveled table set, got tables=%d levels=%d", st.Tables, st.Levels)
	}
}

func TestDeleteTombstones(t *testing.T) {
	x := New(smallConfig(), IO{})
	fill(x, 200)
	for i := 0; i < 200; i += 2 {
		x.Delete(nil, key(i))
	}
	x.Flush(nil)
	compactAll(x)
	for i := 0; i < 200; i++ {
		got := x.Lookup(nil, key(i))
		want := i%2 == 1
		if got != want {
			t.Fatalf("key %d: lookup=%v want %v", i, got, want)
		}
	}
	if live := len(x.Keys()); live != 100 {
		t.Fatalf("live keys = %d, want 100", live)
	}
}

func TestTombstonesDroppedAtDeepestLevel(t *testing.T) {
	x := New(smallConfig(), IO{})
	fill(x, 100)
	for i := 0; i < 100; i++ {
		x.Delete(nil, key(i))
	}
	x.Flush(nil)
	// Cascade until one deepest run remains; tombstones must be gone.
	for x.CompactOnce(nil) {
	}
	st := x.Stats()
	if st.Entries != 0 {
		t.Fatalf("tombstones survived full compaction: %d entries", st.Entries)
	}
}

func TestObservedFPTracksEstimate(t *testing.T) {
	cfg := smallConfig()
	cfg.BloomFP = 0.05
	x := New(cfg, IO{})
	fill(x, 2000)
	x.Flush(nil)
	compactAll(x)
	for i := 0; i < 20000; i++ {
		x.Lookup(nil, fmt.Sprintf("absent.%d", i))
	}
	st := x.Stats()
	if st.AbsentProbes == 0 {
		t.Fatal("no absent probes recorded")
	}
	obs, est := st.ObservedFP(), st.EstimatedFP()
	if est <= 0 {
		t.Fatalf("estimated FP = %v", est)
	}
	if obs > 2*est+0.01 {
		t.Fatalf("observed FP %v far above estimate %v", obs, est)
	}
}

func TestCacheHitsOnRepeatedLookups(t *testing.T) {
	x := New(smallConfig(), IO{})
	fill(x, 400)
	x.Flush(nil)
	compactAll(x)
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < 400; i++ {
			x.Lookup(nil, key(i))
		}
	}
	st := x.Stats()
	if st.CacheHits == 0 {
		t.Fatalf("no cache hits over repeated scans: %+v", st)
	}
	if st.CacheBytes > int64(x.cfg.CacheBytes) {
		t.Fatalf("cache over capacity: %d > %d", st.CacheBytes, x.cfg.CacheBytes)
	}
}

func TestZeroCacheStillCorrect(t *testing.T) {
	cfg := smallConfig()
	cfg.CacheBytes = 0
	x := New(cfg, IO{})
	fill(x, 300)
	x.Flush(nil)
	for i := 0; i < 300; i++ {
		if !x.Lookup(nil, key(i)) {
			t.Fatalf("key %d lost with cache disabled", i)
		}
	}
	st := x.Stats()
	if st.CacheHits != 0 {
		t.Fatalf("cache disabled but %d hits", st.CacheHits)
	}
}

func TestChargedIO(t *testing.T) {
	eng := sim.New(1)
	var reads, writes int
	io := IO{
		Read:  func(p *sim.Proc, n int) { reads += n; p.Sleep(time.Duration(n) * time.Nanosecond) },
		Write: func(p *sim.Proc, n int) { writes += n; p.Sleep(time.Duration(n) * time.Nanosecond) },
		CPU:   func(p *sim.Proc, d time.Duration) { p.Sleep(d) },
	}
	x := New(smallConfig(), io)
	eng.Go("load", func(p *sim.Proc) {
		for i := 0; i < 300; i++ {
			x.Insert(p, key(i), 4096)
		}
		x.Flush(p)
		for x.CompactOnce(p) {
		}
		for i := 0; i < 300; i++ {
			if !x.Lookup(p, key(i)) {
				t.Errorf("key %d lost under charged IO", i)
			}
		}
	})
	eng.Run()
	if writes == 0 || reads == 0 {
		t.Fatalf("expected charged IO, got reads=%d writes=%d", reads, writes)
	}
	st := x.Stats()
	if st.WriteBytes != int64(writes) || st.ReadBytes != int64(reads) {
		t.Fatalf("stats IO (%d/%d) disagree with adapter (%d/%d)",
			st.ReadBytes, st.WriteBytes, reads, writes)
	}
	if eng.Now() == 0 {
		t.Fatal("charged ops advanced no virtual time")
	}
}

func TestResetWipesEverything(t *testing.T) {
	x := New(smallConfig(), IO{})
	fill(x, 200)
	x.Flush(nil)
	x.Reset()
	st := x.Stats()
	if st.Entries != 0 || st.Tables != 0 || st.WALBytes != 0 || st.MemtableBytes != 0 {
		t.Fatalf("reset left state: %+v", st)
	}
	if x.Lookup(nil, key(0)) {
		t.Fatal("reset index still finds keys")
	}
}

func TestDeterministicStructure(t *testing.T) {
	build := func() Stats {
		x := New(smallConfig(), IO{})
		fill(x, 777)
		for i := 0; i < 777; i += 3 {
			x.Delete(nil, key(i))
		}
		x.Flush(nil)
		compactAll(x)
		return x.Stats()
	}
	a, b := build(), build()
	if a.Tables != b.Tables || a.TableBytes != b.TableBytes || a.Entries != b.Entries ||
		a.Flushes != b.Flushes || a.Compactions != b.Compactions {
		t.Fatalf("structure not deterministic:\n%+v\n%+v", a, b)
	}
}
