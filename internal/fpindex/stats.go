package fpindex

// stats is the index's internal counter block (guarded by Index.mu).
type stats struct {
	lookups    int64
	inserts    int64
	deletes    int64
	memHits    int64
	flushes    int64
	flushBytes int64

	bloomChecks    int64
	bloomNegatives int64
	bloomFalsePos  int64
	absentProbes   int64
	estFPSum       float64

	cacheHits   int64
	cacheMisses int64

	compactions     int64
	compactionBytes int64

	readBytes  int64
	writeBytes int64

	recoveries   int64
	replayedRecs int64
}

// Stats is a point-in-time snapshot of one index (or, via Add, a sum over
// several). Counters are cumulative since creation.
type Stats struct {
	Lookups    int64
	Inserts    int64
	Deletes    int64
	MemHits    int64
	Flushes    int64
	FlushBytes int64

	BloomChecks    int64
	BloomNegatives int64
	BloomFalsePos  int64
	AbsentProbes   int64
	EstFPSum       float64

	CacheHits   int64
	CacheMisses int64
	CacheBytes  int64

	Compactions     int64
	CompactionBytes int64

	ReadBytes  int64
	WriteBytes int64

	Recoveries   int64
	ReplayedRecs int64

	MemtableBytes int64
	WALBytes      int64
	TableBytes    int64
	Tables        int
	Levels        int
	LevelTables   []int
	Entries       int64 // table + memtable records (duplicates across runs count once each)
}

// ObservedFP is the measured bloom false-positive rate: of the probes
// against tables that did not hold the key, how many the filter passed.
func (s Stats) ObservedFP() float64 {
	if s.AbsentProbes == 0 {
		return 0
	}
	return float64(s.BloomFalsePos) / float64(s.AbsentProbes)
}

// EstimatedFP is the probe-weighted average of the tables' design
// false-positive estimates over the same absent probes.
func (s Stats) EstimatedFP() float64 {
	if s.AbsentProbes == 0 {
		return 0
	}
	return s.EstFPSum / float64(s.AbsentProbes)
}

// CacheHitRatio is block-cache hits over all block accesses.
func (s Stats) CacheHitRatio() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// Add accumulates o into s (cluster-wide aggregation across OSD indexes).
func (s *Stats) Add(o Stats) {
	s.Lookups += o.Lookups
	s.Inserts += o.Inserts
	s.Deletes += o.Deletes
	s.MemHits += o.MemHits
	s.Flushes += o.Flushes
	s.FlushBytes += o.FlushBytes
	s.BloomChecks += o.BloomChecks
	s.BloomNegatives += o.BloomNegatives
	s.BloomFalsePos += o.BloomFalsePos
	s.AbsentProbes += o.AbsentProbes
	s.EstFPSum += o.EstFPSum
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
	s.CacheBytes += o.CacheBytes
	s.Compactions += o.Compactions
	s.CompactionBytes += o.CompactionBytes
	s.ReadBytes += o.ReadBytes
	s.WriteBytes += o.WriteBytes
	s.Recoveries += o.Recoveries
	s.ReplayedRecs += o.ReplayedRecs
	s.MemtableBytes += o.MemtableBytes
	s.WALBytes += o.WALBytes
	s.TableBytes += o.TableBytes
	s.Tables += o.Tables
	if o.Levels > s.Levels {
		s.Levels = o.Levels
	}
	for i, n := range o.LevelTables {
		for len(s.LevelTables) <= i {
			s.LevelTables = append(s.LevelTables, 0)
		}
		s.LevelTables[i] += n
	}
	s.Entries += o.Entries
}

// Stats snapshots the index's counters and current structure.
func (x *Index) Stats() Stats {
	x.mu.Lock()
	defer x.mu.Unlock()
	s := Stats{
		Lookups:         x.st.lookups,
		Inserts:         x.st.inserts,
		Deletes:         x.st.deletes,
		MemHits:         x.st.memHits,
		Flushes:         x.st.flushes,
		FlushBytes:      x.st.flushBytes,
		BloomChecks:     x.st.bloomChecks,
		BloomNegatives:  x.st.bloomNegatives,
		BloomFalsePos:   x.st.bloomFalsePos,
		AbsentProbes:    x.st.absentProbes,
		EstFPSum:        x.st.estFPSum,
		CacheHits:       x.st.cacheHits,
		CacheMisses:     x.st.cacheMisses,
		CacheBytes:      int64(x.cache.bytes),
		Compactions:     x.st.compactions,
		CompactionBytes: x.st.compactionBytes,
		ReadBytes:       x.st.readBytes,
		WriteBytes:      x.st.writeBytes,
		Recoveries:      x.st.recoveries,
		ReplayedRecs:    x.st.replayedRecs,
		MemtableBytes:   int64(x.mem.bytes),
		WALBytes:        int64(x.walBytes),
		Entries:         int64(x.mem.len()),
	}
	for _, lvl := range x.levels {
		s.LevelTables = append(s.LevelTables, len(lvl))
		s.Tables += len(lvl)
		for _, t := range lvl {
			s.TableBytes += int64(t.bytes)
			s.Entries += int64(len(t.keys))
		}
	}
	s.Levels = len(s.LevelTables)
	return s
}
