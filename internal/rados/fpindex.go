package rados

import (
	"fmt"
	"time"

	"dedupstore/internal/fpindex"
	"dedupstore/internal/qos"
	"dedupstore/internal/sim"
	"dedupstore/internal/store"
)

// Fingerprint-index binding: when enabled for a pool (the dedup chunk
// pool), every OSD fronts that pool's object-existence metadata with a
// log-structured fingerprint index (internal/fpindex). Lookups on the pool
// charge bloom probes, block-cache misses and WAL/SSTable I/O through the
// OSD's QoS scheduler under the dedup class; mutations keep the index in
// lockstep with the store at every site that creates or removes a chunk
// object (replication, heals, on-demand pulls, recovery, scrub repair,
// stray cleanup, restart peering). The store map stays authoritative — the
// index adds the cost model and is cross-checked against the store on every
// probe (fpindex_lookup_mismatch_total counts disagreements; it must stay
// zero).

// EnableFPIndex turns the fingerprint index on for a replicated pool. Each
// OSD gets its own index (bootstrapped from objects it already holds) and a
// background compaction daemon. Erasure pools are not supported: the chunk
// pool the paper's dedup tier indexes is replicated.
func (c *Cluster) EnableFPIndex(pool *Pool, cfg fpindex.Config) error {
	if pool == nil {
		return fmt.Errorf("rados: fpindex: nil pool")
	}
	if pool.Red.Kind != Replicated {
		return fmt.Errorf("rados: fpindex: pool %q is erasure-coded; only replicated pools are supported", pool.Name)
	}
	if c.fpPool != 0 {
		return fmt.Errorf("rados: fpindex already enabled for pool id %d", c.fpPool)
	}
	cfg.Enabled = true
	c.fpPool = pool.ID
	c.fpCfg = cfg
	c.fpLookupLat = c.reg.Histogram("fpindex_lookup_latency")
	c.fpMismatch = c.reg.Counter("fpindex_lookup_mismatch_total")
	for _, o := range c.allOSDs() {
		c.attachFPIndex(o)
	}
	return nil
}

// attachFPIndex creates an OSD's index, bootstraps it from the objects the
// OSD already holds in the indexed pool, and starts its compaction daemon.
func (c *Cluster) attachFPIndex(o *osd) {
	o.fpidx = fpindex.New(c.fpCfg, fpindex.IO{
		Read:  func(p *sim.Proc, n int) { o.diskRead(p, qos.Dedup, c.cost, n) },
		Write: func(p *sim.Proc, n int) { o.diskWrite(p, qos.Dedup, c.cost, n) },
		CPU:   func(p *sim.Proc, d time.Duration) { o.host.cpu.Use(p, d) },
	})
	for _, key := range o.store.Keys() {
		if key.Pool == c.fpPool {
			o.fpidx.Insert(nil, key.OID, 0)
		}
	}
	interval := o.fpidx.Config().CompactEvery
	c.eng.GoDaemon(fmt.Sprintf("fpindex.compact.osd%d", o.id), func(p *sim.Proc) {
		for {
			// A crashed OSD compacts nothing; otherwise drain all due merges
			// before going back to sleep.
			if o.alive && o.fpidx.CompactOnce(p) {
				continue
			}
			p.Sleep(interval)
		}
	})
}

// FPIndexEnabled reports whether a fingerprint index fronts any pool.
func (c *Cluster) FPIndexEnabled() bool { return c.fpPool != 0 }

// fpProbe charges one fingerprint-index lookup at the OSD serving a
// metadata op on the indexed pool, under a trace span, and cross-checks the
// index's verdict against the store.
func (g *Gateway) fpProbe(p *sim.Proc, pool *Pool, oid string, o *osd) {
	c := g.c
	if c.fpPool == 0 || pool.ID != c.fpPool || o.fpidx == nil {
		return
	}
	start := p.Now()
	sp := c.sink.Start(p, "fpindex.lookup")
	if sp != nil {
		sp.SetOp(pool.Name, c.PGOf(pool, oid).String(), 0).SetClass(qos.Dedup.String())
	}
	found := o.fpidx.Lookup(p, oid)
	sp.Finish(p)
	c.fpLookupLat.Add((p.Now() - start).Duration())
	if found != o.store.Exists(store.Key{Pool: pool.ID, OID: oid}) {
		c.fpMismatch.Inc()
	}
}

// fpNote keeps an OSD's index in lockstep with a store transition of key:
// created (absent→present) inserts, removed (present→absent) writes a
// tombstone. A nil proc applies the update uncharged (administrative paths
// with no process context, e.g. restart-time peering).
func (c *Cluster) fpNote(p *sim.Proc, o *osd, key store.Key, before, after bool) {
	if c.fpPool == 0 || key.Pool != c.fpPool || o.fpidx == nil {
		return
	}
	switch {
	case !before && after:
		o.fpidx.Insert(p, key.OID, 0)
	case before && !after:
		o.fpidx.Delete(p, key.OID)
	}
}

// FPLookup probes the fingerprint index at the acting primary for oid —
// the experiment harness's direct latency probe, shaped like a client
// metadata round trip (request hop, op overhead, charged index lookup,
// response hop).
func (c *Cluster) FPLookup(p *sim.Proc, oid string) (bool, error) {
	pool := c.poolsByID[c.fpPool]
	if pool == nil {
		return false, fmt.Errorf("rados: fpindex not enabled")
	}
	acting := c.acting(pool, c.PGOf(pool, oid))
	if len(acting) == 0 {
		return false, ErrNoOSD
	}
	o := acting[0]
	if !o.alive || o.fpidx == nil {
		return false, ErrOSDDown
	}
	start := p.Now()
	sp := c.sink.Start(p, "fpindex.lookup")
	if sp != nil {
		sp.SetOp(pool.Name, c.PGOf(pool, oid).String(), 0).SetClass(qos.Dedup.String())
	}
	p.Sleep(c.cost.NetLatency)
	o.host.cpu.Use(p, c.cost.OpOverhead)
	found := o.fpidx.Lookup(p, oid)
	p.Sleep(c.cost.NetLatency)
	sp.Finish(p)
	c.fpLookupLat.Add((p.Now() - start).Duration())
	return found, nil
}

// OSDIndexInfo is one OSD's fingerprint-index snapshot (dedupctl index).
type OSDIndexInfo struct {
	OSD   int
	Stats fpindex.Stats
}

// FPIndexPerOSD snapshots every OSD's index, ascending by OSD id.
func (c *Cluster) FPIndexPerOSD() []OSDIndexInfo {
	if c.fpPool == 0 {
		return nil
	}
	var out []OSDIndexInfo
	for _, o := range c.allOSDs() {
		if o.fpidx != nil {
			out = append(out, OSDIndexInfo{OSD: o.id, Stats: o.fpidx.Stats()})
		}
	}
	return out
}

// FPIndexStats aggregates fingerprint-index counters across all OSDs.
func (c *Cluster) FPIndexStats() fpindex.Stats {
	var total fpindex.Stats
	for _, info := range c.FPIndexPerOSD() {
		total.Add(info.Stats)
	}
	return total
}

// FPIndexVerify checks every live OSD's index against its store: the index's
// merged live key set must equal exactly the OSD's keys in the indexed pool.
// Returns nil when they agree (or the index is disabled) — the invariant that
// the flat map and the LSM index answer identically.
func (c *Cluster) FPIndexVerify() error {
	if c.fpPool == 0 {
		return nil
	}
	for _, o := range c.allOSDs() {
		if !o.alive || o.fpidx == nil {
			continue
		}
		want := make(map[string]bool)
		for _, key := range o.store.Keys() {
			if key.Pool == c.fpPool {
				want[key.OID] = true
			}
		}
		got := o.fpidx.Keys()
		if len(got) != len(want) {
			return fmt.Errorf("rados: fpindex: osd %d index holds %d keys, store holds %d", o.id, len(got), len(want))
		}
		for _, k := range got {
			if !want[k] {
				return fmt.Errorf("rados: fpindex: osd %d index key %q not in store", o.id, k)
			}
		}
	}
	if n := c.reg.Counter("fpindex_lookup_mismatch_total").Value(); n != 0 {
		return fmt.Errorf("rados: fpindex: %d lookup probes disagreed with the store", n)
	}
	return nil
}

// publishFPIndexMetrics exports fpindex_* into the registry (DumpMetrics).
func (c *Cluster) publishFPIndexMetrics() {
	if c.fpPool == 0 {
		return
	}
	s := c.FPIndexStats()
	setCtr := func(name string, v int64) {
		c.reg.Counter(name).Add(v - c.reg.Counter(name).Value())
	}
	setCtr("fpindex_lookups_total", s.Lookups)
	setCtr("fpindex_inserts_total", s.Inserts)
	setCtr("fpindex_deletes_total", s.Deletes)
	setCtr("fpindex_bloom_checks_total", s.BloomChecks)
	setCtr("fpindex_bloom_negatives_total", s.BloomNegatives)
	setCtr("fpindex_bloom_fp_total", s.BloomFalsePos)
	setCtr("fpindex_cache_hits_total", s.CacheHits)
	setCtr("fpindex_cache_misses_total", s.CacheMisses)
	setCtr("fpindex_flushes_total", s.Flushes)
	setCtr("fpindex_compactions_total", s.Compactions)
	setCtr("fpindex_compaction_bytes_total", s.CompactionBytes)
	setCtr("fpindex_read_bytes_total", s.ReadBytes)
	setCtr("fpindex_write_bytes_total", s.WriteBytes)
	setCtr("fpindex_wal_replayed_records_total", s.ReplayedRecs)
	c.reg.Gauge("fpindex_memtable_bytes").Set(s.MemtableBytes)
	c.reg.Gauge("fpindex_wal_bytes").Set(s.WALBytes)
	c.reg.Gauge("fpindex_table_bytes").Set(s.TableBytes)
	c.reg.Gauge("fpindex_tables").Set(int64(s.Tables))
	c.reg.Gauge("fpindex_levels").Set(int64(s.Levels))
	c.reg.Gauge("fpindex_entries").Set(s.Entries)
	c.reg.Gauge("fpindex_cache_bytes").Set(s.CacheBytes)
	c.reg.Gauge("fpindex_bloom_fp_observed_ppm").Set(int64(s.ObservedFP() * 1e6))
	c.reg.Gauge("fpindex_bloom_fp_estimated_ppm").Set(int64(s.EstimatedFP() * 1e6))
	c.reg.Gauge("fpindex_cache_hit_ppm").Set(int64(s.CacheHitRatio() * 1e6))
}
