package rados

import (
	"fmt"
	"testing"

	"dedupstore/internal/fpindex"
	"dedupstore/internal/sim"
	"dedupstore/internal/simcost"
)

// smallFPConfig flushes and compacts aggressively so a few hundred objects
// exercise WAL, tables, and merges.
func smallFPConfig() fpindex.Config {
	return fpindex.Config{
		Enabled:       true,
		MemtableBytes: 2 << 10,
		BlockBytes:    512,
		CacheBytes:    8 << 10,
		BloomFP:       0.01,
		LevelFanout:   3,
	}
}

// runFP drives fn to completion, tolerating the per-OSD compaction daemons
// that stay parked between runs.
func runFP(t *testing.T, eng *sim.Engine, daemons int, fn func(p *sim.Proc)) {
	t.Helper()
	var procErr error
	eng.Go("test", func(p *sim.Proc) {
		defer func() {
			if r := recover(); r != nil {
				procErr = fmt.Errorf("panic: %v", r)
			}
		}()
		fn(p)
	})
	if left := eng.Run(); left != daemons {
		t.Fatalf("%d processes left blocked (want %d compaction daemons)", left, daemons)
	}
	if procErr != nil {
		t.Fatal(procErr)
	}
}

// checkLockstep asserts every OSD's index agrees exactly with its store's
// key set for the indexed pool.
func checkLockstep(t *testing.T, c *Cluster, pool *Pool) {
	t.Helper()
	for _, id := range c.OSDs() {
		o := c.osds[id]
		if o.fpidx == nil {
			t.Fatalf("osd %d has no index", id)
		}
		want := make(map[string]bool)
		for _, key := range o.store.Keys() {
			if key.Pool == pool.ID {
				want[key.OID] = true
			}
		}
		got := o.fpidx.Keys()
		if len(got) != len(want) {
			t.Fatalf("osd %d: index holds %d keys, store holds %d", id, len(got), len(want))
		}
		for _, k := range got {
			if !want[k] {
				t.Fatalf("osd %d: index key %q not in store", id, k)
			}
		}
	}
	if n := c.Metrics().Counter("fpindex_lookup_mismatch_total").Value(); n != 0 {
		t.Fatalf("index/store disagreed on %d probes", n)
	}
}

func TestFPIndexLockstepWithStore(t *testing.T) {
	eng := sim.New(7)
	c := NewTestbed(eng, simcost.Default(), 2, 2)
	pool, err := c.CreatePool(PoolConfig{Name: "chunks", PGNum: 32, Redundancy: ReplicatedN(2)})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.EnableFPIndex(pool, smallFPConfig()); err != nil {
		t.Fatal(err)
	}
	gw := c.NewGateway("client0")
	oid := func(i int) string { return fmt.Sprintf("chk.%08x", i*2654435761) }
	runFP(t, eng, 4, func(p *sim.Proc) {
		for i := 0; i < 300; i++ {
			if err := gw.WriteFull(p, pool, oid(i), make([]byte, 512)); err != nil {
				t.Errorf("write %d: %v", i, err)
				return
			}
		}
		for i := 0; i < 300; i += 3 {
			if err := gw.Delete(p, pool, oid(i)); err != nil {
				t.Errorf("delete %d: %v", i, err)
				return
			}
		}
		for i := 0; i < 300; i++ {
			ok, err := gw.Exists(p, pool, oid(i))
			if err != nil {
				t.Errorf("exists %d: %v", i, err)
				return
			}
			if want := i%3 != 0; ok != want {
				t.Errorf("exists(%d) = %v, want %v", i, ok, want)
				return
			}
		}
		// Direct probes at the acting primary (the experiment's fast path).
		for i := 1; i < 300; i += 3 {
			found, err := c.FPLookup(p, oid(i))
			if err != nil || !found {
				t.Errorf("FPLookup(%d) = %v, %v", i, found, err)
				return
			}
		}
		if found, _ := c.FPLookup(p, "chk.absent"); found {
			t.Error("FPLookup found an absent fingerprint")
		}
	})
	checkLockstep(t, c, pool)
	st := c.FPIndexStats()
	if st.Flushes == 0 {
		t.Fatalf("no memtable flushes across 300 objects: %+v", st)
	}
	if st.Lookups == 0 || st.BloomChecks == 0 {
		t.Fatalf("index never consulted: %+v", st)
	}
	if st.ReadBytes == 0 || st.WriteBytes == 0 {
		t.Fatalf("no modeled index I/O charged: reads=%d writes=%d", st.ReadBytes, st.WriteBytes)
	}
}

func TestFPIndexCrashRestartPeering(t *testing.T) {
	eng := sim.New(11)
	c := NewTestbed(eng, simcost.Default(), 2, 2)
	pool, err := c.CreatePool(PoolConfig{Name: "chunks", PGNum: 32, Redundancy: ReplicatedN(2)})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.EnableFPIndex(pool, smallFPConfig()); err != nil {
		t.Fatal(err)
	}
	gw := c.NewGateway("client0")
	oid := func(i int) string { return fmt.Sprintf("chk.%08x", i*40503) }
	victim := c.OSDs()[0]
	runFP(t, eng, 4, func(p *sim.Proc) {
		for i := 0; i < 120; i++ {
			if err := gw.WriteFull(p, pool, oid(i), make([]byte, 256)); err != nil {
				t.Errorf("write %d: %v", i, err)
				return
			}
		}
		if err := c.CrashOSD(victim); err != nil {
			t.Errorf("crash: %v", err)
			return
		}
		// Writes and deletes the victim misses while down.
		for i := 120; i < 180; i++ {
			_ = gw.WriteFull(p, pool, oid(i), make([]byte, 256))
		}
		for i := 0; i < 60; i += 2 {
			_ = gw.Delete(p, pool, oid(i))
		}
		if err := c.RestartOSD(victim); err != nil {
			t.Errorf("restart: %v", err)
			return
		}
	})
	// After restart peering (store wipe of missed keys + index recovery +
	// tombstones) every OSD's index must still match its store exactly.
	checkLockstep(t, c, pool)
}

func TestFPIndexReplaceOSDResets(t *testing.T) {
	eng := sim.New(13)
	c := NewTestbed(eng, simcost.Default(), 2, 2)
	pool, err := c.CreatePool(PoolConfig{Name: "chunks", PGNum: 32, Redundancy: ReplicatedN(2)})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.EnableFPIndex(pool, smallFPConfig()); err != nil {
		t.Fatal(err)
	}
	gw := c.NewGateway("client0")
	runFP(t, eng, 4, func(p *sim.Proc) {
		for i := 0; i < 100; i++ {
			_ = gw.WriteFull(p, pool, fmt.Sprintf("chk.%d", i), make([]byte, 256))
		}
	})
	victim := c.OSDs()[1]
	if _, err := c.ReplaceOSD(victim); err != nil {
		t.Fatal(err)
	}
	runFP(t, eng, 4, func(p *sim.Proc) {
		c.Recover(p)
	})
	checkLockstep(t, c, pool)
}

func TestFPIndexRejectsErasurePools(t *testing.T) {
	eng := sim.New(1)
	c := NewTestbed(eng, simcost.Default(), 2, 2)
	ecp, err := c.CreatePool(PoolConfig{Name: "ecp", PGNum: 32, Redundancy: ErasureKM(2, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.EnableFPIndex(ecp, smallFPConfig()); err == nil {
		t.Fatal("EnableFPIndex accepted an erasure pool")
	}
}

func TestFPIndexMetricsPublished(t *testing.T) {
	eng := sim.New(3)
	c := NewTestbed(eng, simcost.Default(), 2, 2)
	pool, _ := c.CreatePool(PoolConfig{Name: "chunks", PGNum: 32, Redundancy: ReplicatedN(2)})
	if err := c.EnableFPIndex(pool, smallFPConfig()); err != nil {
		t.Fatal(err)
	}
	gw := c.NewGateway("client0")
	runFP(t, eng, 4, func(p *sim.Proc) {
		for i := 0; i < 150; i++ {
			_ = gw.WriteFull(p, pool, fmt.Sprintf("chk.%d", i), make([]byte, 256))
		}
		for i := 0; i < 150; i++ {
			_, _ = gw.Exists(p, pool, fmt.Sprintf("chk.%d", i))
		}
	})
	dump := c.DumpMetrics()
	for _, want := range []string{
		"fpindex_lookups_total", "fpindex_inserts_total", "fpindex_entries",
		"fpindex_bloom_checks_total", "fpindex_cache_hit_ppm",
		"fpindex_bloom_fp_observed_ppm", "fpindex_compactions_total",
	} {
		if !containsMetric(dump, want) {
			t.Fatalf("metric %q missing from dump", want)
		}
	}
	// Trace spans: index probes record under their own span name.
	found := false
	for _, sp := range c.Trace().Recent(4096) {
		if sp.Name == "fpindex.lookup" {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no fpindex.lookup trace spans recorded")
	}
}

func containsMetric(dump, name string) bool {
	for i := 0; i+len(name) <= len(dump); i++ {
		if dump[i:i+len(name)] == name {
			return true
		}
	}
	return false
}
