package rados

import (
	"encoding/binary"
	"errors"
	"fmt"

	"dedupstore/internal/ec"
	"dedupstore/internal/sim"
	"dedupstore/internal/store"
)

// EC object layout: object data is striped across K data shards in
// StripeUnit rows (row r, unit u of the row lives in shard u at shard
// offset r*StripeUnit), so any read larger than one stripe unit touches
// several OSDs — the "widely spread chunks" effect the paper observes for
// EC random reads (§6.4.1). Parity shards are Reed–Solomon over the data
// shards. Every shard object stores its shard index and the logical object
// length in xattrs; pool-level metadata (xattr/omap) is mirrored on every
// shard so metadata reads are local to the primary.
const (
	xattrECIdx = "ec.idx"
	xattrECLen = "ec.len"
	// StripeUnit is the striping granularity (Ceph's default 4K).
	StripeUnit = 4096
)

// ErrECDataOp is returned when a Mutate transaction on an EC pool contains
// a data operation other than a single leading WriteFull.
var ErrECDataOp = errors.New("rados: EC pools support only WriteFull data ops in Mutate")

func (c *Cluster) codecFor(p *Pool) *ec.Codec {
	if p.codec == nil {
		cd, err := ec.New(p.Red.K, p.Red.M)
		if err != nil {
			panic(fmt.Sprintf("rados: pool %s codec: %v", p.Name, err))
		}
		p.codec = cd
	}
	return p.codec
}

func putU64(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func getU64(b []byte) uint64 {
	if len(b) < 8 {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// stripeSplit distributes data into k shards of equal size (padded).
func stripeSplit(data []byte, k int) [][]byte {
	rows := (len(data) + StripeUnit*k - 1) / (StripeUnit * k)
	if rows == 0 {
		rows = 1
	}
	shardSize := rows * StripeUnit
	shards := make([][]byte, k)
	for i := range shards {
		shards[i] = make([]byte, shardSize)
	}
	for pos := 0; pos < len(data); pos += StripeUnit {
		unit := pos / StripeUnit
		shard := unit % k
		soff := unit / k * StripeUnit
		copy(shards[shard][soff:], data[pos:min(pos+StripeUnit, len(data))])
	}
	return shards
}

// stripeJoin reassembles logical bytes [off, off+length) from shard
// segments that each cover shard rows [row0, row1).
func stripeJoin(segments [][]byte, k int, row0 int, off, length, totalLen int64) []byte {
	end := off + length
	if end > totalLen {
		end = totalLen
	}
	if off >= end {
		return nil
	}
	out := make([]byte, end-off)
	for pos := off; pos < end; {
		unit := pos / StripeUnit
		shard := int(unit) % k
		row := int(unit) / k
		inUnit := pos % StripeUnit
		n := StripeUnit - inUnit
		if int64(n) > end-pos {
			n = end - pos
		}
		soff := int64(row-row0)*StripeUnit + inUnit
		copy(out[pos-off:], segments[shard][soff:soff+n])
		pos += n
	}
	return out
}

// rowRange returns the stripe-row span covering [off, off+length).
func rowRange(off, length int64, k int) (row0, row1 int) {
	stripe := int64(StripeUnit * k)
	row0 = int(off / stripe)
	row1 = int((off + length + stripe - 1) / stripe)
	return row0, row1
}

// ecHolders returns, for each shard index, the OSD currently expected to
// hold it (nil if down/absent).
func (c *Cluster) ecHolders(p *Pool, oid string) []*osd {
	pg := c.PGOf(p, oid)
	want := c.want(p, pg)
	holders := make([]*osd, p.Red.K+p.Red.M)
	key := store.Key{Pool: p.ID, OID: oid}
	for pos, o := range want {
		if pos >= len(holders) || o == nil {
			continue
		}
		if up, ok := c.cmap.Lookup(o.id); !ok || !up.Up {
			continue
		}
		if !o.alive || !o.store.Exists(key) {
			continue // a crashed holder cannot serve its shard
		}
		idx := int(getU64(mustXattr(o.store, key, xattrECIdx)))
		if idx >= 0 && idx < len(holders) {
			holders[idx] = o
		}
	}
	return holders
}

func mustXattr(st *store.Store, k store.Key, name string) []byte {
	v, err := st.GetXattr(k, name)
	if err != nil {
		return nil
	}
	return v
}

// ecPrimary returns the first up OSD of the PG mapping.
func (g *Gateway) ecPrimary(pool *Pool, oid string) (*osd, error) {
	acting := g.c.acting(pool, g.c.PGOf(pool, oid))
	if len(acting) == 0 {
		return nil, ErrNoOSD
	}
	return acting[0], nil
}

// ecWritePrimary is ecPrimary for mutation paths: a dead primary costs the
// request timeout and fails with the retryable ErrOSDDown, and the write is
// refused (retryably) while fewer than k acting members are alive, since it
// could not reach durability.
func (g *Gateway) ecWritePrimary(p *sim.Proc, pool *Pool, oid string) (*osd, error) {
	acting := g.c.acting(pool, g.c.PGOf(pool, oid))
	if len(acting) == 0 {
		return nil, ErrNoOSD
	}
	if !acting[0].alive {
		g.timeoutWait(p)
		return nil, ErrOSDDown
	}
	alive := 0
	for _, o := range acting {
		if o.alive {
			alive++
		}
	}
	if alive < pool.Red.K {
		g.timeoutWait(p)
		return nil, ErrOSDDown
	}
	return acting[0], nil
}

// ecCoord selects the OSD coordinating an EC read: the acting primary when
// alive, otherwise (after the request timeout) the first surviving acting
// member — the degraded fan-in point.
func (g *Gateway) ecCoord(p *sim.Proc, pool *Pool, oid string) (*osd, error) {
	acting := g.c.acting(pool, g.c.PGOf(pool, oid))
	if len(acting) == 0 {
		return nil, ErrNoOSD
	}
	if acting[0].alive {
		return acting[0], nil
	}
	g.timeoutWait(p)
	for _, o := range acting[1:] {
		if o.alive {
			return o, nil
		}
	}
	return nil, ErrOSDDown
}

// firstAliveActing returns the first live acting member (nil if none) —
// used for cost charging where failure is already handled elsewhere.
func (g *Gateway) firstAliveActing(pool *Pool, oid string) *osd {
	for _, o := range g.c.acting(pool, g.c.PGOf(pool, oid)) {
		if o.alive {
			return o
		}
	}
	return nil
}

// --- Write paths -------------------------------------------------------------

func (g *Gateway) ecWriteFull(p *sim.Proc, pool *Pool, oid string, data []byte) error {
	pg := g.c.PGOf(pool, oid)
	l := g.c.pgLock(pg)
	l.Acquire(p)
	defer l.Release(p)
	primary, err := g.ecWritePrimary(p, pool, oid)
	if err != nil {
		g.noteOp(0)
		return err
	}
	g.c.netSend(p, g.cls, g.nic, len(data))
	g.c.netSend(p, g.cls, primary.host.nicSched, len(data))
	err = g.ecApplyFull(p, pool, oid, data, nil)
	g.noteOp(len(data))
	return err
}

// ecApplyFull encodes data and writes all shards. PG lock must be held and
// the caller must have validated the primary via ecWritePrimary. extraMeta,
// if non-nil, is a metadata-only txn mirrored onto every shard.
func (g *Gateway) ecApplyFull(p *sim.Proc, pool *Pool, oid string, data []byte, extraMeta *store.Txn) error {
	cost := g.c.cost
	primary, err := g.ecPrimary(pool, oid)
	if err != nil {
		return err
	}
	codec := g.c.codecFor(pool)
	primary.host.cpu.Use(p, cost.OpOverhead+cost.Checksum(len(data))+cost.ECEncode(len(data)))
	shards, err := codec.Encode(stripeSplit(data, pool.Red.K))
	if err != nil {
		return err
	}
	pg := g.c.PGOf(pool, oid)
	want := g.c.want(pool, pg)
	if len(want) > len(shards) {
		want = want[:len(shards)]
	}
	key := store.Key{Pool: pool.ID, OID: oid}
	g.runFanout(p, fanout{
		name: "ec-shard",
		pool: pool, pg: pg, key: key,
		targets: want,
		ok: func(_ int, target *osd) bool {
			up, ok := g.c.cmap.Lookup(target.id)
			return ok && up.Up && target.alive // else degraded; recovery rebuilds the shard
		},
		degraded: true,
		do: func(q *sim.Proc, pos int, target *osd) {
			txn := store.NewTxn().
				WriteFull(shards[pos]).
				SetXattr(xattrECIdx, putU64(uint64(pos))).
				SetXattr(xattrECLen, putU64(uint64(len(data))))
			if extraMeta != nil {
				txn.Ops = append(txn.Ops, extraMeta.Ops...)
			}
			if target != primary {
				g.c.netSend(q, g.cls, target.host.nicSched, len(shards[pos]))
				target.host.cpu.Use(q, cost.OpOverhead)
			}
			if err := target.store.Apply(key, txn); err != nil {
				panic(fmt.Sprintf("rados: ec shard apply: %v", err))
			}
			target.diskWrite(q, g.cls, cost, txn.Bytes())
		},
	})
	return nil
}

// ecWrite performs a partial write with a row-aligned read-modify-write of
// only the stripes the write touches (Ceph EC-overwrite style): the rows
// covering [off, off+len) are gathered, patched, re-encoded, and all k+m
// shard segments rewritten — the "parity calculation ... and
// read-modify-write according to write size" penalty of §6.4.1.
func (g *Gateway) ecWrite(p *sim.Proc, pool *Pool, oid string, off int64, data []byte) error {
	pg := g.c.PGOf(pool, oid)
	l := g.c.pgLock(pg)
	l.Acquire(p)
	defer l.Release(p)
	cost := g.c.cost
	primary, err := g.ecWritePrimary(p, pool, oid)
	if err != nil {
		g.noteOp(0)
		return err
	}
	g.c.netSend(p, g.cls, g.nic, len(data))
	g.c.netSend(p, g.cls, primary.host.nicSched, len(data))

	k := pool.Red.K
	codec := g.c.codecFor(pool)
	oldLen := g.ecLen(pool, oid)
	end := off + int64(len(data))
	newLen := oldLen
	if end > newLen {
		newLen = end
	}
	row0, row1 := rowRange(off, int64(len(data)), k)
	stripe := int64(StripeUnit * k)

	// Gather the existing bytes of the affected rows (zeros beyond EOF).
	rowBytes := make([]byte, (int64(row1)-int64(row0))*stripe)
	if oldLen > int64(row0)*stripe {
		readLen := min64(oldLen, int64(row1)*stripe) - int64(row0)*stripe
		cur, err := g.ecGather(p, pool, oid, int64(row0)*stripe, readLen)
		if err != nil && err != ErrNotFound {
			g.noteOp(0)
			return err
		}
		copy(rowBytes, cur)
	}
	copy(rowBytes[off-int64(row0)*stripe:], data)

	// Re-encode just these rows (parity is bytewise, so row segments encode
	// independently of the rest of the object).
	primary.host.cpu.Use(p, cost.OpOverhead+cost.Checksum(len(data))+cost.ECEncode(len(rowBytes)))
	shards, err := codec.Encode(stripeSplit(rowBytes, k))
	if err != nil {
		g.noteOp(0)
		return err
	}
	segLen := (row1 - row0) * StripeUnit
	for i := range shards {
		if len(shards[i]) > segLen {
			shards[i] = shards[i][:segLen]
		}
	}

	want := g.c.want(pool, pg)
	key := store.Key{Pool: pool.ID, OID: oid}
	eligible := func(pos int, target *osd) bool {
		if up, ok := g.c.cmap.Lookup(target.id); !ok || !up.Up || !target.alive {
			return false
		}
		if oldLen > 0 {
			// A partial row write can only be applied onto the matching
			// existing shard. A target whose shard is absent (wiped after a
			// restart) or carries another index (remap permutation) would be
			// corrupted by it; skip and let recovery rebuild.
			if !target.store.Exists(key) ||
				int(getU64(mustXattr(target.store, key, xattrECIdx))) != pos {
				return false
			}
		}
		return true
	}
	nEligible := 0
	for pos, target := range want {
		if pos < len(shards) && eligible(pos, target) {
			nEligible++
		}
	}
	if nEligible < k {
		// Too few intact shard targets to keep the new rows reconstructable;
		// refuse (retryably) rather than lose data. Recovery or the failure
		// detector will restore enough targets.
		g.timeoutWait(p)
		g.noteOp(0)
		return ErrOSDDown
	}
	if len(want) > len(shards) {
		want = want[:len(shards)]
	}
	g.runFanout(p, fanout{
		name: "ec-rmw",
		pool: pool, pg: pg, key: key,
		targets:  want,
		ok:       eligible,
		degraded: true,
		do: func(q *sim.Proc, pos int, target *osd) {
			// EC overwrites commit in two sequential phases per shard
			// (prepare: ship + log the new rows; commit: apply them) so all
			// k+m shards stay mutually consistent — Ceph's EC-overwrite
			// protocol, and the §6.4.1 random-write penalty: two round
			// trips and two durable writes per shard.
			txn := store.NewTxn().
				Write(int64(row0)*StripeUnit, shards[pos]).
				SetXattr(xattrECIdx, putU64(uint64(pos))).
				SetXattr(xattrECLen, putU64(uint64(newLen)))
			if target != primary {
				g.c.netSend(q, g.cls, target.host.nicSched, len(shards[pos]))
				target.host.cpu.Use(q, cost.OpOverhead)
			}
			target.diskWrite(q, g.cls, cost, txn.Bytes()) // phase 1: WAL
			q.Sleep(cost.NetLatency)                      // commit message
			target.host.cpu.Use(q, cost.OpOverhead)
			if err := target.store.Apply(key, txn); err != nil {
				panic(fmt.Sprintf("rados: ec rmw apply: %v", err))
			}
			target.diskWrite(q, g.cls, cost, txn.Bytes()) // phase 2: apply
		},
	})
	g.noteOp(len(data))
	return nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func (g *Gateway) ecDelete(p *sim.Proc, pool *Pool, oid string) error {
	pg := g.c.PGOf(pool, oid)
	l := g.c.pgLock(pg)
	l.Acquire(p)
	defer l.Release(p)
	if _, err := g.ecWritePrimary(p, pool, oid); err != nil {
		g.noteOp(0)
		return err
	}
	cost := g.c.cost
	key := store.Key{Pool: pool.ID, OID: oid}
	// Deletion must also reach strays and be remembered against dead
	// holders, or the object would resurrect when they rejoin — runFanout's
	// missed-write reconciliation covers both.
	g.runFanout(p, fanout{
		name: "ec-del",
		pool: pool, pg: pg, key: key,
		targets: g.c.want(pool, pg),
		ok: func(_ int, o *osd) bool {
			up, ok := g.c.cmap.Lookup(o.id)
			return ok && up.Up && o.alive
		},
		do: func(q *sim.Proc, _ int, o *osd) {
			q.Sleep(cost.NetLatency)
			o.host.cpu.Use(q, cost.OpOverhead)
			_ = o.store.Apply(key, store.NewTxn().Delete())
			o.diskWrite(q, g.cls, cost, 0)
		},
	})
	g.noteOp(0)
	return nil
}

// --- Read paths --------------------------------------------------------------

// ecLen returns the logical object length (0 if absent).
func (g *Gateway) ecLen(pool *Pool, oid string) int64 {
	key := store.Key{Pool: pool.ID, OID: oid}
	for _, o := range g.c.ecHolders(pool, oid) {
		if o != nil {
			return int64(getU64(mustXattr(o.store, key, xattrECLen)))
		}
	}
	return 0
}

func (g *Gateway) ecExists(pool *Pool, oid string) bool {
	for _, o := range g.c.ecHolders(pool, oid) {
		if o != nil {
			return true
		}
	}
	return false
}

// ecGather reads logical bytes [off, off+length) by fetching the covering
// shard segments to the primary (reconstructing from parity when data
// shards are down) and reassembling.
func (g *Gateway) ecGather(p *sim.Proc, pool *Pool, oid string, off, length int64) ([]byte, error) {
	cost := g.c.cost
	codec := g.c.codecFor(pool)
	k := pool.Red.K
	totalLen := g.ecLen(pool, oid)
	if totalLen == 0 {
		if g.ecExists(pool, oid) {
			return nil, nil
		}
		// No live holder. If dead OSDs still hold current shards the object
		// is recoverable — report retryable unavailability, not absence.
		key := store.Key{Pool: pool.ID, OID: oid}
		if g.c.recoverableOnDead(key, g.c.want(pool, g.c.PGOf(pool, oid))) {
			return nil, ErrOSDDown
		}
		return nil, ErrNotFound
	}
	if length < 0 || off+length > totalLen {
		length = totalLen - off
	}
	if off >= totalLen || length <= 0 {
		return nil, nil
	}
	holders := g.c.ecHolders(pool, oid)
	primary, err := g.ecCoord(p, pool, oid)
	if err != nil {
		return nil, err
	}
	row0, row1 := rowRange(off, length, k)
	segLen := (row1 - row0) * StripeUnit

	dataMissing := false
	for i := 0; i < k; i++ {
		if holders[i] == nil {
			dataMissing = true
		}
	}
	key := store.Key{Pool: pool.ID, OID: oid}
	segments := make([][]byte, len(holders))
	fetch := func(idx int) *sim.Signal {
		o := holders[idx]
		return p.Go("ec-read", func(q *sim.Proc) {
			seg, err := o.store.Read(key, int64(row0)*StripeUnit, int64(segLen))
			if err != nil {
				return
			}
			if len(seg) < segLen { // pad short shard tail
				seg = append(seg, make([]byte, segLen-len(seg))...)
			}
			o.diskRead(q, g.cls, cost, segLen)
			if o != primary {
				g.c.netSend(q, g.cls, primary.host.nicSched, segLen)
			}
			segments[idx] = seg
		})
	}

	var sigs []*sim.Signal
	if !dataMissing {
		// Fast path: fetch exactly the data shards.
		for i := 0; i < k; i++ {
			sigs = append(sigs, fetch(i))
		}
		sim.WaitAll(p, sigs...)
	} else {
		// Degraded read: fetch any k shards and reconstruct the rest.
		got := 0
		for i := 0; i < len(holders) && got < k; i++ {
			if holders[i] != nil {
				sigs = append(sigs, fetch(i))
				got++
			}
		}
		if got < k {
			// Shards may come back when dead holders restart or recovery
			// rebuilds them — retryable while that is possible.
			key := store.Key{Pool: pool.ID, OID: oid}
			if g.c.recoverableOnDead(key, g.c.want(pool, g.c.PGOf(pool, oid))) {
				return nil, ErrOSDDown
			}
			return nil, ec.ErrTooFew
		}
		sim.WaitAll(p, sigs...)
		primary.host.cpu.Use(p, cost.ECEncode(segLen*k))
		if err := codec.Reconstruct(segments); err != nil {
			return nil, err
		}
		g.c.reg.Counter("rados_degraded_reads_total").Inc()
	}
	return stripeJoin(segments[:k], k, row0, off, length, totalLen), nil
}

func (g *Gateway) ecRead(p *sim.Proc, pool *Pool, oid string, off, length int64) ([]byte, error) {
	pg := g.c.PGOf(pool, oid)
	_ = pg
	p.Sleep(g.c.cost.NetLatency) // request
	data, err := g.ecGather(p, pool, oid, off, length)
	if err != nil {
		g.noteOp(0)
		return nil, err
	}
	if primary := g.firstAliveActing(pool, oid); primary != nil {
		primary.host.cpu.Use(p, g.c.cost.OpOverhead)
		g.c.netSend(p, g.cls, primary.host.nicSched, len(data))
	}
	g.c.netSend(p, g.cls, g.nic, len(data))
	g.noteOp(len(data))
	return data, nil
}

// --- Mutate on EC pools ------------------------------------------------------

type ecView struct {
	g    *Gateway
	p    *sim.Proc
	pool *Pool
	oid  string
}

func (v ecView) Exists() bool { return v.g.ecExists(v.pool, v.oid) }
func (v ecView) Size() int64  { return v.g.ecLen(v.pool, v.oid) }
func (v ecView) Read(off, length int64) ([]byte, error) {
	return v.g.ecGather(v.p, v.pool, v.oid, off, length)
}
func (v ecView) meta() (*osd, store.Key, error) {
	for _, o := range v.g.c.ecHolders(v.pool, v.oid) {
		if o != nil {
			return o, store.Key{Pool: v.pool.ID, OID: v.oid}, nil
		}
	}
	return nil, store.Key{}, ErrNotFound
}
func (v ecView) GetXattr(name string) ([]byte, error) {
	o, key, err := v.meta()
	if err != nil {
		return nil, err
	}
	return o.store.GetXattr(key, name)
}
func (v ecView) OmapGet(key string) ([]byte, error) {
	o, k, err := v.meta()
	if err != nil {
		return nil, err
	}
	return o.store.OmapGet(k, key)
}
func (v ecView) OmapList(max int) ([]string, error) {
	o, k, err := v.meta()
	if err != nil {
		return nil, err
	}
	return o.store.OmapList(k, max)
}

// ecMutate applies a read-modify transaction on an EC object: at most one
// WriteFull data op (triggering a full re-encode) plus metadata ops mirrored
// to every live shard. payload is the bulk data shipped with the request.
func (g *Gateway) ecMutate(p *sim.Proc, pool *Pool, oid string, payload int, fn MutateFn) error {
	pg := g.c.PGOf(pool, oid)
	l := g.c.pgLock(pg)
	l.Acquire(p)
	defer l.Release(p)
	primary, err := g.ecWritePrimary(p, pool, oid)
	if err != nil {
		g.noteOp(0)
		return err
	}
	if payload > 0 {
		g.c.netSend(p, g.cls, g.nic, payload)
		g.c.netSend(p, g.cls, primary.host.nicSched, payload)
	} else {
		p.Sleep(g.c.cost.NetLatency)
	}
	primary.host.cpu.Use(p, g.c.cost.OpOverhead)
	txn, err := fn(ecView{g: g, p: p, pool: pool, oid: oid})
	if err != nil {
		g.noteOp(0)
		return err
	}
	if txn == nil || txn.Empty() {
		p.Sleep(g.c.cost.NetLatency)
		g.noteOp(0)
		return nil
	}
	var fullData []byte
	hasFull, isDelete := false, false
	meta := store.NewTxn()
	for _, op := range txn.Ops {
		switch op.Kind {
		case store.OpWriteFull:
			if hasFull {
				return ErrECDataOp
			}
			hasFull = true
			fullData = op.Data
		case store.OpWrite, store.OpTruncate, store.OpZero:
			return ErrECDataOp
		case store.OpDelete:
			isDelete = true
		case store.OpCreate:
			// no-op for EC; creation happens via WriteFull
		default:
			meta.Ops = append(meta.Ops, op)
		}
	}
	if isDelete {
		key := store.Key{Pool: pool.ID, OID: oid}
		applied := make(map[int]bool)
		for _, o := range g.c.want(pool, pg) {
			if up, ok := g.c.cmap.Lookup(o.id); ok && up.Up && o.alive {
				applied[o.id] = true
				_ = o.store.Apply(key, store.NewTxn().Delete())
				o.diskWrite(p, g.cls, g.c.cost, 0)
			}
		}
		g.c.reconcileMissed(key, applied)
		p.Sleep(g.c.cost.NetLatency)
		g.noteOp(0)
		return nil
	}
	if hasFull {
		err = g.ecApplyFull(p, pool, oid, fullData, meta)
		g.noteOp(len(fullData))
		return err
	}
	// Metadata-only: mirror to all live shard holders.
	key := store.Key{Pool: pool.ID, OID: oid}
	holders := g.c.ecHolders(pool, oid)
	live := 0
	for _, o := range holders {
		if o != nil {
			live++
		}
	}
	if live == 0 {
		g.noteOp(0)
		return ErrNotFound
	}
	g.runFanout(p, fanout{
		name: "ec-meta",
		pool: pool, pg: pg, key: key,
		targets: holders,
		ok:      func(_ int, o *osd) bool { return o != nil },
		do: func(q *sim.Proc, _ int, o *osd) {
			q.Sleep(g.c.cost.NetLatency)
			o.host.cpu.Use(q, g.c.cost.OpOverhead)
			if err := o.store.Apply(key, meta); err != nil {
				panic(fmt.Sprintf("rados: ec meta apply: %v", err))
			}
			o.diskWrite(q, g.cls, g.c.cost, meta.Bytes())
		},
	})
	g.noteOp(meta.Bytes())
	return nil
}
