package rados

import (
	"time"

	"dedupstore/internal/sim"
)

// Heartbeat-based failure detection. CrashOSD kills a process but leaves
// the CRUSH map untouched; the Monitor is what turns "the process stopped
// answering pings" into map changes, on the same timeline a Ceph mon would:
//
//	crash ──(grace)──> marked down (acting sets shrink; reads degrade,
//	                   writes to that primary start succeeding via the
//	                   new acting primary)
//	down ──(outAfter)──> marked out (PGs remap; auto-recovery re-replicates
//	                     and rebuilds shards onto the survivors)
//	restart ──(next tick)──> marked up/in again; auto-recovery backfills
//
// The monitor runs as a sim daemon so it does not keep the simulation
// alive by itself; recovery it triggers runs as foreground work so Run
// does not return with a rebuild half-done.

// MonitorConfig tunes the failure detector.
type MonitorConfig struct {
	// Interval is the heartbeat/tick period.
	Interval time.Duration
	// Grace is how long an OSD may miss heartbeats before being marked
	// down (Ceph's osd_heartbeat_grace). Detection latency is between
	// Grace and Grace+Interval.
	Grace time.Duration
	// OutAfter is how long an OSD stays down before being marked out,
	// remapping its PGs (Ceph's mon_osd_down_out_interval).
	OutAfter time.Duration
	// AutoRecover runs Recover automatically after mark-out and rejoin.
	// Recovery parallelism is governed by the cluster's QoS recovery class
	// (its depth cap), not by monitor configuration.
	AutoRecover bool
}

// DefaultMonitorConfig returns the detector defaults (scaled-down analogs
// of Ceph's 20s grace / 600s down-out interval).
func DefaultMonitorConfig() MonitorConfig {
	return MonitorConfig{
		Interval:    500 * time.Millisecond,
		Grace:       2 * time.Second,
		OutAfter:    5 * time.Second,
		AutoRecover: true,
	}
}

// MonEvent is one entry of the monitor's availability timeline.
type MonEvent struct {
	At   sim.Time
	Kind string // "down", "out", "rejoin", "recovered"
	OSD  int    // -1 for cluster-wide events ("recovered")
}

// Monitor watches OSD liveness and drives the down/out/rejoin state
// machine. Create with Cluster.StartMonitor.
type Monitor struct {
	c   *Cluster
	cfg MonitorConfig

	stopped  bool
	lastAck  map[int]sim.Time
	wasAlive map[int]bool
	downAt   map[int]sim.Time
	// markedDown/markedOut record map changes this monitor made, so a
	// rejoin only undoes its own marks and never resurrects an OSD an
	// operator failed administratively.
	markedDown map[int]bool
	markedOut  map[int]bool

	recovering     bool
	pendingRecover bool
	events         []MonEvent
}

// StartMonitor starts the heartbeat failure detector as a daemon process.
func (c *Cluster) StartMonitor(cfg MonitorConfig) *Monitor {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultMonitorConfig().Interval
	}
	if cfg.Grace <= 0 {
		cfg.Grace = DefaultMonitorConfig().Grace
	}
	if cfg.OutAfter <= 0 {
		cfg.OutAfter = DefaultMonitorConfig().OutAfter
	}
	m := &Monitor{
		c:          c,
		cfg:        cfg,
		lastAck:    make(map[int]sim.Time),
		wasAlive:   make(map[int]bool),
		downAt:     make(map[int]sim.Time),
		markedDown: make(map[int]bool),
		markedOut:  make(map[int]bool),
	}
	now := c.eng.Now()
	for _, id := range c.cmap.OSDs() {
		m.lastAck[id] = now
		m.wasAlive[id] = c.OSDAlive(id)
	}
	c.eng.GoDaemon("mon", func(p *sim.Proc) {
		for !m.stopped {
			m.tick(p)
			p.Sleep(m.cfg.Interval)
		}
	})
	return m
}

// Config returns the monitor's effective configuration.
func (m *Monitor) Config() MonitorConfig { return m.cfg }

// Stop ends the monitor loop after the current tick.
func (m *Monitor) Stop() { m.stopped = true }

// Events returns the availability timeline so far.
func (m *Monitor) Events() []MonEvent {
	out := make([]MonEvent, len(m.events))
	copy(out, m.events)
	return out
}

func (m *Monitor) note(p *sim.Proc, kind string, osd int) {
	m.events = append(m.events, MonEvent{At: p.Now(), Kind: kind, OSD: osd})
}

func (m *Monitor) tick(p *sim.Proc) {
	c := m.c
	now := p.Now()
	for _, id := range c.cmap.OSDs() {
		o := c.osds[id]
		if o == nil {
			continue
		}
		if o.alive {
			m.lastAck[id] = now
			if !m.wasAlive[id] {
				m.wasAlive[id] = true
				m.rejoin(p, id)
			}
			continue
		}
		m.wasAlive[id] = false
		info, ok := c.cmap.Lookup(id)
		if !ok {
			continue
		}
		if info.Up && (now-m.lastAck[id]).Duration() >= m.cfg.Grace {
			c.cmap.SetUp(id, false)
			m.markedDown[id] = true
			m.downAt[id] = now
			info.Up = false
			m.note(p, "down", id)
			c.reg.Counter("mon_marked_down_total").Inc()
		}
		if !info.Up && info.In && m.markedDown[id] && (now-m.downAt[id]).Duration() >= m.cfg.OutAfter {
			c.cmap.SetIn(id, false)
			m.markedOut[id] = true
			m.note(p, "out", id)
			c.reg.Counter("mon_marked_out_total").Inc()
			m.triggerRecover()
		}
	}
}

// rejoin handles an OSD whose process came back: the monitor undoes its own
// down/out marks and backfills, because a restarted OSD wiped any objects
// whose updates it missed and may have lost shards to remapping.
func (m *Monitor) rejoin(p *sim.Proc, id int) {
	c := m.c
	if m.markedDown[id] {
		c.cmap.SetUp(id, true)
		delete(m.markedDown, id)
	}
	if m.markedOut[id] {
		c.cmap.SetIn(id, true)
		delete(m.markedOut, id)
	}
	delete(m.downAt, id)
	m.note(p, "rejoin", id)
	c.reg.Counter("mon_rejoined_total").Inc()
	m.triggerRecover()
}

// triggerRecover starts (or queues) a cluster Recover run. Runs are
// serialized; a trigger arriving mid-run schedules exactly one follow-up so
// the final map state is always reconciled.
func (m *Monitor) triggerRecover() {
	if !m.cfg.AutoRecover {
		return
	}
	if m.recovering {
		m.pendingRecover = true
		return
	}
	m.recovering = true
	m.c.eng.GoForeground("mon.recover", func(p *sim.Proc) {
		for {
			m.c.Recover(p)
			m.events = append(m.events, MonEvent{At: p.Now(), Kind: "recovered", OSD: -1})
			if !m.pendingRecover {
				break
			}
			m.pendingRecover = false
		}
		m.recovering = false
	})
}

// Settled reports whether the cluster has reached a stable state: no
// recovery in flight and every OSD either fully in service (alive, up, in)
// or conclusively failed (dead, down, out).
func (m *Monitor) Settled() bool {
	if m.recovering || m.pendingRecover {
		return false
	}
	for _, id := range m.c.cmap.OSDs() {
		o := m.c.osds[id]
		info, ok := m.c.cmap.Lookup(id)
		if o == nil || !ok {
			continue
		}
		if o.alive {
			if !info.Up || !info.In {
				return false // rejoin pending
			}
		} else if info.Up || info.In {
			return false // detection or mark-out pending
		}
	}
	return true
}

// WaitSettled parks p until Settled holds. Run it from a foreground process
// to keep the simulation alive through detection, mark-out and recovery —
// daemon ticks alone do not prevent Engine.Run from returning.
func (m *Monitor) WaitSettled(p *sim.Proc) {
	for !m.Settled() {
		p.Sleep(m.cfg.Interval)
	}
}
