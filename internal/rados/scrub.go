package rados

import (
	"bytes"
	"fmt"
	"sort"

	"dedupstore/internal/qos"
	"dedupstore/internal/sim"
	"dedupstore/internal/store"
)

// Scrub verifies stored redundancy, the storage feature the paper's
// self-contained-object design inherits for free: because dedup metadata
// and chunk payloads live in ordinary objects, one scrubber validates user
// data, chunk maps, reference tables and EC parity alike.

// ScrubError describes one inconsistency found by a scrub.
type ScrubError struct {
	Key    store.Key
	OSD    int // the OSD whose copy is inconsistent (-1 if structural)
	Detail string
}

func (e ScrubError) String() string {
	return fmt.Sprintf("%s on osd.%d: %s", e.Key, e.OSD, e.Detail)
}

// ScrubStats summarizes one scrub pass.
type ScrubStats struct {
	Objects      int
	BytesScanned int64
	Errors       []ScrubError
	Repaired     int
}

// Clean reports whether the scrub found no inconsistencies.
func (s ScrubStats) Clean() bool { return len(s.Errors) == 0 }

// Scrub deep-scrubs one pool: for replicated pools every replica's payload
// and metadata must match the acting primary's; for EC pools the parity
// must verify and every shard's mirrored metadata must agree. With repair
// set, inconsistent replicas are rewritten from the authoritative copy
// (the primary, like Ceph's pg repair) and missing redundancy is noted for
// Recover. Objects are scrubbed by a worker pool whose width is the scrub
// class's QoS depth cap — scrub paces itself purely through the scheduler —
// with per-object results merged back in oid order so the report stays
// deterministic.
func (c *Cluster) Scrub(p *sim.Proc, pool *Pool, repair bool) ScrubStats {
	oids := c.ListObjects(pool)
	sort.Strings(oids)
	workers := c.qsched.MaxDepth(qos.Scrub)
	if workers < 1 {
		workers = 1
	}
	slots := make([]ScrubStats, len(oids))
	queue := sim.NewQueue[int]()
	for i := range oids {
		queue.PushFrom(c.eng, i)
	}
	var sigs []*sim.Signal
	for w := 0; w < workers; w++ {
		sigs = append(sigs, p.Go("scrub", func(q *sim.Proc) {
			for {
				i, ok := queue.TryPop()
				if !ok {
					return
				}
				slots[i].Objects++
				if pool.Red.Kind == Erasure {
					c.scrubEC(q, pool, oids[i], repair, &slots[i])
				} else {
					c.scrubReplicated(q, pool, oids[i], repair, &slots[i])
				}
			}
		}))
	}
	sim.WaitAll(p, sigs...)
	stats := ScrubStats{}
	for _, s := range slots {
		stats.Objects += s.Objects
		stats.BytesScanned += s.BytesScanned
		stats.Errors = append(stats.Errors, s.Errors...)
		stats.Repaired += s.Repaired
	}
	return stats
}

func (c *Cluster) scrubReplicated(p *sim.Proc, pool *Pool, oid string, repair bool, stats *ScrubStats) {
	pg := c.PGOf(pool, oid)
	acting := c.acting(pool, pg)
	if len(acting) == 0 {
		stats.Errors = append(stats.Errors, ScrubError{Key: store.Key{Pool: pool.ID, OID: oid}, OSD: -1, Detail: "no acting set"})
		return
	}
	key := store.Key{Pool: pool.ID, OID: oid}
	primary := acting[0]
	auth, err := primary.store.Snapshot(key)
	if err != nil {
		stats.Errors = append(stats.Errors, ScrubError{Key: key, OSD: primary.id, Detail: "primary missing object"})
		return
	}
	primary.diskRead(p, qos.Scrub, c.cost, len(auth.Data))
	primary.host.cpu.Use(p, c.cost.Checksum(len(auth.Data)))
	stats.BytesScanned += int64(len(auth.Data))

	for _, rep := range acting[1:] {
		got, err := rep.store.Snapshot(key)
		if err != nil {
			stats.Errors = append(stats.Errors, ScrubError{Key: key, OSD: rep.id, Detail: "replica missing"})
			if repair {
				c.repairCopy(p, key, primary, rep, auth, stats)
			}
			continue
		}
		rep.diskRead(p, qos.Scrub, c.cost, len(got.Data))
		rep.host.cpu.Use(p, c.cost.Checksum(len(got.Data)))
		stats.BytesScanned += int64(len(got.Data))
		if detail := diffObjects(auth, got); detail != "" {
			stats.Errors = append(stats.Errors, ScrubError{Key: key, OSD: rep.id, Detail: detail})
			if repair {
				c.repairCopy(p, key, primary, rep, auth, stats)
			}
		}
	}
}

func (c *Cluster) repairCopy(p *sim.Proc, key store.Key, src, dst *osd, auth *store.Object, stats *ScrubStats) {
	c.netSend(p, qos.Scrub, dst.host.nicSched, auth.PayloadBytes())
	existed := dst.store.Exists(key)
	dst.store.Install(key, auth)
	c.fpNote(p, dst, key, existed, true)
	dst.diskWrite(p, qos.Scrub, c.cost, auth.PayloadBytes())
	stats.Repaired++
}

func (c *Cluster) scrubEC(p *sim.Proc, pool *Pool, oid string, repair bool, stats *ScrubStats) {
	key := store.Key{Pool: pool.ID, OID: oid}
	holders := c.ecHolders(pool, oid)
	codec := c.codecFor(pool)
	k, m := pool.Red.K, pool.Red.M

	shards := make([][]byte, k+m)
	present := 0
	size := 0
	for idx, o := range holders {
		if o == nil {
			continue
		}
		snap, err := o.store.Snapshot(key)
		if err != nil {
			continue
		}
		o.diskRead(p, qos.Scrub, c.cost, len(snap.Data))
		stats.BytesScanned += int64(len(snap.Data))
		shards[idx] = snap.Data
		if len(snap.Data) > size {
			size = len(snap.Data)
		}
		present++
	}
	if present < k {
		stats.Errors = append(stats.Errors, ScrubError{Key: key, OSD: -1, Detail: fmt.Sprintf("only %d/%d shards present", present, k)})
		return
	}
	if present < k+m {
		stats.Errors = append(stats.Errors, ScrubError{Key: key, OSD: -1, Detail: "missing shards (degraded; run Recover)"})
		return
	}
	// Pad short shards so Verify sees equal sizes (tail shards may be short
	// after partial writes).
	for i := range shards {
		if len(shards[i]) < size {
			shards[i] = append(append([]byte(nil), shards[i]...), make([]byte, size-len(shards[i]))...)
		}
	}
	// Charge the parity verification.
	if h := c.ecPrimaryHost(pool, oid); h != nil {
		h.cpu.Use(p, c.cost.ECEncode(size*k))
	}
	ok, err := codec.Verify(shards)
	if err != nil || !ok {
		stats.Errors = append(stats.Errors, ScrubError{Key: key, OSD: -1, Detail: "parity mismatch"})
		if repair {
			// Rebuild parity from data shards (data is authoritative, as in
			// Ceph's repair of parity inconsistencies).
			enc, encErr := codec.Encode(shards[:k])
			if encErr != nil {
				return
			}
			for idx := k; idx < k+m; idx++ {
				o := holders[idx]
				if o == nil {
					continue
				}
				if bytes.Equal(enc[idx], shards[idx]) {
					continue
				}
				txn := store.NewTxn().WriteFull(enc[idx]).
					SetXattr(xattrECIdx, putU64(uint64(idx)))
				if lenRaw, lerr := o.store.GetXattr(key, xattrECLen); lerr == nil {
					txn.SetXattr(xattrECLen, lenRaw)
				}
				_ = o.store.Apply(key, txn)
				o.diskWrite(p, qos.Scrub, c.cost, len(enc[idx]))
				stats.Repaired++
			}
		}
	}
}

func (c *Cluster) ecPrimaryHost(pool *Pool, oid string) *host {
	acting := c.acting(pool, c.PGOf(pool, oid))
	if len(acting) == 0 {
		return nil
	}
	return acting[0].host
}

// diffObjects compares two object copies and describes the first mismatch.
func diffObjects(a, b *store.Object) string {
	if !bytes.Equal(a.Data, b.Data) {
		return "data mismatch"
	}
	if len(a.Xattr) != len(b.Xattr) {
		return "xattr count mismatch"
	}
	for k, v := range a.Xattr {
		if !bytes.Equal(b.Xattr[k], v) {
			return "xattr " + k + " mismatch"
		}
	}
	if len(a.Omap) != len(b.Omap) {
		return "omap count mismatch"
	}
	for k, v := range a.Omap {
		if !bytes.Equal(b.Omap[k], v) {
			return "omap " + k + " mismatch"
		}
	}
	return ""
}

// CorruptForTest flips a byte of one OSD's copy of an object — a bit-rot
// injector for scrub tests and demos.
func (c *Cluster) CorruptForTest(osdID int, key store.Key, offset int64) error {
	o, ok := c.osds[osdID]
	if !ok {
		return fmt.Errorf("rados: unknown osd %d", osdID)
	}
	data, err := o.store.Read(key, offset, 1)
	if err != nil {
		return err
	}
	if len(data) == 0 {
		return fmt.Errorf("rados: offset %d beyond object", offset)
	}
	return o.store.Apply(key, store.NewTxn().Write(offset, []byte{data[0] ^ 0xff}))
}
