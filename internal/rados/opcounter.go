package rados

import (
	"time"

	"dedupstore/internal/sim"
)

// OpCounter tracks operation rates over virtual time. The deduplication
// rate controller polls RecentIOPS to compare foreground load against its
// watermarks (§4.4.2).
type OpCounter struct {
	eng        *sim.Engine
	totalOps   int64
	totalBytes int64

	bucketLen time.Duration
	buckets   []opBucket // ring, index = (t / bucketLen) % len
}

type opBucket struct {
	epoch int64 // t / bucketLen this bucket currently represents
	ops   int64
	bytes int64
}

// NewOpCounter returns a counter with a one-second sliding window in ten
// 100ms buckets.
func NewOpCounter(eng *sim.Engine) *OpCounter {
	return &OpCounter{eng: eng, bucketLen: 100 * time.Millisecond, buckets: make([]opBucket, 10)}
}

func (oc *OpCounter) bucketFor(now sim.Time) *opBucket {
	epoch := int64(now) / int64(oc.bucketLen)
	b := &oc.buckets[epoch%int64(len(oc.buckets))]
	if b.epoch != epoch {
		b.epoch, b.ops, b.bytes = epoch, 0, 0
	}
	return b
}

// Note records one completed operation of the given payload size.
func (oc *OpCounter) Note(bytes int) {
	oc.totalOps++
	oc.totalBytes += int64(bytes)
	b := oc.bucketFor(oc.eng.Now())
	b.ops++
	b.bytes += int64(bytes)
}

// RecentIOPS reports operations per second over the trailing window.
func (oc *OpCounter) RecentIOPS() float64 {
	ops, _ := oc.recent()
	return ops
}

// RecentThroughput reports bytes per second over the trailing window.
func (oc *OpCounter) RecentThroughput() float64 {
	_, bytes := oc.recent()
	return bytes
}

func (oc *OpCounter) recent() (opsPerSec, bytesPerSec float64) {
	now := int64(oc.eng.Now())
	curEpoch := now / int64(oc.bucketLen)
	var ops, bytes int64
	for i := range oc.buckets {
		b := &oc.buckets[i]
		if b.epoch > curEpoch-int64(len(oc.buckets)) && b.epoch <= curEpoch {
			ops += b.ops
			bytes += b.bytes
		}
	}
	// Average over the time actually covered: early in a run less than the
	// full ring has elapsed, and dividing by the whole window would
	// under-report the rate (leaving the §4.4.2 controller unthrottled for
	// the first second). Floor at one bucket to keep the estimate stable.
	window := float64(len(oc.buckets)) * oc.bucketLen.Seconds()
	if elapsed := time.Duration(now).Seconds(); elapsed < window {
		window = elapsed
		if min := oc.bucketLen.Seconds(); window < min {
			window = min
		}
	}
	return float64(ops) / window, float64(bytes) / window
}

// Totals returns lifetime operation and byte counts.
func (oc *OpCounter) Totals() (ops, bytes int64) { return oc.totalOps, oc.totalBytes }
