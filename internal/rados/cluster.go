// Package rados implements the decentralized, shared-nothing scale-out
// object store the paper targets (§2.1): CRUSH-placed placement groups over
// OSDs, primary-copy replication, erasure-coded pools, per-object compound
// transactions with xattr/omap metadata, and recovery/rebalancing engines.
// It plays the role Ceph RADOS plays in the paper's implementation, with
// device and network timing supplied by the discrete-event simulation.
package rados

import (
	"errors"
	"fmt"
	"time"

	"dedupstore/internal/crush"
	"dedupstore/internal/ec"
	"dedupstore/internal/fpindex"
	"dedupstore/internal/metrics"
	"dedupstore/internal/qos"
	"dedupstore/internal/sim"
	"dedupstore/internal/simcost"
	"dedupstore/internal/store"
)

// Errors returned by cluster operations.
var (
	ErrNoOSD        = errors.New("rados: no OSD available for placement group")
	ErrOSDDown      = errors.New("rados: acting OSD down (request timed out)")
	ErrPoolExists   = errors.New("rados: pool already exists")
	ErrPoolNotFound = errors.New("rados: pool not found")
	ErrNotFound     = store.ErrNotFound
)

// IsUnavailable reports whether err is a transient cluster-availability
// error — a dead acting OSD or an unservable PG — that a client should
// retry after a backoff, as opposed to a permanent error like ErrNotFound.
func IsUnavailable(err error) bool {
	return errors.Is(err, ErrOSDDown) || errors.Is(err, ErrNoOSD)
}

// RedundancyKind selects the pool redundancy scheme.
type RedundancyKind int

// Redundancy kinds.
const (
	Replicated RedundancyKind = iota + 1
	Erasure
)

// Redundancy describes a pool's data protection scheme (§1: deduplication
// must preserve the underlying redundancy scheme, replication or EC).
type Redundancy struct {
	Kind RedundancyKind
	Size int // replica count for Replicated
	K, M int // data/parity shards for Erasure
}

// ReplicatedN returns replication with n copies.
func ReplicatedN(n int) Redundancy { return Redundancy{Kind: Replicated, Size: n} }

// ErasureKM returns EC with k data and m parity shards.
func ErasureKM(k, m int) Redundancy { return Redundancy{Kind: Erasure, K: k, M: m} }

// Width is the number of OSDs a PG needs under this scheme.
func (r Redundancy) Width() int {
	if r.Kind == Erasure {
		return r.K + r.M
	}
	return r.Size
}

// Overhead is the raw-to-logical space multiplier (2 for 2x replication,
// 1.5 for EC 2+1).
func (r Redundancy) Overhead() float64 {
	if r.Kind == Erasure {
		return float64(r.K+r.M) / float64(r.K)
	}
	return float64(r.Size)
}

func (r Redundancy) String() string {
	if r.Kind == Erasure {
		return fmt.Sprintf("ec-%d+%d", r.K, r.M)
	}
	return fmt.Sprintf("rep-%d", r.Size)
}

// PoolConfig configures a pool at creation.
type PoolConfig struct {
	Name       string
	PGNum      uint32
	Redundancy Redundancy
	// DeviceClass restricts placement to OSDs of this class ("" = any) —
	// the paper's §4.2 option of placing the metadata and chunk pools on
	// different storage tiers.
	DeviceClass string
}

// Pool is a named object namespace with its own redundancy scheme — the
// mechanism the design uses to separate the metadata pool from the chunk
// pool (§4.2), each with its own redundancy and placement.
type Pool struct {
	ID    uint64
	Name  string
	PGNum uint32
	Red   Redundancy
	// Class is the pool's device-class restriction ("" = any).
	Class string

	codec *ec.Codec // lazily built EC codec (Erasure pools only)
}

type host struct {
	name string
	nic  *sim.Resource
	cpu  *sim.Resource
	// nicSched is the QoS admission gate in front of nic: every NIC
	// serialization on this host goes through it under an I/O class.
	nicSched *qos.Scheduler
}

type osd struct {
	id    int
	host  *host
	store *store.Store
	disk  *sim.Resource
	// sched is the per-OSD QoS op scheduler fronting disk: the single
	// admission point for every disk I/O, fair-queued across classes.
	sched *qos.Scheduler
	// slow scales disk service times (1.0 = the cost model's SSD; an HDD
	// class OSD uses a larger factor).
	slow float64
	// baseSlow remembers the device's healthy factor so a transient
	// slow-disk fault (SetOSDSlow) can be reverted.
	baseSlow float64
	// alive models the OSD daemon process: false after a crash, true after
	// restart. Aliveness is orthogonal to the CRUSH up/in flags — a crashed
	// OSD stays "up" in the map until the heartbeat monitor's grace period
	// expires, which is exactly the degraded window chaos experiments probe.
	alive bool
	// fpidx is the OSD's log-structured fingerprint index, non-nil only when
	// EnableFPIndex armed one for a pool this OSD serves.
	fpidx *fpindex.Index
}

// diskRead charges a read of n bytes at this OSD's device speed, admitted
// through the OSD's QoS scheduler under the given class.
func (o *osd) diskRead(p *sim.Proc, cls qos.Class, cost simcost.Params, n int) {
	o.sched.Use(p, cls, time.Duration(float64(cost.DiskRead(n))*o.slow))
}

// diskWrite charges a durable write of n bytes at this OSD's device speed,
// admitted through the OSD's QoS scheduler under the given class.
func (o *osd) diskWrite(p *sim.Proc, cls qos.Class, cost simcost.Params, n int) {
	o.sched.Use(p, cls, time.Duration(float64(cost.DiskWrite(n))*o.slow))
}

// Cluster is the distributed object store. All blocking methods must be
// called from within a sim.Proc.
type Cluster struct {
	eng  *sim.Engine
	cost simcost.Params
	cmap *crush.Map

	hosts     map[string]*host
	osds      map[int]*osd
	pools     map[string]*Pool
	poolsByID map[uint64]*Pool
	nextPool  uint64

	pgLocks map[crush.PG]*sim.Resource

	// Per-epoch placement caches: resolving a PG's OSD set happens on every
	// I/O, so acting/want memoize their []*osd results until a CRUSH map
	// mutation bumps the epoch. The cached slices are shared — read-only.
	pgResEpoch  int
	actCache    map[crush.PG][]*osd
	wantCache   map[crush.PG][]*osd
	osdSeq      []*osd // allOSDs() cache, id order
	osdSeqEpoch int

	// dirty is set — permanently — the first time anything happens that
	// could strand a stale or stray object copy: an OSD crash, a device
	// replacement, or a CRUSH epoch change after data exists (reconBase is
	// the epoch observed at the first mutation). While the cluster is clean,
	// per-mutation missed-write reconciliation provably has nothing to do
	// and the write path skips its cluster-wide scan.
	dirty     bool
	reconBase int

	storeOpts []store.Option

	// reqTimeout is how long a gateway op waits on a dead acting primary
	// before failing with ErrOSDDown (the client-visible request timeout).
	reqTimeout time.Duration
	// nicSlow scales NIC serialization per host (>1 = degraded link),
	// keyed by resource name ("nic.host0").
	nicSlow map[string]float64
	// missed tracks, per OSD id, object keys whose writes/deletes the OSD
	// missed while crashed or marked down. On restart those keys are wiped
	// from the OSD's store before it serves again (the moral equivalent of
	// Ceph peering: a rejoining OSD must not serve stale versions), and
	// recovery re-copies fresh ones.
	missed map[int]map[store.Key]bool

	// Stats counters.
	fgOps     *OpCounter
	recovered int64 // bytes moved by recovery

	// Observability: cluster-wide metric registry, per-op trace sink, and
	// queue-depth/utilization monitor over every FIFO resource.
	reg  *metrics.Registry
	sink *metrics.TraceSink
	rmon *metrics.ResourceMonitor

	// qsched shares one QoS config across every OSD disk and host NIC
	// scheduler, so one weight update retunes the whole cluster.
	qsched *qos.Group
	// qwait pre-resolves the per-class queue-wait histograms so the
	// admission hot path avoids a registry lookup per I/O.
	qwait [qos.NumClasses]*metrics.Histogram
	// ops pre-resolves the per-kind gateway op handles (count, latency,
	// errors) the same way: resolve the metric name once at construction,
	// then each op completion is a few atomic ops with no map lookups.
	ops struct {
		write, writeFull, del, read, mutate opStats
	}
	// fpLookupLat/fpMismatch are the fingerprint-probe handles, resolved
	// when EnableFPIndex arms the index.
	fpLookupLat *metrics.Histogram
	fpMismatch  *metrics.Counter

	// fpPool is the id of the pool fronted by per-OSD fingerprint indexes
	// (0 = disabled); fpCfg is the index configuration shared by all OSDs.
	fpPool uint64
	fpCfg  fpindex.Config
}

// Option configures a Cluster.
type Option func(*Cluster)

// WithStoreOptions passes options (e.g. a compression footprint model) to
// every OSD store created by AddOSD.
func WithStoreOptions(opts ...store.Option) Option {
	return func(c *Cluster) { c.storeOpts = opts }
}

// New creates an empty cluster on the given simulation engine and cost
// model.
func New(eng *sim.Engine, cost simcost.Params, opts ...Option) *Cluster {
	c := &Cluster{
		eng:        eng,
		cost:       cost,
		cmap:       crush.NewMap(),
		hosts:      make(map[string]*host),
		osds:       make(map[int]*osd),
		pools:      make(map[string]*Pool),
		poolsByID:  make(map[uint64]*Pool),
		pgLocks:    make(map[crush.PG]*sim.Resource),
		reqTimeout: 2 * time.Millisecond,
		nicSlow:    make(map[string]float64),
		missed:     make(map[int]map[store.Key]bool),
		fgOps:      NewOpCounter(eng),
		reg:        metrics.NewRegistry(),
		sink:       metrics.NewTraceSink(4096),
		rmon:       metrics.NewResourceMonitor(),
		qsched:     qos.NewGroup(qos.DefaultConfig()),
	}
	for _, o := range opts {
		o(c)
	}
	for cls := qos.Class(0); cls < qos.NumClasses; cls++ {
		c.qwait[cls] = c.reg.Histogram("qos_queue_wait:" + cls.String())
	}
	c.qsched.OnAdmit = func(_ string, cls qos.Class, wait time.Duration, queued bool) {
		if queued {
			c.qwait[cls].Add(wait)
		}
	}
	c.ops.write = newOpStats(c.reg, "rados.write")
	c.ops.writeFull = newOpStats(c.reg, "rados.writefull")
	c.ops.del = newOpStats(c.reg, "rados.delete")
	c.ops.read = newOpStats(c.reg, "rados.read")
	c.ops.mutate = newOpStats(c.reg, "rados.mutate")
	return c
}

// Engine returns the simulation engine the cluster runs on.
func (c *Cluster) Engine() *sim.Engine { return c.eng }

// Cost returns the hardware cost model.
func (c *Cluster) Cost() simcost.Params { return c.cost }

// Map returns the cluster's CRUSH map (live; mutations affect placement).
func (c *Cluster) Map() *crush.Map { return c.cmap }

// AddHost registers a server with the given CPU core count.
func (c *Cluster) AddHost(name string, cores int) {
	if _, ok := c.hosts[name]; ok {
		return
	}
	if cores < 1 {
		cores = 1
	}
	h := &host{
		name: name,
		nic:  sim.NewResource("nic."+name, 1),
		cpu:  sim.NewResource("cpu."+name, cores),
	}
	h.nicSched = c.qsched.NewScheduler(h.nic)
	c.rmon.Watch(h.nic)
	c.rmon.Watch(h.cpu)
	c.hosts[name] = h
}

// AddOSD registers an SSD-class OSD on a host (host must exist).
func (c *Cluster) AddOSD(id int, hostName string, weight float64) error {
	return c.AddOSDClass(id, hostName, weight, "ssd", 1.0)
}

// AddOSDClass registers an OSD with a device class and a disk slowdown
// factor relative to the cost model's SSD (e.g. "hdd" with factor 8).
func (c *Cluster) AddOSDClass(id int, hostName string, weight float64, class string, slowFactor float64) error {
	h, ok := c.hosts[hostName]
	if !ok {
		return fmt.Errorf("rados: unknown host %q", hostName)
	}
	if slowFactor <= 0 {
		slowFactor = 1.0
	}
	if err := c.cmap.AddOSDClass(id, hostName, weight, class); err != nil {
		return err
	}
	o := &osd{
		id:       id,
		host:     h,
		store:    store.New(c.storeOpts...),
		disk:     sim.NewResource(fmt.Sprintf("disk.osd%d", id), c.diskShards()),
		slow:     slowFactor,
		baseSlow: slowFactor,
		alive:    true,
	}
	o.sched = c.qsched.NewScheduler(o.disk)
	c.rmon.Watch(o.disk)
	c.osds[id] = o
	if c.fpPool != 0 {
		c.attachFPIndex(o) // index enabled before this OSD joined
	}
	return nil
}

func (c *Cluster) diskShards() int {
	if c.cost.DiskShards > 0 {
		return c.cost.DiskShards
	}
	return 1
}

// NewTestbed builds the paper's evaluation cluster: hosts each with
// osdsPerHost OSDs, 12 cores per host (Xeon E5-2690).
func NewTestbed(eng *sim.Engine, cost simcost.Params, hosts, osdsPerHost int, opts ...Option) *Cluster {
	c := New(eng, cost, opts...)
	id := 0
	for h := 0; h < hosts; h++ {
		name := fmt.Sprintf("host%d", h)
		c.AddHost(name, 12)
		for d := 0; d < osdsPerHost; d++ {
			if err := c.AddOSD(id, name, 1.0); err != nil {
				panic(err)
			}
			id++
		}
	}
	return c
}

// CreatePool creates a pool.
func (c *Cluster) CreatePool(cfg PoolConfig) (*Pool, error) {
	if _, ok := c.pools[cfg.Name]; ok {
		return nil, ErrPoolExists
	}
	if cfg.PGNum == 0 {
		cfg.PGNum = 64
	}
	switch cfg.Redundancy.Kind {
	case Replicated:
		if cfg.Redundancy.Size < 1 {
			return nil, fmt.Errorf("rados: pool %q invalid replica count %d", cfg.Name, cfg.Redundancy.Size)
		}
	case Erasure:
		if cfg.Redundancy.K < 1 || cfg.Redundancy.M < 0 {
			return nil, fmt.Errorf("rados: pool %q invalid EC %d+%d", cfg.Name, cfg.Redundancy.K, cfg.Redundancy.M)
		}
	default:
		return nil, fmt.Errorf("rados: pool %q missing redundancy scheme", cfg.Name)
	}
	c.nextPool++
	p := &Pool{ID: c.nextPool, Name: cfg.Name, PGNum: cfg.PGNum, Red: cfg.Redundancy, Class: cfg.DeviceClass}
	c.pools[cfg.Name] = p
	c.poolsByID[p.ID] = p
	return p, nil
}

// LookupPool returns a pool by name.
func (c *Cluster) LookupPool(name string) (*Pool, error) {
	p, ok := c.pools[name]
	if !ok {
		return nil, ErrPoolNotFound
	}
	return p, nil
}

// PGOf computes the placement group of an object.
func (c *Cluster) PGOf(p *Pool, oid string) crush.PG {
	return crush.PGForObject(p.ID, p.PGNum, oid)
}

// pgResCheck invalidates the placement caches when the CRUSH epoch moved.
// A PG fully determines its pool (PG.Pool is the pool id), so caching by PG
// alone is sound: every resolution of the same PG uses the same width and
// device class.
func (c *Cluster) pgResCheck() {
	if c.pgResEpoch != c.cmap.Epoch || c.actCache == nil {
		c.pgResEpoch = c.cmap.Epoch
		c.actCache = make(map[crush.PG][]*osd)
		c.wantCache = make(map[crush.PG][]*osd)
	}
}

// acting returns the up OSDs for a PG in placement order. The slice is
// cached per epoch and shared — callers must not modify it.
func (c *Cluster) acting(p *Pool, pg crush.PG) []*osd {
	c.pgResCheck()
	if out, ok := c.actCache[pg]; ok {
		return out
	}
	ids := c.cmap.ActingSetClass(pg, p.Red.Width(), p.Class)
	out := make([]*osd, 0, len(ids))
	for _, id := range ids {
		if o, ok := c.osds[id]; ok {
			out = append(out, o)
		}
	}
	c.actCache[pg] = out
	return out
}

// want returns the full target OSD set for a PG (including down members).
// The slice is cached per epoch and shared — callers must not modify it.
func (c *Cluster) want(p *Pool, pg crush.PG) []*osd {
	c.pgResCheck()
	if out, ok := c.wantCache[pg]; ok {
		return out
	}
	ids := c.cmap.MapPGClass(pg, p.Red.Width(), p.Class)
	out := make([]*osd, 0, len(ids))
	for _, id := range ids {
		if o, ok := c.osds[id]; ok {
			out = append(out, o)
		}
	}
	c.wantCache[pg] = out
	return out
}

func (c *Cluster) pgLock(pg crush.PG) *sim.Resource {
	l, ok := c.pgLocks[pg]
	if !ok {
		l = sim.NewResource("pg."+pg.String(), 1)
		c.pgLocks[pg] = l
	}
	return l
}

// ForegroundOps returns the counter of client-issued operations, the signal
// the dedup rate controller watches (§4.4.2).
func (c *Cluster) ForegroundOps() *OpCounter { return c.fgOps }

// Metrics returns the cluster-wide metric registry. Every layer (gateways,
// the dedup engine, the cache agent, recovery) registers its instruments
// here.
func (c *Cluster) Metrics() *metrics.Registry { return c.reg }

// Trace returns the cluster's span sink. All gateway ops record spans into
// it; nil is never returned.
func (c *Cluster) Trace() *metrics.TraceSink { return c.sink }

// Resources returns the monitor holding queue-depth/utilization timelines
// for every host NIC, host CPU pool and OSD disk.
func (c *Cluster) Resources() *metrics.ResourceMonitor { return c.rmon }

// QoS returns the cluster's scheduler group: the shared per-class weights
// and depth caps every OSD disk and host NIC scheduler enforces. Policies
// (the §4.4.2 watermark controller) tune classes through it.
func (c *Cluster) QoS() *qos.Group { return c.qsched }

// DumpMetrics publishes the current resource utilization into the registry
// and renders everything as Prometheus exposition text.
func (c *Cluster) DumpMetrics() string {
	now := c.eng.Now()
	for _, u := range c.rmon.Snapshot(now) {
		base := "sim_resource_" + u.Name
		c.reg.Gauge(base + "_queue_max").Set(int64(u.MaxQueue))
		c.reg.Gauge(base + "_util_ppm").Set(int64(u.Utilization * 1e6))
	}
	ops, bytes := c.fgOps.Totals()
	c.reg.Counter("rados_foreground_ops_total").Add(ops - c.reg.Counter("rados_foreground_ops_total").Value())
	c.reg.Counter("rados_foreground_bytes_total").Add(bytes - c.reg.Counter("rados_foreground_bytes_total").Value())
	c.reg.Counter("rados_recovered_bytes_total").Add(c.recovered - c.reg.Counter("rados_recovered_bytes_total").Value())
	for _, t := range c.qsched.Totals() {
		base := "qos_" + t.Class
		set := func(suffix string, v int64) {
			c.reg.Counter(base + suffix).Add(v - c.reg.Counter(base+suffix).Value())
		}
		set("_admitted_total", t.Admitted)
		set("_queued_total", t.Queued)
		set("_throttled_total", t.Throttled)
		c.reg.Gauge(base + "_weight").Set(t.Weight)
		c.reg.Gauge(base + "_limit_us").Set(t.Limit.Microseconds())
		c.reg.Gauge(base + "_queue_len").Set(int64(t.QueueLen))
		c.reg.Gauge(base + "_queue_max").Set(int64(t.MaxQueue))
		c.reg.Gauge(base + "_inflight").Set(int64(t.Inflight))
		c.reg.Gauge(base + "_queue_wait_us").Set(t.QueueWait.Microseconds())
		c.reg.Gauge(base + "_busy_us").Set(t.Busy.Microseconds())
	}
	c.publishFPIndexMetrics()
	return c.reg.Dump()
}

// RecoveredBytes reports total bytes moved by recovery/rebalance so far.
func (c *Cluster) RecoveredBytes() int64 { return c.recovered }

// HostCPUUsage returns average CPU utilization (0..1) across all hosts up to
// the current virtual time, the metric plotted as the solid line in Fig. 10.
func (c *Cluster) HostCPUUsage() float64 {
	now := c.eng.Now()
	if now == 0 || len(c.hosts) == 0 {
		return 0
	}
	var frac float64
	for _, h := range c.hosts {
		busy := h.cpu.BusyTime(now)
		frac += float64(busy) / float64(now.Duration())
	}
	return frac / float64(len(c.hosts))
}

// HostCPUBusy returns the summed CPU busy time across all hosts up to now.
// Measure a window by differencing two calls: usage = Δbusy / (Δt × hosts).
func (c *Cluster) HostCPUBusy() time.Duration {
	now := c.eng.Now()
	var busy time.Duration
	for _, h := range c.hosts {
		busy += h.cpu.BusyTime(now)
	}
	return busy
}

// HostCount returns the number of registered hosts.
func (c *Cluster) HostCount() int { return len(c.hosts) }

// OSDStore exposes an OSD's backing store (used by tests, local-dedup
// baseline accounting, and recovery verification).
func (c *Cluster) OSDStore(id int) (*store.Store, bool) {
	o, ok := c.osds[id]
	if !ok {
		return nil, false
	}
	return o.store, true
}

// OSDs returns all OSD ids, ascending.
func (c *Cluster) OSDs() []int { return c.cmap.OSDs() }

// netSend models one network hop: the NIC is occupied only for the
// serialization time; propagation latency accrues without holding the link.
// The serialization slot is admitted through the link's QoS scheduler under
// the op's class. A degraded link (SetNICSlow) stretches serialization by
// its factor.
func (c *Cluster) netSend(p *sim.Proc, cls qos.Class, nic *qos.Scheduler, n int) {
	ser := c.cost.NetSer(n)
	if f, ok := c.nicSlow[nic.Resource().Name()]; ok && f > 1 {
		ser = time.Duration(float64(ser) * f)
	}
	nic.Use(p, cls, ser)
	p.Sleep(c.cost.NetLatency)
}

// ---------------------------------------------------------------------------
// Fault surface: process crash/restart and performance degradation. These are
// the primitives internal/chaos drives; they model what happens to the
// machine, while the heartbeat Monitor models how the cluster finds out.

// RequestTimeout returns the gateway request timeout charged when an op hits
// a dead acting OSD.
func (c *Cluster) RequestTimeout() time.Duration { return c.reqTimeout }

// SetRequestTimeout adjusts the gateway request timeout (minimum 0).
func (c *Cluster) SetRequestTimeout(d time.Duration) {
	if d < 0 {
		d = 0
	}
	c.reqTimeout = d
}

// CrashOSD kills an OSD process. The CRUSH map is NOT updated — the cluster
// keeps routing to the dead OSD until the heartbeat monitor marks it down,
// which is the detection window the chaos experiments measure. Ops hitting
// the dead OSD time out (writes) or fall back to surviving redundancy
// (reads). Crashing a crashed OSD is a no-op.
func (c *Cluster) CrashOSD(id int) error {
	o, ok := c.osds[id]
	if !ok {
		return fmt.Errorf("rados: unknown osd %d", id)
	}
	o.alive = false
	c.dirty = true // from here on a stale or stray copy may exist somewhere
	if o.fpidx != nil {
		o.fpidx.Crash() // memtable and block cache are RAM; WAL+tables survive
	}
	c.reg.Counter("rados_osd_crashes_total").Inc()
	return nil
}

// RestartOSD brings a crashed OSD process back with its store intact, except
// for objects whose writes or deletes it missed while dead: those are wiped
// before it serves again (peering — a rejoining OSD must never serve stale
// versions) and re-copied by recovery. The monitor notices the restart on
// its next tick and marks the OSD up/in again.
func (c *Cluster) RestartOSD(id int) error {
	o, ok := c.osds[id]
	if !ok {
		return fmt.Errorf("rados: unknown osd %d", id)
	}
	if o.alive {
		return nil
	}
	if o.fpidx != nil {
		o.fpidx.Recover(nil) // WAL replay restores the index to its crash point
	}
	for key := range c.missed[id] {
		existed := o.store.Exists(key)
		_ = o.store.Apply(key, store.NewTxn().Delete())
		// Peering wipes stale copies from the store; the index must tombstone
		// them too or later probes would disagree with the store.
		c.fpNote(nil, o, key, existed, false)
	}
	delete(c.missed, id)
	o.alive = true
	c.reg.Counter("rados_osd_restarts_total").Inc()
	return nil
}

// OSDAlive reports whether the OSD process is running (independent of its
// CRUSH up/in state).
func (c *Cluster) OSDAlive(id int) bool {
	o, ok := c.osds[id]
	return ok && o.alive
}

// SetOSDSlow scales an OSD's disk service times by factor relative to its
// healthy speed (1.0 restores it). Models a failing/throttled device.
func (c *Cluster) SetOSDSlow(id int, factor float64) error {
	o, ok := c.osds[id]
	if !ok {
		return fmt.Errorf("rados: unknown osd %d", id)
	}
	if factor < 1 {
		factor = 1
	}
	o.slow = o.baseSlow * factor
	return nil
}

// SetNICSlow scales a host's NIC serialization times by factor (1.0
// restores full speed). Models link degradation or congestion.
func (c *Cluster) SetNICSlow(hostName string, factor float64) error {
	h, ok := c.hosts[hostName]
	if !ok {
		return fmt.Errorf("rados: unknown host %q", hostName)
	}
	if factor <= 1 {
		delete(c.nicSlow, h.nic.Name())
	} else {
		c.nicSlow[h.nic.Name()] = factor
	}
	return nil
}

// HostOSDs returns the ids of the OSDs on a host, ascending — the unit a
// host-level fault takes down.
func (c *Cluster) HostOSDs(hostName string) []int {
	var ids []int
	for _, id := range c.cmap.OSDs() {
		if o := c.osds[id]; o != nil && o.host.name == hostName {
			ids = append(ids, id)
		}
	}
	return ids
}

// liveInMapHolder returns the first live, up+in OSD (in id order) holding
// key, excluding skip — the shared "who can still serve this object" scan
// behind degraded reads, on-demand pulls and xattr peeks.
func (c *Cluster) liveInMapHolder(key store.Key, skip *osd) *osd {
	for _, o := range c.allOSDs() {
		if o == skip || !o.alive || !o.store.Exists(key) {
			continue
		}
		if info, ok := c.cmap.Lookup(o.id); !ok || !info.Up || !info.In {
			continue
		}
		return o
	}
	return nil
}

// recoverableOnDead reports whether any dead OSD among cands still holds a
// current (not known-stale) copy of key — the object can come back via a
// restart or recovery, so an unservable read should fail retryably rather
// than not-found.
func (c *Cluster) recoverableOnDead(key store.Key, cands []*osd) bool {
	for _, o := range cands {
		if o != nil && !o.alive && o.store.Exists(key) && !c.missed[o.id][key] {
			return true
		}
	}
	return false
}

// allOSDs returns every OSD in id order. The slice is cached per CRUSH
// epoch and shared — callers must not modify it.
func (c *Cluster) allOSDs() []*osd {
	if c.osdSeqEpoch != c.cmap.Epoch || c.osdSeq == nil {
		out := make([]*osd, 0, len(c.osds))
		for _, id := range c.cmap.OSDs() {
			if o := c.osds[id]; o != nil {
				out = append(out, o)
			}
		}
		c.osdSeq = out
		c.osdSeqEpoch = c.cmap.Epoch
	}
	return c.osdSeq
}

// noteMissed records that OSD id did not apply the mutation of key, so its
// copy is stale (or a delete never landed). The key is wiped on restart.
func (c *Cluster) noteMissed(id int, key store.Key) {
	m := c.missed[id]
	if m == nil {
		m = make(map[store.Key]bool)
		c.missed[id] = m
	}
	m[key] = true
}

// reconcileNeeded reports whether missed-write reconciliation could have
// any work to do. While the cluster is clean — no OSD ever crashed or was
// replaced, and the CRUSH epoch never moved since the first mutation — no
// stale or stray copy can exist anywhere, so the write path skips both the
// cluster-wide scan and the applied-set bookkeeping feeding it. The first
// perturbation flips dirty permanently.
func (c *Cluster) reconcileNeeded() bool {
	if !c.dirty {
		if c.reconBase == 0 {
			c.reconBase = c.cmap.Epoch
		}
		if c.cmap.Epoch != c.reconBase {
			c.dirty = true
		}
	}
	return c.dirty || len(c.missed) > 0
}

// reconcileMissed runs after a mutation of key was applied to the OSDs in
// applied: every dead OSD gets the miss recorded (so its copy is wiped on
// restart), and any live copy outside the applied set — a stray left behind
// by remapping — is deleted immediately so a degraded-read fallback can
// never observe a stale version. This compresses Ceph's pg-log-driven
// peering and stray cleanup into the write path. On a clean cluster (see
// reconcileNeeded) the scan short-circuits.
func (c *Cluster) reconcileMissed(key store.Key, applied map[int]bool) {
	if !c.reconcileNeeded() {
		return
	}
	for _, o := range c.allOSDs() {
		if applied[o.id] {
			continue
		}
		if !o.alive {
			c.noteMissed(o.id, key)
			continue
		}
		if o.store.Exists(key) {
			_ = o.store.Apply(key, store.NewTxn().Delete())
			// Stray cleanup has no proc context: the index tombstone is
			// applied uncharged, like the store delete above.
			c.fpNote(nil, o, key, true, false)
		}
	}
}
