package rados

import (
	"fmt"
	"sort"

	"dedupstore/internal/qos"
	"dedupstore/internal/sim"
	"dedupstore/internal/store"
)

// Failure and recovery: because the dedup design stores all of its state in
// ordinary self-contained objects (§3.2), the recovery engine below knows
// nothing about deduplication — it reconciles object placement for metadata
// objects and chunk objects exactly as for any other object, which is the
// paper's "storage features can be reused" claim, demonstrated by Table 3.

// FailOSD administratively marks an OSD down and out: its PGs remap and it
// stops serving. Unlike CrashOSD there is no detection window — this is the
// operator's `ceph osd out`.
func (c *Cluster) FailOSD(id int) error {
	if _, ok := c.osds[id]; !ok {
		return fmt.Errorf("rados: unknown osd %d", id)
	}
	c.cmap.SetUp(id, false)
	c.cmap.SetIn(id, false)
	return nil
}

// ReplaceOSD simulates the paper's Table 3 procedure ("removing and
// re-adding the OSD"): the OSD returns empty (fresh device) at the same
// CRUSH position, and recovery must re-fill it. It reports whether recovery
// work is still pending — i.e. whether any surviving OSD holds objects whose
// placement includes the fresh device — so callers know a Recover run is
// required before redundancy is restored.
func (c *Cluster) ReplaceOSD(id int) (recoveryPending bool, err error) {
	o, ok := c.osds[id]
	if !ok {
		return false, fmt.Errorf("rados: unknown osd %d", id)
	}
	o.store.Clear()
	if o.fpidx != nil {
		o.fpidx.Reset() // fresh device: the index starts empty too
	}
	delete(c.missed, id) // fresh device: nothing stale left to wipe
	o.alive = true
	c.dirty = true // the fresh device misses every object it should hold
	c.cmap.SetUp(id, true)
	c.cmap.SetIn(id, true)
	return c.recoveryPendingFor(id), nil
}

// recoveryPendingFor reports whether any object held by a live up OSD maps
// onto OSD id under the current CRUSH map while id itself lacks it.
func (c *Cluster) recoveryPendingFor(id int) bool {
	fresh := c.osds[id]
	for _, sid := range c.cmap.UpOSDs() {
		src := c.osds[sid]
		if src == nil || src == fresh || !src.alive {
			continue
		}
		for _, key := range src.store.Keys() {
			pool := c.poolsByID[key.Pool]
			if pool == nil {
				continue
			}
			for _, w := range c.want(pool, c.PGOf(pool, key.OID)) {
				if w == fresh && !fresh.store.Exists(key) {
					return true
				}
			}
		}
	}
	return false
}

// RecoveryStats reports one Recover run.
type RecoveryStats struct {
	Start, End     sim.Time
	BytesMoved     int64
	ObjectsCopied  int
	ObjectsDeleted int
	ShardsRebuilt  int
}

// Duration is the virtual time the recovery took.
func (rs RecoveryStats) Duration() sim.Time { return rs.End - rs.Start }

type recoveryTask struct {
	kind string // "copy", "rebuild", "delete"
	key  store.Key
	pool *Pool
	src  *osd // copy source (nil for rebuild/delete)
	dst  *osd
	idx  int // EC shard index for rebuild
}

// Recover reconciles object placement with the current CRUSH map: it
// re-replicates objects onto OSDs that should hold them but do not,
// rebuilds missing EC shards from surviving shards, and removes objects
// from OSDs that are no longer in their PG's mapping (rebalancing).
// Per-destination parallelism is bounded by the recovery class's QoS depth
// cap (Ceph's osd_recovery_max_active analog), and every byte it moves is
// admitted under the recovery class so foreground I/O keeps priority.
func (c *Cluster) Recover(p *sim.Proc) RecoveryStats {
	streamsPerOSD := c.qsched.MaxDepth(qos.Recovery)
	if streamsPerOSD < 1 {
		streamsPerOSD = 1
	}
	stats := RecoveryStats{Start: p.Now()}

	// 1. Inventory: which up OSD holds which object (and EC shard index).
	type holderInfo struct {
		osd *osd
		idx int
	}
	holders := make(map[store.Key][]holderInfo)
	for _, id := range c.cmap.UpOSDs() {
		o := c.osds[id]
		if !o.alive {
			continue // a crashed OSD can neither source nor report holdings
		}
		for _, key := range o.store.Keys() {
			idx := -1
			if pool := c.poolsByID[key.Pool]; pool != nil && pool.Red.Kind == Erasure {
				idx = int(getU64(mustXattr(o.store, key, xattrECIdx)))
			}
			holders[key] = append(holders[key], holderInfo{osd: o, idx: idx})
		}
	}

	// Deterministic iteration order over objects.
	keys := make([]store.Key, 0, len(holders))
	for k := range holders {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Pool != keys[j].Pool {
			return keys[i].Pool < keys[j].Pool
		}
		return keys[i].OID < keys[j].OID
	})

	// 2. Plan per-destination task lists.
	perDst := make(map[int][]recoveryTask)
	plan := func(t recoveryTask) { perDst[t.dst.id] = append(perDst[t.dst.id], t) }

	for _, key := range keys {
		pool := c.poolsByID[key.Pool]
		if pool == nil {
			continue
		}
		pg := c.PGOf(pool, key.OID)
		want := c.want(pool, pg)
		hs := holders[key]
		inWant := func(o *osd) int {
			for pos, w := range want {
				if w == o {
					return pos
				}
			}
			return -1
		}
		up := func(o *osd) bool {
			info, ok := c.cmap.Lookup(o.id)
			return ok && info.Up && info.In && o.alive
		}

		if pool.Red.Kind == Replicated {
			holderSet := make(map[int]bool, len(hs))
			for _, h := range hs {
				holderSet[h.osd.id] = true
			}
			for _, w := range want {
				if !up(w) || holderSet[w.id] {
					continue
				}
				// Prefer a source that is itself in the want set.
				var src *osd
				for _, h := range hs {
					if inWant(h.osd) >= 0 {
						src = h.osd
						break
					}
				}
				if src == nil && len(hs) > 0 {
					src = hs[0].osd
				}
				if src != nil {
					plan(recoveryTask{kind: "copy", key: key, pool: pool, src: src, dst: w})
				}
			}
			for _, h := range hs {
				if inWant(h.osd) < 0 {
					plan(recoveryTask{kind: "delete", key: key, pool: pool, dst: h.osd})
				}
			}
			continue
		}

		// Erasure pool: shard at index pos belongs on want[pos].
		shardHolder := make(map[int]*osd)
		for _, h := range hs {
			if h.idx >= 0 {
				shardHolder[h.idx] = h.osd
			}
		}
		for pos, w := range want {
			if pos >= pool.Red.K+pool.Red.M || !up(w) {
				continue
			}
			cur := shardHolder[pos]
			if cur == w {
				continue
			}
			if cur != nil {
				plan(recoveryTask{kind: "copy", key: key, pool: pool, src: cur, dst: w, idx: pos})
			} else {
				plan(recoveryTask{kind: "rebuild", key: key, pool: pool, dst: w, idx: pos})
			}
		}
		for _, h := range hs {
			if pos := inWant(h.osd); pos < 0 || pos != h.idx {
				if pos < 0 {
					plan(recoveryTask{kind: "delete", key: key, pool: pool, dst: h.osd})
				}
			}
		}
	}

	// 3. Execute in two phases: all copies/rebuilds first, then deletes.
	// Deletes must not run concurrently with copies — a stale holder may be
	// the only source for a copy still in flight.
	runPhase := func(match func(kind string) bool) {
		var sigs []*sim.Signal
		dsts := make([]int, 0, len(perDst))
		for id := range perDst {
			dsts = append(dsts, id)
		}
		sort.Ints(dsts)
		for _, id := range dsts {
			queue := sim.NewQueue[recoveryTask]()
			for _, t := range perDst[id] {
				if match(t.kind) {
					queue.PushFrom(c.eng, t)
				}
			}
			if queue.Len() == 0 {
				continue
			}
			for w := 0; w < streamsPerOSD; w++ {
				sigs = append(sigs, p.Go(fmt.Sprintf("recover.osd%d", id), func(q *sim.Proc) {
					for {
						t, ok := queue.TryPop()
						if !ok {
							return
						}
						c.runRecoveryTask(q, t, &stats)
					}
				}))
			}
		}
		sim.WaitAll(p, sigs...)
	}
	runPhase(func(kind string) bool { return kind != "delete" })
	runPhase(func(kind string) bool { return kind == "delete" })
	stats.End = p.Now()
	c.recovered += stats.BytesMoved
	c.reg.Counter("rados_recovery_runs_total").Inc()
	c.reg.Counter("rados_recovery_objects_copied_total").Add(int64(stats.ObjectsCopied))
	c.reg.Counter("rados_recovery_objects_deleted_total").Add(int64(stats.ObjectsDeleted))
	c.reg.Counter("rados_recovery_shards_rebuilt_total").Add(int64(stats.ShardsRebuilt))
	c.reg.Counter("rados_recovery_bytes_moved_total").Add(stats.BytesMoved)
	c.reg.Histogram("rados_recovery_duration").Add(stats.Duration().Duration())
	return stats
}

func (c *Cluster) runRecoveryTask(q *sim.Proc, t recoveryTask, stats *RecoveryStats) {
	sp := c.sink.Start(q, "recover."+t.kind).
		SetOp(t.pool.Name, c.PGOf(t.pool, t.key.OID).String(), 0).
		SetClass(qos.Recovery.String())
	defer sp.Finish(q)
	cost := c.cost
	switch t.kind {
	case "delete":
		existed := t.dst.store.Exists(t.key)
		_ = t.dst.store.Apply(t.key, store.NewTxn().Delete())
		c.fpNote(q, t.dst, t.key, existed, false)
		t.dst.diskWrite(q, qos.Recovery, cost, 0)
		stats.ObjectsDeleted++
	case "copy":
		snap, err := t.src.store.Snapshot(t.key)
		if err != nil {
			return
		}
		n := objBytes(snap)
		t.src.diskRead(q, qos.Recovery, cost, n)
		c.netSend(q, qos.Recovery, t.dst.host.nicSched, n)
		t.dst.host.cpu.Use(q, cost.OpOverhead)
		existed := t.dst.store.Exists(t.key)
		t.dst.store.Install(t.key, snap)
		c.fpNote(q, t.dst, t.key, existed, true)
		t.dst.diskWrite(q, qos.Recovery, cost, n)
		stats.ObjectsCopied++
		stats.BytesMoved += int64(n)
	case "rebuild":
		c.rebuildShard(q, t, stats)
	}
}

// rebuildShard reconstructs a missing EC shard from k surviving shards.
func (c *Cluster) rebuildShard(q *sim.Proc, t recoveryTask, stats *RecoveryStats) {
	cost := c.cost
	pool := t.pool
	codec := c.codecFor(pool)
	k, m := pool.Red.K, pool.Red.M

	// Find surviving shard holders.
	type src struct {
		osd *osd
		idx int
	}
	var srcs []src
	for _, id := range c.cmap.UpOSDs() {
		o := c.osds[id]
		if o == t.dst || !o.alive || !o.store.Exists(t.key) {
			continue
		}
		idx := int(getU64(mustXattr(o.store, t.key, xattrECIdx)))
		srcs = append(srcs, src{osd: o, idx: idx})
	}
	if len(srcs) < k {
		return // unrecoverable; scrub would flag this
	}
	shards := make([][]byte, k+m)
	var template *store.Object
	got := 0
	var sigs []*sim.Signal
	for _, s := range srcs {
		if got >= k {
			break
		}
		if s.idx < 0 || s.idx >= k+m || shards[s.idx] != nil {
			continue
		}
		got++
		s := s
		snap, err := s.osd.store.Snapshot(t.key)
		if err != nil {
			continue
		}
		if template == nil {
			template = snap
		}
		shards[s.idx] = snap.Data
		sigs = append(sigs, q.Go("rebuild-read", func(r *sim.Proc) {
			s.osd.diskRead(r, qos.Recovery, cost, len(snap.Data))
			c.netSend(r, qos.Recovery, t.dst.host.nicSched, len(snap.Data))
		}))
	}
	if got < k || template == nil {
		return
	}
	sim.WaitAll(q, sigs...)
	shardLen := len(template.Data)
	t.dst.host.cpu.Use(q, cost.ECEncode(shardLen*k))
	if err := codec.Reconstruct(shards); err != nil {
		return
	}
	obj := &store.Object{Data: shards[t.idx], Xattr: map[string][]byte{}, Omap: template.Omap}
	for name, v := range template.Xattr {
		obj.Xattr[name] = v
	}
	obj.Xattr[xattrECIdx] = putU64(uint64(t.idx))
	t.dst.store.Install(t.key, obj)
	t.dst.diskWrite(q, qos.Recovery, cost, shardLen)
	stats.ShardsRebuilt++
	stats.BytesMoved += int64(shardLen)
}

func objBytes(o *store.Object) int { return o.PayloadBytes() }
