package rados

import (
	"fmt"
	"time"

	"dedupstore/internal/crush"
	"dedupstore/internal/metrics"
	"dedupstore/internal/qos"
	"dedupstore/internal/sim"
	"dedupstore/internal/store"
)

// Gateway is a client session endpoint: it owns the client-side NIC and
// issues object operations into the cluster under one QoS class. Foreground
// gateways feed the cluster's foreground-op counter (watched by dedup rate
// control); internal gateways (background dedup, recovery helpers) do not.
type Gateway struct {
	c          *Cluster
	name       string
	nic        *qos.Scheduler
	cls        qos.Class
	foreground bool
	tenant     string // tenant identity stamped on this gateway's spans
}

// NewGateway creates a client gateway with its own 10GbE link. Its
// operations count as foreground I/O and run in the client QoS class.
func (c *Cluster) NewGateway(name string) *Gateway {
	nic := sim.NewResource("nic."+name, 1)
	c.rmon.Watch(nic)
	return &Gateway{c: c, name: name, nic: c.qsched.NewScheduler(nic), cls: qos.Client, foreground: true}
}

// HostGateway creates an internal gateway that shares an existing host's
// NIC — the vantage point of a background dedup thread running on a storage
// node. Its operations are not counted as foreground I/O and run in the
// dedup QoS class.
func (c *Cluster) HostGateway(hostName string) (*Gateway, error) {
	return c.HostGatewayClass(hostName, qos.Dedup)
}

// HostGatewayClass is HostGateway for an explicit QoS class — how GC,
// scrub and read-redirection sessions pin their traffic to the right
// scheduler class.
func (c *Cluster) HostGatewayClass(hostName string, cls qos.Class) (*Gateway, error) {
	h, ok := c.hosts[hostName]
	if !ok {
		return nil, fmt.Errorf("rados: unknown host %q", hostName)
	}
	// Internal gateways never feed the foreground-op counter, even in the
	// client class: a client-class host gateway proxies work some client
	// gateway already counted (read redirection).
	return &Gateway{
		c:          c,
		name:       "internal." + cls.String() + "." + hostName,
		nic:        h.nicSched,
		cls:        cls,
		foreground: false,
	}, nil
}

// Class returns the QoS class this gateway's operations are admitted under.
func (g *Gateway) Class() qos.Class { return g.cls }

// SetTenant attributes this gateway's operations to a tenant: every span it
// opens from here on carries the identity, so cluster-level traffic is
// traceable back to the serving front end's tenant that issued it.
func (g *Gateway) SetTenant(tenant string) { g.tenant = tenant }

// Tenant returns the tenant identity this gateway is attributed to.
func (g *Gateway) Tenant() string { return g.tenant }

func (g *Gateway) noteOp(bytes int) {
	if g.foreground {
		g.c.fgOps.Note(bytes)
	}
}

// opStats caches one op kind's registry handles, resolved once at cluster
// construction so the per-op completion path performs no string-keyed map
// lookups.
type opStats struct {
	total *metrics.Counter
	lat   *metrics.Histogram
	errs  *metrics.Counter
}

func newOpStats(reg *metrics.Registry, kind string) opStats {
	return opStats{
		total: reg.Counter("rados_op_total:" + kind),
		lat:   reg.Histogram("rados_op_latency:" + kind),
		errs:  reg.Counter("rados_op_errors_total:" + kind),
	}
}

// opCtx carries one in-flight gateway op: its trace span (nil when trace
// sampling dropped it), the kind's pre-resolved stat handles, and the start
// time. Latency is measured from the op's own clock, so the registry stays
// exact even for ops whose span was not sampled.
type opCtx struct {
	sp    *metrics.Span
	st    *opStats
	start sim.Time
}

// startOp opens a trace span for a gateway operation, tagged with pool, PG
// and payload size. Tracing observes only — it adds no virtual time.
func (g *Gateway) startOp(p *sim.Proc, kind string, st *opStats, pool *Pool, oid string, bytes int) opCtx {
	sp := g.c.sink.Start(p, kind)
	if sp != nil {
		sp.SetOp(pool.Name, g.c.PGOf(pool, oid).String(), int64(bytes)).SetClass(g.cls.String()).SetTenant(g.tenant)
	}
	return opCtx{sp: sp, st: st, start: p.Now()}
}

// finishOp closes the span (which recycles it — the span must not be used
// afterwards) and records the op's latency and outcome in the cluster
// registry.
func (g *Gateway) finishOp(p *sim.Proc, oc opCtx, err error) {
	if oc.sp != nil {
		oc.sp.Err = err != nil
		oc.sp.Finish(p)
	}
	oc.st.total.Inc()
	oc.st.lat.Add((p.Now() - oc.start).Duration())
	if err != nil {
		oc.st.errs.Inc()
	}
}

// View gives a Mutate closure read access to the object being mutated. For
// replicated pools reads are local to the primary; for EC pools data reads
// gather shards (and are charged accordingly).
type View interface {
	// Exists reports whether the object currently exists.
	Exists() bool
	// Size returns the object data length (0 if absent).
	Size() int64
	// Read returns length bytes at off (nil past end; length<0 reads all).
	Read(off, length int64) ([]byte, error)
	// GetXattr returns an xattr value or ErrNotFound.
	GetXattr(name string) ([]byte, error)
	// OmapGet returns an omap value or ErrNotFound.
	OmapGet(key string) ([]byte, error)
	// OmapList returns up to max omap keys (all if max<=0), sorted.
	OmapList(max int) ([]string, error)
}

// MutateFn inspects the current object state and returns the transaction to
// apply, or a nil/empty transaction for no change. Returning an error aborts
// the mutation (nothing is applied).
type MutateFn func(v View) (*store.Txn, error)

type replView struct {
	st *store.Store
	k  store.Key
}

func (v replView) Exists() bool { return v.st.Exists(v.k) }
func (v replView) Size() int64 {
	n, err := v.st.Size(v.k)
	if err != nil {
		return 0
	}
	return n
}
func (v replView) Read(off, length int64) ([]byte, error) { return v.st.Read(v.k, off, length) }
func (v replView) GetXattr(name string) ([]byte, error)   { return v.st.GetXattr(v.k, name) }
func (v replView) OmapGet(key string) ([]byte, error)     { return v.st.OmapGet(v.k, key) }
func (v replView) OmapList(max int) ([]string, error)     { return v.st.OmapList(v.k, max) }

// --- Public operations -------------------------------------------------------

// Write writes data at offset off (replicated pools write in place; EC
// pools perform a read-modify-write of the full object).
func (g *Gateway) Write(p *sim.Proc, pool *Pool, oid string, off int64, data []byte) error {
	oc := g.startOp(p, "rados.write", &g.c.ops.write, pool, oid, len(data))
	var err error
	if pool.Red.Kind == Erasure {
		err = g.ecWrite(p, pool, oid, off, data)
	} else {
		txn := store.NewTxn().Write(off, data)
		err = g.applyTxn(p, pool, oid, txn, len(data))
		g.noteOp(len(data))
	}
	g.finishOp(p, oc, err)
	return err
}

// WriteFull replaces the object's contents.
func (g *Gateway) WriteFull(p *sim.Proc, pool *Pool, oid string, data []byte) error {
	oc := g.startOp(p, "rados.writefull", &g.c.ops.writeFull, pool, oid, len(data))
	var err error
	if pool.Red.Kind == Erasure {
		err = g.ecWriteFull(p, pool, oid, data)
	} else {
		txn := store.NewTxn().WriteFull(data)
		err = g.applyTxn(p, pool, oid, txn, len(data))
		g.noteOp(len(data))
	}
	g.finishOp(p, oc, err)
	return err
}

// Delete removes the object.
func (g *Gateway) Delete(p *sim.Proc, pool *Pool, oid string) error {
	oc := g.startOp(p, "rados.delete", &g.c.ops.del, pool, oid, 0)
	var err error
	if pool.Red.Kind == Erasure {
		err = g.ecDelete(p, pool, oid)
	} else {
		err = g.applyTxn(p, pool, oid, store.NewTxn().Delete(), 0)
		g.noteOp(0)
	}
	g.finishOp(p, oc, err)
	return err
}

// Read returns length bytes at off (length<0 reads to end). Reads are
// served by the acting primary.
func (g *Gateway) Read(p *sim.Proc, pool *Pool, oid string, off, length int64) ([]byte, error) {
	oc := g.startOp(p, "rados.read", &g.c.ops.read, pool, oid, 0)
	data, err := g.read(p, pool, oid, off, length)
	if oc.sp != nil {
		oc.sp.Bytes = int64(len(data))
	}
	g.finishOp(p, oc, err)
	return data, err
}

func (g *Gateway) read(p *sim.Proc, pool *Pool, oid string, off, length int64) ([]byte, error) {
	if pool.Red.Kind == Erasure {
		return g.ecRead(p, pool, oid, off, length)
	}
	serving, err := g.servingOSD(p, pool, oid)
	if err != nil {
		g.noteOp(0)
		return nil, err
	}
	key := store.Key{Pool: pool.ID, OID: oid}
	p.Sleep(g.c.cost.NetLatency) // request
	serving.host.cpu.Use(p, g.c.cost.OpOverhead)
	// Locating a chunk object on the indexed pool walks the fingerprint
	// index before the data read.
	g.fpProbe(p, pool, oid, serving)
	data, err := serving.store.Read(key, off, length)
	if err != nil {
		g.noteOp(0)
		return nil, err
	}
	serving.diskRead(p, g.cls, g.c.cost, len(data))
	g.c.netSend(p, g.cls, serving.host.nicSched, len(data))
	g.c.netSend(p, g.cls, g.nic, len(data))
	g.noteOp(len(data))
	return data, nil
}

// timeoutWait charges the request timeout an op pays before concluding its
// target OSD is dead.
func (g *Gateway) timeoutWait(p *sim.Proc) {
	p.Sleep(g.c.reqTimeout)
	g.c.reg.Counter("rados_requests_timed_out_total").Inc()
}

// servingOSD selects the OSD that serves a read-type op on a replicated
// object. The acting primary serves when it is alive and holds the object;
// if the primary's process is dead (crashed but not yet marked down) the op
// pays the request timeout and fails over to a surviving replica — the
// degraded-read path. During the post-remap window an object may not have
// reached the new acting set yet, in which case any live in-map holder of
// the current copy serves. Only if the sole copies sit on dead OSDs does
// the op fail, with the retryable ErrOSDDown.
func (g *Gateway) servingOSD(p *sim.Proc, pool *Pool, oid string) (*osd, error) {
	acting := g.c.acting(pool, g.c.PGOf(pool, oid))
	if len(acting) == 0 {
		return nil, ErrNoOSD
	}
	key := store.Key{Pool: pool.ID, OID: oid}
	if acting[0].alive && acting[0].store.Exists(key) {
		return acting[0], nil
	}
	if !acting[0].alive {
		g.timeoutWait(p) // request to the dead primary times out first
	}
	for _, o := range acting[1:] {
		if o.alive && o.store.Exists(key) {
			g.c.reg.Counter("rados_degraded_reads_total").Inc()
			return o, nil
		}
	}
	// Post-remap window: recovery has not yet copied the object into the new
	// acting set, but a live in-map OSD still holds the current copy.
	if o := g.c.liveInMapHolder(key, nil); o != nil {
		g.c.reg.Counter("rados_degraded_reads_total").Inc()
		return o, nil
	}
	// No live copy. If a dead OSD holds one that is not known-stale, the
	// object will come back when that OSD restarts or recovery rebuilds it:
	// retryable, not not-found.
	if g.c.recoverableOnDead(key, g.c.allOSDs()) {
		return nil, ErrOSDDown
	}
	if acting[0].alive {
		return acting[0], nil // absent object: primary reports not-found
	}
	for _, o := range acting[1:] {
		if o.alive {
			return o, nil
		}
	}
	return nil, ErrOSDDown
}

// Stat returns the object size.
func (g *Gateway) Stat(p *sim.Proc, pool *Pool, oid string) (int64, error) {
	primary, err := g.metaOp(p, pool, oid)
	if err != nil {
		return 0, err
	}
	if pool.Red.Kind == Erasure {
		if !g.ecExists(pool, oid) {
			return 0, ErrNotFound
		}
		return g.ecLen(pool, oid), nil
	}
	_ = primary
	return primary.store.Size(store.Key{Pool: pool.ID, OID: oid})
}

// Exists reports object existence.
func (g *Gateway) Exists(p *sim.Proc, pool *Pool, oid string) (bool, error) {
	primary, err := g.metaOp(p, pool, oid)
	if err != nil {
		return false, err
	}
	if pool.Red.Kind == Erasure {
		return g.ecExists(pool, oid), nil
	}
	return primary.store.Exists(store.Key{Pool: pool.ID, OID: oid}), nil
}

// GetXattr reads an extended attribute.
func (g *Gateway) GetXattr(p *sim.Proc, pool *Pool, oid, name string) ([]byte, error) {
	primary, err := g.metaOp(p, pool, oid)
	if err != nil {
		return nil, err
	}
	if pool.Red.Kind == Erasure {
		return ecView{g: g, p: p, pool: pool, oid: oid}.GetXattr(name)
	}
	return primary.store.GetXattr(store.Key{Pool: pool.ID, OID: oid}, name)
}

// SetXattr writes an extended attribute (replicated like any mutation).
func (g *Gateway) SetXattr(p *sim.Proc, pool *Pool, oid, name string, value []byte) error {
	return g.Mutate(p, pool, oid, func(View) (*store.Txn, error) {
		return store.NewTxn().SetXattr(name, value), nil
	})
}

// OmapGet reads one omap value.
func (g *Gateway) OmapGet(p *sim.Proc, pool *Pool, oid, key string) ([]byte, error) {
	primary, err := g.metaOp(p, pool, oid)
	if err != nil {
		return nil, err
	}
	if pool.Red.Kind == Erasure {
		return ecView{g: g, p: p, pool: pool, oid: oid}.OmapGet(key)
	}
	return primary.store.OmapGet(store.Key{Pool: pool.ID, OID: oid}, key)
}

// OmapList lists up to max omap keys (all if max<=0).
func (g *Gateway) OmapList(p *sim.Proc, pool *Pool, oid string, max int) ([]string, error) {
	primary, err := g.metaOp(p, pool, oid)
	if err != nil {
		return nil, err
	}
	if pool.Red.Kind == Erasure {
		return ecView{g: g, p: p, pool: pool, oid: oid}.OmapList(max)
	}
	return primary.store.OmapList(store.Key{Pool: pool.ID, OID: oid}, max)
}

// OmapSet writes omap entries.
func (g *Gateway) OmapSet(p *sim.Proc, pool *Pool, oid string, kv map[string][]byte) error {
	return g.Mutate(p, pool, oid, func(View) (*store.Txn, error) {
		txn := store.NewTxn().Create()
		for k, v := range kv {
			txn.OmapSet(k, v)
		}
		return txn, nil
	})
}

// Mutate runs a read-modify-write on one object under the PG lock: the
// closure sees the current state and returns the transaction to apply. This
// is the analog of a Ceph object-class operation and is what the dedup layer
// uses for atomic reference counting on chunk objects (§4.4.1 steps 3–5).
// The request itself is treated as small; use MutateWithPayload when the
// caller ships bulk data with the operation.
func (g *Gateway) Mutate(p *sim.Proc, pool *Pool, oid string, fn MutateFn) error {
	return g.MutateWithPayload(p, pool, oid, 0, fn)
}

// MutateWithPayload is Mutate for operations that carry payload bytes from
// the caller (e.g. a write plus metadata update, or a chunk create-or-ref):
// the payload is charged on the caller's outbound link and the primary's
// inbound link. Replicas always receive the full resulting transaction.
func (g *Gateway) MutateWithPayload(p *sim.Proc, pool *Pool, oid string, payload int, fn MutateFn) error {
	oc := g.startOp(p, "rados.mutate", &g.c.ops.mutate, pool, oid, payload)
	err := g.mutateWithPayload(p, pool, oid, payload, fn)
	g.finishOp(p, oc, err)
	return err
}

func (g *Gateway) mutateWithPayload(p *sim.Proc, pool *Pool, oid string, payload int, fn MutateFn) error {
	if pool.Red.Kind == Erasure {
		return g.ecMutate(p, pool, oid, payload, fn)
	}
	primary, _, unlock, err := g.prepare(p, pool, oid, true)
	if err != nil {
		return err
	}
	defer unlock()
	key := store.Key{Pool: pool.ID, OID: oid}
	// Request (with any bulk payload) crosses the wire.
	if payload > 0 {
		g.c.netSend(p, g.cls, g.nic, payload)
		g.c.netSend(p, g.cls, primary.host.nicSched, payload)
	} else {
		p.Sleep(g.c.cost.NetLatency)
	}
	primary.host.cpu.Use(p, g.c.cost.OpOverhead)
	// A mutation on the indexed pool (chunk create-or-ref, refcount update)
	// first resolves the fingerprint through the index.
	g.fpProbe(p, pool, oid, primary)
	txn, err := fn(replView{st: primary.store, k: key})
	if err != nil {
		g.noteOp(0)
		return err
	}
	if txn == nil || txn.Empty() {
		p.Sleep(g.c.cost.NetLatency) // ack
		g.noteOp(0)
		return nil
	}
	if err := g.replicate(p, pool, oid, txn, txn.Bytes()); err != nil {
		return err
	}
	g.noteOp(max(payload, txn.Bytes()))
	return nil
}

// --- Internal plumbing -------------------------------------------------------

// prepare resolves placement and (optionally) acquires the PG lock. With
// lock set (the mutation path) it additionally verifies the acting primary
// is alive — a mutation against a dead primary pays the request timeout and
// fails with the retryable ErrOSDDown — and pulls the object to a
// freshly-remapped primary that does not hold it yet.
func (g *Gateway) prepare(p *sim.Proc, pool *Pool, oid string, lock bool) (primary *osd, pg crush.PG, unlock func(), err error) {
	pg = g.c.PGOf(pool, oid)
	acting := g.c.acting(pool, pg)
	if len(acting) == 0 {
		return nil, pg, nil, ErrNoOSD
	}
	unlock = func() {}
	if lock {
		l := g.c.pgLock(pg)
		l.Acquire(p)
		unlock = func() { l.Release(p) }
		if !acting[0].alive {
			g.timeoutWait(p)
			unlock()
			return nil, pg, nil, ErrOSDDown
		}
		g.pullOnDemand(p, pool, oid, acting[0])
	}
	return acting[0], pg, unlock, nil
}

// pullOnDemand restores an object at a freshly-remapped primary before a
// mutation runs against it: if the primary lacks the object but another
// live in-map OSD still holds the current copy (the PG moved and Recover
// has not caught up yet), the primary pulls it first — Ceph's
// recover-on-demand for ops hitting a degraded object. Without this, a
// partial write or chunk-map update at the new primary would silently
// recreate the object from nothing. Caller holds the PG lock.
func (g *Gateway) pullOnDemand(p *sim.Proc, pool *Pool, oid string, primary *osd) {
	key := store.Key{Pool: pool.ID, OID: oid}
	if primary.store.Exists(key) {
		return
	}
	src := g.c.liveInMapHolder(key, primary)
	if src == nil {
		return
	}
	snap, err := src.store.Snapshot(key)
	if err != nil {
		return
	}
	n := objBytes(snap)
	cost := g.c.cost
	src.diskRead(p, g.cls, cost, n)
	g.c.netSend(p, g.cls, primary.host.nicSched, n)
	primary.host.cpu.Use(p, cost.OpOverhead)
	primary.store.Install(key, snap)
	g.c.fpNote(p, primary, key, false, true)
	primary.diskWrite(p, g.cls, cost, n)
	g.c.reg.Counter("rados_ondemand_pulls_total").Inc()
}

// applyTxn transfers the payload to the primary and replicates the txn.
func (g *Gateway) applyTxn(p *sim.Proc, pool *Pool, oid string, txn *store.Txn, payload int) error {
	primary, _, unlock, err := g.prepare(p, pool, oid, true)
	if err != nil {
		return err
	}
	defer unlock()
	// Client -> primary transfer: the payload serializes out of the client
	// link and into the primary host's link.
	g.c.netSend(p, g.cls, g.nic, payload)
	g.c.netSend(p, g.cls, primary.host.nicSched, payload)
	return g.replicate(p, pool, oid, txn, payload)
}

// fanout describes one replica/shard fan-out: the shared shape behind every
// replicated and EC mutation in the I/O path. Targets failing the ok
// predicate are skipped (optionally counted as one degraded write);
// preApplied lists OSDs that already hold the mutation (the primary).
type fanout struct {
	name       string // child proc name
	span       string // per-child trace span ("" = untraced children)
	pool       *Pool
	pg         crush.PG
	key        store.Key
	bytes      int // payload bytes recorded on child spans
	targets    []*osd
	preApplied []*osd
	ok         func(i int, o *osd) bool
	degraded   bool // count skipped targets as a degraded write
	extra      []*sim.Signal
	do         func(q *sim.Proc, i int, o *osd)
}

// runFanout executes a fan-out: one concurrent child per eligible target
// plus any extra signals, a single wait for all acks, degraded-write
// accounting, missed-write reconciliation for the key, and the final ack
// latency back to the client. Every fanned-out mutation goes through here,
// so the QoS-classed submit path of replica/shard work changes in one place.
func (g *Gateway) runFanout(p *sim.Proc, f fanout) {
	// On a clean cluster (no crash/replace ever, CRUSH epoch unmoved) the
	// reconciliation scan provably has no work, so the applied-set map is
	// not even built. The decision is made here, before any child runs:
	// spawning is instantaneous in virtual time, so every target passing ok
	// below applies the mutation even if it crashes mid-fan-out, and a
	// cluster that is clean at this instant holds no stray copy of f.key.
	reconcile := g.c.reconcileNeeded()
	var applied map[int]bool
	if reconcile {
		applied = make(map[int]bool, len(f.targets)+len(f.preApplied))
		for _, o := range f.preApplied {
			applied[o.id] = true
		}
	}
	skipped := false
	sigs := make([]*sim.Signal, 0, len(f.targets)+len(f.extra))
	sigs = append(sigs, f.extra...)
	for i, o := range f.targets {
		if f.ok != nil && !f.ok(i, o) {
			skipped = true
			continue
		}
		if reconcile {
			applied[o.id] = true
		}
		i, o := i, o
		sigs = append(sigs, p.Go(f.name, func(q *sim.Proc) {
			if f.span != "" {
				if sp := g.c.sink.Start(q, f.span); sp != nil {
					sp.SetOp(f.pool.Name, f.pg.String(), int64(f.bytes)).
						SetClass(g.cls.String())
					defer sp.Finish(q)
				}
			}
			f.do(q, i, o)
		}))
	}
	sim.WaitAll(p, sigs...)
	if skipped && f.degraded {
		g.c.reg.Counter("rados_degraded_writes_total").Inc()
	}
	if reconcile {
		g.c.reconcileMissed(f.key, applied)
	}
	p.Sleep(g.c.cost.NetLatency) // ack to client
}

// replicate applies txn at the primary and fans out to replicas, returning
// after all replicas ack (primary-copy replication). Caller holds the PG
// lock. Crashed acting members are skipped (a degraded write) and their
// missed update recorded so they re-sync before serving again; a replica
// that rejoined after missing earlier updates is healed with a full copy of
// the primary's post-txn state instead of applying a transaction its stale
// object cannot absorb.
func (g *Gateway) replicate(p *sim.Proc, pool *Pool, oid string, txn *store.Txn, payload int) error {
	pg := g.c.PGOf(pool, oid)
	acting := g.c.acting(pool, pg)
	if len(acting) == 0 {
		return ErrNoOSD
	}
	primary := acting[0]
	if !primary.alive {
		g.timeoutWait(p)
		return ErrOSDDown
	}
	key := store.Key{Pool: pool.ID, OID: oid}
	cost := g.c.cost

	existedBefore := primary.store.Exists(key)
	primary.host.cpu.Use(p, cost.OpOverhead+cost.Checksum(payload))
	if err := primary.store.Apply(key, txn); err != nil {
		return err
	}
	// Keep the fingerprint index in lockstep with the store transition
	// (created → WAL insert, removed → tombstone), charged to this op.
	g.c.fpNote(p, primary, key, existedBefore, primary.store.Exists(key))
	journal := p.Go("journal", func(q *sim.Proc) {
		jsp := g.c.sink.Start(q, "rados.journal")
		if jsp != nil {
			jsp.SetOp(pool.Name, pg.String(), int64(txn.Bytes())).SetClass(g.cls.String())
		}
		primary.diskWrite(q, g.cls, cost, txn.Bytes())
		jsp.Finish(q)
	})
	g.runFanout(p, fanout{
		name: "replica", span: "rados.replica",
		pool: pool, pg: pg, key: key, bytes: payload,
		targets:    acting[1:],
		preApplied: []*osd{primary},
		ok:         func(_ int, o *osd) bool { return o.alive },
		degraded:   true,
		extra:      []*sim.Signal{journal},
		do: func(q *sim.Proc, _ int, r *osd) {
			g.c.netSend(q, g.cls, r.host.nicSched, payload)
			r.host.cpu.Use(q, cost.OpOverhead)
			rExisted := r.store.Exists(key)
			if existedBefore && !rExisted {
				// The replica missed earlier updates (its stale copy was
				// wiped on restart): heal with a full copy of the primary's
				// post-txn state. If the txn deleted the object the snapshot
				// fails and the plain apply below is a safe no-op delete.
				if snap, err := primary.store.Snapshot(key); err == nil {
					n := objBytes(snap)
					g.c.netSend(q, g.cls, r.host.nicSched, n)
					r.store.Install(key, snap)
					g.c.fpNote(q, r, key, rExisted, true)
					r.diskWrite(q, g.cls, cost, n)
					g.c.reg.Counter("rados_replica_heals_total").Inc()
					return
				}
			}
			if err := r.store.Apply(key, txn); err != nil {
				// The replica's copy diverged from the primary: quarantine it
				// instead of killing the process. The copy is dropped so no
				// degraded read can serve it, the miss is recorded so the
				// replica re-syncs before serving after a restart, and a
				// repair scrub restores the redundancy from the primary.
				g.c.reg.Counter("rados_replica_diverged_total").Inc()
				_ = r.store.Apply(key, store.NewTxn().Delete())
				g.c.fpNote(q, r, key, rExisted, false)
				g.c.noteMissed(r.id, key)
				r.diskWrite(q, g.cls, cost, 0)
				return
			}
			g.c.fpNote(q, r, key, rExisted, r.store.Exists(key))
			r.diskWrite(q, g.cls, cost, txn.Bytes())
		},
	})
	return nil
}

// PeekXattr reads an xattr from the acting primary without charging a
// separate round trip. It models a server-side sub-step of an enclosing
// operation (e.g. the dedup read path's chunk-map lookup, §4.5 read step 3,
// which the primary performs while handling the read) — the enclosing op's
// OpOverhead covers it. When the primary is dead the xattr is served from a
// surviving holder; untimed, because the enclosing op already paid the
// failover timeout when it selected its serving OSD.
func (g *Gateway) PeekXattr(pool *Pool, oid, name string) ([]byte, error) {
	acting := g.c.acting(pool, g.c.PGOf(pool, oid))
	if len(acting) == 0 {
		return nil, ErrNoOSD
	}
	key := store.Key{Pool: pool.ID, OID: oid}
	for _, o := range acting {
		if o.alive && o.store.Exists(key) {
			return o.store.GetXattr(key, name)
		}
	}
	if o := g.c.liveInMapHolder(key, nil); o != nil {
		return o.store.GetXattr(key, name)
	}
	for _, o := range acting {
		if o.alive {
			return o.store.GetXattr(key, name) // absent object: not-found
		}
	}
	return nil, ErrOSDDown
}

// ClientXfer charges the client-side link for n bytes delivered to this
// gateway — used by layered services (e.g. dedup read redirection) whose
// final hop is proxied through a storage node back to the client.
func (g *Gateway) ClientXfer(p *sim.Proc, n int) {
	g.c.netSend(p, g.cls, g.nic, n)
}

// PrimaryHost returns the host of the acting primary for an object — where
// server-side dedup logic (redirection, background flush) runs.
func (c *Cluster) PrimaryHost(pool *Pool, oid string) (string, error) {
	acting := c.acting(pool, c.PGOf(pool, oid))
	if len(acting) == 0 {
		return "", ErrNoOSD
	}
	return acting[0].host.name, nil
}

// UseHostCPU charges d of CPU work on a host's cores (e.g. fingerprinting
// during background deduplication).
func (c *Cluster) UseHostCPU(p *sim.Proc, hostName string, d time.Duration) error {
	h, ok := c.hosts[hostName]
	if !ok {
		return fmt.Errorf("rados: unknown host %q", hostName)
	}
	h.cpu.Use(p, d)
	return nil
}

// metaOp charges the fixed cost of a small metadata read at the OSD serving
// the object (the primary, or a surviving replica when it is dead).
func (g *Gateway) metaOp(p *sim.Proc, pool *Pool, oid string) (*osd, error) {
	serving, err := g.servingOSD(p, pool, oid)
	if err != nil {
		return nil, err
	}
	p.Sleep(g.c.cost.NetLatency)
	serving.host.cpu.Use(p, g.c.cost.OpOverhead)
	serving.diskRead(p, g.cls, g.c.cost, 512)
	// On the fingerprint-indexed pool the existence answer comes from the
	// OSD's log-structured index, whose probe cost is charged here.
	g.fpProbe(p, pool, oid, serving)
	p.Sleep(g.c.cost.NetLatency)
	return serving, nil
}
