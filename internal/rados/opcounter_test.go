package rados

import (
	"testing"
	"time"

	"dedupstore/internal/sim"
	"dedupstore/internal/simcost"
	"dedupstore/internal/store"
)

func TestOpCounterTotals(t *testing.T) {
	eng := sim.New(1)
	oc := NewOpCounter(eng)
	for i := 0; i < 5; i++ {
		oc.Note(100)
	}
	ops, bytes := oc.Totals()
	if ops != 5 || bytes != 500 {
		t.Fatalf("totals = %d, %d", ops, bytes)
	}
}

func TestOpCounterSlidingWindow(t *testing.T) {
	eng := sim.New(1)
	oc := NewOpCounter(eng)
	eng.Go("driver", func(p *sim.Proc) {
		// 100 ops in the first second.
		for i := 0; i < 100; i++ {
			oc.Note(1000)
			p.Sleep(10 * time.Millisecond)
		}
		if got := oc.RecentIOPS(); got < 80 || got > 120 {
			t.Errorf("recent IOPS = %v, want ~100", got)
		}
		if got := oc.RecentThroughput(); got < 80e3 || got > 120e3 {
			t.Errorf("recent throughput = %v, want ~100KB/s", got)
		}
		// Go quiet for two seconds: the window must drain to zero.
		p.Sleep(2 * time.Second)
		if got := oc.RecentIOPS(); got != 0 {
			t.Errorf("idle IOPS = %v, want 0", got)
		}
	})
	eng.Run()
}

func TestOpCounterBucketReuse(t *testing.T) {
	eng := sim.New(1)
	oc := NewOpCounter(eng)
	eng.Go("driver", func(p *sim.Proc) {
		oc.Note(1)
		p.Sleep(5 * time.Second) // far past the ring
		oc.Note(1)
		// Only the fresh op should be visible.
		if got := oc.RecentIOPS(); got > 2 {
			t.Errorf("stale bucket leaked: IOPS = %v", got)
		}
	})
	eng.Run()
}

func TestECWidePool(t *testing.T) {
	// EC 4+2 over 6+ OSDs: wider-than-paper configuration.
	eng := sim.New(2)
	c := NewTestbed(eng, defaultCost(), 6, 2)
	pool, err := c.CreatePool(PoolConfig{Name: "wide", PGNum: 32, Redundancy: ErasureKM(4, 2)})
	if err != nil {
		t.Fatal(err)
	}
	gw := c.NewGateway("cl")
	data := make([]byte, 100000)
	for i := range data {
		data[i] = byte(i * 7)
	}
	eng.Go("t", func(p *sim.Proc) {
		if err := gw.WriteFull(p, pool, "obj", data); err != nil {
			t.Error(err)
			return
		}
		got, err := gw.Read(p, pool, "obj", 0, -1)
		if err != nil || len(got) != len(data) {
			t.Errorf("read: %v", err)
			return
		}
		for i := range got {
			if got[i] != data[i] {
				t.Errorf("byte %d mismatch", i)
				return
			}
		}
	})
	eng.Run()
	// Two failures tolerated.
	holders := 0
	for _, id := range c.OSDs() {
		st, _ := c.OSDStore(id)
		if st.Exists(storeKeyFor(pool, "obj")) {
			holders++
		}
	}
	if holders != 6 {
		t.Fatalf("shards on %d OSDs, want 6", holders)
	}
	failed := 0
	for _, id := range c.OSDs() {
		st, _ := c.OSDStore(id)
		if st.Exists(storeKeyFor(pool, "obj")) && failed < 2 {
			c.Map().SetUp(id, false)
			failed++
		}
	}
	eng.Go("t2", func(p *sim.Proc) {
		got, err := gw.Read(p, pool, "obj", 40000, 20000)
		if err != nil {
			t.Errorf("degraded read with 2 failures: %v", err)
			return
		}
		for i := range got {
			if got[i] != data[40000+i] {
				t.Error("degraded read data mismatch")
				return
			}
		}
	})
	eng.Run()
}

func defaultCost() simcost.Params { return simcost.Default() }

func storeKeyFor(pool *Pool, oid string) store.Key { return store.Key{Pool: pool.ID, OID: oid} }
