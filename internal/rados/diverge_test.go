package rados

import (
	"bytes"
	"errors"
	"testing"

	"dedupstore/internal/sim"
	"dedupstore/internal/store"
)

// Regression test: a replica whose local apply fails (its copy diverged from
// the primary, e.g. a missed base write) must not kill the simulation. The
// write succeeds on the primary, the divergence is recorded — counter plus a
// missed-write mark — the stale copy is quarantined, and a repair scrub
// restores full redundancy.
func TestDivergedReplicaApplyIsQuarantinedAndRepaired(t *testing.T) {
	e := newEnv(t)
	data := bytes.Repeat([]byte{0x5A}, 4096)
	e.run(t, func(p *sim.Proc) {
		if err := e.gw.WriteFull(p, e.rep, "obj", data); err != nil {
			e.fail(err)
		}
	})

	// Arm the fault on a non-primary holder: its next apply fails as a
	// diverged overwrite would.
	primary := e.primaryID(e.rep, "obj")
	key := store.Key{Pool: e.rep.ID, OID: "obj"}
	replica := -1
	for _, id := range e.c.OSDs() {
		st, _ := e.c.OSDStore(id)
		if id != primary && st.Exists(key) {
			replica = id
			break
		}
	}
	if replica < 0 {
		t.Fatal("no replica holder found")
	}
	repStore, _ := e.c.OSDStore(replica)
	repStore.FailApplies(1, errors.New("replica diverged"))

	update := bytes.Repeat([]byte{0xC3}, 4096)
	e.run(t, func(p *sim.Proc) {
		if err := e.gw.WriteFull(p, e.rep, "obj", update); err != nil {
			e.fail(err)
		}
		// The op acked with the primary's copy intact.
		got, err := e.gw.Read(p, e.rep, "obj", 0, -1)
		if err != nil || !bytes.Equal(got, update) {
			t.Errorf("read after diverged apply: %v (match=%v)", err, bytes.Equal(got, update))
		}
	})
	if n := e.c.Metrics().Counter("rados_replica_diverged_total").Value(); n != 1 {
		t.Errorf("rados_replica_diverged_total = %d, want 1", n)
	}
	if repStore.Exists(key) {
		t.Error("diverged copy not quarantined: replica still holds the object")
	}

	// A repair scrub re-replicates from the primary.
	var stats ScrubStats
	e.run(t, func(p *sim.Proc) { stats = e.c.Scrub(p, e.rep, true) })
	if stats.Repaired == 0 {
		t.Fatalf("repair scrub fixed nothing: %+v", stats)
	}
	if !repStore.Exists(key) {
		t.Error("repair did not restore the replica copy")
	}
	got, err := repStore.Read(key, 0, -1)
	if err != nil || !bytes.Equal(got, update) {
		t.Errorf("restored replica content mismatch (err=%v)", err)
	}
}
