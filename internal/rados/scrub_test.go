package rados

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"dedupstore/internal/sim"
	"dedupstore/internal/store"
)

func TestScrubCleanCluster(t *testing.T) {
	e := newEnv(t)
	e.run(t, func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			e.gw.WriteFull(p, e.rep, fmt.Sprintf("o%d", i), bytes.Repeat([]byte{byte(i)}, 2048))
		}
	})
	var stats ScrubStats
	e.run(t, func(p *sim.Proc) { stats = e.c.Scrub(p, e.rep, false) })
	if !stats.Clean() {
		t.Fatalf("clean cluster scrub found: %v", stats.Errors)
	}
	if stats.Objects != 10 || stats.BytesScanned == 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestScrubDetectsReplicaBitRot(t *testing.T) {
	e := newEnv(t)
	e.run(t, func(p *sim.Proc) {
		e.gw.WriteFull(p, e.rep, "victim", bytes.Repeat([]byte{7}, 4096))
	})
	// Corrupt the non-primary replica.
	pg := e.c.PGOf(e.rep, "victim")
	acting := e.c.Map().ActingSet(pg, 2)
	key := store.Key{Pool: e.rep.ID, OID: "victim"}
	if err := e.c.CorruptForTest(acting[1], key, 100); err != nil {
		t.Fatal(err)
	}
	var stats ScrubStats
	e.run(t, func(p *sim.Proc) { stats = e.c.Scrub(p, e.rep, false) })
	if stats.Clean() {
		t.Fatal("scrub missed the corrupted replica")
	}
	if stats.Errors[0].OSD != acting[1] {
		t.Fatalf("blamed osd.%d, corrupted osd.%d", stats.Errors[0].OSD, acting[1])
	}
	// Repair pass fixes it.
	e.run(t, func(p *sim.Proc) { stats = e.c.Scrub(p, e.rep, true) })
	if stats.Repaired != 1 {
		t.Fatalf("repaired = %d", stats.Repaired)
	}
	e.run(t, func(p *sim.Proc) { stats = e.c.Scrub(p, e.rep, false) })
	if !stats.Clean() {
		t.Fatalf("still inconsistent after repair: %v", stats.Errors)
	}
}

func TestScrubDetectsXattrDivergence(t *testing.T) {
	e := newEnv(t)
	e.run(t, func(p *sim.Proc) {
		e.gw.WriteFull(p, e.rep, "obj", []byte("x"))
		e.gw.SetXattr(p, e.rep, "obj", "k", []byte("same"))
	})
	pg := e.c.PGOf(e.rep, "obj")
	acting := e.c.Map().ActingSet(pg, 2)
	st, _ := e.c.OSDStore(acting[1])
	st.Apply(store.Key{Pool: e.rep.ID, OID: "obj"}, store.NewTxn().SetXattr("k", []byte("diff")))
	var stats ScrubStats
	e.run(t, func(p *sim.Proc) { stats = e.c.Scrub(p, e.rep, false) })
	if stats.Clean() {
		t.Fatal("scrub missed xattr divergence")
	}
}

func TestScrubECParity(t *testing.T) {
	e := newEnv(t)
	data := make([]byte, 20000)
	rand.New(rand.NewSource(3)).Read(data)
	e.run(t, func(p *sim.Proc) {
		e.gw.WriteFull(p, e.ecp, "obj", data)
	})
	var stats ScrubStats
	e.run(t, func(p *sim.Proc) { stats = e.c.Scrub(p, e.ecp, false) })
	if !stats.Clean() {
		t.Fatalf("clean EC scrub found: %v", stats.Errors)
	}
	// Corrupt the parity shard (index k = 2).
	key := store.Key{Pool: e.ecp.ID, OID: "obj"}
	var parityOSD = -1
	for _, id := range e.c.OSDs() {
		st, _ := e.c.OSDStore(id)
		if st.Exists(key) {
			if idx := getU64(mustXattr(st, key, xattrECIdx)); idx == 2 {
				parityOSD = id
			}
		}
	}
	if parityOSD < 0 {
		t.Fatal("parity shard not found")
	}
	if err := e.c.CorruptForTest(parityOSD, key, 10); err != nil {
		t.Fatal(err)
	}
	e.run(t, func(p *sim.Proc) { stats = e.c.Scrub(p, e.ecp, false) })
	if stats.Clean() {
		t.Fatal("scrub missed EC parity corruption")
	}
	// Repair rebuilds parity from data.
	e.run(t, func(p *sim.Proc) { stats = e.c.Scrub(p, e.ecp, true) })
	if stats.Repaired == 0 {
		t.Fatal("repair did not rebuild parity")
	}
	e.run(t, func(p *sim.Proc) { stats = e.c.Scrub(p, e.ecp, false) })
	if !stats.Clean() {
		t.Fatalf("EC still inconsistent after repair: %v", stats.Errors)
	}
	// Data still reads back correctly.
	e.run(t, func(p *sim.Proc) {
		got, err := e.gw.Read(p, e.ecp, "obj", 0, -1)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("data corrupted by repair: %v", err)
		}
	})
}

func TestScrubECDegradedReported(t *testing.T) {
	e := newEnv(t)
	e.run(t, func(p *sim.Proc) {
		e.gw.WriteFull(p, e.ecp, "obj", make([]byte, 10000))
	})
	// Fail one shard holder: scrub must flag the degraded object.
	key := store.Key{Pool: e.ecp.ID, OID: "obj"}
	for _, id := range e.c.OSDs() {
		st, _ := e.c.OSDStore(id)
		if st.Exists(key) {
			e.c.Map().SetUp(id, false)
			break
		}
	}
	var stats ScrubStats
	e.run(t, func(p *sim.Proc) { stats = e.c.Scrub(p, e.ecp, false) })
	if stats.Clean() {
		t.Fatal("scrub missed degraded EC object")
	}
}

func TestCorruptForTestValidation(t *testing.T) {
	e := newEnv(t)
	if err := e.c.CorruptForTest(999, store.Key{Pool: 1, OID: "x"}, 0); err == nil {
		t.Fatal("unknown OSD accepted")
	}
	e.run(t, func(p *sim.Proc) { e.gw.WriteFull(p, e.rep, "obj", []byte("ab")) })
	pg := e.c.PGOf(e.rep, "obj")
	acting := e.c.Map().ActingSet(pg, 2)
	if err := e.c.CorruptForTest(acting[0], store.Key{Pool: e.rep.ID, OID: "obj"}, 100); err == nil {
		t.Fatal("out-of-range offset accepted")
	}
}
