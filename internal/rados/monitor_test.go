package rados

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"dedupstore/internal/sim"
	"dedupstore/internal/store"
)

// primaryID returns the acting primary for oid in pool.
func (e *testEnv) primaryID(pool *Pool, oid string) int {
	return e.c.acting(pool, e.c.PGOf(pool, oid))[0].id
}

// runMon is testEnv.run for tests with a monitor attached: the monitor's
// daemon process stays parked when the simulation drains, so exactly one
// live process is expected to remain.
func (e *testEnv) runMon(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	var procErr error
	e.eng.Go("test", func(p *sim.Proc) {
		defer func() {
			if r := recover(); r != nil {
				procErr = fmt.Errorf("panic: %v", r)
			}
		}()
		fn(p)
	})
	if left := e.eng.Run(); left != 1 {
		t.Fatalf("%d processes left, want 1 (the monitor daemon)", left)
	}
	if procErr != nil {
		t.Fatal(procErr)
	}
}

func monCfg() MonitorConfig {
	return MonitorConfig{
		Interval:    100 * time.Millisecond,
		Grace:       500 * time.Millisecond,
		OutAfter:    time.Second,
		AutoRecover: true,
	}
}

// TestMonitorDetectsAfterGrace walks the full failure timeline: a crash is
// invisible until the heartbeat grace expires (not instant), then the OSD is
// marked down, then out, then recovery restores full redundancy.
func TestMonitorDetectsAfterGrace(t *testing.T) {
	e := newEnv(t)
	m := e.c.StartMonitor(monCfg())
	data := bytes.Repeat([]byte{0xAB}, 4096)
	var primary int
	var tCrash sim.Time
	e.runMon(t, func(p *sim.Proc) {
		if err := e.gw.WriteFull(p, e.rep, "obj", data); err != nil {
			e.fail(err)
		}
		primary = e.primaryID(e.rep, "obj")
		if err := e.c.CrashOSD(primary); err != nil {
			e.fail(err)
		}
		tCrash = p.Now()

		// Well inside the grace period: the map must not have reacted yet.
		p.Sleep(300 * time.Millisecond)
		if info, _ := e.c.cmap.Lookup(primary); !info.Up {
			t.Error("osd marked down 300ms after crash, before 500ms grace")
		}

		// Past grace (+ one tick of slack): marked down but still in.
		p.Sleep(400 * time.Millisecond)
		if info, _ := e.c.cmap.Lookup(primary); info.Up {
			t.Error("osd still up 700ms after crash, grace is 500ms")
		} else if !info.In {
			t.Error("osd already out 700ms after crash, out-after is 1s")
		}

		m.WaitSettled(p)
		if info, _ := e.c.cmap.Lookup(primary); info.Up || info.In {
			t.Error("dead osd still up/in after settling")
		}

		// Foreground I/O is fully available again: the old primary is out,
		// reads and writes land on the survivors without errors.
		got, err := e.gw.Read(p, e.rep, "obj", 0, -1)
		if err != nil || !bytes.Equal(got, data) {
			t.Errorf("read after recovery: err=%v", err)
		}
		if err := e.gw.WriteFull(p, e.rep, "obj", data); err != nil {
			t.Errorf("write after recovery: %v", err)
		}
	})

	var down, out, recovered *MonEvent
	for _, ev := range m.Events() {
		ev := ev
		switch {
		case ev.Kind == "down" && ev.OSD == primary && down == nil:
			down = &ev
		case ev.Kind == "out" && ev.OSD == primary && out == nil:
			out = &ev
		case ev.Kind == "recovered":
			recovered = &ev
		}
	}
	if down == nil || out == nil || recovered == nil {
		t.Fatalf("timeline incomplete (down=%v out=%v recovered=%v): %v", down, out, recovered, m.Events())
	}
	cfg := m.Config()
	lat := (down.At - tCrash).Duration()
	if lat < cfg.Grace-cfg.Interval || lat > cfg.Grace+2*cfg.Interval {
		t.Errorf("detection latency %v outside [grace-interval, grace+2*interval] around %v", lat, cfg.Grace)
	}
	if (out.At - down.At).Duration() < cfg.OutAfter {
		t.Errorf("marked out %v after down, want >= %v", (out.At - down.At).Duration(), cfg.OutAfter)
	}
	if e.c.Metrics().Counter("mon_marked_down_total").Value() != 1 {
		t.Error("mon_marked_down_total != 1")
	}
}

// TestMonitorRejoinBeforeGrace: a blip shorter than the grace period never
// touches the map.
func TestMonitorRejoinBeforeGrace(t *testing.T) {
	e := newEnv(t)
	m := e.c.StartMonitor(monCfg())
	e.runMon(t, func(p *sim.Proc) {
		if err := e.c.CrashOSD(5); err != nil {
			e.fail(err)
		}
		p.Sleep(200 * time.Millisecond) // < 500ms grace
		if err := e.c.RestartOSD(5); err != nil {
			e.fail(err)
		}
		m.WaitSettled(p)
	})
	for _, ev := range m.Events() {
		if ev.Kind == "down" || ev.Kind == "out" {
			t.Errorf("short blip caused map change: %v", ev)
		}
	}
	if info, _ := e.c.cmap.Lookup(5); !info.Up || !info.In {
		t.Error("osd.5 not fully in service after rejoin")
	}
}

// TestDegradedReadReplicated: with the primary dead and undetected, a read
// pays the request timeout, then succeeds from a surviving replica.
func TestDegradedReadReplicated(t *testing.T) {
	e := newEnv(t)
	data := bytes.Repeat([]byte{0x5A}, 8192)
	e.run(t, func(p *sim.Proc) {
		if err := e.gw.WriteFull(p, e.rep, "obj", data); err != nil {
			e.fail(err)
		}
		primary := e.primaryID(e.rep, "obj")
		if err := e.c.CrashOSD(primary); err != nil {
			e.fail(err)
		}
		t0 := p.Now()
		got, err := e.gw.Read(p, e.rep, "obj", 0, -1)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("degraded read failed: err=%v", err)
		}
		if elapsed := (p.Now() - t0).Duration(); elapsed < e.c.RequestTimeout() {
			t.Errorf("degraded read took %v, should include the %v request timeout", elapsed, e.c.RequestTimeout())
		}
	})
	if e.c.Metrics().Counter("rados_degraded_reads_total").Value() == 0 {
		t.Error("rados_degraded_reads_total not incremented")
	}
	if e.c.Metrics().Counter("rados_requests_timed_out_total").Value() == 0 {
		t.Error("rados_requests_timed_out_total not incremented")
	}
}

// TestDegradedReadEC: with one shard holder dead, a read reconstructs the
// stripe from the surviving k shards inline.
func TestDegradedReadEC(t *testing.T) {
	e := newEnv(t)
	data := make([]byte, 9000)
	for i := range data {
		data[i] = byte(i * 7)
	}
	e.run(t, func(p *sim.Proc) {
		if err := e.gw.WriteFull(p, e.ecp, "eobj", data); err != nil {
			e.fail(err)
		}
		// Crash a non-primary shard holder so the coordinator survives.
		acting := e.c.acting(e.ecp, e.c.PGOf(e.ecp, "eobj"))
		if err := e.c.CrashOSD(acting[1].id); err != nil {
			e.fail(err)
		}
		got, err := e.gw.Read(p, e.ecp, "eobj", 0, -1)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("degraded EC read failed: err=%v", err)
		}
	})
	if e.c.Metrics().Counter("rados_degraded_reads_total").Value() == 0 {
		t.Error("rados_degraded_reads_total not incremented")
	}
}

// TestWriteFailsFastRetryable: a write to a dead, undetected primary times
// out with a retryable error; once the monitor remaps, the same write
// succeeds.
func TestWriteFailsFastRetryable(t *testing.T) {
	e := newEnv(t)
	m := e.c.StartMonitor(monCfg())
	data := bytes.Repeat([]byte{1}, 4096)
	e.runMon(t, func(p *sim.Proc) {
		if err := e.gw.WriteFull(p, e.rep, "obj", data); err != nil {
			e.fail(err)
		}
		primary := e.primaryID(e.rep, "obj")
		if err := e.c.CrashOSD(primary); err != nil {
			e.fail(err)
		}
		t0 := p.Now()
		err := e.gw.WriteFull(p, e.rep, "obj", data)
		if !IsUnavailable(err) {
			t.Fatalf("write to dead primary: err=%v, want retryable unavailability", err)
		}
		if elapsed := (p.Now() - t0).Duration(); elapsed < e.c.RequestTimeout() {
			t.Errorf("fail-fast write took %v, want >= request timeout %v", elapsed, e.c.RequestTimeout())
		}
		// A client-style retry loop rides out detection and remap.
		deadline := p.Now() + sim.Time(10*time.Second)
		for err != nil && IsUnavailable(err) && p.Now() < deadline {
			p.Sleep(50 * time.Millisecond)
			err = e.gw.WriteFull(p, e.rep, "obj2", data)
		}
		if err != nil {
			t.Fatalf("write never succeeded after remap: %v", err)
		}
		m.WaitSettled(p)
		got, err := e.gw.Read(p, e.rep, "obj2", 0, -1)
		if err != nil || !bytes.Equal(got, data) {
			t.Errorf("post-remap write not readable: err=%v", err)
		}
	})
}

// TestRestartWipesMissedWrites: an OSD that missed updates while dead comes
// back with those objects wiped (no stale reads), and recovery backfills the
// current version.
func TestRestartWipesMissedWrites(t *testing.T) {
	e := newEnv(t)
	oldData := bytes.Repeat([]byte{0x11}, 4096)
	newData := bytes.Repeat([]byte{0x22}, 4096)
	key := store.Key{Pool: e.rep.ID, OID: "obj"}
	e.run(t, func(p *sim.Proc) {
		if err := e.gw.WriteFull(p, e.rep, "obj", oldData); err != nil {
			e.fail(err)
		}
		acting := e.c.acting(e.rep, e.c.PGOf(e.rep, "obj"))
		replica := acting[1].id
		if err := e.c.CrashOSD(replica); err != nil {
			e.fail(err)
		}
		// Degraded write: lands on the primary only, miss noted for replica.
		if err := e.gw.WriteFull(p, e.rep, "obj", newData); err != nil {
			e.fail(err)
		}
		if err := e.c.RestartOSD(replica); err != nil {
			e.fail(err)
		}
		st, _ := e.c.OSDStore(replica)
		if st.Exists(key) {
			t.Error("restarted replica still serves the stale pre-crash copy")
		}
		e.c.Recover(p)
		obj, err := st.Snapshot(key)
		if err != nil {
			t.Fatalf("replica missing object after recovery: %v", err)
		}
		if !bytes.Equal(obj.Data, newData) {
			t.Error("replica recovered stale contents")
		}
		got, err := e.gw.Read(p, e.rep, "obj", 0, -1)
		if err != nil || !bytes.Equal(got, newData) {
			t.Errorf("read after restart+recover: err=%v", err)
		}
	})
	if e.c.Metrics().Counter("rados_degraded_writes_total").Value() == 0 {
		t.Error("rados_degraded_writes_total not incremented")
	}
}

// TestECReplaceOSDRebuildsShards: replacing a failed OSD in an EC pool
// reports pending recovery, and Recover actually rebuilds shards onto it.
func TestECReplaceOSDRebuildsShards(t *testing.T) {
	e := newEnv(t)
	const n = 12
	e.run(t, func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			data := bytes.Repeat([]byte{byte(i + 1)}, 9000)
			if err := e.gw.WriteFull(p, e.ecp, fmt.Sprintf("e%d", i), data); err != nil {
				e.fail(err)
			}
		}
	})
	if err := e.c.FailOSD(7); err != nil {
		t.Fatal(err)
	}
	pending, err := e.c.ReplaceOSD(7)
	if err != nil {
		t.Fatal(err)
	}
	if !pending {
		t.Error("ReplaceOSD reported no pending recovery for an OSD that held shards")
	}
	var stats RecoveryStats
	e.run(t, func(p *sim.Proc) { stats = e.c.Recover(p) })
	if stats.ShardsRebuilt == 0 {
		t.Fatalf("ShardsRebuilt = 0 after replacing an EC shard holder (stats=%+v)", stats)
	}
	if pending := e.c.recoveryPendingFor(7); pending {
		t.Error("recovery still pending after Recover")
	}
	e.run(t, func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			want := bytes.Repeat([]byte{byte(i + 1)}, 9000)
			got, err := e.gw.Read(p, e.ecp, fmt.Sprintf("e%d", i), 0, -1)
			if err != nil || !bytes.Equal(got, want) {
				t.Errorf("object e%d corrupt after rebuild: %v", i, err)
			}
		}
	})
}
