package rados

import (
	"sort"

	"dedupstore/internal/store"
)

// PoolStats summarizes one pool's contents and footprint.
type PoolStats struct {
	Name string
	// Objects is the number of distinct objects in the pool.
	Objects int
	// LogicalBytes counts each object's data once (no redundancy).
	LogicalBytes int64
	// StoredPhysical is the raw data footprint across all replicas/shards,
	// after any node-local compression model.
	StoredPhysical int64
	// StoredMetadata is the xattr/omap/per-object overhead footprint across
	// all replicas/shards.
	StoredMetadata int64
}

// StoredTotal is the complete raw footprint of the pool.
func (ps PoolStats) StoredTotal() int64 { return ps.StoredPhysical + ps.StoredMetadata }

// PoolStats computes statistics for one pool by scanning all OSD stores.
func (c *Cluster) PoolStats(pool *Pool) PoolStats {
	ps := PoolStats{Name: pool.Name}
	logical := make(map[string]int64)
	for _, id := range c.cmap.OSDs() {
		o := c.osds[id]
		u := o.store.PoolUsage(pool.ID)
		ps.StoredPhysical += u.Physical
		ps.StoredMetadata += u.Metadata
		for _, key := range o.store.Keys() {
			if key.Pool != pool.ID {
				continue
			}
			if _, seen := logical[key.OID]; seen {
				continue
			}
			if pool.Red.Kind == Erasure {
				logical[key.OID] = int64(getU64(mustXattr(o.store, key, xattrECLen)))
			} else if n, err := o.store.Size(key); err == nil {
				logical[key.OID] = n
			}
		}
	}
	ps.Objects = len(logical)
	for _, n := range logical {
		ps.LogicalBytes += n
	}
	return ps
}

// ListObjects returns the distinct object IDs in a pool, sorted.
func (c *Cluster) ListObjects(pool *Pool) []string {
	seen := make(map[string]bool)
	for _, id := range c.cmap.OSDs() {
		o := c.osds[id]
		for _, key := range o.store.Keys() {
			if key.Pool == pool.ID {
				seen[key.OID] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for oid := range seen {
		out = append(out, oid)
	}
	sort.Strings(out)
	return out
}

// TotalUsage aggregates raw usage across every OSD store.
func (c *Cluster) TotalUsage() store.Usage {
	var total store.Usage
	for _, id := range c.cmap.OSDs() {
		u := c.osds[id].store.Usage()
		total.Objects += u.Objects
		total.Data += u.Data
		total.Physical += u.Physical
		total.Metadata += u.Metadata
	}
	return total
}
