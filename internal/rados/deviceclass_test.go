package rados

import (
	"fmt"
	"testing"

	"dedupstore/internal/sim"
	"dedupstore/internal/simcost"
	"dedupstore/internal/store"
)

// hybridCluster builds 4 hosts, each with 2 SSD OSDs and 2 HDD OSDs
// (8x slower disks).
func hybridCluster(t *testing.T) (*sim.Engine, *Cluster) {
	t.Helper()
	eng := sim.New(21)
	c := New(eng, simcost.Default())
	id := 0
	for h := 0; h < 4; h++ {
		host := fmt.Sprintf("host%d", h)
		c.AddHost(host, 12)
		for d := 0; d < 2; d++ {
			if err := c.AddOSDClass(id, host, 1.0, "ssd", 1.0); err != nil {
				t.Fatal(err)
			}
			id++
		}
		for d := 0; d < 2; d++ {
			if err := c.AddOSDClass(id, host, 1.0, "hdd", 8.0); err != nil {
				t.Fatal(err)
			}
			id++
		}
	}
	return eng, c
}

func TestPoolDeviceClassPlacement(t *testing.T) {
	eng, c := hybridCluster(t)
	ssdPool, err := c.CreatePool(PoolConfig{Name: "fast", PGNum: 64, Redundancy: ReplicatedN(2), DeviceClass: "ssd"})
	if err != nil {
		t.Fatal(err)
	}
	hddPool, err := c.CreatePool(PoolConfig{Name: "slow", PGNum: 64, Redundancy: ReplicatedN(2), DeviceClass: "hdd"})
	if err != nil {
		t.Fatal(err)
	}
	gw := c.NewGateway("cl")
	eng.Go("w", func(p *sim.Proc) {
		for i := 0; i < 30; i++ {
			if err := gw.WriteFull(p, ssdPool, fmt.Sprintf("f%d", i), make([]byte, 4096)); err != nil {
				t.Error(err)
			}
			if err := gw.WriteFull(p, hddPool, fmt.Sprintf("s%d", i), make([]byte, 4096)); err != nil {
				t.Error(err)
			}
		}
	})
	eng.Run()
	// Every fast-pool object must live on SSD OSDs only, and vice versa.
	for _, id := range c.OSDs() {
		info, _ := c.Map().Lookup(id)
		st, _ := c.OSDStore(id)
		for _, key := range st.Keys() {
			if key.Pool == ssdPool.ID && info.Class != "ssd" {
				t.Fatalf("fast-pool object on %s osd.%d", info.Class, id)
			}
			if key.Pool == hddPool.ID && info.Class != "hdd" {
				t.Fatalf("slow-pool object on %s osd.%d", info.Class, id)
			}
		}
	}
}

func TestDeviceClassLatencyDifference(t *testing.T) {
	eng, c := hybridCluster(t)
	ssdPool, _ := c.CreatePool(PoolConfig{Name: "fast", PGNum: 64, Redundancy: ReplicatedN(2), DeviceClass: "ssd"})
	hddPool, _ := c.CreatePool(PoolConfig{Name: "slow", PGNum: 64, Redundancy: ReplicatedN(2), DeviceClass: "hdd"})
	gw := c.NewGateway("cl")
	var ssdLat, hddLat sim.Time
	eng.Go("w", func(p *sim.Proc) {
		data := make([]byte, 256<<10)
		t0 := p.Now()
		gw.WriteFull(p, ssdPool, "a", data)
		ssdLat = p.Now() - t0
		t0 = p.Now()
		gw.WriteFull(p, hddPool, "a", data)
		hddLat = p.Now() - t0
	})
	eng.Run()
	if hddLat < ssdLat*3 {
		t.Fatalf("hdd write %v not much slower than ssd %v", hddLat, ssdLat)
	}
}

func TestDeviceClassRecoveryStaysInClass(t *testing.T) {
	eng, c := hybridCluster(t)
	ssdPool, _ := c.CreatePool(PoolConfig{Name: "fast", PGNum: 64, Redundancy: ReplicatedN(2), DeviceClass: "ssd"})
	gw := c.NewGateway("cl")
	eng.Go("w", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			gw.WriteFull(p, ssdPool, fmt.Sprintf("o%d", i), make([]byte, 8192))
		}
	})
	eng.Run()
	// Replace one SSD OSD; recovery must re-place on SSDs only.
	if err := c.FailOSD(0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReplaceOSD(0); err != nil {
		t.Fatal(err)
	}
	eng.Go("r", func(p *sim.Proc) { c.Recover(p) })
	eng.Run()
	for i := 0; i < 20; i++ {
		holders := 0
		for _, id := range c.OSDs() {
			st, _ := c.OSDStore(id)
			if st.Exists(store.Key{Pool: ssdPool.ID, OID: fmt.Sprintf("o%d", i)}) {
				info, _ := c.Map().Lookup(id)
				if info.Class != "ssd" {
					t.Fatalf("recovered object o%d onto %s osd.%d", i, info.Class, id)
				}
				holders++
			}
		}
		if holders != 2 {
			t.Fatalf("object o%d on %d OSDs after class-aware recovery", i, holders)
		}
	}
}

func TestMixedPoolSpansAllClasses(t *testing.T) {
	eng, c := hybridCluster(t)
	anyPool, _ := c.CreatePool(PoolConfig{Name: "any", PGNum: 128, Redundancy: ReplicatedN(2)})
	gw := c.NewGateway("cl")
	eng.Go("w", func(p *sim.Proc) {
		for i := 0; i < 100; i++ {
			gw.WriteFull(p, anyPool, fmt.Sprintf("o%d", i), make([]byte, 1024))
		}
	})
	eng.Run()
	classes := map[string]int{}
	for _, id := range c.OSDs() {
		info, _ := c.Map().Lookup(id)
		st, _ := c.OSDStore(id)
		classes[info.Class] += st.PoolUsage(anyPool.ID).Objects
	}
	if classes["ssd"] == 0 || classes["hdd"] == 0 {
		t.Fatalf("unrestricted pool did not span classes: %v", classes)
	}
}
