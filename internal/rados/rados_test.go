package rados

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"dedupstore/internal/sim"
	"dedupstore/internal/simcost"
	"dedupstore/internal/store"
)

// testEnv is the paper's 4-host × 4-OSD testbed plus one replicated and one
// EC 2+1 pool.
type testEnv struct {
	eng  *sim.Engine
	c    *Cluster
	rep  *Pool
	ecp  *Pool
	gw   *Gateway
	fail func(error)
}

func newEnv(t *testing.T) *testEnv {
	t.Helper()
	eng := sim.New(42)
	c := NewTestbed(eng, simcost.Default(), 4, 4)
	rep, err := c.CreatePool(PoolConfig{Name: "rep", PGNum: 64, Redundancy: ReplicatedN(2)})
	if err != nil {
		t.Fatal(err)
	}
	ecp, err := c.CreatePool(PoolConfig{Name: "ecp", PGNum: 64, Redundancy: ErasureKM(2, 1)})
	if err != nil {
		t.Fatal(err)
	}
	return &testEnv{
		eng: eng, c: c, rep: rep, ecp: ecp,
		gw:   c.NewGateway("client0"),
		fail: func(err error) { t.Helper(); t.Fatal(err) },
	}
}

// run executes fn as a sim process and drives the engine to completion.
func (e *testEnv) run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	var procErr error
	e.eng.Go("test", func(p *sim.Proc) {
		defer func() {
			if r := recover(); r != nil {
				procErr = fmt.Errorf("panic: %v", r)
			}
		}()
		fn(p)
	})
	if left := e.eng.Run(); left != 0 {
		t.Fatalf("%d processes left blocked", left)
	}
	if procErr != nil {
		t.Fatal(procErr)
	}
}

func TestPoolCreation(t *testing.T) {
	e := newEnv(t)
	if _, err := e.c.CreatePool(PoolConfig{Name: "rep", Redundancy: ReplicatedN(2)}); err != ErrPoolExists {
		t.Fatalf("duplicate pool err = %v", err)
	}
	if _, err := e.c.CreatePool(PoolConfig{Name: "bad", Redundancy: ReplicatedN(0)}); err == nil {
		t.Fatal("accepted 0 replicas")
	}
	if _, err := e.c.CreatePool(PoolConfig{Name: "bad2"}); err == nil {
		t.Fatal("accepted missing redundancy")
	}
	if _, err := e.c.LookupPool("rep"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.c.LookupPool("nope"); err != ErrPoolNotFound {
		t.Fatalf("err = %v", err)
	}
}

func TestReplicatedWriteReadRoundTrip(t *testing.T) {
	e := newEnv(t)
	e.run(t, func(p *sim.Proc) {
		data := []byte("hello scale-out world")
		if err := e.gw.WriteFull(p, e.rep, "obj1", data); err != nil {
			e.fail(err)
		}
		got, err := e.gw.Read(p, e.rep, "obj1", 0, -1)
		if err != nil {
			e.fail(err)
		}
		if !bytes.Equal(got, data) {
			t.Errorf("got %q want %q", got, data)
		}
		part, err := e.gw.Read(p, e.rep, "obj1", 6, 9)
		if err != nil || string(part) != "scale-out" {
			t.Errorf("partial read %q, %v", part, err)
		}
	})
}

func TestReplicatedReplicaCount(t *testing.T) {
	e := newEnv(t)
	e.run(t, func(p *sim.Proc) {
		if err := e.gw.WriteFull(p, e.rep, "obj1", make([]byte, 1000)); err != nil {
			e.fail(err)
		}
	})
	// Exactly 2 OSD stores must hold the object.
	holders := 0
	for _, id := range e.c.OSDs() {
		st, _ := e.c.OSDStore(id)
		if st.Exists(store.Key{Pool: e.rep.ID, OID: "obj1"}) {
			holders++
		}
	}
	if holders != 2 {
		t.Fatalf("object on %d OSDs, want 2", holders)
	}
}

func TestReplicasOnDistinctHosts(t *testing.T) {
	e := newEnv(t)
	e.run(t, func(p *sim.Proc) {
		for i := 0; i < 50; i++ {
			if err := e.gw.WriteFull(p, e.rep, fmt.Sprintf("o%d", i), []byte("x")); err != nil {
				e.fail(err)
			}
		}
	})
	for i := 0; i < 50; i++ {
		hosts := map[string]bool{}
		for _, id := range e.c.OSDs() {
			st, _ := e.c.OSDStore(id)
			if st.Exists(store.Key{Pool: e.rep.ID, OID: fmt.Sprintf("o%d", i)}) {
				info, _ := e.c.Map().Lookup(id)
				if hosts[info.Host] {
					t.Fatalf("object o%d has two replicas on %s", i, info.Host)
				}
				hosts[info.Host] = true
			}
		}
	}
}

func TestPartialWriteAndStat(t *testing.T) {
	e := newEnv(t)
	e.run(t, func(p *sim.Proc) {
		if err := e.gw.Write(p, e.rep, "obj", 100, []byte("abc")); err != nil {
			e.fail(err)
		}
		n, err := e.gw.Stat(p, e.rep, "obj")
		if err != nil || n != 103 {
			t.Errorf("stat = %d, %v", n, err)
		}
		ok, err := e.gw.Exists(p, e.rep, "obj")
		if err != nil || !ok {
			t.Errorf("exists = %v, %v", ok, err)
		}
	})
}

func TestDeleteReplicated(t *testing.T) {
	e := newEnv(t)
	e.run(t, func(p *sim.Proc) {
		e.gw.WriteFull(p, e.rep, "obj", []byte("x"))
		if err := e.gw.Delete(p, e.rep, "obj"); err != nil {
			e.fail(err)
		}
		if _, err := e.gw.Read(p, e.rep, "obj", 0, -1); err != ErrNotFound {
			t.Errorf("read after delete: %v", err)
		}
	})
	for _, id := range e.c.OSDs() {
		st, _ := e.c.OSDStore(id)
		if st.Exists(store.Key{Pool: e.rep.ID, OID: "obj"}) {
			t.Fatal("replica survived delete")
		}
	}
}

func TestXattrAndOmap(t *testing.T) {
	e := newEnv(t)
	e.run(t, func(p *sim.Proc) {
		e.gw.WriteFull(p, e.rep, "obj", []byte("data"))
		if err := e.gw.SetXattr(p, e.rep, "obj", "chunkmap", []byte{9, 9}); err != nil {
			e.fail(err)
		}
		v, err := e.gw.GetXattr(p, e.rep, "obj", "chunkmap")
		if err != nil || !bytes.Equal(v, []byte{9, 9}) {
			t.Errorf("xattr = %v, %v", v, err)
		}
		if err := e.gw.OmapSet(p, e.rep, "dirtylist", map[string][]byte{"a": []byte("1"), "b": []byte("2")}); err != nil {
			e.fail(err)
		}
		keys, err := e.gw.OmapList(p, e.rep, "dirtylist", 0)
		if err != nil || len(keys) != 2 {
			t.Errorf("omap list = %v, %v", keys, err)
		}
		v, err = e.gw.OmapGet(p, e.rep, "dirtylist", "a")
		if err != nil || string(v) != "1" {
			t.Errorf("omap get = %q, %v", v, err)
		}
	})
}

func TestMutateAtomicRMW(t *testing.T) {
	e := newEnv(t)
	// 20 concurrent increments on a counter xattr must not lose updates
	// (PG lock serializes Mutate).
	e.run(t, func(p *sim.Proc) {
		var sigs []*sim.Signal
		for i := 0; i < 20; i++ {
			sigs = append(sigs, p.Go("inc", func(q *sim.Proc) {
				err := e.gw.Mutate(q, e.rep, "ctr", func(v View) (*store.Txn, error) {
					var n byte
					if cur, err := v.GetXattr("n"); err == nil && len(cur) > 0 {
						n = cur[0]
					}
					return store.NewTxn().Create().SetXattr("n", []byte{n + 1}), nil
				})
				if err != nil {
					e.fail(err)
				}
			}))
		}
		sim.WaitAll(p, sigs...)
		v, err := e.gw.GetXattr(p, e.rep, "ctr", "n")
		if err != nil || len(v) != 1 || v[0] != 20 {
			t.Errorf("counter = %v, %v (lost updates)", v, err)
		}
	})
}

func TestMutateAbortAppliesNothing(t *testing.T) {
	e := newEnv(t)
	e.run(t, func(p *sim.Proc) {
		sentinel := fmt.Errorf("abort")
		err := e.gw.Mutate(p, e.rep, "obj", func(v View) (*store.Txn, error) {
			return store.NewTxn().WriteFull([]byte("should not appear")), sentinel
		})
		if err != sentinel {
			t.Errorf("err = %v", err)
		}
		if ok, _ := e.gw.Exists(p, e.rep, "obj"); ok {
			t.Error("aborted mutate created object")
		}
	})
}

func TestECWriteReadRoundTrip(t *testing.T) {
	e := newEnv(t)
	rng := rand.New(rand.NewSource(5))
	data := make([]byte, 40000) // ~5 stripes at 4K unit, k=2
	rng.Read(data)
	e.run(t, func(p *sim.Proc) {
		if err := e.gw.WriteFull(p, e.ecp, "obj", data); err != nil {
			e.fail(err)
		}
		got, err := e.gw.Read(p, e.ecp, "obj", 0, -1)
		if err != nil {
			e.fail(err)
		}
		if !bytes.Equal(got, data) {
			t.Error("EC round trip mismatch")
		}
		// Range read across stripe boundary.
		part, err := e.gw.Read(p, e.ecp, "obj", 4090, 100)
		if err != nil || !bytes.Equal(part, data[4090:4190]) {
			t.Errorf("EC range read mismatch: %v", err)
		}
		n, err := e.gw.Stat(p, e.ecp, "obj")
		if err != nil || n != int64(len(data)) {
			t.Errorf("EC stat = %d, %v", n, err)
		}
	})
}

func TestECShardPlacement(t *testing.T) {
	e := newEnv(t)
	e.run(t, func(p *sim.Proc) {
		if err := e.gw.WriteFull(p, e.ecp, "obj", make([]byte, 10000)); err != nil {
			e.fail(err)
		}
	})
	holders := 0
	for _, id := range e.c.OSDs() {
		st, _ := e.c.OSDStore(id)
		if st.Exists(store.Key{Pool: e.ecp.ID, OID: "obj"}) {
			holders++
		}
	}
	if holders != 3 { // k=2 + m=1
		t.Fatalf("EC object on %d OSDs, want 3", holders)
	}
}

func TestECPartialWriteRMW(t *testing.T) {
	e := newEnv(t)
	rng := rand.New(rand.NewSource(6))
	data := make([]byte, 20000)
	rng.Read(data)
	e.run(t, func(p *sim.Proc) {
		if err := e.gw.WriteFull(p, e.ecp, "obj", data); err != nil {
			e.fail(err)
		}
		patch := []byte("PATCHED-REGION")
		if err := e.gw.Write(p, e.ecp, "obj", 9000, patch); err != nil {
			e.fail(err)
		}
		copy(data[9000:], patch)
		got, err := e.gw.Read(p, e.ecp, "obj", 0, -1)
		if err != nil || !bytes.Equal(got, data) {
			t.Errorf("EC RMW mismatch: %v", err)
		}
		// Extending partial write.
		if err := e.gw.Write(p, e.ecp, "obj", int64(len(data)), []byte("TAIL")); err != nil {
			e.fail(err)
		}
		n, _ := e.gw.Stat(p, e.ecp, "obj")
		if n != int64(len(data)+4) {
			t.Errorf("size after extend = %d", n)
		}
	})
}

func TestECDegradedRead(t *testing.T) {
	e := newEnv(t)
	rng := rand.New(rand.NewSource(7))
	data := make([]byte, 30000)
	rng.Read(data)
	e.run(t, func(p *sim.Proc) {
		if err := e.gw.WriteFull(p, e.ecp, "obj", data); err != nil {
			e.fail(err)
		}
	})
	// Fail the OSD holding shard 0.
	var failed int = -1
	for _, id := range e.c.OSDs() {
		st, _ := e.c.OSDStore(id)
		key := store.Key{Pool: e.ecp.ID, OID: "obj"}
		if st.Exists(key) {
			if idx := getU64(mustXattr(st, key, xattrECIdx)); idx == 0 {
				failed = id
				break
			}
		}
	}
	if failed < 0 {
		t.Fatal("shard 0 holder not found")
	}
	e.c.Map().SetUp(failed, false)
	e.run(t, func(p *sim.Proc) {
		got, err := e.gw.Read(p, e.ecp, "obj", 0, -1)
		if err != nil {
			e.fail(err)
		}
		if !bytes.Equal(got, data) {
			t.Error("degraded read returned wrong data")
		}
	})
}

func TestECMutateMetadataMirrored(t *testing.T) {
	e := newEnv(t)
	e.run(t, func(p *sim.Proc) {
		e.gw.WriteFull(p, e.ecp, "obj", make([]byte, 5000))
		err := e.gw.Mutate(p, e.ecp, "obj", func(v View) (*store.Txn, error) {
			return store.NewTxn().SetXattr("refcount", []byte{7}).OmapSet("ref.a", []byte("x")), nil
		})
		if err != nil {
			e.fail(err)
		}
		v, err := e.gw.GetXattr(p, e.ecp, "obj", "refcount")
		if err != nil || len(v) != 1 || v[0] != 7 {
			t.Errorf("xattr = %v, %v", v, err)
		}
	})
	// Every shard holder must carry the metadata.
	for _, id := range e.c.OSDs() {
		st, _ := e.c.OSDStore(id)
		key := store.Key{Pool: e.ecp.ID, OID: "obj"}
		if st.Exists(key) {
			if v, err := st.GetXattr(key, "refcount"); err != nil || v[0] != 7 {
				t.Fatalf("shard on osd %d missing mirrored xattr", id)
			}
		}
	}
}

func TestECMutateRejectsPartialDataOps(t *testing.T) {
	e := newEnv(t)
	e.run(t, func(p *sim.Proc) {
		e.gw.WriteFull(p, e.ecp, "obj", make([]byte, 100))
		err := e.gw.Mutate(p, e.ecp, "obj", func(v View) (*store.Txn, error) {
			return store.NewTxn().Write(5, []byte("no")), nil
		})
		if err != ErrECDataOp {
			t.Errorf("err = %v, want ErrECDataOp", err)
		}
	})
}

func TestRecoveryReplicated(t *testing.T) {
	e := newEnv(t)
	const n = 40
	e.run(t, func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			if err := e.gw.WriteFull(p, e.rep, fmt.Sprintf("o%d", i), bytes.Repeat([]byte{byte(i)}, 4096)); err != nil {
				e.fail(err)
			}
		}
	})
	if err := e.c.FailOSD(3); err != nil {
		t.Fatal(err)
	}
	if _, err := e.c.ReplaceOSD(3); err != nil {
		t.Fatal(err)
	}
	var stats RecoveryStats
	e.run(t, func(p *sim.Proc) { stats = e.c.Recover(p) })
	if stats.Duration() <= 0 {
		t.Fatal("recovery took no virtual time")
	}
	// Full redundancy restored: every object on exactly 2 OSDs.
	for i := 0; i < n; i++ {
		holders := 0
		for _, id := range e.c.OSDs() {
			st, _ := e.c.OSDStore(id)
			if st.Exists(store.Key{Pool: e.rep.ID, OID: fmt.Sprintf("o%d", i)}) {
				holders++
			}
		}
		if holders != 2 {
			t.Fatalf("object o%d on %d OSDs after recovery", i, holders)
		}
	}
	// Data still readable and correct.
	e.run(t, func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			got, err := e.gw.Read(p, e.rep, fmt.Sprintf("o%d", i), 0, -1)
			if err != nil || !bytes.Equal(got, bytes.Repeat([]byte{byte(i)}, 4096)) {
				t.Errorf("object o%d corrupt after recovery: %v", i, err)
			}
		}
	})
}

func TestRecoveryEC(t *testing.T) {
	e := newEnv(t)
	rng := rand.New(rand.NewSource(8))
	const n = 20
	contents := make([][]byte, n)
	e.run(t, func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			contents[i] = make([]byte, 9000+i*100)
			rng.Read(contents[i])
			if err := e.gw.WriteFull(p, e.ecp, fmt.Sprintf("e%d", i), contents[i]); err != nil {
				e.fail(err)
			}
		}
	})
	if err := e.c.FailOSD(7); err != nil {
		t.Fatal(err)
	}
	if _, err := e.c.ReplaceOSD(7); err != nil {
		t.Fatal(err)
	}
	var stats RecoveryStats
	e.run(t, func(p *sim.Proc) { stats = e.c.Recover(p) })
	_ = stats
	for i := 0; i < n; i++ {
		holders := 0
		for _, id := range e.c.OSDs() {
			st, _ := e.c.OSDStore(id)
			if st.Exists(store.Key{Pool: e.ecp.ID, OID: fmt.Sprintf("e%d", i)}) {
				holders++
			}
		}
		if holders != 3 {
			t.Fatalf("EC object e%d on %d OSDs after recovery", i, holders)
		}
	}
	e.run(t, func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			got, err := e.gw.Read(p, e.ecp, fmt.Sprintf("e%d", i), 0, -1)
			if err != nil || !bytes.Equal(got, contents[i]) {
				t.Errorf("EC object e%d corrupt after recovery: %v", i, err)
			}
		}
	})
}

func TestRebalanceOnOSDAdd(t *testing.T) {
	e := newEnv(t)
	const n = 60
	e.run(t, func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			e.gw.WriteFull(p, e.rep, fmt.Sprintf("o%d", i), make([]byte, 2048))
		}
	})
	// Add a new host with 4 OSDs; rebalance must move data onto it and
	// remove stale copies.
	e.c.AddHost("host4", 12)
	for d := 0; d < 4; d++ {
		if err := e.c.AddOSD(16+d, "host4", 1.0); err != nil {
			t.Fatal(err)
		}
	}
	e.run(t, func(p *sim.Proc) { e.c.Recover(p) })
	onNew := 0
	for id := 16; id < 20; id++ {
		st, _ := e.c.OSDStore(id)
		onNew += st.Usage().Objects
	}
	if onNew == 0 {
		t.Fatal("no objects moved to the new host")
	}
	// Redundancy must remain exactly 2 everywhere (stale copies removed).
	for i := 0; i < n; i++ {
		holders := 0
		for _, id := range e.c.OSDs() {
			st, _ := e.c.OSDStore(id)
			if st.Exists(store.Key{Pool: e.rep.ID, OID: fmt.Sprintf("o%d", i)}) {
				holders++
			}
		}
		if holders != 2 {
			t.Fatalf("object o%d on %d OSDs after rebalance", i, holders)
		}
	}
}

func TestPoolStatsAndListObjects(t *testing.T) {
	e := newEnv(t)
	e.run(t, func(p *sim.Proc) {
		e.gw.WriteFull(p, e.rep, "a", make([]byte, 1000))
		e.gw.WriteFull(p, e.rep, "b", make([]byte, 500))
	})
	ps := e.c.PoolStats(e.rep)
	if ps.Objects != 2 || ps.LogicalBytes != 1500 {
		t.Fatalf("stats = %+v", ps)
	}
	if ps.StoredPhysical != 3000 { // 2x replication
		t.Fatalf("stored = %d want 3000", ps.StoredPhysical)
	}
	objs := e.c.ListObjects(e.rep)
	if len(objs) != 2 || objs[0] != "a" || objs[1] != "b" {
		t.Fatalf("objects = %v", objs)
	}
}

func TestECStoredOverhead(t *testing.T) {
	e := newEnv(t)
	e.run(t, func(p *sim.Proc) {
		e.gw.WriteFull(p, e.ecp, "a", make([]byte, 80000))
	})
	ps := e.c.PoolStats(e.ecp)
	// EC 2+1: stored ~1.5x logical (stripe padding adds a little).
	ratio := float64(ps.StoredPhysical) / float64(ps.LogicalBytes)
	if ratio < 1.45 || ratio > 1.65 {
		t.Fatalf("EC overhead ratio %.2f, want ~1.5", ratio)
	}
}

func TestNoOSDError(t *testing.T) {
	eng := sim.New(1)
	c := New(eng, simcost.Default())
	pool, _ := c.CreatePool(PoolConfig{Name: "p", Redundancy: ReplicatedN(2)})
	gw := c.NewGateway("cl")
	var err error
	eng.Go("t", func(p *sim.Proc) { err = gw.WriteFull(p, pool, "o", []byte("x")) })
	eng.Run()
	if err != ErrNoOSD {
		t.Fatalf("err = %v, want ErrNoOSD", err)
	}
}

func TestForegroundOpCounting(t *testing.T) {
	e := newEnv(t)
	internal, err := e.c.HostGateway("host0")
	if err != nil {
		t.Fatal(err)
	}
	e.run(t, func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			e.gw.WriteFull(p, e.rep, fmt.Sprintf("fg%d", i), make([]byte, 100))
		}
		for i := 0; i < 5; i++ {
			internal.WriteFull(p, e.rep, fmt.Sprintf("bg%d", i), make([]byte, 100))
		}
	})
	ops, _ := e.c.ForegroundOps().Totals()
	if ops != 10 {
		t.Fatalf("foreground ops = %d, want 10 (internal gateway must not count)", ops)
	}
}

func TestWriteLatencyRealistic(t *testing.T) {
	e := newEnv(t)
	var elapsed sim.Time
	e.run(t, func(p *sim.Proc) {
		start := p.Now()
		e.gw.WriteFull(p, e.rep, "o", make([]byte, 8192))
		elapsed = p.Now() - start
	})
	// One replicated 8K write on an idle cluster: hundreds of µs, under 5ms.
	if elapsed.Duration().Microseconds() < 100 || elapsed.Duration().Milliseconds() > 5 {
		t.Fatalf("8K write latency %v outside sane range", elapsed)
	}
}

func TestDeterministicTiming(t *testing.T) {
	run := func() sim.Time {
		eng := sim.New(9)
		c := NewTestbed(eng, simcost.Default(), 4, 4)
		pool, _ := c.CreatePool(PoolConfig{Name: "p", Redundancy: ReplicatedN(2)})
		gw := c.NewGateway("cl")
		eng.Go("w", func(p *sim.Proc) {
			for i := 0; i < 50; i++ {
				gw.WriteFull(p, pool, fmt.Sprintf("o%d", i), make([]byte, 4096))
			}
		})
		eng.Run()
		return eng.Now()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("timing diverged: %v vs %v", a, b)
	}
}

func TestHostCPUUsageAccounting(t *testing.T) {
	e := newEnv(t)
	e.run(t, func(p *sim.Proc) {
		for i := 0; i < 200; i++ {
			e.gw.WriteFull(p, e.rep, fmt.Sprintf("o%d", i), make([]byte, 32768))
		}
	})
	if u := e.c.HostCPUUsage(); u <= 0 || u > 1 {
		t.Fatalf("cpu usage = %v", u)
	}
}
