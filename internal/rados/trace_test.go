package rados

import (
	"testing"
	"time"

	"dedupstore/internal/metrics"
	"dedupstore/internal/sim"
)

// TestWriteSpanNesting drives one replicated write and checks that the trace
// sink saw the top-level op span plus nested journal/replica child spans
// whose resource breakdowns fold into the parent.
func TestWriteSpanNesting(t *testing.T) {
	e := newEnv(t)
	data := make([]byte, 32<<10)
	e.run(t, func(p *sim.Proc) {
		if err := e.gw.Write(p, e.rep, "obj", 0, data); err != nil {
			e.fail(err)
		}
	})

	spans := e.c.Trace().Recent(64)
	var write *metrics.Span
	var children []metrics.Span
	for i := range spans {
		switch spans[i].Name {
		case "rados.write":
			write = &spans[i]
		case "rados.replica", "rados.journal":
			children = append(children, spans[i])
		}
	}
	if write == nil {
		t.Fatal("no rados.write span recorded")
	}
	if write.Pool != "rep" || write.PG == "" || write.Bytes != int64(len(data)) {
		t.Errorf("write span identity = pool=%q pg=%q bytes=%d", write.Pool, write.PG, write.Bytes)
	}
	if write.Duration() <= 0 {
		t.Error("write span has no duration")
	}
	// Two replicas + journals, each its own child span.
	if len(children) < 2 {
		t.Fatalf("found %d child spans, want >= 2 (replica/journal)", len(children))
	}
	for _, ch := range children {
		if ch.Parent != write.ID {
			t.Errorf("%s span Parent = %d, want write span ID %d", ch.Name, ch.Parent, write.ID)
		}
	}
	// Children's disk service time must have folded into the parent span.
	var parentDisk time.Duration
	for _, r := range write.Resources {
		if len(r.Resource) >= 4 && r.Resource[:4] == "disk" {
			parentDisk += r.Hold
		}
	}
	if parentDisk <= 0 {
		t.Error("write span has no folded disk service time")
	}

	// The gateway counted and timed the op in the cluster registry.
	reg := e.c.Metrics()
	if got := reg.Counter("rados_op_total:rados.write").Value(); got != 1 {
		t.Errorf("rados_op_total:rados.write = %d, want 1", got)
	}
	h := reg.Histogram("rados_op_latency:rados.write")
	if h.Count() != 1 || h.Mean() != write.Duration() {
		t.Errorf("latency histogram n=%d mean=%v, want n=1 mean=%v", h.Count(), h.Mean(), write.Duration())
	}
}

// TestOpCounterEarlyWindow is the regression test for the first-second
// measurement bug: RecentIOPS must average over the virtual time actually
// elapsed, not the full one-second ring, so the §4.4.2 watermark controller
// sees the true foreground rate from the start instead of running
// unthrottled.
func TestOpCounterEarlyWindow(t *testing.T) {
	eng := sim.New(1)
	oc := NewOpCounter(eng)
	eng.Go("driver", func(p *sim.Proc) {
		// 2000 op/s for only 200ms of a fresh run: 400 ops total.
		for i := 0; i < 400; i++ {
			oc.Note(1000)
			p.Sleep(500 * time.Microsecond)
		}
		got := oc.RecentIOPS()
		// The buggy full-window average would report ~400; the true rate
		// is ~2000.
		if got < 1500 {
			t.Errorf("early-window IOPS = %v, want ~2000 (full-window bug reports ~400)", got)
		}
		if got > 2500 {
			t.Errorf("early-window IOPS = %v overshoots ~2000", got)
		}
		if tp := oc.RecentThroughput(); tp < 1.5e6 || tp > 2.5e6 {
			t.Errorf("early-window throughput = %v, want ~2e6 B/s", tp)
		}
	})
	eng.Run()
}
