package rados

import (
	"fmt"
	"reflect"
	"testing"

	"dedupstore/internal/sim"
	"dedupstore/internal/store"
)

func TestPoolStatsReplicated(t *testing.T) {
	e := newEnv(t)
	e.run(t, func(p *sim.Proc) {
		if err := e.gw.WriteFull(p, e.rep, "a", make([]byte, 1000)); err != nil {
			e.fail(err)
		}
		if err := e.gw.WriteFull(p, e.rep, "b", make([]byte, 3000)); err != nil {
			e.fail(err)
		}
	})
	ps := e.c.PoolStats(e.rep)
	if ps.Name != "rep" {
		t.Errorf("Name = %q", ps.Name)
	}
	if ps.Objects != 2 {
		t.Errorf("Objects = %d, want 2", ps.Objects)
	}
	if ps.LogicalBytes != 4000 {
		t.Errorf("LogicalBytes = %d, want 4000 (each object counted once)", ps.LogicalBytes)
	}
	// ×2 replication: the raw footprint covers both replicas.
	if ps.StoredPhysical < ps.LogicalBytes {
		t.Errorf("StoredPhysical = %d < logical %d", ps.StoredPhysical, ps.LogicalBytes)
	}
	if ps.StoredTotal() != ps.StoredPhysical+ps.StoredMetadata {
		t.Error("StoredTotal is not physical+metadata")
	}
}

func TestPoolStatsErasureLogicalBytes(t *testing.T) {
	e := newEnv(t)
	e.run(t, func(p *sim.Proc) {
		if err := e.gw.WriteFull(p, e.ecp, "obj", make([]byte, 6000)); err != nil {
			e.fail(err)
		}
	})
	ps := e.c.PoolStats(e.ecp)
	if ps.Objects != 1 {
		t.Fatalf("Objects = %d, want 1", ps.Objects)
	}
	// EC shards are fractional; logical size must come from the stripe
	// metadata, not a shard's on-disk size.
	if ps.LogicalBytes != 6000 {
		t.Errorf("LogicalBytes = %d, want 6000", ps.LogicalBytes)
	}
}

func TestListObjectsSortedAndPoolScoped(t *testing.T) {
	e := newEnv(t)
	e.run(t, func(p *sim.Proc) {
		for _, oid := range []string{"c", "a", "b"} {
			if err := e.gw.WriteFull(p, e.rep, oid, []byte("x")); err != nil {
				e.fail(err)
			}
		}
		if err := e.gw.WriteFull(p, e.ecp, "other-pool", make([]byte, 100)); err != nil {
			e.fail(err)
		}
	})
	got := e.c.ListObjects(e.rep)
	if want := []string{"a", "b", "c"}; !reflect.DeepEqual(got, want) {
		t.Errorf("ListObjects = %v, want %v", got, want)
	}
}

func TestTotalUsageAggregatesAllOSDs(t *testing.T) {
	e := newEnv(t)
	e.run(t, func(p *sim.Proc) {
		for i := 0; i < 8; i++ {
			if err := e.gw.WriteFull(p, e.rep, fmt.Sprintf("o%d", i), make([]byte, 2048)); err != nil {
				e.fail(err)
			}
		}
	})
	total := e.c.TotalUsage()
	var want store.Usage
	for _, id := range e.c.OSDs() {
		st, ok := e.c.OSDStore(id)
		if !ok {
			t.Fatalf("no store for osd %d", id)
		}
		u := st.Usage()
		want.Objects += u.Objects
		want.Data += u.Data
		want.Physical += u.Physical
		want.Metadata += u.Metadata
	}
	if total != want {
		t.Errorf("TotalUsage = %+v, want per-OSD sum %+v", total, want)
	}
	if total.Objects < 16 { // 8 objects × 2 replicas
		t.Errorf("Objects = %d, want >= 16", total.Objects)
	}
}

// Stats must stay correct when OSDs are down/out: a down OSD's device still
// holds its bytes (footprint), and objects with a surviving replica are
// still listed and counted once.
func TestStatsWithDownAndReplacedOSD(t *testing.T) {
	e := newEnv(t)
	e.run(t, func(p *sim.Proc) {
		if err := e.gw.WriteFull(p, e.rep, "obj", make([]byte, 4096)); err != nil {
			e.fail(err)
		}
	})
	var holder = -1
	for _, id := range e.c.OSDs() {
		st, _ := e.c.OSDStore(id)
		if st.Exists(store.Key{Pool: e.rep.ID, OID: "obj"}) {
			holder = id
			break
		}
	}
	if holder < 0 {
		t.Fatal("no holder found")
	}
	before := e.c.PoolStats(e.rep)
	if err := e.c.FailOSD(holder); err != nil {
		t.Fatal(err)
	}
	down := e.c.PoolStats(e.rep)
	if down.Objects != 1 || down.LogicalBytes != 4096 {
		t.Errorf("down OSD: Objects=%d LogicalBytes=%d, want 1/4096", down.Objects, down.LogicalBytes)
	}
	if down.StoredPhysical != before.StoredPhysical {
		t.Errorf("down OSD changed footprint: %d -> %d (bytes are still on the device)",
			before.StoredPhysical, down.StoredPhysical)
	}
	// Replace with a fresh device: the footprint drops to the survivor's copy.
	if _, err := e.c.ReplaceOSD(holder); err != nil {
		t.Fatal(err)
	}
	replaced := e.c.PoolStats(e.rep)
	if replaced.Objects != 1 {
		t.Errorf("replaced OSD: Objects = %d, want 1 (surviving replica)", replaced.Objects)
	}
	if replaced.StoredPhysical >= before.StoredPhysical {
		t.Errorf("replaced OSD: StoredPhysical = %d, want < %d", replaced.StoredPhysical, before.StoredPhysical)
	}
	if got := e.c.ListObjects(e.rep); len(got) != 1 || got[0] != "obj" {
		t.Errorf("ListObjects = %v, want [obj]", got)
	}
}
