// Package hitset implements time-sliced object-access tracking, an analog of
// Ceph's HitSet used by the paper's cache manager (§5): it "sustainably
// maintains recently accessed object set per second and counts for each
// object access"; an object whose access count over the retained window
// exceeds HitCount is considered hot and kept cached in the metadata pool.
package hitset

import (
	"time"

	"dedupstore/internal/bloom"
	"dedupstore/internal/sim"
)

// Slice is one time window's access set: a bloom filter for membership plus
// an exact count map for the current (open) slice.
type Slice struct {
	Start  sim.Time
	filter *bloom.Filter
}

// Tracker maintains a ring of recent HitSet slices.
type Tracker struct {
	period    time.Duration
	retain    int
	perSlice  uint64
	slices    []*Slice // slices[len-1] is the open one
	lastRoll  sim.Time
	hitCount  int
	totalHits uint64

	decay      float64
	hotDecayed float64
	warmAt     float64
}

// Temperature is a multi-level hotness classification derived from decayed
// hit counts. The boolean Hot() threshold the paper uses (§4.3) is the top
// band; tiering policies additionally distinguish warm (recently but not
// heavily accessed) from cold (idle) objects to pick a redundancy form per
// object (FASTEN-style popularity-driven placement).
type Temperature int

const (
	// TempCold objects have (near) zero recent accesses: candidates for
	// erasure-coded, deduplicated storage.
	TempCold Temperature = iota
	// TempWarm objects see occasional traffic: replicated + deduplicated.
	TempWarm
	// TempHot objects are in the working set: kept replicated and
	// undeduplicated so reads and writes never pay redirection.
	TempHot
)

var tempNames = [...]string{"cold", "warm", "hot"}

func (t Temperature) String() string {
	if t >= TempCold && t <= TempHot {
		return tempNames[t]
	}
	return "invalid"
}

// Temperatures lists the levels from cold to hot.
func Temperatures() []Temperature { return []Temperature{TempCold, TempWarm, TempHot} }

// Config controls HitSet behaviour.
type Config struct {
	// Period is the wall time each slice covers (paper: per second).
	Period time.Duration
	// Retain is how many closed slices are kept for hotness queries.
	Retain int
	// ExpectedPerSlice sizes each slice's bloom filter.
	ExpectedPerSlice uint64
	// HitCount is the hotness threshold: an object seen in at least HitCount
	// of the retained slices is hot.
	HitCount int

	// Decay is the per-slice-age geometric factor for DecayedHits: a hit in
	// the open slice weighs 1, one slice older weighs Decay, two slices
	// older Decay², … Zero or negative selects the default 0.5.
	Decay float64
	// HotDecayed / WarmDecayed are the temperature band thresholds on the
	// decayed hit count: decayed ≥ HotDecayed is hot, ≥ WarmDecayed is
	// warm, below is cold. Zero or negative selects the defaults (1.25 and
	// 0.25: roughly "hit in at least two recent slices" and "hit within the
	// last couple of slices").
	HotDecayed, WarmDecayed float64
}

// DefaultConfig mirrors the paper's setup: per-second HitSets.
func DefaultConfig() Config {
	return Config{Period: time.Second, Retain: 8, ExpectedPerSlice: 4096, HitCount: 2,
		Decay: 0.5, HotDecayed: 1.25, WarmDecayed: 0.25}
}

// New creates a tracker.
func New(cfg Config) *Tracker {
	if cfg.Period <= 0 {
		cfg.Period = time.Second
	}
	if cfg.Retain < 1 {
		cfg.Retain = 1
	}
	if cfg.ExpectedPerSlice == 0 {
		cfg.ExpectedPerSlice = 4096
	}
	if cfg.HitCount < 1 {
		cfg.HitCount = 1
	}
	if cfg.Decay <= 0 {
		cfg.Decay = 0.5
	}
	if cfg.HotDecayed <= 0 {
		cfg.HotDecayed = 1.25
	}
	if cfg.WarmDecayed <= 0 {
		cfg.WarmDecayed = 0.25
	}
	t := &Tracker{period: cfg.Period, retain: cfg.Retain, perSlice: cfg.ExpectedPerSlice, hitCount: cfg.HitCount,
		decay: cfg.Decay, hotDecayed: cfg.HotDecayed, warmAt: cfg.WarmDecayed}
	t.slices = []*Slice{t.newSlice(0)}
	return t
}

func (t *Tracker) newSlice(at sim.Time) *Slice {
	return &Slice{Start: at, filter: bloom.NewWithEstimates(t.perSlice, 0.01)}
}

func (t *Tracker) roll(now sim.Time) {
	steps := int64(now-t.lastRoll) / int64(t.period)
	if steps <= 0 {
		return
	}
	// Long idle gap: every pre-gap slice would be rolled out anyway, so jump
	// straight to the final window instead of materializing (and trimming)
	// one bloom filter per missed interval. The resulting slice starts and
	// lastRoll are exactly what the step-by-step roll would produce.
	if steps > int64(t.retain) {
		t.lastRoll += sim.Time(steps-int64(t.retain)-1) * sim.Time(t.period)
		t.slices = t.slices[:0]
		t.slices = append(t.slices, t.newSlice(t.lastRoll))
	}
	for now-t.lastRoll >= sim.Time(t.period) {
		t.lastRoll += sim.Time(t.period)
		t.slices = append(t.slices, t.newSlice(t.lastRoll))
		if len(t.slices) > t.retain+1 { // +1 for the open slice
			t.slices = t.slices[1:]
		}
	}
}

// Record notes an access to oid at virtual time now.
func (t *Tracker) Record(now sim.Time, oid string) {
	t.roll(now)
	t.slices[len(t.slices)-1].filter.AddString(oid)
	t.totalHits++
}

// Hits returns in how many retained slices oid appears (bloom-approximate).
func (t *Tracker) Hits(now sim.Time, oid string) int {
	t.roll(now)
	n := 0
	for _, s := range t.slices {
		if s.filter.ContainsString(oid) {
			n++
		}
	}
	return n
}

// Hot reports whether oid's recent access count reaches the HitCount
// threshold. Hot objects are kept cached in the metadata pool and skipped by
// the dedup engine until they cool down (paper §3.2, §4.3).
func (t *Tracker) Hot(now sim.Time, oid string) bool {
	return t.Hits(now, oid) >= t.hitCount
}

// DecayedHits returns the recency-weighted access score of oid: each
// retained slice that contains oid contributes Decay^age, where the open
// slice has age 0. A burst of old accesses therefore decays toward zero as
// slices roll, while sustained access holds the score near its geometric
// maximum 1/(1-Decay).
func (t *Tracker) DecayedHits(now sim.Time, oid string) float64 {
	t.roll(now)
	score := 0.0
	n := len(t.slices)
	for i, s := range t.slices {
		if !s.filter.ContainsString(oid) {
			continue
		}
		w := 1.0
		for age := n - 1 - i; age > 0; age-- {
			w *= t.decay
		}
		score += w
	}
	return score
}

// Temp classifies oid into a temperature band from its decayed hit score.
func (t *Tracker) Temp(now sim.Time, oid string) Temperature {
	switch d := t.DecayedHits(now, oid); {
	case d >= t.hotDecayed:
		return TempHot
	case d >= t.warmAt:
		return TempWarm
	default:
		return TempCold
	}
}

// TotalHits returns the lifetime number of recorded accesses.
func (t *Tracker) TotalHits() uint64 { return t.totalHits }

// Slices returns the number of slices currently retained (including open).
func (t *Tracker) Slices() int { return len(t.slices) }
