// Package hitset implements time-sliced object-access tracking, an analog of
// Ceph's HitSet used by the paper's cache manager (§5): it "sustainably
// maintains recently accessed object set per second and counts for each
// object access"; an object whose access count over the retained window
// exceeds HitCount is considered hot and kept cached in the metadata pool.
package hitset

import (
	"time"

	"dedupstore/internal/bloom"
	"dedupstore/internal/sim"
)

// Slice is one time window's access set: a bloom filter for membership plus
// an exact count map for the current (open) slice.
type Slice struct {
	Start  sim.Time
	filter *bloom.Filter
}

// Tracker maintains a ring of recent HitSet slices.
type Tracker struct {
	period    time.Duration
	retain    int
	perSlice  uint64
	slices    []*Slice // slices[len-1] is the open one
	lastRoll  sim.Time
	hitCount  int
	totalHits uint64
}

// Config controls HitSet behaviour.
type Config struct {
	// Period is the wall time each slice covers (paper: per second).
	Period time.Duration
	// Retain is how many closed slices are kept for hotness queries.
	Retain int
	// ExpectedPerSlice sizes each slice's bloom filter.
	ExpectedPerSlice uint64
	// HitCount is the hotness threshold: an object seen in at least HitCount
	// of the retained slices is hot.
	HitCount int
}

// DefaultConfig mirrors the paper's setup: per-second HitSets.
func DefaultConfig() Config {
	return Config{Period: time.Second, Retain: 8, ExpectedPerSlice: 4096, HitCount: 2}
}

// New creates a tracker.
func New(cfg Config) *Tracker {
	if cfg.Period <= 0 {
		cfg.Period = time.Second
	}
	if cfg.Retain < 1 {
		cfg.Retain = 1
	}
	if cfg.ExpectedPerSlice == 0 {
		cfg.ExpectedPerSlice = 4096
	}
	if cfg.HitCount < 1 {
		cfg.HitCount = 1
	}
	t := &Tracker{period: cfg.Period, retain: cfg.Retain, perSlice: cfg.ExpectedPerSlice, hitCount: cfg.HitCount}
	t.slices = []*Slice{t.newSlice(0)}
	return t
}

func (t *Tracker) newSlice(at sim.Time) *Slice {
	return &Slice{Start: at, filter: bloom.NewWithEstimates(t.perSlice, 0.01)}
}

func (t *Tracker) roll(now sim.Time) {
	for now-t.lastRoll >= sim.Time(t.period) {
		t.lastRoll += sim.Time(t.period)
		t.slices = append(t.slices, t.newSlice(t.lastRoll))
		if len(t.slices) > t.retain+1 { // +1 for the open slice
			t.slices = t.slices[1:]
		}
	}
}

// Record notes an access to oid at virtual time now.
func (t *Tracker) Record(now sim.Time, oid string) {
	t.roll(now)
	t.slices[len(t.slices)-1].filter.AddString(oid)
	t.totalHits++
}

// Hits returns in how many retained slices oid appears (bloom-approximate).
func (t *Tracker) Hits(now sim.Time, oid string) int {
	t.roll(now)
	n := 0
	for _, s := range t.slices {
		if s.filter.ContainsString(oid) {
			n++
		}
	}
	return n
}

// Hot reports whether oid's recent access count reaches the HitCount
// threshold. Hot objects are kept cached in the metadata pool and skipped by
// the dedup engine until they cool down (paper §3.2, §4.3).
func (t *Tracker) Hot(now sim.Time, oid string) bool {
	return t.Hits(now, oid) >= t.hitCount
}

// TotalHits returns the lifetime number of recorded accesses.
func (t *Tracker) TotalHits() uint64 { return t.totalHits }

// Slices returns the number of slices currently retained (including open).
func (t *Tracker) Slices() int { return len(t.slices) }
