package hitset

import (
	"testing"
	"time"

	"dedupstore/internal/sim"
)

func at(d time.Duration) sim.Time { return sim.Time(d) }

func TestHotAfterRepeatedAccess(t *testing.T) {
	tr := New(Config{Period: time.Second, Retain: 4, HitCount: 2})
	tr.Record(at(100*time.Millisecond), "obj1")
	if tr.Hot(at(200*time.Millisecond), "obj1") {
		t.Fatal("hot after a single access in one slice")
	}
	tr.Record(at(1100*time.Millisecond), "obj1") // second slice
	if !tr.Hot(at(1200*time.Millisecond), "obj1") {
		t.Fatal("not hot after access in two slices")
	}
}

func TestColdObjectNeverHot(t *testing.T) {
	tr := New(DefaultConfig())
	tr.Record(0, "other")
	if tr.Hot(0, "never-seen") {
		t.Fatal("unseen object reported hot")
	}
}

func TestHotnessExpires(t *testing.T) {
	tr := New(Config{Period: time.Second, Retain: 2, HitCount: 2})
	tr.Record(at(0), "obj")
	tr.Record(at(1100*time.Millisecond), "obj")
	if !tr.Hot(at(1200*time.Millisecond), "obj") {
		t.Fatal("should be hot")
	}
	// After the retained window slides past both accesses, hotness decays.
	if tr.Hot(at(10*time.Second), "obj") {
		t.Fatal("hotness did not expire after window slid")
	}
}

func TestSliceRetention(t *testing.T) {
	tr := New(Config{Period: time.Second, Retain: 3, HitCount: 1})
	for i := 0; i < 10; i++ {
		tr.Record(at(time.Duration(i)*time.Second+time.Millisecond), "o")
	}
	if got := tr.Slices(); got > 4 { // retain + open
		t.Fatalf("retained %d slices, want <= 4", got)
	}
}

func TestHitsCountsSlices(t *testing.T) {
	tr := New(Config{Period: time.Second, Retain: 8, HitCount: 3})
	for i := 0; i < 3; i++ {
		tr.Record(at(time.Duration(i)*time.Second+time.Millisecond), "obj")
	}
	if got := tr.Hits(at(3100*time.Millisecond), "obj"); got < 3 {
		t.Fatalf("hits=%d want >=3", got)
	}
	if !tr.Hot(at(3100*time.Millisecond), "obj") {
		t.Fatal("obj should be hot at threshold")
	}
}

func TestTotalHits(t *testing.T) {
	tr := New(DefaultConfig())
	for i := 0; i < 5; i++ {
		tr.Record(0, "x")
	}
	if tr.TotalHits() != 5 {
		t.Fatalf("TotalHits=%d", tr.TotalHits())
	}
}

func TestConfigClamping(t *testing.T) {
	tr := New(Config{}) // all zero: must not panic, must work
	tr.Record(0, "a")
	_ = tr.Hot(0, "a")
}
