package hitset

import (
	"testing"
	"time"

	"dedupstore/internal/sim"
)

func at(d time.Duration) sim.Time { return sim.Time(d) }

func TestHotAfterRepeatedAccess(t *testing.T) {
	tr := New(Config{Period: time.Second, Retain: 4, HitCount: 2})
	tr.Record(at(100*time.Millisecond), "obj1")
	if tr.Hot(at(200*time.Millisecond), "obj1") {
		t.Fatal("hot after a single access in one slice")
	}
	tr.Record(at(1100*time.Millisecond), "obj1") // second slice
	if !tr.Hot(at(1200*time.Millisecond), "obj1") {
		t.Fatal("not hot after access in two slices")
	}
}

func TestColdObjectNeverHot(t *testing.T) {
	tr := New(DefaultConfig())
	tr.Record(0, "other")
	if tr.Hot(0, "never-seen") {
		t.Fatal("unseen object reported hot")
	}
}

func TestHotnessExpires(t *testing.T) {
	tr := New(Config{Period: time.Second, Retain: 2, HitCount: 2})
	tr.Record(at(0), "obj")
	tr.Record(at(1100*time.Millisecond), "obj")
	if !tr.Hot(at(1200*time.Millisecond), "obj") {
		t.Fatal("should be hot")
	}
	// After the retained window slides past both accesses, hotness decays.
	if tr.Hot(at(10*time.Second), "obj") {
		t.Fatal("hotness did not expire after window slid")
	}
}

func TestSliceRetention(t *testing.T) {
	tr := New(Config{Period: time.Second, Retain: 3, HitCount: 1})
	for i := 0; i < 10; i++ {
		tr.Record(at(time.Duration(i)*time.Second+time.Millisecond), "o")
	}
	if got := tr.Slices(); got > 4 { // retain + open
		t.Fatalf("retained %d slices, want <= 4", got)
	}
}

func TestHitsCountsSlices(t *testing.T) {
	tr := New(Config{Period: time.Second, Retain: 8, HitCount: 3})
	for i := 0; i < 3; i++ {
		tr.Record(at(time.Duration(i)*time.Second+time.Millisecond), "obj")
	}
	if got := tr.Hits(at(3100*time.Millisecond), "obj"); got < 3 {
		t.Fatalf("hits=%d want >=3", got)
	}
	if !tr.Hot(at(3100*time.Millisecond), "obj") {
		t.Fatal("obj should be hot at threshold")
	}
}

func TestTotalHits(t *testing.T) {
	tr := New(DefaultConfig())
	for i := 0; i < 5; i++ {
		tr.Record(0, "x")
	}
	if tr.TotalHits() != 5 {
		t.Fatalf("TotalHits=%d", tr.TotalHits())
	}
}

func TestConfigClamping(t *testing.T) {
	tr := New(Config{}) // all zero: must not panic, must work
	tr.Record(0, "a")
	_ = tr.Hot(0, "a")
}

// TestRollLongIdleGap drives the tracker across an idle gap spanning many
// thousands of missed periods and checks that the fast path lands on exactly
// the state the step-by-step roll would produce: bounded slice count, the
// same lastRoll (observable via slice starts staying period-aligned), stale
// hits fully expired, and new recording still working.
func TestRollLongIdleGap(t *testing.T) {
	tr := New(Config{Period: time.Second, Retain: 4, HitCount: 1})
	tr.Record(at(500*time.Millisecond), "old")

	// Jump far ahead: ~1e6 missed periods at once.
	far := at(1_000_000*time.Second + 300*time.Millisecond)
	if got := tr.Hits(far, "old"); got != 0 {
		t.Fatalf("hits across huge gap = %d, want 0", got)
	}
	if got := tr.Slices(); got > 5 {
		t.Fatalf("slice count after gap = %d, want <= retain+1 = 5", got)
	}
	// The open slice must cover `far`: recording and querying in the same
	// period must agree.
	tr.Record(far, "fresh")
	if got := tr.Hits(at(1_000_000*time.Second+900*time.Millisecond), "fresh"); got != 1 {
		t.Fatalf("hits for fresh record after gap = %d, want 1", got)
	}
	// One more period step must roll exactly one slice, i.e. the fast path
	// left lastRoll period-aligned rather than overshooting.
	if got := tr.Hits(at(1_000_001*time.Second+100*time.Millisecond), "fresh"); got != 1 {
		t.Fatalf("hits one period later = %d, want 1 (slice should be retained)", got)
	}
}

// TestRollGapMatchesStepwise cross-checks the long-gap fast path against a
// second tracker driven through the same gap one period at a time: the
// retained windows must agree on membership for every probed object.
func TestRollGapMatchesStepwise(t *testing.T) {
	const retain = 3
	mk := func() *Tracker { return New(Config{Period: time.Second, Retain: retain, HitCount: 1}) }
	fast, slow := mk(), mk()
	for _, tr := range []*Tracker{fast, slow} {
		tr.Record(at(200*time.Millisecond), "a")
		tr.Record(at(1300*time.Millisecond), "b")
	}
	end := 5000 * time.Second
	// slow: touch every period so roll() advances one step at a time.
	for ts := 2 * time.Second; ts <= end; ts += time.Second {
		slow.Hits(at(ts+10*time.Millisecond), "probe")
	}
	// fast: single query at the end takes the gap fast path.
	for _, oid := range []string{"a", "b", "probe"} {
		if f, s := fast.Hits(at(end+10*time.Millisecond), oid), slow.Hits(at(end+10*time.Millisecond), oid); f != s {
			t.Fatalf("hits(%q): fast=%d slow=%d", oid, f, s)
		}
	}
	if f, s := fast.Slices(), slow.Slices(); f != s {
		t.Fatalf("slice count: fast=%d slow=%d", f, s)
	}
}

// TestHitsMonotoneInAccesses is the satellite property test: within a fixed
// window (no roll between probes), recording strictly more accesses for an
// object never lowers its Hits count — bloom filters have false positives
// but no false negatives, so Hits is monotone in the recorded access set.
func TestHitsMonotoneInAccesses(t *testing.T) {
	tr := New(Config{Period: time.Second, Retain: 16, HitCount: 2})
	now := at(0)
	prev := tr.Hits(now, "obj")
	for i := 0; i < 12; i++ {
		// Advance within the retained window: one new slice per record.
		now = at(time.Duration(i)*time.Second + 100*time.Millisecond)
		tr.Record(now, "obj")
		got := tr.Hits(now, "obj")
		if got < prev {
			t.Fatalf("after access %d: Hits dropped %d -> %d", i+1, prev, got)
		}
		if got < 1 {
			t.Fatalf("after access %d: Hits=%d, bloom lost a recorded access", i+1, got)
		}
		prev = got
	}
}

func TestDecayedHitsWeighting(t *testing.T) {
	tr := New(Config{Period: time.Second, Retain: 8, HitCount: 2, Decay: 0.5})
	tr.Record(at(100*time.Millisecond), "obj")
	// Open slice hit weighs 1.0.
	if d := tr.DecayedHits(at(200*time.Millisecond), "obj"); d != 1.0 {
		t.Fatalf("open-slice decayed hits = %v, want 1.0", d)
	}
	// One roll later the same hit weighs Decay = 0.5.
	if d := tr.DecayedHits(at(1100*time.Millisecond), "obj"); d != 0.5 {
		t.Fatalf("one-slice-old decayed hits = %v, want 0.5", d)
	}
	// A second hit in the new open slice adds 1.0.
	tr.Record(at(1200*time.Millisecond), "obj")
	if d := tr.DecayedHits(at(1300*time.Millisecond), "obj"); d != 1.5 {
		t.Fatalf("decayed hits after second access = %v, want 1.5", d)
	}
}

func TestTemperatureBands(t *testing.T) {
	tr := New(Config{Period: time.Second, Retain: 8, HitCount: 2,
		Decay: 0.5, HotDecayed: 1.25, WarmDecayed: 0.25})
	if got := tr.Temp(at(0), "never"); got != TempCold {
		t.Fatalf("unseen object temp = %v, want cold", got)
	}
	// One recent access: decayed 1.0 — warm, not hot.
	tr.Record(at(100*time.Millisecond), "once")
	if got := tr.Temp(at(200*time.Millisecond), "once"); got != TempWarm {
		t.Fatalf("single-access temp = %v, want warm", got)
	}
	// Sustained access across slices: decayed 1.0 + 0.5 = 1.5 ≥ 1.25 — hot.
	tr.Record(at(300*time.Millisecond), "busy")
	tr.Record(at(1100*time.Millisecond), "busy")
	if got := tr.Temp(at(1200*time.Millisecond), "busy"); got != TempHot {
		t.Fatalf("sustained-access temp = %v, want hot", got)
	}
	// After a long idle stretch everything cools back down.
	if got := tr.Temp(at(100*time.Second), "busy"); got != TempCold {
		t.Fatalf("idle temp = %v, want cold", got)
	}
}

func TestTemperatureString(t *testing.T) {
	want := map[Temperature]string{TempCold: "cold", TempWarm: "warm", TempHot: "hot"}
	for _, tp := range Temperatures() {
		if tp.String() != want[tp] {
			t.Fatalf("Temperature(%d).String()=%q want %q", tp, tp.String(), want[tp])
		}
	}
	if Temperature(99).String() != "invalid" {
		t.Fatal("out-of-range temperature should stringify as invalid")
	}
}
