package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"dedupstore/internal/sim"
)

// ResourceSpan is one FIFO resource's contribution to a span: how long the
// operation queued for a slot and how long the slot served it.
type ResourceSpan struct {
	Resource string
	Wait     time.Duration // queued behind other holders
	Hold     time.Duration // service time inside Resource.Use
}

// Span is one traced operation: virtual start/end time, identity (op kind,
// pool, placement group, payload bytes) and the queue-wait vs. service-time
// breakdown across every sim FIFO resource the op touched. A span attaches
// to the executing sim.Proc as its Tracer, so resource waits — including
// those of child processes (replica writers, parallel chunk reads) — accrue
// automatically; nested Start calls record the parent span's ID.
type Span struct {
	ID     uint64
	Parent uint64
	Name   string // op kind, e.g. "rados.write"
	Class  string // QoS class the op was admitted under ("client", "dedup", ...)
	Tenant string // tenant the op is attributed to ("" = not tenant traffic)
	Pool   string
	PG     string
	Bytes  int64
	Start  sim.Time
	End    sim.Time
	Err    bool

	Resources []ResourceSpan

	sink *TraceSink
	prev sim.Tracer
}

// Duration is the span's total virtual time.
func (sp *Span) Duration() time.Duration { return (sp.End - sp.Start).Duration() }

// QueueWait is the summed queue wait across all resources.
func (sp *Span) QueueWait() time.Duration {
	var d time.Duration
	for _, r := range sp.Resources {
		d += r.Wait
	}
	return d
}

// Service is the summed resource service (hold) time.
func (sp *Span) Service() time.Duration {
	var d time.Duration
	for _, r := range sp.Resources {
		d += r.Hold
	}
	return d
}

func (sp *Span) resource(name string) *ResourceSpan {
	for i := range sp.Resources {
		if sp.Resources[i].Resource == name {
			return &sp.Resources[i]
		}
	}
	sp.Resources = append(sp.Resources, ResourceSpan{Resource: name})
	return &sp.Resources[len(sp.Resources)-1]
}

// ResourceWait implements sim.Tracer.
func (sp *Span) ResourceWait(resource string, start, end sim.Time) {
	if sp == nil || end <= start {
		return
	}
	sp.resource(resource).Wait += (end - start).Duration()
}

// ResourceHold implements sim.Tracer.
func (sp *Span) ResourceHold(resource string, start, end sim.Time) {
	if sp == nil || end <= start {
		return
	}
	sp.resource(resource).Hold += (end - start).Duration()
}

// SetOp fills in the span's operation identity. Nil-safe.
func (sp *Span) SetOp(pool, pg string, bytes int64) *Span {
	if sp != nil {
		sp.Pool, sp.PG, sp.Bytes = pool, pg, bytes
	}
	return sp
}

// SetClass tags the span with the QoS class its I/O was admitted under.
// Nil-safe.
func (sp *Span) SetClass(class string) *Span {
	if sp != nil {
		sp.Class = class
	}
	return sp
}

// SetTenant attributes the span to a tenant identity. Nil-safe.
func (sp *Span) SetTenant(tenant string) *Span {
	if sp != nil {
		sp.Tenant = tenant
	}
	return sp
}

// Finish closes the span at the process's current virtual time, restores the
// parent tracer, and records the span in the sink. Must be called on the
// same process that Started it. Nil-safe. Finish returns the span to the
// sink's pool: the caller must not touch the span afterwards — capture
// Name/Duration/fields before finishing if they are needed.
func (sp *Span) Finish(p *sim.Proc) {
	if sp == nil {
		return
	}
	sp.End = p.Now()
	p.SetTracer(sp.prev)
	// Fold this span's resource breakdown into the enclosing span, so a
	// parent op (e.g. a replicated write) reports the queue-wait and service
	// time of its nested phases too.
	if parent, ok := sp.prev.(*Span); ok && parent != nil {
		for _, r := range sp.Resources {
			pr := parent.resource(r.Resource)
			pr.Wait += r.Wait
			pr.Hold += r.Hold
		}
	}
	sp.sink.record(sp)
}

// String renders one span with its wait-vs-service breakdown.
func (sp *Span) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12v %-16s", sp.Duration(), sp.Name)
	if sp.Class != "" {
		fmt.Fprintf(&b, " class=%s", sp.Class)
	}
	if sp.Tenant != "" {
		fmt.Fprintf(&b, " tenant=%s", sp.Tenant)
	}
	if sp.Pool != "" {
		fmt.Fprintf(&b, " pool=%s", sp.Pool)
	}
	if sp.PG != "" {
		fmt.Fprintf(&b, " pg=%s", sp.PG)
	}
	if sp.Bytes > 0 {
		fmt.Fprintf(&b, " bytes=%d", sp.Bytes)
	}
	fmt.Fprintf(&b, " wait=%v service=%v", sp.QueueWait(), sp.Service())
	if len(sp.Resources) > 0 {
		rs := append([]ResourceSpan(nil), sp.Resources...)
		sort.Slice(rs, func(i, j int) bool { return rs[i].Wait+rs[i].Hold > rs[j].Wait+rs[j].Hold })
		if len(rs) > 4 {
			rs = rs[:4]
		}
		b.WriteString(" [")
		for i, r := range rs {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s w=%v h=%v", r.Resource, r.Wait, r.Hold)
		}
		b.WriteString("]")
	}
	return b.String()
}

// TraceSink collects finished spans: a fixed-capacity ring of the most
// recent spans plus a bounded leaderboard of the slowest spans ever
// recorded, so post-run analysis sees both the tail and the recent shape
// without unbounded memory. Safe for concurrent use and on a nil receiver
// (tracing disabled: Start returns nil and all Span methods no-op).
//
// Spans are pooled: Finish recycles the span object and the ring reuses its
// slots' resource slices, so steady-state tracing is allocation-free. With
// SetSample(n) the sink keeps only every n-th span (deterministic counter,
// not random): Start returns nil for the skipped ones, and since every Span
// method is nil-safe, unsampled operations pay almost nothing.
type TraceSink struct {
	mu      sync.Mutex
	ring    []Span
	pos     int
	total   int64
	nextID  uint64
	slowCap int
	slow    []Span // sorted ascending by duration
	sample  int64  // keep 1 of every sample spans (1 = all)
	seen    int64  // spans considered by Start, sampled or not
	pool    []*Span
}

// DefaultSlowest is the leaderboard size kept by NewTraceSink.
const DefaultSlowest = 64

// spanPoolCap bounds the sink's free list of recycled spans.
const spanPoolCap = 1024

// NewTraceSink returns a sink retaining the ringCap most recent spans
// (minimum 16) and the DefaultSlowest slowest, sampling every span.
func NewTraceSink(ringCap int) *TraceSink {
	if ringCap < 16 {
		ringCap = 16
	}
	return &TraceSink{ring: make([]Span, 0, ringCap), slowCap: DefaultSlowest, sample: 1}
}

// SetSample makes the sink keep one of every n spans (n <= 1 keeps all).
// Sampling is a deterministic modulo of the span-start counter, so for a
// fixed program the same spans are kept on every run.
func (t *TraceSink) SetSample(n int) {
	if t == nil {
		return
	}
	if n < 1 {
		n = 1
	}
	t.mu.Lock()
	t.sample = int64(n)
	t.mu.Unlock()
}

// Sample returns the sink's sampling interval (1 = every span is kept).
func (t *TraceSink) Sample() int {
	if t == nil {
		return 1
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return int(t.sample)
}

// Seen reports how many span starts the sink has considered, including ones
// dropped by sampling.
func (t *TraceSink) Seen() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seen
}

// Start opens a span named name at the process's current virtual time and
// installs it as the process tracer. If the process is already inside a
// span, the new span records it as parent. Returns nil (a no-op span) on a
// nil sink or when sampling drops the span.
func (t *TraceSink) Start(p *sim.Proc, name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.seen++
	if t.sample > 1 && (t.seen-1)%t.sample != 0 {
		t.mu.Unlock()
		return nil
	}
	t.nextID++
	id := t.nextID
	var sp *Span
	if n := len(t.pool); n > 0 {
		sp = t.pool[n-1]
		t.pool[n-1] = nil
		t.pool = t.pool[:n-1]
	}
	t.mu.Unlock()
	if sp == nil {
		sp = &Span{}
	}
	res := sp.Resources[:0]
	*sp = Span{ID: id, Name: name, Start: p.Now(), sink: t, Resources: res}
	if parent, ok := p.Tracer().(*Span); ok && parent != nil {
		sp.Parent = parent.ID
	}
	sp.prev = p.SetTracer(sp)
	return sp
}

func (t *TraceSink) record(sp *Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.total++
	// Ring insert, reusing the evicted slot's resource slice so steady-state
	// recording allocates nothing.
	var slot *Span
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, Span{})
		slot = &t.ring[len(t.ring)-1]
	} else {
		slot = &t.ring[t.pos]
		t.pos = (t.pos + 1) % len(t.ring)
	}
	res := slot.Resources
	*slot = *sp
	slot.Resources = append(res[:0], sp.Resources...)
	slot.sink, slot.prev = nil, nil
	// Leaderboard insert (ascending by duration, bounded). Entries own their
	// resource slices: the ring slot aliased above gets rewritten on eviction.
	d := sp.Duration()
	if !(len(t.slow) == t.slowCap && d <= t.slow[0].Duration()) {
		rec := *sp
		rec.Resources = append([]ResourceSpan(nil), sp.Resources...)
		rec.sink, rec.prev = nil, nil
		i := sort.Search(len(t.slow), func(i int) bool { return t.slow[i].Duration() >= d })
		t.slow = append(t.slow, Span{})
		copy(t.slow[i+1:], t.slow[i:])
		t.slow[i] = rec
		if len(t.slow) > t.slowCap {
			t.slow = t.slow[1:]
		}
	}
	// Recycle the finished span for a later Start.
	if len(t.pool) < spanPoolCap {
		sp.sink, sp.prev = nil, nil
		t.pool = append(t.pool, sp)
	}
}

// Total reports how many spans have been recorded over the sink's lifetime.
func (t *TraceSink) Total() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Recent returns up to n of the most recently recorded spans, newest last.
func (t *TraceSink) Recent(n int) []Span {
	if t == nil || n <= 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	size := len(t.ring)
	if n > size {
		n = size
	}
	out := make([]Span, 0, n)
	for i := size - n; i < size; i++ {
		rec := t.ring[(t.pos+i)%size]
		// Ring slots recycle their resource slices; returned spans must own
		// theirs.
		rec.Resources = append([]ResourceSpan(nil), rec.Resources...)
		out = append(out, rec)
	}
	return out
}

// Slowest returns up to n of the slowest spans recorded, slowest first.
func (t *TraceSink) Slowest(n int) []Span {
	if t == nil || n <= 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n > len(t.slow) {
		n = len(t.slow)
	}
	out := make([]Span, 0, n)
	for i := len(t.slow) - 1; i >= len(t.slow)-n; i-- {
		out = append(out, t.slow[i])
	}
	return out
}

// Report renders the slowest n spans, one per line.
func (t *TraceSink) Report(n int) string {
	spans := t.Slowest(n)
	if len(spans) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "slowest %d of %d spans (queue-wait vs service):\n", len(spans), t.Total())
	for _, sp := range spans {
		fmt.Fprintf(&b, "  %s\n", sp.String())
	}
	return b.String()
}
