package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"dedupstore/internal/sim"
)

// ResourceStat accumulates a queue-depth/occupancy timeline for one sim FIFO
// resource (an OSD disk, a host NIC, a CPU core set). It is fed by the
// resource's observer hook on every state change, so time-weighted averages
// are exact, not sampled. Safe for concurrent use.
type ResourceStat struct {
	mu        sync.Mutex
	name      string
	capacity  int
	lastT     sim.Time
	lastQ     int
	lastInUse int
	maxQueue  int
	queueArea int64 // ∫ queueLen dt, in queue·ns
	busyArea  int64 // ∫ inUse dt, in slot·ns
	changes   int64
}

// Observe is the sim.ResourceObserver hook: record the state change at now.
func (rs *ResourceStat) Observe(now sim.Time, queueLen, inUse int) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.advance(now)
	rs.lastQ = queueLen
	rs.lastInUse = inUse
	if queueLen > rs.maxQueue {
		rs.maxQueue = queueLen
	}
	rs.changes++
}

// advance integrates the current state up to now. Caller holds mu.
func (rs *ResourceStat) advance(now sim.Time) {
	if now > rs.lastT {
		dt := int64(now - rs.lastT)
		rs.queueArea += dt * int64(rs.lastQ)
		rs.busyArea += dt * int64(rs.lastInUse)
		rs.lastT = now
	}
}

// Name returns the resource name.
func (rs *ResourceStat) Name() string { return rs.name }

// MaxQueue returns the deepest queue observed.
func (rs *ResourceStat) MaxQueue() int {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.maxQueue
}

// AvgQueue returns the time-weighted mean queue depth up to now.
func (rs *ResourceStat) AvgQueue(now sim.Time) float64 {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.advance(now)
	if now <= 0 {
		return 0
	}
	return float64(rs.queueArea) / float64(now)
}

// Utilization returns the capacity-weighted busy fraction (0..1) up to now.
func (rs *ResourceStat) Utilization(now sim.Time) float64 {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.advance(now)
	if now <= 0 || rs.capacity <= 0 {
		return 0
	}
	return float64(rs.busyArea) / (float64(now) * float64(rs.capacity))
}

// ResourceUsage is one resource's summary row.
type ResourceUsage struct {
	Name        string
	Capacity    int
	MaxQueue    int
	AvgQueue    float64
	Utilization float64
}

// ResourceMonitor owns the ResourceStats of a cluster's resources. Attach a
// resource with Watch; snapshot all timelines with Snapshot.
type ResourceMonitor struct {
	mu    sync.Mutex
	stats map[string]*ResourceStat
}

// NewResourceMonitor returns an empty monitor.
func NewResourceMonitor() *ResourceMonitor {
	return &ResourceMonitor{stats: make(map[string]*ResourceStat)}
}

// Watch registers r and installs an observer on it so queue-depth and
// utilization accrue from now on. Nil-safe on the monitor.
func (m *ResourceMonitor) Watch(r *sim.Resource) *ResourceStat {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	rs, ok := m.stats[r.Name()]
	if !ok {
		rs = &ResourceStat{name: r.Name(), capacity: r.Cap()}
		m.stats[r.Name()] = rs
	}
	m.mu.Unlock()
	r.SetObserver(rs.Observe)
	return rs
}

// Stat returns the stat registered under name (nil if absent).
func (m *ResourceMonitor) Stat(name string) *ResourceStat {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats[name]
}

// Snapshot summarizes every watched resource at virtual time now, sorted by
// name.
func (m *ResourceMonitor) Snapshot(now sim.Time) []ResourceUsage {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	stats := make([]*ResourceStat, 0, len(m.stats))
	for _, rs := range m.stats {
		stats = append(stats, rs)
	}
	m.mu.Unlock()
	out := make([]ResourceUsage, 0, len(stats))
	for _, rs := range stats {
		out = append(out, ResourceUsage{
			Name:        rs.name,
			Capacity:    rs.capacity,
			MaxQueue:    rs.MaxQueue(),
			AvgQueue:    rs.AvgQueue(now),
			Utilization: rs.Utilization(now),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// FormatUsage renders resource rows as an aligned table.
func FormatUsage(rows []ResourceUsage) string {
	if len(rows) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %4s %9s %9s %6s\n", "resource", "cap", "max-queue", "avg-queue", "util%")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %4d %9d %9.2f %6.1f\n", r.Name, r.Capacity, r.MaxQueue, r.AvgQueue, 100*r.Utilization)
	}
	return b.String()
}
