package metrics

import (
	"testing"
	"time"

	"dedupstore/internal/sim"
)

func TestResourceMonitor(t *testing.T) {
	e := sim.New(1)
	disk := sim.NewResource("disk", 1)
	mon := NewResourceMonitor()
	mon.Watch(disk)
	for i := 0; i < 3; i++ {
		e.Go("user", func(p *sim.Proc) {
			disk.Use(p, 10*time.Millisecond)
		})
	}
	e.Run()
	end := sim.Time(30 * time.Millisecond)
	st := mon.Stat("disk")
	if st == nil {
		t.Fatal("watched resource not tracked")
	}
	if got := st.MaxQueue(); got != 2 {
		t.Errorf("max queue = %d, want 2", got)
	}
	// The single slot was busy the whole 30ms.
	if got := st.Utilization(end); got < 0.999 || got > 1.001 {
		t.Errorf("utilization = %v, want 1.0", got)
	}
	rows := mon.Snapshot(end)
	if len(rows) != 1 || rows[0].Name != "disk" || rows[0].Capacity != 1 {
		t.Fatalf("snapshot = %+v", rows)
	}
	if out := FormatUsage(rows); out == "" {
		t.Fatal("FormatUsage empty")
	}
	// Watching the same resource twice returns the same stat.
	if mon.Watch(disk) != st {
		t.Error("duplicate Watch created a second stat")
	}
}
