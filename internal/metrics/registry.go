package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing named metric. Safe for concurrent
// use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative n is ignored; counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a named metric that can go up and down. Safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Registry is the cluster-wide metric namespace: named counters, gauges and
// histograms, created on first use and dumped in Prometheus text format.
// Every layer of the stack (rados gateways, the dedup engine, the cache
// agent, recovery) registers its instruments here so one Dump shows the
// whole system. All methods are safe on a nil receiver — lookups return
// detached metrics — so instrumented code never needs a nil check.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return &Counter{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return NewHistogram()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// sanitizeMetricName maps a registry name to the Prometheus charset
// [a-zA-Z0-9_:]; everything else becomes '_'.
func sanitizeMetricName(name string) string {
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// Dump renders every registered metric as Prometheus exposition text,
// sorted by name. Histogram buckets are cumulative with `le` bounds in
// seconds, plus _sum (seconds) and _count series.
func (r *Registry) Dump() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	counterNames := sortedKeys(r.counters)
	gaugeNames := sortedKeys(r.gauges)
	histNames := sortedKeys(r.hists)
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, name := range counterNames {
		n := sanitizeMetricName(name)
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", n, n, counters[name].Value())
	}
	for _, name := range gaugeNames {
		n := sanitizeMetricName(name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", n, n, gauges[name].Value())
	}
	for _, name := range histNames {
		h := hists[name]
		n := sanitizeMetricName(name)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", n)
		var cum int64
		for _, bk := range h.Buckets() {
			cum += bk.Count
			fmt.Fprintf(&b, "%s_bucket{le=\"%g\"} %d\n", n, bk.Le.Seconds(), cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", n, int64(h.Count()))
		fmt.Fprintf(&b, "%s_sum %g\n", n, h.Sum().Seconds())
		fmt.Fprintf(&b, "%s_count %d\n", n, int64(h.Count()))
	}
	return b.String()
}

func sortedKeys[T any](m map[string]T) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
