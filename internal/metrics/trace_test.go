package metrics

import (
	"strings"
	"testing"
	"time"

	"dedupstore/internal/sim"
)

// span runs one op of the given service time through a fresh proc so the
// sink records a finished span.
func recordSpan(e *sim.Engine, sink *TraceSink, name string, d time.Duration) {
	e.Go(name, func(p *sim.Proc) {
		sp := sink.Start(p, name)
		p.Sleep(d)
		sp.Finish(p)
	})
	e.Run()
}

func TestTraceSinkRingAndSlowest(t *testing.T) {
	e := sim.New(1)
	sink := NewTraceSink(16)
	for i := 1; i <= 40; i++ {
		recordSpan(e, sink, "op", time.Duration(i)*time.Millisecond)
	}
	if sink.Total() != 40 {
		t.Fatalf("total = %d, want 40", sink.Total())
	}
	recent := sink.Recent(100)
	if len(recent) != 16 {
		t.Fatalf("ring holds %d spans, want capacity 16", len(recent))
	}
	// Newest last: the final recorded span had the longest sleep.
	if got := recent[len(recent)-1].Duration(); got != 40*time.Millisecond {
		t.Errorf("newest span duration = %v, want 40ms", got)
	}
	slow := sink.Slowest(3)
	if len(slow) != 3 {
		t.Fatalf("slowest returned %d spans", len(slow))
	}
	for i, want := range []time.Duration{40, 39, 38} {
		if got := slow[i].Duration(); got != want*time.Millisecond {
			t.Errorf("slowest[%d] = %v, want %vms", i, got, want)
		}
	}
	if rep := sink.Report(2); !strings.Contains(rep, "slowest 2 of 40 spans") {
		t.Errorf("unexpected report header:\n%s", rep)
	}
}

func TestTraceSinkSlowestBounded(t *testing.T) {
	e := sim.New(1)
	sink := NewTraceSink(16)
	for i := 1; i <= DefaultSlowest+20; i++ {
		recordSpan(e, sink, "op", time.Duration(i)*time.Microsecond)
	}
	slow := sink.Slowest(DefaultSlowest * 2)
	if len(slow) != DefaultSlowest {
		t.Fatalf("leaderboard holds %d, want bound %d", len(slow), DefaultSlowest)
	}
	// The smallest survivor must be the (n-DefaultSlowest+1)-th largest.
	if got := slow[len(slow)-1].Duration(); got != 21*time.Microsecond {
		t.Errorf("smallest kept span = %v, want 21µs", got)
	}
}

func TestSpanNesting(t *testing.T) {
	e := sim.New(1)
	sink := NewTraceSink(64)
	disk := sim.NewResource("disk", 1)
	e.Go("op", func(p *sim.Proc) {
		outer := sink.Start(p, "outer")
		inner := sink.Start(p, "inner")
		disk.Use(p, 5*time.Millisecond)
		inner.Finish(p)
		outer.Finish(p)
	})
	e.Run()
	spans := sink.Recent(2)
	if len(spans) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(spans))
	}
	in, out := spans[0], spans[1]
	if in.Name != "inner" || out.Name != "outer" {
		t.Fatalf("span order: got %s,%s", in.Name, out.Name)
	}
	if in.Parent != out.ID {
		t.Errorf("inner.Parent = %d, want outer ID %d", in.Parent, out.ID)
	}
	// The child's disk hold folds into the parent on Finish.
	if got := out.Service(); got != 5*time.Millisecond {
		t.Errorf("outer service = %v, want 5ms folded from inner", got)
	}
	if got := in.Service(); got != 5*time.Millisecond {
		t.Errorf("inner service = %v, want 5ms", got)
	}
}

func TestTraceNilSafety(t *testing.T) {
	var sink *TraceSink
	e := sim.New(1)
	e.Go("op", func(p *sim.Proc) {
		sp := sink.Start(p, "noop")
		sp.SetOp("pool", "pg", 1).Finish(p) // all nil-safe
	})
	e.Run()
	if sink.Total() != 0 || sink.Recent(5) != nil || sink.Slowest(5) != nil || sink.Report(5) != "" {
		t.Fatal("nil sink not inert")
	}
}

func TestSpanString(t *testing.T) {
	e := sim.New(1)
	sink := NewTraceSink(16)
	disk := sim.NewResource("disk", 1)
	e.Go("op", func(p *sim.Proc) {
		sp := sink.Start(p, "rados.write").SetOp("rep", "1.2a", 4096)
		disk.Use(p, time.Millisecond)
		sp.Finish(p)
	})
	e.Run()
	s := sink.Recent(1)[0].String()
	for _, want := range []string{"rados.write", "pool=rep", "pg=1.2a", "bytes=4096", "disk w=0s h=1ms"} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q: %s", want, s)
		}
	}
}
