// Package metrics is the repository's observability substrate: the central
// Registry of named counters, gauges and log-bucketed histograms, per-op
// trace spans (trace.go) with a ring-buffered sink, FIFO-resource queue
// statistics (resource.go), and the measurement helpers the paper reports
// through: latency distributions (Figs. 10–12), per-second throughput
// timelines (Figs. 5b, 14), IOPS, and storage footprints. All timestamps are
// virtual (sim.Time).
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
	"time"

	"dedupstore/internal/sim"
)

// Histogram records latency samples into logarithmically spaced buckets and
// reports summary statistics. Instead of retaining every raw sample, each
// power-of-two range is split into 64 linear sub-buckets (HDR-histogram
// style), bounding the relative error of any reported quantile to under 0.8%
// while keeping memory constant. Count, Sum (hence Mean), Min and Max are
// tracked exactly. Histogram is safe for concurrent use.
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
	buckets []int64
}

// Sub-bucket geometry: values below subCount get an exact bucket each;
// values in [2^e, 2^(e+1)) are split into subCount linear sub-buckets of
// width 2^(e-subLog).
const (
	subLog   = 6
	subCount = 1 << subLog
)

// bucketIdx maps a non-negative sample (in ns) to its bucket index. The
// mapping is continuous: idx 0..63 are exact 1ns buckets, each subsequent
// run of 64 indexes covers one power-of-two range.
func bucketIdx(d int64) int {
	if d < subCount {
		return int(d)
	}
	e := bits.Len64(uint64(d)) - 1 // e >= subLog
	sub := int(d >> uint(e-subLog))
	return (e-subLog)*subCount + sub
}

// bucketMid returns the representative value (midpoint) of bucket idx — the
// value reported for any quantile that lands in the bucket.
func bucketMid(idx int) int64 {
	if idx < subCount {
		return int64(idx)
	}
	q := idx >> subLog
	e := subLog + q - 1
	width := int64(1) << uint(e-subLog)
	lower := int64(idx-(q-1)*subCount) << uint(e-subLog)
	return lower + width/2
}

// bucketUpper returns the exclusive upper bound of bucket idx.
func bucketUpper(idx int) int64 {
	if idx < subCount {
		return int64(idx) + 1
	}
	q := idx >> subLog
	e := subLog + q - 1
	width := int64(1) << uint(e-subLog)
	lower := int64(idx-(q-1)*subCount) << uint(e-subLog)
	return lower + width
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Add records one latency sample. Negative samples clamp to zero.
func (h *Histogram) Add(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	idx := bucketIdx(int64(d))
	if idx >= len(h.buckets) {
		grown := make([]int64, idx+1)
		copy(grown, h.buckets)
		h.buckets = grown
	}
	h.buckets[idx]++
	h.count++
	h.sum += d
	if h.count == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return int(h.count)
}

// Sum returns the exact sum of all samples.
func (h *Histogram) Sum() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the average latency (exact: tracked as sum/count, not from
// buckets).
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Percentile returns the p-th percentile (0 < p <= 100) using ceil-based
// nearest-rank: the value whose rank is ceil(p/100 * n). The result carries
// the bucket's representative value, within 0.8% of the true sample, clamped
// to the exact observed [min, max].
func (h *Histogram) Percentile(p float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	rank := int64(math.Ceil(p / 100 * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var cum int64
	for idx, c := range h.buckets {
		cum += c
		if cum >= rank {
			v := time.Duration(bucketMid(idx))
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Min returns the smallest sample (0 when empty).
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max returns the largest sample.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Bucket is one non-empty histogram bucket: Count samples at most Le.
type Bucket struct {
	Le    time.Duration // inclusive upper bound of the bucket
	Count int64         // samples in this bucket (not cumulative)
}

// Buckets returns the non-empty buckets in ascending order.
func (h *Histogram) Buckets() []Bucket {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]Bucket, 0, 16)
	for idx, c := range h.buckets {
		if c > 0 {
			out = append(out, Bucket{Le: time.Duration(bucketUpper(idx) - 1), Count: c})
		}
	}
	return out
}

// String summarizes the distribution.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		h.Count(), h.Mean(), h.Percentile(50), h.Percentile(99), h.Max())
}

// Point is one interval of a throughput timeline.
type Point struct {
	T     sim.Time
	Ops   int64
	Bytes int64
}

// MBps returns the interval's throughput in MB/s for the given interval
// length.
func (pt Point) MBps(interval time.Duration) float64 {
	return float64(pt.Bytes) / 1e6 / interval.Seconds()
}

// IOPS returns the interval's operation rate.
func (pt Point) IOPS(interval time.Duration) float64 {
	return float64(pt.Ops) / interval.Seconds()
}

// TimeSeries accumulates ops/bytes into fixed-width intervals — the data
// behind the paper's time-axis plots (Fig. 5b interference, Fig. 14 rate
// control).
type TimeSeries struct {
	interval time.Duration
	points   []Point
}

// NewTimeSeries returns a series with the given bucket width.
func NewTimeSeries(interval time.Duration) *TimeSeries {
	if interval <= 0 {
		interval = time.Second
	}
	return &TimeSeries{interval: interval}
}

// Interval returns the bucket width.
func (ts *TimeSeries) Interval() time.Duration { return ts.interval }

// Add records an operation completion of the given size at virtual time now.
func (ts *TimeSeries) Add(now sim.Time, bytes int) {
	idx := int(int64(now) / int64(ts.interval))
	for len(ts.points) <= idx {
		ts.points = append(ts.points, Point{T: sim.Time(int64(len(ts.points)) * int64(ts.interval))})
	}
	ts.points[idx].Ops++
	ts.points[idx].Bytes += int64(bytes)
}

// Points returns the timeline (shared slice; do not mutate).
func (ts *TimeSeries) Points() []Point { return ts.points }

// MeanMBps returns average throughput over buckets [from, to).
func (ts *TimeSeries) MeanMBps(from, to int) float64 {
	if from < 0 {
		from = 0
	}
	if to > len(ts.points) || to <= 0 {
		to = len(ts.points)
	}
	if from >= to {
		return 0
	}
	var bytes int64
	for _, pt := range ts.points[from:to] {
		bytes += pt.Bytes
	}
	return float64(bytes) / 1e6 / (float64(to-from) * ts.interval.Seconds())
}

// Recorder bundles a latency histogram and a throughput timeline for one
// operation class (e.g. "randwrite").
type Recorder struct {
	Lat    *Histogram
	Series *TimeSeries
}

// NewRecorder returns a recorder with one-second timeline buckets.
func NewRecorder() *Recorder {
	return &Recorder{Lat: NewHistogram(), Series: NewTimeSeries(time.Second)}
}

// Record notes one completed op: its completion time, latency and size.
func (r *Recorder) Record(now sim.Time, lat time.Duration, bytes int) {
	r.Lat.Add(lat)
	r.Series.Add(now, bytes)
}

// Throughput returns MB/s over the whole run (total bytes / final time).
func (r *Recorder) Throughput(now sim.Time) float64 {
	if now <= 0 {
		return 0
	}
	var bytes int64
	for _, pt := range r.Series.Points() {
		bytes += pt.Bytes
	}
	return float64(bytes) / 1e6 / now.Seconds()
}

// IOPS returns ops/s over the whole run.
func (r *Recorder) IOPS(now sim.Time) float64 {
	if now <= 0 {
		return 0
	}
	var ops int64
	for _, pt := range r.Series.Points() {
		ops += pt.Ops
	}
	return float64(ops) / now.Seconds()
}
