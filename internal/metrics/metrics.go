// Package metrics collects the measurements the paper reports: latency
// distributions (Figs. 10–12), per-second throughput timelines (Figs. 5b,
// 14), IOPS, and storage footprints. All timestamps are virtual (sim.Time).
package metrics

import (
	"fmt"
	"sort"
	"time"

	"dedupstore/internal/sim"
)

// Histogram records latency samples and reports summary statistics.
type Histogram struct {
	samples []time.Duration
	sum     time.Duration
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Add records one latency sample.
func (h *Histogram) Add(d time.Duration) {
	h.samples = append(h.samples, d)
	h.sum += d
}

// Count returns the number of samples.
func (h *Histogram) Count() int { return len(h.samples) }

// Mean returns the average latency.
func (h *Histogram) Mean() time.Duration {
	if len(h.samples) == 0 {
		return 0
	}
	return h.sum / time.Duration(len(h.samples))
}

// Percentile returns the p-th percentile (0 < p <= 100).
func (h *Histogram) Percentile(p float64) time.Duration {
	if len(h.samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), h.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p/100*float64(len(sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Max returns the largest sample.
func (h *Histogram) Max() time.Duration {
	var m time.Duration
	for _, s := range h.samples {
		if s > m {
			m = s
		}
	}
	return m
}

// String summarizes the distribution.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		h.Count(), h.Mean(), h.Percentile(50), h.Percentile(99), h.Max())
}

// Point is one interval of a throughput timeline.
type Point struct {
	T     sim.Time
	Ops   int64
	Bytes int64
}

// MBps returns the interval's throughput in MB/s for the given interval
// length.
func (pt Point) MBps(interval time.Duration) float64 {
	return float64(pt.Bytes) / 1e6 / interval.Seconds()
}

// IOPS returns the interval's operation rate.
func (pt Point) IOPS(interval time.Duration) float64 {
	return float64(pt.Ops) / interval.Seconds()
}

// TimeSeries accumulates ops/bytes into fixed-width intervals — the data
// behind the paper's time-axis plots (Fig. 5b interference, Fig. 14 rate
// control).
type TimeSeries struct {
	interval time.Duration
	points   []Point
}

// NewTimeSeries returns a series with the given bucket width.
func NewTimeSeries(interval time.Duration) *TimeSeries {
	if interval <= 0 {
		interval = time.Second
	}
	return &TimeSeries{interval: interval}
}

// Interval returns the bucket width.
func (ts *TimeSeries) Interval() time.Duration { return ts.interval }

// Add records an operation completion of the given size at virtual time now.
func (ts *TimeSeries) Add(now sim.Time, bytes int) {
	idx := int(int64(now) / int64(ts.interval))
	for len(ts.points) <= idx {
		ts.points = append(ts.points, Point{T: sim.Time(int64(len(ts.points)) * int64(ts.interval))})
	}
	ts.points[idx].Ops++
	ts.points[idx].Bytes += int64(bytes)
}

// Points returns the timeline (shared slice; do not mutate).
func (ts *TimeSeries) Points() []Point { return ts.points }

// MeanMBps returns average throughput over buckets [from, to).
func (ts *TimeSeries) MeanMBps(from, to int) float64 {
	if from < 0 {
		from = 0
	}
	if to > len(ts.points) || to <= 0 {
		to = len(ts.points)
	}
	if from >= to {
		return 0
	}
	var bytes int64
	for _, pt := range ts.points[from:to] {
		bytes += pt.Bytes
	}
	return float64(bytes) / 1e6 / (float64(to-from) * ts.interval.Seconds())
}

// Recorder bundles a latency histogram and a throughput timeline for one
// operation class (e.g. "randwrite").
type Recorder struct {
	Lat    *Histogram
	Series *TimeSeries
}

// NewRecorder returns a recorder with one-second timeline buckets.
func NewRecorder() *Recorder {
	return &Recorder{Lat: NewHistogram(), Series: NewTimeSeries(time.Second)}
}

// Record notes one completed op: its completion time, latency and size.
func (r *Recorder) Record(now sim.Time, lat time.Duration, bytes int) {
	r.Lat.Add(lat)
	r.Series.Add(now, bytes)
}

// Throughput returns MB/s over the whole run (total bytes / final time).
func (r *Recorder) Throughput(now sim.Time) float64 {
	if now <= 0 {
		return 0
	}
	var bytes int64
	for _, pt := range r.Series.Points() {
		bytes += pt.Bytes
	}
	return float64(bytes) / 1e6 / now.Seconds()
}

// IOPS returns ops/s over the whole run.
func (r *Recorder) IOPS(now sim.Time) float64 {
	if now <= 0 {
		return 0
	}
	var ops int64
	for _, pt := range r.Series.Points() {
		ops += pt.Ops
	}
	return float64(ops) / now.Seconds()
}
