// Package metrics is the repository's observability substrate: the central
// Registry of named counters, gauges and log-bucketed histograms, per-op
// trace spans (trace.go) with a ring-buffered sink, FIFO-resource queue
// statistics (resource.go), and the measurement helpers the paper reports
// through: latency distributions (Figs. 10–12), per-second throughput
// timelines (Figs. 5b, 14), IOPS, and storage footprints. All timestamps are
// virtual (sim.Time).
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"
	"time"

	"dedupstore/internal/sim"
)

// Histogram records latency samples into logarithmically spaced buckets and
// reports summary statistics. Instead of retaining every raw sample, each
// power-of-two range is split into 64 linear sub-buckets (HDR-histogram
// style), bounding the relative error of any reported quantile to under 0.8%
// while keeping memory constant. Count, Sum (hence Mean), Min and Max are
// tracked exactly.
//
// Histogram is safe for concurrent use and lock-free: buckets live in
// CAS-installed fixed-size chunks of atomic counters, so the observation hot
// path is a handful of atomic adds with no mutex and no allocation once a
// chunk exists. Readers iterate the same atomics; under concurrent writes a
// snapshot may be off by in-flight samples, which is irrelevant for the
// single-threaded DES engines that feed it.
type Histogram struct {
	count  atomic.Int64
	sum    atomic.Int64 // nanoseconds
	min    atomic.Int64 // nanoseconds; math.MaxInt64 until the first sample
	max    atomic.Int64 // nanoseconds
	chunks [histChunks]atomic.Pointer[histChunk]
}

// Sub-bucket geometry: values below subCount get an exact bucket each;
// values in [2^e, 2^(e+1)) are split into subCount linear sub-buckets of
// width 2^(e-subLog).
const (
	subLog   = 6
	subCount = 1 << subLog
)

// Chunked bucket storage: bucket indexes top out at
// (62-subLog)*subCount + 2*subCount - 1 = 3711 for any int64 sample, so 58
// chunks of 64 counters cover the full range; chunks allocate lazily on
// first touch.
const (
	histChunkLog = 6
	histChunkLen = 1 << histChunkLog
	histMaxIdx   = (62-subLog)*subCount + 2*subCount - 1
	histChunks   = histMaxIdx/histChunkLen + 1
)

type histChunk [histChunkLen]atomic.Int64

// bucketIdx maps a non-negative sample (in ns) to its bucket index. The
// mapping is continuous: idx 0..63 are exact 1ns buckets, each subsequent
// run of 64 indexes covers one power-of-two range.
func bucketIdx(d int64) int {
	if d < subCount {
		return int(d)
	}
	e := bits.Len64(uint64(d)) - 1 // e >= subLog
	sub := int(d >> uint(e-subLog))
	return (e-subLog)*subCount + sub
}

// bucketMid returns the representative value (midpoint) of bucket idx — the
// value reported for any quantile that lands in the bucket.
func bucketMid(idx int) int64 {
	if idx < subCount {
		return int64(idx)
	}
	q := idx >> subLog
	e := subLog + q - 1
	width := int64(1) << uint(e-subLog)
	lower := int64(idx-(q-1)*subCount) << uint(e-subLog)
	return lower + width/2
}

// bucketUpper returns the exclusive upper bound of bucket idx.
func bucketUpper(idx int) int64 {
	if idx < subCount {
		return int64(idx) + 1
	}
	q := idx >> subLog
	e := subLog + q - 1
	width := int64(1) << uint(e-subLog)
	lower := int64(idx-(q-1)*subCount) << uint(e-subLog)
	return lower + width
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	return h
}

// Add records one latency sample. Negative samples clamp to zero.
func (h *Histogram) Add(d time.Duration) {
	if d < 0 {
		d = 0
	}
	v := int64(d)
	idx := bucketIdx(v)
	ci := idx >> histChunkLog
	chunk := h.chunks[ci].Load()
	if chunk == nil {
		chunk = new(histChunk)
		if !h.chunks[ci].CompareAndSwap(nil, chunk) {
			chunk = h.chunks[ci].Load()
		}
	}
	chunk[idx&(histChunkLen-1)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// eachBucket walks the non-empty buckets in ascending index order, stopping
// early if fn returns false.
func (h *Histogram) eachBucket(fn func(idx int, count int64) bool) {
	for ci := range h.chunks {
		chunk := h.chunks[ci].Load()
		if chunk == nil {
			continue
		}
		base := ci << histChunkLog
		for i := range chunk {
			if c := chunk[i].Load(); c > 0 {
				if !fn(base+i, c) {
					return
				}
			}
		}
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() int { return int(h.count.Load()) }

// Sum returns the exact sum of all samples.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Mean returns the average latency (exact: tracked as sum/count, not from
// buckets).
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Percentile returns the p-th percentile (0 < p <= 100) using ceil-based
// nearest-rank: the value whose rank is ceil(p/100 * n). The result carries
// the bucket's representative value, within 0.8% of the true sample, clamped
// to the exact observed [min, max].
func (h *Histogram) Percentile(p float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	rank := int64(math.Ceil(p / 100 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	lo, hi := h.Min(), h.Max()
	var cum int64
	out := hi
	h.eachBucket(func(idx int, c int64) bool {
		cum += c
		if cum >= rank {
			v := time.Duration(bucketMid(idx))
			if v < lo {
				v = lo
			}
			if v > hi {
				v = hi
			}
			out = v
			return false
		}
		return true
	})
	return out
}

// Min returns the smallest sample (0 when empty).
func (h *Histogram) Min() time.Duration {
	if h.count.Load() == 0 {
		return 0
	}
	return time.Duration(h.min.Load())
}

// Max returns the largest sample.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Bucket is one non-empty histogram bucket: Count samples at most Le.
type Bucket struct {
	Le    time.Duration // inclusive upper bound of the bucket
	Count int64         // samples in this bucket (not cumulative)
}

// Buckets returns the non-empty buckets in ascending order.
func (h *Histogram) Buckets() []Bucket {
	out := make([]Bucket, 0, 16)
	h.eachBucket(func(idx int, c int64) bool {
		out = append(out, Bucket{Le: time.Duration(bucketUpper(idx) - 1), Count: c})
		return true
	})
	return out
}

// String summarizes the distribution.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		h.Count(), h.Mean(), h.Percentile(50), h.Percentile(99), h.Max())
}

// Point is one interval of a throughput timeline.
type Point struct {
	T     sim.Time
	Ops   int64
	Bytes int64
}

// MBps returns the interval's throughput in MB/s for the given interval
// length.
func (pt Point) MBps(interval time.Duration) float64 {
	return float64(pt.Bytes) / 1e6 / interval.Seconds()
}

// IOPS returns the interval's operation rate.
func (pt Point) IOPS(interval time.Duration) float64 {
	return float64(pt.Ops) / interval.Seconds()
}

// TimeSeries accumulates ops/bytes into fixed-width intervals — the data
// behind the paper's time-axis plots (Fig. 5b interference, Fig. 14 rate
// control).
type TimeSeries struct {
	interval time.Duration
	points   []Point
}

// NewTimeSeries returns a series with the given bucket width.
func NewTimeSeries(interval time.Duration) *TimeSeries {
	if interval <= 0 {
		interval = time.Second
	}
	return &TimeSeries{interval: interval}
}

// Interval returns the bucket width.
func (ts *TimeSeries) Interval() time.Duration { return ts.interval }

// Add records an operation completion of the given size at virtual time now.
func (ts *TimeSeries) Add(now sim.Time, bytes int) {
	idx := int(int64(now) / int64(ts.interval))
	for len(ts.points) <= idx {
		ts.points = append(ts.points, Point{T: sim.Time(int64(len(ts.points)) * int64(ts.interval))})
	}
	ts.points[idx].Ops++
	ts.points[idx].Bytes += int64(bytes)
}

// Points returns the timeline (shared slice; do not mutate).
func (ts *TimeSeries) Points() []Point { return ts.points }

// MeanMBps returns average throughput over buckets [from, to).
func (ts *TimeSeries) MeanMBps(from, to int) float64 {
	if from < 0 {
		from = 0
	}
	if to > len(ts.points) || to <= 0 {
		to = len(ts.points)
	}
	if from >= to {
		return 0
	}
	var bytes int64
	for _, pt := range ts.points[from:to] {
		bytes += pt.Bytes
	}
	return float64(bytes) / 1e6 / (float64(to-from) * ts.interval.Seconds())
}

// Recorder bundles a latency histogram and a throughput timeline for one
// operation class (e.g. "randwrite").
type Recorder struct {
	Lat    *Histogram
	Series *TimeSeries
}

// NewRecorder returns a recorder with one-second timeline buckets.
func NewRecorder() *Recorder {
	return &Recorder{Lat: NewHistogram(), Series: NewTimeSeries(time.Second)}
}

// Record notes one completed op: its completion time, latency and size.
func (r *Recorder) Record(now sim.Time, lat time.Duration, bytes int) {
	r.Lat.Add(lat)
	r.Series.Add(now, bytes)
}

// Throughput returns MB/s over the whole run (total bytes / final time).
func (r *Recorder) Throughput(now sim.Time) float64 {
	if now <= 0 {
		return 0
	}
	var bytes int64
	for _, pt := range r.Series.Points() {
		bytes += pt.Bytes
	}
	return float64(bytes) / 1e6 / now.Seconds()
}

// IOPS returns ops/s over the whole run.
func (r *Recorder) IOPS(now sim.Time) float64 {
	if now <= 0 {
		return 0
	}
	var ops int64
	for _, pt := range r.Series.Points() {
		ops += pt.Ops
	}
	return float64(ops) / now.Seconds()
}
