package metrics

import (
	"testing"
	"time"

	"dedupstore/internal/sim"
)

// The hot-path contract: resolve the metric handle once, then every
// observation is an atomic op. The *ByName variants measure the old pattern
// (registry lookup per observation) for comparison.

func BenchmarkCounterHandle(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("ops_total")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterByName(b *testing.B) {
	r := NewRegistry()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Counter("ops_total").Inc()
	}
}

func BenchmarkHistogramHandle(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("op_latency")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Add(time.Duration(i%1000) * time.Microsecond)
	}
}

func BenchmarkHistogramByName(b *testing.B) {
	r := NewRegistry()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Histogram("op_latency").Add(time.Duration(i%1000) * time.Microsecond)
	}
}

// BenchmarkSpanStartFinish measures a full span lifecycle on the pooled
// sink: start, one virtual-time sleep, finish (ring insert + recycle).
func BenchmarkSpanStartFinish(b *testing.B) {
	e := sim.New(1)
	sink := NewTraceSink(256)
	e.Go("spans", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			sp := sink.Start(p, "bench.op")
			p.Sleep(time.Microsecond)
			sp.Finish(p)
		}
	})
	b.ResetTimer()
	e.Run()
}

// BenchmarkSpanSampled is the same lifecycle with 1-in-64 sampling: most
// iterations pay only the counter bump and a nil check.
func BenchmarkSpanSampled(b *testing.B) {
	e := sim.New(1)
	sink := NewTraceSink(256)
	sink.SetSample(64)
	e.Go("spans", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			sp := sink.Start(p, "bench.op")
			p.Sleep(time.Microsecond)
			if sp != nil {
				sp.Finish(p)
			}
		}
	})
	b.ResetTimer()
	e.Run()
}
