package metrics

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestPercentileNearestRank pins the ceil-based nearest-rank definition:
// the p-th percentile is the sample at rank ceil(p/100*n). Bucketed values
// carry at most 0.8% relative error, so comparisons allow 1%.
func TestPercentileNearestRank(t *testing.T) {
	build := func(n int) *Histogram {
		h := NewHistogram()
		for i := 1; i <= n; i++ {
			h.Add(time.Duration(i) * time.Millisecond)
		}
		return h
	}
	cases := []struct {
		n    int
		p    float64
		want time.Duration
	}{
		{1, 1, time.Millisecond},
		{1, 50, time.Millisecond},
		{1, 99, time.Millisecond},
		{1, 100, time.Millisecond},
		{2, 1, 1 * time.Millisecond},   // rank ceil(0.02) = 1
		{2, 50, 1 * time.Millisecond},  // rank ceil(1.0) = 1, not 2
		{2, 99, 2 * time.Millisecond},  // rank ceil(1.98) = 2
		{2, 100, 2 * time.Millisecond}, // rank 2
		{100, 1, 1 * time.Millisecond}, // rank 1
		{100, 50, 50 * time.Millisecond},
		{100, 99, 99 * time.Millisecond},
		{100, 100, 100 * time.Millisecond},
	}
	for _, tc := range cases {
		h := build(tc.n)
		got := h.Percentile(tc.p)
		diff := got - tc.want
		if diff < 0 {
			diff = -diff
		}
		if float64(diff) > 0.01*float64(tc.want) {
			t.Errorf("n=%d p=%g: got %v, want %v (±1%%)", tc.n, tc.p, got, tc.want)
		}
	}
}

// TestPercentileClampedToObserved verifies quantiles never report a value
// outside the exact observed [min, max] even when the bucket midpoint would.
func TestPercentileClampedToObserved(t *testing.T) {
	h := NewHistogram()
	v := 1000001 * time.Nanosecond // deliberately off any bucket midpoint
	h.Add(v)
	h.Add(v)
	for _, p := range []float64{1, 50, 99, 100} {
		if got := h.Percentile(p); got != v {
			t.Errorf("p%g = %v, want exactly %v (min==max)", p, got, v)
		}
	}
}

// TestBucketGeometry checks the log-bucket mapping at power-of-two
// boundaries: indexes stay continuous, every sample lands inside its
// bucket's bounds, and the midpoint error is bounded by the sub-bucket
// width (≤ 1/128 relative for values ≥ 64).
func TestBucketGeometry(t *testing.T) {
	// Continuity across the exact-bucket / log-bucket seam and the first
	// power-of-two doublings.
	for d := int64(1); d < 10000; d++ {
		idx, prev := bucketIdx(d), bucketIdx(d-1)
		if idx != prev && idx != prev+1 {
			t.Fatalf("bucketIdx(%d)=%d jumps from bucketIdx(%d)=%d", d, idx, d-1, prev)
		}
		if up := bucketUpper(idx); d >= up {
			t.Fatalf("d=%d >= bucketUpper(%d)=%d", d, idx, up)
		}
		if idx > 0 {
			if up := bucketUpper(idx - 1); d < up {
				t.Fatalf("d=%d < bucketUpper(%d)=%d: buckets overlap", d, idx-1, up)
			}
		}
	}
	// Spot-check the seam values.
	for _, tc := range []struct{ d, idx int64 }{
		{63, 63}, {64, 64}, {127, 127}, {128, 128}, {255, 191}, {256, 192},
	} {
		if got := bucketIdx(tc.d); int64(got) != tc.idx {
			t.Errorf("bucketIdx(%d) = %d, want %d", tc.d, got, tc.idx)
		}
	}
	// Midpoint relative error stays under 1/128 for large values.
	for _, d := range []int64{64, 65, 127, 128, 1000, 4095, 4096, 1e6, 1e9, 1e12} {
		mid := bucketMid(bucketIdx(d))
		diff := mid - d
		if diff < 0 {
			diff = -diff
		}
		if float64(diff) > float64(d)/128 {
			t.Errorf("bucketMid(bucketIdx(%d)) = %d: error %d exceeds 1/128", d, mid, diff)
		}
	}
}

// TestHistogramBucketsCumulative verifies Buckets() covers every sample
// exactly once and is ordered, which Dump relies on for the Prometheus
// cumulative form.
func TestHistogramBucketsCumulative(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 1000; i++ {
		h.Add(time.Duration(i) * time.Microsecond)
	}
	var total int64
	var prev time.Duration = -1
	for _, b := range h.Buckets() {
		if b.Le <= prev {
			t.Fatalf("bucket bounds not ascending: %v after %v", b.Le, prev)
		}
		if b.Count <= 0 {
			t.Fatalf("empty bucket emitted: %+v", b)
		}
		prev = b.Le
		total += b.Count
	}
	if total != 1000 {
		t.Fatalf("bucket counts sum to %d, want 1000", total)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				reg.Counter("ops_total").Inc()
				reg.Gauge("depth").Add(1)
				reg.Histogram("lat").Add(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("ops_total").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := reg.Gauge("depth").Value(); got != workers*perWorker {
		t.Errorf("gauge = %d, want %d", got, workers*perWorker)
	}
	if got := reg.Histogram("lat").Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func TestCounterIgnoresNegative(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-3)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5 (negative adds ignored)", c.Value())
	}
}

func TestRegistryNilSafe(t *testing.T) {
	var reg *Registry
	reg.Counter("x").Inc()
	reg.Gauge("y").Set(3)
	reg.Histogram("z").Add(time.Second)
	if reg.Dump() != "" {
		t.Fatal("nil registry Dump not empty")
	}
}

func TestRegistryDumpFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("writes_total").Add(7)
	reg.Gauge("queue_depth").Set(3)
	reg.Histogram("op.latency/ms").Add(time.Second) // name needs sanitizing
	out := reg.Dump()
	for _, want := range []string{
		"# TYPE writes_total counter\nwrites_total 7\n",
		"# TYPE queue_depth gauge\nqueue_depth 3\n",
		"# TYPE op_latency_ms histogram\n",
		"op_latency_ms_bucket{le=\"+Inf\"} 1\n",
		"op_latency_ms_sum 1\n",
		"op_latency_ms_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Dump missing %q:\n%s", want, out)
		}
	}
	// Histogram buckets must be cumulative and end at the +Inf count.
	reg2 := NewRegistry()
	h := reg2.Histogram("lat")
	for i := 1; i <= 10; i++ {
		h.Add(time.Duration(i) * time.Millisecond)
	}
	lines := strings.Split(reg2.Dump(), "\n")
	var last int64 = -1
	for _, ln := range lines {
		if strings.HasPrefix(ln, "lat_bucket{") {
			var cum int64
			if _, err := fmt.Sscanf(ln[strings.LastIndex(ln, " ")+1:], "%d", &cum); err != nil {
				t.Fatalf("unparseable bucket line %q", ln)
			}
			if cum < last {
				t.Fatalf("bucket counts not cumulative: %q after %d", ln, last)
			}
			last = cum
		}
	}
	if last != 10 {
		t.Fatalf("final cumulative bucket = %d, want 10", last)
	}
}

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"rados_op_total:rados.write": "rados_op_total:rados_write",
		"9lives":                     "_9lives",
		"a-b c":                      "a_b_c",
	}
	for in, want := range cases {
		if got := sanitizeMetricName(in); got != want {
			t.Errorf("sanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
}
