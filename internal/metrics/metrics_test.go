package metrics

import (
	"testing"
	"time"

	"dedupstore/internal/sim"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Mean() != 0 || h.Percentile(50) != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not zero")
	}
	for i := 1; i <= 100; i++ {
		h.Add(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Mean(); got != 50500*time.Microsecond {
		t.Fatalf("mean = %v", got)
	}
	if got := h.Percentile(50); got < 49*time.Millisecond || got > 51*time.Millisecond {
		t.Fatalf("p50 = %v", got)
	}
	if got := h.Percentile(99); got < 98*time.Millisecond || got > 100*time.Millisecond {
		t.Fatalf("p99 = %v", got)
	}
	if h.Max() != 100*time.Millisecond {
		t.Fatalf("max = %v", h.Max())
	}
	if h.String() == "" {
		t.Fatal("empty String")
	}
}

func TestPercentileBounds(t *testing.T) {
	h := NewHistogram()
	h.Add(time.Second)
	if h.Percentile(0.0001) != time.Second || h.Percentile(100) != time.Second {
		t.Fatal("single-sample percentiles wrong")
	}
}

func TestTimeSeries(t *testing.T) {
	ts := NewTimeSeries(time.Second)
	ts.Add(sim.Time(500*time.Millisecond), 1000)
	ts.Add(sim.Time(700*time.Millisecond), 1000)
	ts.Add(sim.Time(2500*time.Millisecond), 4000)
	pts := ts.Points()
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].Bytes != 2000 || pts[0].Ops != 2 {
		t.Fatalf("bucket0 = %+v", pts[0])
	}
	if pts[1].Bytes != 0 {
		t.Fatalf("gap bucket = %+v", pts[1])
	}
	if pts[2].Bytes != 4000 {
		t.Fatalf("bucket2 = %+v", pts[2])
	}
	if got := pts[0].MBps(time.Second); got != 0.002 {
		t.Fatalf("MBps = %v", got)
	}
	if got := pts[0].IOPS(time.Second); got != 2 {
		t.Fatalf("IOPS = %v", got)
	}
}

func TestMeanMBps(t *testing.T) {
	ts := NewTimeSeries(time.Second)
	for s := 0; s < 10; s++ {
		ts.Add(sim.Time(time.Duration(s)*time.Second+time.Millisecond), 1e6)
	}
	if got := ts.MeanMBps(0, 10); got != 1.0 {
		t.Fatalf("mean = %v", got)
	}
	if got := ts.MeanMBps(-5, 100); got != 1.0 {
		t.Fatalf("clamped mean = %v", got)
	}
	if got := ts.MeanMBps(5, 5); got != 0 {
		t.Fatalf("empty window = %v", got)
	}
}

func TestRecorder(t *testing.T) {
	r := NewRecorder()
	r.Record(sim.Time(time.Second), 10*time.Millisecond, 1e6)
	r.Record(sim.Time(2*time.Second), 20*time.Millisecond, 1e6)
	now := sim.Time(2 * time.Second)
	if got := r.Throughput(now); got != 1.0 {
		t.Fatalf("throughput = %v", got)
	}
	if got := r.IOPS(now); got != 1.0 {
		t.Fatalf("iops = %v", got)
	}
	if r.Lat.Mean() != 15*time.Millisecond {
		t.Fatalf("latency mean = %v", r.Lat.Mean())
	}
	if r.Throughput(0) != 0 || r.IOPS(0) != 0 {
		t.Fatal("zero-time metrics not zero")
	}
}

func TestTimeSeriesClampedInterval(t *testing.T) {
	ts := NewTimeSeries(0) // clamps to 1s
	if ts.Interval() != time.Second {
		t.Fatalf("interval = %v", ts.Interval())
	}
}
