package xxh

import (
	"testing"
	"testing/quick"
)

func TestMix64Avalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	base := Mix64(0x1234567890abcdef)
	for bit := uint(0); bit < 64; bit++ {
		diff := base ^ Mix64(0x1234567890abcdef^(1<<bit))
		ones := popcount(diff)
		if ones < 12 || ones > 52 {
			t.Fatalf("bit %d: only %d output bits changed", bit, ones)
		}
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func TestHashStringDeterministic(t *testing.T) {
	a := HashString(7, "object-name")
	b := HashString(7, "object-name")
	if a != b {
		t.Fatal("not deterministic")
	}
	if HashString(8, "object-name") == a {
		t.Fatal("seed has no effect")
	}
	if HashString(7, "object-namf") == a {
		t.Fatal("content change has no effect")
	}
}

func TestHashStringMatchesBytes(t *testing.T) {
	prop := func(seed uint64, s string) bool {
		return HashString(seed, s) == HashBytes(seed, []byte(s))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLengthExtensionDistinct(t *testing.T) {
	// Strings that are prefixes of each other must hash differently.
	if HashString(1, "abc") == HashString(1, "abc\x00") {
		t.Fatal("length extension collision")
	}
	if HashString(1, "") == HashString(1, "\x00") {
		t.Fatal("empty vs NUL collision")
	}
}

func TestHashWordsOrderMatters(t *testing.T) {
	if HashWords(1, 2, 3) == HashWords(1, 3, 2) {
		t.Fatal("word order ignored")
	}
	if HashWords(1) == HashWords(2) {
		t.Fatal("seed ignored")
	}
}

func TestDistributionRough(t *testing.T) {
	// Bucket 64k sequential keys into 16 bins: each should get ~4096.
	bins := make([]int, 16)
	for i := uint64(0); i < 65536; i++ {
		bins[HashWords(9, i)%16]++
	}
	for i, n := range bins {
		if n < 3600 || n > 4600 {
			t.Fatalf("bin %d has %d (skewed)", i, n)
		}
	}
}
