// Package xxh provides small, fast, seedable non-cryptographic 64-bit
// hashing used for CRUSH placement draws and bloom-filter indexing. It is a
// splitmix64-based mixer: statistically strong avalanche behaviour,
// deterministic across platforms, and zero allocation.
package xxh

// Mix64 applies the splitmix64 finalizer to x.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Combine mixes two words into one.
func Combine(a, b uint64) uint64 {
	return Mix64(a ^ Mix64(b+0x9e3779b97f4a7c15))
}

// HashWords hashes a sequence of words under a seed. It is the draw function
// used by straw2 bucket selection.
func HashWords(seed uint64, words ...uint64) uint64 {
	h := Mix64(seed + 0x9e3779b97f4a7c15)
	for _, w := range words {
		h = Combine(h, w)
	}
	return h
}

// HashString hashes a string under a seed.
func HashString(seed uint64, s string) uint64 {
	h := Mix64(seed + 0x9e3779b97f4a7c15)
	var cur uint64
	var n uint
	for i := 0; i < len(s); i++ {
		cur |= uint64(s[i]) << (8 * n)
		n++
		if n == 8 {
			h = Combine(h, cur)
			cur, n = 0, 0
		}
	}
	if n > 0 {
		h = Combine(h, cur|uint64(n)<<56)
	}
	return Combine(h, uint64(len(s)))
}

// HashBytes hashes a byte slice under a seed.
func HashBytes(seed uint64, b []byte) uint64 {
	h := Mix64(seed + 0x9e3779b97f4a7c15)
	var cur uint64
	var n uint
	for i := 0; i < len(b); i++ {
		cur |= uint64(b[i]) << (8 * n)
		n++
		if n == 8 {
			h = Combine(h, cur)
			cur, n = 0, 0
		}
	}
	if n > 0 {
		h = Combine(h, cur|uint64(n)<<56)
	}
	return Combine(h, uint64(len(b)))
}
