package experiments

import (
	"strings"
	"testing"
)

// tinyScale keeps the experiment smoke tests fast.
var tinyScale = Scale{Data: 0.1}

func TestFig3ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	rows := Fig3(tinyScale)
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Global <= r.Local {
			t.Errorf("%s: global %.1f <= local %.1f", r.Workload, r.Global, r.Local)
		}
	}
}

func TestTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	rows := Table1(tinyScale)
	if rows[0].Local <= rows[3].Local {
		t.Errorf("local ratio did not collapse with OSD count: %.1f -> %.1f", rows[0].Local, rows[3].Local)
	}
	for _, r := range rows {
		if r.Global < 40 || r.Global > 60 {
			t.Errorf("global ratio %.1f far from 50%%", r.Global)
		}
	}
}

func TestFig5aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	rows := Fig5a(tinyScale)
	if rows[1].Throughput >= rows[0].Throughput {
		t.Errorf("inline 16K (%.1f) not slower than original (%.1f)", rows[1].Throughput, rows[0].Throughput)
	}
	if rows[2].Throughput <= rows[1].Throughput {
		t.Errorf("aligned 32K (%.1f) not faster than partial 16K (%.1f)", rows[2].Throughput, rows[1].Throughput)
	}
}

func TestFig10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	rows := Fig10(tinyScale)
	lat := map[string]float64{}
	for _, r := range rows {
		if r.Op == "randwrite" {
			lat[r.Config] = float64(r.Latency)
		}
	}
	if !(lat["Original"] < lat["Proposed"] && lat["Proposed"] < lat["Proposed-flush"]) {
		t.Errorf("write latency ordering wrong: %v", lat)
	}
}

func TestTable2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	rows := Table2(tinyScale)
	if !(rows[0].StoredMetadata > rows[1].StoredMetadata && rows[1].StoredMetadata > rows[2].StoredMetadata) {
		t.Errorf("metadata not shrinking with chunk size: %d/%d/%d",
			rows[0].StoredMetadata, rows[1].StoredMetadata, rows[2].StoredMetadata)
	}
	if rows[0].IdealRatio < rows[2].IdealRatio {
		t.Errorf("ideal ratio not declining: %.1f -> %.1f", rows[0].IdealRatio, rows[2].IdealRatio)
	}
}

func TestTable3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	rows := Table3(tinyScale)
	for _, r := range rows {
		if r.ProposedMoved >= r.OriginalMoved {
			t.Errorf("%d failed: proposed moved %d >= original %d", r.FailedOSDs, r.ProposedMoved, r.OriginalMoved)
		}
	}
}

func TestFig13Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	series := Fig13(tinyScale)
	byLabel := map[string][]int64{}
	for _, s := range series {
		byLabel[s.Label] = s.UsedBytes
	}
	last := func(l string) int64 { u := byLabel[l]; return u[len(u)-1] }
	if last("rep+dedup") >= last("rep")/5 {
		t.Errorf("dedup saving too small: %d vs %d", last("rep+dedup"), last("rep"))
	}
	if last("rep+dedup+comp") >= last("rep+dedup") {
		t.Errorf("compression did not help: %d vs %d", last("rep+dedup+comp"), last("rep+dedup"))
	}
	if last("ec") >= last("rep") {
		t.Errorf("EC not cheaper than replication: %d vs %d", last("ec"), last("rep"))
	}
}

func TestTableRendering(t *testing.T) {
	tab := Table{
		Title:   "t",
		Columns: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   []string{"n"},
	}
	out := tab.String()
	for _, want := range []string{"== t ==", "333", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestScaleHelpers(t *testing.T) {
	sc := Scale{Data: 0.5}
	if sc.bytes(100) != 50 || sc.count(10) != 5 {
		t.Fatal("scale math wrong")
	}
	if (Scale{}).bytes(7) != 7 {
		t.Fatal("zero scale must pass through")
	}
	if (Scale{Data: 0.0001}).count(10) != 1 {
		t.Fatal("count must clamp to 1")
	}
}

// TestFPIndexShape runs the latency sweep at the golden scale and checks the
// claims the table's notes make: a monotone hit-latency cliff once the index
// outgrows the small cache, a flat profile under the large cache, near-flat
// negative lookups under both, and bloom false positives within ~2x of the
// filters' design rate. Both seeds must show the same shape.
func TestFPIndexShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	rows := FPIndexLatencySweep(QuickScale())
	// Group rows by (seed, cache); within each group entries ascend.
	groups := map[[2]int64][]FPIndexLatencyRow{}
	var order [][2]int64
	for _, r := range rows {
		k := [2]int64{r.Seed, r.CacheKiB}
		if len(groups[k]) == 0 {
			order = append(order, k)
		}
		groups[k] = append(groups[k], r)
	}
	for _, k := range order {
		g := groups[k]
		if len(g) < 3 {
			t.Fatalf("seed %d cache %dKiB: only %d index sizes", k[0], k[1], len(g))
		}
		first, last := g[0], g[len(g)-1]
		for i := 1; i < len(g); i++ {
			if g[i].HitP50Us < g[i-1].HitP50Us*0.99 {
				t.Errorf("seed %d cache %dKiB: hit p50 not monotone: %d entries %.1fus -> %d entries %.1fus",
					k[0], k[1], g[i-1].Entries, g[i-1].HitP50Us, g[i].Entries, g[i].HitP50Us)
			}
		}
		smallCache := last.IndexKiB > k[1]
		if smallCache && last.HitP50Us < 1.2*first.HitP50Us {
			t.Errorf("seed %d cache %dKiB: no cliff: index %dKiB exceeds cache but hit p50 %.1fus vs %.1fus",
				k[0], k[1], last.IndexKiB, last.HitP50Us, first.HitP50Us)
		}
		if !smallCache && last.HitP50Us > 1.2*first.HitP50Us {
			t.Errorf("seed %d cache %dKiB: cached config not flat: hit p50 %.1fus vs %.1fus",
				k[0], k[1], last.HitP50Us, first.HitP50Us)
		}
		if last.NegP50Us > 1.2*first.NegP50Us {
			t.Errorf("seed %d cache %dKiB: negative lookups not flat: p50 %.1fus vs %.1fus",
				k[0], k[1], last.NegP50Us, first.NegP50Us)
		}
		for _, r := range g {
			if r.ObsFPPct > 2*r.EstFPPct+0.1 {
				t.Errorf("seed %d cache %dKiB entries %d: observed FP %.2f%% beyond 2x design %.2f%%",
					k[0], k[1], r.Entries, r.ObsFPPct, r.EstFPPct)
			}
		}
	}
}
