package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"dedupstore/internal/chaos"
	"dedupstore/internal/client"
	"dedupstore/internal/core"
	"dedupstore/internal/rados"
	"dedupstore/internal/sim"
)

// Chaos is the availability experiment: a dedup store under continuous
// foreground load takes a seeded OSD crash, and the report walks the whole
// reaction chain — heartbeat detection, degraded I/O, mark-out, remap,
// recovery, rejoin — as an availability timeline with the paper-relevant
// outcome: zero foreground failures and intact dedup invariants.
//
// Everything runs on the virtual clock from a fixed seed, so a given
// (seed, scale) pair reproduces bit-for-bit, faults landing between the
// same I/O events on every run.

// ChaosScenario selects the chunk-pool protection scheme and fault shape
// under test.
type ChaosScenario struct {
	Name  string
	Chunk rados.Redundancy
	// KillN, when > 0, replaces the default single 4-second crash with a
	// chaos.CrashBurst of KillN short kills cycling through the OSDs across
	// the load window — each one lands mid-flush (kill-during-flush), at
	// several times the single-crash fault rate.
	KillN int
	// GCDuring additionally runs a garbage-collection loop concurrently
	// with the load, so kills also land inside GC passes (kill-during-GC)
	// and the generation-checked sweep is exercised against live increfs.
	GCDuring bool
}

// ChaosEvent is one timeline row.
type ChaosEvent struct {
	At   time.Duration // virtual time from experiment start
	What string
}

// ChaosResult is one scenario's outcome.
type ChaosResult struct {
	Scenario string
	Timeline []ChaosEvent

	// Availability measures.
	DetectLatency time.Duration // crash -> marked down
	Downtime      time.Duration // crash -> process restarted
	MTTR          time.Duration // crash -> cluster settled at full redundancy

	// Work absorbed by the degraded-I/O machinery.
	DegradedReads  int64
	DegradedWrites int64
	Timeouts       int64
	ClientRetries  int64
	ReplicaHeals   int64
	RecoveredBytes int64

	// Invariants after the dust settles.
	ForegroundErrors int
	VerifyErrors     int
	ScrubIssues      int
	GCStaleRefs      int64
	AuditRepairs     int64 // intents promoted + refs repaired + counts fixed
	LostChunks       int64 // bindings pointing at data that exists nowhere
}

// DefaultChaosScenarios covers both protection schemes for the chunk pool,
// plus the high-rate kill schedules that stress the two-phase reference
// protocol: kill-during-flush and kill-during-GC at 5x the single-crash
// fault rate.
func DefaultChaosScenarios() []ChaosScenario {
	return []ChaosScenario{
		{Name: "rep2", Chunk: rados.ReplicatedN(2)},
		{Name: "ec2+1", Chunk: rados.ErasureKM(2, 1)},
		{Name: "rep2-killflush", Chunk: rados.ReplicatedN(2), KillN: 5},
		{Name: "rep2-killgc", Chunk: rados.ReplicatedN(2), KillN: 5, GCDuring: true},
	}
}

// Chaos runs every scenario with the same seed and fault schedule.
func Chaos(sc Scale) []ChaosResult {
	var out []ChaosResult
	for _, scn := range DefaultChaosScenarios() {
		out = append(out, chaosRun(sc, scn, 811))
	}
	return out
}

func chaosRun(sc Scale, scn ChaosScenario, seed int64) ChaosResult {
	res := ChaosResult{Scenario: scn.Name}
	h := sc.newHarness(seed, 4, 4)
	s := h.dedupStore(func(cfg *core.Config) {
		cfg.ChunkRedundancy = scn.Chunk
		cfg.Rate.Enabled = false
		cfg.HitSet.HitCount = 1000 // nothing is "hot": everything flushes
		cfg.DedupThreads = 4
		cfg.FalsePositiveRefs = true // crash-safe refcount mode (§4.6)
	})
	mon := h.c.StartMonitor(rados.MonitorConfig{
		Interval:    250 * time.Millisecond,
		Grace:       time.Second,
		OutAfter:    2500 * time.Millisecond,
		AutoRecover: true,
	})
	s.StartEngine()

	const (
		workers  = 4
		objSize  = 16 << 10
		crashed  = 5
		crashAt  = time.Second
		crashFor = 4 * time.Second
		loadFor  = 8 * time.Second
	)
	objects := sc.countMin(96, 16)
	perWorker := objects / workers

	inj := chaos.NewInjector(h.c)
	shadow := make([][]byte, objects)
	var t0 sim.Time

	h.run(func(p *sim.Proc) {
		// Preload half the namespace so the crash window also hits reads,
		// deref-rewrites and flushes of pre-existing state.
		pre := rand.New(rand.NewSource(seed + 100))
		backend := client.NewRetryBackend(
			&client.DedupBackend{Client: s.Client("preload")},
			client.DefaultRetryPolicy(), h.c.Metrics())
		for i := 0; i < objects/2; i++ {
			shadow[i] = chaosObject(pre, objSize)
			if err := backend.Write(p, chaosOID(i), 0, shadow[i]); err != nil {
				res.ForegroundErrors++
			}
		}
		s.Engine().DrainAndWait(p)
		s.StartEngine() // workers keep flushing through the fault window

		// Fault schedule and foreground load start together at t0. The kill
		// scenarios swap the single long crash for a burst of short kills:
		// each is long enough (1.3s) for the heartbeat monitor to mark the
		// OSD down, but the 1.4s spacing keeps at most one OSD dead at once.
		t0 = p.Now()
		if scn.KillN > 0 {
			inj.Apply(chaos.CrashBurst(h.c.OSDs(), scn.KillN, crashAt, 7*time.Second, 1300*time.Millisecond))
		} else {
			inj.Apply(chaos.Schedule{
				{At: crashAt, Kind: chaos.KindCrashOSD, OSD: crashed, Duration: crashFor},
			})
		}
		var sigs []*sim.Signal
		if scn.GCDuring {
			sigs = append(sigs, p.Go("gcloop", func(q *sim.Proc) {
				// Collection passes overlap the kill windows; errors beyond
				// the retry budget are tolerated (the post-mortem GC re-runs)
				// but the pass must never violate an invariant.
				for q.Now() < t0+sim.Time(loadFor) {
					_, _ = s.GC(q)
					q.Sleep(400 * time.Millisecond)
				}
			}))
		}
		for w := 0; w < workers; w++ {
			w := w
			sigs = append(sigs, p.Go(fmt.Sprintf("load%d", w), func(q *sim.Proc) {
				rng := rand.New(rand.NewSource(seed + int64(w)))
				be := client.NewRetryBackend(
					&client.DedupBackend{Client: s.Client(fmt.Sprintf("client%d", w))},
					client.DefaultRetryPolicy(), h.c.Metrics())
				for q.Now() < t0+sim.Time(loadFor) {
					i := w*perWorker + rng.Intn(perWorker)
					data := chaosObject(rng, objSize)
					if err := be.Write(q, chaosOID(i), 0, data); err != nil {
						res.ForegroundErrors++
					} else {
						shadow[i] = data
					}
					if shadow[i] != nil && rng.Intn(3) == 0 {
						got, err := be.Read(q, chaosOID(i), 0, int64(len(shadow[i])))
						if err != nil {
							res.ForegroundErrors++
						}
						_ = got
					}
					q.Sleep(time.Duration(5+rng.Intn(20)) * time.Millisecond)
				}
			}))
		}
		sim.WaitAll(p, sigs...)

		mon.WaitSettled(p)
		s.Engine().DrainAndWait(p)
		res.MTTR = (p.Now() - t0).Duration() - crashAt

		// Post-mortem: dedup invariants must have survived the window. Let
		// every reference-intent lease expire first, then reconcile in both
		// directions — audit (chunkmap→chunk), scrub, GC (chunk→chunkmap) —
		// before asserting the store is clean.
		p.Sleep(3 * time.Second)
		if au, err := s.Audit(p); err != nil {
			res.LostChunks = -1
		} else {
			res.AuditRepairs = au.IntentsPromoted + au.RefsRepaired + au.CountsFixed
			res.LostChunks = au.LostChunks
		}
		rep, err := s.Scrub(p)
		if err != nil {
			res.ScrubIssues = -1
		} else {
			res.ScrubIssues = len(rep.Issues)
		}
		if _, err := s.GC(p); err == nil {
			// A second pass after cleanup must find nothing further.
			if st, err := s.GC(p); err == nil {
				res.GCStaleRefs = st.StaleRefs
			}
		}
		verify := client.NewRetryBackend(
			&client.DedupBackend{Client: s.Client("verify")},
			client.DefaultRetryPolicy(), h.c.Metrics())
		for i, want := range shadow {
			if want == nil {
				continue
			}
			got, err := verify.Read(p, chaosOID(i), 0, int64(len(want)))
			if err != nil || string(got) != string(want) {
				res.VerifyErrors++
			}
		}
	})

	// Assemble the timeline from the injector and monitor event streams.
	rel := func(at sim.Time) time.Duration { return (at - t0).Duration() }
	for _, ev := range inj.Events() {
		what := "fault: " + ev.Fault.String()
		if ev.Revert {
			what = "fault reverted: " + ev.Fault.String()
		}
		res.Timeline = append(res.Timeline, ChaosEvent{At: rel(ev.At), What: what})
	}
	for _, ev := range mon.Events() {
		var what string
		switch ev.Kind {
		case "down":
			what = fmt.Sprintf("monitor marked osd.%d down", ev.OSD)
			if res.DetectLatency == 0 {
				res.DetectLatency = rel(ev.At) - crashAt
			}
		case "out":
			what = fmt.Sprintf("monitor marked osd.%d out (PGs remap)", ev.OSD)
		case "rejoin":
			what = fmt.Sprintf("osd.%d rejoined", ev.OSD)
		case "recovered":
			what = "recovery pass complete"
		}
		res.Timeline = append(res.Timeline, ChaosEvent{At: rel(ev.At), What: what})
	}
	sortTimeline(res.Timeline)
	res.Downtime = crashFor

	reg := h.c.Metrics()
	res.DegradedReads = reg.Counter("rados_degraded_reads_total").Value()
	res.DegradedWrites = reg.Counter("rados_degraded_writes_total").Value()
	res.Timeouts = reg.Counter("rados_requests_timed_out_total").Value()
	res.ClientRetries = reg.Counter("client_retries_total").Value()
	res.ReplicaHeals = reg.Counter("rados_replica_heals_total").Value()
	res.RecoveredBytes = h.c.RecoveredBytes()
	return res
}

func chaosOID(i int) string { return fmt.Sprintf("chaos-o%03d", i) }

// chaosObject builds a pseudo-random object whose 4 KiB blocks are drawn
// from a small pool, giving the workload a ~50% dedup ratio.
func chaosObject(rng *rand.Rand, size int) []byte {
	const block = 4096
	data := make([]byte, size)
	for off := 0; off < size; off += block {
		b := data[off:]
		if len(b) > block {
			b = b[:block]
		}
		if rng.Intn(2) == 0 {
			// One of 8 shared blocks: dedupable across objects.
			fill := byte(rng.Intn(8))
			for i := range b {
				b[i] = fill
			}
		} else {
			rng.Read(b)
		}
	}
	return data
}

func sortTimeline(tl []ChaosEvent) {
	for i := 1; i < len(tl); i++ {
		for j := i; j > 0 && tl[j].At < tl[j-1].At; j-- {
			tl[j], tl[j-1] = tl[j-1], tl[j]
		}
	}
}

// ChaosTables renders each scenario as a timeline table plus a summary.
func ChaosTables(results []ChaosResult) []Table {
	var out []Table
	for _, r := range results {
		tl := Table{
			Title:   fmt.Sprintf("Chaos availability timeline (chunk pool %s)", r.Scenario),
			Columns: []string{"t (virtual)", "event"},
		}
		for _, ev := range r.Timeline {
			tl.Rows = append(tl.Rows, []string{ev.At.String(), ev.What})
		}
		out = append(out, tl)

		sum := Table{
			Title:   fmt.Sprintf("Chaos summary (chunk pool %s)", r.Scenario),
			Columns: []string{"measure", "value"},
			Rows: [][]string{
				{"detection latency", r.DetectLatency.String()},
				{"process downtime", r.Downtime.String()},
				{"time to full redundancy (MTTR)", r.MTTR.String()},
				{"degraded reads served", fmt.Sprint(r.DegradedReads)},
				{"degraded writes applied", fmt.Sprint(r.DegradedWrites)},
				{"requests timed out", fmt.Sprint(r.Timeouts)},
				{"client retries absorbed", fmt.Sprint(r.ClientRetries)},
				{"replica heal-on-write repairs", fmt.Sprint(r.ReplicaHeals)},
				{"bytes moved by recovery", mb(r.RecoveredBytes)},
				{"foreground op failures", fmt.Sprint(r.ForegroundErrors)},
				{"objects failing verification", fmt.Sprint(r.VerifyErrors)},
				{"dedup scrub issues", fmt.Sprint(r.ScrubIssues)},
				{"stale refs after GC", fmt.Sprint(r.GCStaleRefs)},
				{"audit repairs applied", fmt.Sprint(r.AuditRepairs)},
				{"lost chunks", fmt.Sprint(r.LostChunks)},
			},
			Notes: []string{
				"all times virtual; fixed seed makes the run bit-for-bit reproducible",
				"foreground failures, verification failures, scrub issues, residual stale refs and lost chunks must all be 0",
			},
		}
		out = append(out, sum)
	}
	return out
}

// Fingerprint canonicalizes a result for determinism checks: two runs with
// the same seed must produce identical fingerprints.
func (r ChaosResult) Fingerprint() string {
	s := r.Scenario + "\n"
	for _, ev := range r.Timeline {
		s += fmt.Sprintf("%v %s\n", ev.At, ev.What)
	}
	s += fmt.Sprintf("detect=%v mttr=%v dr=%d dw=%d to=%d cr=%d rh=%d rb=%d fg=%d ve=%d si=%d gc=%d au=%d lc=%d\n",
		r.DetectLatency, r.MTTR, r.DegradedReads, r.DegradedWrites, r.Timeouts,
		r.ClientRetries, r.ReplicaHeals, r.RecoveredBytes,
		r.ForegroundErrors, r.VerifyErrors, r.ScrubIssues, r.GCStaleRefs,
		r.AuditRepairs, r.LostChunks)
	return s
}

// ChaosSeeded runs every scenario with a caller-chosen seed; the default
// sweep and the harness's determinism tests both route through it.
func ChaosSeeded(sc Scale, seed int64) []ChaosResult {
	var out []ChaosResult
	for _, scn := range DefaultChaosScenarios() {
		out = append(out, chaosRun(sc, scn, seed))
	}
	return out
}

// ChaosSweepResult runs the default chaos sweep and packages it as a
// machine-readable Result.
func ChaosSweepResult(sc Scale) Result {
	return Result{Name: "chaos", Tables: ChaosTables(Chaos(sc))}
}
