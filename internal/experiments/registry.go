package experiments

import (
	"bytes"
	"encoding/json"
)

// Result is the machine-readable outcome of one experiment: the experiment's
// CLI name plus the same tables the CLI prints. Marshaling is canonical —
// struct field order is fixed, cells are the exact rendered strings, and no
// wall-clock timestamps appear — so a (seed, scale) pair always produces the
// same bytes and results can be golden-snapshotted and diffed by CI.
type Result struct {
	Name   string  `json:"name"`
	Tables []Table `json:"tables"`
}

// CanonicalJSON renders the result as indented JSON with a trailing newline,
// the exact bytes written to results/<name>.json and testdata/golden.
func (r Result) CanonicalJSON() ([]byte, error) {
	var b bytes.Buffer
	enc := json.NewEncoder(&b)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// Output renders the result the way the CLI prints it: every table in order.
func (r Result) Output() string {
	var b bytes.Buffer
	for _, t := range r.Tables {
		b.WriteString(t.String())
	}
	return b.String()
}

// Experiment is one registered paper experiment: a stable CLI name plus a
// runner that builds its own isolated deterministic sim and returns a
// JSON-able Result. Runners are pure functions of (seed baked in, Scale), so
// the harness may execute any set of them concurrently.
type Experiment interface {
	Name() string
	Run(sc Scale) Result
}

type expFunc struct {
	name string
	run  func(Scale) Result
}

func (e expFunc) Name() string        { return e.name }
func (e expFunc) Run(sc Scale) Result { return e.run(sc) }

// NewExperiment wraps a runner function as an Experiment; used by the
// registry below and by harness tests that need ad-hoc experiments.
func NewExperiment(name string, run func(Scale) Result) Experiment {
	return expFunc{name: name, run: run}
}

// Registry returns every experiment in canonical presentation order (the
// order of figures and tables in the paper, then chaos and the ablations).
func Registry() []Experiment {
	return []Experiment{
		NewExperiment("fig3", Fig3Result),
		NewExperiment("table1", Table1Result),
		NewExperiment("fig5a", Fig5aResult),
		NewExperiment("fig5b", Fig5bResult),
		NewExperiment("fig10", Fig10Result),
		NewExperiment("fig11", Fig11Result),
		NewExperiment("table2", Table2Result),
		NewExperiment("fig12", Fig12Result),
		NewExperiment("table3", Table3Result),
		NewExperiment("fig13", Fig13Result),
		NewExperiment("fig14", Fig14Result),
		NewExperiment("chaos", ChaosSweepResult),
		NewExperiment("ablation", AblationResult),
		NewExperiment("qos", QoSResult),
		NewExperiment("fpindex", FPIndexResult),
		NewExperiment("scale", ScaleResult),
		NewExperiment("tenants", TenantsResult),
		NewExperiment("redundancy", RedundancyResult),
	}
}

// Names lists the registered experiment names in canonical order.
func Names() []string {
	exps := Registry()
	names := make([]string, len(exps))
	for i, e := range exps {
		names[i] = e.Name()
	}
	return names
}

// Lookup finds a registered experiment by name.
func Lookup(name string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.Name() == name {
			return e, true
		}
	}
	return nil, false
}
