package experiments

import (
	"fmt"
	"time"

	"dedupstore/internal/core"
	"dedupstore/internal/qos"
	"dedupstore/internal/sim"
	"dedupstore/internal/workload"
)

// The qos experiment exercises the per-OSD op scheduler directly, beyond
// what the paper measures: an interference matrix (client latency while each
// background class runs flat out) and an ablation of the §4.4.2 watermark
// controller against a static dedup-class weight.

// QoSMatrixRow is one row of the interference matrix: client small-write
// latency with one background class active.
type QoSMatrixRow struct {
	Background  string
	MeanMs      float64
	P99Ms       float64
	MBps        float64
	BGAdmitted  int64 // ops the scheduler admitted for the background class
	BGThrottled int64 // submissions that hit the class depth cap
}

// QoSMatrix measures client randwrite latency against a deduplicated
// dataset while, in turn, nothing / dedup flush / recovery / scrub / GC runs
// in the background. Rate control is off so the matrix isolates the
// scheduler's static weights and depth caps.
func QoSMatrix(sc Scale) []QoSMatrixRow {
	span := sc.bytes(16 << 20)
	type bgCase struct {
		label string
		cls   qos.Class
		// prep runs after the dataset is loaded and drained, before the
		// measured phase.
		prep func(h *harness, s *core.Store)
		// bg is spawned concurrently with the measured client workload
		// (nil = baseline).
		bg func(h *harness, s *core.Store, p *sim.Proc)
	}
	cases := []bgCase{
		{label: "none (baseline)", cls: qos.NumClasses},
		{
			// The dataset is re-dirtied before the measured phase (below);
			// starting the engine gives the dedup class a full backlog.
			label: "dedup flush backlog", cls: qos.Dedup,
			bg: func(h *harness, s *core.Store, p *sim.Proc) { s.StartEngine() },
		},
		{
			// Two fresh devices on distinct hosts: recovery re-fills both.
			label: "recovery", cls: qos.Recovery,
			prep: func(h *harness, s *core.Store) {
				for _, id := range []int{0, 5} {
					if err := h.c.FailOSD(id); err != nil {
						panic(err)
					}
					if _, err := h.c.ReplaceOSD(id); err != nil {
						panic(err)
					}
				}
			},
			bg: func(h *harness, s *core.Store, p *sim.Proc) { h.c.Recover(p) },
		},
		{
			label: "scrub", cls: qos.Scrub,
			bg: func(h *harness, s *core.Store, p *sim.Proc) {
				for i := 0; i < 3; i++ {
					h.c.Scrub(p, s.MetaPool(), false)
					h.c.Scrub(p, s.ChunkPool(), false)
				}
			},
		},
		{
			label: "gc", cls: qos.GC,
			bg: func(h *harness, s *core.Store, p *sim.Proc) {
				for i := 0; i < 3; i++ {
					if _, err := s.GC(p); err != nil {
						panic(err)
					}
				}
			},
		},
	}

	var rows []QoSMatrixRow
	for _, bc := range cases {
		h := sc.newHarness(901, 4, 4)
		s := h.dedupStore(func(cfg *core.Config) {
			cfg.Rate.Enabled = false // static weights: the scheduler alone
			cfg.HitSet.HitCount = 1000
			cfg.DedupThreads = 8
		})
		dev := h.dedupDevice("img", span, s)
		load := workload.FIOConfig{
			BlockSize: 64 << 10, Span: span, Pattern: workload.SeqWrite,
			DedupPct: 50, Threads: 8, IODepth: 4, Seed: 91,
		}
		h.run(func(p *sim.Proc) {
			if res := workload.RunFIO(p, dev, load); res.Errors > 0 {
				panic(fmt.Sprintf("qos load: %d errors", res.Errors))
			}
			s.Engine().DrainAndWait(p)
		})
		// Re-dirty the dataset (no drain) in EVERY case so all rows measure
		// against the same store state; the dedup row's engine then has a
		// full flush backlog to chew through.
		load.Seed = 92
		h.run(func(p *sim.Proc) {
			if res := workload.RunFIO(p, dev, load); res.Errors > 0 {
				panic(fmt.Sprintf("qos re-dirty: %d errors", res.Errors))
			}
		})
		if bc.prep != nil {
			bc.prep(h, s)
		}

		before := h.c.QoS().Totals()
		var res workload.FIOResult
		h.run(func(p *sim.Proc) {
			if bc.bg != nil {
				bg := bc.bg
				p.Go("qos-bg", func(q *sim.Proc) { bg(h, s, q) })
			}
			res = workload.RunFIO(p, dev, workload.FIOConfig{
				BlockSize: 16 << 10, Span: span, Pattern: workload.RandWrite,
				DedupPct: 50, Threads: 4, IODepth: 4, Seed: 93,
				Ops: int(span / (16 << 10)),
			})
			if res.Errors > 0 {
				panic(fmt.Sprintf("qos measured phase (%s): %d errors", bc.label, res.Errors))
			}
		})
		row := QoSMatrixRow{
			Background: bc.label,
			MeanMs:     float64(res.MeanLatency()) / float64(time.Millisecond),
			P99Ms:      float64(res.Recorder.Lat.Percentile(99)) / float64(time.Millisecond),
			MBps:       res.Throughput(),
		}
		if bc.cls != qos.NumClasses {
			after := h.c.QoS().Totals()
			row.BGAdmitted = after[bc.cls].Admitted - before[bc.cls].Admitted
			row.BGThrottled = after[bc.cls].Throttled - before[bc.cls].Throttled
		}
		rows = append(rows, row)
	}
	return rows
}

// QoSMatrixTable renders the interference matrix.
func QoSMatrixTable(rows []QoSMatrixRow) Table {
	t := Table{
		Title:   "QoS: client 16KB randwrite latency vs active background class (static weights)",
		Columns: []string{"background", "mean ms", "p99 ms", "client MB/s", "bg admitted", "bg throttled"},
		Notes: []string{
			"shape target: every background class leaves client latency within ~2x of baseline",
			"background classes run at default weights (dedup 1000/cap 2, recovery 250/cap 4, scrub 100/cap 2, gc 100/cap 2)",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Background, f2(r.MeanMs), f2(r.P99Ms), f1(r.MBps),
			fmt.Sprint(r.BGAdmitted), fmt.Sprint(r.BGThrottled),
		})
	}
	return t
}

// QoSAblationRow is one config of the watermark-vs-static ablation.
type QoSAblationRow struct {
	Config      string
	BeforeMBps  float64
	AfterMBps   float64
	RetainedPct float64
	RateAdjusts int64
	FlushedFg   int64 // chunks flushed while the foreground stream ran
	FlushedIdle int64 // chunks flushed in the idle tail after it stopped
}

// QoSAblation compares the watermark controller (§4.4.2 re-expressed as a
// dedup-class weight policy) against a static dedup-class weight: the same
// foreground stream, background engine started a third of the way in.
func QoSAblation(sc Scale) []QoSAblationRow {
	span := sc.bytes(16 << 20)
	total := scaledDuration(sc, 24*time.Second)
	engStart := total / 3

	runCase := func(label string, seed int64, mut func(cfg *core.Config)) QoSAblationRow {
		h := sc.newHarness(seed, 4, 4)
		s := h.dedupStore(func(cfg *core.Config) {
			cfg.DedupThreads = 32
			cfg.FlushParallel = 16
			cfg.HitSet.HitCount = 1000
			mut(cfg)
		})
		dev := h.dedupDevice("img", span, s)
		r := foregroundWithEngine(h, s, dev, span, total, engStart, label)
		during := s.Engine().Stats().ChunksFlushed
		// Idle tail: the foreground has stopped, so the controller's
		// throttle clears and the engine catches up on whatever backlog it
		// deferred while the stream was hot.
		h.run(func(p *sim.Proc) { p.Sleep(scaledDuration(sc, 8*time.Second)) })
		st := s.Engine().Stats()
		retained := 0.0
		if r.SteadyBefore > 0 {
			retained = 100 * r.SteadyAfter / r.SteadyBefore
		}
		return QoSAblationRow{
			Config: label, BeforeMBps: r.SteadyBefore, AfterMBps: r.SteadyAfter,
			RetainedPct: retained, RateAdjusts: st.RateAdjusts,
			FlushedFg: during, FlushedIdle: st.ChunksFlushed - during,
		}
	}

	return []QoSAblationRow{
		runCase("static dedup weight (controller off)", 902, func(cfg *core.Config) {
			cfg.Rate.Enabled = false
		}),
		runCase("watermark controller (scaled watermarks)", 903, func(cfg *core.Config) {
			cfg.Rate = core.RateConfig{Enabled: true, LowIOPS: 100, HighIOPS: 500, OpsPerDedupAboveHigh: 500, OpsPerDedupMid: 100}
		}),
	}
}

// QoSAblationTable renders the ablation.
func QoSAblationTable(rows []QoSAblationRow) Table {
	t := Table{
		Title:   "QoS: watermark weight controller vs static dedup weight (foreground MB/s)",
		Columns: []string{"config", "before MB/s", "after MB/s", "retained %", "rate adjusts", "flushed (fg)", "flushed (idle)"},
		Notes: []string{
			"shape target: controller retains more foreground throughput than the static weight, deferring flush work into the idle tail",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Config, f1(r.BeforeMBps), f1(r.AfterMBps), f1(r.RetainedPct),
			fmt.Sprint(r.RateAdjusts), fmt.Sprint(r.FlushedFg), fmt.Sprint(r.FlushedIdle),
		})
	}
	return t
}

// QoSResult runs both QoS tables and packages them as a machine-readable
// Result.
func QoSResult(sc Scale) Result {
	return Result{Name: "qos", Tables: []Table{
		QoSMatrixTable(QoSMatrix(sc)),
		QoSAblationTable(QoSAblation(sc)),
	}}
}
