package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"dedupstore/internal/core"
	"dedupstore/internal/fpindex"
	"dedupstore/internal/rados"
	"dedupstore/internal/sim"
	"dedupstore/internal/workload"
)

// The fpindex experiment characterizes the per-OSD log-structured
// fingerprint index (internal/fpindex): a sweep of index size × block-cache
// capacity measuring chunk-existence lookup latency, and a dedup-flush
// throughput comparison against the flat in-memory map. The shape to
// reproduce: once the index outgrows the block cache, positive lookups fall
// off a cliff (every probe pays a charged SSTable block read), while
// negative lookups stay near-flat because the bloom filters reject them
// before any I/O.

// fpIndexSweepConfig builds the index tuning used by the latency sweep:
// a small memtable so nearly all fingerprints live in SSTables, 4 KiB
// blocks, and the swept cache capacity.
func fpIndexSweepConfig(cacheBytes int) fpindex.Config {
	return fpindex.Config{
		Enabled:       true,
		MemtableBytes: 4 << 10,
		BlockBytes:    4 << 10,
		CacheBytes:    cacheBytes,
		BloomFP:       0.01,
		LevelFanout:   4,
	}
}

// FPIndexLatencyRow is one (seed, index size, cache capacity) cell of the
// lookup-latency sweep.
type FPIndexLatencyRow struct {
	Seed        int64
	Entries     int   // fingerprints inserted (pre-replication)
	CacheKiB    int64 // per-OSD block-cache capacity
	IndexKiB    int64 // resulting per-OSD SSTable bytes (avg)
	HitP50Us    float64
	HitP99Us    float64
	NegP50Us    float64
	NegP99Us    float64
	CacheHitPct float64 // block-cache hit ratio during the measured phase
	ProbeKops   float64 // sustained lookups per second (hits + negatives)
	ObsFPPct    float64 // bloom observed false-positive rate, measured phase
	EstFPPct    float64 // bloom design false-positive rate (EstimatedFP)
}

// fpKeys derives a deterministic fingerprint population for a seed: 36-byte
// chunk-style OIDs with uniformly spread hex digests (so SSTable blocks and
// PGs are evenly loaded), plus an equal population of absent fingerprints
// guaranteed to collide with nothing inserted.
func fpKeys(seed int64, n int) (present, absent []string) {
	rng := rand.New(rand.NewSource(seed))
	present = make([]string, n)
	absent = make([]string, n)
	for i := range present {
		present[i] = fmt.Sprintf("chk.%016x%015x0", rng.Uint64(), rng.Uint64()>>4)
	}
	for i := range absent {
		absent[i] = fmt.Sprintf("chk.%016x%015x1", rng.Uint64(), rng.Uint64()>>4)
	}
	return present, absent
}

// percentileUs sorts the samples and returns the p-th percentile in
// microseconds (ceil rank, matching metrics.Histogram).
func percentileUs(samples []time.Duration, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	rank := int(float64(len(s))*p/100+0.9999999) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(s) {
		rank = len(s) - 1
	}
	return float64(s[rank]) / float64(time.Microsecond)
}

// FPIndexLatencySweep measures chunk-existence lookup latency across index
// sizes and cache capacities, two seeds each. Per cell: load the
// fingerprints through the normal replicated write path, let compaction
// drain, warm the cache with one unmeasured pass, then time every present
// and absent probe individually at the acting primary.
func FPIndexLatencySweep(sc Scale) []FPIndexLatencyRow {
	sizes := []int{sc.countMin(1000, 64), sc.countMin(4000, 256), sc.countMin(16000, 1024)}
	caches := []int{32 << 10, 1 << 20}
	seeds := []int64{1301, 1302}

	var rows []FPIndexLatencyRow
	for _, seed := range seeds {
		for _, cache := range caches {
			for _, entries := range sizes {
				h := sc.newHarness(seed, 2, 2)
				pool, err := h.c.CreatePool(rados.PoolConfig{
					Name: "chunks", PGNum: 64, Redundancy: rados.ReplicatedN(2),
				})
				if err != nil {
					panic(err)
				}
				if err := h.c.EnableFPIndex(pool, fpIndexSweepConfig(cache)); err != nil {
					panic(err)
				}
				gw := h.c.NewGateway("fp-load")
				present, absent := fpKeys(seed, entries)

				h.run(func(p *sim.Proc) {
					for _, oid := range present {
						if err := gw.WriteFull(p, pool, oid, make([]byte, 64)); err != nil {
							panic(fmt.Sprintf("fpindex load %s: %v", oid, err))
						}
					}
					// Let the background compactors drain every due merge so
					// the measured phase sees a quiescent table layout.
					p.Sleep(2 * time.Second)
				})

				probeOrder := rng(seed).Perm(len(present))
				var hits, negs []time.Duration
				var elapsed time.Duration
				before := h.c.FPIndexStats()
				h.run(func(p *sim.Proc) {
					// Warm pass (unmeasured): fills the cache when the index
					// fits; with a smaller cache the LRU thrashes either way.
					for _, i := range probeOrder {
						if _, err := h.c.FPLookup(p, present[i]); err != nil {
							panic(err)
						}
					}
					t0 := p.Now()
					for _, i := range probeOrder {
						s := p.Now()
						found, err := h.c.FPLookup(p, present[i])
						if err != nil {
							panic(err)
						}
						if !found {
							panic(fmt.Sprintf("fpindex: present fingerprint %q not found", present[i]))
						}
						hits = append(hits, (p.Now() - s).Duration())
					}
					for _, oid := range absent {
						s := p.Now()
						found, err := h.c.FPLookup(p, oid)
						if err != nil {
							panic(err)
						}
						if found {
							panic(fmt.Sprintf("fpindex: absent fingerprint %q found", oid))
						}
						negs = append(negs, (p.Now() - s).Duration())
					}
					elapsed = (p.Now() - t0).Duration()
				})
				if err := h.c.FPIndexVerify(); err != nil {
					panic(err)
				}
				after := h.c.FPIndexStats()

				nOSD := len(h.c.OSDs())
				dCacheHits := after.CacheHits - before.CacheHits
				dCacheMiss := after.CacheMisses - before.CacheMisses
				dFP := after.BloomFalsePos - before.BloomFalsePos
				dAbsent := after.AbsentProbes - before.AbsentProbes
				dEst := after.EstFPSum - before.EstFPSum
				row := FPIndexLatencyRow{
					Seed:     seed,
					Entries:  entries,
					CacheKiB: int64(cache >> 10),
					IndexKiB: after.TableBytes / int64(nOSD) >> 10,
					HitP50Us: percentileUs(hits, 50),
					HitP99Us: percentileUs(hits, 99),
					NegP50Us: percentileUs(negs, 50),
					NegP99Us: percentileUs(negs, 99),
					ProbeKops: float64(len(hits)+len(negs)) /
						elapsed.Seconds() / 1000,
					EstFPPct: 100 * dEst / float64(max64(dAbsent, 1)),
					ObsFPPct: 100 * float64(dFP) / float64(max64(dAbsent, 1)),
				}
				if tot := dCacheHits + dCacheMiss; tot > 0 {
					row.CacheHitPct = 100 * float64(dCacheHits) / float64(tot)
				}
				rows = append(rows, row)
			}
		}
	}
	return rows
}

func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed ^ 0x5f3c9)) }

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// FPIndexLatencyTable renders the lookup-latency sweep.
func FPIndexLatencyTable(rows []FPIndexLatencyRow) Table {
	t := Table{
		Title:   "fpindex: chunk-existence lookup latency vs index size x block cache (per-OSD LSM index)",
		Columns: []string{"seed", "entries", "cache KiB", "index KiB/osd", "hit p50 us", "hit p99 us", "neg p50 us", "neg p99 us", "cache hit %", "probe kops/s", "obs FP %", "est FP %"},
		Notes: []string{
			"shape target: hit p50 rises monotonically with index size once SSTables exceed the cache (the cliff); cached configs stay flat",
			"shape target: negative lookups stay near-flat across index sizes - bloom filters reject them before any block I/O",
			"shape target: observed bloom false-positive rate within ~2x of the filters' design rate (est FP)",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(r.Seed), fmt.Sprint(r.Entries), fmt.Sprint(r.CacheKiB),
			fmt.Sprint(r.IndexKiB), f1(r.HitP50Us), f1(r.HitP99Us),
			f1(r.NegP50Us), f1(r.NegP99Us), f1(r.CacheHitPct),
			f1(r.ProbeKops), f2(r.ObsFPPct), f2(r.EstFPPct),
		})
	}
	return t
}

// FPIndexFlushRow is one configuration of the dedup-flush throughput
// comparison.
type FPIndexFlushRow struct {
	Config        string
	Seed          int64
	ChunksFlushed int64
	ElapsedMs     float64
	FlushMBps     float64
	IndexLookups  int64
	CacheHitPct   float64
	IndexWriteKiB int64
}

// FPIndexFlushSweep runs the paper's post-process dedup pipeline with the
// fingerprint index off (flat map), on with a generous cache, and on with a
// starved cache, and measures background flush throughput: the index's
// existence probes and WAL/SSTable writes ride the same dedup-class QoS
// budget as the flush I/O itself.
func FPIndexFlushSweep(sc Scale) []FPIndexFlushRow {
	span := sc.bytes(8 << 20)
	cases := []struct {
		label string
		cfg   fpindex.Config
	}{
		{label: "flat map (index off)"},
		{label: "lsm index, 1 MiB cache", cfg: fpIndexSweepConfig(1 << 20)},
		{label: "lsm index, 4 KiB cache", cfg: fpIndexSweepConfig(4 << 10)},
	}
	var rows []FPIndexFlushRow
	for _, seed := range []int64{1311, 1312} {
		for _, bc := range cases {
			h := sc.newHarness(seed, 2, 2)
			s := h.dedupStore(func(cfg *core.Config) {
				cfg.ChunkSize = 4096
				cfg.Rate.Enabled = false
				cfg.HitSet.HitCount = 1000
				cfg.DedupThreads = 4
				cfg.FPIndex = bc.cfg
			})
			dev := h.dedupDevice("img", span, s)
			h.run(func(p *sim.Proc) {
				res := workload.RunFIO(p, dev, workload.FIOConfig{
					BlockSize: 64 << 10, Span: span, Pattern: workload.SeqWrite,
					DedupPct: 80, Threads: 4, IODepth: 4, Seed: seed,
				})
				if res.Errors > 0 {
					panic(fmt.Sprintf("fpindex flush load: %d errors", res.Errors))
				}
			})
			before := h.c.FPIndexStats()
			var elapsed time.Duration
			h.run(func(p *sim.Proc) {
				t0 := p.Now()
				s.StartEngine()
				s.Engine().DrainAndWait(p)
				elapsed = (p.Now() - t0).Duration()
			})
			if err := h.c.FPIndexVerify(); err != nil {
				panic(err)
			}
			after := h.c.FPIndexStats()
			st := s.Engine().Stats()
			row := FPIndexFlushRow{
				Config:        bc.label,
				Seed:          seed,
				ChunksFlushed: st.ChunksFlushed,
				ElapsedMs:     float64(elapsed) / float64(time.Millisecond),
				FlushMBps: float64(st.ChunksFlushed*4096) /
					(1 << 20) / elapsed.Seconds(),
				IndexLookups:  after.Lookups - before.Lookups,
				IndexWriteKiB: (after.WriteBytes - before.WriteBytes) >> 10,
			}
			if tot := (after.CacheHits - before.CacheHits) + (after.CacheMisses - before.CacheMisses); tot > 0 {
				row.CacheHitPct = 100 * float64(after.CacheHits-before.CacheHits) / float64(tot)
			}
			rows = append(rows, row)
		}
	}
	return rows
}

// FPIndexFlushTable renders the flush-throughput comparison.
func FPIndexFlushTable(rows []FPIndexFlushRow) Table {
	t := Table{
		Title:   "fpindex: background dedup flush throughput - flat map vs LSM fingerprint index",
		Columns: []string{"config", "seed", "chunks flushed", "elapsed ms", "flush MB/s", "index lookups", "cache hit %", "index write KiB"},
		Notes: []string{
			"shape target: flush bandwidth holds within ~1% of the flat map - index WAL/SSTable writes overlap the replicated chunk writes on the dedup QoS budget; cache starvation shows up as a lower block-cache hit ratio, not lost flush throughput",
			"flat-map rows show zero index traffic: the Config switch leaves the default path untouched",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Config, fmt.Sprint(r.Seed), fmt.Sprint(r.ChunksFlushed),
			f1(r.ElapsedMs), f1(r.FlushMBps), fmt.Sprint(r.IndexLookups),
			f1(r.CacheHitPct), fmt.Sprint(r.IndexWriteKiB),
		})
	}
	return t
}

// FPIndexResult runs both fpindex tables as one golden-gated experiment.
func FPIndexResult(sc Scale) Result {
	return Result{Name: "fpindex", Tables: []Table{
		FPIndexLatencyTable(FPIndexLatencySweep(sc)),
		FPIndexFlushTable(FPIndexFlushSweep(sc)),
	}}
}
