package experiments

import (
	"fmt"

	"dedupstore/internal/client"
	"dedupstore/internal/compressfs"
	"dedupstore/internal/core"
	"dedupstore/internal/rados"
	"dedupstore/internal/sim"
	"dedupstore/internal/store"
	"dedupstore/internal/workload"
)

// Fig13Series is one line of Figure 13: cumulative storage footprint as VM
// images are added, for one redundancy/dedup/compression combination.
type Fig13Series struct {
	Label string
	// UsedBytes[i] is the total footprint after writing image i+1.
	UsedBytes []int64
}

// Fig13 reproduces Figure 13: ten identical-OS VM images written as thick
// images (zeros included, as the paper's 8GB images were), under
// replication, EC, and their combinations with deduplication and node-local
// (Btrfs-style) compression. Deduplication collapses the shared OS blocks
// and the zero blocks; compression shrinks what remains.
func Fig13(sc Scale) []Fig13Series {
	images := 10
	imgCfg := workload.VMImageConfig{
		ImageSize: sc.bytes(8 << 20), // paper: 8GB images
		OSFrac:    0.07,
		HomeFrac:  0.0125,
		BlockSize: 32 << 10,
		Seed:      801,
		Thick:     true,
	}

	type cfg struct {
		label    string
		red      rados.Redundancy
		dedup    bool
		compress bool
	}
	cases := []cfg{
		{"rep", rados.ReplicatedN(2), false, false},
		{"ec", rados.ErasureKM(2, 1), false, false},
		{"rep+dedup", rados.ReplicatedN(2), true, false},
		{"rep+dedup+comp", rados.ReplicatedN(2), true, true},
		{"ec+dedup", rados.ErasureKM(2, 1), true, false},
		{"ec+dedup+comp", rados.ErasureKM(2, 1), true, true},
	}

	var out []Fig13Series
	for ci, c := range cases {
		var opts []rados.Option
		if c.compress {
			opts = append(opts, rados.WithStoreOptions(store.WithSizeFn(compressfs.Default())))
		}
		h := sc.newHarness(810+int64(ci), 4, 4, opts...)
		series := Fig13Series{Label: c.label}

		var s *core.Store
		var rawPool *rados.Pool
		var gwRaw *rados.Gateway
		if c.dedup {
			s = h.dedupStore(func(dc *core.Config) {
				dc.ChunkRedundancy = c.red
				dc.Rate.Enabled = false
				dc.HitSet.HitCount = 1000
				dc.DedupThreads = 8
			})
		} else {
			rawPool, gwRaw = h.rawPool("vmpool", c.red)
		}

		usage := func() int64 {
			if c.dedup {
				return h.c.PoolStats(s.MetaPool()).StoredTotal() + h.c.PoolStats(s.ChunkPool()).StoredTotal()
			}
			return h.c.PoolStats(rawPool).StoredTotal()
		}

		for vm := 0; vm < images; vm++ {
			name := fmt.Sprintf("vm%d", vm)
			var dev *client.BlockDevice
			var err error
			if c.dedup {
				dev = h.dedupDevice(name, imgCfg.ImageSize, s)
			} else {
				dev, err = client.NewBlockDevice(name, imgCfg.ImageSize, 1<<20,
					&client.RawBackend{GW: gwRaw, Pool: rawPool})
				if err != nil {
					panic(err)
				}
			}
			vm := vm
			h.run(func(p *sim.Proc) {
				if err := workload.WriteVMImage(p, dev, imgCfg, vm); err != nil {
					panic(err)
				}
				if c.dedup {
					s.Engine().DrainAndWait(p)
				}
			})
			series.UsedBytes = append(series.UsedBytes, usage())
		}
		out = append(out, series)
	}
	return out
}

// Fig13Table renders Fig13 as cumulative image-count rows.
func Fig13Table(series []Fig13Series) Table {
	t := Table{
		Title:   "Figure 13: cumulative VM-image footprint (thick 8GB-scaled images)",
		Columns: []string{"images"},
		Notes: []string{
			"paper shape: rep 160GB, EC 120GB; rep+dedup ~2.2GB with ~200MB per extra image; ec+dedup+comp lowest",
		},
	}
	for _, s := range series {
		t.Columns = append(t.Columns, s.Label)
	}
	n := 0
	for _, s := range series {
		if len(s.UsedBytes) > n {
			n = len(s.UsedBytes)
		}
	}
	for i := 0; i < n; i++ {
		row := []string{fmt.Sprint(i + 1)}
		for _, s := range series {
			if i < len(s.UsedBytes) {
				row = append(row, mb(s.UsedBytes[i]))
			} else {
				row = append(row, "-")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig13Result runs Fig13 and packages it as a machine-readable Result.
func Fig13Result(sc Scale) Result {
	return Result{Name: "fig13", Tables: []Table{Fig13Table(Fig13(sc))}}
}
