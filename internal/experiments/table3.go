package experiments

import (
	"fmt"

	"dedupstore/internal/client"
	"dedupstore/internal/core"
	"dedupstore/internal/qos"
	"dedupstore/internal/rados"
	"dedupstore/internal/sim"
	"dedupstore/internal/workload"
)

// Table3Row is one cell pair of Table 3: recovery time after replacing a
// number of OSDs.
type Table3Row struct {
	FailedOSDs    int
	OriginalSecs  float64
	ProposedSecs  float64
	PaperOriginal float64
	PaperProposed float64
	OriginalMoved int64
	ProposedMoved int64
}

// Table3 reproduces Table 3: recovery time for a dataset with 50% dedup
// ratio under the original store vs the proposed design, for 1/2/4 replaced
// OSDs. Deduplication halves the bytes recovery must move, so recovery is
// proportionally faster — entirely through the substrate's recovery engine,
// since dedup state lives in self-contained objects.
func Table3(sc Scale) []Table3Row {
	paper := map[int][2]float64{1: {68.04, 43.72}, 2: {71.35, 44.51}, 4: {81.77, 54.78}}
	span := sc.bytes(100 << 20) // paper: 100GB
	fio := workload.FIOConfig{
		BlockSize: 64 << 10, Span: span, Pattern: workload.SeqWrite,
		DedupPct: 50, Threads: 8, IODepth: 4, Seed: 701,
	}

	run := func(failed []int, dedup bool) (secs float64, moved int64) {
		h := sc.newHarness(703, 4, 4)
		var s *core.Store
		var dev *client.BlockDevice
		if dedup {
			s = h.dedupStore(func(cfg *core.Config) {
				cfg.Rate.Enabled = false
				cfg.HitSet.HitCount = 1000
				cfg.DedupThreads = 8
			})
			dev = h.dedupDevice("img", span, s)
		} else {
			dev = h.rawDevice("img", span, 0, rados.ReplicatedN(2))
		}
		h.run(func(p *sim.Proc) {
			res := workload.RunFIO(p, dev, fio)
			if res.Errors > 0 {
				panic(fmt.Sprintf("table3: %d write errors", res.Errors))
			}
		})
		if dedup {
			h.run(func(p *sim.Proc) { s.Engine().DrainAndWait(p) })
		}
		for _, id := range failed {
			if err := h.c.FailOSD(id); err != nil {
				panic(err)
			}
		}
		for _, id := range failed {
			if _, err := h.c.ReplaceOSD(id); err != nil {
				panic(err)
			}
		}
		var stats rados.RecoveryStats
		h.c.QoS().SetMaxDepth(qos.Recovery, 8) // match the paper run's 8 streams per OSD
		h.run(func(p *sim.Proc) { stats = h.c.Recover(p) })
		return stats.Duration().Seconds(), stats.BytesMoved
	}

	// Failed OSDs chosen on distinct hosts, like pulling one drive per node.
	failSets := map[int][]int{1: {0}, 2: {0, 5}, 4: {0, 5, 10, 15}}
	var rows []Table3Row
	for _, n := range []int{1, 2, 4} {
		origSecs, origMoved := run(failSets[n], false)
		propSecs, propMoved := run(failSets[n], true)
		rows = append(rows, Table3Row{
			FailedOSDs:    n,
			OriginalSecs:  origSecs,
			ProposedSecs:  propSecs,
			PaperOriginal: paper[n][0],
			PaperProposed: paper[n][1],
			OriginalMoved: origMoved,
			ProposedMoved: propMoved,
		})
	}
	return rows
}

// Table3Table renders Table3.
func Table3Table(rows []Table3Row) Table {
	t := Table{
		Title:   "Table 3: recovery time after replacing OSDs (dataset at 50% dedup ratio)",
		Columns: []string{"failed OSDs", "original (ms)", "proposed (ms)", "prop/orig", "paper prop/orig", "orig moved", "prop moved"},
		Notes: []string{
			"shape target: proposed recovery ~35-45% faster (half the bytes to move); both grow with failed OSD count",
			"paper absolute times: 68.0/71.4/81.8 s original vs 43.7/44.5/54.8 s proposed (100GB unscaled)",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(r.FailedOSDs), f2(r.OriginalSecs * 1000), f2(r.ProposedSecs * 1000),
			f2(r.ProposedSecs / r.OriginalSecs), f2(r.PaperProposed / r.PaperOriginal),
			mb(r.OriginalMoved), mb(r.ProposedMoved),
		})
	}
	return t
}

// Table3Result runs Table3 and packages it as a machine-readable Result.
func Table3Result(sc Scale) Result {
	return Result{Name: "table3", Tables: []Table{Table3Table(Table3(sc))}}
}
