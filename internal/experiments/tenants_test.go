package experiments

import (
	"testing"
)

// TestTenantIsolationShape runs the noisy-neighbor study at the golden scale
// and checks the claims its notes make: the bronze SLO holds the quiet
// tenant's p99 within 1.5x of the solo baseline, while turning isolation off
// lets the same neighbor degrade it at least 3x.
func TestTenantIsolationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	rows := TenantIsolation(QuickScale())
	if len(rows) != 3 {
		t.Fatalf("expected 3 configurations, got %d", len(rows))
	}
	t.Log(TenantIsolationTable(rows).String())
	solo, off, bronze := rows[0], rows[1], rows[2]
	if solo.QuietP99Ms <= 0 {
		t.Fatalf("solo baseline p99 = %.2fms, want > 0", solo.QuietP99Ms)
	}
	if off.VsSolo < 3 {
		t.Errorf("isolation off: quiet p99 %.2fms is only %.2fx solo (%.2fms), want >= 3x — the neighbor isn't noisy enough",
			off.QuietP99Ms, off.VsSolo, solo.QuietP99Ms)
	}
	if bronze.VsSolo > 1.5 {
		t.Errorf("bronze SLO: quiet p99 %.2fms is %.2fx solo (%.2fms), want <= 1.5x — isolation not holding",
			bronze.QuietP99Ms, bronze.VsSolo, solo.QuietP99Ms)
	}
	if bronze.NoisyThrot == 0 || bronze.NoisyWaitS == 0 {
		t.Errorf("bronze SLO: noisy neighbor never throttled (%d throttles, %.2fs wait) — the bucket isn't engaging",
			bronze.NoisyThrot, bronze.NoisyWaitS)
	}
	if off.NoisyMB <= bronze.NoisyMB {
		t.Errorf("unthrottled neighbor admitted %dMB <= bronze-capped %dMB — the cap isn't the binding constraint",
			off.NoisyMB, bronze.NoisyMB)
	}
}

// TestTenantFleetShape checks the fleet sweep covers all three classes and
// that weighted admission orders average queue wait gold < bronze.
func TestTenantFleetShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	rows := TenantFleet(QuickScale())
	t.Log(TenantFleetTable(rows).String())
	byClass := map[string]TenantFleetRow{}
	for _, r := range rows {
		byClass[r.Class] = r
	}
	for _, cls := range []string{"gold", "silver", "bronze"} {
		r, ok := byClass[cls]
		if !ok {
			t.Fatalf("class %s missing from fleet sweep", cls)
		}
		if r.Ops != int64(r.Tenants)*4 {
			t.Errorf("class %s: %d ops from %d tenants, want %d — ops lost or duplicated",
				cls, r.Ops, r.Tenants, r.Tenants*4)
		}
	}
	if g, b := byClass["gold"], byClass["bronze"]; g.AvgWaitMs >= b.AvgWaitMs {
		t.Errorf("gold avg wait %.2fms >= bronze %.2fms — slot weights not biasing admission",
			g.AvgWaitMs, b.AvgWaitMs)
	}
}
