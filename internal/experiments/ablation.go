package experiments

import (
	"fmt"
	"time"

	"dedupstore/internal/chunker"
	"dedupstore/internal/core"
	"dedupstore/internal/sim"
	"dedupstore/internal/simcost"
	"dedupstore/internal/workload"
)

// Ablations quantify the design choices DESIGN.md calls out: static vs
// content-defined chunking (§5 "Chunking algorithm"), strict vs
// false-positive reference counting (§4.6), and the cache manager's
// hot-object exemption (§4.3).

// AblationChunkingRow compares chunking algorithms on the cloud dataset.
type AblationChunkingRow struct {
	Algorithm  string
	DedupRatio float64
	CPUPerMB   time.Duration // modeled chunking+hash CPU per MB of data (simcost rates)
}

// AblationChunking measures the trade the paper made: fixed chunking has
// near-zero CPU cost; content-defined chunking finds slightly more
// redundancy but burns CPU the paper says Ceph cannot spare (§5: small
// random writes already use 60-80% CPU).
func AblationChunking(sc Scale) []AblationChunkingRow {
	gen := workload.NewCloudGen(workload.CloudConfig{Objects: sc.countMin(10, 6), ObjectSize: 2 << 20, Seed: 901})
	var contents [][]byte
	var total int64
	for i := 0; i < gen.Config().Objects; i++ {
		c := gen.ObjectContent(i)
		contents = append(contents, c)
		total += int64(len(c))
	}
	// CPU is charged from the simcost model rather than measured host time:
	// both chunkers fingerprint every byte, but only CDC pays the
	// rolling-hash scan over the full stream, which is what makes it ~4x
	// the CPU of static chunking on the paper's testbed. Modeled time keeps
	// the table deterministic, so it can be golden-snapshotted.
	costs := simcost.Default()
	measure := func(name string, scans bool, split func([]byte) []chunker.Chunk) AblationChunkingRow {
		seen := map[string]bool{}
		var unique int64
		var cpu time.Duration
		for _, data := range contents {
			if scans {
				cpu += costs.ChunkScan(len(data))
			}
			for _, ch := range split(data) {
				cpu += costs.Hash(len(ch.Data))
				id := core.FingerprintID(ch.Data)
				if !seen[id] {
					seen[id] = true
					unique += int64(len(ch.Data))
				}
			}
		}
		return AblationChunkingRow{
			Algorithm:  name,
			DedupRatio: 100 * float64(total-unique) / float64(total),
			CPUPerMB:   cpu / time.Duration(total/1e6+1),
		}
	}
	fixed := chunker.NewFixed(32 << 10)
	cdc := chunker.NewCDC(8<<10, 32<<10, 128<<10)
	return []AblationChunkingRow{
		measure(fixed.Name(), false, func(b []byte) []chunker.Chunk { return fixed.Split(0, b) }),
		measure(cdc.Name(), true, func(b []byte) []chunker.Chunk { return cdc.Split(0, b) }),
	}
}

// AblationChunkingTable renders the chunking ablation.
func AblationChunkingTable(rows []AblationChunkingRow) Table {
	t := Table{
		Title:   "Ablation: static vs content-defined chunking (cloud dataset)",
		Columns: []string{"algorithm", "dedup ratio %", "modeled chunk+hash CPU /MB"},
		Notes: []string{
			"the paper picks static chunking: CDC costs ~4x the CPU on a busy OSD (§5)",
			"this synthetic dataset's duplication is block-aligned (favoring fixed chunks); CDC wins only on byte-shifted data",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Algorithm, f1(r.DedupRatio), r.CPUPerMB.Round(time.Microsecond).String()})
	}
	return t
}

// AblationCDCRow compares the stores end to end on byte-shifted content.
type AblationCDCRow struct {
	Store       string
	StoredBytes int64 // chunk-pool logical bytes after dedup
	Saved       float64
}

// AblationCDCStore runs the fixed-chunk store and the CDC-mode store on the
// workload CDC exists for: objects that are byte-shifted copies of each
// other (backup streams, log rotations). Fixed chunking sees entirely new
// chunks after a shift; CDC re-finds the shared content.
func AblationCDCStore(sc Scale) []AblationCDCRow {
	base := make([]byte, sc.bytes(512<<10))
	fillSeeded(base, 905)
	variants := make([][]byte, 6)
	for i := range variants {
		// Each variant grows by a different, chunk-unaligned prefix length,
		// so fixed-chunk boundaries land differently in every copy.
		prefix := make([]byte, 37+i*151)
		fillSeeded(prefix, int64(9000+i))
		variants[i] = append(append([]byte(nil), prefix...), base...)
	}
	logical := int64(0)
	for _, v := range variants {
		logical += int64(len(v))
	}

	run := func(useCDC bool) AblationCDCRow {
		h := sc.newHarness(906, 4, 4)
		s := h.dedupStore(func(cfg *core.Config) {
			cfg.Rate.Enabled = false
			cfg.HitSet.HitCount = 1000
			cfg.ChunkSize = 16 << 10
			if useCDC {
				cdc := chunker.NewCDC(4<<10, 16<<10, 64<<10)
				cfg.CDC = &cdc
			}
		})
		cl := s.Client("cl")
		h.run(func(p *sim.Proc) {
			for i, v := range variants {
				if err := cl.Write(p, fmt.Sprintf("stream%d", i), 0, v); err != nil {
					panic(err)
				}
			}
			s.Engine().DrainAndWait(p)
		})
		stored := h.c.PoolStats(s.ChunkPool()).LogicalBytes
		name := "fixed chunking"
		if useCDC {
			name = "content-defined chunking"
		}
		return AblationCDCRow{
			Store:       name,
			StoredBytes: stored,
			Saved:       100 * (1 - float64(stored)/float64(logical)),
		}
	}
	return []AblationCDCRow{run(false), run(true)}
}

// fillSeeded fills buf deterministically (local copy to avoid exporting the
// workload package's helper).
func fillSeeded(buf []byte, seed int64) {
	x := uint64(seed)*6364136223846793005 + 1442695040888963407
	for i := range buf {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		buf[i] = byte(x)
	}
}

// AblationBackupRow is one row of the backup-generations ablation.
type AblationBackupRow struct {
	Store       string
	Generations int
	LogicalMB   float64
	StoredMB    float64
	Saved       float64
}

// AblationBackup runs the classic dedup workload — successive backup
// generations with small unaligned edits — through the fixed-chunk store
// and the CDC-mode store.
func AblationBackup(sc Scale) []AblationBackupRow {
	gen := workload.NewBackupGen(workload.BackupConfig{
		BaseSize:    sc.bytes(1 << 20),
		Generations: 5,
		ChurnPerGen: 0.03,
		Seed:        907,
	})
	run := func(useCDC bool) AblationBackupRow {
		h := sc.newHarness(908, 4, 4)
		s := h.dedupStore(func(cfg *core.Config) {
			cfg.Rate.Enabled = false
			cfg.HitSet.HitCount = 1000
			cfg.ChunkSize = 16 << 10
			if useCDC {
				cdc := chunker.NewCDC(4<<10, 16<<10, 64<<10)
				cfg.CDC = &cdc
			}
		})
		cl := s.Client("backup")
		h.run(func(p *sim.Proc) {
			for i := 0; i < gen.Generations(); i++ {
				if err := cl.Write(p, fmt.Sprintf("backup.gen%d", i), 0, gen.Generation(i)); err != nil {
					panic(err)
				}
			}
			s.Engine().DrainAndWait(p)
		})
		stored := h.c.PoolStats(s.ChunkPool()).LogicalBytes
		name := "fixed chunking"
		if useCDC {
			name = "content-defined chunking"
		}
		return AblationBackupRow{
			Store:       name,
			Generations: gen.Generations(),
			LogicalMB:   float64(gen.TotalBytes()) / 1e6,
			StoredMB:    float64(stored) / 1e6,
			Saved:       100 * (1 - float64(stored)/float64(gen.TotalBytes())),
		}
	}
	return []AblationBackupRow{run(false), run(true)}
}

// AblationBackupTable renders the backup-generations ablation.
func AblationBackupTable(rows []AblationBackupRow) Table {
	t := Table{
		Title:   "Ablation: backup generations (5 gens, 3% unaligned churn each)",
		Columns: []string{"store", "generations", "logical", "stored", "saved %"},
		Notes:   []string{"unaligned edits shift fixed-chunk boundaries; CDC keeps unmodified regions dedupable"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Store, fmt.Sprint(r.Generations),
			fmt.Sprintf("%.2f MB", r.LogicalMB), fmt.Sprintf("%.2f MB", r.StoredMB), f1(r.Saved),
		})
	}
	return t
}

// AblationCDCStoreTable renders the end-to-end chunking ablation.
func AblationCDCStoreTable(rows []AblationCDCRow) Table {
	t := Table{
		Title:   "Ablation: fixed vs CDC store on byte-shifted streams (6 copies, unaligned prefixes)",
		Columns: []string{"store", "chunk-pool bytes", "saved %"},
		Notes:   []string{"CDC's raison d'être: shifted duplicates survive re-chunking; fixed chunking sees all-new chunks"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Store, mb(r.StoredBytes), f1(r.Saved)})
	}
	return t
}

// AblationRefcountRow compares reference-counting disciplines.
type AblationRefcountRow struct {
	Mode            string
	DeleteLatency   time.Duration // mean per-object delete latency
	ChunksLeaked    int64         // zero-ref chunks left before GC
	GCSeconds       float64       // GC pass duration (FP mode)
	BytesReclaimed  int64
	FinalChunkCount int
}

// AblationRefcount measures §4.6's trade: strict refcounting locks on both
// increment and decrement but never leaks; false-positive refcounting makes
// deletes cheaper and defers reclamation to a garbage collector.
func AblationRefcount(sc Scale) []AblationRefcountRow {
	const objects = 24
	run := func(fp bool) AblationRefcountRow {
		h := sc.newHarness(902, 4, 4)
		s := h.dedupStore(func(cfg *core.Config) {
			cfg.FalsePositiveRefs = fp
			cfg.Rate.Enabled = false
			cfg.HitSet.HitCount = 1000
			cfg.ChunkSize = 8 << 10
		})
		cl := s.Client("cl")
		gen := workload.NewFIOGen(workload.FIOConfig{BlockSize: 8 << 10, DedupPct: 50, Ops: objects * 16, Seed: 903})
		h.run(func(p *sim.Proc) {
			for i := 0; i < objects; i++ {
				buf := make([]byte, 0, 16*8<<10)
				for b := 0; b < 16; b++ {
					buf = append(buf, gen.NextBlock()...)
				}
				if err := cl.Write(p, fmt.Sprintf("obj%d", i), 0, buf); err != nil {
					panic(err)
				}
			}
			s.Engine().DrainAndWait(p)
		})
		row := AblationRefcountRow{Mode: "strict"}
		if fp {
			row.Mode = "false-positive + GC"
		}
		var delTotal time.Duration
		h.run(func(p *sim.Proc) {
			for i := 0; i < objects; i++ {
				t0 := p.Now()
				if err := cl.Delete(p, fmt.Sprintf("obj%d", i)); err != nil {
					panic(err)
				}
				delTotal += (p.Now() - t0).Duration()
			}
		})
		row.DeleteLatency = delTotal / objects
		row.ChunksLeaked = int64(len(h.c.ListObjects(s.ChunkPool())))
		if fp {
			h.run(func(p *sim.Proc) {
				t0 := p.Now()
				stats, err := s.GC(p)
				if err != nil {
					panic(err)
				}
				row.GCSeconds = (p.Now() - t0).Seconds()
				row.BytesReclaimed = stats.BytesReclaimed
			})
		}
		row.FinalChunkCount = len(h.c.ListObjects(s.ChunkPool()))
		return row
	}
	return []AblationRefcountRow{run(false), run(true)}
}

// AblationRefcountTable renders the refcount ablation.
func AblationRefcountTable(rows []AblationRefcountRow) Table {
	t := Table{
		Title:   "Ablation: strict vs false-positive reference counting (§4.6)",
		Columns: []string{"mode", "mean delete latency", "chunks left pre-GC", "GC secs", "reclaimed", "final chunks"},
		Notes:   []string{"FP mode trades cheaper deletes for a GC pass; both end with zero chunks after full delete"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Mode, r.DeleteLatency.Round(time.Microsecond).String(),
			fmt.Sprint(r.ChunksLeaked), f2(r.GCSeconds), mb(r.BytesReclaimed), fmt.Sprint(r.FinalChunkCount),
		})
	}
	return t
}

// AblationCacheRow compares hot-object handling.
type AblationCacheRow struct {
	Mode         string
	WriteLatency time.Duration
	FlushedBytes int64
}

// AblationCache measures §3.2's claim that skipping hot objects avoids
// wasted dedup I/O: a hot working set rewritten repeatedly with the cache
// manager on (hot objects exempt) vs off (every write re-deduplicated).
func AblationCache(sc Scale) []AblationCacheRow {
	run := func(cacheOn bool) AblationCacheRow {
		h := sc.newHarness(904, 4, 4)
		s := h.dedupStore(func(cfg *core.Config) {
			cfg.Rate.Enabled = false
			cfg.DedupThreads = 4
			if cacheOn {
				cfg.HitSet.HitCount = 2
			} else {
				cfg.HitSet.HitCount = 1 << 30 // never hot: everything flushes
			}
		})
		cl := s.Client("cl")
		s.StartEngine()
		var total time.Duration
		ops := 0
		h.runUntil(sim.Time(10*time.Second), func(p *sim.Proc) {
			data := make([]byte, 32<<10)
			for p.Now() < sim.Time(10*time.Second) {
				for i := 0; i < 8; i++ {
					data[0] = byte(i)
					t0 := p.Now()
					if err := cl.Write(p, fmt.Sprintf("hot%d", i), 0, data); err != nil {
						panic(err)
					}
					total += (p.Now() - t0).Duration()
					ops++
				}
				p.Sleep(20 * time.Millisecond)
			}
		})
		mode := "cache off (hot objects re-deduplicated)"
		if cacheOn {
			mode = "cache on (hot objects exempt)"
		}
		return AblationCacheRow{
			Mode:         mode,
			WriteLatency: total / time.Duration(ops),
			FlushedBytes: s.Engine().Stats().BytesFlushed,
		}
	}
	return []AblationCacheRow{run(true), run(false)}
}

// AblationCacheTable renders the cache ablation.
func AblationCacheTable(rows []AblationCacheRow) Table {
	t := Table{
		Title:   "Ablation: cache manager hot-object exemption (§3.2, §4.3)",
		Columns: []string{"mode", "mean write latency", "background bytes flushed"},
		Notes:   []string{"exempting hot objects eliminates repeated dedup I/O for data about to be rewritten"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Mode, r.WriteLatency.Round(time.Microsecond).String(), mb(r.FlushedBytes)})
	}
	return t
}

// AblationResult runs every ablation and packages them as one Result.
func AblationResult(sc Scale) Result {
	return Result{Name: "ablation", Tables: []Table{
		AblationChunkingTable(AblationChunking(sc)),
		AblationCDCStoreTable(AblationCDCStore(sc)),
		AblationBackupTable(AblationBackup(sc)),
		AblationRefcountTable(AblationRefcount(sc)),
		AblationCacheTable(AblationCache(sc)),
	}}
}
