// Package experiments regenerates every table and figure in the paper's
// evaluation (§2.2, §6): each Experiment builds a fresh simulated testbed,
// replays the corresponding workload, and reports measured values alongside
// the paper's published numbers so shape agreement is auditable.
//
// Scales: sizes are reduced ~1000:1 from the paper (GB→MB); dedup ratios
// and relative performance are structure properties, not size properties.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"dedupstore/internal/client"
	"dedupstore/internal/core"
	"dedupstore/internal/metrics"
	"dedupstore/internal/rados"
	"dedupstore/internal/sim"
	"dedupstore/internal/simcost"
)

// Scale adjusts dataset sizes for quick (bench) vs full (CLI) runs.
type Scale struct {
	// Data multiplies dataset sizes (1.0 = the default scaled sizes).
	Data float64

	// capture, when set, collects the trace sinks of every harness this
	// Scale builds, so concurrently running experiments keep their spans
	// separate. Nil falls back to the process-global sink list.
	capture *TraceCapture
}

// DefaultScale is used by the CLI.
func DefaultScale() Scale { return Scale{Data: 1.0} }

// QuickScale is used by `go test -bench` to keep iterations fast.
func QuickScale() Scale { return Scale{Data: 0.25} }

func (s Scale) bytes(n int64) int64 {
	if s.Data <= 0 {
		return n
	}
	v := int64(float64(n) * s.Data)
	if v < 1 {
		v = 1
	}
	return v
}

func (s Scale) count(n int) int { return s.countMin(n, 1) }

// countMin scales a count with a floor (some experiments need a minimum
// population to be meaningful, e.g. cross-object dedup needs several
// objects).
func (s Scale) countMin(n, min int) int {
	if s.Data <= 0 {
		return n
	}
	v := int(float64(n) * s.Data)
	if v < min {
		v = min
	}
	return v
}

// harness is one experiment's simulated world.
type harness struct {
	eng *sim.Engine
	c   *rados.Cluster
}

// TraceCapture accumulates the trace sinks of every harness built through
// one Scale, keeping span attribution correct when many experiments run
// concurrently. The zero value is ready to use.
type TraceCapture struct {
	mu    sync.Mutex
	sinks []*metrics.TraceSink
}

func (tc *TraceCapture) add(s *metrics.TraceSink) {
	tc.mu.Lock()
	tc.sinks = append(tc.sinks, s)
	tc.mu.Unlock()
}

// Report drains the captured sinks and renders the n slowest spans,
// queue-wait vs. service time broken out per resource.
func (tc *TraceCapture) Report(n int) string {
	tc.mu.Lock()
	sinks := tc.sinks
	tc.sinks = nil
	tc.mu.Unlock()
	return renderSlowest(sinks, n)
}

// WithTraceCapture returns a copy of s whose harnesses record their trace
// sinks into a private capture instead of the process-global list.
func (s Scale) WithTraceCapture() (Scale, *TraceCapture) {
	tc := &TraceCapture{}
	s.capture = tc
	return s, tc
}

// globalSinks is the legacy process-wide capture, used by harnesses built
// from a Scale without WithTraceCapture (tests, benches, direct callers).
var globalSinks TraceCapture

func (s Scale) newHarness(seed int64, hosts, osdsPerHost int, opts ...rados.Option) *harness {
	eng := sim.New(seed)
	c := rados.NewTestbed(eng, simcost.Default(), hosts, osdsPerHost, opts...)
	tc := s.capture
	if tc == nil {
		tc = &globalSinks
	}
	tc.add(c.Trace())
	return &harness{eng: eng, c: c}
}

// TraceReport merges the spans recorded by every harness built since the
// previous call (from Scales without a private capture) and renders the n
// slowest. The sink list is reset so successive experiments report
// independently.
func TraceReport(n int) string { return globalSinks.Report(n) }

func renderSlowest(sinks []*metrics.TraceSink, n int) string {
	if n <= 0 {
		return ""
	}
	var all []metrics.Span
	var total int64
	for _, s := range sinks {
		all = append(all, s.Slowest(n)...)
		total += s.Total()
	}
	if len(all) == 0 {
		return ""
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Duration() > all[j].Duration() })
	if len(all) > n {
		all = all[:n]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "slowest %d of %d spans (queue-wait vs service):\n", len(all), total)
	for i := range all {
		fmt.Fprintf(&b, "  %s\n", all[i].String())
	}
	return b.String()
}

// run executes fn as a sim process to completion.
func (h *harness) run(fn func(p *sim.Proc)) {
	h.eng.Go("exp", fn)
	h.eng.Run()
}

// runUntil executes fn and stops the clock at the limit.
func (h *harness) runUntil(limit sim.Time, fn func(p *sim.Proc)) {
	h.eng.Go("exp", fn)
	h.eng.RunUntil(limit)
}

// rawPool creates a plain pool and device-less gateway backend.
func (h *harness) rawPool(name string, red rados.Redundancy) (*rados.Pool, *rados.Gateway) {
	pool, err := h.c.CreatePool(rados.PoolConfig{Name: name, PGNum: 64, Redundancy: red})
	if err != nil {
		panic(err)
	}
	return pool, h.c.NewGateway("client." + name)
}

// rawDevice builds a block device over a plain pool. objectSize <= 0 uses
// 1 MiB stripes (scaled from RBD's 4 MiB as datasets are scaled ~1000:1).
func (h *harness) rawDevice(name string, size, objectSize int64, red rados.Redundancy) *client.BlockDevice {
	pool, gw := h.rawPool("pool."+name, red)
	if objectSize <= 0 {
		objectSize = 1 << 20
	}
	dev, err := client.NewBlockDevice(name, size, objectSize, &client.RawBackend{GW: gw, Pool: pool})
	if err != nil {
		panic(err)
	}
	dev.SetTrace(h.c.Trace())
	return dev
}

// dedupStore opens a dedup store with the paper's defaults, tweaked by mut.
func (h *harness) dedupStore(mut func(*core.Config)) *core.Store {
	cfg := core.DefaultConfig()
	if mut != nil {
		mut(&cfg)
	}
	s, err := core.Open(h.c, cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// dedupDevice builds a block device over a dedup store client.
func (h *harness) dedupDevice(name string, size int64, s *core.Store) *client.BlockDevice {
	dev, err := client.NewBlockDevice(name, size, 1<<20, &client.DedupBackend{Client: s.Client("client." + name)})
	if err != nil {
		panic(err)
	}
	dev.SetTrace(h.c.Trace())
	return dev
}

// --- report formatting --------------------------------------------------------

// Table is a printable experiment result. The JSON form is canonical: field
// order is fixed, cells are the exact strings the CLI prints, and nothing
// wall-clock-dependent is included, so two runs at the same seed/scale
// marshal byte-identically.
type Table struct {
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

// String renders the table with aligned columns.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

func mb(v int64) string { return fmt.Sprintf("%.2f MB", float64(v)/1e6) }

// scaledDuration shortens measured phases for quick runs (floor 8s so
// timelines stay readable).
func scaledDuration(sc Scale, d time.Duration) time.Duration {
	v := time.Duration(float64(d) * sc.Data)
	if v < 8*time.Second {
		v = 8 * time.Second
	}
	return v
}
