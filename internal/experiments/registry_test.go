package experiments

import (
	"strings"
	"testing"
)

func TestRegistryOrderAndLookup(t *testing.T) {
	want := []string{"fig3", "table1", "fig5a", "fig5b", "fig10", "fig11",
		"table2", "fig12", "table3", "fig13", "fig14", "chaos", "ablation", "qos", "fpindex", "scale", "tenants", "redundancy"}
	got := Names()
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("registry order = %v, want %v", got, want)
	}
	for _, name := range want {
		exp, ok := Lookup(name)
		if !ok || exp.Name() != name {
			t.Errorf("Lookup(%q) = %v, %v", name, exp, ok)
		}
	}
	if _, ok := Lookup("fig99"); ok {
		t.Error("Lookup of unknown experiment succeeded")
	}
}

func TestCanonicalJSONStable(t *testing.T) {
	r := Result{Name: "x", Tables: []Table{{
		Title:   "T",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", "2"}},
	}}}
	j1, err := r.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, _ := r.CanonicalJSON()
	if string(j1) != string(j2) {
		t.Error("canonical JSON not stable across marshals")
	}
	s := string(j1)
	if !strings.HasSuffix(s, "\n") {
		t.Error("canonical JSON missing trailing newline")
	}
	// Field order is fixed by the struct: name before tables, title before
	// columns before rows.
	if !(strings.Index(s, `"name"`) < strings.Index(s, `"tables"`) &&
		strings.Index(s, `"title"`) < strings.Index(s, `"columns"`) &&
		strings.Index(s, `"columns"`) < strings.Index(s, `"rows"`)) {
		t.Errorf("canonical key order violated:\n%s", s)
	}
	for _, banned := range []string{"time", "stamp", "wall"} {
		if strings.Contains(s, `"`+banned) {
			t.Errorf("canonical JSON contains wall-clock-ish key %q:\n%s", banned, s)
		}
	}
	if r.Output() != r.Tables[0].String() {
		t.Error("Result.Output must concatenate rendered tables")
	}
}

// TestTraceCaptureIsolation: harnesses built from a captured Scale must not
// leak their sinks into the process-global list, and vice versa.
func TestTraceCaptureIsolation(t *testing.T) {
	TraceReport(10) // drain whatever other tests left behind

	captured, tc := (Scale{Data: 0.1}).WithTraceCapture()
	h := captured.newHarness(1, 1, 1)
	_ = h
	if got := TraceReport(10); got != "" {
		t.Errorf("captured harness leaked into the global sink list:\n%s", got)
	}
	// The capture saw the sink (empty span list renders "", but draining
	// twice proves the sink moved through the capture exactly once).
	tc.mu.Lock()
	n := len(tc.sinks)
	tc.mu.Unlock()
	if n != 1 {
		t.Errorf("capture holds %d sinks, want 1", n)
	}

	plain := Scale{Data: 0.1}
	_ = plain.newHarness(2, 1, 1)
	globalSinks.mu.Lock()
	g := len(globalSinks.sinks)
	globalSinks.mu.Unlock()
	if g != 1 {
		t.Errorf("global list holds %d sinks, want 1", g)
	}
	TraceReport(10) // leave the global list clean for other tests
}
