package experiments

import (
	"testing"
	"time"
)

// TestRedundancyShape runs the frontier sweep at the golden scale and checks
// the dominance claims the table's notes make: adaptive must match or beat
// the best static storage efficiency (Dedup+EC) while holding the hot-set
// read tail within 1.5x of the best static tail (Replication). The chaos
// soak must come back with every invariant intact.
func TestRedundancyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	rows := Redundancy(QuickScale())
	byName := map[string]RedundancyRow{}
	for _, r := range rows {
		byName[r.Config] = r
	}
	rep, ok1 := byName["Replication"]
	ec, ok2 := byName["Dedup+EC"]
	ad, ok3 := byName["Adaptive"]
	if !ok1 || !ok2 || !ok3 {
		t.Fatalf("missing configs in sweep: %v", rows)
	}
	if ad.Efficiency < ec.Efficiency {
		t.Errorf("adaptive efficiency %.3f below static Dedup+EC %.3f", ad.Efficiency, ec.Efficiency)
	}
	if limit := time.Duration(float64(rep.HotP99) * 1.5); ad.HotP99 > limit {
		t.Errorf("adaptive hot p99 %v exceeds 1.5x Replication (%v, limit %v)", ad.HotP99, rep.HotP99, limit)
	}
	if ad.Migrations == 0 {
		t.Error("adaptive config performed no migrations; tiering daemon did not run")
	}
	if ad.TierErrors != 0 {
		t.Errorf("adaptive config hit %d tiering errors in a fault-free run", ad.TierErrors)
	}
	for _, r := range rows {
		if r.HotReads == 0 {
			t.Errorf("%s: no hot reads recorded", r.Config)
		}
	}

	ch := RedundancyChaos(QuickScale())
	if ch.Migrations == 0 {
		t.Error("chaos soak performed no migrations; kills landed against an idle daemon")
	}
	if ch.StaleRefs != 0 {
		t.Errorf("stale refs after post-mortem GC: %d", ch.StaleRefs)
	}
	if ch.ScrubIssues != 0 {
		t.Errorf("scrub issues after reconciliation: %d", ch.ScrubIssues)
	}
	if ch.LostChunks != 0 {
		t.Errorf("lost chunks after OSD kills: %d", ch.LostChunks)
	}
	if ch.VerifyErrors != 0 {
		t.Errorf("objects failed byte-for-byte verification: %d", ch.VerifyErrors)
	}
}
