package experiments

import (
	"fmt"
	"time"

	"dedupstore/internal/client"
	"dedupstore/internal/core"
	"dedupstore/internal/gateway"
	"dedupstore/internal/rados"
	"dedupstore/internal/sim"
	"dedupstore/internal/workload"
)

// The tenants experiment exercises the multi-tenant gateway beyond what the
// paper measures: a noisy-neighbor isolation study (can a tenant running
// dedup-hostile traffic blow a quiet gold tenant's p99?) and a fleet sweep
// sharing one cluster across many tenants in the built-in SLO classes.

// TenantIsolationRow is one configuration of the noisy-neighbor study.
type TenantIsolationRow struct {
	Config     string
	QuietP99Ms float64
	VsSolo     float64 // quiet p99 relative to the solo baseline
	NoisyMB    int64   // bytes the noisy tenant got admitted, MB
	NoisyThrot int64
	NoisyWaitS float64 // total admission wait the noisy tenant ate, seconds
}

// TenantIsolation measures a quiet gold tenant's small-write p99 three ways:
// alone, sharing the cluster with an unthrottled noisy neighbor running
// dedup-hostile traffic (low-dup random writes — every block fingerprints,
// misses, and flushes), and sharing with the same neighbor held to the
// bronze SLO. The headline is the before/after p99 delta: isolation off
// lets the neighbor blow the quiet tenant's tail; the bronze token bucket
// keeps it near solo.
func TenantIsolation(sc Scale) []TenantIsolationRow {
	span := sc.bytes(16 << 20)
	// The neighbor writes across a wide span: many stripe objects, many PGs,
	// so its queue depth lands on the OSDs instead of serializing on a
	// handful of object locks.
	noisySpan := sc.bytes(256 << 20)
	cases := []struct {
		label string
		noisy bool
		slo   gateway.SLO
	}{
		{label: "quiet gold, solo (baseline)"},
		{label: "+ noisy neighbor, isolation off", noisy: true, slo: gateway.SLO{}},
		{label: "+ noisy neighbor, bronze SLO", noisy: true, slo: gateway.Bronze},
	}

	var rows []TenantIsolationRow
	solo := 0.0
	for _, tc := range cases {
		h := sc.newHarness(910, 4, 4)
		s := h.dedupStore(func(cfg *core.Config) {
			cfg.HitSet.HitCount = 1000
		})
		coord := gateway.New(h.c.Metrics(), 0)
		quiet, err := coord.Register("quiet", gateway.Gold)
		if err != nil {
			panic(err)
		}
		qc := s.Client("client.quiet")
		qc.SetTenant("quiet")

		// Prefill the quiet dataset through a plain device so the tenant's
		// latency histogram holds only the measured phase.
		prefill := h.dedupDevice("quiet", span, s)
		h.run(func(p *sim.Proc) {
			res := workload.RunFIO(p, prefill, workload.FIOConfig{
				BlockSize: 64 << 10, Span: span, Pattern: workload.SeqWrite,
				DedupPct: 50, Threads: 8, IODepth: 4, Seed: 91,
			})
			if res.Errors > 0 {
				panic(fmt.Sprintf("tenants prefill: %d errors", res.Errors))
			}
			s.Engine().DrainAndWait(p)
		})

		// The measured quiet device shares the prefilled object namespace but
		// routes every op through the tenant's admission path.
		qdev, err := client.NewBlockDevice("quiet", span, 1<<20,
			quiet.Backend(&client.DedupBackend{Client: qc}))
		if err != nil {
			panic(err)
		}
		qdev.SetTrace(h.c.Trace())
		qdev.SetTenant("quiet")

		var noisy *gateway.Tenant
		if tc.noisy {
			noisy, err = coord.Register("noisy", tc.slo)
			if err != nil {
				panic(err)
			}
			nc := s.Client("client.noisy")
			nc.SetTenant("noisy")
			ndev, err := client.NewBlockDevice("noisy", noisySpan, 1<<20,
				noisy.Backend(&client.DedupBackend{Client: nc}))
			if err != nil {
				panic(err)
			}
			ndev.SetTrace(h.c.Trace())
			ndev.SetTenant("noisy")
			// Daemon: saturates for as long as the measured phase runs, then
			// the engine stops with the quiet proc.
			h.eng.GoDaemon("noisy", func(p *sim.Proc) {
				workload.RunFIO(p, ndev, workload.FIOConfig{
					BlockSize: 64 << 10, Span: noisySpan, Pattern: workload.RandWrite,
					DedupPct: 0, Threads: 64, IODepth: 16, Seed: 95,
					Ops: 1 << 30,
				})
			})
		}

		h.run(func(p *sim.Proc) {
			if tc.noisy {
				p.Sleep(100 * time.Millisecond) // let the neighbor fill the OSD queues
			}
			res := workload.RunFIO(p, qdev, workload.FIOConfig{
				BlockSize: 16 << 10, Span: span, Pattern: workload.RandWrite,
				DedupPct: 50, Threads: 2, IODepth: 2, Seed: 94,
				Ops: 256,
			})
			if res.Errors > 0 {
				panic(fmt.Sprintf("tenants measured phase (%s): %d errors", tc.label, res.Errors))
			}
		})

		qst := quiet.Stats()
		row := TenantIsolationRow{
			Config:     tc.label,
			QuietP99Ms: float64(qst.P99Lat) / float64(time.Millisecond),
		}
		if tc.noisy {
			nst := noisy.Stats()
			row.NoisyMB = nst.Bytes / 1e6
			row.NoisyThrot = nst.Throttled
			row.NoisyWaitS = nst.QueueWait.Seconds()
		}
		if solo == 0 {
			solo = row.QuietP99Ms
		}
		if solo > 0 {
			row.VsSolo = row.QuietP99Ms / solo
		}
		rows = append(rows, row)
	}
	return rows
}

// TenantIsolationTable renders the noisy-neighbor study.
func TenantIsolationTable(rows []TenantIsolationRow) Table {
	t := Table{
		Title:   "Tenants: quiet gold tenant 16KB randwrite p99 vs noisy neighbor (dedup-hostile 64KB randwrite)",
		Columns: []string{"config", "quiet p99 ms", "vs solo", "noisy MB", "noisy throttled", "noisy wait s"},
		Notes: []string{
			"shape target: bronze SLO holds quiet p99 within 1.5x of solo; isolation off degrades it >=3x",
			"noisy traffic is 0%-dup random writes: every block fingerprints, misses, and flushes",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Config, f2(r.QuietP99Ms), f2(r.VsSolo),
			fmt.Sprint(r.NoisyMB), fmt.Sprint(r.NoisyThrot), f2(r.NoisyWaitS),
		})
	}
	return t
}

// TenantFleetRow aggregates one SLO class of the fleet sweep.
type TenantFleetRow struct {
	Class     string
	Tenants   int
	Ops       int64
	MB        int64
	Throttled int64
	AvgWaitMs float64
}

// TenantFleet shares one cluster across many tenants (1000 at full scale)
// round-robined over the built-in SLO classes, all submitting concurrently
// through a slot-bounded coordinator, and reports per-class admission
// totals: weighted SFQ should let gold through with the least queueing
// while bronze absorbs the wait.
func TenantFleet(sc Scale) []TenantFleetRow {
	h := sc.newHarness(915, 4, 4)
	pool, gw := h.rawPool("fleet", rados.ReplicatedN(2))
	coord := gateway.New(h.c.Metrics(), 64)
	n := sc.countMin(1000, 250)
	classes := []gateway.SLO{gateway.Gold, gateway.Silver, gateway.Bronze}
	tenants := make([]*gateway.Tenant, n)
	for i := range tenants {
		t, err := coord.Register(fmt.Sprintf("t%04d", i), classes[i%len(classes)])
		if err != nil {
			panic(err)
		}
		tenants[i] = t
	}
	const opBytes = 64 << 10
	buf := make([]byte, opBytes)
	h.run(func(p *sim.Proc) {
		for i, tn := range tenants {
			i, tn := i, tn
			p.Go("tenant", func(q *sim.Proc) {
				for k := 0; k < 4; k++ {
					oid := fmt.Sprintf("obj.%d.%d", i, k)
					tn.Do(q, opBytes, func(r *sim.Proc) {
						if err := gw.Write(r, pool, oid, 0, buf); err != nil {
							panic(err)
						}
					})
				}
			})
		}
	})

	var rows []TenantFleetRow
	for _, ct := range coord.Totals() {
		r := TenantFleetRow{
			Class: ct.Class, Tenants: ct.Tenants, Ops: ct.Ops,
			MB: ct.Bytes / 1e6, Throttled: ct.Throttled,
		}
		if ct.Ops > 0 {
			r.AvgWaitMs = float64(ct.QueueWait) / float64(ct.Ops) / float64(time.Millisecond)
		}
		rows = append(rows, r)
	}
	return rows
}

// TenantFleetTable renders the fleet sweep.
func TenantFleetTable(rows []TenantFleetRow) Table {
	t := Table{
		Title:   "Tenants: fleet of tenants round-robined over gold/silver/bronze, 64-slot coordinator",
		Columns: []string{"class", "tenants", "ops", "MB", "throttled", "avg wait ms"},
		Notes: []string{
			"shape target: gold's average admission wait is the lowest of the three classes",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Class, fmt.Sprint(r.Tenants), fmt.Sprint(r.Ops),
			fmt.Sprint(r.MB), fmt.Sprint(r.Throttled), f2(r.AvgWaitMs),
		})
	}
	return t
}

// TenantsResult runs both tenant tables and packages them as a Result.
func TenantsResult(sc Scale) Result {
	return Result{Name: "tenants", Tables: []Table{
		TenantIsolationTable(TenantIsolation(sc)),
		TenantFleetTable(TenantFleet(sc)),
	}}
}
