package experiments

import (
	"fmt"
	"time"

	"dedupstore/internal/client"
	"dedupstore/internal/core"
	"dedupstore/internal/metrics"
	"dedupstore/internal/rados"
	"dedupstore/internal/sim"
	"dedupstore/internal/workload"
)

// Fig5aRow is one bar of Figure 5-(a): sequential-write throughput when the
// write block is smaller than the dedup chunk.
type Fig5aRow struct {
	Config     string
	BlockSize  int64
	Throughput float64 // MB/s
}

// Fig5a reproduces Figure 5-(a), the partial-write problem of inline
// deduplication: 16KB sequential writes against a 32KB-chunk inline dedup
// store force a read-modify-write per chunk, collapsing throughput versus
// the original store (and versus chunk-aligned 32KB writes).
func Fig5a(sc Scale) []Fig5aRow {
	span := sc.bytes(8 << 20)
	runCase := func(name string, bs int64, inline bool) Fig5aRow {
		h := sc.newHarness(201, 4, 4)
		var dev *client.BlockDevice
		if inline {
			s := h.dedupStore(func(cfg *core.Config) {
				cfg.Mode = core.ModeInline
				cfg.ChunkSize = 32 << 10
			})
			dev = h.dedupDevice("img", span, s)
		} else {
			dev = h.rawDevice("img", span, 0, rados.ReplicatedN(2))
		}
		var res workload.FIOResult
		h.run(func(p *sim.Proc) {
			// Two sequential passes: the second pass hits chunks that inline
			// dedup already flushed, so sub-chunk writes must pre-read them.
			cfg := workload.FIOConfig{
				BlockSize: bs, Span: span, Pattern: workload.SeqWrite,
				Threads: 4, IODepth: 4, Seed: 51, Ops: int(2 * span / bs),
			}
			res = workload.RunFIO(p, dev, cfg)
			if res.Errors > 0 {
				panic(fmt.Sprintf("fig5a %s: %d errors", name, res.Errors))
			}
		})
		return Fig5aRow{Config: name, BlockSize: bs, Throughput: res.Throughput()}
	}
	return []Fig5aRow{
		runCase("Original, 16KB writes", 16<<10, false),
		runCase("Inline dedup, 16KB writes (partial-write RMW)", 16<<10, true),
		runCase("Inline dedup, 32KB writes (chunk-aligned)", 32<<10, true),
	}
}

// Fig5aTable renders Fig5a.
func Fig5aTable(rows []Fig5aRow) Table {
	t := Table{
		Title:   "Figure 5-(a): inline dedup partial-write problem (seq write)",
		Columns: []string{"config", "block", "MB/s"},
		Notes:   []string{"shape target: inline 16KB << original 16KB (read-modify-write per 32KB chunk)"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Config, fmt.Sprintf("%dKB", r.BlockSize>>10), f1(r.Throughput)})
	}
	return t
}

// TimelinePoint is one second of a foreground-throughput timeline.
type TimelinePoint struct {
	Second int
	MBps   float64
}

// InterferenceResult is a Fig5b/Fig14 timeline.
type InterferenceResult struct {
	Label  string
	Points []TimelinePoint
	// SteadyBefore/SteadyAfter are mean MB/s before/after the background
	// engine starts.
	SteadyBefore, SteadyAfter float64
}

// foregroundWithEngine runs a sequential foreground writer for total
// seconds, starting the dedup engine (if s != nil) at engineStart.
func foregroundWithEngine(h *harness, s *core.Store, dev *client.BlockDevice,
	span int64, total, engineStart time.Duration, label string) InterferenceResult {

	rec := metrics.NewRecorder()
	gen := workload.NewFIOGen(workload.FIOConfig{BlockSize: 512 << 10, Span: span, DedupPct: 50, Seed: 61})
	const workers = 8
	h.runUntil(sim.Time(total), func(p *sim.Proc) {
		if s != nil {
			h.eng.After(engineStart, func() { s.StartEngine() })
		}
		blocks := span / (512 << 10)
		next := int64(0)
		for w := 0; w < workers; w++ {
			p.Go("fg", func(q *sim.Proc) {
				for q.Now() < sim.Time(total) {
					off := (next % blocks) * (512 << 10)
					next++
					opStart := q.Now()
					if err := dev.WriteAt(q, off, gen.NextBlock()); err != nil {
						panic(err)
					}
					rec.Record(q.Now(), (q.Now() - opStart).Duration(), 512<<10)
				}
			})
		}
	})
	res := InterferenceResult{Label: label}
	pts := rec.Series.Points()
	for i, pt := range pts {
		res.Points = append(res.Points, TimelinePoint{Second: i, MBps: pt.MBps(rec.Series.Interval())})
	}
	startSec := int(engineStart / time.Second)
	res.SteadyBefore = rec.Series.MeanMBps(1, startSec)
	res.SteadyAfter = rec.Series.MeanMBps(startSec+1, len(pts))
	return res
}

// Fig5b reproduces Figure 5-(b): a foreground sequential write stream is
// throttled hard when an un-rate-limited background dedup engine starts.
func Fig5b(sc Scale) InterferenceResult {
	h := sc.newHarness(202, 4, 4)
	s := h.dedupStore(func(cfg *core.Config) {
		cfg.Rate.Enabled = false // the problem case: no rate control
		cfg.DedupThreads = 32
		cfg.FlushParallel = 16
		cfg.HitSet.HitCount = 1000 // no hot exemption: everything is a target
	})
	span := sc.bytes(16 << 20)
	dev := h.dedupDevice("img", span, s)
	total := scaledDuration(sc, 24*time.Second)
	return foregroundWithEngine(h, s, dev, span, total, total/3,
		"post-processing dedup w/o rate control")
}

// Fig5bTable renders the interference timeline.
func Fig5bTable(r InterferenceResult) Table {
	t := Table{
		Title:   "Figure 5-(b): foreground interference from background dedup (" + r.Label + ")",
		Columns: []string{"second", "foreground MB/s"},
		Notes: []string{
			fmt.Sprintf("steady before engine start: %.0f MB/s; after: %.0f MB/s", r.SteadyBefore, r.SteadyAfter),
			"shape target: pronounced throughput drop once background dedup starts (paper: 600 -> 200 MB/s)",
		},
	}
	for _, pt := range r.Points {
		t.Rows = append(t.Rows, []string{fmt.Sprint(pt.Second), f1(pt.MBps)})
	}
	return t
}

// Fig14 reproduces Figure 14: the same foreground stream under (1) no
// dedup, (2) background dedup without rate control, and (3) background
// dedup with watermark rate control — rate control recovers most of the
// foreground throughput.
func Fig14(sc Scale) []InterferenceResult {
	span := sc.bytes(16 << 20)
	total := scaledDuration(sc, 24*time.Second)
	engStart := total / 3

	var out []InterferenceResult

	{ // Ideal: no deduplication at all.
		h := sc.newHarness(203, 4, 4)
		s := h.dedupStore(func(cfg *core.Config) {
			cfg.HitSet.HitCount = 1000
		})
		dev := h.dedupDevice("img", span, s)
		r := foregroundWithEngine(h, nil, dev, span, total, engStart, "no deduplication (ideal)")
		_ = s
		out = append(out, r)
	}
	{ // Dedup without rate control.
		h := sc.newHarness(204, 4, 4)
		s := h.dedupStore(func(cfg *core.Config) {
			cfg.Rate.Enabled = false
			cfg.DedupThreads = 32
			cfg.FlushParallel = 16
			cfg.HitSet.HitCount = 1000
		})
		dev := h.dedupDevice("img", span, s)
		out = append(out, foregroundWithEngine(h, s, dev, span, total, engStart, "dedup w/o rate control"))
	}
	{ // Dedup with watermark rate control.
		h := sc.newHarness(205, 4, 4)
		s := h.dedupStore(func(cfg *core.Config) {
			cfg.Rate = core.RateConfig{Enabled: true, LowIOPS: 100, HighIOPS: 500, OpsPerDedupAboveHigh: 500, OpsPerDedupMid: 100}
			cfg.DedupThreads = 32
			cfg.FlushParallel = 16
			cfg.HitSet.HitCount = 1000
		})
		dev := h.dedupDevice("img", span, s)
		out = append(out, foregroundWithEngine(h, s, dev, span, total, engStart, "dedup w/ rate control"))
	}
	return out
}

// Fig14Table renders the three rate-control timelines side by side.
func Fig14Table(rs []InterferenceResult) Table {
	t := Table{
		Title:   "Figure 14: dedup rate control (foreground MB/s per second)",
		Columns: []string{"second"},
		Notes:   []string{"shape target: w/ rate control stays near ideal; w/o control drops hard (paper: ~500-600 vs ~200 MB/s)"},
	}
	maxLen := 0
	for _, r := range rs {
		t.Columns = append(t.Columns, r.Label)
		if len(r.Points) > maxLen {
			maxLen = len(r.Points)
		}
		t.Notes = append(t.Notes, fmt.Sprintf("%s: before=%.0f MB/s after=%.0f MB/s", r.Label, r.SteadyBefore, r.SteadyAfter))
	}
	for i := 0; i < maxLen; i++ {
		row := []string{fmt.Sprint(i)}
		for _, r := range rs {
			if i < len(r.Points) {
				row = append(row, f1(r.Points[i].MBps))
			} else {
				row = append(row, "-")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig5aResult runs Fig5a and packages it as a machine-readable Result.
func Fig5aResult(sc Scale) Result {
	return Result{Name: "fig5a", Tables: []Table{Fig5aTable(Fig5a(sc))}}
}

// Fig5bResult runs Fig5b and packages it as a machine-readable Result.
func Fig5bResult(sc Scale) Result {
	return Result{Name: "fig5b", Tables: []Table{Fig5bTable(Fig5b(sc))}}
}

// Fig14Result runs Fig14 and packages it as a machine-readable Result.
func Fig14Result(sc Scale) Result {
	return Result{Name: "fig14", Tables: []Table{Fig14Table(Fig14(sc))}}
}
