package experiments

import (
	"time"

	"dedupstore/internal/client"
	"dedupstore/internal/core"
	"dedupstore/internal/rados"
	"dedupstore/internal/sim"
	"dedupstore/internal/workload"
)

// Fig12Row is one configuration's results for the SPEC SFS 2014 database
// workload evaluation (Figure 12 a–e).
type Fig12Row struct {
	Config      string
	Throughput  float64 // MB/s (a)
	MeanLatency time.Duration
	ReadIOPS    float64
	WriteIOPS   float64
	ReadLat     time.Duration
	WriteLat    time.Duration
	StorageUsed int64
}

// Fig12 reproduces Figure 12: the SFS database workload (fixed request
// rate) on four configurations — Replication, Proposed (dedup over
// replication), EC, and Proposed-EC (dedup with an erasure-coded chunk
// pool). The SFS property that total throughput is demand-bound (not
// capacity-bound) makes Replication and Proposed match on throughput while
// latency and storage differ; EC pays its read-modify-write penalty.
func Fig12(sc Scale) []Fig12Row {
	sfsCfg := workload.SFSConfig{
		Loads:            4,
		BytesPerLoad:     sc.bytes(6 << 20), // paper: 240GB total, metric 10
		OpsPerSecPerLoad: 3000,
		WorkersPerLoad:   2,
		Duration:         scaledDuration(sc, 10*time.Second),
		PageSize:         8 << 10,
		Seed:             601,
	}
	devSize := int64(sfsCfg.Loads) * sfsCfg.BytesPerLoad

	type setup struct {
		name  string
		build func(h *harness) (*client.BlockDevice, *core.Store)
	}
	setups := []setup{
		{"Replication", func(h *harness) (*client.BlockDevice, *core.Store) {
			return h.rawDevice("img", devSize, 0, rados.ReplicatedN(2)), nil
		}},
		{"Proposed", func(h *harness) (*client.BlockDevice, *core.Store) {
			s := h.dedupStore(nil) // paper defaults: cache manager active
			return h.dedupDevice("img", devSize, s), s
		}},
		{"EC", func(h *harness) (*client.BlockDevice, *core.Store) {
			return h.rawDevice("img", devSize, 0, rados.ErasureKM(2, 1)), nil
		}},
		{"Proposed-EC", func(h *harness) (*client.BlockDevice, *core.Store) {
			s := h.dedupStore(func(cfg *core.Config) {
				cfg.ChunkRedundancy = rados.ErasureKM(2, 1)
			})
			return h.dedupDevice("img", devSize, s), s
		}},
	}

	var rows []Fig12Row
	for i, st := range setups {
		h := sc.newHarness(610+int64(i), 4, 4)
		dev, s := st.build(h)
		h.run(func(p *sim.Proc) {
			if err := workload.BuildSFSDataset(p, dev, sfsCfg); err != nil {
				panic(err)
			}
		})
		// Storage usage (e): measured on the settled dataset — flushed,
		// cooled, and after the cache agent's eviction pass — matching the
		// paper's dataset-footprint accounting. (At this scale the measured
		// phase rewrites nearly every chunk, which the paper's 240GB file
		// set did not experience.)
		if s != nil {
			h.run(func(p *sim.Proc) {
				s.Engine().DrainAndWait(p)
				p.Sleep(12 * time.Second)
				s.Engine().EvictCold(p)
			})
		}
		used := int64(0)
		if s != nil {
			used = h.c.PoolStats(s.MetaPool()).StoredTotal() + h.c.PoolStats(s.ChunkPool()).StoredTotal()
		} else {
			pool, _ := h.c.LookupPool("pool.img")
			used = h.c.PoolStats(pool).StoredTotal()
		}
		if s != nil {
			s.StartEngine() // keep the engine running through the perf phase
		}
		var res workload.SFSResult
		h.run(func(p *sim.Proc) { res = workload.RunSFS(p, dev, sfsCfg) })
		rows = append(rows, Fig12Row{
			Config:      st.name,
			Throughput:  res.TotalThroughput(),
			MeanLatency: res.MeanLatency(),
			ReadIOPS:    res.Read.IOPS(res.Elapsed),
			WriteIOPS:   res.Write.IOPS(res.Elapsed) + res.LogWrite.IOPS(res.Elapsed),
			ReadLat:     res.Read.Lat.Mean(),
			WriteLat:    res.Write.Lat.Mean(),
			StorageUsed: used,
		})
	}
	return rows
}

// Fig12Table renders Fig12.
func Fig12Table(rows []Fig12Row) Table {
	t := Table{
		Title:   "Figure 12: SPEC SFS 2014 database workload (rep=2 / EC 2+1)",
		Columns: []string{"config", "MB/s", "mean lat", "read IOPS", "write IOPS", "read lat", "write lat", "storage"},
		Notes: []string{
			"paper shape (a): Replication ~ Proposed throughput (fixed-rate workload); EC/Proposed-EC lower",
			"paper shape (b,d): Proposed latency > Replication (dedup overhead); EC latencies much worse (RMW + spread reads)",
			"paper shape (e): storage 428GB rep / 320GB EC / 48GB Proposed on the 240GB file set",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Config, f1(r.Throughput), r.MeanLatency.Round(time.Microsecond).String(),
			f1(r.ReadIOPS), f1(r.WriteIOPS),
			r.ReadLat.Round(time.Microsecond).String(), r.WriteLat.Round(time.Microsecond).String(),
			mb(r.StorageUsed),
		})
	}
	return t
}

// Fig12Result runs Fig12 and packages it as a machine-readable Result.
func Fig12Result(sc Scale) Result {
	return Result{Name: "fig12", Tables: []Table{Fig12Table(Fig12(sc))}}
}
