package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"dedupstore/internal/chaos"
	"dedupstore/internal/core"
	"dedupstore/internal/metrics"
	"dedupstore/internal/rados"
	"dedupstore/internal/sim"
)

// The redundancy experiment maps the storage-efficiency vs tail-latency
// frontier of adaptive redundancy against the paper's static Fig 12
// configurations. A skewed-popularity workload (a small hot set takes ~90%
// of accesses; hot content is unique, cold content deduplicates ~2x) runs
// against four placements:
//
//	Replication     raw 2x-replicated pool, no dedup (Fig 12 "Replication")
//	Dedup+Rep       dedup store, replicated chunk pool ("Proposed")
//	Dedup+EC        dedup store, EC 2+1 chunk pool ("Proposed-EC")
//	Adaptive        tiering on: hot → replicated+undeduplicated,
//	                warm → replicated+dedup, cold → EC+dedup
//
// The static configs each sit on one corner of the frontier: Replication
// buys the best tail at 2x storage everywhere; Dedup+EC buys the best
// storage but keeps a hot working set double-stored (cached copy in the
// metadata pool AND a chunk in the EC pool). Adaptive should dominate:
// storage no worse than Dedup+EC (hot objects drop their chunk claims
// entirely) while the hot-set read tail stays within 1.5x of Replication
// (hot reads are served from the replicated metadata pool, never
// redirected to EC).
//
// A second table kills OSDs in the middle of live tier migrations and then
// runs the full reconciliation battery: the two-phase reference protocol
// must leave zero stale references, zero scrub issues, and zero lost data.

// RedundancyRow is one configuration's point on the frontier.
type RedundancyRow struct {
	Config     string
	LogicalMB  float64
	StoredMB   float64
	Efficiency float64 // logical / stored (higher is better)
	HotP99     time.Duration
	AllP99     time.Duration
	HotReads   int64
	Migrations int64 // chunk moves + recaches + rededups (adaptive only)
	TierErrors int64
}

// redundancyWorkload describes the shared skewed-popularity dataset.
type redundancyWorkload struct {
	objects  int
	hot      int   // first `hot` objects take ~90% of accesses
	objSize  int64 // two 4 KiB-aligned chunks at the experiment chunk size
	chunkSz  int64
	duration time.Duration
}

func redundancyWL(sc Scale) redundancyWorkload {
	objects := sc.countMin(64, 16)
	hot := objects / 8
	if hot < 2 {
		hot = 2
	}
	return redundancyWorkload{
		objects:  objects,
		hot:      hot,
		objSize:  64 << 10,
		chunkSz:  32 << 10,
		duration: scaledDuration(sc, 12*time.Second),
	}
}

// objectData returns object i's content: hot objects carry unique bytes
// (an active working set is new data); cold objects draw each chunk from a
// shared pattern pool half the cold population's size, yielding ~2x dedup.
func (wl redundancyWorkload) objectData(i int) []byte {
	data := make([]byte, wl.objSize)
	chunks := int(wl.objSize / wl.chunkSz)
	for c := 0; c < chunks; c++ {
		var seed int64
		if i < wl.hot {
			seed = int64(1_000_000 + i*chunks + c)
		} else {
			pool := (wl.objects - wl.hot) / 2
			if pool < 1 {
				pool = 1
			}
			seed = int64(2_000_000 + ((i-wl.hot)*chunks+c)%pool)
		}
		rand.New(rand.NewSource(seed)).Read(data[int64(c)*wl.chunkSz : int64(c+1)*wl.chunkSz])
	}
	return data
}

// pick returns the object an access lands on: 90% on the hot set.
func (wl redundancyWorkload) pick(rng *rand.Rand) int {
	if rng.Intn(10) < 9 {
		return rng.Intn(wl.hot)
	}
	return wl.hot + rng.Intn(wl.objects-wl.hot)
}

func redundancyOID(i int) string { return fmt.Sprintf("robj.%d", i) }

// redundancyCase runs one configuration. kind: "raw" (replicated pool, no
// dedup), "dedup" (static chunk redundancy red), "adaptive" (tiering on).
func redundancyCase(sc Scale, wl redundancyWorkload, name, kind string, red rados.Redundancy, seed int64) RedundancyRow {
	row := RedundancyRow{Config: name}
	h := sc.newHarness(seed, 4, 4)

	var s *core.Store
	var rawPool *rados.Pool
	var rawGW *rados.Gateway
	adaptive := kind == "adaptive"
	if kind == "raw" {
		rawPool, rawGW = h.rawPool("redundancy", red)
	} else {
		s = h.dedupStore(func(cfg *core.Config) {
			cfg.ChunkSize = wl.chunkSz
			if adaptive {
				cfg.Tiering = core.DefaultTiering()
				cfg.Tiering.Interval = 500 * time.Millisecond
			} else {
				cfg.ChunkRedundancy = red
			}
		})
	}

	write := func(p *sim.Proc, cl *core.Client, i int) error {
		if s == nil {
			return rawGW.WriteFull(p, rawPool, redundancyOID(i), wl.objectData(i))
		}
		return cl.Write(p, redundancyOID(i), 0, wl.objectData(i))
	}
	read := func(p *sim.Proc, cl *core.Client, i int) error {
		if s == nil {
			_, err := rawGW.Read(p, rawPool, redundancyOID(i), 0, wl.objSize)
			return err
		}
		_, err := cl.Read(p, redundancyOID(i), 0, wl.objSize)
		return err
	}

	// Ingest, then let the engine place everything once.
	var ingest *core.Client
	if s != nil {
		ingest = s.Client("client.ingest")
	}
	h.run(func(p *sim.Proc) {
		for i := 0; i < wl.objects; i++ {
			if err := write(p, ingest, i); err != nil {
				panic(err)
			}
		}
		if s != nil {
			s.Engine().DrainAndWait(p)
		}
	})

	// Steady state: 4 workers follow the skew (80% reads / 20% rewrites of
	// the same content) with the background machinery live. Latencies are
	// recorded only after the first third, once placements converge.
	hotLat := metrics.NewHistogram()
	allLat := metrics.NewHistogram()
	if s != nil {
		s.StartEngine()
		if adaptive {
			s.StartTieringDaemon()
		}
	}
	const workers = 4
	h.run(func(p *sim.Proc) {
		t0 := p.Now()
		warmup := t0 + sim.Time(wl.duration/3)
		end := t0 + sim.Time(wl.duration)
		var sigs []*sim.Signal
		for w := 0; w < workers; w++ {
			w := w
			sigs = append(sigs, p.Go(fmt.Sprintf("load%d", w), func(q *sim.Proc) {
				rng := rand.New(rand.NewSource(seed + 10 + int64(w)))
				var cl *core.Client
				if s != nil {
					cl = s.Client(fmt.Sprintf("client.%d", w))
					cl.SetTenant("tenant.skew")
				}
				for q.Now() < end {
					i := wl.pick(rng)
					if rng.Intn(5) == 0 {
						if err := write(q, cl, i); err != nil {
							panic(err)
						}
					} else {
						t := q.Now()
						if err := read(q, cl, i); err != nil {
							panic(err)
						}
						if q.Now() >= warmup {
							lat := (q.Now() - t).Duration()
							allLat.Add(lat)
							if i < wl.hot {
								hotLat.Add(lat)
								row.HotReads++
							}
						}
					}
					q.Sleep(time.Duration(4+rng.Intn(8)) * time.Millisecond)
				}
			}))
		}
		sim.WaitAll(p, sigs...)
	})

	// Settle and measure the footprint while the working set is still hot —
	// the steady-state bill each design pays, not the everything-cold one.
	// Static dedup drains and evicts cold caches (the Fig 12 idiom);
	// adaptive additionally runs policy passes to convergence, which drop
	// the hot set's chunk claims instead of double-storing them.
	used := int64(0)
	h.run(func(p *sim.Proc) {
		if s == nil {
			return
		}
		if adaptive {
			s.StopTieringDaemon()
		}
		s.Engine().DrainAndWait(p)
		s.Engine().EvictCold(p)
		if adaptive {
			for i := 0; i < 3; i++ {
				if _, err := s.TierPass(p); err != nil {
					panic(err)
				}
			}
		}
	})
	if s != nil {
		used = h.c.PoolStats(s.MetaPool()).StoredTotal() + h.c.PoolStats(s.ChunkPool()).StoredTotal()
		if cp := s.ColdChunkPool(); cp != nil {
			used += h.c.PoolStats(cp).StoredTotal()
		}
		ts := s.TierStats()
		row.Migrations = ts.PromotedChunks + ts.DemotedChunks + int64(ts.Recaches) + ts.Rededups
		row.TierErrors = ts.Errors
	} else {
		used = h.c.PoolStats(rawPool).StoredTotal()
	}

	logical := int64(wl.objects) * wl.objSize
	row.LogicalMB = float64(logical) / 1e6
	row.StoredMB = float64(used) / 1e6
	if used > 0 {
		row.Efficiency = float64(logical) / float64(used)
	}
	row.HotP99 = hotLat.Percentile(99)
	row.AllP99 = allLat.Percentile(99)
	return row
}

// Redundancy runs the four-configuration frontier sweep.
func Redundancy(sc Scale) []RedundancyRow {
	wl := redundancyWL(sc)
	return []RedundancyRow{
		redundancyCase(sc, wl, "Replication", "raw", rados.ReplicatedN(2), 920),
		redundancyCase(sc, wl, "Dedup+Rep", "dedup", rados.ReplicatedN(2), 921),
		redundancyCase(sc, wl, "Dedup+EC", "dedup", rados.ErasureKM(2, 1), 922),
		redundancyCase(sc, wl, "Adaptive", "adaptive", rados.Redundancy{}, 923),
	}
}

// RedundancyChaosRow reports the kill-during-migration soak: OSD crashes
// land inside live tier migrations, then the reconcilers run and every
// invariant is re-checked.
type RedundancyChaosRow struct {
	Kills        int
	Migrations   int64
	TierErrors   int64 // migration steps that died mid-protocol (expected > 0)
	StaleRefs    int64 // after the post-mortem GC pass (must be 0)
	ScrubIssues  int   // must be 0
	LostChunks   int64 // must be 0
	VerifyErrors int   // objects whose content diverged (must be 0)
}

// RedundancyChaos crashes OSDs while the tiering daemon is actively
// migrating a cooling dataset, lets the leases expire, reconciles, and
// verifies every object byte-for-byte.
func RedundancyChaos(sc Scale) RedundancyChaosRow {
	const seed = 930
	wl := redundancyWL(sc)
	row := RedundancyChaosRow{Kills: 3}
	h := sc.newHarness(seed, 4, 4)
	s := h.dedupStore(func(cfg *core.Config) {
		cfg.ChunkSize = wl.chunkSz
		cfg.Tiering = core.DefaultTiering()
		cfg.Tiering.Interval = 300 * time.Millisecond
		cfg.HitSet.Period = 2 * time.Second
		cfg.HitSet.Retain = 4
	})
	mon := h.c.StartMonitor(rados.MonitorConfig{
		Interval:    250 * time.Millisecond,
		Grace:       time.Second,
		OutAfter:    2500 * time.Millisecond,
		AutoRecover: true,
	})
	inj := chaos.NewInjector(h.c)

	h.run(func(p *sim.Proc) {
		cl := s.Client("client.chaos")
		for i := 0; i < wl.objects; i++ {
			if err := cl.Write(p, redundancyOID(i), 0, wl.objectData(i)); err != nil {
				panic(err)
			}
		}
		s.Engine().DrainAndWait(p)

		// Everything was warm at ingest. Let the dataset cool so the daemon
		// has a full namespace of demotions to perform, keep a small hot set
		// heated so recaches run too, and kill OSDs across that window.
		s.StartEngine()
		s.StartTieringDaemon()
		inj.Apply(chaos.CrashBurst(h.c.OSDs(), row.Kills, time.Second, 7*time.Second, 1300*time.Millisecond))
		rng := rand.New(rand.NewSource(seed + 1))
		end := p.Now() + sim.Time(10*time.Second)
		for p.Now() < end {
			i := rng.Intn(wl.hot)
			if _, err := cl.Read(p, redundancyOID(i), 0, wl.objSize); err != nil {
				row.VerifyErrors++ // reads ride retries below; count hard failures
			}
			p.Sleep(150 * time.Millisecond)
		}
		mon.WaitSettled(p)
		s.StopTieringDaemon()
		s.Engine().DrainAndWait(p)

		ts := s.TierStats()
		row.Migrations = ts.PromotedChunks + ts.DemotedChunks + int64(ts.Recaches) + ts.Rededups
		row.TierErrors = ts.Errors

		// Post-mortem: leases out, then audit → scrub → GC twice; the second
		// collection pass must find nothing left to reclaim.
		p.Sleep(3 * time.Second)
		if au, err := s.Audit(p); err == nil {
			row.LostChunks = au.LostChunks
		} else {
			row.LostChunks = -1
		}
		if rep, err := s.Scrub(p); err == nil {
			row.ScrubIssues = len(rep.Issues)
		} else {
			row.ScrubIssues = -1
		}
		if _, err := s.GC(p); err == nil {
			if st, err := s.GC(p); err == nil {
				row.StaleRefs = st.StaleRefs
			} else {
				row.StaleRefs = -1
			}
		} else {
			row.StaleRefs = -1
		}
		for i := 0; i < wl.objects; i++ {
			got, err := cl.Read(p, redundancyOID(i), 0, wl.objSize)
			if err != nil || string(got) != string(wl.objectData(i)) {
				row.VerifyErrors++
			}
		}
	})
	return row
}

// RedundancyTable renders the frontier sweep.
func RedundancyTable(rows []RedundancyRow) Table {
	t := Table{
		Title:   "Adaptive redundancy: storage-efficiency vs tail-latency frontier (skewed popularity)",
		Columns: []string{"config", "logical MB", "stored MB", "efficiency", "hot p99", "all p99", "hot reads", "migrations"},
		Notes: []string{
			"frontier target: Adaptive efficiency >= Dedup+EC (hot objects drop chunk claims; no double-storing)",
			"frontier target: Adaptive hot p99 <= 1.5x Replication (hot reads served replicated, never from EC)",
		},
	}
	for _, r := range rows {
		mig := "-"
		if r.Config == "Adaptive" {
			mig = fmt.Sprint(r.Migrations)
		}
		t.Rows = append(t.Rows, []string{
			r.Config, f2(r.LogicalMB), f2(r.StoredMB), f2(r.Efficiency),
			r.HotP99.Round(time.Microsecond).String(), r.AllP99.Round(time.Microsecond).String(),
			fmt.Sprint(r.HotReads), mig,
		})
	}
	return t
}

// RedundancyChaosTable renders the kill-during-migration soak.
func RedundancyChaosTable(r RedundancyChaosRow) Table {
	return Table{
		Title:   "Adaptive redundancy: OSD kills during live migrations",
		Columns: []string{"kills", "migrations", "mid-protocol deaths", "stale refs", "scrub issues", "lost chunks", "verify errors"},
		Rows: [][]string{{
			fmt.Sprint(r.Kills), fmt.Sprint(r.Migrations), fmt.Sprint(r.TierErrors),
			fmt.Sprint(r.StaleRefs), fmt.Sprint(r.ScrubIssues), fmt.Sprint(r.LostChunks), fmt.Sprint(r.VerifyErrors),
		}},
		Notes: []string{
			"invariant: stale refs, scrub issues, lost chunks, verify errors all 0 after lease expiry + audit + GC",
		},
	}
}

// RedundancyResult runs the sweep and the chaos soak as one experiment.
func RedundancyResult(sc Scale) Result {
	return Result{Name: "redundancy", Tables: []Table{
		RedundancyTable(Redundancy(sc)),
		RedundancyChaosTable(RedundancyChaos(sc)),
	}}
}
