package experiments

import (
	"time"

	"dedupstore/internal/client"
	"dedupstore/internal/core"
	"dedupstore/internal/rados"
	"dedupstore/internal/sim"
	"dedupstore/internal/workload"
)

// Fig10Row is one bar/line pair of Figure 10: latency and CPU usage for one
// configuration of 8KB random I/O.
type Fig10Row struct {
	Config  string
	Op      string // "randwrite" / "randread"
	Latency time.Duration
	CPUPct  float64
}

// cpuWindow measures cluster CPU utilization (%) across a measured phase.
type cpuWindow struct {
	h      *harness
	busy0  time.Duration
	start  sim.Time
	nCores float64
}

func startCPUWindow(h *harness) *cpuWindow {
	return &cpuWindow{h: h, busy0: h.c.HostCPUBusy(), start: h.eng.Now(), nCores: float64(h.c.HostCount() * 12)}
}

func (w *cpuWindow) pct() float64 {
	elapsed := (w.h.eng.Now() - w.start).Duration()
	if elapsed <= 0 {
		return 0
	}
	busy := w.h.c.HostCPUBusy() - w.busy0
	return 100 * float64(busy) / (float64(elapsed) * w.nCores)
}

// Fig10 reproduces Figure 10: 8KB random write and random read latency/CPU
// on a 32KB-chunk system, FIO 4 threads × 4 iodepth, for:
//
//   - Original:        the unmodified store.
//   - Proposed:        post-processing dedup with rate control running; for
//     reads the data has been flushed to the chunk pool, so reads redirect.
//   - Proposed-flush:  every write deduplicates synchronously (worst case).
//   - Proposed-cache:  data stays cached in the metadata pool (writes update
//     only the chunk map; reads are served like the original).
func Fig10(sc Scale) []Fig10Row {
	span := sc.bytes(4 << 20)
	ops := sc.count(1500)
	fioW := workload.FIOConfig{BlockSize: 8 << 10, Span: span, Pattern: workload.RandWrite,
		DedupPct: 20, Threads: 4, IODepth: 4, Ops: ops, Seed: 71}
	fioR := fioW
	fioR.Pattern = workload.RandRead

	var rows []Fig10Row
	record := func(config, op string, res workload.FIOResult, cpu float64) {
		rows = append(rows, Fig10Row{Config: config, Op: op, Latency: res.MeanLatency(), CPUPct: cpu})
	}

	// --- Original -------------------------------------------------------
	{
		h := sc.newHarness(301, 4, 4)
		dev := h.rawDevice("img", span, 0, rados.ReplicatedN(2))
		h.run(func(p *sim.Proc) { _ = workload.Prefill(p, dev, fioW) })
		w := startCPUWindow(h)
		var res workload.FIOResult
		h.run(func(p *sim.Proc) { res = workload.RunFIO(p, dev, fioW) })
		record("Original", "randwrite", res, w.pct())
		w = startCPUWindow(h)
		h.run(func(p *sim.Proc) { res = workload.RunFIO(p, dev, fioR) })
		record("Original", "randread", res, w.pct())
	}

	// --- Proposed (post-processing, engine + rate control active) --------
	{
		h := sc.newHarness(302, 4, 4)
		s := h.dedupStore(func(cfg *core.Config) {
			cfg.HitSet.HitCount = 1000 // measure the non-cached path
		})
		dev := h.dedupDevice("img", span, s)
		h.run(func(p *sim.Proc) { _ = workload.Prefill(p, dev, fioW) })
		s.StartEngine()
		w := startCPUWindow(h)
		var res workload.FIOResult
		h.run(func(p *sim.Proc) { res = workload.RunFIO(p, dev, fioW) })
		record("Proposed", "randwrite", res, w.pct())
		// Reads against flushed data: the redirection path.
		h.run(func(p *sim.Proc) { s.Engine().DrainAndWait(p) })
		s.StartEngine()
		w = startCPUWindow(h)
		h.run(func(p *sim.Proc) { res = workload.RunFIO(p, dev, fioR) })
		record("Proposed", "randread", res, w.pct())
	}

	// --- Proposed-flush (synchronous dedup on every write) ---------------
	{
		h := sc.newHarness(303, 4, 4)
		s := h.dedupStore(func(cfg *core.Config) {
			cfg.Mode = core.ModeFlushThrough
			cfg.HitSet.HitCount = 1000
		})
		dev := h.dedupDevice("img", span, s)
		h.run(func(p *sim.Proc) { _ = workload.Prefill(p, dev, fioW) })
		w := startCPUWindow(h)
		var res workload.FIOResult
		h.run(func(p *sim.Proc) { res = workload.RunFIO(p, dev, fioW) })
		record("Proposed-flush", "randwrite", res, w.pct())
	}

	// --- Proposed-cache (data stays in the metadata pool) ----------------
	{
		h := sc.newHarness(304, 4, 4)
		s := h.dedupStore(func(cfg *core.Config) {
			cfg.HitSet.HitCount = 1 // everything hot: nothing is flushed
		})
		dev := h.dedupDevice("img", span, s)
		h.run(func(p *sim.Proc) { _ = workload.Prefill(p, dev, fioW) })
		w := startCPUWindow(h)
		var res workload.FIOResult
		h.run(func(p *sim.Proc) { res = workload.RunFIO(p, dev, fioW) })
		record("Proposed-cache", "randwrite", res, w.pct())
		w = startCPUWindow(h)
		h.run(func(p *sim.Proc) { res = workload.RunFIO(p, dev, fioR) })
		record("Proposed-cache", "randread", res, w.pct())
	}
	return rows
}

// Fig10Table renders Fig10.
func Fig10Table(rows []Fig10Row) Table {
	t := Table{
		Title:   "Figure 10: 8KB random I/O latency and CPU (32KB chunks, FIO 4thr x 4qd)",
		Columns: []string{"config", "op", "mean latency", "CPU %"},
		Notes: []string{
			"paper shape: write — Proposed ~ +20% latency / ~2x CPU vs Original; Proposed-flush worst; Proposed-cache ~ Original",
			"paper shape: read — Proposed (redirected) slower than Original; Proposed-cache ~ Original",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Config, r.Op, r.Latency.Round(time.Microsecond).String(), f1(r.CPUPct)})
	}
	return t
}

// Fig11Row is one point of Figure 11: sequential throughput/latency at one
// block size.
type Fig11Row struct {
	Config     string
	Op         string
	BlockSize  int64
	Throughput float64 // MB/s aggregate over 3 clients
	Latency    time.Duration
}

// Fig11 reproduces Figure 11: 32/64/128KB sequential read and write from
// three clients, Original vs Proposed (32KB chunk system). Reads run after
// all data is flushed to the chunk pool, as in the paper.
func Fig11(sc Scale) []Fig11Row {
	var rows []Fig11Row
	span := sc.bytes(6 << 20) // per client
	const clients = 3

	type target struct {
		devs []*client.BlockDevice
		h    *harness
		s    *core.Store
	}
	build := func(seed int64, dedup bool) *target {
		h := sc.newHarness(seed, 4, 4)
		tg := &target{h: h}
		if dedup {
			tg.s = h.dedupStore(func(cfg *core.Config) {
				cfg.HitSet.HitCount = 1000
			})
		}
		for i := 0; i < clients; i++ {
			name := "img" + string(rune('a'+i))
			if dedup {
				tg.devs = append(tg.devs, h.dedupDevice(name, span, tg.s))
			} else {
				tg.devs = append(tg.devs, h.rawDevice(name, span, 0, rados.ReplicatedN(2)))
			}
		}
		return tg
	}

	runPhase := func(tg *target, bs int64, pattern workload.Pattern, seed int64) (float64, time.Duration) {
		results := make([]workload.FIOResult, clients)
		tg.h.run(func(p *sim.Proc) {
			var sigs []*sim.Signal
			for i := 0; i < clients; i++ {
				i := i
				sigs = append(sigs, p.Go("client", func(q *sim.Proc) {
					results[i] = workload.RunFIO(q, tg.devs[i], workload.FIOConfig{
						BlockSize: bs, Span: span, Pattern: pattern,
						DedupPct: 30, Threads: 2, IODepth: 4, Seed: seed + int64(i),
					})
				}))
			}
			sim.WaitAll(p, sigs...)
		})
		var tput float64
		var lat time.Duration
		for _, r := range results {
			tput += r.Throughput()
			lat += r.MeanLatency()
		}
		return tput, lat / clients
	}

	for _, bs := range []int64{32 << 10, 64 << 10, 128 << 10} {
		// Original.
		tg := build(401, false)
		tput, lat := runPhase(tg, bs, workload.SeqWrite, 81)
		rows = append(rows, Fig11Row{"Original", "write", bs, tput, lat})
		tput, lat = runPhase(tg, bs, workload.SeqRead, 82)
		rows = append(rows, Fig11Row{"Original", "read", bs, tput, lat})

		// Proposed: write with background engine + rate control; read after
		// a full flush (redirection path).
		tg = build(402, true)
		tg.s.StartEngine()
		tput, lat = runPhase(tg, bs, workload.SeqWrite, 81)
		rows = append(rows, Fig11Row{"Proposed", "write", bs, tput, lat})
		tg.h.run(func(p *sim.Proc) { tg.s.Engine().DrainAndWait(p) })
		tput, lat = runPhase(tg, bs, workload.SeqRead, 82)
		rows = append(rows, Fig11Row{"Proposed", "read", bs, tput, lat})
	}
	return rows
}

// Fig11Table renders Fig11.
func Fig11Table(rows []Fig11Row) Table {
	t := Table{
		Title:   "Figure 11: sequential performance, 3 clients (32KB chunks)",
		Columns: []string{"config", "op", "block", "MB/s", "mean latency"},
		Notes: []string{
			"paper shape: read — Proposed ~1/2 of Original at 32KB (redirection), gap narrows by 128KB (parallel chunk reads)",
			"paper shape: write — Proposed close to Original at every block size (rate-controlled background dedup)",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Config, r.Op, fmt10(r.BlockSize), f1(r.Throughput), r.Latency.Round(time.Microsecond).String(),
		})
	}
	return t
}

func fmt10(bs int64) string {
	return fmtKB(bs)
}

func fmtKB(bs int64) string {
	return fmtInt(bs>>10) + "KB"
}

func fmtInt(v int64) string {
	if v == 0 {
		return "0"
	}
	var b [24]byte
	pos := len(b)
	for v > 0 {
		pos--
		b[pos] = byte('0' + v%10)
		v /= 10
	}
	return string(b[pos:])
}

// Fig10Result runs Fig10 and packages it as a machine-readable Result.
func Fig10Result(sc Scale) Result {
	return Result{Name: "fig10", Tables: []Table{Fig10Table(Fig10(sc))}}
}

// Fig11Result runs Fig11 and packages it as a machine-readable Result.
func Fig11Result(sc Scale) Result {
	return Result{Name: "fig11", Tables: []Table{Fig11Table(Fig11(sc))}}
}
