package experiments

import (
	"fmt"
	"time"

	"dedupstore/internal/metrics"
	"dedupstore/internal/rados"
	"dedupstore/internal/sim"
)

// The scale experiment sweeps the substrate from 16 to 256 OSDs with client
// load held proportional to cluster size (one gateway per host, a fixed
// per-client volume, PGs at 4 per OSD). A scale-out store should keep
// per-client throughput and tail latency roughly flat while aggregate
// throughput grows with the cluster; the sim-cost columns (events
// dispatched, events per op, event-heap high-water mark) track what the
// kernel pays to get there. Everything reported is derived from virtual
// time and engine counters, so the table is deterministic and golden-gated;
// wall-clock cost per configuration is measured outside the golden path
// (`make profile`, BENCH_pr.json).

// ScaleRow is one cluster size of the scaling sweep.
type ScaleRow struct {
	Hosts   int
	OSDs    int
	Clients int
	PGs     int
	Bytes   int64 // total bytes written (== read back)
	Ops     int   // client write ops (reads add the same count again)

	WriteMBps float64
	WriteP50  time.Duration
	WriteP99  time.Duration
	ReadMBps  float64
	ReadP50   time.Duration
	ReadP99   time.Duration

	Stats       sim.Stats // engine counters at end of run
	EventsPerOp float64   // dispatched events per client op (setup included)
}

// scaleCase runs one cluster size: hosts×osdsPerHost OSDs, one client
// gateway per host, each client writing perClient bytes of 32 KiB objects
// into a 2x-replicated pool with 4 concurrent streams, then reading every
// object back the same way.
func scaleCase(sc Scale, hosts, osdsPerHost int) ScaleRow {
	const (
		opSize  = 32 << 10
		streams = 4 // concurrent ops per client
	)
	h := sc.newHarness(801, hosts, osdsPerHost)
	osds := hosts * osdsPerHost
	clients := hosts
	perClient := sc.bytes(24 << 20)
	opsPerClient := int(perClient / opSize)
	if opsPerClient < streams {
		opsPerClient = streams
	}
	pgs := 4 * osds

	pool, err := h.c.CreatePool(rados.PoolConfig{
		Name: "pool.scale", PGNum: uint32(pgs), Redundancy: rados.ReplicatedN(2),
	})
	if err != nil {
		panic(err)
	}
	gws := make([]*rados.Gateway, clients)
	for i := range gws {
		gws[i] = h.c.NewGateway(fmt.Sprintf("client.scale%d", i))
	}

	writeLat := metrics.NewHistogram()
	readLat := metrics.NewHistogram()
	data := make([]byte, opSize)
	for i := range data {
		data[i] = byte(i)
	}

	// runPhase fans each client's op range across `streams` workers and
	// returns the virtual duration of the phase.
	runPhase := func(lat *metrics.Histogram, op func(q *sim.Proc, gw *rados.Gateway, oid string)) time.Duration {
		var elapsed time.Duration
		h.run(func(p *sim.Proc) {
			start := p.Now()
			var sigs []*sim.Signal
			for ci := 0; ci < clients; ci++ {
				ci := ci
				for s := 0; s < streams; s++ {
					s := s
					sigs = append(sigs, p.Go("scale.client", func(q *sim.Proc) {
						for k := s; k < opsPerClient; k += streams {
							oid := fmt.Sprintf("obj.%d.%d", ci, k)
							t0 := q.Now()
							op(q, gws[ci], oid)
							lat.Add((q.Now() - t0).Duration())
						}
					}))
				}
			}
			sim.WaitAll(p, sigs...)
			elapsed = (p.Now() - start).Duration()
		})
		return elapsed
	}

	wrote := runPhase(writeLat, func(q *sim.Proc, gw *rados.Gateway, oid string) {
		if err := gw.WriteFull(q, pool, oid, data); err != nil {
			panic(err)
		}
	})
	read := runPhase(readLat, func(q *sim.Proc, gw *rados.Gateway, oid string) {
		if _, err := gw.Read(q, pool, oid, 0, opSize); err != nil {
			panic(err)
		}
	})

	totalOps := clients * opsPerClient
	totalBytes := int64(totalOps) * opSize
	st := h.eng.Stats()
	row := ScaleRow{
		Hosts: hosts, OSDs: osds, Clients: clients, PGs: pgs,
		Bytes: totalBytes, Ops: totalOps,
		WriteMBps: float64(totalBytes) / 1e6 / wrote.Seconds(),
		WriteP50:  writeLat.Percentile(50),
		WriteP99:  writeLat.Percentile(99),
		ReadMBps:  float64(totalBytes) / 1e6 / read.Seconds(),
		ReadP50:   readLat.Percentile(50),
		ReadP99:   readLat.Percentile(99),
		Stats:     st,
	}
	row.EventsPerOp = float64(st.EventsDispatched) / float64(2*totalOps)
	return row
}

// ScaleSweep runs the 16 -> 64 -> 256 OSD sweep.
func ScaleSweep(sc Scale) []ScaleRow {
	return []ScaleRow{
		scaleCase(sc, 4, 4),   // 16 OSDs
		scaleCase(sc, 8, 8),   // 64 OSDs
		scaleCase(sc, 16, 16), // 256 OSDs
	}
}

// ScaleTable renders the sweep.
func ScaleTable(rows []ScaleRow) Table {
	t := Table{
		Title: "Scaling sweep: 16 -> 256 OSDs, client load proportional to cluster size",
		Columns: []string{
			"osds", "hosts", "clients", "pgs", "data",
			"write MB/s", "wr p50 ms", "wr p99 ms",
			"read MB/s", "rd p50 ms", "rd p99 ms",
			"events", "events/op", "peak heap",
		},
		Notes: []string{
			"shape target: aggregate MB/s grows ~linearly with OSD count; p99 stays flat (per-OSD load is constant)",
			"sim cost: events dispatched and heap high-water mark are the deterministic proxies for kernel wall-clock (see `make profile` for real time)",
		},
	}
	ms := func(d time.Duration) string { return f2(float64(d) / float64(time.Millisecond)) }
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(r.OSDs), fmt.Sprint(r.Hosts), fmt.Sprint(r.Clients), fmt.Sprint(r.PGs), mb(r.Bytes),
			f1(r.WriteMBps), ms(r.WriteP50), ms(r.WriteP99),
			f1(r.ReadMBps), ms(r.ReadP50), ms(r.ReadP99),
			fmt.Sprint(r.Stats.EventsDispatched), f1(r.EventsPerOp), fmt.Sprint(r.Stats.PeakHeap),
		})
	}
	return t
}

// ScaleResult runs the sweep and packages it as a machine-readable Result.
func ScaleResult(sc Scale) Result {
	return Result{Name: "scale", Tables: []Table{ScaleTable(ScaleSweep(sc))}}
}
