package experiments

import (
	"strings"
	"testing"
)

// TestChaosInvariants: under crashes mid-load — including the high-rate
// kill-during-flush and kill-during-GC bursts — no foreground op may fail,
// no data may be lost, and the dedup invariants must hold afterwards. Two
// seeds, per the crash-consistency acceptance bar.
func TestChaosInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	for _, seed := range []int64{811, 1907} {
		for _, r := range ChaosSeeded(tinyScale, seed) {
			name := r.Scenario
			if r.ForegroundErrors != 0 {
				t.Errorf("%s seed %d: %d foreground op failures, want 0", name, seed, r.ForegroundErrors)
			}
			if r.VerifyErrors != 0 {
				t.Errorf("%s seed %d: %d objects failed verification, want 0", name, seed, r.VerifyErrors)
			}
			if r.ScrubIssues != 0 {
				t.Errorf("%s seed %d: %d scrub issues, want 0", name, seed, r.ScrubIssues)
			}
			if r.GCStaleRefs != 0 {
				t.Errorf("%s seed %d: %d stale refs after GC, want 0", name, seed, r.GCStaleRefs)
			}
			if r.LostChunks != 0 {
				t.Errorf("%s seed %d: %d lost chunks, want 0", name, seed, r.LostChunks)
			}
			if r.DetectLatency <= 0 {
				t.Errorf("%s seed %d: detection latency %v, want > 0 (crash must not be detected instantly)", name, seed, r.DetectLatency)
			}
			if len(r.Timeline) == 0 {
				t.Errorf("%s seed %d: empty availability timeline", name, seed)
			}
			if strings.Contains(name, "kill") {
				// The burst scenarios must actually fire at the elevated
				// fault rate (5 kills vs the single baseline crash).
				crashes := 0
				for _, ev := range r.Timeline {
					if strings.HasPrefix(ev.What, "fault: crash-osd") {
						crashes++
					}
				}
				if crashes < 5 {
					t.Errorf("%s seed %d: only %d crash faults fired, want 5", name, seed, crashes)
				}
			}
		}
	}
}

// TestChaosDeterministic: the whole experiment — fault firing, detection,
// degraded ops, recovery, final metrics — replays bit-for-bit from a seed.
func TestChaosDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	a, b := Chaos(tinyScale), Chaos(tinyScale)
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		fa, fb := a[i].Fingerprint(), b[i].Fingerprint()
		if fa != fb {
			t.Errorf("scenario %s diverged between identical runs:\n--- run 1 ---\n%s--- run 2 ---\n%s",
				a[i].Scenario, fa, fb)
		}
	}
}
